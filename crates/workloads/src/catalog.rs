//! Workload definitions (§VII-A).

use anaheim_core::build::{Builder, LinTransStyle};
use anaheim_core::ir::OpSequence;
use anaheim_core::params::ParamSet;

/// One building block of a workload: a sequence and how often it runs.
#[derive(Debug, Clone)]
pub struct Segment {
    /// Descriptive name.
    pub name: &'static str,
    /// The op sequence of one instance.
    pub seq: OpSequence,
    /// How many times the instance executes.
    pub repeat: u64,
}

/// A paper workload.
#[derive(Debug)]
pub struct Workload {
    /// Workload name as used in Fig. 8 / Table V.
    pub name: &'static str,
    /// `L_eff` (§VII-A).
    pub l_eff: usize,
    /// Reporting unit ("total" or "per iteration").
    pub unit: &'static str,
    /// The segments.
    pub segments: Vec<Segment>,
    /// Estimated peak working set in bytes (evks + plaintexts + live
    /// ciphertexts), driving the OoM checks of §VIII-B.
    pub footprint_bytes: u64,
}

const GIB: u64 = 1 << 30;

impl Workload {
    /// **Boot**: one full-slot (2^15) bootstrapping with sparse-secret
    /// encapsulation; `L` runs 2 → 54 → 24, `L_eff = 11`.
    pub fn boot() -> Self {
        let params = ParamSet::paper_default();
        let mut b = Builder::new(params);
        let seq = b.bootstrap();
        Self {
            name: "Boot",
            l_eff: 11,
            unit: "total",
            segments: vec![Segment {
                name: "bootstrap",
                seq,
                repeat: 1,
            }],
            // ~60 rotation/relin keys (~8 GB) + CtS/StC plaintexts +
            // working ciphertexts.
            footprint_bytes: 14 * GIB,
        }
    }

    /// **HELR** \[33\]: one iteration of 1024-batch logistic-regression
    /// training on 14×14 MNIST; only 196 weights need bootstrapping, so
    /// the (sparse-slot) bootstrap is cheap and ModSwitch dominates
    /// (§VII-B). `L_eff = 10`.
    pub fn helr() -> Self {
        let params = ParamSet::paper_default();
        let mut b = Builder::new(params.clone());
        let mut seq = OpSequence::new(params.clone());
        // Gradient computation: batch inner products as rotations + MACs.
        let l_hi = params.l_boot_out;
        for _ in 0..4 {
            let lt = b.lintrans(l_hi, 10, LinTransStyle::Hoisting, true);
            seq.keyswitches += lt.keyswitches;
            seq.ops.extend(lt.ops);
        }
        // Sigmoid (degree-7 polynomial): 3 multiplicative stages.
        for lvl in [l_hi - 2, l_hi - 4, l_hi - 6] {
            let h = b.hmult(lvl);
            seq.keyswitches += h.keyswitches;
            seq.ops.extend(h.ops);
        }
        // Weight update.
        seq.extend_from(b.hadd(l_hi - 8));
        // Sparse bootstrap for the 196 weight slots.
        let boot = b.bootstrap_with_slots(256);
        seq.keyswitches += boot.keyswitches;
        seq.ops.extend(boot.ops);
        Self {
            name: "HELR",
            l_eff: 10,
            unit: "per iteration",
            segments: vec![Segment {
                name: "training iteration",
                seq,
                repeat: 1,
            }],
            footprint_bytes: 10 * GIB,
        }
    }

    /// **Sort** \[35\]: two-way sorting of 2^14 values via a bitonic-style
    /// k-way network: `log²(2^14) ≈ 105` comparator stages, each a
    /// minimax-composite comparison (~9 multiplicative levels) plus swap
    /// arithmetic; a bootstrap roughly every `L_eff = 9` multiplications.
    pub fn sort() -> Self {
        let params = ParamSet::paper_default();
        let mut b = Builder::new(params.clone());
        // One comparator stage: comparison polynomial + swaps + rotations.
        let mut stage = OpSequence::new(params.clone());
        let l = params.l_boot_out;
        for d in 0..9 {
            let h = b.hmult(l - 2 * (d % 4));
            stage.keyswitches += h.keyswitches;
            stage.ops.extend(h.ops);
        }
        for _ in 0..4 {
            let r = b.hrot(l - 4);
            stage.keyswitches += r.keyswitches;
            stage.ops.extend(r.ops);
        }
        stage.extend_from(b.hadd(l - 4));
        stage.extend_from(b.pmult(l - 4));
        // Bootstraps: 105 stages × 9 mults / L_eff=9 ⇒ ~105 bootstraps;
        // two-way sorting of 2^14 needs ~4 ciphertext lanes ⇒ ~420 total.
        let mut bb = Builder::new(params.clone());
        let boot = bb.bootstrap();
        Self {
            name: "Sort",
            l_eff: 9,
            unit: "total",
            segments: vec![
                Segment {
                    name: "comparator stage",
                    seq: stage,
                    repeat: 105,
                },
                Segment {
                    name: "bootstrap",
                    seq: boot,
                    repeat: 420,
                },
            ],
            footprint_bytes: 18 * GIB,
        }
    }

    /// **RNN** \[67\]: 200 evaluations of an RNN cell over a 32-batch of
    /// 128-long embeddings: two 128×128 matrix-vector products + tanh
    /// activation per cell; a bootstrap every other cell (`L_eff = 10`).
    pub fn rnn() -> Self {
        let params = ParamSet::paper_default();
        let mut b = Builder::new(params.clone());
        let mut cell = OpSequence::new(params.clone());
        let l = params.l_boot_out;
        for _ in 0..2 {
            let lt = b.lintrans(l, 12, LinTransStyle::Hoisting, true);
            cell.keyswitches += lt.keyswitches;
            cell.ops.extend(lt.ops);
        }
        for lvl in [l - 2, l - 4, l - 6] {
            let h = b.hmult(lvl);
            cell.keyswitches += h.keyswitches;
            cell.ops.extend(h.ops);
        }
        cell.extend_from(b.hadd(l - 6));
        let mut bb = Builder::new(params.clone());
        let boot = bb.bootstrap();
        Self {
            name: "RNN",
            l_eff: 10,
            unit: "total",
            segments: vec![
                Segment {
                    name: "RNN cell",
                    seq: cell,
                    repeat: 200,
                },
                Segment {
                    name: "bootstrap",
                    seq: boot,
                    repeat: 100,
                },
            ],
            footprint_bytes: 12 * GIB,
        }
    }

    /// **ResNet20** \[49\]: CIFAR-10 inference with multiplexed parallel
    /// convolutions: ~20 convolution layers (rotation-heavy linear
    /// transforms) + AESPA-free square activations + ~30 bootstraps.
    /// `L_eff = 8`. Needs > 24 GB ⇒ OoM on the RTX 4090 (§VIII-B).
    pub fn resnet20() -> Self {
        let params = ParamSet::paper_default();
        let mut b = Builder::new(params.clone());
        let mut layer = OpSequence::new(params.clone());
        let l = params.l_boot_out;
        // Convolution as a wide linear transform + channel accumulation.
        let lt = b.lintrans(l, 18, LinTransStyle::Hoisting, true);
        layer.keyswitches += lt.keyswitches;
        layer.ops.extend(lt.ops);
        for _ in 0..4 {
            let r = b.hrot(l - 2);
            layer.keyswitches += r.keyswitches;
            layer.ops.extend(r.ops);
        }
        // Square activation.
        let h = b.hmult(l - 2);
        layer.keyswitches += h.keyswitches;
        layer.ops.extend(h.ops);
        layer.extend_from(b.hadd(l - 4));
        let mut bb = Builder::new(params.clone());
        let boot = bb.bootstrap();
        Self {
            name: "ResNet20",
            l_eff: 8,
            unit: "total",
            segments: vec![
                Segment {
                    name: "conv layer",
                    seq: layer,
                    repeat: 20,
                },
                Segment {
                    name: "bootstrap",
                    seq: boot,
                    repeat: 30,
                },
            ],
            footprint_bytes: 27 * GIB,
        }
    }

    /// **ResNet18-AESPA** \[37\], \[64\]: ImageNet (224×224×3) inference via
    /// NeuJeans with AESPA activations — the heavyweight workload:
    /// wide convolutions over many ciphertexts and ~45 bootstraps.
    /// `L_eff = 7`. Needs > 40 GB (§VIII-B).
    pub fn resnet18_aespa() -> Self {
        let params = ParamSet::paper_default();
        let mut b = Builder::new(params.clone());
        let mut layer = OpSequence::new(params.clone());
        let l = params.l_boot_out;
        for _ in 0..2 {
            let lt = b.lintrans(l, 24, LinTransStyle::Hoisting, true);
            layer.keyswitches += lt.keyswitches;
            layer.ops.extend(lt.ops);
        }
        for _ in 0..6 {
            let r = b.hrot(l - 2);
            layer.keyswitches += r.keyswitches;
            layer.ops.extend(r.ops);
        }
        // AESPA low-degree polynomial activation.
        for lvl in [l - 2, l - 4] {
            let h = b.hmult(lvl);
            layer.keyswitches += h.keyswitches;
            layer.ops.extend(h.ops);
        }
        layer.extend_from(b.hadd(l - 6));
        let mut bb = Builder::new(params.clone());
        let boot = bb.bootstrap();
        Self {
            name: "ResNet18-AESPA",
            l_eff: 7,
            unit: "total",
            segments: vec![
                Segment {
                    name: "conv block",
                    seq: layer,
                    repeat: 18,
                },
                Segment {
                    name: "bootstrap",
                    seq: boot,
                    repeat: 45,
                },
            ],
            footprint_bytes: 44 * GIB,
        }
    }

    /// All six workloads, in the paper's order.
    pub fn all() -> Vec<Workload> {
        vec![
            Self::boot(),
            Self::helr(),
            Self::sort(),
            Self::rnn(),
            Self::resnet20(),
            Self::resnet18_aespa(),
        ]
    }

    /// Uncached evaluation-key DRAM traffic of one full run: the sum of
    /// every segment's `OpSequence::evk_read_bytes()`, weighted by how
    /// often the segment repeats. This is the per-workload
    /// bytes-per-bootstrap-style figure of `docs/KEYS.md` — what the
    /// evk cache and batch amortization have to beat.
    pub fn evk_read_bytes(&self) -> u64 {
        self.segments
            .iter()
            .map(|s| s.seq.evk_read_bytes() * s.repeat)
            .sum()
    }
}

/// Small helper: extend a sequence in place (keyswitch-aware).
trait ExtendFrom {
    fn extend_from(&mut self, other: OpSequence);
}

impl ExtendFrom for OpSequence {
    fn extend_from(&mut self, other: OpSequence) {
        self.keyswitches += other.keyswitches;
        self.ops.extend(other.ops);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_six_workloads_build() {
        let all = Workload::all();
        assert_eq!(all.len(), 6);
        let names: Vec<_> = all.iter().map(|w| w.name).collect();
        assert_eq!(
            names,
            vec!["Boot", "HELR", "Sort", "RNN", "ResNet20", "ResNet18-AESPA"]
        );
        for w in &all {
            assert!(!w.segments.is_empty(), "{}", w.name);
            for s in &w.segments {
                assert!(!s.seq.is_empty(), "{}/{}", w.name, s.name);
                assert!(s.repeat >= 1);
            }
        }
    }

    #[test]
    fn evk_read_bytes_sums_segments_with_repeats() {
        // Boot is a single unrepeated bootstrap, so the workload figure
        // must equal the raw sequence's uncached evk traffic.
        let boot = Workload::boot();
        let direct = Builder::new(ParamSet::paper_default()).bootstrap();
        assert!(boot.evk_read_bytes() > 0);
        assert_eq!(boot.evk_read_bytes(), direct.evk_read_bytes());
        // Every paper workload switches keys somewhere, and repeats must
        // scale the figure linearly (segments are weighted by `repeat`).
        for w in Workload::all() {
            assert!(w.evk_read_bytes() > 0, "{} reads no evks?", w.name);
            let unrepeated: u64 = w.segments.iter().map(|s| s.seq.evk_read_bytes()).sum();
            assert!(w.evk_read_bytes() >= unrepeated, "{}", w.name);
        }
    }

    #[test]
    fn l_eff_values_match_section_7a() {
        let all = Workload::all();
        let l_effs: Vec<_> = all.iter().map(|w| w.l_eff).collect();
        assert_eq!(l_effs, vec![11, 10, 9, 10, 8, 7]);
    }

    #[test]
    fn footprints_encode_oom_behaviour() {
        // §VIII-B: ResNet20 and ResNet18-AESPA exceed 24 GB; ResNet18
        // exceeds 40 GB; everything fits in the A100's 80 GB.
        let cap_4090 = 24 * GIB;
        let cap_a100 = 80 * GIB;
        for w in Workload::all() {
            assert!(w.footprint_bytes < cap_a100, "{} must fit the A100", w.name);
            match w.name {
                "ResNet20" | "ResNet18-AESPA" => {
                    assert!(w.footprint_bytes > cap_4090, "{} must OoM on 4090", w.name)
                }
                _ => assert!(w.footprint_bytes < cap_4090, "{} fits the 4090", w.name),
            }
        }
        assert!(Workload::resnet18_aespa().footprint_bytes > 40 * GIB);
    }

    #[test]
    fn helr_is_modswitch_dominated() {
        // §VII-B: HELR's sparse bootstrap shrinks the linear transforms, so
        // ModSwitch (NTT+BConv) dominates over element-wise ops.
        let helr = Workload::helr();
        let s = helr.segments[0].seq.summary();
        let boot = Workload::boot();
        let sb = boot.segments[0].seq.summary();
        let helr_ratio = s.ew_limb_ops as f64 / s.total_ntt_limbs() as f64;
        let boot_ratio = sb.ew_limb_ops as f64 / sb.total_ntt_limbs() as f64;
        assert!(
            helr_ratio < boot_ratio,
            "HELR must be less element-wise-heavy: {helr_ratio:.2} vs {boot_ratio:.2}"
        );
    }
}
