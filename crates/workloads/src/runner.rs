//! Runs workloads through an [`Anaheim`] runtime and aggregates the
//! per-segment reports into workload-level results (Fig. 8 / Table V).

use std::collections::BTreeMap;

use anaheim_core::error::RunError;
use anaheim_core::framework::{Anaheim, CapacityCheck};
use anaheim_core::health::HealthRegistry;
use anaheim_core::telemetry::Telemetry;

use crate::catalog::Workload;

/// Aggregated result of one workload on one platform.
#[derive(Debug, Clone)]
pub struct WorkloadReport {
    /// Workload name.
    pub workload: &'static str,
    /// Platform name.
    pub platform: &'static str,
    /// `None` when the workload does not fit the device (OoM, §VIII-B).
    pub outcome: Option<WorkloadNumbers>,
}

/// The measured quantities.
#[derive(Debug, Clone, Default)]
pub struct WorkloadNumbers {
    /// End-to-end time in ms (per the workload's reporting unit).
    pub time_ms: f64,
    /// Energy in joules.
    pub energy_j: f64,
    /// GPU-side DRAM traffic in GB.
    pub gpu_dram_gb: f64,
    /// PIM-side traffic in GB.
    pub pim_dram_gb: f64,
    /// Time share per kernel class.
    pub breakdown_ms: BTreeMap<&'static str, f64>,
    /// PIM integrity-check failures across all segments and repeats.
    pub faults_detected: u64,
    /// PIM retries taken after transient faults.
    pub pim_retries: u64,
    /// Degraded-mode segments (wasted PIM attempts + GPU re-executions).
    pub degraded_segments: u64,
    /// Kernels that fell back to the GPU after exhausting PIM retries.
    pub pim_fallbacks: u64,
    /// Kernels routed straight to the GPU by an open circuit breaker.
    pub breaker_skips: u64,
    /// Virtual time the pipelined schedule overlapped across the GPU and
    /// PIM streams, in ms. Always 0 under [`ScheduleMode::Serial`].
    ///
    /// [`ScheduleMode::Serial`]: anaheim_core::schedule::ScheduleMode::Serial
    pub overlap_ms: f64,
}

impl WorkloadNumbers {
    /// Energy-delay product in J·s.
    pub fn edp(&self) -> f64 {
        self.energy_j * self.time_ms * 1e-3
    }

    /// `T_boot,eff` = time / `L_eff` (§II-C), for bootstrap-style
    /// workloads.
    pub fn t_eff_ms(&self, l_eff: usize) -> f64 {
        self.time_ms / l_eff as f64
    }

    /// Fraction of time in a breakdown class.
    pub fn fraction(&self, class: &str) -> f64 {
        let total: f64 = self.breakdown_ms.values().sum();
        if total == 0.0 {
            return 0.0;
        }
        self.breakdown_ms
            .iter()
            .find(|(k, _)| **k == class)
            .map(|(_, v)| v / total)
            .unwrap_or(0.0)
    }
}

/// Runs a workload on a platform, honouring capacity limits.
///
/// Per-segment fault/retry counts aggregate into the workload numbers
/// (scaled by segment repeats) rather than aborting the workload; only
/// unrecoverable configuration errors surface as [`RunError`].
pub fn run_workload(rt: &Anaheim, w: &Workload) -> Result<WorkloadReport, RunError> {
    // OoM check against the workload's working set (§VIII-B).
    let capacity = rt.config().gpu.dram_capacity_bytes as u64;
    if w.footprint_bytes > capacity {
        return Ok(WorkloadReport {
            workload: w.name,
            platform: rt.config().name,
            outcome: None,
        });
    }
    let mut nums = WorkloadNumbers::default();
    for seg in &w.segments {
        let r = rt.run(seg.seq.clone())?;
        let _ = matches!(rt.check_capacity(&seg.seq), CapacityCheck::Fits { .. });
        accumulate(&mut nums, &r, seg.repeat);
    }
    Ok(WorkloadReport {
        workload: w.name,
        platform: rt.config().name,
        outcome: Some(nums),
    })
}

/// Like [`run_workload`], but executes every segment through the
/// breaker-gated path ([`Anaheim::run_with_health`]) so that bank health
/// persists across segments: a bank that trips during one segment stays
/// routed-around for the rest of the workload, and the registry's final
/// [`HealthSnapshot`](anaheim_core::health::HealthSnapshot) describes the
/// whole run.
pub fn run_workload_with_health(
    rt: &Anaheim,
    w: &Workload,
    registry: &mut HealthRegistry,
) -> Result<WorkloadReport, RunError> {
    let capacity = rt.config().gpu.dram_capacity_bytes as u64;
    if w.footprint_bytes > capacity {
        return Ok(WorkloadReport {
            workload: w.name,
            platform: rt.config().name,
            outcome: None,
        });
    }
    let mut nums = WorkloadNumbers::default();
    for seg in &w.segments {
        let r = rt.run_with_health(seg.seq.clone(), registry)?;
        accumulate(&mut nums, &r, seg.repeat);
    }
    Ok(WorkloadReport {
        workload: w.name,
        platform: rt.config().name,
        outcome: Some(nums),
    })
}

/// Like [`run_workload`], but records every segment into `tel`: one
/// `workload`-track span per segment (kernel spans nest inside), with the
/// trace base advanced by the segment's *total* repeated duration so
/// consecutive segments tile the virtual timeline. Each segment instance
/// is simulated once and its span annotated with `repeat` — repeats are
/// collapsed in the trace exactly as they are in the cost model.
///
/// Recording happens on the (serial) calling thread only, so the exported
/// trace and metrics are bit-identical for every `ANAHEIM_THREADS` value.
pub fn run_workload_traced(
    rt: &Anaheim,
    w: &Workload,
    tel: &mut Telemetry,
) -> Result<WorkloadReport, RunError> {
    let capacity = rt.config().gpu.dram_capacity_bytes as u64;
    if w.footprint_bytes > capacity {
        return Ok(WorkloadReport {
            workload: w.name,
            platform: rt.config().name,
            outcome: None,
        });
    }
    let mut nums = WorkloadNumbers::default();
    let mut clock_ns = 0.0f64;
    for seg in &w.segments {
        tel.set_base_ns(clock_ns);
        let span = tel.open_segment(format!("{} {}", w.name, seg.name), "workload", 0.0);
        let r = rt.run_traced(seg.seq.clone(), tel)?;
        tel.trace.annotate(span, "repeat", seg.repeat);
        tel.close_segment(span, r.total_ns);
        clock_ns += r.total_ns * seg.repeat as f64;
        accumulate(&mut nums, &r, seg.repeat);
    }
    Ok(WorkloadReport {
        workload: w.name,
        platform: rt.config().name,
        outcome: Some(nums),
    })
}

/// [`run_workload_with_health`] with telemetry — segment spans as in
/// [`run_workload_traced`], plus breaker-transition markers from the
/// health-gated scheduler and a final idempotent export of the registry's
/// snapshot.
pub fn run_workload_with_health_traced(
    rt: &Anaheim,
    w: &Workload,
    registry: &mut HealthRegistry,
    tel: &mut Telemetry,
) -> Result<WorkloadReport, RunError> {
    let capacity = rt.config().gpu.dram_capacity_bytes as u64;
    if w.footprint_bytes > capacity {
        return Ok(WorkloadReport {
            workload: w.name,
            platform: rt.config().name,
            outcome: None,
        });
    }
    let mut nums = WorkloadNumbers::default();
    let mut clock_ns = 0.0f64;
    for seg in &w.segments {
        // Only the *trace* base advances: the registry clock is left
        // exactly as in the untraced variant so breaker behaviour (and
        // therefore the numbers) cannot differ between the two paths.
        tel.set_base_ns(clock_ns);
        let span = tel.open_segment(format!("{} {}", w.name, seg.name), "workload", 0.0);
        let r = rt.run_with_health_traced(seg.seq.clone(), registry, tel)?;
        tel.trace.annotate(span, "repeat", seg.repeat);
        tel.close_segment(span, r.total_ns);
        clock_ns += r.total_ns * seg.repeat as f64;
        accumulate(&mut nums, &r, seg.repeat);
    }
    tel.export_health(&registry.snapshot());
    Ok(WorkloadReport {
        workload: w.name,
        platform: rt.config().name,
        outcome: Some(nums),
    })
}

fn accumulate(nums: &mut WorkloadNumbers, r: &anaheim_core::report::ExecutionReport, repeat: u64) {
    let k = repeat as f64;
    nums.time_ms += r.total_ms() * k;
    nums.energy_j += r.energy_j * k;
    nums.gpu_dram_gb += r.gpu_dram_bytes as f64 * k / 1e9;
    nums.pim_dram_gb += r.pim_dram_bytes as f64 * k / 1e9;
    nums.faults_detected += r.faults_detected as u64 * repeat;
    nums.pim_retries += r.pim_retries as u64 * repeat;
    nums.degraded_segments += r.degraded_segments as u64 * repeat;
    nums.pim_fallbacks += r.pim_fallbacks as u64 * repeat;
    nums.breaker_skips += r.breaker_skips as u64 * repeat;
    nums.overlap_ms += r.stream_overlap_ns * k / 1e6;
    for (class, ns) in &r.breakdown_ns {
        *nums.breakdown_ms.entry(class).or_insert(0.0) += ns * k / 1e6;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anaheim_core::framework::AnaheimConfig;

    #[test]
    fn boot_runs_on_all_platforms() {
        let w = Workload::boot();
        for cfg in [
            AnaheimConfig::a100_baseline(),
            AnaheimConfig::a100_near_bank(),
            AnaheimConfig::a100_custom_hbm(),
            AnaheimConfig::rtx4090_baseline(),
            AnaheimConfig::rtx4090_near_bank(),
        ] {
            let rt = Anaheim::new(cfg);
            let r = run_workload(&rt, &w).unwrap();
            let nums = r.outcome.expect("Boot fits everywhere");
            assert!(nums.time_ms > 1.0 && nums.time_ms < 1000.0);
            assert!(nums.energy_j > 0.0);
        }
    }

    #[test]
    fn pipelined_boot_overlaps_within_band() {
        use anaheim_core::schedule::ScheduleMode;
        let w = Workload::boot();
        let serial = Anaheim::new(AnaheimConfig::a100_near_bank());
        let pipe = Anaheim::new(
            AnaheimConfig::a100_near_bank().with_schedule_mode(ScheduleMode::Pipelined),
        );
        let s = run_workload(&serial, &w).unwrap().outcome.expect("fits");
        let p = run_workload(&pipe, &w).unwrap().outcome.expect("fits");
        assert_eq!(s.overlap_ms, 0.0, "serial mode never overlaps");
        assert!(p.overlap_ms > 0.0, "pipelined boot should overlap streams");
        let speedup = s.time_ms / p.time_ms;
        assert!(
            speedup > 1.0 && speedup <= 1.35,
            "pipelined boot speedup {speedup:.3} outside §V-C band"
        );
        // Overlap accounts exactly for the saved wall-clock (fault-free).
        assert!((p.time_ms + p.overlap_ms - s.time_ms).abs() < 1e-6);
        // Work-conserving: same traffic and energy either way.
        assert!((s.gpu_dram_gb - p.gpu_dram_gb).abs() < 1e-12);
        assert!((s.pim_dram_gb - p.pim_dram_gb).abs() < 1e-12);
        assert!((s.energy_j - p.energy_j).abs() < 1e-9);
    }

    #[test]
    fn resnet_oom_on_4090() {
        // §VIII-B / Fig. 8: R20 and R18 fail on the RTX 4090's 24 GB.
        let rt = Anaheim::new(AnaheimConfig::rtx4090_near_bank());
        assert!(run_workload(&rt, &Workload::resnet20())
            .unwrap()
            .outcome
            .is_none());
        assert!(run_workload(&rt, &Workload::resnet18_aespa())
            .unwrap()
            .outcome
            .is_none());
        // But they run on the A100.
        let a = Anaheim::new(AnaheimConfig::a100_near_bank());
        assert!(run_workload(&a, &Workload::resnet20())
            .unwrap()
            .outcome
            .is_some());
    }

    #[test]
    fn anaheim_speedups_within_paper_band() {
        // Fig. 8: 1.24–1.74× (A100 near-bank) across workloads; we accept a
        // slightly wider modelling band and check every workload improves.
        let base = Anaheim::new(AnaheimConfig::a100_baseline());
        let pim = Anaheim::new(AnaheimConfig::a100_near_bank());
        for w in Workload::all() {
            let b = run_workload(&base, &w).unwrap().outcome.expect("fits");
            let p = run_workload(&pim, &w).unwrap().outcome.expect("fits");
            let speedup = b.time_ms / p.time_ms;
            assert!(
                (1.05..2.2).contains(&speedup),
                "{}: A100 near-bank speedup {speedup:.2} out of band",
                w.name
            );
            let edp_gain = b.edp() / p.edp();
            assert!(
                edp_gain > 1.3,
                "{}: EDP gain {edp_gain:.2} too small",
                w.name
            );
        }
    }

    #[test]
    fn fault_counts_aggregate_across_segments() {
        use pim::fault::FaultPlan;
        let w = Workload::boot();
        let cfg = AnaheimConfig::a100_near_bank()
            .with_fault_plan(FaultPlan::none().with_seed(23).with_bank_flips(0.5));
        let rt = Anaheim::new(cfg);
        let r = run_workload(&rt, &w).unwrap();
        let nums = r.outcome.expect("Boot fits");
        assert!(nums.faults_detected > 0, "flips at p=0.5 must fire");
        assert!(nums.degraded_segments > 0);
        // Degraded, not broken: timing is still finite and positive.
        assert!(nums.time_ms > 0.0 && nums.time_ms.is_finite());
    }

    #[test]
    fn health_runner_matches_plain_runner_when_healthy() {
        let cfg = AnaheimConfig::a100_near_bank();
        let rt = Anaheim::new(cfg.clone());
        let mut reg = HealthRegistry::for_device(
            cfg.pim.as_ref().expect("near-bank has PIM"),
            Default::default(),
        );
        let w = Workload::boot();
        let plain = run_workload(&rt, &w).unwrap().outcome.expect("fits");
        let healthy = run_workload_with_health(&rt, &w, &mut reg)
            .unwrap()
            .outcome
            .expect("fits");
        assert_eq!(plain.time_ms, healthy.time_ms);
        assert_eq!(plain.energy_j, healthy.energy_j);
        assert_eq!(healthy.breaker_skips, 0);
        assert_eq!(reg.snapshot().open_banks(), 0);
    }

    #[test]
    fn bank_health_persists_across_segments() {
        use pim::fault::FaultPlan;
        // A permanently stuck lane: the owning bank's breaker opens early
        // and every later segment routes around it (breaker_skips > 0).
        let cfg = AnaheimConfig::a100_near_bank()
            .with_fault_plan(FaultPlan::none().with_seed(7).with_stuck_lane(3));
        let mut reg = HealthRegistry::for_device(
            cfg.pim.as_ref().expect("near-bank has PIM"),
            Default::default(),
        );
        let rt = Anaheim::new(cfg);
        let w = Workload::helr();
        let nums = run_workload_with_health(&rt, &w, &mut reg)
            .unwrap()
            .outcome
            .expect("fits");
        let snap = reg.snapshot();
        assert_eq!(snap.open_banks(), 1, "exactly the sick bank trips");
        assert!(nums.breaker_skips > 0, "later kernels skip the open bank");
        assert!(nums.pim_fallbacks > 0);
        assert!(nums.time_ms > 0.0 && nums.time_ms.is_finite());
    }

    #[test]
    fn traced_runner_matches_plain_and_tiles_segments() {
        let rt = Anaheim::new(AnaheimConfig::a100_near_bank());
        let w = Workload::boot();
        let plain = run_workload(&rt, &w).unwrap().outcome.expect("fits");
        let mut tel = Telemetry::new(9);
        let traced = run_workload_traced(&rt, &w, &mut tel)
            .unwrap()
            .outcome
            .expect("fits");
        // Tracing is observational: identical numbers.
        assert_eq!(plain.time_ms, traced.time_ms);
        assert_eq!(plain.energy_j, traced.energy_j);
        // One workload-track span per segment, tiled in virtual time.
        let segs: Vec<_> = tel
            .trace
            .spans()
            .iter()
            .filter(|s| s.track == "workload")
            .collect();
        assert_eq!(segs.len(), w.segments.len());
        for pair in segs.windows(2) {
            assert!(
                pair[1].start_ns >= pair[0].end_ns,
                "segments must not overlap on the timeline"
            );
        }
        assert!(tel.trace.open_spans() == 0, "all spans closed");
    }

    #[test]
    fn t_boot_eff_definition() {
        let n = WorkloadNumbers {
            time_ms: 44.0,
            ..Default::default()
        };
        assert!((n.t_eff_ms(11) - 4.0).abs() < 1e-12);
    }
}
