//! The six FHE CKKS workloads of the paper's evaluation (§VII-A), expressed
//! as op-sequence generators over the Anaheim IR.
//!
//! Each workload is a list of *segments* — an op sequence plus a repeat
//! count — so that iterative workloads (HELR's 32 training iterations,
//! RNN's 200 cell evaluations, Sort's ~100 comparator stages) stay cheap to
//! schedule: one representative instance runs through the model and
//! repeats multiply the totals (FHE control flow is static, §V-C, so every
//! instance costs the same).
//!
//! Memory footprints are estimated from the working set each paper
//! workload is known to need (§VIII-B: ResNet20 exceeds the RTX 4090's
//! 24 GB; ResNet18-AESPA needs over 40 GB).

pub mod catalog;
pub mod runner;

pub use catalog::Workload;
pub use runner::{
    run_workload, run_workload_traced, run_workload_with_health, run_workload_with_health_traced,
    WorkloadNumbers, WorkloadReport,
};
