//! GPU hardware configurations and FHE-library efficiency profiles.

/// A GPU hardware description (Table III + §III-A).
#[derive(Debug, Clone, PartialEq)]
pub struct GpuConfig {
    /// Human-readable name.
    pub name: &'static str,
    /// Peak 32-bit integer multiply-and-add throughput, TOPS (Table III:
    /// 19.5 for A100, 41.3 for RTX 4090).
    pub int_tops: f64,
    /// Off-chip DRAM bandwidth, GB/s.
    pub dram_bw_gbps: f64,
    /// L2 cache capacity in bytes (40 MB / 72 MB).
    pub l2_bytes: usize,
    /// DRAM capacity in bytes (OoM detection, §VIII-B).
    pub dram_capacity_bytes: usize,
    /// Kernel launch / transition overhead in ns (§V-C: "a couple of
    /// microseconds" covers GPU↔PIM transitions; plain kernel launches are
    /// cheaper).
    pub kernel_launch_ns: f64,
    /// Energy per 32-bit integer op, pJ (dynamic compute energy including
    /// instruction overheads).
    pub compute_pj_per_op: f64,
    /// Static/idle power in watts (leakage + fans + HBM refresh…), charged
    /// against wall-clock time.
    pub static_power_w: f64,
    /// Energy per byte of L2 traffic, pJ/B (cache hits are not free).
    pub l2_pj_per_byte: f64,
}

impl GpuConfig {
    /// NVIDIA A100 80GB (SXM).
    pub fn a100_80gb() -> Self {
        Self {
            name: "A100 80GB",
            int_tops: 19.5,
            dram_bw_gbps: 1802.0,
            l2_bytes: 40 << 20,
            dram_capacity_bytes: 80 * (1 << 30),
            kernel_launch_ns: 2000.0,
            compute_pj_per_op: 1.1,
            static_power_w: 90.0,
            l2_pj_per_byte: 10.0,
        }
    }

    /// NVIDIA GeForce RTX 4090.
    pub fn rtx4090() -> Self {
        Self {
            name: "RTX 4090",
            int_tops: 41.3,
            dram_bw_gbps: 939.0,
            l2_bytes: 72 << 20,
            dram_capacity_bytes: 24 * (1 << 30),
            kernel_launch_ns: 2000.0,
            compute_pj_per_op: 0.8,
            static_power_w: 60.0,
            l2_pj_per_byte: 8.0,
        }
    }

    /// An ASIC-like design point in the style of ARK/BTS (§III-A, §VIII-A):
    /// hundreds of MB of on-chip cache and tens of TOPS of *modular*
    /// throughput (expressed here as the equivalent 32-bit integer
    /// throughput: 25 modmul-TOPS × ~8 int-ops each). Used to reproduce
    /// the §III-C observation that MinKS beats hoisting only on such
    /// hardware.
    pub fn asic_like() -> Self {
        Self {
            name: "ASIC-like (512MB cache)",
            int_tops: 200.0,
            dram_bw_gbps: 1000.0,
            l2_bytes: 512 << 20,
            dram_capacity_bytes: 16 * (1 << 30),
            kernel_launch_ns: 100.0,
            compute_pj_per_op: 0.3,
            static_power_w: 30.0,
            l2_pj_per_byte: 3.0,
        }
    }

    /// A hypothetical A100 with its DRAM bandwidth quadrupled — the naive
    /// alternative to PIM examined in Fig. 4a (§V-A), which the paper
    /// rejects as unrealistic on power grounds.
    pub fn a100_4x_bandwidth() -> Self {
        let mut c = Self::a100_80gb();
        c.name = "A100 80GB (4x BW)";
        c.dram_bw_gbps *= 4.0;
        c
    }
}

/// Per-kernel-class efficiency factors for a GPU FHE library: the fraction
/// of the roofline bound the library actually achieves.
///
/// Element-wise and automorphism kernels are bandwidth-efficiency factors;
/// (I)NTT and BConv are compute-efficiency factors. Values are calibrated
/// to the relative performance the paper reports in §IV-A (Cheddar is
/// 1.80–1.81× faster than Phantom/100x on (I)NTT and 1.73–1.75× on BConv,
/// while nobody improves the bandwidth-bound element-wise kernels).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LibraryProfile {
    /// Library name.
    pub name: &'static str,
    /// Compute efficiency of (I)NTT kernels.
    pub ntt_eff: f64,
    /// Compute efficiency of BConv kernels.
    pub bconv_eff: f64,
    /// Bandwidth efficiency of element-wise kernels.
    pub elementwise_eff: f64,
    /// Bandwidth efficiency of automorphism kernels (gather patterns).
    pub automorphism_eff: f64,
}

impl LibraryProfile {
    /// Cheddar \[44\] — the paper's baseline library.
    pub fn cheddar() -> Self {
        Self {
            name: "Cheddar",
            ntt_eff: 0.58,
            bconv_eff: 0.52,
            elementwise_eff: 0.88,
            automorphism_eff: 0.75,
        }
    }

    /// 100x \[38\].
    pub fn hundredx() -> Self {
        Self {
            name: "100x",
            ntt_eff: 0.58 / 1.81,
            bconv_eff: 0.52 / 1.75,
            elementwise_eff: 0.86,
            automorphism_eff: 0.72,
        }
    }

    /// Phantom \[77\].
    pub fn phantom() -> Self {
        Self {
            name: "Phantom",
            ntt_eff: 0.58 / 1.80,
            bconv_eff: 0.52 / 1.73,
            elementwise_eff: 0.84,
            automorphism_eff: 0.70,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_throughput_ratio() {
        let a = GpuConfig::a100_80gb();
        let g = GpuConfig::rtx4090();
        // §IV-D: the 4090 has 2.1× the integer throughput of the A100.
        assert!((g.int_tops / a.int_tops - 2.118).abs() < 0.01);
        // …but roughly half the bandwidth.
        assert!(g.dram_bw_gbps < a.dram_bw_gbps);
        assert!(g.l2_bytes > a.l2_bytes);
    }

    #[test]
    fn evk_does_not_fit_in_l2() {
        // §III-A D1: an evk (136 MB at paper parameters) exceeds both L2s.
        let evk_bytes = 136 << 20;
        assert!(GpuConfig::a100_80gb().l2_bytes < evk_bytes);
        assert!(GpuConfig::rtx4090().l2_bytes < evk_bytes);
    }

    #[test]
    fn cheddar_is_fastest_on_compute_kernels() {
        let c = LibraryProfile::cheddar();
        let h = LibraryProfile::hundredx();
        let p = LibraryProfile::phantom();
        assert!(c.ntt_eff > h.ntt_eff && c.ntt_eff > p.ntt_eff);
        // Element-wise kernels are already near the bandwidth bound for
        // everyone (§IV-D: "Cheddar also failed to improve them").
        assert!((c.elementwise_eff - h.elementwise_eff).abs() < 0.05);
    }

    #[test]
    fn quadrupled_bandwidth_config() {
        let x = GpuConfig::a100_4x_bandwidth();
        assert_eq!(x.dram_bw_gbps, 4.0 * 1802.0);
        assert_eq!(x.int_tops, 19.5);
    }
}
