//! Analytical GPU performance and energy model.
//!
//! The paper measures real GPUs (A100 80GB, RTX 4090) running the Cheddar
//! library; this reproduction substitutes a calibrated roofline model
//! (see DESIGN.md): each kernel is characterized by its integer-op count
//! and its DRAM traffic, and
//!
//! `time = max(ops / (peak_tops · efficiency), bytes / bandwidth) + launch`.
//!
//! The paper's own cross-GPU evidence justifies the form: (I)NTT and BConv
//! scale with integer throughput (compute-bound), element-wise ops pin the
//! DRAM bandwidth at < 2 ops/byte of arithmetic intensity (§IV-D).
//!
//! An object-granularity LRU model of the L2 cache converts ideal kernel
//! footprints into DRAM traffic (§III-A, difference D1: 40–72 MB of L2
//! cannot hold a 136 MB evk, so evks always stream from DRAM).
//!
//! Per-library *efficiency profiles* (Cheddar / Phantom / 100x) reproduce
//! the relative kernel speeds of Fig. 2a.

pub mod cache;
pub mod config;
pub mod kernel;
pub mod model;

pub use cache::L2Cache;
pub use config::{GpuConfig, LibraryProfile};
pub use kernel::{KernelClass, KernelDesc};
pub use model::{GpuModel, KernelCost};
