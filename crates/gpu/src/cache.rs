//! Object-granularity L2 cache model.
//!
//! FHE data objects are huge and uniform (a limb is `N` words; an evk is
//! hundreds of MB), so a byte-accurate cache simulation adds nothing over
//! object-granularity LRU: an access either finds the whole object resident
//! or streams it from DRAM (§III-A D1). This is also how MAD \[2\] reasons
//! about caching, which the paper borrows for its DRAM-traffic estimates
//! (§V-D).

use std::collections::HashMap;

/// Object-granularity LRU cache.
#[derive(Debug)]
pub struct L2Cache {
    capacity: usize,
    used: usize,
    /// object id → (size, last-use stamp)
    resident: HashMap<u64, (usize, u64)>,
    clock: u64,
    hits_bytes: u64,
    miss_bytes: u64,
}

impl L2Cache {
    /// An empty cache of `capacity` bytes.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            used: 0,
            resident: HashMap::new(),
            clock: 0,
            hits_bytes: 0,
            miss_bytes: 0,
        }
    }

    /// Reads `bytes` of object `id`; returns the bytes that had to come
    /// from DRAM (0 on a hit, `bytes` on a miss). The object becomes
    /// resident if it fits.
    pub fn read(&mut self, id: u64, bytes: usize) -> u64 {
        self.clock += 1;
        if let Some(entry) = self.resident.get_mut(&id) {
            entry.1 = self.clock;
            self.hits_bytes += bytes as u64;
            return 0;
        }
        self.install(id, bytes);
        self.miss_bytes += bytes as u64;
        bytes as u64
    }

    /// Writes `bytes` of object `id` (write-allocate; dirty write-back cost
    /// is charged by the caller when it forces the data to DRAM).
    pub fn write(&mut self, id: u64, bytes: usize) {
        self.clock += 1;
        if let Some(entry) = self.resident.get_mut(&id) {
            entry.1 = self.clock;
            return;
        }
        self.install(id, bytes);
    }

    /// Drops an object (the user-controlled write-back of §V-C flushes data
    /// so PIM sees fresh DRAM contents).
    pub fn flush(&mut self, id: u64) {
        if let Some((size, _)) = self.resident.remove(&id) {
            self.used -= size;
        }
    }

    fn install(&mut self, id: u64, bytes: usize) {
        if bytes > self.capacity {
            // Streaming object: never resident.
            return;
        }
        while self.used + bytes > self.capacity {
            // Evict LRU.
            let victim = self
                .resident
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(&id, _)| id)
                .expect("cache overfull but empty");
            self.flush(victim);
        }
        self.resident.insert(id, (bytes, self.clock));
        self.used += bytes;
    }

    /// Is the object currently resident?
    pub fn contains(&self, id: u64) -> bool {
        self.resident.contains_key(&id)
    }

    /// Bytes currently resident.
    pub fn used(&self) -> usize {
        self.used
    }

    /// Total bytes served from cache so far.
    pub fn hit_bytes(&self) -> u64 {
        self.hits_bytes
    }

    /// Total bytes streamed from DRAM so far.
    pub fn miss_bytes(&self) -> u64 {
        self.miss_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_after_install() {
        let mut c = L2Cache::new(100);
        assert_eq!(c.read(1, 40), 40);
        assert_eq!(c.read(1, 40), 0);
        assert!(c.contains(1));
        assert_eq!(c.hit_bytes(), 40);
        assert_eq!(c.miss_bytes(), 40);
    }

    #[test]
    fn lru_eviction() {
        let mut c = L2Cache::new(100);
        c.read(1, 40);
        c.read(2, 40);
        c.read(1, 40); // touch 1
        c.read(3, 40); // evicts 2 (LRU)
        assert!(c.contains(1));
        assert!(!c.contains(2));
        assert!(c.contains(3));
    }

    #[test]
    fn oversized_objects_stream() {
        // An evk larger than L2 never becomes resident (§III-A D1).
        let mut c = L2Cache::new(100);
        assert_eq!(c.read(9, 1000), 1000);
        assert!(!c.contains(9));
        assert_eq!(c.read(9, 1000), 1000, "still a miss");
        assert_eq!(c.used(), 0);
    }

    #[test]
    fn flush_removes() {
        let mut c = L2Cache::new(100);
        c.write(5, 60);
        assert!(c.contains(5));
        c.flush(5);
        assert!(!c.contains(5));
        assert_eq!(c.used(), 0);
    }
}
