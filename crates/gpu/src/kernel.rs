//! GPU kernel descriptors.
//!
//! A kernel is characterized by its class (which selects the library
//! efficiency factor and the roofline side it usually lands on), its
//! integer-op count, and its DRAM traffic after L2 filtering.

/// Kernel classes, matching the paper's breakdown categories
/// (Figs. 2, 3, 10): (I)NTT, BConv, element-wise, automorphism.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelClass {
    /// Forward or inverse NTT (compute-bound).
    Ntt,
    /// Basis conversion matrix product (compute-bound).
    BConv,
    /// Element-wise modular arithmetic (bandwidth-bound, < 2 ops/byte).
    ElementWise,
    /// Automorphism data permutation (bandwidth-bound gather).
    Automorphism,
    /// Explicit DRAM write-back inserted for PIM coherence (§V-C).
    WriteBack,
}

impl KernelClass {
    /// Display label used in breakdown tables.
    pub fn label(&self) -> &'static str {
        match self {
            KernelClass::Ntt => "(I)NTT",
            KernelClass::BConv => "BConv",
            KernelClass::ElementWise => "element-wise",
            KernelClass::Automorphism => "automorphism",
            KernelClass::WriteBack => "write-back",
        }
    }
}

/// A fully characterized GPU kernel instance.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelDesc {
    /// Kernel class.
    pub class: KernelClass,
    /// 32-bit integer operations executed.
    pub int_ops: u64,
    /// Bytes read from DRAM (post-L2).
    pub dram_read: u64,
    /// Bytes written to DRAM.
    pub dram_write: u64,
    /// Bytes served from L2 (for energy accounting).
    pub l2_bytes: u64,
}

impl KernelDesc {
    /// A kernel with all traffic going to DRAM (no reuse).
    pub fn new(class: KernelClass, int_ops: u64, dram_read: u64, dram_write: u64) -> Self {
        Self {
            class,
            int_ops,
            dram_read,
            dram_write,
            l2_bytes: 0,
        }
    }

    /// Total DRAM bytes moved.
    pub fn dram_bytes(&self) -> u64 {
        self.dram_read + self.dram_write
    }

    /// Arithmetic intensity in ops per DRAM byte.
    pub fn intensity(&self) -> f64 {
        if self.dram_bytes() == 0 {
            f64::INFINITY
        } else {
            self.int_ops as f64 / self.dram_bytes() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intensity_computation() {
        let k = KernelDesc::new(KernelClass::ElementWise, 100, 60, 40);
        assert_eq!(k.dram_bytes(), 100);
        assert!((k.intensity() - 1.0).abs() < 1e-12);
        let pure = KernelDesc::new(KernelClass::Ntt, 1000, 0, 0);
        assert!(pure.intensity().is_infinite());
    }

    #[test]
    fn labels() {
        assert_eq!(KernelClass::Ntt.label(), "(I)NTT");
        assert_eq!(KernelClass::ElementWise.label(), "element-wise");
    }
}
