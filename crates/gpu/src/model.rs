//! The roofline timing and energy model.

use crate::config::{GpuConfig, LibraryProfile};
use crate::kernel::{KernelClass, KernelDesc};

/// Cost of one kernel under the model.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct KernelCost {
    /// Kernel time in nanoseconds.
    pub time_ns: f64,
    /// Energy in joules (compute + memory + static share).
    pub energy_j: f64,
    /// True if the bandwidth side of the roofline bound the kernel.
    pub bandwidth_bound: bool,
    /// The compute side of the roofline, before taking the max.
    pub compute_ns: f64,
    /// The memory side of the roofline, before taking the max.
    pub mem_ns: f64,
}

impl KernelCost {
    /// Accumulates another kernel's cost.
    pub fn accumulate(&mut self, other: &KernelCost) {
        self.time_ns += other.time_ns;
        self.energy_j += other.energy_j;
        self.bandwidth_bound = self.bandwidth_bound || other.bandwidth_bound;
        self.compute_ns += other.compute_ns;
        self.mem_ns += other.mem_ns;
    }
}

/// GPU roofline model bound to a hardware config and library profile.
#[derive(Debug, Clone)]
pub struct GpuModel {
    cfg: GpuConfig,
    lib: LibraryProfile,
}

impl GpuModel {
    /// Binds hardware and library.
    pub fn new(cfg: GpuConfig, lib: LibraryProfile) -> Self {
        Self { cfg, lib }
    }

    /// The hardware configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// The library profile.
    pub fn library(&self) -> &LibraryProfile {
        &self.lib
    }

    fn efficiencies(&self, class: KernelClass) -> (f64, f64) {
        // (compute efficiency, bandwidth efficiency)
        match class {
            KernelClass::Ntt => (self.lib.ntt_eff, 0.85),
            KernelClass::BConv => (self.lib.bconv_eff, 0.85),
            KernelClass::ElementWise => (0.7, self.lib.elementwise_eff),
            KernelClass::Automorphism => (0.7, self.lib.automorphism_eff),
            KernelClass::WriteBack => (1.0, 0.9),
        }
    }

    /// Evaluates one kernel.
    pub fn cost(&self, k: &KernelDesc) -> KernelCost {
        let (ce, be) = self.efficiencies(k.class);
        let compute_ns = k.int_ops as f64 / (self.cfg.int_tops * 1e12 * ce) * 1e9;
        let mem_ns = k.dram_bytes() as f64 / (self.cfg.dram_bw_gbps * 1e9 * be) * 1e9;
        // Coherence write-backs are extra stores *inside* the producing
        // kernel (§V-C), not separate launches.
        let launch = if k.class == KernelClass::WriteBack {
            0.0
        } else {
            self.cfg.kernel_launch_ns
        };
        let time_ns = compute_ns.max(mem_ns) + launch;
        let energy_j = k.int_ops as f64 * self.cfg.compute_pj_per_op * 1e-12
            + k.dram_bytes() as f64 * self.dram_pj_per_byte() * 1e-12
            + k.l2_bytes as f64 * self.cfg.l2_pj_per_byte * 1e-12
            + time_ns * 1e-9 * self.cfg.static_power_w;
        KernelCost {
            time_ns,
            energy_j,
            bandwidth_bound: mem_ns > compute_ns,
            compute_ns,
            mem_ns,
        }
    }

    /// Effective DRAM energy per byte for this GPU class (off-chip
    /// transfer; HBM vs GDDR difference is folded into the constant).
    pub fn dram_pj_per_byte(&self) -> f64 {
        // ≈ (array + off-chip I/O) per bit × 8, matching the dram crate's
        // HBM2E/GDDR6X parameters.
        if self.cfg.dram_bw_gbps > 1200.0 {
            8.0 * (0.5 + 3.4) // HBM2E-class
        } else {
            8.0 * (0.5 + 7.5) // GDDR6X-class
        }
    }

    /// The roofline ridge point for a kernel class: the arithmetic
    /// intensity (int-ops per DRAM byte) at which the kernel transitions
    /// from bandwidth-bound to compute-bound. Element-wise FHE kernels sit
    /// at < 2 ops/byte — far left of the A100's ~8 ops/byte ridge — which
    /// is the paper's §IV-D diagnosis in one number.
    pub fn ridge_point(&self, class: KernelClass) -> f64 {
        let (ce, be) = self.efficiencies(class);
        (self.cfg.int_tops * 1e12 * ce) / (self.cfg.dram_bw_gbps * 1e9 * be)
    }

    /// Evaluates a kernel sequence (stream-ordered, §V-C).
    pub fn cost_sequence(&self, ks: &[KernelDesc]) -> KernelCost {
        let mut total = KernelCost::default();
        for k in ks {
            total.accumulate(&self.cost(k));
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> GpuModel {
        GpuModel::new(GpuConfig::a100_80gb(), LibraryProfile::cheddar())
    }

    #[test]
    fn elementwise_is_bandwidth_bound() {
        // An element-wise op at < 2 ops/byte (§IV-D).
        let m = model();
        let bytes = 100 << 20;
        let k = KernelDesc::new(KernelClass::ElementWise, bytes, bytes / 2, bytes / 2);
        let c = m.cost(&k);
        assert!(c.bandwidth_bound, "element-wise must hit the memory wall");
    }

    /// Builds an NTT kernel the way the IR layer does after L2 filtering:
    /// a 14 MB polynomial fits the 40 MB L2, so the transform's traffic is
    /// served on-chip and only the butterfly compute remains
    /// ((N/2)·log N butterflies × ~10 int-ops: one modmul ≈ 8 ops plus the
    /// add/sub pair, §III-A D2).
    fn cached_ntt(n: u64, limbs: u64) -> KernelDesc {
        let ops = n / 2 * 16 * 10 * limbs;
        let mut k = KernelDesc::new(KernelClass::Ntt, ops, 0, 0);
        k.l2_bytes = 2 * 4 * n * limbs;
        k
    }

    #[test]
    fn ntt_is_compute_bound_at_scale() {
        let m = model();
        let c = m.cost(&cached_ntt(1 << 16, 54));
        assert!(!c.bandwidth_bound, "NTT must be compute-bound");
    }

    #[test]
    fn faster_gpu_helps_compute_not_bandwidth() {
        // §IV-D: the 4090 speeds up NTT ~2× but element-wise gets *slower*
        // (it has less bandwidth than the A100).
        let a = GpuModel::new(GpuConfig::a100_80gb(), LibraryProfile::cheddar());
        let g = GpuModel::new(GpuConfig::rtx4090(), LibraryProfile::cheddar());
        let n: u64 = 1 << 16;
        let ntt = cached_ntt(n, 54);
        let ew = KernelDesc::new(KernelClass::ElementWise, 54 * n, 3 * 4 * n * 54, 4 * n * 54);
        let ntt_speedup = a.cost(&ntt).time_ns / g.cost(&ntt).time_ns;
        assert!(
            (1.6..2.5).contains(&ntt_speedup),
            "4090 NTT speedup ≈ 2×, got {ntt_speedup:.2}"
        );
        assert!(
            g.cost(&ew).time_ns > a.cost(&ew).time_ns,
            "element-wise follows bandwidth, and the 4090 has less"
        );
    }

    #[test]
    fn library_profiles_order_ntt_times() {
        let ntt = cached_ntt(1 << 16, 54);
        let t = |lib: LibraryProfile| {
            GpuModel::new(GpuConfig::a100_80gb(), lib)
                .cost(&ntt)
                .time_ns
        };
        let cheddar = t(LibraryProfile::cheddar());
        let hundredx = t(LibraryProfile::hundredx());
        let phantom = t(LibraryProfile::phantom());
        assert!(cheddar < hundredx && cheddar < phantom);
        let ratio = hundredx / cheddar;
        assert!(
            (1.6..2.0).contains(&ratio),
            "Fig. 2a: Cheddar ≈1.8× faster NTT, got {ratio:.2}"
        );
    }

    #[test]
    fn ridge_point_diagnoses_the_memory_wall() {
        // §IV-D: element-wise ops at < 2 ops/byte sit far below the ridge.
        let a = GpuModel::new(GpuConfig::a100_80gb(), LibraryProfile::cheddar());
        let ridge = a.ridge_point(KernelClass::ElementWise);
        assert!(
            ridge > 4.0,
            "element-wise intensity (<2) must be well below the ridge {ridge:.1}"
        );
        // The 4090's ridge is much higher (more TOPS, less bandwidth): even
        // harder for element-wise ops.
        let g = GpuModel::new(GpuConfig::rtx4090(), LibraryProfile::cheddar());
        assert!(g.ridge_point(KernelClass::ElementWise) > 2.0 * ridge);
    }

    #[test]
    fn energy_includes_all_terms() {
        let m = model();
        let k = KernelDesc::new(KernelClass::ElementWise, 1 << 20, 1 << 20, 1 << 20);
        let c = m.cost(&k);
        // Lower bound: just the DRAM traffic energy.
        let dram_only = (2u64 << 20) as f64 * m.dram_pj_per_byte() * 1e-12;
        assert!(c.energy_j > dram_only);
    }

    #[test]
    fn sequence_accumulates() {
        let m = model();
        let k = KernelDesc::new(KernelClass::ElementWise, 1000, 1000, 0);
        let seq = m.cost_sequence(&[k.clone(), k.clone()]);
        let single = m.cost(&k);
        assert!((seq.time_ns - 2.0 * single.time_ns).abs() < 1e-9);
    }
}
