//! DRAM device timing and energy simulator.
//!
//! Models what the Anaheim PIM execution engine needs from a DRAM simulator
//! (the paper builds on Ramulator 2.0, §VII-A):
//!
//! - per-bank command timing (ACT / RD / WR / PRE with tRCD, tRP, tRAS,
//!   tCCD, tRTP, tWR guards) via a bank state machine;
//! - an *all-bank lockstep* execution mode, the PIM operating mode of
//!   GDDR6-AiM-style devices (§II-D): every bank in a die receives the same
//!   command stream, so simulating one bank's schedule yields the kernel
//!   latency while counters scale by the bank count;
//! - energy accounting per O'Connor et al. (MICRO'17) style per-bit access
//!   energies, split into row activation, array access, on-die data
//!   movement, and off-chip I/O — the split that produces the paper's
//!   Fig. 4b energy comparison.
//!
//! Presets are provided for the two evaluated memory systems: HBM2E
//! (A100 80GB, 5 stacks) and GDDR6X (RTX 4090, 12 dies).

pub mod bank;
pub mod config;
pub mod energy;
pub mod engine;
pub mod regular;

pub use bank::{Bank, BankState};
pub use config::{DramConfig, DramEnergyParams, DramGeometry, DramTiming};
pub use energy::EnergyAccount;
pub use engine::{BankCommand, LockstepEngine, LockstepResult};
pub use regular::{Access, RegularEngine, StreamResult};
