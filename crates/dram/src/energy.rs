//! Energy accounting.
//!
//! Accumulates DRAM events into the four distance-based categories of the
//! paper's energy analysis (§V-D, Fig. 4b): row activation, array access,
//! on-die movement (to a near-bank unit or to the logic die), and off-chip
//! I/O. Totals are reported in joules.

use crate::config::DramEnergyParams;

/// Where accessed data is consumed, which determines the movement cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessDestination {
    /// Consumed by a PIM unit adjacent to the bank.
    NearBank,
    /// Consumed by a PIM unit on the HBM logic die (via TSVs).
    LogicDie,
    /// Transferred off-chip to the GPU.
    OffChip,
}

/// A running energy account.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EnergyAccount {
    /// ACT/PRE pairs.
    pub acts: u64,
    /// Bits moved to near-bank consumers.
    pub nearbank_bits: u64,
    /// Bits moved to logic-die consumers.
    pub logicdie_bits: u64,
    /// Bits moved off-chip.
    pub offchip_bits: u64,
}

impl EnergyAccount {
    /// An empty account.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `acts` ACT/PRE pairs.
    pub fn add_acts(&mut self, acts: u64) {
        self.acts += acts;
    }

    /// Records a data access of `bytes` bytes to the given destination.
    pub fn add_access(&mut self, bytes: u64, dest: AccessDestination) {
        let bits = bytes * 8;
        match dest {
            AccessDestination::NearBank => self.nearbank_bits += bits,
            AccessDestination::LogicDie => self.logicdie_bits += bits,
            AccessDestination::OffChip => self.offchip_bits += bits,
        }
    }

    /// Merges another account into this one.
    pub fn merge(&mut self, other: &EnergyAccount) {
        self.acts += other.acts;
        self.nearbank_bits += other.nearbank_bits;
        self.logicdie_bits += other.logicdie_bits;
        self.offchip_bits += other.offchip_bits;
    }

    /// Total bytes moved (any destination).
    pub fn total_bytes(&self) -> u64 {
        (self.nearbank_bits + self.logicdie_bits + self.offchip_bits) / 8
    }

    /// Total energy in joules for the given parameters.
    pub fn total_joules(&self, p: &DramEnergyParams) -> f64 {
        let act = self.acts as f64 * p.act_pre_pj;
        let near = self.nearbank_bits as f64 * (p.array_pj_per_bit + p.nearbank_move_pj_per_bit);
        let logic = self.logicdie_bits as f64 * (p.array_pj_per_bit + p.logicdie_move_pj_per_bit);
        let off = self.offchip_bits as f64 * (p.array_pj_per_bit + p.offchip_pj_per_bit);
        (act + near + logic + off) * 1e-12
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DramEnergyParams;

    #[test]
    fn accounting_and_totals() {
        let p = DramEnergyParams::hbm2e();
        let mut acc = EnergyAccount::new();
        acc.add_acts(10);
        acc.add_access(1024, AccessDestination::NearBank);
        acc.add_access(1024, AccessDestination::OffChip);
        assert_eq!(acc.total_bytes(), 2048);
        let j = acc.total_joules(&p);
        let want = (10.0 * p.act_pre_pj
            + 8192.0 * (p.array_pj_per_bit + p.nearbank_move_pj_per_bit)
            + 8192.0 * (p.array_pj_per_bit + p.offchip_pj_per_bit))
            * 1e-12;
        assert!((j - want).abs() < 1e-18);
    }

    #[test]
    fn pim_access_cheaper_than_offchip() {
        // Same traffic, different destination: PIM must win (the Fig. 4b
        // energy argument).
        let p = DramEnergyParams::hbm2e();
        let mut pim = EnergyAccount::new();
        pim.add_access(1 << 30, AccessDestination::NearBank);
        let mut gpu = EnergyAccount::new();
        gpu.add_access(1 << 30, AccessDestination::OffChip);
        let ratio = gpu.total_joules(&p) / pim.total_joules(&p);
        assert!(ratio > 2.0, "off-chip must cost >2× near-bank, got {ratio}");
    }

    #[test]
    fn merge_adds_categories() {
        let mut a = EnergyAccount::new();
        a.add_acts(1);
        a.add_access(32, AccessDestination::LogicDie);
        let mut b = EnergyAccount::new();
        b.add_acts(2);
        b.add_access(64, AccessDestination::LogicDie);
        a.merge(&b);
        assert_eq!(a.acts, 3);
        assert_eq!(a.logicdie_bits, 96 * 8);
    }
}
