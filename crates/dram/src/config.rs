//! DRAM configuration: timing, geometry, and energy parameters.
//!
//! Values follow public datasheets and the sources the paper cites:
//! O'Connor et al. (Fine-Grained DRAM, MICRO'17) for energy, JEDEC-class
//! timing for HBM2E and GDDR6X, and Table III of the paper for the memory
//! systems of the two evaluated GPUs.

/// Core DRAM timing parameters, in nanoseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct DramTiming {
    /// ACT to column command (row activation latency).
    pub t_rcd: f64,
    /// PRE to ACT (precharge latency).
    pub t_rp: f64,
    /// Minimum ACT to PRE (row restoration).
    pub t_ras: f64,
    /// Column-to-column interval for consecutive 256-bit chunk accesses
    /// within a bank (long CCD).
    pub t_ccd: f64,
    /// Read to precharge.
    pub t_rtp: f64,
    /// Write recovery before precharge.
    pub t_wr: f64,
}

impl DramTiming {
    /// Typical HBM2E timing.
    pub fn hbm2e() -> Self {
        Self {
            t_rcd: 14.0,
            t_rp: 14.0,
            t_ras: 33.0,
            t_ccd: 2.0,
            t_rtp: 5.0,
            t_wr: 15.0,
        }
    }

    /// Typical GDDR6X timing.
    pub fn gddr6x() -> Self {
        Self {
            t_rcd: 14.0,
            t_rp: 14.0,
            t_ras: 32.0,
            t_ccd: 1.5,
            t_rtp: 4.0,
            t_wr: 14.0,
        }
    }

    /// The full row-switch penalty paid when a lockstep PIM phase moves to a
    /// different row: PRE + ACT.
    pub fn row_switch(&self) -> f64 {
        self.t_rp + self.t_rcd
    }
}

/// Geometry of the memory system attached to one GPU.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DramGeometry {
    /// Independent dies (HBM: dies across all stacks; GDDR: chips).
    pub dies: usize,
    /// Banks per die.
    pub banks_per_die: usize,
    /// Row size in bits (8 Kb in HBM-class parts).
    pub row_bits: usize,
    /// Column access granularity in bits (256 in the paper, §VI-B).
    pub chunk_bits: usize,
    /// Die groups for PIM constant broadcast (§VI-B): A100 groups by stack,
    /// RTX 4090 groups 4 dies.
    pub die_groups: usize,
}

impl DramGeometry {
    /// Chunks per row.
    pub fn chunks_per_row(&self) -> usize {
        self.row_bits / self.chunk_bits
    }

    /// Total banks in the system.
    pub fn total_banks(&self) -> usize {
        self.dies * self.banks_per_die
    }

    /// Dies per die group.
    pub fn dies_per_group(&self) -> usize {
        self.dies / self.die_groups
    }
}

/// Energy parameters in picojoules (per event or per bit), following the
/// fine-grained breakdown of O'Connor et al. that the paper uses (§V-D,
/// §VII-A): the *distance data travels* determines the per-bit cost, which
/// is exactly why PIM saves energy.
#[derive(Debug, Clone, PartialEq)]
pub struct DramEnergyParams {
    /// One ACT+PRE pair (whole row), pJ.
    pub act_pre_pj: f64,
    /// DRAM cell-array access, pJ/bit.
    pub array_pj_per_bit: f64,
    /// On-die movement from the array to the bank periphery (where a
    /// near-bank PIM unit sits), pJ/bit.
    pub nearbank_move_pj_per_bit: f64,
    /// Movement from the array across the die and TSVs to the HBM logic die
    /// (where a custom-HBM PIM unit sits), pJ/bit.
    pub logicdie_move_pj_per_bit: f64,
    /// Full off-chip transfer to the GPU (die datapath + PHY + bus), pJ/bit.
    pub offchip_pj_per_bit: f64,
}

impl DramEnergyParams {
    /// HBM2E-class energies. Per O'Connor et al., the ~3.9 pJ/bit HBM2
    /// access cost is dominated by data *movement* (on-die datapath, TSVs,
    /// interposer I/O); the array access itself is cheap — which is
    /// precisely the asymmetry PIM exploits (§V-D).
    pub fn hbm2e() -> Self {
        Self {
            act_pre_pj: 909.0, // ~0.11 pJ/bit for an 8Kb row
            array_pj_per_bit: 0.5,
            nearbank_move_pj_per_bit: 0.25,
            logicdie_move_pj_per_bit: 0.9,
            offchip_pj_per_bit: 3.4,
        }
    }

    /// GDDR6X-class energies (long PCB traces make off-chip expensive).
    pub fn gddr6x() -> Self {
        Self {
            act_pre_pj: 909.0,
            array_pj_per_bit: 0.5,
            nearbank_move_pj_per_bit: 0.25,
            logicdie_move_pj_per_bit: 0.9,
            offchip_pj_per_bit: 7.5,
        }
    }
}

/// A complete DRAM system description.
#[derive(Debug, Clone, PartialEq)]
pub struct DramConfig {
    /// Human-readable name.
    pub name: &'static str,
    /// Timing parameters.
    pub timing: DramTiming,
    /// Geometry.
    pub geometry: DramGeometry,
    /// Energy parameters.
    pub energy: DramEnergyParams,
    /// Peak external bandwidth in GB/s (Table III).
    pub external_bw_gbps: f64,
    /// Capacity in GiB.
    pub capacity_gib: usize,
}

impl DramConfig {
    /// The A100 80GB memory system: five 8-high HBM2E stacks,
    /// 1802 GB/s, 64 banks per die (Table III).
    pub fn a100_hbm2e() -> Self {
        Self {
            name: "A100-80GB HBM2E",
            timing: DramTiming::hbm2e(),
            geometry: DramGeometry {
                dies: 40, // 5 stacks × 8-high
                banks_per_die: 64,
                row_bits: 8192,
                chunk_bits: 256,
                die_groups: 5, // one group per stack
            },
            energy: DramEnergyParams::hbm2e(),
            external_bw_gbps: 1802.0,
            capacity_gib: 80,
        }
    }

    /// The RTX 4090 memory system: 12 GDDR6X dies, 939 GB/s (Table III
    /// lists the ~1 TB/s class configuration), 32 banks per die.
    pub fn rtx4090_gddr6x() -> Self {
        Self {
            name: "RTX 4090 GDDR6X",
            timing: DramTiming::gddr6x(),
            geometry: DramGeometry {
                dies: 12,
                banks_per_die: 32,
                row_bits: 8192,
                chunk_bits: 256,
                die_groups: 3, // 4 dies per group (Table III)
            },
            energy: DramEnergyParams::gddr6x(),
            external_bw_gbps: 939.0,
            capacity_gib: 24,
        }
    }

    /// Bytes moved per chunk access.
    pub fn chunk_bytes(&self) -> usize {
        self.geometry.chunk_bits / 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_consistent_with_table3() {
        let a = DramConfig::a100_hbm2e();
        assert_eq!(a.geometry.dies, 40);
        assert_eq!(a.geometry.banks_per_die, 64);
        assert_eq!(a.geometry.total_banks(), 2560);
        assert_eq!(a.geometry.die_groups, 5);
        assert_eq!(a.geometry.dies_per_group(), 8);
        assert_eq!(a.capacity_gib, 80);

        let g = DramConfig::rtx4090_gddr6x();
        assert_eq!(g.geometry.total_banks(), 384);
        assert_eq!(g.capacity_gib, 24);
        assert!(g.energy.offchip_pj_per_bit > a.energy.offchip_pj_per_bit);
    }

    #[test]
    fn row_geometry() {
        let a = DramConfig::a100_hbm2e();
        assert_eq!(a.geometry.chunks_per_row(), 32); // 8Kb / 256b (§VI-B)
        assert_eq!(a.chunk_bytes(), 32);
    }

    #[test]
    fn row_switch_cost() {
        let t = DramTiming::hbm2e();
        assert_eq!(t.row_switch(), 28.0);
    }

    #[test]
    fn energy_ordering_reflects_distance() {
        // The central premise of PIM energy savings: cost grows with
        // distance (near-bank < logic die < off-chip).
        for e in [DramEnergyParams::hbm2e(), DramEnergyParams::gddr6x()] {
            assert!(e.nearbank_move_pj_per_bit < e.logicdie_move_pj_per_bit);
            assert!(e.logicdie_move_pj_per_bit < e.offchip_pj_per_bit);
        }
    }
}
