//! All-bank lockstep execution: the PIM operating mode.
//!
//! During PIM execution, every bank of a die receives the same command
//! stream (GDDR6-AiM-style all-bank operations, §II-D and §VI). Unlike
//! regular operation — where bank-level parallelism hides ACT/PRE behind
//! other banks' transfers on the shared bus — lockstep operation *exposes*
//! the row-switch latency directly (§VI-B), which is exactly what the
//! column-partitioning layout then amortizes.
//!
//! Because all banks execute identically, simulating a single bank yields
//! the kernel latency; event counters scale linearly with the bank count.

use crate::bank::Bank;
use crate::config::DramConfig;

/// A command in a lockstep (per-bank) schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BankCommand {
    /// Open a row.
    Act {
        /// The row to open.
        row: u32,
    },
    /// Close the open row.
    Pre,
    /// Stream `chunks` column reads from the open row; the PIM unit
    /// consumes each chunk as it arrives, at the slower of the column
    /// cadence and `compute_ns_per_chunk`.
    Read {
        /// Number of 256-bit chunks.
        chunks: u32,
    },
    /// Stream `chunks` column writes into the open row.
    Write {
        /// Number of 256-bit chunks.
        chunks: u32,
    },
}

/// Result of a lockstep execution on one bank (identical across banks).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LockstepResult {
    /// Kernel latency in nanoseconds.
    pub latency_ns: f64,
    /// ACT/PRE pairs per bank.
    pub acts_per_bank: u64,
    /// Chunks read per bank.
    pub chunk_reads_per_bank: u64,
    /// Chunks written per bank.
    pub chunk_writes_per_bank: u64,
}

impl LockstepResult {
    /// Bytes touched per bank.
    pub fn bytes_per_bank(&self, cfg: &DramConfig) -> f64 {
        (self.chunk_reads_per_bank + self.chunk_writes_per_bank) as f64 * cfg.chunk_bytes() as f64
    }
}

/// A lockstep schedule that violates the DRAM command protocol — the
/// signature of dropped or reordered bank commands (fault injection, or a
/// scheduling bug).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolError {
    /// Read issued with no open row.
    ReadWithoutOpenRow,
    /// Write issued with no open row.
    WriteWithoutOpenRow,
    /// Activate issued while a row is already open.
    ActOnOpenBank,
    /// Precharge issued on an idle bank.
    PreOnIdleBank,
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::ReadWithoutOpenRow => write!(f, "RD requires an open row"),
            ProtocolError::WriteWithoutOpenRow => write!(f, "WR requires an open row"),
            ProtocolError::ActOnOpenBank => write!(f, "ACT requires an idle bank"),
            ProtocolError::PreOnIdleBank => write!(f, "PRE requires an open row"),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// Executes lockstep command schedules against a bank FSM.
#[derive(Debug)]
pub struct LockstepEngine<'a> {
    cfg: &'a DramConfig,
    /// Effective per-chunk processing time of the attached PIM unit in ns
    /// (1 / PIM clock for near-bank units; the streaming of chunks cannot
    /// outpace the consumer).
    compute_ns_per_chunk: f64,
}

impl<'a> LockstepEngine<'a> {
    /// Creates an engine for a DRAM config and PIM consumer cadence.
    ///
    /// # Panics
    ///
    /// Panics if the cadence is not positive.
    pub fn new(cfg: &'a DramConfig, compute_ns_per_chunk: f64) -> Self {
        assert!(compute_ns_per_chunk > 0.0, "cadence must be positive");
        Self {
            cfg,
            compute_ns_per_chunk,
        }
    }

    /// The effective per-chunk interval: the slower of the DRAM column
    /// cadence and the PIM unit's consumption rate.
    pub fn chunk_interval_ns(&self) -> f64 {
        self.cfg.timing.t_ccd.max(self.compute_ns_per_chunk)
    }

    /// Executes a lockstep schedule and returns its timing/counters.
    ///
    /// # Panics
    ///
    /// Panics if the schedule violates DRAM state rules (e.g. Read with no
    /// open row), surfacing scheduling bugs; use
    /// [`try_execute`](Self::try_execute) when the schedule may have been
    /// perturbed (fault injection) and the violation should be a value.
    pub fn execute(&self, schedule: &[BankCommand]) -> LockstepResult {
        match self.try_execute(schedule) {
            Ok(r) => r,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible variant of [`execute`](Self::execute): protocol violations
    /// (the signature of dropped/reordered commands) come back as a typed
    /// [`ProtocolError`] instead of a panic.
    pub fn try_execute(&self, schedule: &[BankCommand]) -> Result<LockstepResult, ProtocolError> {
        let t = &self.cfg.timing;
        // Column cadence limited by the PIM unit.
        let mut eff = t.clone();
        eff.t_ccd = self.chunk_interval_ns();
        let mut bank = Bank::new();
        let mut now = 0.0f64;
        let mut open = false;
        for cmd in schedule {
            match *cmd {
                BankCommand::Act { row } => {
                    if open {
                        return Err(ProtocolError::ActOnOpenBank);
                    }
                    now = bank.activate(&eff, now, row);
                    open = true;
                }
                BankCommand::Pre => {
                    if !open {
                        return Err(ProtocolError::PreOnIdleBank);
                    }
                    now = bank.precharge(&eff, now);
                    open = false;
                }
                BankCommand::Read { chunks } => {
                    if !open {
                        return Err(ProtocolError::ReadWithoutOpenRow);
                    }
                    now = bank.read(&eff, now, chunks as u64);
                }
                BankCommand::Write { chunks } => {
                    if !open {
                        return Err(ProtocolError::WriteWithoutOpenRow);
                    }
                    now = bank.write(&eff, now, chunks as u64);
                }
            }
        }
        if open {
            now = bank.precharge(&eff, now);
        }
        Ok(LockstepResult {
            latency_ns: now,
            acts_per_bank: bank.acts(),
            chunk_reads_per_bank: bank.chunk_reads(),
            chunk_writes_per_bank: bank.chunk_writes(),
        })
    }
}

/// Builds the canonical phase schedule of one Alg. 1-style iteration:
/// for each `(row, read_chunks, write_chunks)` phase, an ACT, the chunk
/// accesses, and a PRE.
pub fn iteration_schedule(phases: &[(u32, u32, u32)]) -> Vec<BankCommand> {
    let mut out = Vec::with_capacity(phases.len() * 4);
    for &(row, rd, wr) in phases {
        out.push(BankCommand::Act { row });
        if rd > 0 {
            out.push(BankCommand::Read { chunks: rd });
        }
        if wr > 0 {
            out.push(BankCommand::Write { chunks: wr });
        }
        out.push(BankCommand::Pre);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine(cfg: &DramConfig) -> LockstepEngine<'_> {
        LockstepEngine::new(cfg, 2.65) // 378 MHz near-bank unit
    }

    #[test]
    fn simple_read_kernel_timing() {
        let cfg = DramConfig::a100_hbm2e();
        let e = engine(&cfg);
        let r = e.execute(&iteration_schedule(&[(0, 8, 0)]));
        assert_eq!(r.acts_per_bank, 1);
        assert_eq!(r.chunk_reads_per_bank, 8);
        // tRCD + 8 chunks + (tRTP-ish) + tRP; at least the streaming time.
        assert!(r.latency_ns > 8.0 * e.chunk_interval_ns());
        assert!(r.latency_ns >= cfg.timing.t_ras + cfg.timing.t_rp);
    }

    #[test]
    fn amortization_more_chunks_per_act_is_faster_per_chunk() {
        let cfg = DramConfig::a100_hbm2e();
        let e = engine(&cfg);
        // 32 chunks in one row vs 32 chunks across 8 rows (4 each).
        let amortized = e.execute(&iteration_schedule(&[(0, 32, 0)]));
        let thrashed = e.execute(&iteration_schedule(
            &(0..8).map(|r| (r as u32, 4, 0)).collect::<Vec<_>>(),
        ));
        assert!(
            thrashed.latency_ns > 1.5 * amortized.latency_ns,
            "row thrashing must be clearly slower: {} vs {}",
            thrashed.latency_ns,
            amortized.latency_ns
        );
        assert_eq!(
            amortized.chunk_reads_per_bank,
            thrashed.chunk_reads_per_bank
        );
        assert_eq!(thrashed.acts_per_bank, 8);
    }

    #[test]
    fn pim_cadence_limits_streaming() {
        let cfg = DramConfig::a100_hbm2e();
        let fast_consumer = LockstepEngine::new(&cfg, 0.1);
        let slow_consumer = LockstepEngine::new(&cfg, 10.0);
        assert_eq!(fast_consumer.chunk_interval_ns(), cfg.timing.t_ccd);
        assert_eq!(slow_consumer.chunk_interval_ns(), 10.0);
        let sched = iteration_schedule(&[(0, 16, 0)]);
        let f = fast_consumer.execute(&sched);
        let s = slow_consumer.execute(&sched);
        assert!(s.latency_ns > f.latency_ns);
    }

    #[test]
    fn write_phases_counted() {
        let cfg = DramConfig::rtx4090_gddr6x();
        let e = engine(&cfg);
        let r = e.execute(&iteration_schedule(&[(0, 4, 0), (1, 0, 2)]));
        assert_eq!(r.acts_per_bank, 2);
        assert_eq!(r.chunk_reads_per_bank, 4);
        assert_eq!(r.chunk_writes_per_bank, 2);
        let bytes = r.bytes_per_bank(&cfg);
        assert_eq!(bytes, 6.0 * 32.0);
    }

    #[test]
    fn open_row_auto_precharged() {
        let cfg = DramConfig::a100_hbm2e();
        let e = engine(&cfg);
        // Schedule without trailing PRE still ends cleanly.
        let r = e.execute(&[BankCommand::Act { row: 0 }, BankCommand::Read { chunks: 1 }]);
        assert_eq!(r.acts_per_bank, 1);
        assert!(r.latency_ns > 0.0);
    }

    #[test]
    #[should_panic(expected = "RD requires an open row")]
    fn invalid_schedule_panics() {
        let cfg = DramConfig::a100_hbm2e();
        let e = engine(&cfg);
        e.execute(&[BankCommand::Read { chunks: 1 }]);
    }

    #[test]
    fn try_execute_returns_typed_protocol_errors() {
        let cfg = DramConfig::a100_hbm2e();
        let e = engine(&cfg);
        assert_eq!(
            e.try_execute(&[BankCommand::Read { chunks: 1 }]),
            Err(ProtocolError::ReadWithoutOpenRow)
        );
        assert_eq!(
            e.try_execute(&[
                BankCommand::Act { row: 0 },
                BankCommand::Write { chunks: 1 }
            ])
            .map(|_| ()),
            Ok(())
        );
        assert_eq!(
            e.try_execute(&[BankCommand::Act { row: 0 }, BankCommand::Act { row: 1 }]),
            Err(ProtocolError::ActOnOpenBank)
        );
        assert_eq!(
            e.try_execute(&[BankCommand::Pre]),
            Err(ProtocolError::PreOnIdleBank)
        );
        // A dropped ACT (fault injection) surfaces as the matching error.
        let mut sched = iteration_schedule(&[(0, 4, 0)]);
        sched.remove(0);
        assert_eq!(
            e.try_execute(&sched),
            Err(ProtocolError::ReadWithoutOpenRow)
        );
    }
}
