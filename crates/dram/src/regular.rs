//! Regular (non-PIM) DRAM operation: bank-level parallelism over a shared
//! channel.
//!
//! In normal operation the DRAM keeps the shared I/O channel busy by
//! overlapping one bank's ACT/PRE with other banks' data transfers
//! (§II-D). This module models that mode so the contrast with all-bank
//! lockstep execution — where ACT/PRE is *exposed* (§VI-B) — is
//! demonstrable inside the same simulator.

use crate::bank::Bank;
use crate::config::DramConfig;

/// A request stream entry: `chunks` column accesses to `row` of `bank`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Bank index within the channel.
    pub bank: usize,
    /// Row to open.
    pub row: u32,
    /// 256-bit chunks to transfer.
    pub chunks: u32,
    /// True for writes.
    pub write: bool,
}

/// Result of streaming a request sequence through one channel.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StreamResult {
    /// Completion time of the last transfer (ns).
    pub latency_ns: f64,
    /// Total chunks transferred.
    pub chunks: u64,
    /// ACT/PRE pairs issued.
    pub acts: u64,
}

impl StreamResult {
    /// Achieved bandwidth in bytes/ns (= GB/s).
    pub fn bandwidth_gbps(&self, cfg: &DramConfig) -> f64 {
        self.chunks as f64 * cfg.chunk_bytes() as f64 / self.latency_ns
    }
}

/// A single-channel engine with `banks` open-page banks sharing the data
/// bus. Requests are issued in order per bank, but a bank's row switch
/// overlaps with other banks' transfers — the bus serializes only the
/// chunk transfers themselves.
#[derive(Debug)]
pub struct RegularEngine<'a> {
    cfg: &'a DramConfig,
    banks: usize,
}

impl<'a> RegularEngine<'a> {
    /// Creates an engine over `banks` banks of a channel.
    ///
    /// # Panics
    ///
    /// Panics if `banks` is 0.
    pub fn new(cfg: &'a DramConfig, banks: usize) -> Self {
        assert!(banks >= 1, "need at least one bank");
        Self { cfg, banks }
    }

    /// Streams the accesses; returns completion statistics.
    ///
    /// # Panics
    ///
    /// Panics if an access names a bank out of range.
    pub fn stream(&self, accesses: &[Access]) -> StreamResult {
        let t = &self.cfg.timing;
        let mut banks: Vec<Bank> = (0..self.banks).map(|_| Bank::new()).collect();
        let mut open_row: Vec<Option<u32>> = vec![None; self.banks];
        // When each bank last finished a transfer: row switches issue
        // *eagerly* from that point, overlapping with other banks' bus time
        // (this is exactly the hiding that lockstep mode forfeits, §VI-B).
        let mut bank_idle_at = vec![0.0f64; self.banks];
        // The shared bus frees up at this time.
        let mut bus_free = 0.0f64;
        let mut result = StreamResult::default();
        for a in accesses {
            assert!(a.bank < self.banks, "bank index out of range");
            let b = &mut banks[a.bank];
            let issue_at = bank_idle_at[a.bank];
            // Row management: open the row if needed (closing any other).
            let col_ready = match open_row[a.bank] {
                Some(r) if r == a.row => 0.0, // row hit: column ready already
                Some(_) => {
                    let pre_done = b.precharge(t, issue_at);
                    let ready = b.activate(t, pre_done, a.row);
                    result.acts += 1;
                    ready
                }
                None => {
                    let ready = b.activate(t, issue_at, a.row);
                    result.acts += 1;
                    ready
                }
            };
            open_row[a.bank] = Some(a.row);
            // Bus transfer: serialized across banks, overlapping row
            // switches of *other* banks.
            let start = bus_free.max(col_ready);
            let end = if a.write {
                b.write(t, start, a.chunks as u64)
            } else {
                b.read(t, start, a.chunks as u64)
            };
            bus_free = end;
            bank_idle_at[a.bank] = end;
            result.chunks += a.chunks as u64;
            result.latency_ns = result.latency_ns.max(end);
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{iteration_schedule, LockstepEngine};

    fn interleaved(banks: usize, rows_per_bank: u32, chunks: u32) -> Vec<Access> {
        // Round-robin across banks, new row each visit: the classic
        // bank-parallel streaming pattern.
        let mut v = Vec::new();
        for r in 0..rows_per_bank {
            for b in 0..banks {
                v.push(Access {
                    bank: b,
                    row: r,
                    chunks,
                    write: false,
                });
            }
        }
        v
    }

    #[test]
    fn bank_parallelism_hides_row_switches() {
        let cfg = DramConfig::a100_hbm2e();
        // 8 banks, 8 rows each, full-row bursts.
        let engine = RegularEngine::new(&cfg, 8);
        let r = engine.stream(&interleaved(8, 8, 32));
        // Pure transfer time: chunks × tCCD.
        let pure = r.chunks as f64 * cfg.timing.t_ccd;
        assert!(
            r.latency_ns < pure * 1.25,
            "with 8 banks the bus should stay ≥80% busy: {} vs {}",
            r.latency_ns,
            pure
        );
    }

    #[test]
    fn single_bank_exposes_row_switches() {
        let cfg = DramConfig::a100_hbm2e();
        let engine = RegularEngine::new(&cfg, 1);
        let r = engine.stream(&interleaved(1, 8, 32));
        let pure = r.chunks as f64 * cfg.timing.t_ccd;
        assert!(
            r.latency_ns > pure * 1.3,
            "one bank cannot hide ACT/PRE: {} vs {}",
            r.latency_ns,
            pure
        );
    }

    #[test]
    fn row_hits_cost_no_extra_acts() {
        let cfg = DramConfig::a100_hbm2e();
        let engine = RegularEngine::new(&cfg, 2);
        let same_row: Vec<Access> = (0..8)
            .map(|_| Access {
                bank: 0,
                row: 3,
                chunks: 4,
                write: false,
            })
            .collect();
        let r = engine.stream(&same_row);
        assert_eq!(r.acts, 1, "one activation serves the whole row streak");
    }

    #[test]
    fn regular_mode_beats_lockstep_per_bus_chunk() {
        // The §VI-B contrast: the same per-bank row-thrashing pattern is
        // cheap in regular mode (other banks hide it) but exposed in
        // lockstep PIM mode.
        let cfg = DramConfig::a100_hbm2e();
        let banks = 8;
        let regular = RegularEngine::new(&cfg, banks).stream(&interleaved(banks, 8, 4));
        let per_chunk_regular = regular.latency_ns / regular.chunks as f64;

        let lockstep = LockstepEngine::new(&cfg, cfg.timing.t_ccd).execute(&iteration_schedule(
            &(0..8).map(|r| (r as u32, 4, 0)).collect::<Vec<_>>(),
        ));
        let per_chunk_lockstep = lockstep.latency_ns / lockstep.chunk_reads_per_bank as f64;
        assert!(
            per_chunk_lockstep > 2.0 * per_chunk_regular,
            "lockstep must expose ACT/PRE: {per_chunk_lockstep:.1} vs {per_chunk_regular:.1} ns/chunk"
        );
    }

    #[test]
    fn bandwidth_metric() {
        let cfg = DramConfig::a100_hbm2e();
        let engine = RegularEngine::new(&cfg, 16);
        let r = engine.stream(&interleaved(16, 4, 32));
        let bw = r.bandwidth_gbps(&cfg);
        // 32 B per chunk every 2 ns ⇒ 16 GB/s peak per channel in this
        // simplified model.
        assert!(bw > 10.0 && bw <= 16.05, "achieved {bw:.1} GB/s");
    }

    #[test]
    #[should_panic(expected = "bank index out of range")]
    fn invalid_bank_rejected() {
        let cfg = DramConfig::a100_hbm2e();
        RegularEngine::new(&cfg, 2).stream(&[Access {
            bank: 5,
            row: 0,
            chunks: 1,
            write: false,
        }]);
    }
}
