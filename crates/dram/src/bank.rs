//! The DRAM bank state machine.
//!
//! A bank is either idle (all rows precharged) or has one row open in its
//! I/O sense amplifiers (IOSAs, §II-D). Commands are validated against the
//! timing guards of [`crate::config::DramTiming`]; violations panic, which
//! turns scheduling bugs in the PIM execution engine into test failures
//! rather than silently optimistic timings.

use crate::config::DramTiming;

/// Bank state: idle or a specific open row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BankState {
    /// All rows closed.
    Idle,
    /// `row` is latched in the IOSAs.
    Active {
        /// The open row index.
        row: u32,
    },
}

/// A single DRAM bank with its timing bookkeeping (times in ns).
#[derive(Debug, Clone)]
pub struct Bank {
    state: BankState,
    act_at: f64,
    last_col_end: f64,
    last_write_end: f64,
    pre_ready_at: f64,
    acts: u64,
    chunk_reads: u64,
    chunk_writes: u64,
}

impl Default for Bank {
    fn default() -> Self {
        Self::new()
    }
}

impl Bank {
    /// A fresh idle bank.
    pub fn new() -> Self {
        Self {
            state: BankState::Idle,
            act_at: f64::NEG_INFINITY,
            last_col_end: 0.0,
            last_write_end: f64::NEG_INFINITY,
            pre_ready_at: 0.0,
            acts: 0,
            chunk_reads: 0,
            chunk_writes: 0,
        }
    }

    /// The current state.
    pub fn state(&self) -> BankState {
        self.state
    }

    /// Number of ACTs issued.
    pub fn acts(&self) -> u64 {
        self.acts
    }

    /// Number of chunk reads served.
    pub fn chunk_reads(&self) -> u64 {
        self.chunk_reads
    }

    /// Number of chunk writes served.
    pub fn chunk_writes(&self) -> u64 {
        self.chunk_writes
    }

    /// Activates `row` at time `now`, returning the time when column
    /// commands may start (`now + tRCD`).
    ///
    /// # Panics
    ///
    /// Panics if the bank is not idle or the precharge has not completed.
    pub fn activate(&mut self, t: &DramTiming, now: f64, row: u32) -> f64 {
        assert_eq!(self.state, BankState::Idle, "ACT requires an idle bank");
        assert!(
            now + 1e-9 >= self.pre_ready_at,
            "ACT at {now} before precharge completes at {}",
            self.pre_ready_at
        );
        self.state = BankState::Active { row };
        self.act_at = now;
        self.acts += 1;
        now + t.t_rcd
    }

    /// Performs `chunks` consecutive column reads starting no earlier than
    /// `now`; returns the completion time.
    ///
    /// # Panics
    ///
    /// Panics if no row is open or the row-activation latency has not
    /// elapsed.
    pub fn read(&mut self, t: &DramTiming, now: f64, chunks: u64) -> f64 {
        assert!(
            matches!(self.state, BankState::Active { .. }),
            "RD requires an open row"
        );
        let start = now.max(self.act_at + t.t_rcd).max(self.last_col_end);
        let end = start + chunks as f64 * t.t_ccd;
        self.last_col_end = end;
        self.chunk_reads += chunks;
        end
    }

    /// Performs `chunks` consecutive column writes; returns completion time.
    ///
    /// # Panics
    ///
    /// Panics if no row is open or the row-activation latency has not
    /// elapsed.
    pub fn write(&mut self, t: &DramTiming, now: f64, chunks: u64) -> f64 {
        assert!(
            matches!(self.state, BankState::Active { .. }),
            "WR requires an open row"
        );
        let start = now.max(self.act_at + t.t_rcd).max(self.last_col_end);
        let end = start + chunks as f64 * t.t_ccd;
        self.last_col_end = end;
        self.last_write_end = end;
        self.chunk_writes += chunks;
        end
    }

    /// Precharges the open row; returns the time when the next ACT may
    /// issue (honouring tRAS, tRTP, and tWR).
    ///
    /// # Panics
    ///
    /// Panics if the bank is idle.
    pub fn precharge(&mut self, t: &DramTiming, now: f64) -> f64 {
        assert!(
            matches!(self.state, BankState::Active { .. }),
            "PRE requires an open row"
        );
        let earliest = (self.act_at + t.t_ras)
            .max(self.last_col_end + t.t_rtp)
            .max(self.last_write_end + t.t_wr);
        let start = now.max(earliest);
        self.state = BankState::Idle;
        self.pre_ready_at = start + t.t_rp;
        self.pre_ready_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> DramTiming {
        DramTiming::hbm2e()
    }

    #[test]
    fn act_read_pre_cycle() {
        let timing = t();
        let mut b = Bank::new();
        let col_ready = b.activate(&timing, 0.0, 7);
        assert_eq!(col_ready, timing.t_rcd);
        assert_eq!(b.state(), BankState::Active { row: 7 });
        let end = b.read(&timing, col_ready, 8);
        assert_eq!(end, timing.t_rcd + 8.0 * timing.t_ccd);
        let ready = b.precharge(&timing, end);
        // PRE start is bounded below by tRAS and read-to-precharge.
        assert!(ready >= timing.t_ras + timing.t_rp);
        assert_eq!(b.state(), BankState::Idle);
        assert_eq!(b.acts(), 1);
        assert_eq!(b.chunk_reads(), 8);
    }

    #[test]
    fn write_recovery_delays_precharge() {
        let timing = t();
        let mut b = Bank::new();
        let c = b.activate(&timing, 0.0, 0);
        let wend = b.write(&timing, c, 4);
        let ready = b.precharge(&timing, wend);
        assert!(
            ready >= wend + timing.t_wr + timing.t_rp,
            "write recovery must gate the precharge"
        );
        assert_eq!(b.chunk_writes(), 4);
    }

    #[test]
    fn consecutive_reads_respect_ccd() {
        let timing = t();
        let mut b = Bank::new();
        let c = b.activate(&timing, 0.0, 0);
        let e1 = b.read(&timing, c, 1);
        let e2 = b.read(&timing, c, 1); // issued "early": must queue after e1
        assert_eq!(e2, e1 + timing.t_ccd);
    }

    #[test]
    #[should_panic(expected = "ACT requires an idle bank")]
    fn double_activate_rejected() {
        let timing = t();
        let mut b = Bank::new();
        b.activate(&timing, 0.0, 0);
        b.activate(&timing, 100.0, 1);
    }

    #[test]
    #[should_panic(expected = "RD requires an open row")]
    fn read_without_act_rejected() {
        let timing = t();
        let mut b = Bank::new();
        b.read(&timing, 0.0, 1);
    }

    #[test]
    #[should_panic(expected = "before precharge completes")]
    fn act_during_precharge_rejected() {
        let timing = t();
        let mut b = Bank::new();
        let c = b.activate(&timing, 0.0, 0);
        let e = b.read(&timing, c, 1);
        let ready = b.precharge(&timing, e);
        b.activate(&timing, ready - 5.0, 1);
    }
}
