//! CKKS parameter sets.
//!
//! Mirrors Table IV of the paper: ring degree `N`, modulus chain length `L`,
//! auxiliary modulus size `α` (number of `P` primes), decomposition number
//! `D = ⌈L/α⌉` [Han–Ki], scaling factor `Δ`, and secret Hamming weights.
//!
//! Two kinds of parameter sets exist in this reproduction:
//!
//! - *numeric* sets (small `N`) instantiated into a [`crate::context::CkksContext`]
//!   for functional evaluation and tests, and
//! - the *paper* set (`N = 2^16`, `L ≤ 54`, `α ≤ 14`, `D = 4`), which is used
//!   by the performance model in `anaheim-core` (it never needs numeric NTT
//!   tables of that size).

/// Parameters of a CKKS instance.
#[derive(Debug, Clone, PartialEq)]
pub struct CkksParams {
    /// log2 of the ring degree `N`.
    pub log_n: u32,
    /// Number of rescaling levels: the modulus chain is `q_0, …, q_L`
    /// (`L+1` primes), supporting `L` rescales.
    pub levels: usize,
    /// Number of auxiliary primes `P_i` (α in the paper).
    pub alpha: usize,
    /// log2 of the scaling factor Δ; rescale primes are chosen near `2^scale_bits`.
    pub scale_bits: u32,
    /// log2 of the base prime `q_0` (must exceed `scale_bits` for decryption
    /// headroom).
    pub q0_bits: u32,
    /// log2 size of the auxiliary primes.
    pub p_bits: u32,
    /// Hamming weight of the (dense) secret key.
    pub hamming_weight: usize,
    /// Standard deviation of the error distribution.
    pub sigma: f64,
}

impl CkksParams {
    /// Starts a builder with sane defaults (`q0_bits = 60`, `p_bits = 60`,
    /// `σ = 3.2`, dense secret `H = 128` capped to `N/4`).
    pub fn builder() -> CkksParamsBuilder {
        CkksParamsBuilder::default()
    }

    /// Ring degree `N`.
    pub fn n(&self) -> usize {
        1 << self.log_n
    }

    /// Number of message slots `N/2`.
    pub fn slots(&self) -> usize {
        self.n() / 2
    }

    /// Total number of `Q` primes (`levels + 1`).
    pub fn q_count(&self) -> usize {
        self.levels + 1
    }

    /// The decomposition number `D = ⌈(levels+1)/α⌉` (Table I).
    pub fn decomposition_number(&self) -> usize {
        self.q_count().div_ceil(self.alpha)
    }

    /// The scaling factor Δ.
    pub fn scale(&self) -> f64 {
        (self.scale_bits as f64).exp2()
    }

    /// Total modulus bits `log2(PQ)` (upper bound), the quantity constrained
    /// by the 128-bit security requirement (`log PQ < 1623` for `N = 2^16`).
    pub fn log_pq(&self) -> u32 {
        self.q0_bits + self.levels as u32 * self.scale_bits + self.alpha as u32 * self.p_bits
    }

    /// A small functional test set: `N = 2^10`, 4 levels, α = 2.
    pub fn test_small() -> Self {
        Self::builder()
            .log_n(10)
            .levels(4)
            .alpha(2)
            .scale_bits(40)
            .build()
    }

    /// A medium functional set for linear transforms and bootstrapping
    /// tests: `N = 2^11`, 14 levels, α = 3.
    pub fn test_bootstrap() -> Self {
        Self::builder()
            .log_n(11)
            .levels(14)
            .alpha(3)
            .scale_bits(42)
            .q0_bits(58)
            .build()
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if any constraint is violated (see source for the list).
    pub fn validate(&self) {
        assert!(
            (4..=17).contains(&self.log_n),
            "log_n out of supported range"
        );
        assert!(self.levels >= 1, "at least one level required");
        assert!(self.alpha >= 1, "alpha must be positive");
        assert!(
            (20..=60).contains(&self.scale_bits),
            "scale_bits out of range"
        );
        assert!(
            self.q0_bits > self.scale_bits,
            "q0 must exceed the scaling factor for decryption headroom"
        );
        assert!(self.p_bits >= self.scale_bits, "P primes must cover digits");
        assert!(
            self.hamming_weight <= self.n() / 2,
            "hamming weight too large"
        );
    }
}

/// Builder for [`CkksParams`].
#[derive(Debug, Clone)]
pub struct CkksParamsBuilder {
    log_n: u32,
    levels: usize,
    alpha: usize,
    scale_bits: u32,
    q0_bits: u32,
    p_bits: u32,
    hamming_weight: Option<usize>,
    sigma: f64,
}

impl Default for CkksParamsBuilder {
    fn default() -> Self {
        Self {
            log_n: 10,
            levels: 4,
            alpha: 2,
            scale_bits: 40,
            q0_bits: 60,
            p_bits: 60,
            hamming_weight: None,
            sigma: 3.2,
        }
    }
}

impl CkksParamsBuilder {
    /// Sets log2 of the ring degree.
    pub fn log_n(mut self, v: u32) -> Self {
        self.log_n = v;
        self
    }

    /// Sets the number of rescaling levels.
    pub fn levels(mut self, v: usize) -> Self {
        self.levels = v;
        self
    }

    /// Sets the number of auxiliary primes α.
    pub fn alpha(mut self, v: usize) -> Self {
        self.alpha = v;
        self
    }

    /// Sets log2 of the scaling factor.
    pub fn scale_bits(mut self, v: u32) -> Self {
        self.scale_bits = v;
        self
    }

    /// Sets log2 of the base prime.
    pub fn q0_bits(mut self, v: u32) -> Self {
        self.q0_bits = v;
        self
    }

    /// Sets log2 of the auxiliary primes.
    pub fn p_bits(mut self, v: u32) -> Self {
        self.p_bits = v;
        self
    }

    /// Sets the secret-key Hamming weight.
    pub fn hamming_weight(mut self, v: usize) -> Self {
        self.hamming_weight = Some(v);
        self
    }

    /// Sets the error standard deviation.
    pub fn sigma(mut self, v: f64) -> Self {
        self.sigma = v;
        self
    }

    /// Finalizes and validates the parameter set.
    ///
    /// # Panics
    ///
    /// Panics if the resulting parameters are inconsistent
    /// (see [`CkksParams::validate`]).
    pub fn build(self) -> CkksParams {
        let n = 1usize << self.log_n;
        let params = CkksParams {
            log_n: self.log_n,
            levels: self.levels,
            alpha: self.alpha,
            scale_bits: self.scale_bits,
            q0_bits: self.q0_bits,
            p_bits: self.p_bits,
            hamming_weight: self.hamming_weight.unwrap_or_else(|| 128.min(n / 4)),
            sigma: self.sigma,
        };
        params.validate();
        params
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults() {
        let p = CkksParams::test_small();
        assert_eq!(p.n(), 1024);
        assert_eq!(p.slots(), 512);
        assert_eq!(p.q_count(), 5);
        assert_eq!(p.decomposition_number(), 3); // ceil(5/2)
        assert_eq!(p.scale(), (2f64).powi(40));
    }

    #[test]
    fn paper_decomposition_number() {
        // Paper default: D = 4 with L+1 limbs grouped by alpha.
        let p = CkksParams::builder()
            .log_n(15)
            .levels(31)
            .alpha(8)
            .scale_bits(40)
            .hamming_weight(64)
            .build();
        assert_eq!(p.decomposition_number(), 4);
    }

    #[test]
    fn log_pq_accounting() {
        let p = CkksParams::test_small();
        assert_eq!(p.log_pq(), 60 + 4 * 40 + 2 * 60);
    }

    #[test]
    #[should_panic(expected = "q0 must exceed")]
    fn invalid_q0_rejected() {
        CkksParams::builder().q0_bits(30).scale_bits(40).build();
    }

    #[test]
    #[should_panic(expected = "hamming weight too large")]
    fn oversized_hamming_weight_rejected() {
        CkksParams::builder().log_n(4).hamming_weight(1000).build();
    }
}
