//! Evaluation-key working-set cache with optional runtime regeneration.
//!
//! Evaluation keys dominate the memory traffic of bootstrapped CKKS (ARK
//! quantifies the bottleneck; the paper's §V-D DRAM estimates motivate the
//! same object-granularity reasoning as `gpu::cache::L2Cache`). This module
//! gives the functional library the matching working-set model: an
//! [`EvkCache`] keyed by *key identity* ([`EvkId`]: relin / rotation-`r` /
//! conjugation) with byte-level hit/miss accounting riding
//! [`EvalKey::size_bytes_32`], so the cost model can see exactly how many
//! evk bytes an evaluation pulled from DRAM versus the cache.
//!
//! Two backings are provided:
//!
//! - **Fetch** ([`EvkCache::over_keyset`]): misses copy the key out of a
//!   materialized [`KeySet`] — the conventional "keys live in DRAM" model.
//! - **Regenerate** ([`EvkCache::regenerating`]): misses *derive* the key on
//!   the fly from the secret key and a per-identity seeded RNG stream, à la
//!   ARK's runtime data generation — trading recompute for DRAM bytes.
//!   Derivation is deterministic: [`derive_evk`] with the same
//!   `(master_seed, id)` always produces bit-identical key material, and
//!   [`seeded_keyset`] builds a whole `KeySet` from the same per-identity
//!   streams, so Fetch-mode and Regenerate-mode execution produce
//!   bit-identical ciphertexts (pinned by the tests below).
//!
//! Accounting contract: every access charges the key's full
//! `size_bytes_32()` to exactly one of `hit_bytes` or `miss_bytes`, so
//! `hit_bytes + miss_bytes` equals the uncached total — the conservation
//! law `scripts/check.sh` gates on BENCH rows. In Regenerate mode the same
//! miss bytes are also counted as `regen_bytes`: bytes that were *not*
//! streamed from DRAM but recomputed, so DRAM traffic is
//! `miss_bytes − regen_bytes`.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::context::CkksContext;
use crate::keys::{EvalKey, KeyGenerator, KeySet, SecretKey};

/// Identity of an evaluation key within a key set: the cache key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EvkId {
    /// The relinearization key (`s² → s`).
    Relin,
    /// The hoisted rotation key for slot distance `r`.
    Rotation(isize),
    /// The conjugation key (`g = 2N−1`).
    Conjugation,
}

impl EvkId {
    /// Normalizes a rotation distance modulo the slot count (the same
    /// normalization [`KeySet::rotation`] applies on lookup).
    pub fn normalized(self, slots: usize) -> Self {
        match self {
            EvkId::Rotation(r) => EvkId::Rotation(r.rem_euclid(slots as isize)),
            other => other,
        }
    }

    /// A stable 64-bit tag for seeding the per-identity RNG stream
    /// (SplitMix64 finalizer over a variant/distance encoding).
    pub fn tag(self) -> u64 {
        let raw = match self {
            EvkId::Relin => 1u64 << 62,
            EvkId::Conjugation => 2u64 << 62,
            EvkId::Rotation(r) => r as u64 & ((1u64 << 62) - 1),
        };
        splitmix64(raw)
    }
}

/// SplitMix64 finalizer: decorrelates structured inputs into seed material.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Byte-level access statistics of an [`EvkCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvkCacheStats {
    /// Number of [`EvkCache::get`] calls that resolved a key.
    pub accesses: u64,
    /// Bytes served from resident keys (no DRAM traffic).
    pub hit_bytes: u64,
    /// Bytes charged on misses (`hit_bytes + miss_bytes` = uncached total).
    pub miss_bytes: u64,
    /// The subset of `miss_bytes` satisfied by on-the-fly regeneration
    /// instead of a DRAM fetch (0 in Fetch mode).
    pub regen_bytes: u64,
}

impl EvkCacheStats {
    /// Miss bytes that actually crossed the DRAM interface.
    pub fn dram_bytes(&self) -> u64 {
        self.miss_bytes - self.regen_bytes
    }
}

/// Where a missing key comes from.
#[derive(Debug)]
enum Backing {
    /// Copy out of a materialized key set (DRAM fetch).
    Fetch(KeySet),
    /// Derive from the secret key with a per-identity seeded RNG.
    Regenerate { secret: SecretKey, master_seed: u64 },
}

/// Byte-capacity LRU cache of evaluation keys, keyed by [`EvkId`].
///
/// Mirrors `gpu::cache::L2Cache`'s object-granularity policy: an access
/// either finds the whole key resident or misses in full; keys larger than
/// the capacity stream (they are handed out but never become resident).
#[derive(Debug)]
pub struct EvkCache {
    capacity_bytes: usize,
    used_bytes: usize,
    /// id → (key, last-use stamp)
    resident: HashMap<EvkId, (EvalKey, u64)>,
    /// Holding slot for a streamed (oversized) key, so `get` can still
    /// return a reference; replaced on the next streamed miss.
    streamed: Option<(EvkId, EvalKey)>,
    clock: u64,
    stats: EvkCacheStats,
    backing: Backing,
}

impl EvkCache {
    /// A Fetch-mode cache in front of a materialized key set.
    pub fn over_keyset(capacity_bytes: usize, keys: KeySet) -> Self {
        Self::new(capacity_bytes, Backing::Fetch(keys))
    }

    /// A Regenerate-mode cache deriving missing keys from `secret` with
    /// per-identity streams seeded from `master_seed`.
    pub fn regenerating(capacity_bytes: usize, secret: SecretKey, master_seed: u64) -> Self {
        Self::new(
            capacity_bytes,
            Backing::Regenerate {
                secret,
                master_seed,
            },
        )
    }

    fn new(capacity_bytes: usize, backing: Backing) -> Self {
        Self {
            capacity_bytes,
            used_bytes: 0,
            resident: HashMap::new(),
            streamed: None,
            clock: 0,
            stats: EvkCacheStats::default(),
            backing,
        }
    }

    /// Resolves a key by identity, counting the access.
    ///
    /// Returns `None` only in Fetch mode when the backing key set lacks the
    /// requested rotation key (Regenerate mode can derive any identity).
    pub fn get(&mut self, ctx: &CkksContext, id: EvkId) -> Option<&EvalKey> {
        let id = id.normalized(ctx.slots());
        self.clock += 1;
        if let Some(entry) = self.resident.get_mut(&id) {
            entry.1 = self.clock;
            self.stats.accesses += 1;
            self.stats.hit_bytes += entry.0.size_bytes_32() as u64;
            return self.resident.get(&id).map(|(k, _)| k);
        }
        let (key, regenerated) = match &self.backing {
            Backing::Fetch(keys) => (
                match id {
                    EvkId::Relin => keys.relin.clone(),
                    EvkId::Conjugation => keys.conjugation.clone(),
                    EvkId::Rotation(r) => keys.rotation(r, ctx.slots())?.clone(),
                },
                false,
            ),
            Backing::Regenerate {
                secret,
                master_seed,
            } => (derive_evk(ctx, secret, *master_seed, id), true),
        };
        let bytes = key.size_bytes_32();
        self.stats.accesses += 1;
        self.stats.miss_bytes += bytes as u64;
        if regenerated {
            self.stats.regen_bytes += bytes as u64;
        }
        if bytes > self.capacity_bytes {
            // Streaming key: never resident, held only until the next one.
            self.streamed = Some((id, key));
            return self.streamed.as_ref().map(|(_, k)| k);
        }
        while self.used_bytes + bytes > self.capacity_bytes {
            let victim = self
                .resident
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(&vid, _)| vid)
                .expect("cache overfull but empty");
            self.evict(victim);
        }
        self.resident.insert(id, (key, self.clock));
        self.used_bytes += bytes;
        self.resident.get(&id).map(|(k, _)| k)
    }

    fn evict(&mut self, id: EvkId) {
        if let Some((key, _)) = self.resident.remove(&id) {
            self.used_bytes -= key.size_bytes_32();
        }
    }

    /// Is the key currently resident?
    pub fn contains(&self, id: EvkId, slots: usize) -> bool {
        self.resident.contains_key(&id.normalized(slots))
    }

    /// Bytes of key material currently resident.
    pub fn used_bytes(&self) -> usize {
        self.used_bytes
    }

    /// Configured capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Access statistics so far.
    pub fn stats(&self) -> EvkCacheStats {
        self.stats
    }
}

/// The RNG seed for the key stream of identity `id` under `master_seed`.
fn stream_seed(master_seed: u64, tag: u64) -> u64 {
    splitmix64(master_seed ^ tag)
}

/// Tag reserved for the secret-key stream (distinct from every [`EvkId`]).
const SECRET_TAG: u64 = 3u64 << 62;
/// Tag reserved for the public-key stream.
const PUBLIC_TAG: u64 = (3u64 << 62) | 1;

/// Derives the secret key of the `master_seed` key family. Regeneration and
/// [`seeded_keyset`] both start from this key, which is what makes the two
/// execution modes bit-identical.
pub fn derive_secret(ctx: &CkksContext, master_seed: u64) -> SecretKey {
    let mut rng = StdRng::seed_from_u64(stream_seed(master_seed, splitmix64(SECRET_TAG)));
    KeyGenerator::new(ctx, &mut rng).gen_secret()
}

/// Deterministically derives the evaluation key `id` of the `master_seed`
/// family: the RNG stream is seeded from `(master_seed, id.tag())` alone, so
/// the same identity always yields bit-identical key material regardless of
/// derivation order.
pub fn derive_evk(ctx: &CkksContext, secret: &SecretKey, master_seed: u64, id: EvkId) -> EvalKey {
    let id = id.normalized(ctx.slots());
    let mut rng = StdRng::seed_from_u64(stream_seed(master_seed, id.tag()));
    let mut kg = KeyGenerator::new(ctx, &mut rng);
    match id {
        EvkId::Relin => kg.gen_relin(secret),
        EvkId::Conjugation => kg.gen_conjugation(secret),
        EvkId::Rotation(r) => kg.gen_rotation(secret, r),
    }
}

/// Materializes the full `KeySet` of a `master_seed` key family: every key
/// comes from the same per-identity stream [`derive_evk`] uses, so a
/// Fetch-mode cache over this set and a Regenerate-mode cache with the same
/// seed hold bit-identical key material.
pub fn seeded_keyset(ctx: &CkksContext, master_seed: u64, rotations: &[isize]) -> KeySet {
    let secret = derive_secret(ctx, master_seed);
    let public = {
        let mut rng = StdRng::seed_from_u64(stream_seed(master_seed, splitmix64(PUBLIC_TAG)));
        KeyGenerator::new(ctx, &mut rng).gen_public(&secret)
    };
    let relin = derive_evk(ctx, &secret, master_seed, EvkId::Relin);
    let conjugation = derive_evk(ctx, &secret, master_seed, EvkId::Conjugation);
    let mut keys = KeySet {
        secret,
        public,
        relin,
        rotations: HashMap::new(),
        conjugation,
    };
    for &r in rotations {
        let r = r.rem_euclid(ctx.slots() as isize);
        if r != 0 && keys.rotation(r, ctx.slots()).is_none() {
            let key = derive_evk(ctx, &keys.secret, master_seed, EvkId::Rotation(r));
            keys.add_rotation(r, key);
        }
    }
    keys
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::Complex;
    use crate::encoding::Encoder;
    use crate::eval::Evaluator;
    use crate::params::CkksParams;
    use crate::serial::serialize_ciphertext;
    use rand::rngs::StdRng;

    fn ctx() -> CkksContext {
        CkksContext::new(CkksParams::test_small())
    }

    #[test]
    fn ids_normalize_and_tag_distinctly() {
        let slots = 512;
        assert_eq!(
            EvkId::Rotation(1).normalized(slots),
            EvkId::Rotation(1 - slots as isize).normalized(slots)
        );
        assert_ne!(EvkId::Relin.tag(), EvkId::Conjugation.tag());
        assert_ne!(EvkId::Relin.tag(), EvkId::Rotation(0).tag());
        assert_ne!(EvkId::Rotation(1).tag(), EvkId::Rotation(2).tag());
    }

    #[test]
    fn conservation_holds_across_hits_misses_and_eviction() {
        let c = ctx();
        let keys = seeded_keyset(&c, 7, &[1, 2, 3]);
        let evk_bytes = keys.relin.size_bytes_32() as u64;
        // Room for exactly two keys: the third access evicts.
        let mut cache = EvkCache::over_keyset(2 * evk_bytes as usize, keys);
        let ids = [
            EvkId::Relin,
            EvkId::Rotation(1),
            EvkId::Relin,
            EvkId::Rotation(1),
            EvkId::Rotation(2), // evicts the LRU entry
            EvkId::Rotation(2),
        ];
        let mut uncached = 0u64;
        for id in ids {
            assert!(cache.get(&c, id).is_some());
            uncached += evk_bytes;
        }
        let s = cache.stats();
        assert_eq!(s.accesses, ids.len() as u64);
        assert_eq!(s.hit_bytes + s.miss_bytes, uncached, "conservation");
        assert_eq!(s.hit_bytes, 3 * evk_bytes, "repeat accesses hit");
        assert_eq!(s.miss_bytes, 3 * evk_bytes, "three distinct keys miss");
        assert_eq!(s.regen_bytes, 0, "fetch mode never regenerates");
        assert!(cache.used_bytes() <= cache.capacity_bytes());
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let c = ctx();
        let keys = seeded_keyset(&c, 8, &[1, 2, 3]);
        let evk_bytes = keys.relin.size_bytes_32();
        let mut cache = EvkCache::over_keyset(2 * evk_bytes, keys);
        let slots = c.slots();
        cache.get(&c, EvkId::Rotation(1)).unwrap();
        cache.get(&c, EvkId::Rotation(2)).unwrap();
        cache.get(&c, EvkId::Rotation(1)).unwrap(); // touch 1
        cache.get(&c, EvkId::Rotation(3)).unwrap(); // evicts 2
        assert!(cache.contains(EvkId::Rotation(1), slots));
        assert!(!cache.contains(EvkId::Rotation(2), slots));
        assert!(cache.contains(EvkId::Rotation(3), slots));
    }

    #[test]
    fn oversized_keys_stream_without_residency() {
        let c = ctx();
        let keys = seeded_keyset(&c, 9, &[]);
        let evk_bytes = keys.relin.size_bytes_32() as u64;
        let mut cache = EvkCache::over_keyset(1, keys);
        assert!(cache.get(&c, EvkId::Relin).is_some());
        assert!(cache.get(&c, EvkId::Relin).is_some());
        let s = cache.stats();
        assert_eq!(s.miss_bytes, 2 * evk_bytes, "streams miss every time");
        assert_eq!(s.hit_bytes, 0);
        assert_eq!(cache.used_bytes(), 0, "never resident");
    }

    #[test]
    fn missing_rotation_is_none_in_fetch_mode_only() {
        let c = ctx();
        let keys = seeded_keyset(&c, 10, &[1]);
        let mut fetch = EvkCache::over_keyset(usize::MAX, keys);
        assert!(fetch.get(&c, EvkId::Rotation(5)).is_none());
        let secret = derive_secret(&c, 10);
        let mut regen = EvkCache::regenerating(usize::MAX, secret, 10);
        assert!(regen.get(&c, EvkId::Rotation(5)).is_some());
        assert_eq!(regen.stats().regen_bytes, regen.stats().miss_bytes);
    }

    #[test]
    fn regenerated_keys_are_bit_identical_to_the_seeded_keyset() {
        let c = ctx();
        let master = 42;
        let keys = seeded_keyset(&c, master, &[1, 3]);
        let secret = derive_secret(&c, master);
        let mut regen = EvkCache::regenerating(usize::MAX, secret, master);
        for (id, want) in [
            (EvkId::Relin, &keys.relin),
            (EvkId::Conjugation, &keys.conjugation),
            (EvkId::Rotation(1), keys.rotation(1, c.slots()).unwrap()),
            (EvkId::Rotation(3), keys.rotation(3, c.slots()).unwrap()),
        ] {
            let got = regen.get(&c, id).unwrap();
            assert_eq!(got.num_digits(), want.num_digits());
            for j in 0..want.num_digits() {
                let (gb, ga) = got.digit(j);
                let (wb, wa) = want.digit(j);
                for i in 0..wb.num_limbs() {
                    assert_eq!(gb.limb(i).data(), wb.limb(i).data(), "{id:?} b[{j}][{i}]");
                    assert_eq!(ga.limb(i).data(), wa.limb(i).data(), "{id:?} a[{j}][{i}]");
                }
            }
        }
    }

    #[test]
    fn cached_and_regenerated_execution_produce_identical_ciphertexts() {
        // The acceptance pin: the same circuit driven through a Fetch-mode
        // cache and a Regenerate-mode cache (same master seed, same
        // encryption randomness) yields byte-identical serialized outputs.
        let c = ctx();
        let master = 2024;
        let keys = seeded_keyset(&c, master, &[1, 2]);
        let secret = derive_secret(&c, master);
        let enc = Encoder::new(&c);
        let ev = Evaluator::new(&c);
        let msg: Vec<Complex> = (0..c.slots())
            .map(|i| Complex::new((i as f64).sin() * 0.4, 0.1))
            .collect();
        let mut rng = StdRng::seed_from_u64(5);
        let ct = keys
            .public
            .encrypt(&enc.encode(&msg, c.max_level()), &mut rng);

        let mut fetch = EvkCache::over_keyset(usize::MAX, keys);
        let mut regen = EvkCache::regenerating(usize::MAX, secret, master);
        let run = |cache: &mut EvkCache| {
            let sq = ev.mul_relin_cached(&ct, &ct, cache);
            let rot = ev.rotate_cached(&sq, 1, cache).expect("key derivable");
            ev.conjugate_cached(&rot, cache)
        };
        let a = serialize_ciphertext(&run(&mut fetch));
        let b = serialize_ciphertext(&run(&mut regen));
        assert_eq!(a, b, "fetch and regenerate modes must be bit-identical");
        // Both charged identical uncached byte totals; only the DRAM split
        // differs (regeneration recomputes every missed byte).
        let sf = fetch.stats();
        let sr = regen.stats();
        assert_eq!(sf.hit_bytes + sf.miss_bytes, sr.hit_bytes + sr.miss_bytes);
        assert_eq!(sf.dram_bytes(), sf.miss_bytes);
        assert_eq!(sr.dram_bytes(), 0, "regeneration avoids all DRAM fetches");
    }
}
