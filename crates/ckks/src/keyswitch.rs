//! Key switching: ModUp → KeyMult → ModDown (§II-B, Fig. 1).
//!
//! Given a polynomial `a` encrypted "under" some key `s'` and an evaluation
//! key for `s' → s`, key switching produces a pair `(B, A)` with
//! `B + A·s ≈ a·s'`. The three phases are:
//!
//! 1. **ModUp** — decompose `a` into `D` digits (groups of α primes) and
//!    basis-convert each digit to the extended basis `Q_ℓ ‖ P`;
//! 2. **KeyMult** — inner product of the digits with the evk pairs
//!    (element-wise MACs; this is the `PAccum⟨D⟩` PIM instruction of
//!    Table II);
//! 3. **ModDown** — divide by `P` and return to the `Q_ℓ` basis.
//!
//! *Hoisting* (§III-B) reuses phase 1 across many rotations: the digits are
//! computed once and phase 2/3 run per rotation — or, with further hoisting,
//! phase 3 runs once on an accumulated pair.
//!
//! All methods count their work in [`crate::opcount`] so that the Anaheim
//! cost model can be validated against the functional library.

use ckks_math::poly::{Format, Poly};

use crate::context::CkksContext;
use crate::evkcache::{EvkCache, EvkId};
use crate::keys::EvalKey;
use crate::opcount;

/// Key-switching engine bound to a context.
#[derive(Debug, Clone, Copy)]
pub struct KeySwitcher<'a> {
    ctx: &'a CkksContext,
}

/// The hoisted state: ModUp'ed decomposition digits of a polynomial, each
/// over `Q_ℓ ‖ P` in the evaluation domain. Computing this once and reusing
/// it across `K` rotations is the hoisting optimization.
#[derive(Debug, Clone)]
pub struct HoistedDigits {
    digits: Vec<Poly>,
    level: usize,
}

impl HoistedDigits {
    /// The ModUp'ed digit polynomials.
    pub fn digits(&self) -> &[Poly] {
        &self.digits
    }

    /// The ciphertext level this decomposition was taken at.
    pub fn level(&self) -> usize {
        self.level
    }
}

impl<'a> KeySwitcher<'a> {
    /// Binds a context.
    pub fn new(ctx: &'a CkksContext) -> Self {
        Self { ctx }
    }

    /// Phase 1: decompose + ModUp.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not in the evaluation domain or its limb count
    /// differs from `level`.
    pub fn decompose_mod_up(&self, a: &Poly, level: usize) -> HoistedDigits {
        assert_eq!(a.format(), Format::Eval, "expected Eval input");
        assert_eq!(a.num_limbs(), level, "limb count must equal level");
        // INTT the input once (shared across digits).
        let mut coeff = a.duplicate();
        coeff.to_coeff();
        opcount::count_intt(level);
        // Digits are independent: let the tuner decide whether to fan them
        // out as chunked pool jobs. Each task routes its op counts into a
        // shared sink which is folded back into this thread's counters
        // after the join, so totals match a serial run exactly. Nested
        // per-limb parallelism inside a digit degrades to inline-serial on
        // the workers (the pool is single-job). A digit's dominant work is
        // the `level + α − |digit|` forward NTTs of its ModUp, so the batch
        // is costed as NTT-class over that many rings.
        let num = self.ctx.num_digits(level);
        let alpha = self.ctx.params().alpha;
        let digit_ids: Vec<usize> = (0..num).collect();
        let sink = opcount::SharedCounts::new();
        let decision =
            ckks_math::tune::decide(ckks_math::tune::OpClass::Ntt, num, (level + alpha) * a.n());
        let digits = if decision.parallel() {
            parpool::par_map_chunked(&digit_ids, decision.jobs, |_, &j| {
                sink.record(|| self.digit_mod_up(a, &coeff, level, j))
            })
        } else {
            digit_ids
                .iter()
                .map(|&j| sink.record(|| self.digit_mod_up(a, &coeff, level, j)))
                .collect()
        };
        sink.fold_into_local();
        HoistedDigits { digits, level }
    }

    /// ModUp of digit `j`: BConv the digit's limbs to `Q_ℓ ‖ P`, NTT the
    /// converted limbs, and pass the source limbs through unchanged.
    fn digit_mod_up(&self, a: &Poly, coeff: &Poly, level: usize, j: usize) -> Poly {
        let alpha = self.ctx.params().alpha;
        let range = self.ctx.digit_range(level, j);
        let slices: Vec<&[u64]> = range.clone().map(|i| coeff.limb(i).data()).collect();
        opcount::count_bconv(range.len(), level + alpha - range.len());
        opcount::count_ntt(level + alpha - range.len());
        let mut up = self.ctx.mod_up(level, j, &slices);
        up.to_eval();
        // The source-digit limbs are already known in the evaluation
        // domain; copy them through instead of re-transforming.
        for i in range {
            *up.limb_mut(i) = a.limb(i).clone();
        }
        up
    }

    /// Phase 2: inner product with an evaluation key, producing an
    /// accumulated pair over `Q_ℓ ‖ P` (both in the evaluation domain).
    ///
    /// # Panics
    ///
    /// Panics if the key has fewer digits than the decomposition.
    pub fn key_mult(&self, hoisted: &HoistedDigits, evk: &EvalKey) -> (Poly, Poly) {
        let level = hoisted.level;
        assert!(
            evk.num_digits() >= hoisted.digits.len(),
            "evk digit count too small"
        );
        let basis = self.ctx.basis_qp(level);
        let mut acc_b = Poly::zero(&basis, Format::Eval);
        let mut acc_a = Poly::zero(&basis, Format::Eval);
        for (j, d) in hoisted.digits.iter().enumerate() {
            let (kb, ka) = evk.digit(j);
            let kb = self.ctx.key_prefix(kb, level);
            let ka = self.ctx.key_prefix(ka, level);
            acc_b.mac_assign(d, &kb);
            acc_a.mac_assign(d, &ka);
            opcount::count_ew(2 * d.num_limbs());
        }
        (acc_b, acc_a)
    }

    /// Phase 3: ModDown a pair back to `Q_ℓ`, dividing by `P`.
    pub fn mod_down_pair(&self, b: &Poly, a: &Poly, level: usize) -> (Poly, Poly) {
        let md = self.ctx.mod_down(level);
        let alpha = self.ctx.params().alpha;
        let down = |p: &Poly| {
            opcount::count_intt(alpha);
            opcount::count_bconv(alpha, level);
            opcount::count_ntt(level);
            opcount::count_ew(2 * level); // subtract + scale per limb
            md.apply(p)
        };
        (down(b), down(a))
    }

    /// Full key switch of `a` with `evk`: returns `(B, A)` over `Q_ℓ` with
    /// `B + A·s ≈ a·s'`.
    pub fn switch(&self, a: &Poly, evk: &EvalKey, level: usize) -> (Poly, Poly) {
        opcount::count_keyswitch();
        let hoisted = self.decompose_mod_up(a, level);
        let (b, a2) = self.key_mult(&hoisted, evk);
        self.mod_down_pair(&b, &a2, level)
    }

    /// [`Self::switch`] with the evaluation key resolved through an
    /// [`EvkCache`] by identity, so the cache's hit/miss byte accounting
    /// sees this key switch. Returns `None` when a Fetch-mode cache lacks
    /// the requested key.
    pub fn switch_cached(
        &self,
        a: &Poly,
        id: EvkId,
        cache: &mut EvkCache,
        level: usize,
    ) -> Option<(Poly, Poly)> {
        let evk = cache.get(self.ctx, id)?;
        Some(self.switch(a, evk, level))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::KeyGenerator;
    use crate::params::CkksParams;
    use ckks_math::rns::CrtReconstructor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Checks that B + A·s ≈ a·s_target, i.e. key switching moved the key
    /// without destroying the value: the residual must be tiny relative to Q.
    #[test]
    fn switch_preserves_product_with_target_key() {
        let ctx = CkksContext::new(CkksParams::test_small());
        let mut rng = StdRng::seed_from_u64(11);
        let mut kg = KeyGenerator::new(&ctx, &mut rng);
        let sk = kg.gen_secret();
        // Switch from s2 = s·s to s (the relinearization direction).
        let relin = kg.gen_relin(&sk);
        let level = ctx.max_level();

        let mut rng2 = StdRng::seed_from_u64(99);
        let a = ckks_math::sampling::uniform(
            &mut rng2,
            ctx.basis_q(level),
            ckks_math::poly::Format::Eval,
        );

        let ks = KeySwitcher::new(&ctx);
        let (b_out, a_out) = ks.switch(&a, &relin, level);

        // want = a·s², got = b_out + a_out·s; difference must be small.
        let s = sk.q_prefix(level);
        let mut s2 = s.clone();
        s2.mul_assign(&s);
        let mut want = a.clone();
        want.mul_assign(&s2);
        let mut got = b_out.clone();
        got.mac_assign(&a_out, &s);
        got.sub_assign(&want);
        got.to_coeff();

        let crt = CrtReconstructor::new(ctx.basis_q(level));
        let mut max_err: f64 = 0.0;
        for k in 0..ctx.n() {
            let residues: Vec<u64> = (0..level).map(|i| got.limb(i).data()[k]).collect();
            max_err = max_err.max(crt.reconstruct_centered_f64(&residues).abs());
        }
        // The key-switching error is ~ α·q_digit·E/P + ModDown error; with
        // P ≈ 2^120 and digits ≈ 2^100 this is far below 2^40.
        assert!(
            max_err < (2f64).powi(40),
            "key-switch residual too large: 2^{}",
            max_err.log2()
        );
        assert!(max_err > 0.0, "some error must exist (sanity)");
    }

    #[test]
    fn hoisted_digits_structure() {
        let ctx = CkksContext::new(CkksParams::test_small());
        let mut rng = StdRng::seed_from_u64(3);
        let level = 3;
        let a = ckks_math::sampling::uniform(
            &mut rng,
            ctx.basis_q(level),
            ckks_math::poly::Format::Eval,
        );
        let ks = KeySwitcher::new(&ctx);
        let h = ks.decompose_mod_up(&a, level);
        assert_eq!(h.level(), 3);
        assert_eq!(h.digits().len(), ctx.num_digits(3)); // ceil(3/2) = 2
        for d in h.digits() {
            assert_eq!(d.num_limbs(), level + ctx.params().alpha);
            assert_eq!(d.format(), Format::Eval);
        }
    }

    #[test]
    fn op_counts_recorded() {
        let ctx = CkksContext::new(CkksParams::test_small());
        let mut rng = StdRng::seed_from_u64(4);
        let mut kg = KeyGenerator::new(&ctx, &mut rng);
        let sk = kg.gen_secret();
        let relin = kg.gen_relin(&sk);
        let level = ctx.max_level();
        let a = ckks_math::sampling::uniform(
            &mut rng,
            ctx.basis_q(level),
            ckks_math::poly::Format::Eval,
        );
        let ks = KeySwitcher::new(&ctx);
        let before = crate::opcount::snapshot();
        let _ = ks.switch(&a, &relin, level);
        let d = crate::opcount::snapshot().since(&before);
        assert_eq!(d.keyswitches, 1);
        // INTT: level (ModUp) + 2·α (ModDown) = 5 + 4
        assert_eq!(d.intt_limbs, 9);
        // NTT: per digit (level+α−digit_len) = (5+2-2)+(5+2-2)+(5+2-1)=16,
        // plus 2·level (ModDown) = 10.
        assert_eq!(d.ntt_limbs, 26);
        assert!(d.ew_limb_ops > 0);
        assert!(d.bconv_limb_products > 0);
    }
}
