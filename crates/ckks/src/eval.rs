//! Homomorphic evaluation: the basic CKKS functions of §II-A.
//!
//! - HADD / HSUB — element-wise ciphertext addition;
//! - PMULT — plaintext-ciphertext multiplication;
//! - HMULT — ciphertext multiplication (tensor + relinearization);
//! - HROT — slot rotation (automorphism + key switching, hoisted form);
//! - rescaling and level management.
//!
//! Rotations use the hoisted "automorphism last" evk structure \[8\] generated
//! by [`crate::keys::KeyGenerator::gen_rotation`]: the key switch runs on
//! `a` directly and the automorphism is applied to the two output
//! polynomials, which is what lets Anaheim reorder automorphism past the
//! element-wise block (§V-B).

use std::fmt;

use ckks_math::rns::rescale_in_place;

use crate::ciphertext::{Ciphertext, Plaintext};
use crate::context::CkksContext;
use crate::evkcache::{EvkCache, EvkId};
use crate::keys::{galois_for_rotation, EvalKey, KeySet};
use crate::keyswitch::{HoistedDigits, KeySwitcher};
use crate::noise::{NoiseModel, NoiseTracker};
use crate::opcount;

/// Typed errors from budget-guarded homomorphic evaluation.
///
/// The raw [`Evaluator`] is a low-level layer that panics on programmer
/// errors; a serving stack should not. [`GuardedEvaluator`] surfaces the
/// conditions that depend on *data and circuit depth* — the ones a server
/// cannot rule out statically — as values of this type.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// The heuristic noise bound leaves fewer bits of precision than the
    /// guard's floor: the result would be numerically meaningless. The
    /// application must bootstrap or re-encrypt before continuing.
    NoiseBudgetExhausted {
        /// The operation that crossed the floor.
        op: &'static str,
        /// Predicted remaining precision after the operation.
        precision_bits: f64,
        /// The configured floor.
        required_bits: f64,
    },
    /// The modulus chain has no level left for the rescale this operation
    /// needs.
    LevelsExhausted {
        /// The operation that needed a level.
        op: &'static str,
        /// The level it was attempted at.
        level: usize,
    },
    /// The key set has no rotation key for the requested distance.
    MissingRotationKey {
        /// Normalized rotation distance.
        distance: isize,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::NoiseBudgetExhausted {
                op,
                precision_bits,
                required_bits,
            } => write!(
                f,
                "noise budget exhausted in {op}: {precision_bits:.1} bits of \
                 precision left, {required_bits:.1} required"
            ),
            EvalError::LevelsExhausted { op, level } => write!(
                f,
                "modulus chain exhausted in {op}: cannot rescale at level {level}"
            ),
            EvalError::MissingRotationKey { distance } => {
                write!(f, "missing rotation key for distance {distance}")
            }
        }
    }
}

impl std::error::Error for EvalError {}

/// Relative tolerance for scale compatibility checks.
///
/// Rescale primes sit within ~2^-26 (relative) of Δ, so deep circuits
/// accumulate a small scale drift between operands that reach an addition by
/// different paths; the drift shows up as multiplicative message error of the
/// same relative size, far below CKKS noise at our parameters. The deepest
/// circuit we run (a 26-level decomposed bootstrap) accumulates ~1e-5 of
/// drift, so the gate sits at 1e-4.
const SCALE_RTOL: f64 = 1e-4;

/// Homomorphic evaluator bound to a context.
///
/// ```
/// use ckks::prelude::*;
/// use ckks::keys::KeyGenerator;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let ctx = CkksContext::new(CkksParams::test_small());
/// let mut rng = StdRng::seed_from_u64(7);
/// let mut kg = KeyGenerator::new(&ctx, &mut rng);
/// let sk = kg.gen_secret();
/// let pk = kg.gen_public(&sk);
///
/// let enc = Encoder::new(&ctx);
/// let msg: Vec<Complex> = (0..ctx.slots())
///     .map(|i| Complex::new(i as f64 * 0.01, 0.0))
///     .collect();
/// let ct = pk.encrypt(&enc.encode(&msg, ctx.max_level()), &mut rng);
///
/// let eval = Evaluator::new(&ctx);
/// let sum = eval.add(&ct, &ct);
/// let out = enc.decode(&sk.decrypt(&sum));
/// assert!((out[1].re - 2.0 * msg[1].re).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Evaluator<'a> {
    ctx: &'a CkksContext,
    ks: KeySwitcher<'a>,
}

impl<'a> Evaluator<'a> {
    /// Binds a context.
    pub fn new(ctx: &'a CkksContext) -> Self {
        Self {
            ctx,
            ks: KeySwitcher::new(ctx),
        }
    }

    /// The underlying key switcher (exposed for hoisted linear transforms).
    pub fn key_switcher(&self) -> &KeySwitcher<'a> {
        &self.ks
    }

    /// The context.
    pub fn context(&self) -> &'a CkksContext {
        self.ctx
    }

    fn assert_aligned(&self, x: &Ciphertext, y: &Ciphertext) {
        assert_eq!(x.level(), y.level(), "level mismatch: align levels first");
        let rel = (x.scale() - y.scale()).abs() / x.scale().max(y.scale());
        assert!(
            rel < SCALE_RTOL,
            "scale mismatch: {} vs {}",
            x.scale(),
            y.scale()
        );
    }

    /// HADD: element-wise ciphertext addition.
    ///
    /// # Panics
    ///
    /// Panics on level or scale mismatch.
    pub fn add(&self, x: &Ciphertext, y: &Ciphertext) -> Ciphertext {
        self.assert_aligned(x, y);
        let b = x.b().added(y.b());
        let a = x.a().added(y.a());
        opcount::count_ew(2 * x.level());
        Ciphertext::new(b, a, x.scale(), x.level())
    }

    /// HSUB: element-wise ciphertext subtraction.
    ///
    /// # Panics
    ///
    /// Panics on level or scale mismatch.
    pub fn sub(&self, x: &Ciphertext, y: &Ciphertext) -> Ciphertext {
        self.assert_aligned(x, y);
        let b = x.b().subbed(y.b());
        let a = x.a().subbed(y.a());
        opcount::count_ew(2 * x.level());
        Ciphertext::new(b, a, x.scale(), x.level())
    }

    /// Negation.
    pub fn negate(&self, x: &Ciphertext) -> Ciphertext {
        let b = x.b().negated();
        let a = x.a().negated();
        opcount::count_ew(2 * x.level());
        Ciphertext::new(b, a, x.scale(), x.level())
    }

    /// Adds a plaintext (levels and scales must match).
    ///
    /// # Panics
    ///
    /// Panics on level or scale mismatch.
    pub fn add_plain(&self, x: &Ciphertext, p: &Plaintext) -> Ciphertext {
        assert_eq!(x.level(), p.level(), "level mismatch");
        let rel = (x.scale() - p.scale()).abs() / x.scale().max(p.scale());
        assert!(rel < SCALE_RTOL, "scale mismatch");
        let b = x.b().added(p.poly());
        opcount::count_ew(x.level());
        Ciphertext::new(b, x.a().duplicate(), x.scale(), x.level())
    }

    /// PMULT: plaintext-ciphertext multiplication. The output scale is the
    /// product of the scales; rescale afterwards to restore it.
    ///
    /// # Panics
    ///
    /// Panics on level mismatch.
    pub fn mul_plain(&self, x: &Ciphertext, p: &Plaintext) -> Ciphertext {
        assert_eq!(x.level(), p.level(), "level mismatch");
        let b = x.b().multiplied(p.poly());
        let a = x.a().multiplied(p.poly());
        opcount::count_ew(2 * x.level());
        Ciphertext::new(b, a, x.scale() * p.scale(), x.level())
    }

    /// Multiplies by a real scalar, consuming one level's worth of scale
    /// (encodes the scalar at the default Δ; rescale afterwards).
    pub fn mul_scalar(&self, x: &Ciphertext, c: f64) -> Ciphertext {
        let delta = self.ctx.params().scale();
        let v = (c * delta).round() as i64;
        let b = x.b().scaled_i64(v);
        let a = x.a().scaled_i64(v);
        opcount::count_ew(2 * x.level());
        Ciphertext::new(b, a, x.scale() * delta, x.level())
    }

    /// Multiplies by a small integer without changing the scale.
    pub fn mul_integer(&self, x: &Ciphertext, v: i64) -> Ciphertext {
        let b = x.b().scaled_i64(v);
        let a = x.a().scaled_i64(v);
        opcount::count_ew(2 * x.level());
        Ciphertext::new(b, a, x.scale(), x.level())
    }

    /// Adds the real constant `c` to every slot.
    pub fn add_scalar(&self, x: &Ciphertext, c: f64) -> Ciphertext {
        // A constant vector encodes to the constant polynomial c·Δ, which in
        // the evaluation domain is c·Δ in every residue.
        let mut b = x.b().duplicate();
        for i in 0..b.num_limbs() {
            let limb = b.limb_mut(i);
            let m = *limb.ctx().modulus();
            let v = m.from_i64((c * x.scale()).round() as i64);
            for r in limb.data_mut() {
                *r = m.add(*r, v);
            }
        }
        opcount::count_ew(x.level());
        Ciphertext::new(b, x.a().duplicate(), x.scale(), x.level())
    }

    /// Rescales by the last prime: drops one level and divides the scale.
    ///
    /// # Panics
    ///
    /// Panics if the ciphertext is at level 1.
    pub fn rescale(&self, x: &Ciphertext) -> Ciphertext {
        let mut out = Ciphertext::new(x.b().duplicate(), x.a().duplicate(), x.scale(), x.level());
        self.rescale_assign(&mut out);
        out
    }

    /// In-place rescale: mutates `x` instead of copying it first. Prefer
    /// this when the pre-rescale ciphertext is no longer needed (e.g. the
    /// tensor output inside [`Self::mul_relin_rescale`]).
    ///
    /// # Panics
    ///
    /// Panics if the ciphertext is at level 1.
    pub fn rescale_assign(&self, x: &mut Ciphertext) {
        assert!(x.level() > 1, "cannot rescale below level 1");
        let q_last = self
            .ctx
            .basis_q(x.level())
            .last()
            .expect("non-empty basis")
            .modulus()
            .value();
        let level = x.level();
        let scale = x.scale();
        let (b, a) = x.parts_mut();
        rescale_in_place(b);
        rescale_in_place(a);
        // 2 × (1 INTT + (level−1) NTT + elementwise fix-up)
        opcount::count_intt(2);
        opcount::count_ntt(2 * (level - 1));
        opcount::count_ew(2 * (level - 1));
        x.set_level(level - 1);
        x.set_scale(scale / q_last as f64);
    }

    /// Forces the scale to an exact target by multiplying with a constant
    /// `≈1` encoded at a compensating scale, then rescaling. Costs one level;
    /// the value is unchanged up to ~2^-40 relative rounding.
    ///
    /// Used at the end of bootstrapping to return the ciphertext to the
    /// canonical scale Δ regardless of the scale drift accumulated through
    /// CoeffToSlot/EvalMod/SlotToCoeff.
    ///
    /// # Panics
    ///
    /// Panics if the ciphertext is at level 1 or the correction constant is
    /// out of the representable range.
    pub fn rescale_to_exact_scale(&self, x: &Ciphertext, target: f64) -> Ciphertext {
        assert!(x.level() > 1, "need a spare level for the exact rescale");
        let q_drop = self
            .ctx
            .basis_q(x.level())
            .last()
            .expect("non-empty")
            .modulus()
            .value() as f64;
        let c = target * q_drop / x.scale();
        assert!(
            (1.0..4.6e18).contains(&c),
            "correction constant out of range"
        );
        let vi = c.round() as i64;
        let mut t = self.mul_integer(x, vi);
        t.set_scale(x.scale() * vi as f64);
        let mut out = self.rescale(&t);
        out.set_scale(target);
        out
    }

    /// Drops to a lower level without rescaling (modulus switching).
    ///
    /// # Panics
    ///
    /// Panics if `level` is zero or above the current level.
    pub fn mod_switch_to(&self, x: &Ciphertext, level: usize) -> Ciphertext {
        assert!(level >= 1 && level <= x.level(), "invalid target level");
        let mut b = x.b().duplicate();
        let mut a = x.a().duplicate();
        b.truncate_limbs(level);
        a.truncate_limbs(level);
        Ciphertext::new(b, a, x.scale(), level)
    }

    /// Brings two ciphertexts to a common (minimum) level so they can be
    /// added or multiplied.
    pub fn align_levels(&self, x: &Ciphertext, y: &Ciphertext) -> (Ciphertext, Ciphertext) {
        let level = x.level().min(y.level());
        (self.mod_switch_to(x, level), self.mod_switch_to(y, level))
    }

    /// Addition after aligning levels (scales must still agree within
    /// tolerance).
    pub fn add_aligned(&self, x: &Ciphertext, y: &Ciphertext) -> Ciphertext {
        let (a, b) = self.align_levels(x, y);
        self.add(&a, &b)
    }

    /// HMULT: ciphertext multiplication with relinearization. The output
    /// scale is the product of scales; rescale afterwards.
    ///
    /// # Panics
    ///
    /// Panics on level/scale mismatch.
    pub fn mul_relin(&self, x: &Ciphertext, y: &Ciphertext, relin: &EvalKey) -> Ciphertext {
        self.assert_aligned_mul(x, y);
        let level = x.level();
        // Tensor: (d0, d1, d2) = (b1·b2, b1·a2 + a1·b2, a1·a2).
        let d0 = x.b().multiplied(y.b());
        let mut d1 = x.b().multiplied(y.a());
        d1.mac_assign(x.a(), y.b());
        let d2 = x.a().multiplied(y.a());
        opcount::count_ew(4 * level);
        // Relinearize d2 down to (b, a).
        let (kb, ka) = self.ks.switch(&d2, relin, level);
        let mut b = d0;
        b.add_assign(&kb);
        let mut a = d1;
        a.add_assign(&ka);
        opcount::count_ew(2 * level);
        Ciphertext::new(b, a, x.scale() * y.scale(), level)
    }

    fn assert_aligned_mul(&self, x: &Ciphertext, y: &Ciphertext) {
        assert_eq!(x.level(), y.level(), "level mismatch: align levels first");
    }

    /// HMULT followed by rescale (the common composite).
    pub fn mul_relin_rescale(&self, x: &Ciphertext, y: &Ciphertext, relin: &EvalKey) -> Ciphertext {
        let mut t = self.mul_relin(x, y, relin);
        self.rescale_assign(&mut t);
        t
    }

    /// Squares a ciphertext (TensorSq of Table II) with relinearization.
    pub fn square_relin(&self, x: &Ciphertext, relin: &EvalKey) -> Ciphertext {
        let level = x.level();
        let d0 = x.b().multiplied(x.b());
        let mut d1 = x.b().multiplied(x.a());
        d1.mul_scalar_i64(2);
        let d2 = x.a().multiplied(x.a());
        opcount::count_ew(3 * level);
        let (kb, ka) = self.ks.switch(&d2, relin, level);
        let mut b = d0;
        b.add_assign(&kb);
        let mut a = d1;
        a.add_assign(&ka);
        opcount::count_ew(2 * level);
        Ciphertext::new(b, a, x.scale() * x.scale(), level)
    }

    /// HROT: rotates slots left by `r`, using the hoisted-form rotation key.
    ///
    /// # Panics
    ///
    /// Panics if the key set lacks the rotation key for `r`.
    pub fn rotate(&self, x: &Ciphertext, r: isize, keys: &KeySet) -> Ciphertext {
        let r_norm = r.rem_euclid(self.ctx.slots() as isize);
        if r_norm == 0 {
            return x.clone();
        }
        let evk = keys
            .rotation(r_norm, self.ctx.slots())
            .unwrap_or_else(|| panic!("missing rotation key for distance {r_norm}"));
        let g = galois_for_rotation(self.ctx.n(), r_norm);
        self.apply_galois(x, g, evk)
    }

    /// Conjugates every slot.
    pub fn conjugate(&self, x: &Ciphertext, keys: &KeySet) -> Ciphertext {
        let g = 2 * self.ctx.n() as u64 - 1;
        self.apply_galois(x, g, &keys.conjugation)
    }

    /// Applies an arbitrary Galois map with a hoisted-form key: key-switch
    /// `a` first, then apply the automorphism to both output polynomials.
    pub fn apply_galois(&self, x: &Ciphertext, g: u64, evk: &EvalKey) -> Ciphertext {
        let level = x.level();
        let (kb, ka) = self.ks.switch(x.a(), evk, level);
        let b = x.b().added(&kb);
        opcount::count_ew(level);
        let b = b.automorphism(g);
        let a = ka.automorphism(g);
        opcount::count_automorphism(2 * level);
        Ciphertext::new(b, a, x.scale(), level)
    }

    /// HMULT with the relinearization key resolved through an [`EvkCache`],
    /// so the cache's byte accounting sees the key switch. Both cache
    /// backings can always produce the relin key.
    pub fn mul_relin_cached(
        &self,
        x: &Ciphertext,
        y: &Ciphertext,
        cache: &mut EvkCache,
    ) -> Ciphertext {
        let relin = cache
            .get(self.ctx, EvkId::Relin)
            .expect("relin key is always resolvable");
        self.mul_relin(x, y, relin)
    }

    /// HROT with the rotation key resolved through an [`EvkCache`]. A
    /// Fetch-mode cache without the key yields a typed
    /// [`EvalError::MissingRotationKey`]; Regenerate mode derives any
    /// distance on demand.
    pub fn rotate_cached(
        &self,
        x: &Ciphertext,
        r: isize,
        cache: &mut EvkCache,
    ) -> Result<Ciphertext, EvalError> {
        let r_norm = r.rem_euclid(self.ctx.slots() as isize);
        if r_norm == 0 {
            return Ok(x.clone());
        }
        let evk = cache
            .get(self.ctx, EvkId::Rotation(r_norm))
            .ok_or(EvalError::MissingRotationKey { distance: r_norm })?;
        let g = galois_for_rotation(self.ctx.n(), r_norm);
        Ok(self.apply_galois(x, g, evk))
    }

    /// Conjugation with the key resolved through an [`EvkCache`].
    pub fn conjugate_cached(&self, x: &Ciphertext, cache: &mut EvkCache) -> Ciphertext {
        let g = 2 * self.ctx.n() as u64 - 1;
        let evk = cache
            .get(self.ctx, EvkId::Conjugation)
            .expect("conjugation key is always resolvable");
        self.apply_galois(x, g, evk)
    }

    /// Hoisted rotation: reuses a precomputed decomposition of `x.a()`.
    /// `hoisted` must come from [`KeySwitcher::decompose_mod_up`] on the same
    /// ciphertext.
    pub fn rotate_hoisted(
        &self,
        x: &Ciphertext,
        hoisted: &HoistedDigits,
        r: isize,
        keys: &KeySet,
    ) -> Ciphertext {
        let r_norm = r.rem_euclid(self.ctx.slots() as isize);
        if r_norm == 0 {
            return x.clone();
        }
        let evk = keys
            .rotation(r_norm, self.ctx.slots())
            .unwrap_or_else(|| panic!("missing rotation key for distance {r_norm}"));
        let level = x.level();
        opcount::count_keyswitch();
        let (kb, ka) = self.ks.key_mult(hoisted, evk);
        let (mut b, a) = self.ks.mod_down_pair(&kb, &ka, level);
        b.add_assign(x.b());
        opcount::count_ew(level);
        let g = galois_for_rotation(self.ctx.n(), r_norm);
        let b = b.automorphism(g);
        let a = a.automorphism(g);
        opcount::count_automorphism(2 * level);
        Ciphertext::new(b, a, x.scale(), level)
    }
}

/// A ciphertext paired with its predicted noise state.
#[derive(Debug, Clone)]
pub struct TrackedCiphertext {
    /// The ciphertext.
    pub ct: Ciphertext,
    /// Heuristic magnitude/error bounds for its message.
    pub tracker: NoiseTracker,
}

/// A noise-budget-guarded evaluator: every operation updates a
/// [`NoiseTracker`] alongside the ciphertext and fails with a typed
/// [`EvalError`] the moment the predicted precision drops below a floor,
/// instead of silently producing garbage (or panicking on an exhausted
/// modulus chain).
///
/// This is the evaluator a *server* should drive client ciphertexts with:
/// the depth of the circuit a client requests is data the server does not
/// control, so running out of noise budget must be a recoverable, typed
/// condition.
#[derive(Debug, Clone, Copy)]
pub struct GuardedEvaluator<'a> {
    ev: Evaluator<'a>,
    model: NoiseModel,
    min_precision_bits: f64,
}

impl<'a> GuardedEvaluator<'a> {
    /// Binds a context with a precision floor (in bits). Results whose
    /// predicted signal-to-noise falls below the floor are rejected.
    pub fn new(ctx: &'a CkksContext, min_precision_bits: f64) -> Self {
        Self {
            ev: Evaluator::new(ctx),
            model: NoiseModel::new(ctx.params()),
            min_precision_bits,
        }
    }

    /// The underlying unguarded evaluator.
    pub fn evaluator(&self) -> &Evaluator<'a> {
        &self.ev
    }

    /// Starts tracking a fresh encryption whose slots are bounded by
    /// `magnitude`.
    pub fn track_fresh(&self, ct: Ciphertext, magnitude: f64) -> TrackedCiphertext {
        TrackedCiphertext {
            ct,
            tracker: self.model.fresh(magnitude),
        }
    }

    /// Predicted remaining precision of a tracked ciphertext.
    pub fn precision_bits(&self, x: &TrackedCiphertext) -> f64 {
        self.model.precision_bits(x.tracker)
    }

    fn guard(&self, op: &'static str, t: NoiseTracker) -> Result<NoiseTracker, EvalError> {
        let bits = self.model.precision_bits(t);
        if bits < self.min_precision_bits {
            Err(EvalError::NoiseBudgetExhausted {
                op,
                precision_bits: bits,
                required_bits: self.min_precision_bits,
            })
        } else {
            Ok(t)
        }
    }

    fn need_level(&self, op: &'static str, ct: &Ciphertext) -> Result<(), EvalError> {
        if ct.level() <= 1 {
            Err(EvalError::LevelsExhausted {
                op,
                level: ct.level(),
            })
        } else {
            Ok(())
        }
    }

    /// Guarded HADD.
    pub fn add(
        &self,
        x: &TrackedCiphertext,
        y: &TrackedCiphertext,
    ) -> Result<TrackedCiphertext, EvalError> {
        let tracker = self.guard("add", self.model.add(x.tracker, y.tracker))?;
        Ok(TrackedCiphertext {
            ct: self.ev.add(&x.ct, &y.ct),
            tracker,
        })
    }

    /// Guarded HMULT + relinearize + rescale.
    pub fn mul_relin_rescale(
        &self,
        x: &TrackedCiphertext,
        y: &TrackedCiphertext,
        relin: &EvalKey,
    ) -> Result<TrackedCiphertext, EvalError> {
        self.need_level("mul_relin_rescale", &x.ct)?;
        let tracker = self.guard("mul_relin_rescale", self.model.mul(x.tracker, y.tracker))?;
        Ok(TrackedCiphertext {
            ct: self.ev.mul_relin_rescale(&x.ct, &y.ct, relin),
            tracker,
        })
    }

    /// Guarded squaring (+relinearize +rescale).
    pub fn square_rescale(
        &self,
        x: &TrackedCiphertext,
        relin: &EvalKey,
    ) -> Result<TrackedCiphertext, EvalError> {
        self.need_level("square_rescale", &x.ct)?;
        let tracker = self.guard("square_rescale", self.model.mul(x.tracker, x.tracker))?;
        Ok(TrackedCiphertext {
            ct: self.ev.rescale(&self.ev.square_relin(&x.ct, relin)),
            tracker,
        })
    }

    /// Guarded PMULT + rescale; `magnitude` bounds the plaintext slots.
    pub fn mul_plain_rescale(
        &self,
        x: &TrackedCiphertext,
        p: &Plaintext,
        magnitude: f64,
    ) -> Result<TrackedCiphertext, EvalError> {
        self.need_level("mul_plain_rescale", &x.ct)?;
        let tracker = self.guard(
            "mul_plain_rescale",
            self.model.mul_plain(x.tracker, magnitude),
        )?;
        Ok(TrackedCiphertext {
            ct: self.ev.rescale(&self.ev.mul_plain(&x.ct, p)),
            tracker,
        })
    }

    /// Guarded HROT: typed error (not a panic) when the key is absent.
    pub fn rotate(
        &self,
        x: &TrackedCiphertext,
        r: isize,
        keys: &KeySet,
    ) -> Result<TrackedCiphertext, EvalError> {
        let r_norm = r.rem_euclid(self.ev.ctx.slots() as isize);
        if r_norm == 0 {
            return Ok(x.clone());
        }
        let evk = keys
            .rotation(r_norm, self.ev.ctx.slots())
            .ok_or(EvalError::MissingRotationKey { distance: r_norm })?;
        let tracker = self.guard("rotate", self.model.rotate(x.tracker))?;
        let g = galois_for_rotation(self.ev.ctx.n(), r_norm);
        Ok(TrackedCiphertext {
            ct: self.ev.apply_galois(&x.ct, g, evk),
            tracker,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::{max_error, Complex};
    use crate::encoding::Encoder;
    use crate::keys::KeyGenerator;
    use crate::params::CkksParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Fixture {
        ctx: CkksContext,
    }

    fn fixture() -> Fixture {
        Fixture {
            ctx: CkksContext::new(CkksParams::test_small()),
        }
    }

    fn keys(ctx: &CkksContext) -> crate::keys::KeySet {
        let mut rng = StdRng::seed_from_u64(21);
        KeyGenerator::new(ctx, &mut rng).generate(&[1, 2, 3, 5])
    }

    fn msg(m: usize, f: impl Fn(usize) -> Complex) -> Vec<Complex> {
        (0..m).map(f).collect()
    }

    #[test]
    fn add_sub_negate() {
        let f = fixture();
        let ks = keys(&f.ctx);
        let enc = Encoder::new(&f.ctx);
        let ev = Evaluator::new(&f.ctx);
        let m = f.ctx.slots();
        let za = msg(m, |i| Complex::new(i as f64 * 1e-3, -0.5));
        let zb = msg(m, |i| Complex::new(0.25, i as f64 * -2e-3));
        let mut rng = StdRng::seed_from_u64(5);
        let ca = ks
            .public
            .encrypt(&enc.encode(&za, f.ctx.max_level()), &mut rng);
        let cb = ks
            .public
            .encrypt(&enc.encode(&zb, f.ctx.max_level()), &mut rng);

        let sum = enc.decode(&ks.secret.decrypt(&ev.add(&ca, &cb)));
        let want_sum: Vec<Complex> = za.iter().zip(&zb).map(|(&x, &y)| x + y).collect();
        assert!(max_error(&want_sum, &sum) < 1e-6);

        let diff = enc.decode(&ks.secret.decrypt(&ev.sub(&ca, &cb)));
        let want_diff: Vec<Complex> = za.iter().zip(&zb).map(|(&x, &y)| x - y).collect();
        assert!(max_error(&want_diff, &diff) < 1e-6);

        let neg = enc.decode(&ks.secret.decrypt(&ev.negate(&ca)));
        let want_neg: Vec<Complex> = za.iter().map(|&x| -x).collect();
        assert!(max_error(&want_neg, &neg) < 1e-6);
    }

    #[test]
    fn plain_ops() {
        let f = fixture();
        let ks = keys(&f.ctx);
        let enc = Encoder::new(&f.ctx);
        let ev = Evaluator::new(&f.ctx);
        let m = f.ctx.slots();
        let za = msg(m, |i| Complex::new((i % 7) as f64 * 0.1, 0.02));
        let zp = msg(m, |i| Complex::new(0.5, (i % 3) as f64 * 0.1));
        let mut rng = StdRng::seed_from_u64(6);
        let ca = ks
            .public
            .encrypt(&enc.encode(&za, f.ctx.max_level()), &mut rng);
        let pp = enc.encode(&zp, f.ctx.max_level());

        let prod = ev.rescale(&ev.mul_plain(&ca, &pp));
        let out = enc.decode(&ks.secret.decrypt(&prod));
        let want: Vec<Complex> = za.iter().zip(&zp).map(|(&x, &y)| x * y).collect();
        assert!(max_error(&want, &out) < 1e-5);

        let sum = ev.add_plain(&ca, &enc.encode(&zp, f.ctx.max_level()));
        let out2 = enc.decode(&ks.secret.decrypt(&sum));
        let want2: Vec<Complex> = za.iter().zip(&zp).map(|(&x, &y)| x + y).collect();
        assert!(max_error(&want2, &out2) < 1e-6);
    }

    #[test]
    fn scalar_ops() {
        let f = fixture();
        let ks = keys(&f.ctx);
        let enc = Encoder::new(&f.ctx);
        let ev = Evaluator::new(&f.ctx);
        let m = f.ctx.slots();
        let za = msg(m, |i| Complex::new(0.1 * (i % 5) as f64, -0.3));
        let mut rng = StdRng::seed_from_u64(8);
        let ca = ks
            .public
            .encrypt(&enc.encode(&za, f.ctx.max_level()), &mut rng);

        let scaled = ev.rescale(&ev.mul_scalar(&ca, -1.5));
        let out = enc.decode(&ks.secret.decrypt(&scaled));
        let want: Vec<Complex> = za.iter().map(|&x| x.scale(-1.5)).collect();
        assert!(max_error(&want, &out) < 1e-5);

        let tripled = ev.mul_integer(&ca, 3);
        let out = enc.decode(&ks.secret.decrypt(&tripled));
        let want: Vec<Complex> = za.iter().map(|&x| x.scale(3.0)).collect();
        assert!(max_error(&want, &out) < 1e-5);

        let shifted = ev.add_scalar(&ca, 0.75);
        let out = enc.decode(&ks.secret.decrypt(&shifted));
        let want: Vec<Complex> = za.iter().map(|&x| x + Complex::new(0.75, 0.0)).collect();
        assert!(max_error(&want, &out) < 1e-5);
    }

    #[test]
    fn hmult_matches_plain_product() {
        let f = fixture();
        let ks = keys(&f.ctx);
        let enc = Encoder::new(&f.ctx);
        let ev = Evaluator::new(&f.ctx);
        let m = f.ctx.slots();
        let za = msg(m, |i| Complex::new(((i % 11) as f64 - 5.0) * 0.1, 0.2));
        let zb = msg(m, |i| Complex::new(0.3, ((i % 7) as f64 - 3.0) * 0.1));
        let mut rng = StdRng::seed_from_u64(13);
        let ca = ks
            .public
            .encrypt(&enc.encode(&za, f.ctx.max_level()), &mut rng);
        let cb = ks
            .public
            .encrypt(&enc.encode(&zb, f.ctx.max_level()), &mut rng);

        let prod = ev.mul_relin_rescale(&ca, &cb, &ks.relin);
        assert_eq!(prod.level(), f.ctx.max_level() - 1);
        let out = enc.decode(&ks.secret.decrypt(&prod));
        let want: Vec<Complex> = za.iter().zip(&zb).map(|(&x, &y)| x * y).collect();
        let err = max_error(&want, &out);
        assert!(err < 1e-4, "HMULT error too large: {err}");
    }

    #[test]
    fn square_matches_mul_self() {
        let f = fixture();
        let ks = keys(&f.ctx);
        let enc = Encoder::new(&f.ctx);
        let ev = Evaluator::new(&f.ctx);
        let m = f.ctx.slots();
        let za = msg(m, |i| Complex::new(((i % 9) as f64 - 4.0) * 0.1, -0.1));
        let mut rng = StdRng::seed_from_u64(14);
        let ca = ks
            .public
            .encrypt(&enc.encode(&za, f.ctx.max_level()), &mut rng);
        let sq = ev.rescale(&ev.square_relin(&ca, &ks.relin));
        let out = enc.decode(&ks.secret.decrypt(&sq));
        let want: Vec<Complex> = za.iter().map(|&x| x * x).collect();
        assert!(max_error(&want, &out) < 1e-4);
    }

    #[test]
    fn rotation_shifts_slots() {
        let f = fixture();
        let ks = keys(&f.ctx);
        let enc = Encoder::new(&f.ctx);
        let ev = Evaluator::new(&f.ctx);
        let m = f.ctx.slots();
        let za = msg(m, |i| Complex::new(i as f64 * 1e-3, (m - i) as f64 * 1e-3));
        let mut rng = StdRng::seed_from_u64(15);
        let ca = ks
            .public
            .encrypt(&enc.encode(&za, f.ctx.max_level()), &mut rng);
        for r in [1isize, 2, 5] {
            let rot = ev.rotate(&ca, r, &ks);
            let out = enc.decode(&ks.secret.decrypt(&rot));
            let want: Vec<Complex> = (0..m).map(|j| za[(j + r as usize) % m]).collect();
            let err = max_error(&want, &out);
            assert!(err < 1e-4, "rotation {r} error: {err}");
        }
    }

    #[test]
    fn hoisted_rotation_matches_direct() {
        let f = fixture();
        let ks = keys(&f.ctx);
        let enc = Encoder::new(&f.ctx);
        let ev = Evaluator::new(&f.ctx);
        let m = f.ctx.slots();
        let za = msg(m, |i| Complex::new((i as f64).cos() * 0.3, 0.0));
        let mut rng = StdRng::seed_from_u64(16);
        let ca = ks
            .public
            .encrypt(&enc.encode(&za, f.ctx.max_level()), &mut rng);
        let hoisted = ev.key_switcher().decompose_mod_up(ca.a(), ca.level());
        for r in [1isize, 3] {
            let direct = ev.rotate(&ca, r, &ks);
            let viah = ev.rotate_hoisted(&ca, &hoisted, r, &ks);
            let d1 = enc.decode(&ks.secret.decrypt(&direct));
            let d2 = enc.decode(&ks.secret.decrypt(&viah));
            assert!(max_error(&d1, &d2) < 1e-5, "hoisted must match direct");
        }
    }

    #[test]
    fn conjugation() {
        let f = fixture();
        let ks = keys(&f.ctx);
        let enc = Encoder::new(&f.ctx);
        let ev = Evaluator::new(&f.ctx);
        let m = f.ctx.slots();
        let za = msg(m, |i| Complex::new(0.1, i as f64 * 1e-3));
        let mut rng = StdRng::seed_from_u64(17);
        let ca = ks
            .public
            .encrypt(&enc.encode(&za, f.ctx.max_level()), &mut rng);
        let conj = ev.conjugate(&ca, &ks);
        let out = enc.decode(&ks.secret.decrypt(&conj));
        let want: Vec<Complex> = za.iter().map(|z| z.conj()).collect();
        assert!(max_error(&want, &out) < 1e-4);
    }

    #[test]
    fn depth_chain_multiplications() {
        // Exercise the whole level chain: ((x²)²)… down to level 1.
        let f = fixture();
        let ks = keys(&f.ctx);
        let enc = Encoder::new(&f.ctx);
        let ev = Evaluator::new(&f.ctx);
        let m = f.ctx.slots();
        let za = msg(m, |_| Complex::new(0.9, 0.0));
        let mut rng = StdRng::seed_from_u64(18);
        let mut ct = ks
            .public
            .encrypt(&enc.encode(&za, f.ctx.max_level()), &mut rng);
        let mut expect = 0.9f64;
        while ct.level() > 1 {
            ct = ev.rescale(&ev.square_relin(&ct, &ks.relin));
            expect = expect * expect;
            let out = enc.decode(&ks.secret.decrypt(&ct));
            assert!(
                (out[0].re - expect).abs() < 1e-3,
                "level {}: got {} want {expect}",
                ct.level(),
                out[0].re
            );
        }
    }

    #[test]
    fn mod_switch_preserves_message() {
        let f = fixture();
        let ks = keys(&f.ctx);
        let enc = Encoder::new(&f.ctx);
        let ev = Evaluator::new(&f.ctx);
        let m = f.ctx.slots();
        let za = msg(m, |i| Complex::new(i as f64 * 1e-4, 0.5));
        let mut rng = StdRng::seed_from_u64(19);
        let ca = ks
            .public
            .encrypt(&enc.encode(&za, f.ctx.max_level()), &mut rng);
        let dropped = ev.mod_switch_to(&ca, 2);
        assert_eq!(dropped.level(), 2);
        let out = enc.decode(&ks.secret.decrypt(&dropped));
        assert!(max_error(&za, &out) < 1e-5);
    }

    #[test]
    fn guarded_chain_stays_correct_until_typed_exhaustion() {
        // A deep squaring chain on the guarded evaluator: results decrypt
        // correctly while the guard passes, and the failure mode is a typed
        // NoiseBudgetExhausted (or LevelsExhausted), never garbage.
        let ctx = CkksContext::new(
            CkksParams::builder()
                .log_n(10)
                .levels(8)
                .alpha(2)
                .scale_bits(40)
                .build(),
        );
        let mut rng = StdRng::seed_from_u64(77);
        let ks = KeyGenerator::new(&ctx, &mut rng).generate(&[]);
        let enc = Encoder::new(&ctx);
        let gv = GuardedEvaluator::new(&ctx, 14.0);
        let za = msg(ctx.slots(), |_| Complex::new(0.95, 0.0));
        let ct = ks
            .public
            .encrypt(&enc.encode(&za, ctx.max_level()), &mut rng);
        let mut t = gv.track_fresh(ct, 0.95);
        let mut expect = 0.95f64;
        let mut depth = 0;
        let err = loop {
            match gv.square_rescale(&t, &ks.relin) {
                Ok(next) => {
                    t = next;
                    expect *= expect;
                    depth += 1;
                    let out = enc.decode(&ks.secret.decrypt(&t.ct));
                    assert!(
                        (out[0].re - expect).abs() < 1e-2,
                        "depth {depth}: guarded result must stay accurate"
                    );
                }
                Err(e) => break e,
            }
        };
        assert!(depth >= 2, "budget must allow some depth, got {depth}");
        match err {
            EvalError::NoiseBudgetExhausted {
                precision_bits,
                required_bits,
                ..
            } => {
                assert!(precision_bits < required_bits);
                assert_eq!(required_bits, 14.0);
            }
            EvalError::LevelsExhausted { .. } => {}
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn guarded_rotate_reports_missing_key() {
        let f = fixture();
        let ks = keys(&f.ctx);
        let enc = Encoder::new(&f.ctx);
        let gv = GuardedEvaluator::new(&f.ctx, 4.0);
        let za = msg(f.ctx.slots(), |_| Complex::new(0.1, 0.0));
        let mut rng = StdRng::seed_from_u64(78);
        let ca = ks
            .public
            .encrypt(&enc.encode(&za, f.ctx.max_level()), &mut rng);
        let t = gv.track_fresh(ca, 0.1);
        let err = gv.rotate(&t, 7, &ks).unwrap_err();
        assert_eq!(err, EvalError::MissingRotationKey { distance: 7 });
        assert!(err.to_string().contains("distance 7"));
    }

    #[test]
    fn guarded_rescale_at_floor_level_is_typed() {
        let f = fixture();
        let ks = keys(&f.ctx);
        let enc = Encoder::new(&f.ctx);
        let ev = Evaluator::new(&f.ctx);
        let gv = GuardedEvaluator::new(&f.ctx, 0.0);
        let za = msg(f.ctx.slots(), |_| Complex::new(0.5, 0.0));
        let mut rng = StdRng::seed_from_u64(79);
        let ca = ks
            .public
            .encrypt(&enc.encode(&za, f.ctx.max_level()), &mut rng);
        let floor = ev.mod_switch_to(&ca, 1);
        let t = gv.track_fresh(floor, 0.5);
        let err = gv.square_rescale(&t, &ks.relin).unwrap_err();
        assert_eq!(
            err,
            EvalError::LevelsExhausted {
                op: "square_rescale",
                level: 1
            }
        );
    }

    #[test]
    #[should_panic(expected = "missing rotation key")]
    fn missing_rotation_key_panics() {
        let f = fixture();
        let ks = keys(&f.ctx);
        let enc = Encoder::new(&f.ctx);
        let ev = Evaluator::new(&f.ctx);
        let za = msg(f.ctx.slots(), |_| Complex::ZERO);
        let mut rng = StdRng::seed_from_u64(20);
        let ca = ks
            .public
            .encrypt(&enc.encode(&za, f.ctx.max_level()), &mut rng);
        let _ = ev.rotate(&ca, 7, &ks);
    }
}
