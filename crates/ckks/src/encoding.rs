//! Encoding and decoding via the canonical embedding.
//!
//! A message `u ∈ C^{N/2}` is mapped to a real-coefficient polynomial whose
//! evaluations at the primitive `2N`-th roots `ζ^{5^j}` equal the slots
//! (§II-A). The rotation-group ordering (`5^j`) makes the Galois map
//! `X ↦ X^5` a cyclic left shift of the slots, which is exactly HROT by 1.
//!
//! This implementation uses the direct `O(N·M)` transform with precomputed
//! root powers. The cost of encoding never enters the Anaheim performance
//! model (plaintexts are prepared offline), so clarity wins over an FFT.

use crate::ciphertext::Plaintext;
use crate::complex::Complex;
use crate::context::CkksContext;
use ckks_math::poly::Poly;

/// Encoder/decoder bound to a context.
#[derive(Debug)]
pub struct Encoder<'a> {
    ctx: &'a CkksContext,
    /// `ζ^t` for `t ∈ [0, 2N)`, `ζ = e^{iπ/N}`.
    zeta_pows: Vec<Complex>,
    /// `5^j mod 2N` for `j ∈ [0, N/2)`.
    rot_group: Vec<usize>,
}

impl<'a> Encoder<'a> {
    /// Precomputes root powers for the context's ring degree.
    pub fn new(ctx: &'a CkksContext) -> Self {
        let n = ctx.n();
        let two_n = 2 * n;
        let zeta_pows = (0..two_n)
            .map(|t| Complex::from_angle(std::f64::consts::PI * t as f64 / n as f64))
            .collect();
        let mut rot_group = Vec::with_capacity(n / 2);
        let mut g = 1usize;
        for _ in 0..n / 2 {
            rot_group.push(g);
            g = (g * 5) % two_n;
        }
        Self {
            ctx,
            zeta_pows,
            rot_group,
        }
    }

    /// The Galois element implementing a cyclic slot rotation by `r`
    /// (positive = left shift, as in HROT's `≪`).
    pub fn galois_for_rotation(&self, r: isize) -> u64 {
        let m = self.ctx.slots() as isize;
        let two_n = 2 * self.ctx.n() as u64;
        let r = r.rem_euclid(m) as u32;
        // 5^r mod 2N
        let mut g = 1u64;
        for _ in 0..r {
            g = (g * 5) % two_n;
        }
        g
    }

    /// The Galois element implementing complex conjugation of all slots.
    pub fn galois_for_conjugation(&self) -> u64 {
        2 * self.ctx.n() as u64 - 1
    }

    /// Encodes a slot vector at the context's default scale.
    ///
    /// # Panics
    ///
    /// Panics if `slots.len() != N/2` or `level` is out of range.
    pub fn encode(&self, slots: &[Complex], level: usize) -> Plaintext {
        self.encode_with_scale(slots, level, self.ctx.params().scale())
    }

    /// Encodes at an explicit scale (needed when matching the scale of a
    /// partially rescaled ciphertext).
    ///
    /// # Panics
    ///
    /// Panics if the slot count is wrong, the level invalid, or a scaled
    /// coefficient overflows the representable range (message too large for
    /// the chosen scale).
    pub fn encode_with_scale(&self, slots: &[Complex], level: usize, scale: f64) -> Plaintext {
        let coeffs = self.embed(slots, scale);
        let mut poly = Poly::from_coeff_i64(self.ctx.basis_q(level), &coeffs);
        poly.to_eval();
        Plaintext::new(poly, scale, level)
    }

    /// The raw canonical-embedding step: slots → integer coefficients.
    ///
    /// Exposed for bootstrapping, which needs coefficient-space access.
    ///
    /// # Panics
    ///
    /// Panics on slot-count mismatch or coefficient overflow.
    pub fn embed(&self, slots: &[Complex], scale: f64) -> Vec<i64> {
        let n = self.ctx.n();
        let m = n / 2;
        assert_eq!(slots.len(), m, "expected {m} slots");
        let two_n = 2 * n;
        let mut coeffs = vec![0i64; n];
        for (k, c) in coeffs.iter_mut().enumerate() {
            // c_k = (Δ/M)·Re(Σ_j z_j·conj(ζ^{5^j·k}))
            let mut acc = Complex::ZERO;
            for (j, &z) in slots.iter().enumerate() {
                let e = (self.rot_group[j] * k) % two_n;
                acc += z * self.zeta_pows[e].conj();
            }
            let v = (scale / m as f64) * acc.re;
            assert!(
                v.abs() < 4.6e18,
                "encoded coefficient overflows: message too large for scale"
            );
            *c = v.round() as i64;
        }
        coeffs
    }

    /// Decodes a plaintext back to its slot vector.
    pub fn decode(&self, pt: &Plaintext) -> Vec<Complex> {
        let mut poly = pt.poly().clone();
        poly.to_coeff();
        let crt = self.ctx.crt(pt.level());
        let n = self.ctx.n();
        let coeffs: Vec<f64> = (0..n)
            .map(|k| {
                let residues: Vec<u64> = (0..pt.level()).map(|i| poly.limb(i).data()[k]).collect();
                crt.reconstruct_centered_f64(&residues)
            })
            .collect();
        self.unembed(&coeffs, pt.scale())
    }

    /// The raw inverse embedding: real coefficients → slots.
    pub fn unembed(&self, coeffs: &[f64], scale: f64) -> Vec<Complex> {
        let n = self.ctx.n();
        let m = n / 2;
        assert_eq!(coeffs.len(), n, "expected {n} coefficients");
        let two_n = 2 * n;
        (0..m)
            .map(|j| {
                let mut acc = Complex::ZERO;
                for (k, &c) in coeffs.iter().enumerate() {
                    let e = (self.rot_group[j] * k) % two_n;
                    acc += self.zeta_pows[e].scale(c);
                }
                acc.scale(1.0 / scale)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::max_error;
    use crate::params::CkksParams;

    fn setup() -> CkksContext {
        CkksContext::new(CkksParams::test_small())
    }

    fn ramp(m: usize) -> Vec<Complex> {
        (0..m)
            .map(|i| Complex::new((i as f64) * 0.01 - 2.0, (i as f64) * -0.003 + 1.0))
            .collect()
    }

    #[test]
    fn encode_decode_roundtrip() {
        let ctx = setup();
        let enc = Encoder::new(&ctx);
        let msg = ramp(ctx.slots());
        let pt = enc.encode(&msg, ctx.max_level());
        let out = enc.decode(&pt);
        assert!(max_error(&msg, &out) < 1e-7, "quantization error only");
    }

    #[test]
    fn encode_is_linear() {
        let ctx = setup();
        let enc = Encoder::new(&ctx);
        let m = ctx.slots();
        let a = ramp(m);
        let b: Vec<Complex> = (0..m)
            .map(|i| Complex::new(0.5, i as f64 * 0.001))
            .collect();
        let sum: Vec<Complex> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
        let mut pa = enc.encode(&a, ctx.max_level());
        let pb = enc.encode(&b, ctx.max_level());
        pa.poly_mut().add_assign(pb.poly());
        let out = enc.decode(&pa);
        assert!(max_error(&sum, &out) < 1e-6);
    }

    #[test]
    fn rotation_galois_shifts_slots() {
        let ctx = setup();
        let enc = Encoder::new(&ctx);
        let m = ctx.slots();
        let msg = ramp(m);
        let pt = enc.encode(&msg, ctx.max_level());
        // Apply the automorphism for rotation by 3 directly to the plaintext.
        let g = enc.galois_for_rotation(3);
        let rotated = Plaintext::new(pt.poly().automorphism(g), pt.scale(), pt.level());
        let out = enc.decode(&rotated);
        let want: Vec<Complex> = (0..m).map(|j| msg[(j + 3) % m]).collect();
        assert!(max_error(&want, &out) < 1e-6, "X→X^{{5^3}} must be slot ≪3");
    }

    #[test]
    fn conjugation_galois_conjugates_slots() {
        let ctx = setup();
        let enc = Encoder::new(&ctx);
        let msg = ramp(ctx.slots());
        let pt = enc.encode(&msg, ctx.max_level());
        let g = enc.galois_for_conjugation();
        let conj = Plaintext::new(pt.poly().automorphism(g), pt.scale(), pt.level());
        let out = enc.decode(&conj);
        let want: Vec<Complex> = msg.iter().map(|z| z.conj()).collect();
        assert!(max_error(&want, &out) < 1e-6);
    }

    #[test]
    fn negative_rotation_wraps() {
        let ctx = setup();
        let enc = Encoder::new(&ctx);
        let m = ctx.slots() as isize;
        assert_eq!(enc.galois_for_rotation(-1), enc.galois_for_rotation(m - 1));
    }

    #[test]
    fn embed_unembed_inverse() {
        let ctx = setup();
        let enc = Encoder::new(&ctx);
        let msg = ramp(ctx.slots());
        let coeffs = enc.embed(&msg, 2f64.powi(40));
        let back = enc.unembed(
            &coeffs.iter().map(|&c| c as f64).collect::<Vec<_>>(),
            2f64.powi(40),
        );
        assert!(max_error(&msg, &back) < 1e-7);
    }
}
