//! The CKKS context: prime chain, NTT tables, and the precomputations for
//! key switching (digit decomposition, ModUp converters, ModDown, gadget
//! vectors).
//!
//! Terminology: the *level* of a ciphertext is the number of active `Q`
//! primes; a fresh ciphertext sits at `max_level() = levels + 1`, and each
//! rescale removes the last prime of the chain.

use std::collections::HashMap;
use std::ops::Range;
use std::sync::{Arc, Mutex};

use ckks_math::modulus::Modulus;
use ckks_math::ntt::NttContext;
use ckks_math::poly::{Format, Limb, Poly};
use ckks_math::prime::{generate_ntt_primes, generate_primes_near};
use ckks_math::rns::{BasisConverter, CrtReconstructor, ModDown, UBig};

use crate::params::CkksParams;

/// Shared CKKS context. Cheap to clone via [`Arc`]; all precomputation caches
/// are lazily filled and thread-safe.
#[derive(Debug)]
pub struct CkksContext {
    params: CkksParams,
    /// The `Q` chain: `q_0` (base) followed by `levels` rescale primes.
    q_ctxs: Vec<Arc<NttContext>>,
    /// The auxiliary `P` primes.
    p_ctxs: Vec<Arc<NttContext>>,
    /// Gadget residues `g_j = P·Q̂_j·[Q̂_j^{-1}]_{Q_j}` per digit, per prime of
    /// the full `Q‖P` basis.
    gadget: Vec<Vec<u64>>,
    mod_up_cache: Mutex<HashMap<(usize, usize), Arc<BasisConverter>>>,
    mod_down_cache: Mutex<HashMap<usize, Arc<ModDown>>>,
    crt_cache: Mutex<HashMap<usize, Arc<CrtReconstructor>>>,
}

impl CkksContext {
    /// Instantiates NTT tables and key-switching precomputations for the
    /// given parameters.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are invalid (see [`CkksParams::validate`]) or
    /// if prime generation fails (requesting more primes of a size than
    /// exist for the ring degree).
    pub fn new(params: CkksParams) -> Self {
        params.validate();
        let n = params.n();
        let two_n = 2 * n as u64;

        // Base prime and P primes; when they share a bit size, draw them from
        // a single descending scan so they never collide.
        let (q0, p_primes) = if params.q0_bits == params.p_bits {
            let mut ps = generate_ntt_primes(params.q0_bits, params.alpha + 1, two_n);
            let q0 = ps.remove(0);
            (q0, ps)
        } else {
            (
                generate_ntt_primes(params.q0_bits, 1, two_n)[0],
                generate_ntt_primes(params.p_bits, params.alpha, two_n),
            )
        };
        // Rescale primes near Δ, excluding anything already taken.
        let mut exclude = vec![q0];
        exclude.extend_from_slice(&p_primes);
        let scale_primes =
            generate_primes_near(1u64 << params.scale_bits, params.levels, two_n, &exclude);

        let make = |q: u64| Arc::new(NttContext::new(n, Modulus::new(q)));
        let mut q_ctxs = Vec::with_capacity(params.q_count());
        q_ctxs.push(make(q0));
        q_ctxs.extend(scale_primes.into_iter().map(make));
        let p_ctxs: Vec<_> = p_primes.into_iter().map(make).collect();

        let gadget = compute_gadget(&params, &q_ctxs, &p_ctxs);

        Self {
            params,
            q_ctxs,
            p_ctxs,
            gadget,
            mod_up_cache: Mutex::new(HashMap::new()),
            mod_down_cache: Mutex::new(HashMap::new()),
            crt_cache: Mutex::new(HashMap::new()),
        }
    }

    /// The parameter set.
    pub fn params(&self) -> &CkksParams {
        &self.params
    }

    /// Ring degree `N`.
    pub fn n(&self) -> usize {
        self.params.n()
    }

    /// Number of message slots `N/2`.
    pub fn slots(&self) -> usize {
        self.params.slots()
    }

    /// The level of a fresh ciphertext (total number of `Q` primes).
    pub fn max_level(&self) -> usize {
        self.params.q_count()
    }

    /// `Q`-prime contexts for the first `level` primes.
    ///
    /// # Panics
    ///
    /// Panics if `level` is 0 or exceeds [`Self::max_level`].
    pub fn basis_q(&self, level: usize) -> &[Arc<NttContext>] {
        assert!(level >= 1 && level <= self.max_level(), "invalid level");
        &self.q_ctxs[..level]
    }

    /// The auxiliary `P`-prime contexts.
    pub fn basis_p(&self) -> &[Arc<NttContext>] {
        &self.p_ctxs
    }

    /// The extended basis `Q_level ‖ P`.
    pub fn basis_qp(&self, level: usize) -> Vec<Arc<NttContext>> {
        let mut b = self.basis_q(level).to_vec();
        b.extend(self.p_ctxs.iter().cloned());
        b
    }

    /// The full basis `Q_full ‖ P` used by keys.
    pub fn basis_full(&self) -> Vec<Arc<NttContext>> {
        self.basis_qp(self.max_level())
    }

    /// The product of the auxiliary primes, `P`.
    pub fn p_product(&self) -> UBig {
        let mut p = UBig::from_u64(1);
        for c in &self.p_ctxs {
            p = p.mul_small(c.modulus().value());
        }
        p
    }

    /// Number of key-switching digits at a given level:
    /// `⌈level / α⌉` (digits are fixed by the full-level grouping; trailing
    /// digits may be partially active).
    pub fn num_digits(&self, level: usize) -> usize {
        level.div_ceil(self.params.alpha)
    }

    /// The decomposition number `D` at full level.
    pub fn decomposition_number(&self) -> usize {
        self.num_digits(self.max_level())
    }

    /// The range of `Q`-prime indices covered by digit `j` at `level`.
    pub fn digit_range(&self, level: usize, j: usize) -> Range<usize> {
        let a = self.params.alpha;
        let start = j * a;
        let end = ((j + 1) * a).min(level);
        assert!(start < level, "digit {j} inactive at level {level}");
        start..end
    }

    /// Gadget residue `g_j mod prime`, where `prime_idx` indexes the full
    /// `Q‖P` basis (`0..q_count` are `Q` primes, then `P` primes).
    pub fn gadget_residue(&self, digit: usize, prime_idx: usize) -> u64 {
        self.gadget[digit][prime_idx]
    }

    /// ModUp of one decomposition digit: takes the digit's limbs (coefficient
    /// domain) at `level` and produces a coefficient-domain polynomial over
    /// the full active `Q_level ‖ P` basis.
    ///
    /// Residues on the source primes are copied through untouched; the rest
    /// are produced by approximate basis conversion (§II-B BConv).
    ///
    /// # Panics
    ///
    /// Panics if the limb data does not match the digit structure.
    pub fn mod_up(&self, level: usize, digit: usize, digit_limbs: &[&[u64]]) -> Poly {
        let range = self.digit_range(level, digit);
        assert_eq!(digit_limbs.len(), range.len(), "digit limb count mismatch");
        let conv = self.mod_up_converter(level, digit);
        let converted = conv.convert_approx(digit_limbs);
        // Assemble: active Q primes in order, then P primes.
        let mut limbs: Vec<Limb> = Vec::with_capacity(level + self.params.alpha);
        let mut conv_iter = converted.into_iter();
        for i in 0..level {
            if range.contains(&i) {
                limbs.push(Limb::from_slice(
                    self.q_ctxs[i].clone(),
                    digit_limbs[i - range.start],
                ));
            } else {
                limbs.push(conv_iter.next().expect("converter output exhausted"));
            }
        }
        limbs.extend(conv_iter);
        assert_eq!(limbs.len(), level + self.params.alpha);
        Poly::from_limbs(limbs, Format::Coeff)
    }

    fn mod_up_converter(&self, level: usize, digit: usize) -> Arc<BasisConverter> {
        let key = (level, digit);
        let mut cache = self.mod_up_cache.lock().expect("poisoned");
        cache
            .entry(key)
            .or_insert_with(|| {
                let range = self.digit_range(level, digit);
                let from: Vec<_> = self.q_ctxs[range.clone()].to_vec();
                let mut to: Vec<_> = Vec::new();
                for (i, c) in self.q_ctxs[..level].iter().enumerate() {
                    if !range.contains(&i) {
                        to.push(c.clone());
                    }
                }
                to.extend(self.p_ctxs.iter().cloned());
                Arc::new(BasisConverter::new(&from, &to))
            })
            .clone()
    }

    /// The ModDown precomputation for a level.
    pub fn mod_down(&self, level: usize) -> Arc<ModDown> {
        let mut cache = self.mod_down_cache.lock().expect("poisoned");
        cache
            .entry(level)
            .or_insert_with(|| Arc::new(ModDown::new(self.basis_q(level), &self.p_ctxs)))
            .clone()
    }

    /// CRT reconstructor over the first `level` `Q` primes (for decoding).
    pub fn crt(&self, level: usize) -> Arc<CrtReconstructor> {
        let mut cache = self.crt_cache.lock().expect("poisoned");
        cache
            .entry(level)
            .or_insert_with(|| Arc::new(CrtReconstructor::new(self.basis_q(level))))
            .clone()
    }

    /// Extracts the prefix of a full-basis key polynomial matching the active
    /// level: limbs `[0, level) ∪ P`-limbs, preserving the domain.
    ///
    /// # Panics
    ///
    /// Panics if `poly` is not over the full basis.
    pub fn key_prefix(&self, poly: &Poly, level: usize) -> Poly {
        let full = self.max_level() + self.params.alpha;
        assert_eq!(poly.num_limbs(), full, "expected a full-basis polynomial");
        let mut limbs = Vec::with_capacity(level + self.params.alpha);
        for i in 0..level {
            limbs.push(poly.limb(i).clone());
        }
        for i in 0..self.params.alpha {
            limbs.push(poly.limb(self.max_level() + i).clone());
        }
        Poly::from_limbs(limbs, poly.format())
    }
}

/// Computes the gadget residues `g_j = P·Q̂_j·t_j` with
/// `t_j = [Q̂_j^{-1}]_{Q_j}`, for every digit `j` of the full-level
/// decomposition and every prime of the `Q‖P` basis.
fn compute_gadget(
    params: &CkksParams,
    q_ctxs: &[Arc<NttContext>],
    p_ctxs: &[Arc<NttContext>],
) -> Vec<Vec<u64>> {
    let q_count = q_ctxs.len();
    let alpha = params.alpha;
    let num_digits = q_count.div_ceil(alpha);
    let mut p = UBig::from_u64(1);
    for c in p_ctxs {
        p = p.mul_small(c.modulus().value());
    }
    let all: Vec<&Arc<NttContext>> = q_ctxs.iter().chain(p_ctxs.iter()).collect();
    (0..num_digits)
        .map(|j| {
            let digit = j * alpha..((j + 1) * alpha).min(q_count);
            // Q̂_j = product of Q primes outside the digit.
            let mut q_hat = UBig::from_u64(1);
            for (i, c) in q_ctxs.iter().enumerate() {
                if !digit.contains(&i) {
                    q_hat = q_hat.mul_small(c.modulus().value());
                }
            }
            // t_j = Q̂_j^{-1} mod Q_j via CRT over the digit primes.
            // Build t_j as an integer: t_j = Σ_i [Q̂_j^{-1}]_{q_i}·(Q_j/q_i)·
            //                                 [(Q_j/q_i)^{-1}]_{q_i}  (mod Q_j)
            let digit_ctxs: Vec<&Arc<NttContext>> = digit.clone().map(|i| &q_ctxs[i]).collect();
            let mut q_j = UBig::from_u64(1);
            for c in &digit_ctxs {
                q_j = q_j.mul_small(c.modulus().value());
            }
            let mut t = UBig::zero();
            for (idx, c) in digit_ctxs.iter().enumerate() {
                let m = c.modulus();
                // residue of Q̂_j^{-1} at this digit prime
                let r = m.inv(q_hat.mod_small(m.value()));
                // CRT basis element for the digit
                let mut hat_i = UBig::from_u64(1);
                for (k, c2) in digit_ctxs.iter().enumerate() {
                    if k != idx {
                        hat_i = hat_i.mul_small(c2.modulus().value());
                    }
                }
                let hat_i_inv = m.inv(hat_i.mod_small(m.value()));
                let coeff = m.mul(r, hat_i_inv);
                t.add_assign(&hat_i.mul_small(coeff));
            }
            while t >= q_j {
                t.sub_assign(&q_j);
            }
            // g_j residues: P·Q̂_j·t_j mod each prime in Q‖P.
            all.iter()
                .map(|c| {
                    let m = c.modulus();
                    let a = p.mod_small(m.value());
                    let b = q_hat.mod_small(m.value());
                    let c3 = t.mod_small(m.value());
                    m.mul(m.mul(a, b), c3)
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> CkksContext {
        CkksContext::new(CkksParams::test_small())
    }

    #[test]
    fn prime_chain_structure() {
        let c = ctx();
        assert_eq!(c.max_level(), 5);
        assert_eq!(c.basis_q(5).len(), 5);
        assert_eq!(c.basis_p().len(), 2);
        assert_eq!(c.basis_qp(3).len(), 5);
        assert_eq!(c.basis_full().len(), 7);
        // All primes distinct and NTT-friendly.
        let mut seen = std::collections::HashSet::new();
        for p in c.basis_full() {
            let q = p.modulus().value();
            assert!(seen.insert(q), "primes must be distinct");
            assert_eq!(q % (2 * c.n() as u64), 1);
        }
    }

    #[test]
    fn digit_structure() {
        let c = ctx(); // q_count = 5, alpha = 2 -> digits {0,1},{2,3},{4}
        assert_eq!(c.decomposition_number(), 3);
        assert_eq!(c.num_digits(5), 3);
        assert_eq!(c.num_digits(4), 2);
        assert_eq!(c.num_digits(1), 1);
        assert_eq!(c.digit_range(5, 0), 0..2);
        assert_eq!(c.digit_range(5, 2), 4..5);
        assert_eq!(c.digit_range(3, 1), 2..3); // partially active digit
    }

    #[test]
    #[should_panic(expected = "inactive at level")]
    fn inactive_digit_rejected() {
        ctx().digit_range(2, 1);
    }

    #[test]
    fn gadget_identity() {
        // Σ_j [c]_{Q_j}·(Q̂_j·t_j) ≡ c (mod Q): check residue-wise with the
        // gadget divided by P.
        let c = ctx();
        let level = c.max_level();
        // pick a test value v, reduce per prime
        let v: i64 = 123_456_789_012_345;
        for (i, qc) in c.basis_q(level).iter().enumerate() {
            let m = qc.modulus();
            // which digit does prime i belong to?
            let alpha = c.params().alpha;
            let d = i / alpha;
            // g_d / P ≡ Q̂_d·t_d ≡ 1 mod q_i; other digits ≡ 0 mod q_i.
            let p_res = {
                let p = c.p_product();
                p.mod_small(m.value())
            };
            let p_inv = m.inv(p_res);
            for j in 0..c.decomposition_number() {
                let g = c.gadget_residue(j, i);
                let ghat = m.mul(g, p_inv); // Q̂_j·t_j mod q_i
                if j == d {
                    assert_eq!(ghat, 1, "digit's own gadget residue must be 1");
                } else {
                    assert_eq!(ghat, 0, "other digits must vanish");
                }
            }
            let _ = v; // value check implied by residue structure
        }
    }

    #[test]
    fn mod_up_value_correct_modulo_digit_product() {
        let c = ctx();
        let level = 4;
        let n = c.n();
        // A small-value polynomial living in digit 0 (primes 0..2).
        let vals: Vec<i64> = (0..n as i64).map(|i| (i % 97) - 48).collect();
        let digit_poly = Poly::from_coeff_i64(&c.basis_q(level)[0..2], &vals);
        let refs: Vec<&[u64]> = (0..2).map(|i| digit_poly.limb(i).data()).collect();
        let up = c.mod_up(level, 0, &refs);
        assert_eq!(up.num_limbs(), level + 2);
        // Source-prime residues pass through untouched; the rest equal the
        // value plus u·Q_digit for a small u ∈ [0, #source_limbs].
        let want = Poly::from_coeff_i64(&c.basis_qp(level), &vals);
        let q_digit: u128 = c.basis_q(level)[0].modulus().value() as u128
            * c.basis_q(level)[1].modulus().value() as u128;
        for (idx, (l, w)) in up.limbs().zip(want.limbs()).enumerate() {
            if idx < 2 {
                assert_eq!(l.data(), w.data(), "source residues pass through");
                continue;
            }
            let m = l.ctx().modulus();
            let qd = (q_digit % m.value() as u128) as u64;
            for (&got, &expect) in l.data().iter().zip(w.data()) {
                let diff = m.sub(got, expect);
                let ok = (0..=2u64).any(|u| diff == m.mul(m.reduce(u), qd));
                assert!(ok, "ModUp error must be a small multiple of Q_digit");
            }
        }
    }

    #[test]
    fn key_prefix_extraction() {
        let c = ctx();
        let full = c.basis_full();
        let p = Poly::from_coeff_i64(&full, &vec![7i64; c.n()]);
        let pre = c.key_prefix(&p, 2);
        assert_eq!(pre.num_limbs(), 2 + 2);
        assert_eq!(
            pre.limb(2).ctx().modulus().value(),
            c.basis_p()[0].modulus().value()
        );
    }
}
