//! Homomorphic linear transforms with diagonal packing (§III-B).
//!
//! A linear map `y = M·x` on slot vectors is evaluated as
//! `y = Σ_r diag_r(M) ⊙ (x ≪ r)` over the nonzero diagonals of `M`
//! [Halevi–Shoup]. Three evaluation strategies are provided, matching the
//! paper's discussion:
//!
//! - [`LinearTransform::eval_hoisted`] — **hoisting**: one shared
//!   ModUp for all rotations, PMULT/accumulation in the extended modulus,
//!   one hoisted ModDown; automorphisms are applied *after* PMULT by
//!   pre-rotating the plaintext diagonals (the reordering of §V-B, Fig. 5).
//! - [`LinearTransform::eval_minks`] — **MinKS**: iterated rotations by 1
//!   reusing a single evk (minimum key-switching keys, favoured by
//!   large-cache ASICs, §III-C).
//! - [`LinearTransform::eval_bsgs`] — **baby-step giant-step**: `O(√K)`
//!   key switches, used inside bootstrapping.

use std::collections::BTreeMap;

use ckks_math::poly::{Format, Poly};

use crate::ciphertext::Ciphertext;
use crate::complex::Complex;
use crate::context::CkksContext;
use crate::encoding::Encoder;
use crate::eval::Evaluator;
use crate::keys::{galois_for_rotation, KeySet};
use crate::opcount;

/// A slot-space linear map stored by its nonzero diagonals.
///
/// `diag_r[j] = M[j][(j+r) mod slots]`, so
/// `y_j = Σ_r diag_r[j] · x_{(j+r) mod slots}`.
#[derive(Debug, Clone)]
pub struct LinearTransform {
    slots: usize,
    diags: BTreeMap<usize, Vec<Complex>>,
}

impl LinearTransform {
    /// Creates an empty transform on `slots` slots.
    pub fn new(slots: usize) -> Self {
        Self {
            slots,
            diags: BTreeMap::new(),
        }
    }

    /// Builds from an explicit diagonal map.
    ///
    /// # Panics
    ///
    /// Panics if any diagonal has the wrong length or index.
    pub fn from_diagonals(slots: usize, diags: BTreeMap<usize, Vec<Complex>>) -> Self {
        let mut t = Self::new(slots);
        for (r, d) in diags {
            t.set_diagonal(r, d);
        }
        t
    }

    /// Builds from a dense matrix (rows × cols = slots × slots), extracting
    /// nonzero diagonals. Intended for tests and for bootstrapping matrices
    /// at small `N`.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square with side `slots`.
    pub fn from_matrix(slots: usize, m: &[Vec<Complex>]) -> Self {
        assert_eq!(m.len(), slots, "row count");
        let mut t = Self::new(slots);
        for r in 0..slots {
            let diag: Vec<Complex> = (0..slots)
                .map(|j| {
                    assert_eq!(m[j].len(), slots, "column count");
                    m[j][(j + r) % slots]
                })
                .collect();
            if diag.iter().any(|z| z.abs() > 1e-12) {
                t.set_diagonal(r, diag);
            }
        }
        t
    }

    /// Sets diagonal `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= slots` or the length is wrong.
    pub fn set_diagonal(&mut self, r: usize, diag: Vec<Complex>) {
        assert!(r < self.slots, "diagonal index out of range");
        assert_eq!(diag.len(), self.slots, "diagonal length mismatch");
        self.diags.insert(r, diag);
    }

    /// The number of slots.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// The stored diagonals.
    pub fn diagonals(&self) -> &BTreeMap<usize, Vec<Complex>> {
        &self.diags
    }

    /// Number of nonzero diagonals `K`.
    pub fn num_diagonals(&self) -> usize {
        self.diags.len()
    }

    /// Reference (plaintext) application of the transform.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != slots`.
    pub fn apply_plain(&self, x: &[Complex]) -> Vec<Complex> {
        assert_eq!(x.len(), self.slots, "input length mismatch");
        let mut y = vec![Complex::ZERO; self.slots];
        for (r, diag) in &self.diags {
            for j in 0..self.slots {
                y[j] += diag[j] * x[(j + r) % self.slots];
            }
        }
        y
    }

    /// The rotation distances required by [`Self::eval_hoisted`].
    pub fn required_rotations(&self) -> Vec<isize> {
        self.diags
            .keys()
            .filter(|&&r| r != 0)
            .map(|&r| r as isize)
            .collect()
    }

    /// The rotation distances required by [`Self::eval_bsgs`] for a given
    /// baby-step count `n1`: baby steps `1..n1` and the giant steps.
    pub fn required_rotations_bsgs(&self, n1: usize) -> Vec<isize> {
        let mut out: Vec<isize> = (1..n1 as isize).collect();
        let mut giants: Vec<isize> = self
            .diags
            .keys()
            .map(|&r| (r / n1 * n1) as isize)
            .filter(|&g| g != 0)
            .collect();
        giants.sort_unstable();
        giants.dedup();
        out.extend(giants);
        out
    }

    /// Hoisted evaluation (the paper's Fig. 5 flow). Output scale is
    /// `ct.scale · Δ`; rescale afterwards.
    ///
    /// # Panics
    ///
    /// Panics if a required rotation key is missing.
    pub fn eval_hoisted(
        &self,
        ev: &Evaluator<'_>,
        enc: &Encoder<'_>,
        ct: &Ciphertext,
        keys: &KeySet,
    ) -> Ciphertext {
        let ctx: &CkksContext = ev.context();
        let level = ct.level();
        let m = self.slots;
        assert_eq!(m, ctx.slots(), "transform/context slot mismatch");
        let delta = ctx.params().scale();

        // One shared ModUp (hoisting).
        let hoisted = ev.key_switcher().decompose_mod_up(ct.a(), level);

        let basis_qp = ctx.basis_qp(level);
        let basis_q = ctx.basis_q(level).to_vec();
        let mut acc0 = Poly::zero(&basis_qp, Format::Eval);
        let mut acc1 = Poly::zero(&basis_qp, Format::Eval);
        let mut acc_b = Poly::zero(&basis_q, Format::Eval);
        let mut acc_a0 = Poly::zero(&basis_q, Format::Eval); // r = 0 a-channel
        let mut any_pq = false;

        for (&r, diag) in &self.diags {
            // Pre-rotate the diagonal so PMULT can precede the automorphism:
            // p̂_r[j] = p_r[(j − r) mod m]  (the §V-B identity).
            let rotated: Vec<Complex> = (0..m).map(|j| diag[(j + m - r) % m]).collect();
            let coeffs = enc.embed(&rotated, delta);
            if r == 0 {
                let mut pt = Poly::from_coeff_i64(&basis_q, &coeffs);
                pt.to_eval();
                opcount::count_ntt(level);
                let mut tb = ct.b().clone();
                tb.mul_assign(&pt);
                acc_b.add_assign(&tb);
                let mut ta = ct.a().clone();
                ta.mul_assign(&pt);
                acc_a0.add_assign(&ta);
                // Counted as fused multiply-accumulates (one PMAC per limb
                // per channel), matching the IR convention.
                opcount::count_ew(2 * level);
                continue;
            }
            any_pq = true;
            let evk = keys
                .rotation(r as isize, m)
                .unwrap_or_else(|| panic!("missing rotation key for distance {r}"));
            // KeyMult in the extended modulus.
            let (kb, ka) = ev.key_switcher().key_mult(&hoisted, evk);
            // Plaintext lifted to PQ (hoisting enlarges plaintexts, Fig. 1).
            let mut pt_pq = Poly::from_coeff_i64(&basis_qp, &coeffs);
            pt_pq.to_eval();
            opcount::count_ntt(basis_qp.len());
            let mut pt_q = Poly::from_coeff_i64(&basis_q, &coeffs);
            pt_q.to_eval();
            opcount::count_ntt(level);

            let g = galois_for_rotation(ctx.n(), r as isize);
            // PMULT then automorphism then accumulate (AutAccum).
            let mut t0 = kb;
            t0.mul_assign(&pt_pq);
            acc0.add_assign(&t0.automorphism(g));
            let mut t1 = ka;
            t1.mul_assign(&pt_pq);
            acc1.add_assign(&t1.automorphism(g));
            let mut tb = ct.b().clone();
            tb.mul_assign(&pt_q);
            acc_b.add_assign(&tb.automorphism(g));
            opcount::count_ew(4 * basis_qp.len() + 2 * level);
            opcount::count_automorphism(2 * basis_qp.len() + level);
        }

        let (mut b, mut a) = if any_pq {
            opcount::count_keyswitch();
            ev.key_switcher().mod_down_pair(&acc0, &acc1, level)
        } else {
            (
                Poly::zero(&basis_q, Format::Eval),
                Poly::zero(&basis_q, Format::Eval),
            )
        };
        b.add_assign(&acc_b);
        a.add_assign(&acc_a0);
        opcount::count_ew(2 * level);
        Ciphertext::new(b, a, ct.scale() * delta, level)
    }

    /// MinKS evaluation: iterated rotation by 1 with a single evk (§III-B).
    /// Output scale is `ct.scale · Δ`; rescale afterwards.
    ///
    /// # Panics
    ///
    /// Panics if the rotation-by-1 key is missing.
    pub fn eval_minks(
        &self,
        ev: &Evaluator<'_>,
        enc: &Encoder<'_>,
        ct: &Ciphertext,
        keys: &KeySet,
    ) -> Ciphertext {
        let ctx = ev.context();
        let level = ct.level();
        let delta = ctx.params().scale();
        let basis_q = ctx.basis_q(level).to_vec();
        let mut acc_b = Poly::zero(&basis_q, Format::Eval);
        let mut acc_a = Poly::zero(&basis_q, Format::Eval);
        let mut cur = ct.clone();
        let mut cur_r = 0usize;
        for (&r, diag) in &self.diags {
            while cur_r < r {
                cur = ev.rotate(&cur, 1, keys);
                cur_r += 1;
            }
            let pt = enc.encode_with_scale(diag, level, delta);
            let mut tb = cur.b().clone();
            tb.mul_assign(pt.poly());
            acc_b.add_assign(&tb);
            let mut ta = cur.a().clone();
            ta.mul_assign(pt.poly());
            acc_a.add_assign(&ta);
            // Fused-MAC counting (one PMAC per limb per channel).
            opcount::count_ew(2 * level);
        }
        Ciphertext::new(acc_b, acc_a, ct.scale() * delta, level)
    }

    /// Baby-step giant-step evaluation with `n1` baby steps. Output scale is
    /// `ct.scale · Δ`; rescale afterwards.
    ///
    /// # Panics
    ///
    /// Panics if a required rotation key is missing or `n1 == 0`.
    pub fn eval_bsgs(
        &self,
        ev: &Evaluator<'_>,
        enc: &Encoder<'_>,
        ct: &Ciphertext,
        keys: &KeySet,
        n1: usize,
    ) -> Ciphertext {
        assert!(n1 >= 1, "need at least one baby step");
        let ctx = ev.context();
        let level = ct.level();
        let m = self.slots;
        let delta = ctx.params().scale();
        let basis_q = ctx.basis_q(level).to_vec();

        // Baby rotations, hoisted from a single decomposition.
        let hoisted = ev.key_switcher().decompose_mod_up(ct.a(), level);
        let mut baby: BTreeMap<usize, Ciphertext> = BTreeMap::new();
        let needed: std::collections::BTreeSet<usize> =
            self.diags.keys().map(|&r| r % n1).collect();
        for b in needed {
            let c = if b == 0 {
                ct.clone()
            } else {
                ev.rotate_hoisted(ct, &hoisted, b as isize, keys)
            };
            baby.insert(b, c);
        }

        // Group diagonals by giant step.
        let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for &r in self.diags.keys() {
            groups.entry(r / n1 * n1).or_default().push(r);
        }

        let mut out: Option<Ciphertext> = None;
        for (&g_step, rs) in &groups {
            let mut inner_b = Poly::zero(&basis_q, Format::Eval);
            let mut inner_a = Poly::zero(&basis_q, Format::Eval);
            for &r in rs {
                let b = r - g_step;
                let diag = &self.diags[&r];
                // Pre-rotate by the giant step so the outer rotation lands
                // the plaintext correctly.
                let rotated: Vec<Complex> = (0..m).map(|j| diag[(j + m - g_step) % m]).collect();
                let pt = enc.encode_with_scale(&rotated, level, delta);
                let src = &baby[&b];
                let mut tb = src.b().clone();
                tb.mul_assign(pt.poly());
                inner_b.add_assign(&tb);
                let mut ta = src.a().clone();
                ta.mul_assign(pt.poly());
                inner_a.add_assign(&ta);
                opcount::count_ew(2 * level);
            }
            let inner = Ciphertext::new(inner_b, inner_a, ct.scale() * delta, level);
            let rotated = if g_step == 0 {
                inner
            } else {
                ev.rotate(&inner, g_step as isize, keys)
            };
            out = Some(match out {
                None => rotated,
                Some(acc) => ev.add(&acc, &rotated),
            });
        }
        out.unwrap_or_else(|| {
            Ciphertext::new(
                Poly::zero(&basis_q, Format::Eval),
                Poly::zero(&basis_q, Format::Eval),
                ct.scale() * delta,
                level,
            )
        })
    }
}

impl LinearTransform {
    /// BSGS with *double hoisting* (Bossuat et al. \[8\]; the exact flow of
    /// the paper's Fig. 5): the baby rotations' KeyMult outputs stay in the
    /// extended modulus `PQ`, the inner PMACs run on PQ-lifted plaintexts,
    /// and a **single ModDown per giant group** replaces the per-baby
    /// ModDowns of [`Self::eval_bsgs`]. This is precisely the reordering
    /// that inflates the element-wise share on GPUs (§IV-B) and that
    /// Anaheim then offloads to PIM.
    ///
    /// Output scale is `ct.scale · Δ`; rescale afterwards.
    ///
    /// # Panics
    ///
    /// Panics if a required rotation key is missing or `n1 == 0`.
    pub fn eval_bsgs_double_hoisted(
        &self,
        ev: &Evaluator<'_>,
        enc: &Encoder<'_>,
        ct: &Ciphertext,
        keys: &KeySet,
        n1: usize,
    ) -> Ciphertext {
        assert!(n1 >= 1, "need at least one baby step");
        let ctx = ev.context();
        let level = ct.level();
        let m = self.slots;
        let delta = ctx.params().scale();
        let basis_q = ctx.basis_q(level).to_vec();
        let basis_qp = ctx.basis_qp(level);

        // One shared ModUp; baby KeyMults stay in PQ (no ModDown yet).
        let hoisted = ev.key_switcher().decompose_mod_up(ct.a(), level);
        let needed: std::collections::BTreeSet<usize> =
            self.diags.keys().map(|&r| r % n1).collect();
        // For baby b: the PQ pair (kb, ka) plus the galois element that
        // will be applied (inside the PMAC accumulation via pre-rotated
        // plaintexts, aut-last form).
        let mut baby_pq: BTreeMap<usize, (Poly, Poly)> = BTreeMap::new();
        for &b in &needed {
            if b == 0 {
                continue;
            }
            let evk = keys
                .rotation(b as isize, m)
                .unwrap_or_else(|| panic!("missing rotation key for distance {b}"));
            baby_pq.insert(b, ev.key_switcher().key_mult(&hoisted, evk));
        }

        // Group diagonals by giant step; accumulate per group in PQ.
        let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for &r in self.diags.keys() {
            groups.entry(r / n1 * n1).or_default().push(r);
        }

        let mut out: Option<Ciphertext> = None;
        for (&g_step, rs) in &groups {
            let mut acc0 = Poly::zero(&basis_qp, Format::Eval);
            let mut acc1 = Poly::zero(&basis_qp, Format::Eval);
            let mut acc_b = Poly::zero(&basis_q, Format::Eval);
            let mut acc_a0 = Poly::zero(&basis_q, Format::Eval);
            let mut any_pq = false;
            for &r in rs {
                let b = r - g_step;
                let diag = &self.diags[&r];
                // Pre-rotate by the full r (baby aut-last + giant), §V-B.
                let rot_by = |shift: usize| -> Vec<Complex> {
                    (0..m).map(|j| diag[(j + m - shift) % m]).collect()
                };
                if b == 0 {
                    // No baby rotation: PMAC directly on the input pair.
                    let coeffs = enc.embed(&rot_by(g_step), delta);
                    let mut pt = Poly::from_coeff_i64(&basis_q, &coeffs);
                    pt.to_eval();
                    let mut tb = ct.b().clone();
                    tb.mul_assign(&pt);
                    acc_b.add_assign(&tb);
                    let mut ta = ct.a().clone();
                    ta.mul_assign(&pt);
                    acc_a0.add_assign(&ta);
                    opcount::count_ew(2 * level);
                    continue;
                }
                any_pq = true;
                let (kb, ka) = &baby_pq[&b];
                let g = galois_for_rotation(ctx.n(), b as isize);
                // Plaintext pre-rotated by r and *pre-inverse-rotated* by b
                // so the baby automorphism can land after the PMAC: we fold
                // φ_b into the accumulation by rotating the plaintext right
                // by g_step only and applying φ_b to the product.
                let coeffs = enc.embed(&rot_by(r), delta);
                let mut pt_pq = Poly::from_coeff_i64(&basis_qp, &coeffs);
                pt_pq.to_eval();
                let mut pt_q = Poly::from_coeff_i64(&basis_q, &coeffs);
                pt_q.to_eval();

                let mut t0 = kb.clone();
                t0.mul_assign(&pt_pq);
                acc0.add_assign(&t0.automorphism(g));
                let mut t1 = ka.clone();
                t1.mul_assign(&pt_pq);
                acc1.add_assign(&t1.automorphism(g));
                let mut tb = ct.b().clone();
                tb.mul_assign(&pt_q);
                acc_b.add_assign(&tb.automorphism(g));
                opcount::count_ew(4 * basis_qp.len() + 2 * level);
                opcount::count_automorphism(2 * basis_qp.len() + level);
            }
            // Single hoisted ModDown for the whole giant group.
            let (mut ib, mut ia) = if any_pq {
                opcount::count_keyswitch();
                ev.key_switcher().mod_down_pair(&acc0, &acc1, level)
            } else {
                (
                    Poly::zero(&basis_q, Format::Eval),
                    Poly::zero(&basis_q, Format::Eval),
                )
            };
            ib.add_assign(&acc_b);
            ia.add_assign(&acc_a0);
            let inner = Ciphertext::new(ib, ia, ct.scale() * delta, level);
            let rotated = if g_step == 0 {
                inner
            } else {
                ev.rotate(&inner, g_step as isize, keys)
            };
            out = Some(match out {
                None => rotated,
                Some(acc) => ev.add(&acc, &rotated),
            });
        }
        out.unwrap_or_else(|| {
            Ciphertext::new(
                Poly::zero(&basis_q, Format::Eval),
                Poly::zero(&basis_q, Format::Eval),
                ct.scale() * delta,
                level,
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::max_error;
    use crate::keys::KeyGenerator;
    use crate::params::CkksParams;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_transform(slots: usize, idxs: &[usize], rng: &mut StdRng) -> LinearTransform {
        let mut t = LinearTransform::new(slots);
        for &r in idxs {
            let diag: Vec<Complex> = (0..slots)
                .map(|_| Complex::new(rng.gen_range(-0.5..0.5), rng.gen_range(-0.5..0.5)))
                .collect();
            t.set_diagonal(r, diag);
        }
        t
    }

    fn setup() -> (CkksContext, crate::keys::KeySet) {
        let ctx = CkksContext::new(CkksParams::test_small());
        let mut rng = StdRng::seed_from_u64(31);
        let keys = KeyGenerator::new(&ctx, &mut rng).generate(&[1, 2, 3, 4, 6, 8]);
        (ctx, keys)
    }

    fn encrypted_input<'a>(
        ctx: &'a CkksContext,
        keys: &crate::keys::KeySet,
    ) -> (Vec<Complex>, Ciphertext, Encoder<'a>) {
        let enc = Encoder::new(ctx);
        let m = ctx.slots();
        let mut rng = StdRng::seed_from_u64(32);
        let x: Vec<Complex> = (0..m)
            .map(|_| Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect();
        let ct = keys
            .public
            .encrypt(&enc.encode(&x, ctx.max_level()), &mut rng);
        (x, ct, enc)
    }

    #[test]
    fn hoisted_matches_plain() {
        let (ctx, keys) = setup();
        let (x, ct, enc) = encrypted_input(&ctx, &keys);
        let ev = Evaluator::new(&ctx);
        let mut rng = StdRng::seed_from_u64(33);
        let t = random_transform(ctx.slots(), &[0, 1, 3], &mut rng);
        let want = t.apply_plain(&x);
        let y = ev.rescale(&t.eval_hoisted(&ev, &enc, &ct, &keys));
        let out = enc.decode(&keys.secret.decrypt(&y));
        let err = max_error(&want, &out);
        assert!(err < 1e-3, "hoisted lintrans error: {err}");
    }

    #[test]
    fn minks_matches_plain() {
        let (ctx, keys) = setup();
        let (x, ct, enc) = encrypted_input(&ctx, &keys);
        let ev = Evaluator::new(&ctx);
        let mut rng = StdRng::seed_from_u64(34);
        let t = random_transform(ctx.slots(), &[0, 1, 2, 3], &mut rng);
        let want = t.apply_plain(&x);
        let y = ev.rescale(&t.eval_minks(&ev, &enc, &ct, &keys));
        let out = enc.decode(&keys.secret.decrypt(&y));
        let err = max_error(&want, &out);
        assert!(err < 1e-3, "MinKS lintrans error: {err}");
    }

    #[test]
    fn bsgs_matches_plain() {
        let (ctx, keys) = setup();
        let (x, ct, enc) = encrypted_input(&ctx, &keys);
        let ev = Evaluator::new(&ctx);
        let mut rng = StdRng::seed_from_u64(35);
        let t = random_transform(ctx.slots(), &[0, 1, 2, 3, 4, 6], &mut rng);
        let want = t.apply_plain(&x);
        let y = ev.rescale(&t.eval_bsgs(&ev, &enc, &ct, &keys, 2));
        let out = enc.decode(&keys.secret.decrypt(&y));
        let err = max_error(&want, &out);
        assert!(err < 1e-3, "BSGS lintrans error: {err}");
    }

    #[test]
    fn all_styles_agree() {
        let (ctx, keys) = setup();
        let (_, ct, enc) = encrypted_input(&ctx, &keys);
        let ev = Evaluator::new(&ctx);
        let mut rng = StdRng::seed_from_u64(36);
        let t = random_transform(ctx.slots(), &[0, 1, 2], &mut rng);
        let a = enc.decode(
            &keys
                .secret
                .decrypt(&ev.rescale(&t.eval_hoisted(&ev, &enc, &ct, &keys))),
        );
        let b = enc.decode(
            &keys
                .secret
                .decrypt(&ev.rescale(&t.eval_minks(&ev, &enc, &ct, &keys))),
        );
        let c = enc.decode(
            &keys
                .secret
                .decrypt(&ev.rescale(&t.eval_bsgs(&ev, &enc, &ct, &keys, 2))),
        );
        assert!(max_error(&a, &b) < 1e-3);
        assert!(max_error(&a, &c) < 1e-3);
    }

    #[test]
    fn hoisting_reduces_ntt_count() {
        // The whole point of hoisting (Fig. 1 table): far fewer (I)NTTs.
        let (ctx, keys) = setup();
        let (_, ct, enc) = encrypted_input(&ctx, &keys);
        let ev = Evaluator::new(&ctx);
        let mut rng = StdRng::seed_from_u64(37);
        let t = random_transform(ctx.slots(), &[0, 1, 2, 3, 4], &mut rng);

        crate::opcount::reset();
        let _ = t.eval_hoisted(&ev, &enc, &ct, &keys);
        let hoist = crate::opcount::snapshot();

        crate::opcount::reset();
        let _ = t.eval_minks(&ev, &enc, &ct, &keys);
        let minks = crate::opcount::snapshot();

        assert!(
            hoist.keyswitches < minks.keyswitches,
            "hoisting must use fewer ModDowns: {} vs {}",
            hoist.keyswitches,
            minks.keyswitches
        );
        assert!(
            hoist.intt_limbs < minks.intt_limbs,
            "hoisting must reduce INTT work"
        );
        assert!(
            hoist.ew_limb_ops as f64 / hoist.total_ntt_limbs() as f64
                > minks.ew_limb_ops as f64 / minks.total_ntt_limbs() as f64,
            "hoisting shifts the mix toward element-wise ops (the §IV-B effect)"
        );
    }

    #[test]
    fn from_matrix_roundtrip() {
        let slots = 8;
        let mut rng = StdRng::seed_from_u64(38);
        let m: Vec<Vec<Complex>> = (0..slots)
            .map(|_| {
                (0..slots)
                    .map(|_| Complex::new(rng.gen_range(-1.0..1.0), 0.0))
                    .collect()
            })
            .collect();
        let t = LinearTransform::from_matrix(slots, &m);
        let x: Vec<Complex> = (0..slots).map(|i| Complex::new(i as f64, 0.5)).collect();
        let via_diag = t.apply_plain(&x);
        let direct: Vec<Complex> = (0..slots)
            .map(|j| {
                let mut acc = Complex::ZERO;
                for k in 0..slots {
                    acc += m[j][k] * x[k];
                }
                acc
            })
            .collect();
        assert!(max_error(&via_diag, &direct) < 1e-9);
    }

    #[test]
    fn double_hoisted_bsgs_matches_plain() {
        let (ctx, keys) = setup();
        let (x, ct, enc) = encrypted_input(&ctx, &keys);
        let ev = Evaluator::new(&ctx);
        let mut rng = StdRng::seed_from_u64(39);
        let t = random_transform(ctx.slots(), &[0, 1, 2, 3, 4, 6], &mut rng);
        let want = t.apply_plain(&x);
        let y = ev.rescale(&t.eval_bsgs_double_hoisted(&ev, &enc, &ct, &keys, 2));
        let out = enc.decode(&keys.secret.decrypt(&y));
        let err = max_error(&want, &out);
        assert!(err < 1e-3, "double-hoisted BSGS error: {err}");
    }

    #[test]
    fn double_hoisting_cuts_moddowns() {
        // One ModDown per giant group instead of one per baby rotation —
        // and correspondingly more element-wise work in the extended
        // modulus (the §IV-B shift Anaheim exploits).
        // Double hoisting pays one ModDown per *giant group* instead of
        // one per baby rotation, so it wins when K > n1² (many babies per
        // group): K = 16 diagonals with n1 = 8.
        let ctx = CkksContext::new(CkksParams::test_small());
        let mut rng0 = StdRng::seed_from_u64(41);
        let rots: Vec<isize> = (1..=8).collect();
        let keys = KeyGenerator::new(&ctx, &mut rng0).generate(&rots);
        let (_, ct, enc) = encrypted_input(&ctx, &keys);
        let ev = Evaluator::new(&ctx);
        let mut rng = StdRng::seed_from_u64(40);
        let idxs: Vec<usize> = (0..16).collect();
        let t = random_transform(ctx.slots(), &idxs, &mut rng);

        crate::opcount::reset();
        let _ = t.eval_bsgs(&ev, &enc, &ct, &keys, 8);
        let single = crate::opcount::snapshot();
        crate::opcount::reset();
        let _ = t.eval_bsgs_double_hoisted(&ev, &enc, &ct, &keys, 8);
        let double = crate::opcount::snapshot();

        assert!(
            double.keyswitches < single.keyswitches,
            "double hoisting must reduce ModDowns: {} vs {}",
            double.keyswitches,
            single.keyswitches
        );
        let shift_single = single.ew_limb_ops as f64 / single.total_ntt_limbs() as f64;
        let shift_double = double.ew_limb_ops as f64 / double.total_ntt_limbs() as f64;
        assert!(
            shift_double > shift_single,
            "double hoisting shifts the mix toward element-wise ops"
        );
    }

    #[test]
    fn required_rotations_reported() {
        let mut t = LinearTransform::new(16);
        t.set_diagonal(0, vec![Complex::ONE; 16]);
        t.set_diagonal(3, vec![Complex::ONE; 16]);
        t.set_diagonal(5, vec![Complex::ONE; 16]);
        assert_eq!(t.required_rotations(), vec![3, 5]);
        let bsgs = t.required_rotations_bsgs(2);
        assert!(bsgs.contains(&1)); // baby
        assert!(bsgs.contains(&2)); // giant of 3
        assert!(bsgs.contains(&4)); // giant of 5
    }
}
