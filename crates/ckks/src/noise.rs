//! Heuristic noise tracking for CKKS ciphertexts.
//!
//! CKKS is approximate: every operation adds bounded error to the encoded
//! values. Production libraries expose a *noise estimator* so applications
//! can pick parameters and know when to bootstrap; this module provides one
//! in message (value) space: a [`NoiseTracker`] carries an upper bound on
//! the slot magnitude and a heuristic bound on the accumulated error,
//! updated alongside each evaluator call.
//!
//! The constants are calibrated empirically against this library (see the
//! tests, which enforce *soundness* — measured error never exceeds the
//! prediction — and *usefulness* — the prediction is not absurdly loose).

use crate::params::CkksParams;

/// Tracks magnitude and error bounds for one ciphertext, in value space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseTracker {
    /// Upper bound on `max_j |value_j|`.
    pub magnitude: f64,
    /// Heuristic upper bound on `max_j |error_j|`.
    pub error: f64,
}

/// Per-parameter constants of the heuristic.
#[derive(Debug, Clone, Copy)]
pub struct NoiseModel {
    /// Fresh encryption + encoding error bound.
    fresh: f64,
    /// Error added by one rescale (rounding in value space).
    rescale: f64,
    /// Error added by one key switch (relinearization / rotation).
    keyswitch: f64,
    /// Relative error of plaintext encoding (quantization at Δ).
    encode_rel: f64,
}

impl NoiseModel {
    /// Builds the model for a parameter set.
    pub fn new(params: &CkksParams) -> Self {
        let n = params.n() as f64;
        let delta = params.scale();
        let sigma = params.sigma;
        // Fresh: encryption error e + v·e_pk ≈ σ·√(2N)·(1 + √H) scaled by
        // 1/Δ in value space, plus the coefficient-rounding term √(N/12)/Δ;
        // the leading constant absorbs the canonical-embedding expansion.
        let h = params.hamming_weight as f64;
        let fresh = 16.0 * sigma * (2.0 * n).sqrt() * (1.0 + h.sqrt()) / delta;
        // Rescale: rounding by ≤ 1/2 per coefficient → ~√(N/12)·c/Δ in
        // value space.
        let rescale = 8.0 * (n / 12.0).sqrt() / delta;
        // Key switching: ModUp/ModDown approximation noise, ≈ α·√N·c/Δ
        // (the P modulus suppresses the gadget term below this).
        let keyswitch = 16.0 * params.alpha as f64 * n.sqrt() / delta;
        let encode_rel = (n / 12.0).sqrt() / delta;
        Self {
            fresh,
            rescale,
            keyswitch,
            encode_rel,
        }
    }

    /// Tracker for a fresh encryption of values bounded by `magnitude`.
    pub fn fresh(&self, magnitude: f64) -> NoiseTracker {
        NoiseTracker {
            magnitude,
            error: self.fresh + self.encode_rel * magnitude,
        }
    }

    /// Tracker after `x + y` / `x − y`.
    pub fn add(&self, x: NoiseTracker, y: NoiseTracker) -> NoiseTracker {
        NoiseTracker {
            magnitude: x.magnitude + y.magnitude,
            error: x.error + y.error,
        }
    }

    /// Tracker after HMULT (+relinearize +rescale).
    pub fn mul(&self, x: NoiseTracker, y: NoiseTracker) -> NoiseTracker {
        NoiseTracker {
            magnitude: x.magnitude * y.magnitude,
            error: x.error * y.magnitude
                + y.error * x.magnitude
                + x.error * y.error
                + self.keyswitch
                + self.rescale,
        }
    }

    /// Tracker after multiplying by a plaintext of magnitude `p` (+rescale).
    pub fn mul_plain(&self, x: NoiseTracker, p: f64) -> NoiseTracker {
        NoiseTracker {
            magnitude: x.magnitude * p,
            error: x.error * p + self.encode_rel * x.magnitude * p + self.rescale,
        }
    }

    /// Tracker after a rotation (key switch only).
    pub fn rotate(&self, x: NoiseTracker) -> NoiseTracker {
        NoiseTracker {
            magnitude: x.magnitude,
            error: x.error + self.keyswitch,
        }
    }

    /// Remaining precision in bits: `log2(magnitude / error)`, the
    /// signal-to-noise the application still has.
    pub fn precision_bits(&self, t: NoiseTracker) -> f64 {
        if t.error <= 0.0 {
            return f64::INFINITY;
        }
        (t.magnitude.max(1e-300) / t.error).log2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::{max_error, Complex};
    use crate::context::CkksContext;
    use crate::encoding::Encoder;
    use crate::eval::Evaluator;
    use crate::keys::KeyGenerator;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn setup() -> (CkksContext, crate::keys::KeySet) {
        let ctx = CkksContext::new(
            CkksParams::builder()
                .log_n(10)
                .levels(8)
                .alpha(2)
                .scale_bits(40)
                .build(),
        );
        let mut rng = StdRng::seed_from_u64(141);
        let keys = KeyGenerator::new(&ctx, &mut rng).generate(&[1]);
        (ctx, keys)
    }

    /// Runs a squaring chain, checking the prediction is sound (measured ≤
    /// predicted) and useful (predicted within a factor 10^5 of measured).
    #[test]
    fn squaring_chain_prediction_sound_and_useful() {
        let (ctx, keys) = setup();
        let enc = Encoder::new(&ctx);
        let ev = Evaluator::new(&ctx);
        let model = NoiseModel::new(ctx.params());
        let m = ctx.slots();
        let mut rng = StdRng::seed_from_u64(142);
        let vals: Vec<f64> = (0..m).map(|_| rng.gen_range(-0.9..0.9)).collect();
        let msg: Vec<Complex> = vals.iter().map(|&v| Complex::new(v, 0.0)).collect();
        let mut ct = keys
            .public
            .encrypt(&enc.encode(&msg, ctx.max_level()), &mut rng);
        let mut tracker = model.fresh(0.9);
        let mut plain = vals.clone();

        for depth in 0..5 {
            ct = ev.rescale(&ev.square_relin(&ct, &keys.relin));
            tracker = model.mul(tracker, tracker);
            for p in plain.iter_mut() {
                *p = *p * *p;
            }
            let out = enc.decode(&keys.secret.decrypt(&ct));
            let want: Vec<Complex> = plain.iter().map(|&v| Complex::new(v, 0.0)).collect();
            let measured = max_error(&want, &out);
            assert!(
                measured <= tracker.error,
                "depth {depth}: measured {measured:.3e} exceeds predicted {:.3e}",
                tracker.error
            );
            assert!(
                tracker.error <= measured.max(1e-300) * 1e5 + 1e-6,
                "depth {depth}: prediction uselessly loose: {:.3e} vs {measured:.3e}",
                tracker.error
            );
        }
    }

    #[test]
    fn rotations_and_adds_tracked() {
        let (ctx, keys) = setup();
        let enc = Encoder::new(&ctx);
        let ev = Evaluator::new(&ctx);
        let model = NoiseModel::new(ctx.params());
        let m = ctx.slots();
        let msg: Vec<Complex> = (0..m)
            .map(|i| Complex::new(0.3 - (i % 7) as f64 * 0.05, 0.0))
            .collect();
        let mut rng = StdRng::seed_from_u64(143);
        let mut ct = keys
            .public
            .encrypt(&enc.encode(&msg, ctx.max_level()), &mut rng);
        let mut tracker = model.fresh(0.3);
        let mut plain = msg.clone();
        for _ in 0..6 {
            let rot = ev.rotate(&ct, 1, &keys);
            ct = ev.add(&ct, &rot);
            tracker = model.add(model.rotate(tracker), tracker);
            let rotated: Vec<Complex> = (0..m).map(|j| plain[(j + 1) % m]).collect();
            plain = plain.iter().zip(&rotated).map(|(&a, &b)| a + b).collect();
        }
        let out = enc.decode(&keys.secret.decrypt(&ct));
        let measured = max_error(&plain, &out);
        assert!(
            measured <= tracker.error,
            "{measured:.3e} vs {:.3e}",
            tracker.error
        );
        assert!(
            model.precision_bits(tracker) > 10.0,
            "plenty of precision must remain"
        );
    }

    #[test]
    fn precision_bits_decrease_with_depth() {
        let (ctx, _) = setup();
        let model = NoiseModel::new(ctx.params());
        let mut t = model.fresh(1.0);
        let mut prev = model.precision_bits(t);
        assert!(prev > 20.0, "fresh precision must be high: {prev:.1}");
        for _ in 0..6 {
            t = model.mul(t, t);
            let now = model.precision_bits(t);
            assert!(now < prev, "precision must shrink with depth");
            prev = now;
        }
    }
}
