//! Chebyshev interpolation and low-depth homomorphic polynomial evaluation.
//!
//! Bootstrapping's EvalMod step approximates the modular-reduction function
//! with a trigonometric polynomial; we represent such approximations in the
//! Chebyshev basis and evaluate them homomorphically with the baby-step
//! giant-step (Paterson–Stockmeyer) recursion, giving multiplicative depth
//! `O(log d)` instead of `O(d)`.

use crate::ciphertext::Ciphertext;
use crate::eval::Evaluator;
use crate::keys::EvalKey;

/// A polynomial in the Chebyshev basis over an interval `[a, b]`:
/// `p(x) = Σ_k c_k · T_k(u)`, `u = (2x − a − b)/(b − a) ∈ [−1, 1]`.
#[derive(Debug, Clone)]
pub struct ChebyshevSeries {
    coeffs: Vec<f64>,
    a: f64,
    b: f64,
}

impl ChebyshevSeries {
    /// Builds a series from explicit Chebyshev coefficients.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs` is empty or the interval is degenerate.
    pub fn new(coeffs: Vec<f64>, a: f64, b: f64) -> Self {
        assert!(!coeffs.is_empty(), "need at least one coefficient");
        assert!(b > a, "degenerate interval");
        Self { coeffs, a, b }
    }

    /// Interpolates `f` on `[a, b]` at the `d+1` Chebyshev nodes,
    /// producing a degree-`d` series.
    pub fn interpolate(f: impl Fn(f64) -> f64, a: f64, b: f64, degree: usize) -> Self {
        let n = degree + 1;
        // Sample at Chebyshev nodes of the first kind.
        let fx: Vec<f64> = (0..n)
            .map(|j| {
                let theta = std::f64::consts::PI * (j as f64 + 0.5) / n as f64;
                let u = theta.cos();
                let x = 0.5 * ((b - a) * u + (b + a));
                f(x)
            })
            .collect();
        let coeffs: Vec<f64> = (0..n)
            .map(|k| {
                let scale = if k == 0 { 1.0 } else { 2.0 } / n as f64;
                scale
                    * (0..n)
                        .map(|j| {
                            let theta = std::f64::consts::PI * (j as f64 + 0.5) / n as f64;
                            fx[j] * (k as f64 * theta).cos()
                        })
                        .sum::<f64>()
            })
            .collect();
        Self { coeffs, a, b }
    }

    /// The Chebyshev coefficients.
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// The polynomial degree.
    pub fn degree(&self) -> usize {
        self.coeffs.len() - 1
    }

    /// Multiplicative depth consumed by [`Self::eval_homomorphic`]:
    /// 1 (normalization) + ⌈log2(degree+1)⌉ for the power ladder and
    /// recombination.
    pub fn depth(&self) -> usize {
        1 + (usize::BITS - self.coeffs.len().leading_zeros()) as usize + 1
    }

    /// Plaintext evaluation by Clenshaw's algorithm.
    pub fn eval_plain(&self, x: f64) -> f64 {
        let u = (2.0 * x - self.a - self.b) / (self.b - self.a);
        let mut b1 = 0.0f64;
        let mut b2 = 0.0f64;
        for &c in self.coeffs.iter().rev() {
            let t = 2.0 * u * b1 - b2 + c;
            b2 = b1;
            b1 = t;
        }
        // Clenshaw final step (the recurrence above already consumed c_0).
        b1 - u * b2
    }

    /// Homomorphic evaluation with the Paterson–Stockmeyer recursion.
    ///
    /// The ciphertext must encode values within `[a, b]` (approximately); the
    /// result encodes `p(x)` per slot. Consumes `O(log degree)` levels.
    ///
    /// # Panics
    ///
    /// Panics if the ciphertext level is too shallow for the recursion.
    pub fn eval_homomorphic(
        &self,
        ev: &Evaluator<'_>,
        ct: &Ciphertext,
        relin: &EvalKey,
    ) -> Ciphertext {
        // Normalize to [-1, 1]: u = (2x − a − b)/(b − a).
        let scale_f = 2.0 / (self.b - self.a);
        let shift = -(self.a + self.b) / (self.b - self.a);
        let mut u = ev.mul_scalar(ct, scale_f);
        u = ev.rescale(&u);
        u = ev.add_scalar(&u, shift);

        // Baby-step size m: power of two near sqrt(d+1).
        let d = self.degree();
        let mut m = 1usize;
        while m * m < d + 1 {
            m *= 2;
        }
        let m = m.max(2);

        // Baby powers T_1..T_m.
        let mut baby: Vec<Option<Ciphertext>> = vec![None; m + 1];
        baby[1] = Some(u.clone());
        let mut k = 1;
        while 2 * k <= m {
            // T_{2k} = 2·T_k² − 1
            let t2k = {
                let tk = baby[k].as_ref().expect("computed");
                let sq = ev.rescale(&ev.square_relin(tk, relin));
                let doubled = ev.mul_integer(&sq, 2);
                ev.add_scalar(&doubled, -1.0)
            };
            baby[2 * k] = Some(t2k);
            // T_{2k+1} = 2·T_k·T_{k+1} − T_1 (when needed)
            if 2 * k < m {
                if let (Some(tk), Some(tk1)) = (baby[k].clone(), baby[k + 1].clone()) {
                    let (x, y) = ev.align_levels(&tk, &tk1);
                    let prod = ev.rescale(&ev.mul_relin(&x, &y, relin));
                    let doubled = ev.mul_integer(&prod, 2);
                    let (p, q) = ev.align_levels(&doubled, &u);
                    baby[2 * k + 1] = Some(ev.sub(&p, &q));
                }
            }
            k *= 2;
        }
        // Fill the remaining powers with balanced splits so the depth stays
        // logarithmic: T_{a+b} = 2·T_a·T_b − T_{a−b} with a = ⌈j/2⌉, b = ⌊j/2⌋.
        for j in 2..=m {
            if baby[j].is_none() {
                let a = j.div_ceil(2);
                let b = j / 2;
                let ta = baby[a].clone().expect("smaller power filled");
                let tb = baby[b].clone().expect("smaller power filled");
                let (x, y) = ev.align_levels(&ta, &tb);
                let prod = ev.rescale(&ev.mul_relin(&x, &y, relin));
                let doubled = ev.mul_integer(&prod, 2);
                let tj = if a == b {
                    // T_{a−b} = T_0 = 1
                    ev.add_scalar(&doubled, -1.0)
                } else {
                    // a − b = 1
                    let (p, q) = ev.align_levels(&doubled, &u);
                    ev.sub(&p, &q)
                };
                baby[j] = Some(tj);
            }
        }

        // Giant powers T_m, T_{2m}, T_{4m}, ...
        let mut giants: Vec<Ciphertext> = vec![baby[m].clone().expect("T_m")];
        let mut span = m;
        while span * 2 <= d {
            let last = giants.last().expect("non-empty");
            let sq = ev.rescale(&ev.square_relin(last, relin));
            let doubled = ev.mul_integer(&sq, 2);
            giants.push(ev.add_scalar(&doubled, -1.0));
            span *= 2;
        }

        self.eval_recursive(ev, relin, &self.coeffs, m, &baby, &giants)
    }

    /// Recursive PS evaluation of a Chebyshev coefficient vector.
    fn eval_recursive(
        &self,
        ev: &Evaluator<'_>,
        relin: &EvalKey,
        coeffs: &[f64],
        m: usize,
        baby: &[Option<Ciphertext>],
        giants: &[Ciphertext],
    ) -> Ciphertext {
        let deg = coeffs.len() - 1;
        if deg < m {
            // Direct: c_0 + Σ c_k·T_k with scalar multiplications.
            let mut acc: Option<Ciphertext> = None;
            for (k, &c) in coeffs.iter().enumerate().skip(1) {
                if c.abs() < 1e-14 {
                    continue;
                }
                let t = baby[k].as_ref().expect("baby power");
                let term = ev.rescale(&ev.mul_scalar(t, c));
                acc = Some(match acc {
                    None => term,
                    Some(a) => ev.add_aligned(&a, &term),
                });
            }
            let base = match acc {
                Some(a) => a,
                None => {
                    // Constant polynomial: encode c_0 on a zero-ish ladder.
                    let t = baby[1].as_ref().expect("T_1");

                    ev.rescale(&ev.mul_scalar(t, 0.0))
                }
            };
            return ev.add_scalar(&base, coeffs[0]);
        }
        // Split at the largest giant power ≤ deg: s = m·2^i.
        let mut gi = 0usize;
        let mut s = m;
        while s * 2 <= deg && gi + 1 < giants.len() {
            s *= 2;
            gi += 1;
        }
        // Chebyshev division: coeffs = q·T_s + r.
        let mut rem = coeffs.to_vec();
        let mut quo = vec![0.0f64; deg - s + 1];
        for n in (s..=deg).rev() {
            let c = rem[n];
            if c == 0.0 {
                continue;
            }
            rem[n] = 0.0;
            if n == s {
                quo[0] += c;
            } else {
                quo[n - s] += 2.0 * c;
                let other = n.abs_diff(2 * s);
                rem[other] -= c;
            }
        }
        while rem.len() > 1 && rem.last() == Some(&0.0) {
            rem.pop();
        }
        let q_ct = self.eval_recursive(ev, relin, &quo, m, baby, giants);
        let r_ct = self.eval_recursive(ev, relin, &rem, m, baby, giants);
        let (g, qc) = ev.align_levels(&giants[gi], &q_ct);
        let prod = ev.rescale(&ev.mul_relin(&g, &qc, relin));
        ev.add_aligned(&prod, &r_ct)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::Complex;
    use crate::context::CkksContext;
    use crate::encoding::Encoder;
    use crate::keys::KeyGenerator;
    use crate::params::CkksParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn interpolation_accuracy_plain() {
        let s = ChebyshevSeries::interpolate(f64::exp, -1.0, 1.0, 15);
        for i in 0..50 {
            let x = -1.0 + 2.0 * i as f64 / 49.0;
            assert!((s.eval_plain(x) - x.exp()).abs() < 1e-10, "x = {x}");
        }
        assert_eq!(s.degree(), 15);
    }

    #[test]
    fn interpolation_of_sine() {
        let s =
            ChebyshevSeries::interpolate(|x| (2.0 * std::f64::consts::PI * x).sin(), -2.0, 2.0, 40);
        for i in 0..80 {
            let x = -2.0 + 4.0 * i as f64 / 79.0;
            let want = (2.0 * std::f64::consts::PI * x).sin();
            assert!((s.eval_plain(x) - want).abs() < 1e-8, "x = {x}");
        }
    }

    #[test]
    fn clenshaw_matches_direct_basis() {
        // T_3(u) = 4u³ − 3u over [-1,1]
        let s = ChebyshevSeries::new(vec![0.0, 0.0, 0.0, 1.0], -1.0, 1.0);
        for u in [-1.0, -0.4, 0.0, 0.3, 1.0] {
            assert!((s.eval_plain(u) - (4.0 * u * u * u - 3.0 * u)).abs() < 1e-12);
        }
    }

    #[test]
    fn homomorphic_eval_matches_plain() {
        let params = CkksParams::builder()
            .log_n(10)
            .levels(9)
            .alpha(2)
            .scale_bits(40)
            .build();
        let ctx = CkksContext::new(params);
        let mut rng = StdRng::seed_from_u64(51);
        let keys = KeyGenerator::new(&ctx, &mut rng).generate(&[]);
        let enc = Encoder::new(&ctx);
        let ev = Evaluator::new(&ctx);

        // f(x) = exp(x) on [-1, 1], degree 7 (depth ~ 4).
        let series = ChebyshevSeries::interpolate(f64::exp, -1.0, 1.0, 7);
        let m = ctx.slots();
        let xs: Vec<f64> = (0..m)
            .map(|i| -1.0 + 2.0 * i as f64 / (m - 1) as f64)
            .collect();
        let msg: Vec<Complex> = xs.iter().map(|&x| Complex::new(x, 0.0)).collect();
        let ct = keys
            .public
            .encrypt(&enc.encode(&msg, ctx.max_level()), &mut rng);

        let out_ct = series.eval_homomorphic(&ev, &ct, &keys.relin);
        let out = enc.decode(&keys.secret.decrypt(&out_ct));
        let mut max_err = 0.0f64;
        for (i, &x) in xs.iter().enumerate() {
            max_err = max_err.max((out[i].re - x.exp()).abs());
        }
        assert!(max_err < 1e-2, "homomorphic Chebyshev error: {max_err}");
    }

    #[test]
    fn homomorphic_eval_higher_degree() {
        let params = CkksParams::builder()
            .log_n(10)
            .levels(11)
            .alpha(3)
            .scale_bits(40)
            .build();
        let ctx = CkksContext::new(params);
        let mut rng = StdRng::seed_from_u64(52);
        let keys = KeyGenerator::new(&ctx, &mut rng).generate(&[]);
        let enc = Encoder::new(&ctx);
        let ev = Evaluator::new(&ctx);

        // Degree 31 sine on [-1, 1].
        let series =
            ChebyshevSeries::interpolate(|x| (std::f64::consts::PI * x).sin(), -1.0, 1.0, 31);
        let m = ctx.slots();
        let xs: Vec<f64> = (0..m)
            .map(|i| -1.0 + 2.0 * i as f64 / (m - 1) as f64)
            .collect();
        let msg: Vec<Complex> = xs.iter().map(|&x| Complex::new(x, 0.0)).collect();
        let ct = keys
            .public
            .encrypt(&enc.encode(&msg, ctx.max_level()), &mut rng);

        let out_ct = series.eval_homomorphic(&ev, &ct, &keys.relin);
        let out = enc.decode(&keys.secret.decrypt(&out_ct));
        let mut max_err = 0.0f64;
        for (i, &x) in xs.iter().enumerate() {
            let want = (std::f64::consts::PI * x).sin();
            max_err = max_err.max((out[i].re - want).abs());
        }
        assert!(max_err < 2e-2, "degree-31 homomorphic error: {max_err}");
    }
}
