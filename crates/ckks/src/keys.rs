//! Key material: secret key, public key, and gadget-decomposed evaluation
//! keys (evk).
//!
//! An evk comprises `2·D` polynomials in `R_PQ` (Table I): for each of the
//! `D` decomposition digits, a pair `(b_j, a_j)` with
//! `b_j = −a_j·s' + e_j + g_j·s''`, where `g_j = P·Q̂_j·[Q̂_j^{-1}]_{Q_j}` is
//! the RNS gadget. Rotation keys are stored in the *hoisted* ("automorphism
//! last") form of Bossuat et al. \[8\], which is the structure Anaheim's
//! reordering relies on (§V-B): the key switches from `φ_g^{-1}(s)` to `s`,
//! so the automorphism can be applied after the inner product, on just two
//! polynomials.

use std::collections::HashMap;

use ckks_math::poly::{Format, Poly};
use ckks_math::sampling;
use rand::Rng;

use crate::ciphertext::{Ciphertext, Plaintext};
use crate::context::CkksContext;

/// The secret key `s` (ternary, fixed Hamming weight), stored in the
/// evaluation domain over the full `Q‖P` basis.
#[derive(Debug, Clone)]
pub struct SecretKey {
    s: Poly,
    q_count: usize,
}

impl SecretKey {
    /// The key polynomial over the full basis.
    pub fn poly(&self) -> &Poly {
        &self.s
    }

    /// The key restricted to the first `level` `Q` primes.
    pub fn q_prefix(&self, level: usize) -> Poly {
        let limbs = (0..level).map(|i| self.s.limb(i).clone()).collect();
        Poly::from_limbs(limbs, Format::Eval)
    }

    /// Decrypts a ciphertext to a plaintext (`m ≈ b + a·s`).
    pub fn decrypt(&self, ct: &Ciphertext) -> Plaintext {
        let s = self.q_prefix(ct.level());
        let mut m = ct.b().clone();
        m.mac_assign(ct.a(), &s);
        Plaintext::new(m, ct.scale(), ct.level())
    }

    /// Total number of `Q` primes in the parent context (for prefixing).
    pub fn q_count(&self) -> usize {
        self.q_count
    }
}

/// The public encryption key `(b, a) = (−a·s + e, a)` over the full `Q`
/// basis.
#[derive(Debug, Clone)]
pub struct PublicKey {
    b: Poly,
    a: Poly,
    hamming_weight: usize,
    sigma: f64,
}

impl PublicKey {
    /// Encrypts a plaintext: samples ternary `v` and errors `e_0, e_1`, and
    /// outputs `(v·pk.b + e_0 + m, v·pk.a + e_1)`.
    pub fn encrypt<R: Rng + ?Sized>(&self, pt: &Plaintext, rng: &mut R) -> Ciphertext {
        let level = pt.level();
        let basis = pt.poly().basis();
        let prefix = |p: &Poly| {
            let limbs = (0..level).map(|i| p.limb(i).clone()).collect();
            Poly::from_limbs(limbs, Format::Eval)
        };
        let mut v = sampling::ternary(rng, &basis, self.hamming_weight);
        v.to_eval();
        let mut e0 = sampling::gaussian(rng, &basis, self.sigma);
        e0.to_eval();
        let mut e1 = sampling::gaussian(rng, &basis, self.sigma);
        e1.to_eval();

        let mut b = e0;
        b.mac_assign(&prefix(&self.b), &v);
        b.add_assign(pt.poly());
        let mut a = e1;
        a.mac_assign(&prefix(&self.a), &v);
        Ciphertext::new(b, a, pt.scale(), level)
    }
}

/// A gadget-decomposed key-switching key: `D` pairs over the full `Q‖P`
/// basis.
#[derive(Debug, Clone)]
pub struct EvalKey {
    digits: Vec<(Poly, Poly)>,
}

impl EvalKey {
    /// Reassembles a key from its digit pairs (deserialization path).
    pub(crate) fn from_digits(digits: Vec<(Poly, Poly)>) -> Self {
        Self { digits }
    }

    /// The number of decomposition digits `D`.
    pub fn num_digits(&self) -> usize {
        self.digits.len()
    }

    /// The `(b_j, a_j)` pair for digit `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn digit(&self, j: usize) -> (&Poly, &Poly) {
        let (b, a) = &self.digits[j];
        (b, a)
    }

    /// Size in bytes if stored with the paper's 32-bit words, for memory
    /// accounting (`2·D·(L+α)·N` words).
    pub fn size_bytes_32(&self) -> usize {
        self.digits
            .iter()
            .map(|(b, a)| (b.num_limbs() + a.num_limbs()) * b.n() * 4)
            .sum()
    }
}

/// Everything produced by key generation.
#[derive(Debug)]
pub struct KeySet {
    /// The secret key (kept here for tests/examples; a real deployment would
    /// not ship it with the evaluation keys).
    pub secret: SecretKey,
    /// The public encryption key.
    pub public: PublicKey,
    /// The relinearization key (`s² → s`).
    pub relin: EvalKey,
    /// Rotation keys in hoisted form, by slot distance.
    pub rotations: HashMap<isize, EvalKey>,
    /// The conjugation key.
    pub conjugation: EvalKey,
}

impl KeySet {
    /// Looks up the rotation key for slot distance `r` (normalized modulo
    /// the slot count).
    pub fn rotation(&self, r: isize, slots: usize) -> Option<&EvalKey> {
        let r = r.rem_euclid(slots as isize);
        self.rotations.get(&r)
    }

    /// Inserts a rotation key.
    pub fn add_rotation(&mut self, r: isize, key: EvalKey) {
        self.rotations.insert(r, key);
    }
}

/// Generates all key material for a context.
#[derive(Debug)]
pub struct KeyGenerator<'a, 'r, R: Rng + ?Sized> {
    ctx: &'a CkksContext,
    rng: &'r mut R,
}

impl<'a, 'r, R: Rng + ?Sized> KeyGenerator<'a, 'r, R> {
    /// Binds a context and randomness source.
    pub fn new(ctx: &'a CkksContext, rng: &'r mut R) -> Self {
        Self { ctx, rng }
    }

    /// Generates secret, public, relinearization, conjugation, and the
    /// requested rotation keys.
    pub fn generate(mut self, rotations: &[isize]) -> KeySet {
        let secret = self.gen_secret();
        let public = self.gen_public(&secret);
        let relin = self.gen_relin(&secret);
        let conjugation = self.gen_conjugation(&secret);
        let mut rot_keys = HashMap::new();
        for &r in rotations {
            let r = r.rem_euclid(self.ctx.slots() as isize);
            if r != 0 {
                rot_keys
                    .entry(r)
                    .or_insert_with(|| self.gen_rotation(&secret, r));
            }
        }
        KeySet {
            secret,
            public,
            relin,
            rotations: rot_keys,
            conjugation,
        }
    }

    /// Samples a fresh ternary secret key.
    pub fn gen_secret(&mut self) -> SecretKey {
        let basis = self.ctx.basis_full();
        let mut s = sampling::ternary(self.rng, &basis, self.ctx.params().hamming_weight);
        s.to_eval();
        SecretKey {
            s,
            q_count: self.ctx.max_level(),
        }
    }

    /// Derives the public key from a secret key.
    pub fn gen_public(&mut self, sk: &SecretKey) -> PublicKey {
        let basis = self.ctx.basis_q(self.ctx.max_level()).to_vec();
        let a = sampling::uniform(self.rng, &basis, Format::Eval);
        let mut e = sampling::gaussian(self.rng, &basis, self.ctx.params().sigma);
        e.to_eval();
        let s = sk.q_prefix(self.ctx.max_level());
        // b = -a·s + e
        let mut b = a.clone();
        b.mul_assign(&s);
        b.neg_assign();
        b.add_assign(&e);
        PublicKey {
            b,
            a,
            hamming_weight: self.ctx.params().hamming_weight,
            sigma: self.ctx.params().sigma,
        }
    }

    /// Generates a switching key from `under` to gadget-encoded `target`:
    /// for each digit `j`, `(−a_j·under + e_j + g_j·target, a_j)`.
    pub fn gen_switching_key(&mut self, under: &Poly, target: &Poly) -> EvalKey {
        let basis = self.ctx.basis_full();
        let d = self.ctx.decomposition_number();
        let digits = (0..d)
            .map(|j| {
                let a = sampling::uniform(self.rng, &basis, Format::Eval);
                let mut e = sampling::gaussian(self.rng, &basis, self.ctx.params().sigma);
                e.to_eval();
                let mut b = a.clone();
                b.mul_assign(under);
                b.neg_assign();
                b.add_assign(&e);
                // + g_j ⊙ target
                let mut gt = target.clone();
                let scalars: Vec<u64> = (0..basis.len())
                    .map(|idx| self.ctx.gadget_residue(j, idx))
                    .collect();
                gt.mul_scalar_per_limb(&scalars);
                b.add_assign(&gt);
                (b, a)
            })
            .collect();
        EvalKey { digits }
    }

    /// Relinearization key: switches `s²` back to `s`.
    pub fn gen_relin(&mut self, sk: &SecretKey) -> EvalKey {
        let mut s2 = sk.poly().clone();
        s2.mul_assign(sk.poly());
        self.gen_switching_key(sk.poly(), &s2)
    }

    /// Rotation key for slot distance `r`, in hoisted (automorphism-last)
    /// form: switches from `φ_g^{-1}(s)` to `s`, `g = 5^r mod 2N`.
    pub fn gen_rotation(&mut self, sk: &SecretKey, r: isize) -> EvalKey {
        let g = galois_for_rotation(self.ctx.n(), r);
        let g_inv = inverse_odd_mod_pow2(g, 2 * self.ctx.n() as u64);
        let under = sk.poly().automorphism(g_inv);
        let target = sk.poly().clone();
        self.gen_switching_key(&under, &target)
    }

    /// Conjugation key in hoisted form (`g = 2N−1` is self-inverse).
    pub fn gen_conjugation(&mut self, sk: &SecretKey) -> EvalKey {
        let g = 2 * self.ctx.n() as u64 - 1;
        let under = sk.poly().automorphism(g);
        let target = sk.poly().clone();
        self.gen_switching_key(&under, &target)
    }
}

/// The Galois element for a cyclic slot rotation by `r` (`5^r mod 2N`).
pub fn galois_for_rotation(n: usize, r: isize) -> u64 {
    let slots = (n / 2) as isize;
    let two_n = 2 * n as u64;
    let r = r.rem_euclid(slots) as u32;
    let mut g = 1u64;
    for _ in 0..r {
        g = (g * 5) % two_n;
    }
    g
}

/// Inverse of an odd element modulo a power of two (Newton iteration).
///
/// # Panics
///
/// Panics if `g` is even or `m` is not a power of two.
pub fn inverse_odd_mod_pow2(g: u64, m: u64) -> u64 {
    assert!(g % 2 == 1, "only odd elements are invertible mod 2^k");
    assert!(m.is_power_of_two(), "modulus must be a power of two");
    let mut x = 1u64; // inverse mod 2
    let mut bits = 1;
    while (1u64 << bits) < m {
        // x' = x(2 - g·x) doubles the number of correct bits.
        x = x.wrapping_mul(2u64.wrapping_sub(g.wrapping_mul(x)));
        bits *= 2;
    }
    x % m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::{max_error, Complex};
    use crate::encoding::Encoder;
    use crate::params::CkksParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (CkksContext, KeySet) {
        let ctx = CkksContext::new(CkksParams::test_small());
        let mut rng = StdRng::seed_from_u64(42);
        let keys = KeyGenerator::new(&ctx, &mut rng).generate(&[1, 2]);
        (ctx, keys)
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let (ctx, keys) = setup();
        let enc = Encoder::new(&ctx);
        let msg: Vec<Complex> = (0..ctx.slots())
            .map(|i| Complex::new((i as f64).sin(), (i as f64).cos() * 0.5))
            .collect();
        let pt = enc.encode(&msg, ctx.max_level());
        let mut rng = StdRng::seed_from_u64(7);
        let ct = keys.public.encrypt(&pt, &mut rng);
        let out = enc.decode(&keys.secret.decrypt(&ct));
        let err = max_error(&msg, &out);
        assert!(err < 1e-6, "decryption error too large: {err}");
    }

    #[test]
    fn encrypt_at_lower_level() {
        let (ctx, keys) = setup();
        let enc = Encoder::new(&ctx);
        let msg: Vec<Complex> = vec![Complex::new(0.25, -0.125); ctx.slots()];
        let pt = enc.encode(&msg, 2);
        let mut rng = StdRng::seed_from_u64(9);
        let ct = keys.public.encrypt(&pt, &mut rng);
        assert_eq!(ct.level(), 2);
        let out = enc.decode(&keys.secret.decrypt(&ct));
        assert!(max_error(&msg, &out) < 1e-6);
    }

    #[test]
    fn evk_structure() {
        let (ctx, keys) = setup();
        assert_eq!(keys.relin.num_digits(), ctx.decomposition_number());
        let (b, a) = keys.relin.digit(0);
        assert_eq!(b.num_limbs(), ctx.max_level() + ctx.params().alpha);
        assert_eq!(a.num_limbs(), ctx.max_level() + ctx.params().alpha);
        // 2 · D · (L+α) · N · 4 bytes
        let want = 2 * 3 * 7 * 1024 * 4;
        assert_eq!(keys.relin.size_bytes_32(), want);
    }

    #[test]
    fn rotation_key_lookup_normalizes() {
        let (ctx, keys) = setup();
        let m = ctx.slots();
        assert!(keys.rotation(1, m).is_some());
        assert!(
            keys.rotation(1 - m as isize, m).is_some(),
            "wraps mod slots"
        );
        assert!(keys.rotation(3, m).is_none());
    }

    #[test]
    fn rotation_wraps_at_slot_boundaries() {
        let (ctx, keys) = setup(); // keys for distances {1, 2}
        let m = ctx.slots();
        let m_i = m as isize;
        // Every representative of the residue class resolves to the same key
        // object: ±k·slots offsets and the exact slot-count boundary.
        let base = keys.rotation(1, m).expect("base key") as *const EvalKey;
        for r in [1, 1 + m_i, 1 - m_i, 1 + 3 * m_i, 1 - 2 * m_i] {
            let k = keys.rotation(r, m).expect("wraps to distance 1");
            assert!(std::ptr::eq(k, base), "r={r} must resolve to the same key");
        }
        // Distance 0 (and all multiples of the slot count) normalizes to the
        // identity rotation, which is never stored.
        for r in [0, m_i, -m_i, 2 * m_i] {
            assert!(keys.rotation(r, m).is_none(), "r={r} is the identity");
        }
        // Negative distances wrap to their positive complement.
        assert!(
            std::ptr::eq(
                keys.rotation(-(m_i - 2), m).expect("complement of 2"),
                keys.rotation(2, m).expect("distance 2")
            ),
            "-(slots-2) and 2 are the same class"
        );
    }

    #[test]
    fn generation_normalizes_requested_distances() {
        let ctx = CkksContext::new(CkksParams::test_small());
        let m = ctx.slots() as isize;
        let mut rng = StdRng::seed_from_u64(43);
        // m + 2 wraps to 2; -1 wraps to slots − 1; m wraps to the identity
        // and must not produce a key.
        let keys = KeyGenerator::new(&ctx, &mut rng).generate(&[m + 2, -1, m]);
        assert_eq!(keys.rotations.len(), 2);
        assert!(keys.rotation(2, ctx.slots()).is_some());
        assert!(keys.rotation(-1, ctx.slots()).is_some());
        assert!(
            keys.rotation(m - 1, ctx.slots()).is_some(),
            "same class as -1"
        );
        assert!(keys.rotation(0, ctx.slots()).is_none());
    }

    #[test]
    fn inverse_odd_mod_pow2_works() {
        for g in [1u64, 3, 5, 2047, 12345].iter().copied() {
            let m = 1u64 << 12;
            let inv = inverse_odd_mod_pow2(g, m);
            assert_eq!((g.wrapping_mul(inv)) % m, 1, "g = {g}");
        }
    }

    #[test]
    fn galois_powers() {
        assert_eq!(galois_for_rotation(1024, 0), 1);
        assert_eq!(galois_for_rotation(1024, 1), 5);
        assert_eq!(galois_for_rotation(1024, 2), 25);
        // r and r mod slots coincide
        assert_eq!(
            galois_for_rotation(1024, 3),
            galois_for_rotation(1024, 3 + 512)
        );
    }
}
