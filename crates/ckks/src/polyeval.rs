//! Arbitrary polynomial evaluation in the power basis — the "advanced
//! feature" routines the Anaheim framework's high-level library exposes
//! (§V-C mentions arbitrary polynomial evaluation and DNN support).
//!
//! Low-degree activations (AESPA \[64\] uses degree-2 polynomials, HELR's
//! sigmoid a cubic) evaluate directly; higher degrees use the
//! Paterson–Stockmeyer baby-step/giant-step split for `O(√d)`
//! multiplications at `O(log d)` depth.

use crate::ciphertext::Ciphertext;
use crate::eval::Evaluator;
use crate::keys::EvalKey;

/// A polynomial `Σ c_k·x^k` with real coefficients.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerSeries {
    coeffs: Vec<f64>,
}

impl PowerSeries {
    /// Creates from coefficients `c_0, c_1, …` (low degree first).
    ///
    /// # Panics
    ///
    /// Panics if `coeffs` is empty.
    pub fn new(coeffs: Vec<f64>) -> Self {
        assert!(!coeffs.is_empty(), "need at least a constant term");
        Self { coeffs }
    }

    /// The AESPA-style square activation `ax² + bx + c` \[64\].
    pub fn quadratic(a: f64, b: f64, c: f64) -> Self {
        Self::new(vec![c, b, a])
    }

    /// The degree of the polynomial.
    pub fn degree(&self) -> usize {
        self.coeffs.len() - 1
    }

    /// Coefficients (low degree first).
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// Plain evaluation (Horner).
    pub fn eval_plain(&self, x: f64) -> f64 {
        self.coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c)
    }

    /// Homomorphic evaluation via baby-step/giant-step: computes
    /// `x^1..x^m` (`m ≈ √d`, log depth), then giant powers `x^{m·2^i}`,
    /// and recombines. Consumes `O(log d)` levels.
    ///
    /// # Panics
    ///
    /// Panics if the ciphertext level is too shallow for the depth.
    pub fn eval_homomorphic(
        &self,
        ev: &Evaluator<'_>,
        ct: &Ciphertext,
        relin: &EvalKey,
    ) -> Ciphertext {
        let d = self.degree();
        if d == 0 {
            // Constant polynomial: 0·x + c on the input's ladder.
            let z = ev.rescale(&ev.mul_scalar(ct, 0.0));
            return ev.add_scalar(&z, self.coeffs[0]);
        }
        // Baby-step size: power of two near √(d+1).
        let mut m = 1usize;
        while m * m < d + 1 {
            m *= 2;
        }
        let m = m.max(2);
        // Baby powers x^1..x^m with balanced splits (log depth).
        let mut pow: Vec<Option<Ciphertext>> = vec![None; m + 1];
        pow[1] = Some(ct.clone());
        for j in 2..=m {
            let a = j.div_ceil(2);
            let b = j / 2;
            let (xa, xb) = ev.align_levels(
                pow[a].as_ref().expect("filled"),
                pow[b].as_ref().expect("filled"),
            );
            pow[j] = Some(ev.rescale(&ev.mul_relin(&xa, &xb, relin)));
        }
        // Giant powers x^m, x^2m, x^4m, ...
        let mut giants = vec![pow[m].clone().expect("x^m")];
        let mut span = m;
        while span * 2 <= d {
            let last = giants.last().expect("non-empty");
            giants.push(ev.rescale(&ev.square_relin(last, relin)));
            span *= 2;
        }
        self.eval_chunks(ev, relin, &self.coeffs, m, &pow, &giants)
    }

    /// Recursive giant-step recombination.
    fn eval_chunks(
        &self,
        ev: &Evaluator<'_>,
        relin: &EvalKey,
        coeffs: &[f64],
        m: usize,
        pow: &[Option<Ciphertext>],
        giants: &[Ciphertext],
    ) -> Ciphertext {
        let d = coeffs.len() - 1;
        if d < m {
            // Direct: Σ c_k·x^k via scalar multiplications.
            let mut acc: Option<Ciphertext> = None;
            for (k, &c) in coeffs.iter().enumerate().skip(1) {
                if c.abs() < 1e-15 {
                    continue;
                }
                let term = ev.rescale(&ev.mul_scalar(pow[k].as_ref().expect("power"), c));
                acc = Some(match acc {
                    None => term,
                    Some(a) => ev.add_aligned(&a, &term),
                });
            }
            let base = match acc {
                Some(a) => a,
                None => {
                    let z = ev.rescale(&ev.mul_scalar(pow[1].as_ref().expect("x"), 0.0));
                    z
                }
            };
            return ev.add_scalar(&base, coeffs[0]);
        }
        // Split at the largest giant power s = m·2^i ≤ d:
        // p(x) = q(x)·x^s + r(x).
        let mut gi = 0usize;
        let mut s = m;
        while s * 2 <= d && gi + 1 < giants.len() {
            s *= 2;
            gi += 1;
        }
        let (r, q) = coeffs.split_at(s);
        let q_ct = self.eval_chunks(ev, relin, q, m, pow, giants);
        let r_ct = self.eval_chunks(ev, relin, r, m, pow, giants);
        let (g, qc) = ev.align_levels(&giants[gi], &q_ct);
        let prod = ev.rescale(&ev.mul_relin(&g, &qc, relin));
        ev.add_aligned(&prod, &r_ct)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::Complex;
    use crate::context::CkksContext;
    use crate::encoding::Encoder;
    use crate::keys::KeyGenerator;
    use crate::params::CkksParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(levels: usize) -> CkksContext {
        CkksContext::new(
            CkksParams::builder()
                .log_n(10)
                .levels(levels)
                .alpha(3)
                .scale_bits(40)
                .build(),
        )
    }

    fn eval_and_check(series: &PowerSeries, levels: usize, tol: f64) {
        let ctx = setup(levels);
        let mut rng = StdRng::seed_from_u64(111);
        let keys = KeyGenerator::new(&ctx, &mut rng).generate(&[]);
        let enc = Encoder::new(&ctx);
        let ev = Evaluator::new(&ctx);
        let m = ctx.slots();
        let xs: Vec<f64> = (0..m)
            .map(|i| -1.0 + 2.0 * i as f64 / (m - 1) as f64)
            .collect();
        let msg: Vec<Complex> = xs.iter().map(|&x| Complex::new(x, 0.0)).collect();
        let ct = keys
            .public
            .encrypt(&enc.encode(&msg, ctx.max_level()), &mut rng);
        let out_ct = series.eval_homomorphic(&ev, &ct, &keys.relin);
        let out = enc.decode(&keys.secret.decrypt(&out_ct));
        for (i, &x) in xs.iter().enumerate() {
            let want = series.eval_plain(x);
            assert!(
                (out[i].re - want).abs() < tol,
                "p({x}) = {want}, got {} (deg {})",
                out[i].re,
                series.degree()
            );
        }
    }

    #[test]
    fn horner_reference() {
        let p = PowerSeries::new(vec![1.0, -2.0, 3.0]); // 3x² − 2x + 1
        assert_eq!(p.eval_plain(0.0), 1.0);
        assert_eq!(p.eval_plain(1.0), 2.0);
        assert_eq!(p.eval_plain(2.0), 9.0);
        assert_eq!(p.degree(), 2);
    }

    #[test]
    fn aespa_quadratic_activation() {
        // AESPA [64]: degree-2 polynomial activations.
        eval_and_check(&PowerSeries::quadratic(0.25, 0.5, 0.1), 6, 1e-4);
    }

    #[test]
    fn helr_sigmoid_cubic() {
        // HELR's sigmoid approximation 0.5 + 0.15x − 0.0015x³.
        eval_and_check(&PowerSeries::new(vec![0.5, 0.15, 0.0, -0.0015]), 8, 1e-4);
    }

    #[test]
    fn degree_seven() {
        let p = PowerSeries::new(vec![0.1, -0.3, 0.0, 0.2, 0.05, 0.0, -0.01, 0.02]);
        eval_and_check(&p, 9, 1e-3);
    }

    #[test]
    fn degree_fifteen_bsgs() {
        let coeffs: Vec<f64> = (0..16)
            .map(|k| 0.5f64.powi(k) * if k % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        eval_and_check(&PowerSeries::new(coeffs), 12, 1e-3);
    }

    #[test]
    fn constant_polynomial() {
        eval_and_check(&PowerSeries::new(vec![0.75]), 4, 1e-5);
    }
}
