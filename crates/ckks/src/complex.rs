//! A minimal complex-number type for CKKS messages.
//!
//! CKKS messages live in `C^{N/2}` (§II-A). We keep the dependency footprint
//! small by providing our own `f64` complex type rather than pulling in an
//! external crate.

use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// # Example
///
/// ```
/// use ckks::complex::Complex;
/// let i = Complex::new(0.0, 1.0);
/// assert_eq!(i * i, Complex::new(-1.0, 0.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from rectangular components.
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Creates `e^{iθ}` on the unit circle.
    pub fn from_angle(theta: f64) -> Self {
        Self {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }

    /// Magnitude (absolute value).
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Scales by a real factor.
    pub fn scale(self, s: f64) -> Self {
        Self {
            re: self.re * s,
            im: self.im * s,
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        *self = *self + rhs;
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex {
    fn sub_assign(&mut self, rhs: Complex) {
        *self = *self - rhs;
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex {
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::new(re, 0.0)
    }
}

impl std::fmt::Display for Complex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

/// Maximum absolute component-wise distance between two complex vectors.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn max_error(a: &[Complex], b: &[Complex]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| (*x - *y).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a + b, Complex::new(4.0, 1.0));
        assert_eq!(a - b, Complex::new(-2.0, 3.0));
        assert_eq!(a * b, Complex::new(5.0, 5.0));
        assert_eq!(-a, Complex::new(-1.0, -2.0));
        assert_eq!(a.conj(), Complex::new(1.0, -2.0));
        assert!((Complex::new(3.0, 4.0).abs() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn unit_circle() {
        let z = Complex::from_angle(std::f64::consts::FRAC_PI_2);
        assert!((z - Complex::I).abs() < 1e-12);
        let w = Complex::from_angle(std::f64::consts::PI);
        assert!((w + Complex::ONE).abs() < 1e-12);
    }

    #[test]
    fn error_metric() {
        let a = [Complex::ONE, Complex::I];
        let b = [Complex::ONE, Complex::ZERO];
        assert!((max_error(&a, &b) - 1.0).abs() < 1e-12);
    }
}
