//! Homomorphic comparison: the building block of the paper's **Sort**
//! workload \[35\] (§VII-A).
//!
//! CKKS has no native comparisons; the standard technique evaluates a
//! composite polynomial approximation of the sign function
//! (Cheon et al.): iterating `f(x) = (3x − x³)/2` drives any
//! `x ∈ [−1, −ε] ∪ [ε, 1]` toward ±1. From sign, element-wise min/max and
//! two-way compare-exchange follow:
//!
//! `min(a,b) = (a+b)/2 − |a−b|/2`, `|d| = d·sign(d)`.

use crate::ciphertext::Ciphertext;
use crate::eval::Evaluator;
use crate::keys::EvalKey;

/// Iterates `f(x) = (3x − x³)/2` homomorphically `iterations` times.
///
/// Inputs must lie in `[−1, 1]`; values at least `ε` from zero converge to
/// ±1 at rate `~(3/2)^k·ε` per the composite-sign analysis. Consumes three
/// levels per iteration.
pub fn sign_approx(
    ev: &Evaluator<'_>,
    ct: &Ciphertext,
    relin: &EvalKey,
    iterations: usize,
) -> Ciphertext {
    let mut x = ct.clone();
    for _ in 0..iterations {
        // x³ = x²·x
        let sq = ev.rescale(&ev.square_relin(&x, relin));
        let (a, b) = ev.align_levels(&sq, &x);
        let cube = ev.rescale(&ev.mul_relin(&a, &b, relin));
        // (3x − x³)/2 = 1.5·x − 0.5·x³
        let t1 = ev.rescale(&ev.mul_scalar(&x, 1.5));
        let t2 = ev.rescale(&ev.mul_scalar(&cube, 0.5));
        let (t1, t2) = ev.align_levels(&t1, &t2);
        x = ev.sub(&t1, &t2);
    }
    x
}

/// Element-wise `(min, max)` of two ciphertexts with values in `[−1, 1]`.
///
/// Uses `sign_iterations` rounds of the composite sign. Consumes
/// `3·sign_iterations + 2` levels.
pub fn min_max(
    ev: &Evaluator<'_>,
    a: &Ciphertext,
    b: &Ciphertext,
    relin: &EvalKey,
    sign_iterations: usize,
) -> (Ciphertext, Ciphertext) {
    // mean = (a+b)/2, half-diff d = (a−b)/2 ∈ [−1, 1].
    let mean = ev.rescale(&ev.mul_scalar(&ev.add(a, b), 0.5));
    let d = ev.rescale(&ev.mul_scalar(&ev.sub(a, b), 0.5));
    let s = sign_approx(ev, &d, relin, sign_iterations);
    // |d| = d·sign(d)
    let (dd, ss) = ev.align_levels(&d, &s);
    let absd = ev.rescale(&ev.mul_relin(&dd, &ss, relin));
    let (m, ad) = ev.align_levels(&mean, &absd);
    (ev.sub(&m, &ad), ev.add(&m, &ad))
}

/// Element-wise comparison `a ≷ b` as values near `{0, ½, 1}`:
/// `(sign(a−b)+1)/2` → 1 where `a > b`, 0 where `a < b`.
pub fn compare(
    ev: &Evaluator<'_>,
    a: &Ciphertext,
    b: &Ciphertext,
    relin: &EvalKey,
    sign_iterations: usize,
) -> Ciphertext {
    let d = ev.rescale(&ev.mul_scalar(&ev.sub(a, b), 0.5));
    let s = sign_approx(ev, &d, relin, sign_iterations);
    let half = ev.rescale(&ev.mul_scalar(&s, 0.5));
    ev.add_scalar(&half, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::Complex;
    use crate::context::CkksContext;
    use crate::encoding::Encoder;
    use crate::keys::KeyGenerator;
    use crate::params::CkksParams;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn setup(levels: usize) -> CkksContext {
        CkksContext::new(
            CkksParams::builder()
                .log_n(10)
                .levels(levels)
                .alpha(3)
                .scale_bits(40)
                .build(),
        )
    }

    #[test]
    fn sign_converges_away_from_zero() {
        let ctx = setup(14);
        let mut rng = StdRng::seed_from_u64(91);
        let keys = KeyGenerator::new(&ctx, &mut rng).generate(&[]);
        let enc = Encoder::new(&ctx);
        let ev = Evaluator::new(&ctx);
        let m = ctx.slots();
        // Four composite iterations amplify a margin ε by ~1.5× each round,
        // so ε = 0.4 lands within 0.25 of ±1; smaller margins need more
        // rounds (Sort uses deeper composites).
        let xs: Vec<f64> = (0..m)
            .map(|i| {
                let v = -1.0 + 2.0 * i as f64 / (m - 1) as f64;
                if v.abs() < 0.4 {
                    if v >= 0.0 {
                        0.4
                    } else {
                        -0.4
                    }
                } else {
                    v
                }
            })
            .collect();
        let msg: Vec<Complex> = xs.iter().map(|&x| Complex::new(x, 0.0)).collect();
        let ct = keys
            .public
            .encrypt(&enc.encode(&msg, ctx.max_level()), &mut rng);
        let s = sign_approx(&ev, &ct, &keys.relin, 4);
        let out = enc.decode(&keys.secret.decrypt(&s));
        for (i, &x) in xs.iter().enumerate() {
            let want = x.signum();
            assert!(
                (out[i].re - want).abs() < 0.25,
                "sign({x}) ≈ {want}, got {}",
                out[i].re
            );
            assert!(out[i].re.signum() == want, "sign must at least match");
        }
    }

    #[test]
    fn min_max_orders_random_pairs() {
        let ctx = setup(12);
        let mut rng = StdRng::seed_from_u64(92);
        let keys = KeyGenerator::new(&ctx, &mut rng).generate(&[]);
        let enc = Encoder::new(&ctx);
        let ev = Evaluator::new(&ctx);
        let m = ctx.slots();
        let mut rng2 = StdRng::seed_from_u64(93);
        let a: Vec<f64> = (0..m).map(|_| rng2.gen_range(-0.9..0.9)).collect();
        let b: Vec<f64> = (0..m)
            .map(|i| {
                let mut v = rng2.gen_range(-0.9..0.9);
                // keep pairs separated so the sign margin holds
                while (v - a[i]).abs() < 0.2 {
                    v = rng2.gen_range(-0.9..0.9);
                }
                v
            })
            .collect();
        let enc_v = |v: &[f64], rng: &mut StdRng| {
            let msg: Vec<Complex> = v.iter().map(|&x| Complex::new(x, 0.0)).collect();
            keys.public.encrypt(&enc.encode(&msg, ctx.max_level()), rng)
        };
        let ca = enc_v(&a, &mut rng);
        let cb = enc_v(&b, &mut rng);
        let (mn, mx) = min_max(&ev, &ca, &cb, &keys.relin, 3);
        let out_mn = enc.decode(&keys.secret.decrypt(&mn));
        let out_mx = enc.decode(&keys.secret.decrypt(&mx));
        for i in 0..m {
            let (wmn, wmx) = (a[i].min(b[i]), a[i].max(b[i]));
            assert!(
                (out_mn[i].re - wmn).abs() < 0.08,
                "min({}, {}) = {wmn}, got {}",
                a[i],
                b[i],
                out_mn[i].re
            );
            assert!(
                (out_mx[i].re - wmx).abs() < 0.08,
                "max({}, {}) = {wmx}, got {}",
                a[i],
                b[i],
                out_mx[i].re
            );
        }
    }

    #[test]
    fn compare_outputs_indicator() {
        let ctx = setup(15);
        let mut rng = StdRng::seed_from_u64(94);
        let keys = KeyGenerator::new(&ctx, &mut rng).generate(&[]);
        let enc = Encoder::new(&ctx);
        let ev = Evaluator::new(&ctx);
        let m = ctx.slots();
        let a: Vec<Complex> = (0..m)
            .map(|i| Complex::new(if i % 2 == 0 { 0.7 } else { -0.4 }, 0.0))
            .collect();
        let b: Vec<Complex> = vec![Complex::new(0.1, 0.0); m];
        let ca = keys
            .public
            .encrypt(&enc.encode(&a, ctx.max_level()), &mut rng);
        let cb = keys
            .public
            .encrypt(&enc.encode(&b, ctx.max_level()), &mut rng);
        let cmp = compare(&ev, &ca, &cb, &keys.relin, 4);
        let out = enc.decode(&keys.secret.decrypt(&cmp));
        for (i, o) in out.iter().enumerate() {
            let want = if i % 2 == 0 { 1.0 } else { 0.0 };
            assert!(
                (o.re - want).abs() < 0.15,
                "slot {i}: want {want}, got {}",
                o.re
            );
        }
    }
}
