//! Slot-vector utilities: rotate-and-sum reductions, inner products, and
//! masking — the linear-algebra helpers the Anaheim framework's high-level
//! library provides (§V-C) and that HELR/RNN-style workloads lean on.

use crate::ciphertext::Ciphertext;
use crate::complex::Complex;
use crate::encoding::Encoder;
use crate::eval::Evaluator;
use crate::keys::KeySet;

/// Sums a contiguous block of `block` slots into every slot of the block
/// (the classic log-depth rotate-and-sum): after the call, slot `j` holds
/// `Σ_{i in block(j)} x_i`.
///
/// Requires rotation keys for the powers of two `1, 2, …, block/2`.
///
/// # Panics
///
/// Panics if `block` is not a power of two, exceeds the slot count, or a
/// rotation key is missing.
pub fn sum_block(ev: &Evaluator<'_>, ct: &Ciphertext, block: usize, keys: &KeySet) -> Ciphertext {
    assert!(block.is_power_of_two(), "block must be a power of two");
    assert!(block <= ev.context().slots(), "block exceeds slot count");
    let mut acc = ct.clone();
    let mut step = 1usize;
    while step < block {
        let rot = ev.rotate(&acc, step as isize, keys);
        acc = ev.add(&acc, &rot);
        step <<= 1;
    }
    acc
}

/// The rotation distances [`sum_block`] needs.
pub fn sum_block_rotations(block: usize) -> Vec<isize> {
    let mut v = Vec::new();
    let mut step = 1usize;
    while step < block {
        v.push(step as isize);
        step <<= 1;
    }
    v
}

/// Element-wise product followed by a full-block sum: the encrypted inner
/// product `⟨x, y⟩` replicated across each block. Consumes one
/// multiplicative level plus the rotations.
///
/// # Panics
///
/// Panics on level mismatch or missing keys.
pub fn inner_product(
    ev: &Evaluator<'_>,
    x: &Ciphertext,
    y: &Ciphertext,
    block: usize,
    keys: &KeySet,
) -> Ciphertext {
    let prod = ev.mul_relin_rescale(x, y, &keys.relin);
    sum_block(ev, &prod, block, keys)
}

/// Multiplies by a 0/1 mask (an encoded plaintext), zeroing the slots where
/// `mask[j]` is false. Consumes one level.
pub fn apply_mask(
    ev: &Evaluator<'_>,
    enc: &Encoder<'_>,
    ct: &Ciphertext,
    mask: &[bool],
) -> Ciphertext {
    assert_eq!(mask.len(), ev.context().slots(), "mask length mismatch");
    let mv: Vec<Complex> = mask
        .iter()
        .map(|&b| Complex::new(if b { 1.0 } else { 0.0 }, 0.0))
        .collect();
    let pt = enc.encode_with_scale(&mv, ct.level(), ev.context().params().scale());
    ev.rescale(&ev.mul_plain(ct, &pt))
}

/// Replicates slot 0 of each block across the whole block:
/// mask to slot 0, then rotate-and-sum *backwards*. Consumes one level.
///
/// Requires rotation keys for `−1, −2, …, −block/2` (equivalently
/// `slots − 2^i`).
pub fn replicate_first(
    ev: &Evaluator<'_>,
    enc: &Encoder<'_>,
    ct: &Ciphertext,
    block: usize,
    keys: &KeySet,
) -> Ciphertext {
    assert!(block.is_power_of_two(), "block must be a power of two");
    let slots = ev.context().slots();
    let mask: Vec<bool> = (0..slots).map(|j| j % block == 0).collect();
    let mut acc = apply_mask(ev, enc, ct, &mask);
    let mut step = 1usize;
    while step < block {
        let rot = ev.rotate(&acc, -(step as isize), keys);
        acc = ev.add(&acc, &rot);
        step <<= 1;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::CkksContext;
    use crate::keys::KeyGenerator;
    use crate::params::CkksParams;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn setup() -> (CkksContext, crate::keys::KeySet) {
        let ctx = CkksContext::new(CkksParams::test_small());
        let mut rots = sum_block_rotations(64);
        rots.extend(sum_block_rotations(64).iter().map(|r| -r));
        let mut rng = StdRng::seed_from_u64(121);
        let keys = KeyGenerator::new(&ctx, &mut rng).generate(&rots);
        (ctx, keys)
    }

    #[test]
    fn sum_block_totals_each_block() {
        let (ctx, keys) = setup();
        let enc = Encoder::new(&ctx);
        let ev = Evaluator::new(&ctx);
        let m = ctx.slots();
        let block = 16;
        let mut rng = StdRng::seed_from_u64(122);
        let xs: Vec<f64> = (0..m).map(|_| rng.gen_range(-0.1..0.1)).collect();
        let msg: Vec<Complex> = xs.iter().map(|&x| Complex::new(x, 0.0)).collect();
        let ct = keys
            .public
            .encrypt(&enc.encode(&msg, ctx.max_level()), &mut rng);
        let summed = sum_block(&ev, &ct, block, &keys);
        let out = enc.decode(&keys.secret.decrypt(&summed));
        for j in 0..m {
            // Rotate-and-sum yields a cyclic windowed sum: slot j holds
            // Σ_{i<block} x_{(j+i) mod m}.
            let want: f64 = (0..block).map(|i| xs[(j + i) % m]).sum();
            assert!(
                (out[j].re - want).abs() < 1e-4,
                "slot {j}: want {want}, got {}",
                out[j].re
            );
        }
    }

    #[test]
    fn inner_product_matches_plain() {
        let (ctx, keys) = setup();
        let enc = Encoder::new(&ctx);
        let ev = Evaluator::new(&ctx);
        let m = ctx.slots();
        let block = 64;
        let mut rng = StdRng::seed_from_u64(123);
        let xs: Vec<f64> = (0..m).map(|_| rng.gen_range(-0.3..0.3)).collect();
        let ys: Vec<f64> = (0..m).map(|_| rng.gen_range(-0.3..0.3)).collect();
        let e = |v: &[f64], rng: &mut StdRng| {
            let msg: Vec<Complex> = v.iter().map(|&x| Complex::new(x, 0.0)).collect();
            keys.public.encrypt(&enc.encode(&msg, ctx.max_level()), rng)
        };
        let cx = e(&xs, &mut rng);
        let cy = e(&ys, &mut rng);
        let ip = inner_product(&ev, &cx, &cy, block, &keys);
        let out = enc.decode(&keys.secret.decrypt(&ip));
        // Check at block starts, where the cyclic window aligns.
        for j in (0..m).step_by(block) {
            let want: f64 = (0..block).map(|i| xs[(j + i) % m] * ys[(j + i) % m]).sum();
            assert!(
                (out[j].re - want).abs() < 1e-3,
                "block {j}: want {want}, got {}",
                out[j].re
            );
        }
    }

    #[test]
    fn mask_zeroes_outside() {
        let (ctx, keys) = setup();
        let enc = Encoder::new(&ctx);
        let ev = Evaluator::new(&ctx);
        let m = ctx.slots();
        let msg: Vec<Complex> = (0..m)
            .map(|i| Complex::new(0.2 + i as f64 * 1e-4, 0.0))
            .collect();
        let mut rng = StdRng::seed_from_u64(124);
        let ct = keys
            .public
            .encrypt(&enc.encode(&msg, ctx.max_level()), &mut rng);
        let mask: Vec<bool> = (0..m).map(|j| j % 4 == 1).collect();
        let masked = apply_mask(&ev, &enc, &ct, &mask);
        let out = enc.decode(&keys.secret.decrypt(&masked));
        for j in 0..m {
            let want = if mask[j] { msg[j].re } else { 0.0 };
            assert!((out[j].re - want).abs() < 1e-4, "slot {j}");
        }
    }

    #[test]
    fn replicate_first_broadcasts() {
        let (ctx, keys) = setup();
        let enc = Encoder::new(&ctx);
        let ev = Evaluator::new(&ctx);
        let m = ctx.slots();
        let block = 8;
        let msg: Vec<Complex> = (0..m)
            .map(|i| Complex::new((i / block) as f64 * 0.01 + 0.05, 0.0))
            .collect();
        let mut rng = StdRng::seed_from_u64(125);
        let ct = keys
            .public
            .encrypt(&enc.encode(&msg, ctx.max_level()), &mut rng);
        let rep = replicate_first(&ev, &enc, &ct, block, &keys);
        let out = enc.decode(&keys.secret.decrypt(&rep));
        for j in 0..m {
            let want = msg[j / block * block].re;
            assert!(
                (out[j].re - want).abs() < 1e-3,
                "slot {j}: want {want}, got {}",
                out[j].re
            );
        }
    }

    #[test]
    fn rotation_helper_lists_powers_of_two() {
        assert_eq!(sum_block_rotations(8), vec![1, 2, 4]);
        assert!(sum_block_rotations(1).is_empty());
    }
}
