//! Plaintext and ciphertext containers.
//!
//! A plaintext is a single polynomial carrying a scale; a ciphertext
//! `[⟨u⟩] = (b, a) ∈ R_Q²` is a pair (§II-A). Both track their *level*
//! (number of active `Q` primes) and the CKKS scaling factor attached to the
//! encoded message.

use ckks_math::poly::{Format, Poly};

/// An encoded (but unencrypted) message: `⟨u⟩` in the paper's notation.
#[derive(Debug, Clone)]
pub struct Plaintext {
    poly: Poly,
    scale: f64,
    level: usize,
}

impl Plaintext {
    /// Wraps an evaluation-domain polynomial with its scale metadata.
    ///
    /// # Panics
    ///
    /// Panics if `poly` has a limb count different from `level`.
    pub fn new(poly: Poly, scale: f64, level: usize) -> Self {
        assert_eq!(poly.num_limbs(), level, "limb count must equal level");
        Self { poly, scale, level }
    }

    /// The underlying polynomial.
    pub fn poly(&self) -> &Poly {
        &self.poly
    }

    /// Mutable access to the underlying polynomial.
    pub fn poly_mut(&mut self) -> &mut Poly {
        &mut self.poly
    }

    /// The scale Δ attached to the encoding.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The level (number of active `Q` primes).
    pub fn level(&self) -> usize {
        self.level
    }

    /// Consumes into the inner polynomial.
    pub fn into_poly(self) -> Poly {
        self.poly
    }
}

/// An encryption `[⟨u⟩] = (b, a)` of a plaintext.
#[derive(Debug, Clone)]
pub struct Ciphertext {
    b: Poly,
    a: Poly,
    scale: f64,
    level: usize,
}

impl Ciphertext {
    /// Assembles a ciphertext from its two polynomials.
    ///
    /// # Panics
    ///
    /// Panics if the components disagree in limb count or domain, or the
    /// limb count differs from `level`.
    pub fn new(b: Poly, a: Poly, scale: f64, level: usize) -> Self {
        assert_eq!(b.num_limbs(), level, "b limb count must equal level");
        assert_eq!(a.num_limbs(), level, "a limb count must equal level");
        assert_eq!(b.format(), Format::Eval, "ciphertexts live in Eval domain");
        assert_eq!(a.format(), Format::Eval, "ciphertexts live in Eval domain");
        Self { b, a, scale, level }
    }

    /// The `b` component (`−a·s + m + e`).
    pub fn b(&self) -> &Poly {
        &self.b
    }

    /// The `a` component (uniform randomness).
    pub fn a(&self) -> &Poly {
        &self.a
    }

    /// Mutable access to both components at once.
    pub fn parts_mut(&mut self) -> (&mut Poly, &mut Poly) {
        (&mut self.b, &mut self.a)
    }

    /// The current scale of the encoded message.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Overrides the tracked scale (used after rescaling).
    pub fn set_scale(&mut self, scale: f64) {
        self.scale = scale;
    }

    /// Overrides the tracked level after an in-place limb change (used by
    /// in-place rescaling).
    ///
    /// # Panics
    ///
    /// Panics if either polynomial's limb count disagrees with `level`.
    pub fn set_level(&mut self, level: usize) {
        assert_eq!(self.b.num_limbs(), level, "b limb count must equal level");
        assert_eq!(self.a.num_limbs(), level, "a limb count must equal level");
        self.level = level;
    }

    /// The level (number of active `Q` primes).
    pub fn level(&self) -> usize {
        self.level
    }

    /// Decomposes into `(b, a, scale, level)`.
    pub fn into_parts(self) -> (Poly, Poly, f64, usize) {
        (self.b, self.a, self.scale, self.level)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ckks_math::modulus::Modulus;
    use ckks_math::ntt::NttContext;
    use ckks_math::prime::generate_ntt_primes;
    use std::sync::Arc;

    fn basis(n: usize, l: usize) -> Vec<Arc<NttContext>> {
        generate_ntt_primes(40, l, 2 * n as u64)
            .into_iter()
            .map(|q| Arc::new(NttContext::new(n, Modulus::new(q))))
            .collect()
    }

    #[test]
    fn plaintext_accessors() {
        let b = basis(8, 2);
        let p = Poly::zero(&b, Format::Eval);
        let pt = Plaintext::new(p, 2f64.powi(40), 2);
        assert_eq!(pt.level(), 2);
        assert_eq!(pt.scale(), 2f64.powi(40));
        assert_eq!(pt.poly().num_limbs(), 2);
    }

    #[test]
    fn ciphertext_accessors() {
        let b = basis(8, 3);
        let ct = Ciphertext::new(
            Poly::zero(&b, Format::Eval),
            Poly::zero(&b, Format::Eval),
            1e12,
            3,
        );
        assert_eq!(ct.level(), 3);
        let (pb, pa, s, l) = ct.into_parts();
        assert_eq!(pb.num_limbs(), 3);
        assert_eq!(pa.num_limbs(), 3);
        assert_eq!(s, 1e12);
        assert_eq!(l, 3);
    }

    #[test]
    #[should_panic(expected = "Eval domain")]
    fn coeff_ciphertext_rejected() {
        let b = basis(8, 1);
        let _ = Ciphertext::new(
            Poly::zero(&b, Format::Coeff),
            Poly::zero(&b, Format::Coeff),
            1.0,
            1,
        );
    }
}
