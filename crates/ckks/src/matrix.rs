//! Encrypted matrix–vector products — the linear-algebra entry point the
//! Anaheim framework's high-level library advertises (§V-C) and the
//! workhorse of the RNN workload \[67\] (two 128×128 matrix–vector products
//! per cell).
//!
//! A `d × d` matrix acting on `d`-element vectors replicated across the
//! slot blocks is exactly a [`LinearTransform`] whose diagonals repeat with
//! period `d`; this module builds that transform from a dense matrix and
//! offers batched application (many vectors per ciphertext, one per block).

use crate::ciphertext::Ciphertext;
use crate::complex::Complex;
use crate::encoding::Encoder;
use crate::eval::Evaluator;
use crate::keys::KeySet;
use crate::lintrans::LinearTransform;

/// A dense real matrix bound to a block size for batched encrypted
/// evaluation.
#[derive(Debug, Clone)]
pub struct EncryptedMatVec {
    dim: usize,
    transform: LinearTransform,
    rows: Vec<Vec<f64>>,
}

impl EncryptedMatVec {
    /// Builds the batched transform for a `dim × dim` matrix over a
    /// ciphertext of `slots` slots (`slots` must be a multiple of `dim`):
    /// each `dim`-slot block holds one input vector.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square with side `dim`, or `dim` does
    /// not divide `slots`.
    pub fn new(slots: usize, rows: Vec<Vec<f64>>) -> Self {
        let dim = rows.len();
        assert!(dim >= 1, "empty matrix");
        assert!(rows.iter().all(|r| r.len() == dim), "matrix must be square");
        assert!(
            slots.is_multiple_of(dim),
            "block size {dim} must divide the slot count {slots}"
        );
        // Batched diagonal construction with the classic two-diagonal wrap
        // split: within a block, row `i` needs column `(i+r) mod dim`. The
        // non-wrapping part (`i + r < dim`) comes from slot rotation `r`;
        // the wrapping part needs the element `r − dim` slots away, i.e.
        // slot rotation `slots − (dim − r)` — each block's wrap must reach
        // back into *its own* vector, not the neighbour's.
        let mut transform = LinearTransform::new(slots);
        let mut add_diag = |rot: usize, diag: Vec<Complex>| {
            if diag.iter().any(|z| z.abs() > 0.0) {
                // Merge with anything already on this rotation index.
                let mut merged = diag;
                if let Some(existing) = transform.diagonals().get(&rot) {
                    for (m, e) in merged.iter_mut().zip(existing) {
                        *m += *e;
                    }
                }
                transform.set_diagonal(rot, merged);
            }
        };
        for r in 0..dim {
            // Non-wrapping entries at rotation r.
            let mut straight = vec![Complex::ZERO; slots];
            for (j, d) in straight.iter_mut().enumerate() {
                let row = j % dim;
                if row + r < dim {
                    *d = Complex::new(rows[row][row + r], 0.0);
                }
            }
            add_diag(r, straight);
            // Wrapping entries at rotation slots − (dim − r).
            if r > 0 {
                let rot = slots - (dim - r);
                let mut wrapped = vec![Complex::ZERO; slots];
                for (j, d) in wrapped.iter_mut().enumerate() {
                    let row = j % dim;
                    if row + r >= dim {
                        *d = Complex::new(rows[row][row + r - dim], 0.0);
                    }
                }
                add_diag(rot, wrapped);
            }
        }
        Self {
            dim,
            transform,
            rows,
        }
    }

    /// The matrix dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The rotation distances the key set must cover (for
    /// [`Self::apply`]'s hoisted evaluation).
    pub fn required_rotations(&self) -> Vec<isize> {
        self.transform.required_rotations()
    }

    /// Plain reference: applies the matrix to each `dim`-block of `x`.
    pub fn apply_plain(&self, x: &[f64]) -> Vec<f64> {
        assert!(x.len().is_multiple_of(self.dim), "input not block-aligned");
        let mut out = vec![0.0; x.len()];
        for (b, block) in x.chunks(self.dim).enumerate() {
            for i in 0..self.dim {
                out[b * self.dim + i] = (0..self.dim).map(|j| self.rows[i][j] * block[j]).sum();
            }
        }
        out
    }

    /// Applies the matrix homomorphically to every block of the ciphertext
    /// (hoisted evaluation + rescale). The input blocks must each hold one
    /// vector; batching comes for free.
    ///
    /// **Note**: the wrap-around sourcing assumes each block holds the same
    /// *layout*, which is the standard batched-matvec packing.
    pub fn apply(
        &self,
        ev: &Evaluator<'_>,
        enc: &Encoder<'_>,
        ct: &Ciphertext,
        keys: &KeySet,
    ) -> Ciphertext {
        ev.rescale(&self.transform.eval_hoisted(ev, enc, ct, keys))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::CkksContext;
    use crate::keys::KeyGenerator;
    use crate::params::CkksParams;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn setup(rotations: &[isize]) -> (CkksContext, crate::keys::KeySet) {
        let ctx = CkksContext::new(CkksParams::test_small());
        let mut rng = StdRng::seed_from_u64(151);
        let keys = KeyGenerator::new(&ctx, &mut rng).generate(rotations);
        (ctx, keys)
    }

    #[test]
    fn batched_matvec_matches_plain() {
        let dim = 8;
        let mut rng = StdRng::seed_from_u64(152);
        let rows: Vec<Vec<f64>> = (0..dim)
            .map(|_| (0..dim).map(|_| rng.gen_range(-0.4..0.4)).collect())
            .collect();
        let ctx_probe = CkksContext::new(CkksParams::test_small());
        let slots = ctx_probe.slots();
        let mv = EncryptedMatVec::new(slots, rows);
        let (ctx, keys) = setup(&mv.required_rotations());
        let enc = Encoder::new(&ctx);
        let ev = Evaluator::new(&ctx);

        // 64 batched vectors, one per 8-slot block.
        let x: Vec<f64> = (0..slots).map(|_| rng.gen_range(-0.5..0.5)).collect();
        let msg: Vec<Complex> = x.iter().map(|&v| Complex::new(v, 0.0)).collect();
        let mut rng2 = StdRng::seed_from_u64(153);
        let ct = keys
            .public
            .encrypt(&enc.encode(&msg, ctx.max_level()), &mut rng2);
        let y_ct = mv.apply(&ev, &enc, &ct, &keys);
        let out = enc.decode(&keys.secret.decrypt(&y_ct));
        let want = mv.apply_plain(&x);
        for j in 0..slots {
            assert!(
                (out[j].re - want[j]).abs() < 1e-3,
                "slot {j}: want {}, got {}",
                want[j],
                out[j].re
            );
        }
    }

    #[test]
    fn identity_matrix_is_identity() {
        let dim = 4;
        let rows: Vec<Vec<f64>> = (0..dim)
            .map(|i| (0..dim).map(|j| if i == j { 1.0 } else { 0.0 }).collect())
            .collect();
        let ctx_probe = CkksContext::new(CkksParams::test_small());
        let mv = EncryptedMatVec::new(ctx_probe.slots(), rows);
        // Identity has only diagonal 0 → no rotations needed.
        assert!(mv.required_rotations().is_empty());
        let x: Vec<f64> = (0..ctx_probe.slots()).map(|i| i as f64 * 0.001).collect();
        assert_eq!(mv.apply_plain(&x), x);
    }

    #[test]
    fn rnn_cell_shape() {
        // The RNN workload's per-cell structure: h' = W_h·h + W_x·x
        // (activation tested separately in `polyeval`).
        let dim = 16;
        let mut rng = StdRng::seed_from_u64(154);
        let mk = |rng: &mut StdRng| -> Vec<Vec<f64>> {
            (0..dim)
                .map(|_| (0..dim).map(|_| rng.gen_range(-0.2..0.2)).collect())
                .collect()
        };
        let ctx_probe = CkksContext::new(CkksParams::test_small());
        let slots = ctx_probe.slots();
        let wh = EncryptedMatVec::new(slots, mk(&mut rng));
        let wx = EncryptedMatVec::new(slots, mk(&mut rng));
        let mut rots = wh.required_rotations();
        rots.extend(wx.required_rotations());
        let (ctx, keys) = setup(&rots);
        let enc = Encoder::new(&ctx);
        let ev = Evaluator::new(&ctx);

        let h: Vec<f64> = (0..slots).map(|_| rng.gen_range(-0.3..0.3)).collect();
        let x: Vec<f64> = (0..slots).map(|_| rng.gen_range(-0.3..0.3)).collect();
        let e = |v: &[f64], rng: &mut StdRng| {
            let m: Vec<Complex> = v.iter().map(|&t| Complex::new(t, 0.0)).collect();
            keys.public.encrypt(&enc.encode(&m, ctx.max_level()), rng)
        };
        let ch = e(&h, &mut rng);
        let cx = e(&x, &mut rng);
        let th = wh.apply(&ev, &enc, &ch, &keys);
        let tx = wx.apply(&ev, &enc, &cx, &keys);
        let sum = ev.add(&th, &tx);
        let out = enc.decode(&keys.secret.decrypt(&sum));
        let want: Vec<f64> = wh
            .apply_plain(&h)
            .iter()
            .zip(wx.apply_plain(&x))
            .map(|(&a, b)| a + b)
            .collect();
        for j in 0..slots {
            assert!((out[j].re - want[j]).abs() < 2e-3, "slot {j}");
        }
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn misaligned_block_rejected() {
        let rows = vec![vec![1.0, 0.0, 0.0]; 3];
        let _ = EncryptedMatVec::new(512, rows);
    }
}
