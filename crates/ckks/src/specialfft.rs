//! The "special FFT" underlying CKKS encoding, decomposed into butterfly
//! stages (HEAAN-style), and the extraction of fftIter-grouped sparse
//! linear-transform factors for decomposed bootstrapping (MAD \[2\], Fig. 3).
//!
//! Decoding evaluates the plaintext polynomial at the rotation-group roots
//! `ζ^{5^j}`. That map factors into `log2(M)` butterfly stages plus a
//! bit-reversal permutation. Homomorphic CoeffToSlot applies the *inverse*
//! stages; the bit-reversal cancels against SlotToCoeff because EvalMod is
//! slot-pointwise (the classical trick of Cheon et al.'s bootstrapping):
//! CoeffToSlot leaves the coefficients in bit-reversed slot order and
//! SlotToCoeff consumes them in that order.
//!
//! Grouping consecutive stages into `fftIter` factors yields sparse
//! matrices with ≈ `2·2^(log M / fftIter)` diagonals each — the paper's
//! CoeffToSlot decomposition knob (§IV-C).

use crate::complex::Complex;
use crate::lintrans::LinearTransform;

/// Butterfly-stage machinery for ring degree `n` (message space `M = n/2`).
#[derive(Debug)]
pub struct SpecialFft {
    m: usize,
    two_n: usize,
    /// `5^j mod 2N`.
    rot: Vec<usize>,
    /// `exp(2πi·t/2N)`.
    ksi: Vec<Complex>,
}

impl SpecialFft {
    /// Builds the tables for ring degree `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two ≥ 8.
    pub fn new(n: usize) -> Self {
        assert!(n >= 8 && n.is_power_of_two(), "invalid ring degree");
        let m = n / 2;
        let two_n = 2 * n;
        let mut rot = Vec::with_capacity(m);
        let mut g = 1usize;
        for _ in 0..m {
            rot.push(g);
            g = (g * 5) % two_n;
        }
        let ksi = (0..two_n)
            .map(|t| Complex::from_angle(2.0 * std::f64::consts::PI * t as f64 / two_n as f64))
            .collect();
        Self { m, two_n, rot, ksi }
    }

    /// Message slots `M`.
    pub fn slots(&self) -> usize {
        self.m
    }

    /// Number of butterfly stages (`log2 M`).
    pub fn num_stages(&self) -> usize {
        self.m.trailing_zeros() as usize
    }

    /// One inverse butterfly level at block length `len` (lazy: no 1/2
    /// scaling).
    fn inv_stage(&self, vals: &mut [Complex], len: usize) {
        let lenh = len >> 1;
        let lenq = len << 2;
        let gap = self.two_n / lenq;
        let mut i = 0;
        while i < self.m {
            for j in 0..lenh {
                let idx = (lenq - (self.rot[j] % lenq)) * gap;
                let u = vals[i + j] + vals[i + j + lenh];
                let v = (vals[i + j] - vals[i + j + lenh]) * self.ksi[idx % self.two_n];
                vals[i + j] = u;
                vals[i + j + lenh] = v;
            }
            i += len;
        }
    }

    /// One forward butterfly level at block length `len`.
    fn fwd_stage(&self, vals: &mut [Complex], len: usize) {
        let lenh = len >> 1;
        let lenq = len << 2;
        let gap = self.two_n / lenq;
        let mut i = 0;
        while i < self.m {
            for j in 0..lenh {
                let idx = (self.rot[j] % lenq) * gap;
                let u = vals[i + j];
                let v = vals[i + j + lenh] * self.ksi[idx % self.two_n];
                vals[i + j] = u + v;
                vals[i + j + lenh] = u - v;
            }
            i += len;
        }
    }

    /// Bit-reverses a slot vector in place.
    pub fn bit_reverse(vals: &mut [Complex]) {
        let n = vals.len();
        let bits = n.trailing_zeros();
        for i in 0..n {
            let j = (i as u32).reverse_bits() >> (32 - bits);
            let j = j as usize;
            if i < j {
                vals.swap(i, j);
            }
        }
    }

    /// The full inverse special FFT: slots → (bit-reversed) coefficient
    /// packing, including the bit reversal and the `1/M` scale — the map
    /// CKKS *encoding* applies to the message.
    pub fn inv_full(&self, vals: &mut [Complex]) {
        assert_eq!(vals.len(), self.m, "slot count mismatch");
        let mut len = self.m;
        while len >= 2 {
            self.inv_stage(vals, len);
            len >>= 1;
        }
        Self::bit_reverse(vals);
        let s = 1.0 / self.m as f64;
        for v in vals.iter_mut() {
            *v = v.scale(s);
        }
    }

    /// The full forward special FFT: coefficient packing → slots — the map
    /// CKKS *decoding* applies.
    pub fn fwd_full(&self, vals: &mut [Complex]) {
        assert_eq!(vals.len(), self.m, "slot count mismatch");
        Self::bit_reverse(vals);
        let mut len = 2;
        while len <= self.m {
            self.fwd_stage(vals, len);
            len <<= 1;
        }
    }

    /// Applies only the inverse stages (no bit reversal, no scale): the
    /// *homomorphic* CoeffToSlot map, leaving bit-reversed order.
    pub fn inv_stages_only(&self, vals: &mut [Complex]) {
        let mut len = self.m;
        while len >= 2 {
            self.inv_stage(vals, len);
            len >>= 1;
        }
    }

    /// Applies only the forward stages (consuming bit-reversed order): the
    /// homomorphic SlotToCoeff map.
    pub fn fwd_stages_only(&self, vals: &mut [Complex]) {
        let mut len = 2;
        while len <= self.m {
            self.fwd_stage(vals, len);
            len <<= 1;
        }
    }

    /// Groups the `log2 M` inverse stages into `groups` factors (first
    /// applied first) and extracts each factor as a sparse
    /// [`LinearTransform`]. A `1/2` scale is folded into every stage so the
    /// factors compose to the properly scaled inverse map (without the bit
    /// reversal); `extra_scale` is additionally folded into the first
    /// factor (used to carry θ = Δ/q0 in bootstrapping).
    ///
    /// # Panics
    ///
    /// Panics if `groups` is 0 or exceeds the stage count.
    pub fn inv_factors(&self, groups: usize, extra_scale: f64) -> Vec<LinearTransform> {
        let stages = self.num_stages();
        assert!(groups >= 1 && groups <= stages, "invalid group count");
        // Partition stage indices 0..stages into `groups` contiguous runs.
        let lens: Vec<usize> = (0..stages).map(|t| self.m >> t).collect();
        self.extract_factors(groups, &lens, extra_scale, true)
    }

    /// Groups the forward stages into `groups` factors (first applied
    /// first), for SlotToCoeff.
    pub fn fwd_factors(&self, groups: usize, extra_scale: f64) -> Vec<LinearTransform> {
        let stages = self.num_stages();
        assert!(groups >= 1 && groups <= stages, "invalid group count");
        let lens: Vec<usize> = (0..stages).map(|t| 2usize << t).collect();
        self.extract_factors(groups, &lens, extra_scale, false)
    }

    fn extract_factors(
        &self,
        groups: usize,
        lens: &[usize],
        extra_scale: f64,
        inverse: bool,
    ) -> Vec<LinearTransform> {
        let stages = lens.len();
        let per = stages.div_ceil(groups);
        let mut out = Vec::with_capacity(groups);
        let mut t0 = 0;
        let mut first = true;
        while t0 < stages {
            let t1 = (t0 + per).min(stages);
            // Build this factor's matrix column by column.
            let mut mat = vec![vec![Complex::ZERO; self.m]; self.m];
            for k in 0..self.m {
                let mut v = vec![Complex::ZERO; self.m];
                v[k] = Complex::ONE;
                for &len in &lens[t0..t1] {
                    if inverse {
                        self.inv_stage(&mut v, len);
                    } else {
                        self.fwd_stage(&mut v, len);
                    }
                }
                // Per-stage 1/2 for the inverse direction (Σ over logM
                // stages gives the 1/M), plus the caller's extra factor on
                // the first group.
                let mut s = if inverse {
                    0.5f64.powi((t1 - t0) as i32)
                } else {
                    1.0
                };
                if first {
                    s *= extra_scale;
                }
                for (j, row) in mat.iter_mut().enumerate() {
                    row[k] = v[j].scale(s);
                }
            }
            out.push(LinearTransform::from_matrix(self.m, &mat));
            first = false;
            t0 = t1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::max_error;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_slots(m: usize, seed: u64) -> Vec<Complex> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..m)
            .map(|_| Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect()
    }

    #[test]
    fn forward_inverts_inverse() {
        let fft = SpecialFft::new(256);
        let z = random_slots(fft.slots(), 1);
        let mut w = z.clone();
        fft.inv_full(&mut w);
        fft.fwd_full(&mut w);
        assert!(max_error(&z, &w) < 1e-10);
    }

    #[test]
    fn stages_only_differ_by_bitrev_and_scale() {
        let fft = SpecialFft::new(128);
        let z = random_slots(fft.slots(), 2);
        let mut a = z.clone();
        fft.inv_full(&mut a);
        let mut b = z.clone();
        fft.inv_stages_only(&mut b);
        SpecialFft::bit_reverse(&mut b);
        let m = fft.slots() as f64;
        let b_scaled: Vec<Complex> = b.iter().map(|v| v.scale(1.0 / m)).collect();
        assert!(max_error(&a, &b_scaled) < 1e-10);
    }

    #[test]
    fn matches_encoder_embedding() {
        // inv_full must produce exactly the coefficient packing the
        // Encoder's canonical embedding computes: c_k = Re(w_k),
        // c_{k+M} = Im(w_k).
        use crate::context::CkksContext;
        use crate::encoding::Encoder;
        use crate::params::CkksParams;
        let params = CkksParams::builder()
            .log_n(9)
            .levels(2)
            .alpha(1)
            .scale_bits(40)
            .build();
        let ctx = CkksContext::new(params);
        let enc = Encoder::new(&ctx);
        let fft = SpecialFft::new(ctx.n());
        let m = ctx.slots();
        let z = random_slots(m, 3);
        let delta = 2f64.powi(40);
        let coeffs = enc.embed(&z, delta);
        let mut w = z.clone();
        fft.inv_full(&mut w);
        let mut max_err = 0.0f64;
        for k in 0..m {
            max_err = max_err.max((coeffs[k] as f64 / delta - w[k].re).abs());
            max_err = max_err.max((coeffs[k + m] as f64 / delta - w[k].im).abs());
        }
        assert!(
            max_err < 1e-9,
            "stage decomposition must equal the canonical embedding: {max_err}"
        );
    }

    #[test]
    fn factors_compose_to_stages() {
        let fft = SpecialFft::new(128);
        let m = fft.slots();
        for groups in [1usize, 2, 3] {
            let factors = fft.inv_factors(groups, 1.0);
            assert_eq!(factors.len(), groups);
            let z = random_slots(m, 4);
            // Apply factors in order.
            let mut via_factors = z.clone();
            for f in &factors {
                via_factors = f.apply_plain(&via_factors);
            }
            // Reference: stages only, scaled by 1/M.
            let mut want = z.clone();
            fft.inv_stages_only(&mut want);
            let want: Vec<Complex> = want.iter().map(|v| v.scale(1.0 / m as f64)).collect();
            assert!(max_error(&via_factors, &want) < 1e-9, "groups = {groups}");
        }
    }

    #[test]
    fn forward_factors_compose() {
        let fft = SpecialFft::new(128);
        let m = fft.slots();
        let factors = fft.fwd_factors(3, 1.0);
        let z = random_slots(m, 5);
        let mut via = z.clone();
        for f in &factors {
            via = f.apply_plain(&via);
        }
        let mut want = z.clone();
        fft.fwd_stages_only(&mut want);
        assert!(max_error(&via, &want) < 1e-9);
    }

    #[test]
    fn factors_are_sparse() {
        // The whole point of fftIter: a 3-group split of a 128-slot FFT has
        // far fewer diagonals per factor than the dense map's 128.
        let fft = SpecialFft::new(256);
        for f in fft.inv_factors(3, 1.0) {
            assert!(
                f.num_diagonals() <= 40,
                "factor too dense: {} diagonals",
                f.num_diagonals()
            );
        }
        // Fewer groups → denser factors (the Fig. 3 trade-off).
        let d2: usize = fft
            .inv_factors(2, 1.0)
            .iter()
            .map(|f| f.num_diagonals())
            .max()
            .unwrap();
        let d4: usize = fft
            .inv_factors(4, 1.0)
            .iter()
            .map(|f| f.num_diagonals())
            .max()
            .unwrap();
        assert!(d2 > d4, "more groups must mean sparser factors");
    }

    #[test]
    fn extra_scale_lands_on_first_factor_only() {
        let fft = SpecialFft::new(64);
        let m = fft.slots();
        let plain = fft.inv_factors(2, 1.0);
        let scaled = fft.inv_factors(2, 7.0);
        let z = random_slots(m, 6);
        let mut a = z.clone();
        for f in &plain {
            a = f.apply_plain(&a);
        }
        let mut b = z.clone();
        for f in &scaled {
            b = f.apply_plain(&b);
        }
        let a7: Vec<Complex> = a.iter().map(|v| v.scale(7.0)).collect();
        assert!(max_error(&a7, &b) < 1e-9);
    }
}
