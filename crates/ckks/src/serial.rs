//! Binary serialization of ciphertexts and plaintexts.
//!
//! Ciphertexts travel between client and server in any real FHE deployment,
//! so the library provides a compact framed format. Deserialization
//! *reattaches* the polynomial limbs to a [`CkksContext`] — the NTT tables
//! and modulus chain are public parameters both sides share, so only the
//! residue data and metadata cross the wire.
//!
//! Format (little-endian): magic `b"ANHM"`, version u16, kind u8,
//! `log2 N` u8, then a kind-specific body. Ciphertexts and plaintexts carry
//! scale f64 followed by their polynomials; an evaluation key carries its
//! digit count u16 followed by `2·D` full-basis polynomials. Each polynomial
//! is limb count u16, format u8, then per limb the modulus u64 followed by
//! `N` residues u64.
//!
//! Evaluation keys ship over the wire in key-distribution and
//! cache-warming flows (docs/KEYS.md), so they get the same framed format;
//! their polynomials are validated against the full `Q‖P` chain with an
//! *exact* limb count, where ciphertext polynomials validate against a
//! prefix of the `Q` chain.

use std::fmt;
use std::sync::Arc;

use ckks_math::ntt::NttContext;
use ckks_math::poly::{Format, Limb, Poly};

use crate::ciphertext::{Ciphertext, Plaintext};
use crate::context::CkksContext;
use crate::keys::EvalKey;

const MAGIC: &[u8; 4] = b"ANHM";
const VERSION: u16 = 1;

/// Errors from deserialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SerialError {
    /// The buffer is shorter than the header or payload requires.
    Truncated,
    /// The magic bytes or version did not match.
    BadHeader,
    /// The payload kind differs from what the caller asked for.
    WrongKind,
    /// The ring degree does not match the context.
    DegreeMismatch,
    /// A limb's modulus is not part of the context's chain (in order).
    ModulusMismatch,
    /// A residue was not reduced modulo its prime.
    ResidueOutOfRange,
    /// The scale field is not a finite positive number.
    InvalidScale,
}

impl fmt::Display for SerialError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            SerialError::Truncated => "buffer truncated",
            SerialError::BadHeader => "bad magic or unsupported version",
            SerialError::WrongKind => "payload kind mismatch",
            SerialError::DegreeMismatch => "ring degree does not match the context",
            SerialError::ModulusMismatch => "limb modulus not in the context chain",
            SerialError::ResidueOutOfRange => "residue not reduced modulo its prime",
            SerialError::InvalidScale => "scale is not a finite positive number",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for SerialError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Ciphertext = 1,
    Plaintext = 2,
    EvalKey = 3,
}

struct Writer(Vec<u8>);

impl Writer {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SerialError> {
        // Overflow-safe: `pos + n` could wrap for an attacker-chosen `n`.
        if n > self.buf.len() - self.pos {
            return Err(SerialError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, SerialError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, SerialError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len")))
    }
    fn u64(&mut self) -> Result<u64, SerialError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len")))
    }
    fn f64(&mut self) -> Result<f64, SerialError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("len")))
    }
}

fn write_poly(w: &mut Writer, p: &Poly) {
    w.u16(p.num_limbs() as u16);
    w.u8(match p.format() {
        Format::Coeff => 0,
        Format::Eval => 1,
    });
    for i in 0..p.num_limbs() {
        let l = p.limb(i);
        w.u64(l.ctx().modulus().value());
        for &x in l.data() {
            w.u64(x);
        }
    }
}

/// Reads one polynomial, validating its limbs against `chain` in order.
/// `exact` requires the limb count to equal the chain length (full-basis key
/// polynomials); otherwise any non-empty prefix is accepted (ciphertexts at
/// reduced level).
fn read_poly_in(
    r: &mut Reader<'_>,
    chain: &[Arc<NttContext>],
    n: usize,
    exact: bool,
) -> Result<Poly, SerialError> {
    let limbs = r.u16()? as usize;
    let format = match r.u8()? {
        0 => Format::Coeff,
        1 => Format::Eval,
        _ => return Err(SerialError::BadHeader),
    };
    if limbs == 0 || limbs > chain.len() || (exact && limbs != chain.len()) {
        return Err(SerialError::ModulusMismatch);
    }
    let mut out = Vec::with_capacity(limbs);
    for prime_ctx in chain.iter().take(limbs) {
        let q = r.u64()?;
        if prime_ctx.modulus().value() != q {
            return Err(SerialError::ModulusMismatch);
        }
        let mut data = Vec::with_capacity(n);
        for _ in 0..n {
            let x = r.u64()?;
            if x >= q {
                return Err(SerialError::ResidueOutOfRange);
            }
            data.push(x);
        }
        out.push(Limb::from_data(prime_ctx.clone(), data));
    }
    Ok(Poly::from_limbs(out, format))
}

/// Reads a ciphertext/plaintext polynomial: any prefix of the `Q` chain.
fn read_poly(r: &mut Reader<'_>, ctx: &CkksContext) -> Result<Poly, SerialError> {
    read_poly_in(r, ctx.basis_q(ctx.max_level()), ctx.n(), false)
}

fn write_header(w: &mut Writer, kind: Kind, log_n: u8) {
    w.0.extend_from_slice(MAGIC);
    w.u16(VERSION);
    w.u8(kind as u8);
    w.u8(log_n);
}

fn read_header(r: &mut Reader<'_>, want: Kind) -> Result<u8, SerialError> {
    if r.take(4)? != MAGIC {
        return Err(SerialError::BadHeader);
    }
    if r.u16()? != VERSION {
        return Err(SerialError::BadHeader);
    }
    let kind = r.u8()?;
    if kind != want as u8 {
        return Err(SerialError::WrongKind);
    }
    r.u8()
}

fn check_degree(log_n: u8, ctx: &CkksContext) -> Result<(), SerialError> {
    // Guard the shift: log_n comes off the wire and `1 << 64` would panic.
    if u32::from(log_n) >= usize::BITS || 1usize << log_n != ctx.n() {
        return Err(SerialError::DegreeMismatch);
    }
    Ok(())
}

fn check_scale(scale: f64) -> Result<f64, SerialError> {
    if scale.is_finite() && scale > 0.0 {
        Ok(scale)
    } else {
        Err(SerialError::InvalidScale)
    }
}

/// Serializes a ciphertext.
pub fn serialize_ciphertext(ct: &Ciphertext) -> Vec<u8> {
    let mut w = Writer(Vec::new());
    let log_n = ct.b().n().trailing_zeros() as u8;
    write_header(&mut w, Kind::Ciphertext, log_n);
    w.f64(ct.scale());
    write_poly(&mut w, ct.b());
    write_poly(&mut w, ct.a());
    w.0
}

/// Deserializes a ciphertext against a context.
///
/// # Errors
///
/// Returns [`SerialError`] when the buffer is malformed, the ring degree or
/// modulus chain disagrees with `ctx`, or residues are out of range.
pub fn deserialize_ciphertext(ctx: &CkksContext, bytes: &[u8]) -> Result<Ciphertext, SerialError> {
    let mut r = Reader { buf: bytes, pos: 0 };
    let log_n = read_header(&mut r, Kind::Ciphertext)?;
    check_degree(log_n, ctx)?;
    let scale = check_scale(r.f64()?)?;
    let b = read_poly(&mut r, ctx)?;
    let a = read_poly(&mut r, ctx)?;
    if b.num_limbs() != a.num_limbs() {
        return Err(SerialError::ModulusMismatch);
    }
    // Ciphertexts live in the evaluation domain; a flipped format byte must
    // not reach the (asserting) constructor.
    if b.format() != Format::Eval || a.format() != Format::Eval {
        return Err(SerialError::BadHeader);
    }
    let level = b.num_limbs();
    Ok(Ciphertext::new(b, a, scale, level))
}

/// Serializes a plaintext.
pub fn serialize_plaintext(pt: &Plaintext) -> Vec<u8> {
    let mut w = Writer(Vec::new());
    let log_n = pt.poly().n().trailing_zeros() as u8;
    write_header(&mut w, Kind::Plaintext, log_n);
    w.f64(pt.scale());
    write_poly(&mut w, pt.poly());
    w.0
}

/// Deserializes a plaintext against a context.
///
/// # Errors
///
/// Returns [`SerialError`] on malformed or mismatching input.
pub fn deserialize_plaintext(ctx: &CkksContext, bytes: &[u8]) -> Result<Plaintext, SerialError> {
    let mut r = Reader { buf: bytes, pos: 0 };
    let log_n = read_header(&mut r, Kind::Plaintext)?;
    check_degree(log_n, ctx)?;
    let scale = check_scale(r.f64()?)?;
    let poly = read_poly(&mut r, ctx)?;
    let level = poly.num_limbs();
    Ok(Plaintext::new(poly, scale, level))
}

/// Serializes an evaluation key: digit count u16, then per digit the
/// `(b_j, a_j)` full-basis polynomial pair.
pub fn serialize_evalkey(evk: &EvalKey) -> Vec<u8> {
    let mut w = Writer(Vec::new());
    let (b0, _) = evk.digit(0);
    let log_n = b0.n().trailing_zeros() as u8;
    write_header(&mut w, Kind::EvalKey, log_n);
    w.u16(evk.num_digits() as u16);
    for j in 0..evk.num_digits() {
        let (b, a) = evk.digit(j);
        write_poly(&mut w, b);
        write_poly(&mut w, a);
    }
    w.0
}

/// Deserializes an evaluation key against a context. Key polynomials must
/// cover the context's full `Q‖P` basis exactly and sit in the evaluation
/// domain, and the digit count must match the context's decomposition
/// number.
///
/// # Errors
///
/// Returns [`SerialError`] on malformed or mismatching input.
pub fn deserialize_evalkey(ctx: &CkksContext, bytes: &[u8]) -> Result<EvalKey, SerialError> {
    let mut r = Reader { buf: bytes, pos: 0 };
    let log_n = read_header(&mut r, Kind::EvalKey)?;
    check_degree(log_n, ctx)?;
    let d = r.u16()? as usize;
    if d != ctx.decomposition_number() {
        return Err(SerialError::ModulusMismatch);
    }
    let chain = ctx.basis_full();
    let mut digits = Vec::with_capacity(d);
    for _ in 0..d {
        let b = read_poly_in(&mut r, &chain, ctx.n(), true)?;
        let a = read_poly_in(&mut r, &chain, ctx.n(), true)?;
        // Keys live in the evaluation domain, like ciphertexts.
        if b.format() != Format::Eval || a.format() != Format::Eval {
            return Err(SerialError::BadHeader);
        }
        digits.push((b, a));
    }
    Ok(EvalKey::from_digits(digits))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::{max_error, Complex};
    use crate::encoding::Encoder;
    use crate::keys::KeyGenerator;
    use crate::params::CkksParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (CkksContext, crate::keys::KeySet) {
        let ctx = CkksContext::new(CkksParams::test_small());
        let mut rng = StdRng::seed_from_u64(131);
        let keys = KeyGenerator::new(&ctx, &mut rng).generate(&[]);
        (ctx, keys)
    }

    #[test]
    fn ciphertext_roundtrip() {
        let (ctx, keys) = setup();
        let enc = Encoder::new(&ctx);
        let mut rng = StdRng::seed_from_u64(132);
        let msg: Vec<Complex> = (0..ctx.slots())
            .map(|i| Complex::new(i as f64 * 1e-3, -0.2))
            .collect();
        let ct = keys
            .public
            .encrypt(&enc.encode(&msg, ctx.max_level()), &mut rng);
        let bytes = serialize_ciphertext(&ct);
        let back = deserialize_ciphertext(&ctx, &bytes).expect("roundtrip");
        assert_eq!(back.level(), ct.level());
        assert_eq!(back.scale(), ct.scale());
        let out = enc.decode(&keys.secret.decrypt(&back));
        assert!(max_error(&msg, &out) < 1e-6);
    }

    #[test]
    fn plaintext_roundtrip() {
        let (ctx, _) = setup();
        let enc = Encoder::new(&ctx);
        let msg: Vec<Complex> = vec![Complex::new(0.5, 0.25); ctx.slots()];
        let pt = enc.encode(&msg, 3);
        let bytes = serialize_plaintext(&pt);
        let back = deserialize_plaintext(&ctx, &bytes).expect("roundtrip");
        assert_eq!(back.level(), 3);
        let out = enc.decode(&back);
        assert!(max_error(&msg, &out) < 1e-6);
    }

    #[test]
    fn reduced_level_ciphertext_roundtrips() {
        let (ctx, keys) = setup();
        let enc = Encoder::new(&ctx);
        let ev = crate::eval::Evaluator::new(&ctx);
        let mut rng = StdRng::seed_from_u64(133);
        let msg: Vec<Complex> = vec![Complex::new(0.1, 0.0); ctx.slots()];
        let ct = keys
            .public
            .encrypt(&enc.encode(&msg, ctx.max_level()), &mut rng);
        let low = ev.mod_switch_to(&ct, 2);
        let back = deserialize_ciphertext(&ctx, &serialize_ciphertext(&low)).expect("roundtrip");
        assert_eq!(back.level(), 2);
    }

    #[test]
    fn corrupt_inputs_rejected() {
        let (ctx, keys) = setup();
        let enc = Encoder::new(&ctx);
        let mut rng = StdRng::seed_from_u64(134);
        let msg: Vec<Complex> = vec![Complex::ZERO; ctx.slots()];
        let ct = keys
            .public
            .encrypt(&enc.encode(&msg, ctx.max_level()), &mut rng);
        let bytes = serialize_ciphertext(&ct);

        // Truncation.
        assert_eq!(
            deserialize_ciphertext(&ctx, &bytes[..bytes.len() / 2]).unwrap_err(),
            SerialError::Truncated
        );
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert_eq!(
            deserialize_ciphertext(&ctx, &bad).unwrap_err(),
            SerialError::BadHeader
        );
        // Wrong kind.
        let pt = enc.encode(&msg, 2);
        assert_eq!(
            deserialize_ciphertext(&ctx, &serialize_plaintext(&pt)).unwrap_err(),
            SerialError::WrongKind
        );
        // Out-of-range residue: overwrite one residue with u64::MAX.
        let mut oor = bytes.clone();
        let header = 4 + 2 + 1 + 1 + 8 + 2 + 1 + 8; // up to the first residue
        for (i, b) in u64::MAX.to_le_bytes().iter().enumerate() {
            oor[header + i] = *b;
        }
        assert_eq!(
            deserialize_ciphertext(&ctx, &oor).unwrap_err(),
            SerialError::ResidueOutOfRange
        );
        // Wrong context (different degree).
        let other = CkksContext::new(
            CkksParams::builder()
                .log_n(11)
                .levels(4)
                .alpha(2)
                .scale_bits(40)
                .build(),
        );
        assert_eq!(
            deserialize_ciphertext(&other, &bytes).unwrap_err(),
            SerialError::DegreeMismatch
        );
    }

    #[test]
    fn evalkey_corrupt_inputs_rejected() {
        let (ctx, keys) = setup();
        let bytes = serialize_evalkey(&keys.relin);

        assert_eq!(
            deserialize_evalkey(&ctx, &bytes[..bytes.len() - 1]).unwrap_err(),
            SerialError::Truncated
        );
        // A ciphertext payload is the wrong kind.
        let enc = Encoder::new(&ctx);
        let mut rng = StdRng::seed_from_u64(135);
        let msg: Vec<Complex> = vec![Complex::ZERO; ctx.slots()];
        let ct = keys
            .public
            .encrypt(&enc.encode(&msg, ctx.max_level()), &mut rng);
        assert_eq!(
            deserialize_evalkey(&ctx, &serialize_ciphertext(&ct)).unwrap_err(),
            SerialError::WrongKind
        );
        // Digit count must match the context's decomposition number.
        let mut bad = bytes.clone();
        bad[8] = bad[8].wrapping_add(1); // digit-count u16 follows the 8-byte header
        assert_eq!(
            deserialize_evalkey(&ctx, &bad).unwrap_err(),
            SerialError::ModulusMismatch
        );
        // And an evk is not a ciphertext.
        assert_eq!(
            deserialize_ciphertext(&ctx, &bytes).unwrap_err(),
            SerialError::WrongKind
        );
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(8))]

        /// Round-trips randomly generated evaluation keys and pins
        /// `size_bytes_32` against the serialized length: the wire stores
        /// 8-byte words, the size model counts the paper's 4-byte words, so
        /// the residue payload is exactly `2 × size_bytes_32` plus a
        /// computable framing overhead.
        #[test]
        fn evalkey_roundtrip_pins_size_model(seed in 0u64..(1u64 << 48), pick in 0usize..4) {
            let ctx = CkksContext::new(CkksParams::test_small());
            let mut rng = StdRng::seed_from_u64(seed);
            let mut kg = KeyGenerator::new(&ctx, &mut rng);
            let sk = kg.gen_secret();
            let evk = match pick {
                0 => kg.gen_relin(&sk),
                1 => kg.gen_conjugation(&sk),
                r => kg.gen_rotation(&sk, r as isize),
            };

            let bytes = serialize_evalkey(&evk);
            let limbs = ctx.max_level() + ctx.params().alpha;
            let d = evk.num_digits();
            // 8-byte header + u16 digit count + per poly (u16 limbs + u8
            // format + u64 modulus per limb) + the residue payload.
            let overhead = 8 + 2 + 2 * d * (3 + 8 * limbs);
            proptest::prop_assert_eq!(bytes.len(), overhead + 2 * evk.size_bytes_32());

            let back = deserialize_evalkey(&ctx, &bytes).expect("roundtrip");
            proptest::prop_assert_eq!(back.num_digits(), d);
            for j in 0..d {
                let (gb, ga) = back.digit(j);
                let (wb, wa) = evk.digit(j);
                for i in 0..limbs {
                    proptest::prop_assert_eq!(gb.limb(i).data(), wb.limb(i).data());
                    proptest::prop_assert_eq!(ga.limb(i).data(), wa.limb(i).data());
                }
            }
        }
    }

    #[test]
    fn error_display_is_informative() {
        let e = SerialError::ModulusMismatch;
        assert!(format!("{e}").contains("modulus"));
        let boxed: Box<dyn std::error::Error> = Box::new(e);
        assert!(boxed.to_string().len() > 5);
    }
}
