//! CKKS bootstrapping (§II-C): ModRaise → CoeffToSlot → EvalMod →
//! SlotToCoeff.
//!
//! Bootstrapping restores the modulus chain of an exhausted ciphertext. A
//! level-1 ciphertext is reinterpreted modulo the full chain (ModRaise),
//! which changes the plaintext polynomial from `p` to `p + q_0·I` for a
//! small integer polynomial `I`. The homomorphic pipeline then removes
//! `q_0·I`:
//!
//! 1. **CoeffToSlot** — two homomorphic linear transforms (plus a
//!    conjugation) move the polynomial *coefficients* into message slots.
//! 2. **EvalMod** — a Chebyshev approximation of `sin(2πt)/2π` evaluates
//!    `t mod 1` on each slot (valid because `|p/q_0| ≪ 1` and `I` is a
//!    small integer).
//! 3. **SlotToCoeff** — the forward transforms move the cleaned values back
//!    into coefficients.
//!
//! The linear transforms here are evaluated as *dense* DFT matrices via
//! BSGS. The paper's fftIter-decomposed CoeffToSlot (MAD \[2\], Fig. 3) is a
//! performance-level decomposition; its op-level structure is modeled in
//! `anaheim-core::ir` while this functional implementation keeps the
//! single-stage matrices (see DESIGN.md substitution notes).
//!
//! Precision notes: we use the plain sine (no arcsine correction), so the
//! result carries an `O((2π·m/q_0)²/6)` relative error in addition to the
//! Chebyshev approximation error scaled by `q_0/Δ` — adequate for the
//! functional tests at toy ring degrees; the paper's quality-targeting
//! tricks (double-prime scaling etc.) address the same issue at scale.

use crate::chebyshev::ChebyshevSeries;
use crate::ciphertext::Ciphertext;
use crate::complex::Complex;
use crate::context::CkksContext;
use crate::encoding::Encoder;
use crate::eval::Evaluator;
use crate::keys::KeySet;
use crate::lintrans::LinearTransform;
use ckks_math::poly::Poly;

/// Tuning knobs for bootstrapping.
#[derive(Debug, Clone)]
pub struct BootstrapConfig {
    /// Bound `K` on the ModRaise integer polynomial `I` (depends on the
    /// secret Hamming weight; `K ≈ 10·√(h/12)` is a conservative choice).
    pub k_bound: usize,
    /// Degree of the Chebyshev approximation of sine on `[-K, K]`.
    pub sin_degree: usize,
    /// Baby-step count for the BSGS linear transforms.
    pub bsgs_babies: usize,
    /// `Some((c2s, s2c))` switches CoeffToSlot/SlotToCoeff to the
    /// fftIter-decomposed butterfly factors (MAD \[2\], Fig. 3) instead of
    /// the dense single-stage DFT matrices.
    pub fft_iter: Option<(usize, usize)>,
}

impl BootstrapConfig {
    /// A configuration adequate for sparse secrets (`h ≤ 32`) at test sizes.
    pub fn sparse_default() -> Self {
        Self {
            k_bound: 12,
            sin_degree: 119,
            bsgs_babies: 16,
            fft_iter: None,
        }
    }

    /// The sparse default with fftIter-decomposed transforms.
    pub fn decomposed(c2s: usize, s2c: usize) -> Self {
        Self {
            fft_iter: Some((c2s, s2c)),
            // The Re/Im split doubles the EvalMod input range, so the sine
            // approximation needs roughly twice the degree.
            sin_degree: 239,
            ..Self::sparse_default()
        }
    }
}

/// Precomputed bootstrapping state: transform matrices and the EvalMod
/// series.
#[derive(Debug)]
pub struct Bootstrapper<'a> {
    ctx: &'a CkksContext,
    config: BootstrapConfig,
    /// CoeffToSlot: `t_k = Σ_j U0[k][j]·v_j + Σ_j U0c[k][j]·conj(v)_j`.
    cts_u0: LinearTransform,
    cts_u0c: LinearTransform,
    cts_u1: LinearTransform,
    cts_u1c: LinearTransform,
    /// SlotToCoeff: `z_j = Σ_k E0[j][k]·w0_k + Σ_k E1[j][k]·w1_k`.
    stc_e0: LinearTransform,
    stc_e1: LinearTransform,
    eval_mod: ChebyshevSeries,
    /// Decomposed CoeffToSlot factors (applied first → last).
    cts_factors: Vec<LinearTransform>,
    /// Decomposed SlotToCoeff factors.
    stc_factors: Vec<LinearTransform>,
    /// EvalMod series for the decomposed path (doubled input range from
    /// the Re/Im split).
    eval_mod_doubled: ChebyshevSeries,
}

impl<'a> Bootstrapper<'a> {
    /// Precomputes all matrices and the sine approximation.
    ///
    /// The context's secret Hamming weight should be consistent with
    /// `config.k_bound` (see [`BootstrapConfig`]).
    pub fn new(ctx: &'a CkksContext, config: BootstrapConfig) -> Self {
        let n = ctx.n();
        let m = ctx.slots();
        let two_n = 2 * n;
        // ζ^t table and rotation group, matching the Encoder's convention.
        let zeta: Vec<Complex> = (0..two_n)
            .map(|t| Complex::from_angle(std::f64::consts::PI * t as f64 / n as f64))
            .collect();
        let mut rot = Vec::with_capacity(m);
        let mut g = 1usize;
        for _ in 0..m {
            rot.push(g);
            g = (g * 5) % two_n;
        }
        // CoeffToSlot carries the 1/(2M) of the inverse embedding AND the
        // factor θ = Δ/q0 that brings the output to the canonical scale:
        // after the transform (at tracked scale ≈ q0·Δ/q_drop) the slot
        // values are θ·t, so re-declaring the scale as (tracked·θ) yields
        // value t at scale ≈ Δ — the stable input the Chebyshev ladder
        // needs.
        let q0 = ctx.basis_q(1)[0].modulus().value() as f64;
        let delta = ctx.params().scale();
        let theta = delta / q0;
        let inv_2m = theta / (2.0 * m as f64);
        let mat = |f: &dyn Fn(usize, usize) -> Complex| -> Vec<Vec<Complex>> {
            (0..m).map(|r| (0..m).map(|c| f(r, c)).collect()).collect()
        };
        // CoeffToSlot matrices (§II-C / Fig. 1 CoeffToSlot).
        let u0 = mat(&|k, j| zeta[(rot[j] * k) % two_n].conj().scale(inv_2m));
        let u0c = mat(&|k, j| zeta[(rot[j] * k) % two_n].scale(inv_2m));
        let u1 = mat(&|k, j| zeta[(rot[j] * (k + m)) % two_n].conj().scale(inv_2m));
        let u1c = mat(&|k, j| zeta[(rot[j] * (k + m)) % two_n].scale(inv_2m));
        // SlotToCoeff matrices.
        let e0 = mat(&|j, k| zeta[(rot[j] * k) % two_n]);
        let e1 = mat(&|j, k| zeta[(rot[j] * (k + m)) % two_n]);

        // EvalMod: f(t) = C·sin(2πt)/(2π) with C = q0/Δ folded in, so the
        // output value is `p_k/Δ` when the input is `t = p_k/q0 + I_k`.
        let c = q0 / delta;
        let k = config.k_bound as f64;
        let eval_mod = ChebyshevSeries::interpolate(
            move |t| c * (2.0 * std::f64::consts::PI * t).sin() / (2.0 * std::f64::consts::PI),
            -(k + 1.0),
            k + 1.0,
            config.sin_degree,
        );

        // Decomposed transforms (§IV-C): butterfly-stage factors with θ
        // folded into the first CoeffToSlot factor.
        let (cts_factors, stc_factors) = match config.fft_iter {
            Some((c2s, s2c)) => {
                let fft = crate::specialfft::SpecialFft::new(n);
                (fft.inv_factors(c2s, theta), fft.fwd_factors(s2c, 1.0))
            }
            None => (Vec::new(), Vec::new()),
        };
        // Doubled-range sine for the decomposed path: inputs are 2·t after
        // the conjugation split, so evaluate C·sin(π·u)/(2π) on ±2(K+1).
        let k2 = 2.0 * (k + 1.0);
        let eval_mod_doubled = ChebyshevSeries::interpolate(
            move |u| c * (std::f64::consts::PI * u).sin() / (2.0 * std::f64::consts::PI),
            -k2,
            k2,
            config.sin_degree,
        );

        Self {
            ctx,
            config,
            cts_u0: LinearTransform::from_matrix(m, &u0),
            cts_u0c: LinearTransform::from_matrix(m, &u0c),
            cts_u1: LinearTransform::from_matrix(m, &u1),
            cts_u1c: LinearTransform::from_matrix(m, &u1c),
            stc_e0: LinearTransform::from_matrix(m, &e0),
            stc_e1: LinearTransform::from_matrix(m, &e1),
            eval_mod: ChebyshevSeries::new(eval_mod.coeffs().to_vec(), -(k + 1.0), k + 1.0),
            cts_factors,
            stc_factors,
            eval_mod_doubled,
        }
    }

    /// The rotation distances key generation must cover.
    pub fn required_rotations(&self) -> Vec<isize> {
        let mut out = Vec::new();
        if self.config.fft_iter.is_some() {
            for t in self.cts_factors.iter().chain(self.stc_factors.iter()) {
                out.extend(t.required_rotations_bsgs(self.config.bsgs_babies));
            }
        } else {
            for t in [
                &self.cts_u0,
                &self.cts_u0c,
                &self.cts_u1,
                &self.cts_u1c,
                &self.stc_e0,
                &self.stc_e1,
            ] {
                out.extend(t.required_rotations_bsgs(self.config.bsgs_babies));
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The configuration in effect.
    pub fn config(&self) -> &BootstrapConfig {
        &self.config
    }

    /// ModRaise: reinterpret a level-1 ciphertext modulo the full chain.
    /// The returned ciphertext is at `max_level` with its scale *declared*
    /// as `q_0` (the standard trick making the slot values
    /// `t = p/q_0 + I`, §II-C).
    ///
    /// # Panics
    ///
    /// Panics if `ct` is not at level 1.
    pub fn mod_raise(&self, ct: &Ciphertext) -> Ciphertext {
        assert_eq!(ct.level(), 1, "ModRaise expects a level-1 ciphertext");
        let q0ctx = &self.ctx.basis_q(1)[0];
        let q0 = q0ctx.modulus().value();
        let full = self.ctx.basis_q(self.ctx.max_level()).to_vec();
        let lift = |p: &Poly| {
            let mut c = p.clone();
            c.to_coeff();
            let m = q0ctx.modulus();
            let centered: Vec<i64> = c.limb(0).data().iter().map(|&x| m.to_centered(x)).collect();
            let mut out = Poly::from_coeff_i64(&full, &centered);
            out.to_eval();
            out
        };
        let mut raised =
            Ciphertext::new(lift(ct.b()), lift(ct.a()), ct.scale(), self.ctx.max_level());
        raised.set_scale(q0 as f64);
        let _ = q0;
        raised
    }

    /// Full bootstrap of a level-1 ciphertext: returns a ciphertext with the
    /// same message at a high level and exactly the canonical scale Δ.
    ///
    /// # Panics
    ///
    /// Panics if required rotation keys are missing or the input is not at
    /// level 1 with scale ≈ Δ.
    pub fn bootstrap(
        &self,
        ev: &Evaluator<'_>,
        enc: &Encoder<'_>,
        ct: &Ciphertext,
        keys: &KeySet,
    ) -> Ciphertext {
        if self.config.fft_iter.is_some() {
            return self.bootstrap_decomposed(ev, enc, ct, keys);
        }
        let delta = self.ctx.params().scale();
        assert!(
            (ct.scale() / delta - 1.0).abs() < 0.01,
            "input scale must be ≈ Δ"
        );
        let n1 = self.config.bsgs_babies;

        // 1. ModRaise.
        let raised = self.mod_raise(ct);
        let q0 = self.ctx.basis_q(1)[0].modulus().value() as f64;
        let theta = delta / q0;
        // 2. CoeffToSlot: two output ciphertexts of coefficient values. The
        // matrices carry θ = Δ/q0, so re-declaring the scale by ×θ lands the
        // values t_k at scale ≈ Δ.
        let conj = ev.conjugate(&raised, keys);
        let c0a = self
            .cts_u0
            .eval_bsgs_double_hoisted(ev, enc, &raised, keys, n1);
        let c0b = self
            .cts_u0c
            .eval_bsgs_double_hoisted(ev, enc, &conj, keys, n1);
        let mut c0 = ev.rescale(&ev.add(&c0a, &c0b));
        c0.set_scale(c0.scale() * theta);
        let c1a = self
            .cts_u1
            .eval_bsgs_double_hoisted(ev, enc, &raised, keys, n1);
        let c1b = self
            .cts_u1c
            .eval_bsgs_double_hoisted(ev, enc, &conj, keys, n1);
        let mut c1 = ev.rescale(&ev.add(&c1a, &c1b));
        c1.set_scale(c1.scale() * theta);

        // 3. EvalMod on both halves.
        let w0 = self.eval_mod.eval_homomorphic(ev, &c0, &keys.relin);
        let w1 = self.eval_mod.eval_homomorphic(ev, &c1, &keys.relin);

        // 4. SlotToCoeff.
        let (w0, w1) = ev.align_levels(&w0, &w1);
        let z0 = self.stc_e0.eval_bsgs_double_hoisted(ev, enc, &w0, keys, n1);
        let z1 = self.stc_e1.eval_bsgs_double_hoisted(ev, enc, &w1, keys, n1);
        let out = ev.rescale(&ev.add(&z0, &z1));

        // 5. Exact return to the canonical scale.
        ev.rescale_to_exact_scale(&out, delta)
    }

    /// The fftIter-decomposed pipeline: butterfly-factor CoeffToSlot
    /// (leaving bit-reversed order), a conjugation Re/Im split, EvalMod on
    /// both halves, recombination, and butterfly-factor SlotToCoeff (the
    /// bit reversals cancel because EvalMod is slot-pointwise).
    fn bootstrap_decomposed(
        &self,
        ev: &Evaluator<'_>,
        enc: &Encoder<'_>,
        ct: &Ciphertext,
        keys: &KeySet,
    ) -> Ciphertext {
        let delta = self.ctx.params().scale();
        assert!(
            (ct.scale() / delta - 1.0).abs() < 0.01,
            "input scale must be ≈ Δ"
        );
        let n1 = self.config.bsgs_babies;
        let q0 = self.ctx.basis_q(1)[0].modulus().value() as f64;
        let theta = delta / q0;
        let m = self.ctx.slots();

        // 1. ModRaise.
        let raised = self.mod_raise(ct);

        // 2. CoeffToSlot as fftIter sparse factors; θ rides on the first.
        let mut cur = raised;
        for (i, f) in self.cts_factors.iter().enumerate() {
            let mut next = ev.rescale(&f.eval_bsgs_double_hoisted(ev, enc, &cur, keys, n1));
            if i == 0 {
                next.set_scale(next.scale() * theta);
            }
            cur = next;
        }

        // 3. Re/Im split: slots hold w = c_re + i·c_im (bit-reversed).
        let conj = ev.conjugate(&cur, keys);
        let re2 = ev.add(&cur, &conj); // 2·Re(w)
        let im_pre = ev.sub(&conj, &cur); // −2i·Im(w)
        let i_vec = vec![Complex::I; m];
        let pt_i = enc.encode_with_scale(&i_vec, im_pre.level(), delta);
        let im2 = ev.rescale(&ev.mul_plain(&im_pre, &pt_i)); // 2·Im(w)

        // 4. EvalMod on the doubled values (the two halves run at their
        // own levels and are aligned afterwards).
        let w_re = self
            .eval_mod_doubled
            .eval_homomorphic(ev, &re2, &keys.relin);
        let w_im = self
            .eval_mod_doubled
            .eval_homomorphic(ev, &im2, &keys.relin);

        // 5. Recombine: w' = w_re + i·w_im.
        let (w_re, w_im) = ev.align_levels(&w_re, &w_im);
        let pt_i2 = enc.encode_with_scale(&i_vec, w_im.level(), delta);
        let w_im_i = ev.rescale(&ev.mul_plain(&w_im, &pt_i2));
        let (a, b) = ev.align_levels(&w_re, &w_im_i);
        let mut recombined = ev.add(&ev.mod_switch_to(&a, b.level()), &b);

        // 6. SlotToCoeff factors.
        for f in &self.stc_factors {
            recombined = ev.rescale(&f.eval_bsgs_double_hoisted(ev, enc, &recombined, keys, n1));
        }

        // 7. Exact return to the canonical scale.
        ev.rescale_to_exact_scale(&recombined, delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::max_error;
    use crate::keys::KeyGenerator;
    use crate::params::CkksParams;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn bootstrap_params() -> CkksParams {
        // Toy ring degree: functionally complete, *not* secure. The sparse
        // secret (h = 16) keeps the ModRaise bound K small (Table IV uses
        // sparse-secret encapsulation for the same reason).
        CkksParams::builder()
            .log_n(9)
            .levels(16)
            .alpha(4)
            .scale_bits(42)
            .q0_bits(50)
            .p_bits(55)
            .hamming_weight(16)
            .build()
    }

    #[test]
    fn mod_raise_coefficients_shift_by_q0_multiples() {
        // ModRaise changes the plaintext polynomial from p to p + q0·I with
        // a *small integer* polynomial I — a statement about coefficients,
        // not slots (I's evaluations at the roots are not integers).
        let params = bootstrap_params();
        let ctx = CkksContext::new(params);
        let mut rng = StdRng::seed_from_u64(61);
        let keys = KeyGenerator::new(&ctx, &mut rng).generate(&[]);
        let enc = Encoder::new(&ctx);
        let bts = Bootstrapper::new(&ctx, BootstrapConfig::sparse_default());

        let m = ctx.slots();
        let msg: Vec<Complex> = (0..m)
            .map(|i| Complex::new(0.3 - i as f64 * 1e-3, 0.0))
            .collect();
        let ct = keys.public.encrypt(&enc.encode(&msg, 1), &mut rng);
        let raised = bts.mod_raise(&ct);
        assert_eq!(raised.level(), ctx.max_level());

        let q0 = ctx.basis_q(1)[0].modulus().value();
        let delta = ctx.params().scale();
        let p_ref = enc.embed(&msg, delta);

        let mut pt = keys.secret.decrypt(&raised).into_poly();
        pt.to_coeff();
        let crt = ctx.crt(ctx.max_level());
        let cfg = BootstrapConfig::sparse_default();
        for (k, &p_k) in p_ref.iter().enumerate().take(ctx.n()) {
            let residues: Vec<u64> = (0..ctx.max_level()).map(|i| pt.limb(i).data()[k]).collect();
            let v = crt.reconstruct_centered_f64(&residues);
            let r = v - p_k as f64;
            let i_k = (r / q0 as f64).round();
            let noise = (r - i_k * q0 as f64).abs();
            assert!(noise < 2f64.powi(25), "coefficient {k}: noise {noise}");
            assert!(
                i_k.abs() <= cfg.k_bound as f64,
                "|I_{k}| = {i_k} exceeds K = {}",
                cfg.k_bound
            );
        }
    }

    /// The flagship functional test: a full bootstrap at toy parameters.
    #[test]
    fn full_bootstrap_recovers_message_and_levels() {
        let params = bootstrap_params();
        let ctx = CkksContext::new(params);
        let bts = Bootstrapper::new(&ctx, BootstrapConfig::sparse_default());
        let mut rng = StdRng::seed_from_u64(62);
        let rotations = bts.required_rotations();
        let keys = KeyGenerator::new(&ctx, &mut rng).generate(&rotations);
        let enc = Encoder::new(&ctx);
        let ev = Evaluator::new(&ctx);

        let m = ctx.slots();
        let mut rng2 = StdRng::seed_from_u64(63);
        let msg: Vec<Complex> = (0..m)
            .map(|_| Complex::new(rng2.gen_range(-0.5..0.5), rng2.gen_range(-0.5..0.5)))
            .collect();
        // Encrypt at level 1: an exhausted ciphertext.
        let ct = keys.public.encrypt(&enc.encode(&msg, 1), &mut rng);
        assert_eq!(ct.level(), 1);

        let boosted = bts.bootstrap(&ev, &enc, &ct, &keys);
        assert!(
            boosted.level() >= 4,
            "bootstrapping must restore usable levels, got {}",
            boosted.level()
        );
        assert_eq!(boosted.scale(), ctx.params().scale());

        let out = enc.decode(&keys.secret.decrypt(&boosted));
        let err = max_error(&msg, &out);
        assert!(err < 5e-2, "bootstrap error too large: {err}");

        // And the restored ciphertext is actually usable: square it.
        let sq = ev.rescale(&ev.square_relin(&boosted, &keys.relin));
        let out2 = enc.decode(&keys.secret.decrypt(&sq));
        let want2: Vec<Complex> = msg.iter().map(|&z| z * z).collect();
        assert!(max_error(&want2, &out2) < 1e-1);
    }

    #[test]
    fn eval_mod_series_approximates_mod() {
        let params = bootstrap_params();
        let ctx = CkksContext::new(params);
        let bts = Bootstrapper::new(&ctx, BootstrapConfig::sparse_default());
        let q0 = ctx.basis_q(1)[0].modulus().value() as f64;
        let delta = ctx.params().scale();
        // For t = x + I (|x| small, I integer), f(t) ≈ (q0/Δ)·x.
        for i_part in [-8i32, -3, 0, 5, 11] {
            for x in [-0.002f64, 0.0005, 0.0019] {
                let t = x + i_part as f64;
                let got = bts.eval_mod.eval_plain(t);
                let want = q0 / delta * x;
                assert!(
                    (got - want).abs() < 2e-3 * (q0 / delta),
                    "t = {t}: got {got}, want {want}"
                );
            }
        }
    }

    /// The decomposed (fftIter) pipeline must bootstrap correctly too —
    /// this exercises the butterfly factors, the bit-reversal cancellation,
    /// and the Re/Im conjugation split end to end.
    #[test]
    fn decomposed_bootstrap_recovers_message() {
        let params = CkksParams::builder()
            .log_n(9)
            .levels(26)
            .alpha(4)
            .scale_bits(42)
            .q0_bits(50)
            .p_bits(55)
            .hamming_weight(16)
            .build();
        let ctx = CkksContext::new(params);
        let bts = Bootstrapper::new(&ctx, BootstrapConfig::decomposed(3, 3));
        let mut rng = StdRng::seed_from_u64(65);
        let keys = KeyGenerator::new(&ctx, &mut rng).generate(&bts.required_rotations());
        let enc = Encoder::new(&ctx);
        let ev = Evaluator::new(&ctx);

        let m = ctx.slots();
        let mut rng2 = StdRng::seed_from_u64(66);
        let msg: Vec<Complex> = (0..m)
            .map(|_| Complex::new(rng2.gen_range(-0.5..0.5), rng2.gen_range(-0.5..0.5)))
            .collect();
        let ct = keys.public.encrypt(&enc.encode(&msg, 1), &mut rng);
        let boosted = bts.bootstrap(&ev, &enc, &ct, &keys);
        assert!(
            boosted.level() >= 2,
            "decomposed bootstrap must leave usable levels, got {}",
            boosted.level()
        );
        let out = enc.decode(&keys.secret.decrypt(&boosted));
        let err = max_error(&msg, &out);
        assert!(err < 8e-2, "decomposed bootstrap error too large: {err}");
    }

    #[test]
    fn required_rotations_nonempty_and_valid() {
        let params = bootstrap_params();
        let ctx = CkksContext::new(params);
        let bts = Bootstrapper::new(&ctx, BootstrapConfig::sparse_default());
        let rots = bts.required_rotations();
        assert!(!rots.is_empty());
        assert!(rots.iter().all(|&r| r > 0 && (r as usize) < ctx.slots()));
    }
}
