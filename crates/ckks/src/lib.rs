//! The CKKS approximate-homomorphic-encryption scheme (Cheon–Kim–Kim–Song),
//! in its full-RNS form, with everything the Anaheim paper needs:
//!
//! - encoding via the canonical embedding ([`encoding`]),
//! - key generation with gadget-decomposed evaluation keys ([`keys`]),
//! - an evaluation-key working-set cache with seeded runtime regeneration
//!   ([`evkcache`]),
//! - the basic functions HADD / PMULT / HMULT / HROT ([`eval`]),
//! - key switching with ModUp / KeyMult / ModDown and *hoisting*
//!   ([`keyswitch`]),
//! - diagonal-packing homomorphic linear transforms with hoisting, MinKS,
//!   and BSGS ([`lintrans`]),
//! - CKKS bootstrapping: ModRaise → CoeffToSlot → EvalMod → SlotToCoeff
//!   ([`bootstrap`]),
//! - op-count instrumentation used to validate the Anaheim cost model
//!   ([`opcount`]).
//!
//! # Quick start
//!
//! ```
//! use ckks::prelude::*;
//!
//! let params = CkksParams::builder()
//!     .log_n(10)
//!     .levels(4)
//!     .alpha(2)
//!     .scale_bits(40)
//!     .build();
//! let ctx = CkksContext::new(params);
//! let mut rng = rand::thread_rng();
//! let keys = KeyGenerator::new(&ctx, &mut rng).generate(&[1]);
//!
//! let enc = Encoder::new(&ctx);
//! let msg: Vec<Complex> = (0..ctx.slots()).map(|i| Complex::new(i as f64 * 0.001, 0.0)).collect();
//! let pt = enc.encode(&msg, ctx.max_level());
//! let ct = keys.public.encrypt(&pt, &mut rng);
//! let eval = Evaluator::new(&ctx);
//! let ct2 = eval.add(&ct, &ct);
//! let out = enc.decode(&keys.secret.decrypt(&ct2));
//! assert!((out[5].re - 0.010).abs() < 1e-6);
//! ```

pub mod bootstrap;
pub mod chebyshev;
pub mod ciphertext;
pub mod compare;
pub mod complex;
pub mod context;
pub mod encoding;
pub mod eval;
pub mod evkcache;
pub mod keys;
pub mod keyswitch;
pub mod lintrans;
pub mod matrix;
pub mod noise;
pub mod opcount;
pub mod params;
pub mod polyeval;
pub mod serial;
pub mod slots;
pub mod specialfft;

/// Convenience re-exports for typical use.
pub mod prelude {
    pub use crate::ciphertext::{Ciphertext, Plaintext};
    pub use crate::complex::Complex;
    pub use crate::context::CkksContext;
    pub use crate::encoding::Encoder;
    pub use crate::evkcache::{EvkCache, EvkId};
    pub use crate::keys::{KeyGenerator, KeySet, PublicKey, SecretKey};
    pub use crate::params::CkksParams;
    // Filled in as modules land:
    pub use crate::bootstrap::*;
    pub use crate::eval::*;
    pub use crate::lintrans::*;
}
