//! Op-count instrumentation.
//!
//! The Anaheim cost model (in `anaheim-core`) predicts, per CKKS function,
//! how many (I)NTT limb-transforms, BConv limb-pair products, element-wise
//! limb ops, and automorphism limb permutations occur. These counters let us
//! *measure* the same quantities in the functional library and assert the
//! two agree (the validation behind the Fig. 1 table).
//!
//! Counters are **thread-local**: each measurement window (`reset()` …
//! `snapshot()`) only observes work performed on its own thread, so tests
//! running in parallel (the default test harness) cannot perturb each
//! other's counts. All library entry points count on the calling thread.

use std::cell::Cell;

thread_local! {
    static NTT_LIMBS: Cell<u64> = const { Cell::new(0) };
    static INTT_LIMBS: Cell<u64> = const { Cell::new(0) };
    static BCONV_LIMB_PRODUCTS: Cell<u64> = const { Cell::new(0) };
    static EW_LIMB_OPS: Cell<u64> = const { Cell::new(0) };
    static AUTOMORPHISM_LIMBS: Cell<u64> = const { Cell::new(0) };
    static KEYSWITCHES: Cell<u64> = const { Cell::new(0) };
}

/// A snapshot of all counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpCounts {
    /// Forward NTTs, counted per limb.
    pub ntt_limbs: u64,
    /// Inverse NTTs, counted per limb.
    pub intt_limbs: u64,
    /// BConv work, counted as source-limb × target-limb products.
    pub bconv_limb_products: u64,
    /// Element-wise limb operations (add/sub/mult/MAC on a full limb).
    pub ew_limb_ops: u64,
    /// Automorphism applications, counted per limb.
    pub automorphism_limbs: u64,
    /// Number of key-switching operations (ModUp→KeyMult→ModDown bundles).
    pub keyswitches: u64,
}

impl OpCounts {
    /// Total (I)NTT limb count, the headline quantity of the Fig. 1 table.
    pub fn total_ntt_limbs(&self) -> u64 {
        self.ntt_limbs + self.intt_limbs
    }

    /// Difference against an earlier snapshot.
    pub fn since(&self, earlier: &OpCounts) -> OpCounts {
        OpCounts {
            ntt_limbs: self.ntt_limbs - earlier.ntt_limbs,
            intt_limbs: self.intt_limbs - earlier.intt_limbs,
            bconv_limb_products: self.bconv_limb_products - earlier.bconv_limb_products,
            ew_limb_ops: self.ew_limb_ops - earlier.ew_limb_ops,
            automorphism_limbs: self.automorphism_limbs - earlier.automorphism_limbs,
            keyswitches: self.keyswitches - earlier.keyswitches,
        }
    }
}

/// Takes a snapshot of this thread's counters.
pub fn snapshot() -> OpCounts {
    OpCounts {
        ntt_limbs: NTT_LIMBS.get(),
        intt_limbs: INTT_LIMBS.get(),
        bconv_limb_products: BCONV_LIMB_PRODUCTS.get(),
        ew_limb_ops: EW_LIMB_OPS.get(),
        automorphism_limbs: AUTOMORPHISM_LIMBS.get(),
        keyswitches: KEYSWITCHES.get(),
    }
}

/// Resets this thread's counters to zero.
pub fn reset() {
    NTT_LIMBS.set(0);
    INTT_LIMBS.set(0);
    BCONV_LIMB_PRODUCTS.set(0);
    EW_LIMB_OPS.set(0);
    AUTOMORPHISM_LIMBS.set(0);
    KEYSWITCHES.set(0);
}

pub(crate) fn count_ntt(limbs: usize) {
    NTT_LIMBS.set(NTT_LIMBS.get() + limbs as u64);
}

pub(crate) fn count_intt(limbs: usize) {
    INTT_LIMBS.set(INTT_LIMBS.get() + limbs as u64);
}

pub(crate) fn count_bconv(source_limbs: usize, target_limbs: usize) {
    BCONV_LIMB_PRODUCTS.set(BCONV_LIMB_PRODUCTS.get() + (source_limbs * target_limbs) as u64);
}

pub(crate) fn count_ew(limb_ops: usize) {
    EW_LIMB_OPS.set(EW_LIMB_OPS.get() + limb_ops as u64);
}

pub(crate) fn count_automorphism(limbs: usize) {
    AUTOMORPHISM_LIMBS.set(AUTOMORPHISM_LIMBS.get() + limbs as u64);
}

pub(crate) fn count_keyswitch() {
    KEYSWITCHES.set(KEYSWITCHES.get() + 1);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_diff() {
        let before = snapshot();
        count_ntt(3);
        count_intt(2);
        count_bconv(4, 5);
        count_ew(7);
        count_automorphism(2);
        count_keyswitch();
        let after = snapshot();
        let d = after.since(&before);
        assert_eq!(d.ntt_limbs, 3);
        assert_eq!(d.intt_limbs, 2);
        assert_eq!(d.total_ntt_limbs(), 5);
        assert_eq!(d.bconv_limb_products, 20);
        assert_eq!(d.ew_limb_ops, 7);
        assert_eq!(d.automorphism_limbs, 2);
        assert_eq!(d.keyswitches, 1);
    }

    #[test]
    fn counters_are_thread_local() {
        reset();
        count_ntt(5);
        let other = std::thread::spawn(|| {
            count_ntt(1000);
            snapshot().ntt_limbs
        })
        .join()
        .unwrap();
        assert_eq!(other, 1000, "spawned thread sees only its own counts");
        assert_eq!(snapshot().ntt_limbs, 5, "this thread is unperturbed");
    }
}
