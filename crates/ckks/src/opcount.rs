//! Op-count instrumentation.
//!
//! The Anaheim cost model (in `anaheim-core`) predicts, per CKKS function,
//! how many (I)NTT limb-transforms, BConv limb-pair products, element-wise
//! limb ops, and automorphism limb permutations occur. These counters let us
//! *measure* the same quantities in the functional library and assert the
//! two agree (the validation behind the Fig. 1 table).
//!
//! Counters are **thread-local**: each measurement window (`reset()` …
//! `snapshot()`) only observes work performed on its own thread, so tests
//! running in parallel (the default test harness) cannot perturb each
//! other's counts. All library entry points count on the calling thread.
//!
//! Parallel sections route through a [`SharedCounts`] sink: code that fans
//! work out to the `parpool` workers wraps each task in
//! [`SharedCounts::record`] (so counts land in a shared atomic pot instead
//! of a worker's thread-locals) and calls
//! [`SharedCounts::fold_into_local`] after the join. Counts are sums, so
//! the folded totals are identical to a serial run for any thread count.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

thread_local! {
    static NTT_LIMBS: Cell<u64> = const { Cell::new(0) };
    static INTT_LIMBS: Cell<u64> = const { Cell::new(0) };
    static BCONV_LIMB_PRODUCTS: Cell<u64> = const { Cell::new(0) };
    static EW_LIMB_OPS: Cell<u64> = const { Cell::new(0) };
    static AUTOMORPHISM_LIMBS: Cell<u64> = const { Cell::new(0) };
    static KEYSWITCHES: Cell<u64> = const { Cell::new(0) };
    static SINK: RefCell<Option<Arc<SharedCounts>>> = const { RefCell::new(None) };
}

/// A shared accumulator that collects op counts from worker threads during
/// a parallel section, to be folded into the caller's thread-local totals
/// once the section joins.
#[derive(Debug, Default)]
pub struct SharedCounts {
    ntt: AtomicU64,
    intt: AtomicU64,
    bconv: AtomicU64,
    ew: AtomicU64,
    automorphism: AtomicU64,
    keyswitch: AtomicU64,
}

impl SharedCounts {
    /// A fresh, empty sink.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Runs `f` with this thread's counts routed into the shared pot.
    /// Restores the previous routing on exit (including on panic, so pool
    /// workers never leak a stale sink).
    pub fn record<R>(self: &Arc<Self>, f: impl FnOnce() -> R) -> R {
        struct Restore(Option<Arc<SharedCounts>>);
        impl Drop for Restore {
            fn drop(&mut self) {
                SINK.with(|s| *s.borrow_mut() = self.0.take());
            }
        }
        let prev = SINK.with(|s| s.borrow_mut().replace(Arc::clone(self)));
        let _restore = Restore(prev);
        f()
    }

    /// Drains the pot into the calling thread's counters. Call once, after
    /// all recorded tasks have joined.
    pub fn fold_into_local(&self) {
        NTT_LIMBS.set(NTT_LIMBS.get() + self.ntt.swap(0, Ordering::Relaxed));
        INTT_LIMBS.set(INTT_LIMBS.get() + self.intt.swap(0, Ordering::Relaxed));
        BCONV_LIMB_PRODUCTS.set(BCONV_LIMB_PRODUCTS.get() + self.bconv.swap(0, Ordering::Relaxed));
        EW_LIMB_OPS.set(EW_LIMB_OPS.get() + self.ew.swap(0, Ordering::Relaxed));
        AUTOMORPHISM_LIMBS
            .set(AUTOMORPHISM_LIMBS.get() + self.automorphism.swap(0, Ordering::Relaxed));
        KEYSWITCHES.set(KEYSWITCHES.get() + self.keyswitch.swap(0, Ordering::Relaxed));
    }
}

/// Adds `v` to the sink if one is installed on this thread; returns false
/// when the count should go to the plain thread-locals instead.
fn sink_add(pick: impl Fn(&SharedCounts) -> &AtomicU64, v: u64) -> bool {
    SINK.with(|s| match &*s.borrow() {
        Some(sink) => {
            pick(sink).fetch_add(v, Ordering::Relaxed);
            true
        }
        None => false,
    })
}

/// A snapshot of all counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpCounts {
    /// Forward NTTs, counted per limb.
    pub ntt_limbs: u64,
    /// Inverse NTTs, counted per limb.
    pub intt_limbs: u64,
    /// BConv work, counted as source-limb × target-limb products.
    pub bconv_limb_products: u64,
    /// Element-wise limb operations (add/sub/mult/MAC on a full limb).
    pub ew_limb_ops: u64,
    /// Automorphism applications, counted per limb.
    pub automorphism_limbs: u64,
    /// Number of key-switching operations (ModUp→KeyMult→ModDown bundles).
    pub keyswitches: u64,
}

impl OpCounts {
    /// Total (I)NTT limb count, the headline quantity of the Fig. 1 table.
    pub fn total_ntt_limbs(&self) -> u64 {
        self.ntt_limbs + self.intt_limbs
    }

    /// Difference against an earlier snapshot.
    pub fn since(&self, earlier: &OpCounts) -> OpCounts {
        OpCounts {
            ntt_limbs: self.ntt_limbs - earlier.ntt_limbs,
            intt_limbs: self.intt_limbs - earlier.intt_limbs,
            bconv_limb_products: self.bconv_limb_products - earlier.bconv_limb_products,
            ew_limb_ops: self.ew_limb_ops - earlier.ew_limb_ops,
            automorphism_limbs: self.automorphism_limbs - earlier.automorphism_limbs,
            keyswitches: self.keyswitches - earlier.keyswitches,
        }
    }

    /// Exports the counts as `anaheim_fn_op_limbs{op=…}` gauges (absolute
    /// sets, so re-exporting is idempotent). The names match the catalogue
    /// in `docs/METRICS.md`.
    pub fn export(&self, metrics: &mut obs::MetricsRegistry) {
        for (op, v) in [
            ("ntt", self.ntt_limbs),
            ("intt", self.intt_limbs),
            ("bconv", self.bconv_limb_products),
            ("ew", self.ew_limb_ops),
            ("automorphism", self.automorphism_limbs),
            ("keyswitch", self.keyswitches),
        ] {
            metrics.set_gauge("anaheim_fn_op_limbs", &[("op", op)], v as f64);
        }
    }
}

/// Takes a snapshot of this thread's counters.
pub fn snapshot() -> OpCounts {
    OpCounts {
        ntt_limbs: NTT_LIMBS.get(),
        intt_limbs: INTT_LIMBS.get(),
        bconv_limb_products: BCONV_LIMB_PRODUCTS.get(),
        ew_limb_ops: EW_LIMB_OPS.get(),
        automorphism_limbs: AUTOMORPHISM_LIMBS.get(),
        keyswitches: KEYSWITCHES.get(),
    }
}

/// Resets this thread's counters to zero.
pub fn reset() {
    NTT_LIMBS.set(0);
    INTT_LIMBS.set(0);
    BCONV_LIMB_PRODUCTS.set(0);
    EW_LIMB_OPS.set(0);
    AUTOMORPHISM_LIMBS.set(0);
    KEYSWITCHES.set(0);
}

pub(crate) fn count_ntt(limbs: usize) {
    if !sink_add(|s| &s.ntt, limbs as u64) {
        NTT_LIMBS.set(NTT_LIMBS.get() + limbs as u64);
    }
}

pub(crate) fn count_intt(limbs: usize) {
    if !sink_add(|s| &s.intt, limbs as u64) {
        INTT_LIMBS.set(INTT_LIMBS.get() + limbs as u64);
    }
}

pub(crate) fn count_bconv(source_limbs: usize, target_limbs: usize) {
    let v = (source_limbs * target_limbs) as u64;
    if !sink_add(|s| &s.bconv, v) {
        BCONV_LIMB_PRODUCTS.set(BCONV_LIMB_PRODUCTS.get() + v);
    }
}

pub(crate) fn count_ew(limb_ops: usize) {
    if !sink_add(|s| &s.ew, limb_ops as u64) {
        EW_LIMB_OPS.set(EW_LIMB_OPS.get() + limb_ops as u64);
    }
}

pub(crate) fn count_automorphism(limbs: usize) {
    if !sink_add(|s| &s.automorphism, limbs as u64) {
        AUTOMORPHISM_LIMBS.set(AUTOMORPHISM_LIMBS.get() + limbs as u64);
    }
}

pub(crate) fn count_keyswitch() {
    if !sink_add(|s| &s.keyswitch, 1) {
        KEYSWITCHES.set(KEYSWITCHES.get() + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_diff() {
        let before = snapshot();
        count_ntt(3);
        count_intt(2);
        count_bconv(4, 5);
        count_ew(7);
        count_automorphism(2);
        count_keyswitch();
        let after = snapshot();
        let d = after.since(&before);
        assert_eq!(d.ntt_limbs, 3);
        assert_eq!(d.intt_limbs, 2);
        assert_eq!(d.total_ntt_limbs(), 5);
        assert_eq!(d.bconv_limb_products, 20);
        assert_eq!(d.ew_limb_ops, 7);
        assert_eq!(d.automorphism_limbs, 2);
        assert_eq!(d.keyswitches, 1);
    }

    #[test]
    fn sink_folds_worker_counts_into_caller() {
        let before = snapshot();
        let sink = SharedCounts::new();
        // Worker threads record into the sink; their own thread-locals and
        // the caller's stay untouched until the fold.
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = Arc::clone(&sink);
                std::thread::spawn(move || {
                    s.record(|| {
                        count_ntt(3);
                        count_ew(2);
                    });
                    snapshot().ntt_limbs
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 0, "worker thread-locals unperturbed");
        }
        assert_eq!(snapshot().since(&before).ntt_limbs, 0, "not folded yet");
        sink.fold_into_local();
        let d = snapshot().since(&before);
        assert_eq!(d.ntt_limbs, 12);
        assert_eq!(d.ew_limb_ops, 8);
        // A second fold is a no-op (the pot drains on fold).
        sink.fold_into_local();
        assert_eq!(snapshot().since(&before).ntt_limbs, 12);
    }

    #[test]
    fn record_restores_previous_sink_on_panic() {
        let sink = SharedCounts::new();
        let caught = std::panic::catch_unwind(|| sink.record(|| panic!("boom")));
        assert!(caught.is_err());
        // The sink must be uninstalled again: this count goes to the
        // thread-locals, not the pot.
        let before = snapshot();
        count_ntt(1);
        assert_eq!(snapshot().since(&before).ntt_limbs, 1);
    }

    #[test]
    fn export_sets_gauges_idempotently() {
        let counts = OpCounts {
            ntt_limbs: 3,
            ew_limb_ops: 7,
            ..Default::default()
        };
        let mut m = obs::MetricsRegistry::new();
        counts.export(&mut m);
        counts.export(&mut m);
        assert_eq!(
            m.gauge_value("anaheim_fn_op_limbs", &[("op", "ntt")]),
            Some(3.0)
        );
        assert_eq!(
            m.gauge_value("anaheim_fn_op_limbs", &[("op", "ew")]),
            Some(7.0)
        );
    }

    #[test]
    fn counters_are_thread_local() {
        reset();
        count_ntt(5);
        let other = std::thread::spawn(|| {
            count_ntt(1000);
            snapshot().ntt_limbs
        })
        .join()
        .unwrap();
        assert_eq!(other, 1000, "spawned thread sees only its own counts");
        assert_eq!(snapshot().ntt_limbs, 5, "this thread is unperturbed");
    }
}
