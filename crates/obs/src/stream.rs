//! The bounded streaming trace sink.
//!
//! The buffer-everything [`TraceRecorder`] is the right tool for a single
//! workload run, but a million-request soak would grow its span list (and
//! therefore resident memory) without bound. A [`StreamingTraceSink`]
//! fixes the memory side of the contract:
//!
//! - it keeps only the most recent `capacity` spans in a ring (the "rolling
//!   tail" a post-mortem wants), evicting the oldest beyond that;
//! - optionally, it writes every span *incrementally* to a Chrome
//!   `trace_event` JSON stream as it arrives, so the full trace lands on
//!   disk while memory stays bounded;
//! - it counts everything (`accepted`, `evicted`, `written`) so a run can
//!   prove no span was silently lost.
//!
//! Determinism: the sink is plain data plus formatting, like the rest of
//! the crate. Fed the same span sequence, it produces the same ring, the
//! same counters, and the same bytes on the stream. IO errors do not
//! perturb the span accounting: the first error is latched and writing
//! stops, but `push` keeps accepting spans so virtual-time execution is
//! never entangled with filesystem state.

use std::collections::VecDeque;
use std::fmt;
use std::io::{self, Write};

use crate::export::{write_meta_event, write_span_event, CHROME_TRACE_FOOTER, CHROME_TRACE_HEADER};
use crate::span::{Span, TraceRecorder};

/// A bounded ring of recent spans with an optional incremental
/// Chrome-trace writer.
pub struct StreamingTraceSink {
    capacity: usize,
    ring: VecDeque<Span>,
    writer: Option<Box<dyn Write>>,
    /// Tracks seen so far; the index is the Chrome `tid`. `"M"` metadata is
    /// emitted the first time a track appears (legal anywhere in the event
    /// array).
    tracks: Vec<&'static str>,
    started: bool,
    wrote_event: bool,
    finished: bool,
    accepted: u64,
    evicted: u64,
    written: u64,
    io_error: Option<io::Error>,
}

impl fmt::Debug for StreamingTraceSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StreamingTraceSink")
            .field("capacity", &self.capacity)
            .field("ring_len", &self.ring.len())
            .field("has_writer", &self.writer.is_some())
            .field("accepted", &self.accepted)
            .field("evicted", &self.evicted)
            .field("written", &self.written)
            .field("io_error", &self.io_error)
            .finish()
    }
}

impl StreamingTraceSink {
    /// A ring-only sink holding the most recent `capacity` spans (at least
    /// one).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            ring: VecDeque::new(),
            writer: None,
            tracks: Vec::new(),
            started: false,
            wrote_event: false,
            finished: false,
            accepted: 0,
            evicted: 0,
            written: 0,
            io_error: None,
        }
    }

    /// A sink that additionally streams every span to `writer` as Chrome
    /// `trace_event` JSON. Call [`Self::finish`] to emit the closing
    /// bracket.
    pub fn with_writer(capacity: usize, writer: Box<dyn Write>) -> Self {
        Self {
            writer: Some(writer),
            ..Self::new(capacity)
        }
    }

    /// Spans accepted over the sink's lifetime.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Spans evicted from the ring (still on the stream, if one is
    /// attached).
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Events written to the stream (excluding track metadata).
    pub fn written(&self) -> u64 {
        self.written
    }

    /// The rolling tail: the most recent spans, oldest first.
    pub fn recent(&self) -> impl Iterator<Item = &Span> {
        self.ring.iter()
    }

    /// Number of spans currently held in the ring.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when no span has been accepted yet.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// The first IO error hit while streaming, if any. Writing stops at
    /// the first error; span accounting continues regardless.
    pub fn io_error(&self) -> Option<&io::Error> {
        self.io_error.as_ref()
    }

    fn tid_of(&mut self, track: &'static str) -> (usize, bool) {
        match self.tracks.iter().position(|&t| t == track) {
            Some(i) => (i, false),
            None => {
                self.tracks.push(track);
                (self.tracks.len() - 1, true)
            }
        }
    }

    fn write_str(&mut self, s: &str) {
        if self.io_error.is_some() {
            return;
        }
        if let Some(w) = self.writer.as_mut() {
            if let Err(e) = w.write_all(s.as_bytes()) {
                self.io_error = Some(e);
            }
        }
    }

    /// Accepts one span: streams it (if a writer is attached and healthy)
    /// and rotates it into the ring.
    pub fn push(&mut self, span: Span) {
        self.accepted += 1;
        if self.writer.is_some() && !self.finished {
            let (tid, new_track) = self.tid_of(span.track);
            let mut buf = String::new();
            if !self.started {
                buf.push_str(CHROME_TRACE_HEADER);
                self.started = true;
            }
            if new_track {
                if self.wrote_event {
                    buf.push(',');
                }
                self.wrote_event = true;
                write_meta_event(&mut buf, tid, span.track);
            }
            if self.wrote_event {
                buf.push(',');
            }
            self.wrote_event = true;
            write_span_event(&mut buf, &span, tid);
            self.write_str(&buf);
            if self.io_error.is_none() {
                self.written += 1;
            }
        }
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.evicted += 1;
        }
        self.ring.push_back(span);
    }

    /// Drains every completed span out of `rec` into the sink — the
    /// per-request hand-off that keeps the recorder's memory bounded.
    /// Returns how many spans moved.
    pub fn drain_from(&mut self, rec: &mut TraceRecorder) -> usize {
        let spans = rec.drain_completed();
        let n = spans.len();
        for s in spans {
            self.push(s);
        }
        n
    }

    /// Closes the JSON stream (idempotent). Flushes the writer. Returns
    /// the first IO error hit over the sink's lifetime, if any — the one
    /// place stream health surfaces to the caller.
    pub fn finish(&mut self) -> io::Result<()> {
        if !self.finished {
            self.finished = true;
            if self.writer.is_some() {
                if !self.started {
                    self.write_str(CHROME_TRACE_HEADER);
                    self.started = true;
                }
                self.write_str(CHROME_TRACE_FOOTER);
            }
            if self.io_error.is_none() {
                if let Some(w) = self.writer.as_mut() {
                    if let Err(e) = w.flush() {
                        self.io_error = Some(e);
                    }
                }
            }
        }
        match &self.io_error {
            Some(e) => Err(io::Error::new(e.kind(), e.to_string())),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    fn span(rec: &mut TraceRecorder, name: &str, track: &'static str, t: f64) -> Span {
        rec.leaf(name, "c", track, t, t + 1.0, vec![]);
        rec.drain_completed().pop().unwrap()
    }

    /// A writer whose buffer the test can inspect after the sink owns it.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);
    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn ring_bounds_memory_and_counts_evictions() {
        let mut rec = TraceRecorder::new(1);
        let mut sink = StreamingTraceSink::new(3);
        for i in 0..10 {
            let s = span(&mut rec, &format!("s{i}"), "GPU", i as f64);
            sink.push(s);
        }
        assert_eq!(sink.accepted(), 10);
        assert_eq!(sink.evicted(), 7);
        assert_eq!(sink.len(), 3);
        let names: Vec<&str> = sink.recent().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["s7", "s8", "s9"], "rolling tail keeps newest");
        assert_eq!(sink.written(), 0, "no writer attached");
    }

    #[test]
    fn incremental_stream_is_valid_chrome_trace() {
        let buf = SharedBuf::default();
        let mut rec = TraceRecorder::new(7);
        let mut sink = StreamingTraceSink::with_writer(2, Box::new(buf.clone()));
        for (i, track) in [(0, "GPU"), (1, "PIM"), (2, "GPU")] {
            let s = span(&mut rec, &format!("k{i}"), track, i as f64);
            sink.push(s);
        }
        sink.finish().unwrap();
        sink.finish().unwrap(); // idempotent
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert!(text.starts_with(CHROME_TRACE_HEADER));
        assert!(text.ends_with(CHROME_TRACE_FOOTER));
        // Track metadata appears once per track, before that track's first
        // event; all three events made it out even though the ring holds 2.
        assert_eq!(text.matches("\"ph\":\"M\"").count(), 2);
        assert_eq!(text.matches("\"ph\":\"X\"").count(), 3);
        assert_eq!(sink.written(), 3);
        assert_eq!(sink.evicted(), 1);
        // Structural sanity: it parses as balanced JSON-ish framing (no
        // trailing comma before the footer).
        assert!(!text.contains(",]"));
    }

    #[test]
    fn drain_from_moves_completed_spans() {
        let mut rec = TraceRecorder::new(3);
        let mut sink = StreamingTraceSink::new(8);
        let seg = rec.open("seg", "segment", "serving", 0.0);
        rec.leaf("k", "c", "GPU", 0.0, 1.0, vec![]);
        assert_eq!(sink.drain_from(&mut rec), 0, "open segment pins its tail");
        rec.close(seg, 2.0);
        assert_eq!(sink.drain_from(&mut rec), 2);
        assert!(rec.is_empty());
        assert_eq!(sink.accepted(), 2);
    }

    #[test]
    fn io_error_is_latched_not_fatal() {
        struct Failing;
        impl Write for Failing {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("disk full"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut rec = TraceRecorder::new(1);
        let mut sink = StreamingTraceSink::with_writer(2, Box::new(Failing));
        let s = span(&mut rec, "a", "GPU", 0.0);
        sink.push(s);
        let s = span(&mut rec, "b", "GPU", 1.0);
        sink.push(s);
        assert_eq!(sink.accepted(), 2, "accounting survives the dead stream");
        assert!(sink.io_error().is_some());
        assert!(sink.finish().is_err());
    }
}
