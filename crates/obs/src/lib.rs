//! `obs` — the vendored, zero-dependency observability subsystem.
//!
//! The paper's argument is quantitative — element-wise kernels are
//! bandwidth-bound while (I)NTT/BConv are compute-bound (§IV), and the PIM
//! win is argued bytes-moved-by-bytes-moved — so the reproduction needs to
//! show *where* virtual time and DRAM traffic go inside a run, not just
//! end-to-end aggregates. This crate provides the three pieces every layer
//! above records into:
//!
//! - [`span`] — hierarchical spans stamped in the **virtual-time domain**
//!   of the scheduler (segment → kernel → limb batch). Span ids come from
//!   a seeded SplitMix64 stream, never a wall clock or thread id, so two
//!   runs of the same workload produce byte-identical traces regardless of
//!   `ANAHEIM_THREADS`.
//! - [`metrics`] — a [`MetricsRegistry`] of typed counters, gauges, and
//!   fixed-bucket histograms keyed by (name, sorted labels). All storage is
//!   `BTreeMap`-ordered, so rendering is deterministic.
//! - [`export`] — two renderers: Prometheus text exposition
//!   ([`MetricsRegistry::render_prometheus`]) and Chrome `trace_event`
//!   JSON ([`export::chrome_trace_json`]) that loads directly in
//!   Perfetto / `chrome://tracing`.
//! - [`stream`] — a bounded [`StreamingTraceSink`] (rolling ring of recent
//!   spans + incremental Chrome-trace writing) so arbitrarily long runs —
//!   the million-request chaos soak — keep trace memory constant.
//!
//! The crate is dependency-free and knows nothing about FHE: the metric
//! and span *names* used by the Anaheim stack are catalogued in
//! `docs/METRICS.md`, and the glue lives in `anaheim_core::telemetry`.
//!
//! # Determinism contract
//!
//! Everything here is plain data plus arithmetic: no wall clock, no thread
//! identity, no randomness beyond the caller-provided span-id seed. A
//! recorder fed the same sequence of calls produces the same bytes from
//! both exporters. The layers above uphold their half of the contract by
//! only recording from serial (virtual-time-ordered) code paths.

pub mod export;
pub mod metrics;
pub mod span;
pub mod stream;

pub use metrics::{Histogram, MetricKind, MetricsRegistry};
pub use span::{ArgValue, Span, SpanId, TraceRecorder};
pub use stream::StreamingTraceSink;
