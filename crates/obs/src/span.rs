//! Hierarchical virtual-time spans.
//!
//! A [`TraceRecorder`] is an append-only list of [`Span`]s plus an open-span
//! stack. The recorder never looks at a wall clock: every timestamp is a
//! virtual-time nanosecond value supplied by the caller (the scheduler's
//! `now`, the serving layer's lane clock), offset by a caller-controlled
//! base so that spans from consecutive runs line up on one global timeline.
//!
//! Span ids are drawn from a seeded SplitMix64 stream keyed on the span's
//! sequence number — stable across runs and thread counts, and useful as a
//! correlation key in exported traces.

/// A span identifier: deterministic, derived from (recorder seed, sequence
/// number). Never a pointer, wall-clock, or thread-derived value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u64);

/// A typed span/argument value, kept closed so exporters can render every
/// variant deterministically.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// Unsigned integer payload (byte counts, op counts).
    U64(u64),
    /// Signed integer payload.
    I64(i64),
    /// Floating payload (durations, fractions).
    F64(f64),
    /// Boolean flag (e.g. `bandwidth_bound`, `degraded`).
    Bool(bool),
    /// Short string payload (instruction mnemonics, outcome labels).
    Str(String),
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}
impl From<i64> for ArgValue {
    fn from(v: i64) -> Self {
        ArgValue::I64(v)
    }
}
impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::F64(v)
    }
}
impl From<bool> for ArgValue {
    fn from(v: bool) -> Self {
        ArgValue::Bool(v)
    }
}
impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_string())
    }
}
impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}

/// One recorded span on the virtual timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Seeded deterministic id.
    pub id: SpanId,
    /// Enclosing span at the time this one was recorded, if any.
    pub parent: Option<SpanId>,
    /// Human-readable name (op label, request label, segment name).
    pub name: String,
    /// Category — the kernel-class vocabulary of the scheduler
    /// (`"(I)NTT"`, `"element-wise"`, …) or a layer name (`"serving"`).
    pub cat: &'static str,
    /// Display track (Perfetto thread): `"GPU"`, `"PIM"`, `"serving"`, …
    pub track: &'static str,
    /// Start, in virtual nanoseconds (base-offset applied).
    pub start_ns: f64,
    /// End, in virtual nanoseconds (base-offset applied).
    pub end_ns: f64,
    /// Typed key/value annotations.
    pub args: Vec<(&'static str, ArgValue)>,
}

impl Span {
    /// Span duration in virtual nanoseconds.
    pub fn duration_ns(&self) -> f64 {
        self.end_ns - self.start_ns
    }
}

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic span recorder: an append-only span list plus a stack of
/// open spans that establishes parent/child structure.
#[derive(Debug, Clone, Default)]
pub struct TraceRecorder {
    seed: u64,
    next_seq: u64,
    base_ns: f64,
    spans: Vec<Span>,
    /// Indices into `spans` of the currently open spans, outermost first.
    stack: Vec<usize>,
}

impl TraceRecorder {
    /// A recorder whose span ids are drawn from `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// Sets the virtual-time base added to every subsequent timestamp.
    /// Callers running several virtual-time-zero schedules back to back
    /// (workload segments, serving requests) bump this so the exported
    /// timeline is globally ordered.
    pub fn set_base_ns(&mut self, base_ns: f64) {
        self.base_ns = base_ns;
    }

    /// The current virtual-time base.
    pub fn base_ns(&self) -> f64 {
        self.base_ns
    }

    fn next_id(&mut self) -> SpanId {
        let id = SpanId(splitmix64(
            self.seed
                .wrapping_add(self.next_seq.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        ));
        self.next_seq += 1;
        id
    }

    fn current_parent(&self) -> Option<SpanId> {
        self.stack.last().map(|&i| self.spans[i].id)
    }

    /// Opens a span at virtual time `start_ns` (base applied) and makes it
    /// the parent of spans recorded until it is closed.
    pub fn open(
        &mut self,
        name: impl Into<String>,
        cat: &'static str,
        track: &'static str,
        start_ns: f64,
    ) -> SpanId {
        let id = self.next_id();
        let parent = self.current_parent();
        self.spans.push(Span {
            id,
            parent,
            name: name.into(),
            cat,
            track,
            start_ns: self.base_ns + start_ns,
            end_ns: f64::NAN,
            args: Vec::new(),
        });
        self.stack.push(self.spans.len() - 1);
        id
    }

    /// Closes the innermost open span, which must be `id`, at virtual time
    /// `end_ns` (base applied).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not the innermost open span — mis-nested spans are
    /// a recording bug, not a runtime condition.
    pub fn close(&mut self, id: SpanId, end_ns: f64) {
        let idx = self.stack.pop().expect("close without an open span");
        assert_eq!(self.spans[idx].id, id, "spans must close innermost-first");
        self.spans[idx].end_ns = self.base_ns + end_ns;
    }

    /// Adds a typed argument to an open or closed span.
    pub fn annotate(&mut self, id: SpanId, key: &'static str, value: impl Into<ArgValue>) {
        if let Some(s) = self.spans.iter_mut().rev().find(|s| s.id == id) {
            s.args.push((key, value.into()));
        }
    }

    /// Records a complete (leaf) span under the currently open span.
    pub fn leaf(
        &mut self,
        name: impl Into<String>,
        cat: &'static str,
        track: &'static str,
        start_ns: f64,
        end_ns: f64,
        args: Vec<(&'static str, ArgValue)>,
    ) -> SpanId {
        let id = self.next_id();
        let parent = self.current_parent();
        self.spans.push(Span {
            id,
            parent,
            name: name.into(),
            cat,
            track,
            start_ns: self.base_ns + start_ns,
            end_ns: self.base_ns + end_ns,
            args,
        });
        id
    }

    /// All recorded spans, in recording order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Removes and returns every *completed* span, leaving open spans (and
    /// the id stream, seed, and base) untouched — the hand-off point for a
    /// streaming sink that bounds recorder memory over long runs. Spans
    /// recorded before the outermost still-open span are drained; the open
    /// tail stays so parent/child structure keeps working.
    pub fn drain_completed(&mut self) -> Vec<Span> {
        let keep_from = self.stack.first().copied().unwrap_or(self.spans.len());
        let drained: Vec<Span> = self.spans.drain(..keep_from).collect();
        for idx in &mut self.stack {
            *idx -= keep_from;
        }
        drained
    }

    /// Number of recorded spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Number of spans still open (should be 0 at export time).
    pub fn open_spans(&self) -> usize {
        self.stack.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_establishes_parents() {
        let mut t = TraceRecorder::new(1);
        let a = t.open("segment", "segment", "GPU", 0.0);
        let b = t.leaf("kernel", "(I)NTT", "GPU", 0.0, 5.0, vec![]);
        t.close(a, 10.0);
        let c = t.leaf("after", "element-wise", "GPU", 10.0, 12.0, vec![]);
        let spans = t.spans();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].id, a);
        assert_eq!(spans[0].parent, None);
        assert_eq!(spans[1].id, b);
        assert_eq!(spans[1].parent, Some(a));
        assert_eq!(spans[2].id, c);
        assert_eq!(spans[2].parent, None);
        assert_eq!(t.open_spans(), 0);
    }

    #[test]
    fn ids_are_seeded_and_reproducible() {
        let run = |seed| {
            let mut t = TraceRecorder::new(seed);
            let a = t.open("x", "c", "GPU", 0.0);
            t.close(a, 1.0);
            let b = t.leaf("y", "c", "GPU", 1.0, 2.0, vec![]);
            (a, b)
        };
        assert_eq!(run(7), run(7), "same seed, same ids");
        assert_ne!(run(7).0, run(8).0, "different seed, different ids");
    }

    #[test]
    fn base_offsets_timestamps() {
        let mut t = TraceRecorder::new(0);
        t.set_base_ns(1000.0);
        let id = t.leaf("k", "c", "PIM", 5.0, 7.0, vec![]);
        let s = &t.spans()[0];
        assert_eq!(s.id, id);
        assert_eq!(s.start_ns, 1005.0);
        assert_eq!(s.end_ns, 1007.0);
        assert_eq!(s.duration_ns(), 2.0);
    }

    #[test]
    #[should_panic(expected = "innermost-first")]
    fn misnested_close_panics() {
        let mut t = TraceRecorder::new(0);
        let a = t.open("a", "c", "GPU", 0.0);
        let _b = t.open("b", "c", "GPU", 0.0);
        t.close(a, 1.0);
    }

    #[test]
    fn drain_completed_preserves_open_spans_and_id_stream() {
        let mut t = TraceRecorder::new(5);
        // Reference run: ids with no draining.
        let mut r = TraceRecorder::new(5);
        let ids: Vec<SpanId> = (0..4)
            .map(|i| r.leaf("k", "c", "GPU", i as f64, i as f64, vec![]))
            .collect();

        let a = t.leaf("k", "c", "GPU", 0.0, 0.0, vec![]);
        assert_eq!(a, ids[0]);
        let drained = t.drain_completed();
        assert_eq!(drained.len(), 1);
        assert!(t.is_empty());
        // The id stream continues where it left off.
        let seg = t.open("seg", "segment", "GPU", 1.0);
        assert_eq!(seg, ids[1]);
        let child = t.leaf("k", "c", "GPU", 1.0, 1.0, vec![]);
        assert_eq!(child, ids[2]);
        // Draining with an open span keeps the open tail (and its child,
        // recorded after it) in place.
        let drained = t.drain_completed();
        assert!(drained.is_empty(), "nothing before the open span");
        assert_eq!(t.len(), 2);
        t.close(seg, 2.0);
        let after = t.leaf("k", "c", "GPU", 2.0, 2.0, vec![]);
        assert_eq!(after, ids[3]);
        assert_eq!(t.drain_completed().len(), 3);
        assert_eq!(t.open_spans(), 0);
    }

    #[test]
    fn annotate_appends_args() {
        let mut t = TraceRecorder::new(0);
        let id = t.leaf("k", "c", "GPU", 0.0, 1.0, vec![("bytes", 7u64.into())]);
        t.annotate(id, "degraded", true);
        let s = &t.spans()[0];
        assert_eq!(s.args.len(), 2);
        assert_eq!(s.args[1], ("degraded", ArgValue::Bool(true)));
    }
}
