//! Exporters: Chrome `trace_event` JSON (Perfetto-loadable).
//!
//! The Prometheus text renderer lives on
//! [`MetricsRegistry::render_prometheus`](crate::MetricsRegistry::render_prometheus);
//! this module holds the trace exporter, which is pure formatting over a
//! [`TraceRecorder`] — deterministic because the recorder is.

use crate::span::{ArgValue, TraceRecorder};
use std::fmt::Write as _;

/// Renders a recorder as Chrome `trace_event` JSON (the "JSON Object
/// Format"): a `traceEvents` array of `"X"` complete events, one per span,
/// preceded by `"M"` thread-name metadata that maps each display track to a
/// Perfetto-visible thread. Timestamps are microseconds (`ts`/`dur`), so
/// virtual nanoseconds are divided by 1000; sub-nanosecond precision
/// survives as fractional microseconds.
///
/// ```
/// use obs::{export::chrome_trace_json, TraceRecorder};
///
/// let mut t = TraceRecorder::new(42);
/// let seg = t.open("boot", "segment", "GPU", 0.0);
/// t.leaf("ntt", "(I)NTT", "GPU", 0.0, 2000.0, vec![("limbs", 24u64.into())]);
/// t.close(seg, 2500.0);
///
/// let json = chrome_trace_json(&t);
/// assert!(json.starts_with("{\"displayTimeUnit\":\"ns\",\"traceEvents\":["));
/// assert!(json.contains("\"ph\":\"M\""));
/// assert!(json.contains("\"name\":\"ntt\""));
/// assert!(json.contains("\"limbs\":24"));
/// ```
pub fn chrome_trace_json(rec: &TraceRecorder) -> String {
    let mut out = String::from(CHROME_TRACE_HEADER);
    let mut first = true;

    // One metadata event per track, in first-appearance order; the tid
    // given here is what the "X" events below reference.
    let mut tracks: Vec<&'static str> = Vec::new();
    for s in rec.spans() {
        if !tracks.contains(&s.track) {
            tracks.push(s.track);
        }
    }
    for (tid, track) in tracks.iter().enumerate() {
        if !first {
            out.push(',');
        }
        first = false;
        write_meta_event(&mut out, tid, track);
    }

    for s in rec.spans() {
        if !first {
            out.push(',');
        }
        first = false;
        let tid = tracks.iter().position(|&t| t == s.track).unwrap_or(0);
        write_span_event(&mut out, s, tid);
    }

    out.push_str(CHROME_TRACE_FOOTER);
    out
}

/// The opening of the Chrome "JSON Object Format" document, shared with the
/// streaming sink so both emit the same framing.
pub(crate) const CHROME_TRACE_HEADER: &str = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";

/// The closing of the Chrome trace document.
pub(crate) const CHROME_TRACE_FOOTER: &str = "]}";

/// Appends one `"M"` thread-name metadata event mapping `tid` to `track`.
pub(crate) fn write_meta_event(out: &mut String, tid: usize, track: &str) {
    let _ = write!(
        out,
        "{{\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\"name\":\"thread_name\",\
         \"args\":{{\"name\":{}}}}}",
        json_string(track)
    );
}

/// Appends one `"X"` complete event for `s` on thread `tid`.
pub(crate) fn write_span_event(out: &mut String, s: &crate::span::Span, tid: usize) {
    let ts = s.start_ns / 1000.0;
    let dur = (s.end_ns - s.start_ns).max(0.0) / 1000.0;
    let _ = write!(
        out,
        "{{\"ph\":\"X\",\"pid\":0,\"tid\":{tid},\"name\":{},\"cat\":{},\
         \"ts\":{},\"dur\":{},\"id\":\"0x{:x}\"",
        json_string(&s.name),
        json_string(s.cat),
        json_number(ts),
        json_number(dur),
        s.id.0,
    );
    out.push_str(",\"args\":{");
    if let Some(p) = s.parent {
        let _ = write!(out, "\"parent\":\"0x{:x}\"", p.0);
    }
    for (i, (k, v)) in s.args.iter().enumerate() {
        if i > 0 || s.parent.is_some() {
            out.push(',');
        }
        let _ = write!(out, "{}:{}", json_string(k), render_arg(v));
    }
    out.push_str("}}");
}

fn render_arg(v: &ArgValue) -> String {
    match v {
        ArgValue::U64(x) => x.to_string(),
        ArgValue::I64(x) => x.to_string(),
        ArgValue::F64(x) => json_number(*x),
        ArgValue::Bool(x) => x.to_string(),
        ArgValue::Str(x) => json_string(x),
    }
}

/// Formats an f64 as a JSON-legal number (no NaN/Inf, no `1e5` for small
/// magnitudes that Rust would already render plainly).
fn json_number(v: f64) -> String {
    if !v.is_finite() {
        return "0".to_string();
    }
    let s = format!("{v}");
    // Rust's shortest-roundtrip output is JSON-compatible (it never emits
    // a bare `.5` or trailing `.`), including exponent forms like `1e20`.
    s
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceRecorder;

    fn sample() -> TraceRecorder {
        let mut t = TraceRecorder::new(9);
        let seg = t.open("segment0", "segment", "GPU", 0.0);
        t.leaf(
            "HMult",
            "element-wise",
            "GPU",
            0.0,
            1500.0,
            vec![("bytes", 4096u64.into()), ("degraded", false.into())],
        );
        t.close(seg, 2000.0);
        t.leaf("bconv", "BConv", "PIM", 2000.0, 3000.0, vec![]);
        t
    }

    #[test]
    fn emits_metadata_per_track_in_first_appearance_order() {
        let json = chrome_trace_json(&sample());
        let gpu = json.find("\"args\":{\"name\":\"GPU\"}").unwrap();
        let pim = json.find("\"args\":{\"name\":\"PIM\"}").unwrap();
        assert!(gpu < pim);
        assert!(json.contains("\"ph\":\"M\",\"pid\":0,\"tid\":0"));
        assert!(json.contains("\"ph\":\"M\",\"pid\":0,\"tid\":1"));
    }

    #[test]
    fn timestamps_are_microseconds() {
        let json = chrome_trace_json(&sample());
        assert!(
            json.contains("\"ts\":0,\"dur\":1.5"),
            "1500 ns = 1.5 us: {json}"
        );
        assert!(
            json.contains("\"ts\":2,\"dur\":1"),
            "PIM span at 2 us: {json}"
        );
    }

    #[test]
    fn parent_ids_appear_in_args() {
        let t = sample();
        let seg_id = t.spans()[0].id.0;
        let json = chrome_trace_json(&t);
        assert!(json.contains(&format!("\"parent\":\"0x{seg_id:x}\"")));
    }

    #[test]
    fn output_is_reproducible() {
        assert_eq!(chrome_trace_json(&sample()), chrome_trace_json(&sample()));
    }

    #[test]
    fn strings_are_escaped() {
        let mut t = TraceRecorder::new(0);
        t.leaf("a\"b\n", "c", "GPU", 0.0, 1.0, vec![("s", "x\ty".into())]);
        let json = chrome_trace_json(&t);
        assert!(json.contains("\"name\":\"a\\\"b\\n\""));
        assert!(json.contains("\"s\":\"x\\ty\""));
    }
}
