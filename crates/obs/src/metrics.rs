//! The typed metrics registry: counters, gauges, fixed-bucket histograms.
//!
//! Series are keyed by `(name, sorted labels)` in `BTreeMap`s, so iteration
//! — and therefore the Prometheus text rendering — is deterministic. Every
//! metric can carry HELP text and a unit via the `describe_*` methods; the
//! Anaheim metric catalogue (names, units, and the paper table/figure each
//! one reproduces) lives in `docs/METRICS.md`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// What kind of series a name holds (one name = one kind).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone sum (`u64`).
    Counter,
    /// Last-write-wins value (`f64`).
    Gauge,
    /// Fixed-bucket distribution.
    Histogram,
}

impl MetricKind {
    fn prometheus_type(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

#[derive(Debug, Clone)]
struct MetricDesc {
    help: &'static str,
    unit: &'static str,
    kind: MetricKind,
    bounds: Option<&'static [f64]>,
}

/// A series key: metric name plus sorted label pairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct SeriesKey {
    name: &'static str,
    labels: Vec<(&'static str, String)>,
}

impl SeriesKey {
    fn new(name: &'static str, labels: &[(&'static str, &str)]) -> Self {
        assert_valid_metric_name(name);
        let mut labels: Vec<(&'static str, String)> = labels
            .iter()
            .map(|(k, v)| {
                assert_valid_label_name(k);
                (*k, (*v).to_string())
            })
            .collect();
        labels.sort();
        Self { name, labels }
    }
}

/// Validates a Prometheus metric name (`[a-zA-Z_:][a-zA-Z0-9_:]*`). Names
/// are compile-time constants, so a violation is a programming error and
/// panics rather than producing an exposition no scraper can parse.
fn assert_valid_metric_name(name: &str) {
    let ok = !name.is_empty()
        && name.bytes().enumerate().all(|(i, b)| {
            b.is_ascii_alphabetic() || b == b'_' || b == b':' || (i > 0 && b.is_ascii_digit())
        });
    assert!(ok, "invalid Prometheus metric name: {name:?}");
}

/// Validates a Prometheus label name (`[a-zA-Z_][a-zA-Z0-9_]*`; colons are
/// metric-name-only).
fn assert_valid_label_name(name: &str) {
    let ok = !name.is_empty()
        && name
            .bytes()
            .enumerate()
            .all(|(i, b)| b.is_ascii_alphabetic() || b == b'_' || (i > 0 && b.is_ascii_digit()));
    assert!(ok, "invalid Prometheus label name: {name:?}");
}

/// Default histogram bounds for virtual-time durations in nanoseconds:
/// decades from 100 ns to 10 s.
pub const DEFAULT_NS_BOUNDS: &[f64] = &[1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10];

/// A fixed-bucket histogram (cumulative-bucket Prometheus semantics).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// `counts[i]` = observations `<= bounds[i]`; the last entry is +Inf.
    counts: Vec<u64>,
    sum: f64,
    count: u64,
}

impl Histogram {
    /// An empty histogram over `bounds` (ascending upper bounds; a +Inf
    /// bucket is implicit).
    pub fn new(bounds: &[f64]) -> Self {
        Self {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            count: 0,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum += v;
        self.count += 1;
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }
}

/// The registry: typed series with deterministic rendering.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    descs: BTreeMap<&'static str, MetricDesc>,
    counters: BTreeMap<SeriesKey, u64>,
    gauges: BTreeMap<SeriesKey, f64>,
    histograms: BTreeMap<SeriesKey, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    ///
    /// ```
    /// use obs::MetricsRegistry;
    ///
    /// let mut m = MetricsRegistry::new();
    /// m.describe_counter("requests_total", "Requests served", "requests");
    /// m.inc("requests_total", &[("outcome", "ok")], 3);
    /// m.set_gauge("queue_depth", &[], 2.0);
    ///
    /// let text = m.render_prometheus();
    /// assert!(text.contains("# TYPE requests_total counter"));
    /// assert!(text.contains("requests_total{outcome=\"ok\"} 3"));
    /// assert!(text.contains("queue_depth 2"));
    /// assert_eq!(m.counter_value("requests_total", &[("outcome", "ok")]), 3);
    /// ```
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers HELP/unit metadata for a counter.
    ///
    /// # Panics
    ///
    /// Panics on an invalid Prometheus metric name (as do all the
    /// recording methods): names are `'static` programmer input, and an
    /// invalid one would render an exposition no scraper can parse.
    pub fn describe_counter(&mut self, name: &'static str, help: &'static str, unit: &'static str) {
        assert_valid_metric_name(name);
        self.descs.insert(
            name,
            MetricDesc {
                help,
                unit,
                kind: MetricKind::Counter,
                bounds: None,
            },
        );
    }

    /// Registers HELP/unit metadata for a gauge.
    pub fn describe_gauge(&mut self, name: &'static str, help: &'static str, unit: &'static str) {
        assert_valid_metric_name(name);
        self.descs.insert(
            name,
            MetricDesc {
                help,
                unit,
                kind: MetricKind::Gauge,
                bounds: None,
            },
        );
    }

    /// Registers HELP/unit metadata and bucket bounds for a histogram.
    pub fn describe_histogram(
        &mut self,
        name: &'static str,
        help: &'static str,
        unit: &'static str,
        bounds: &'static [f64],
    ) {
        assert_valid_metric_name(name);
        self.descs.insert(
            name,
            MetricDesc {
                help,
                unit,
                kind: MetricKind::Histogram,
                bounds: Some(bounds),
            },
        );
    }

    /// Adds `delta` to a counter series.
    pub fn inc(&mut self, name: &'static str, labels: &[(&'static str, &str)], delta: u64) {
        *self
            .counters
            .entry(SeriesKey::new(name, labels))
            .or_insert(0) += delta;
    }

    /// Sets a counter series to an absolute value — for exporting an
    /// externally-accumulated monotone count (e.g. a
    /// `HealthCounters` snapshot) idempotently.
    pub fn set_counter(&mut self, name: &'static str, labels: &[(&'static str, &str)], v: u64) {
        self.counters.insert(SeriesKey::new(name, labels), v);
    }

    /// Sets a gauge series.
    pub fn set_gauge(&mut self, name: &'static str, labels: &[(&'static str, &str)], v: f64) {
        self.gauges.insert(SeriesKey::new(name, labels), v);
    }

    /// Adds `delta` to a gauge series (for fractional accumulations like
    /// backoff nanoseconds).
    pub fn add_gauge(&mut self, name: &'static str, labels: &[(&'static str, &str)], delta: f64) {
        *self
            .gauges
            .entry(SeriesKey::new(name, labels))
            .or_insert(0.0) += delta;
    }

    /// Raises a gauge series to `v` if `v` is larger (high-water marks).
    pub fn max_gauge(&mut self, name: &'static str, labels: &[(&'static str, &str)], v: f64) {
        let e = self
            .gauges
            .entry(SeriesKey::new(name, labels))
            .or_insert(f64::NEG_INFINITY);
        if v > *e {
            *e = v;
        }
    }

    /// Records an observation into a histogram series. Bounds come from
    /// [`Self::describe_histogram`], defaulting to [`DEFAULT_NS_BOUNDS`].
    pub fn observe(&mut self, name: &'static str, labels: &[(&'static str, &str)], v: f64) {
        let bounds = self
            .descs
            .get(name)
            .and_then(|d| d.bounds)
            .unwrap_or(DEFAULT_NS_BOUNDS);
        self.histograms
            .entry(SeriesKey::new(name, labels))
            .or_insert_with(|| Histogram::new(bounds))
            .observe(v);
    }

    /// Reads a counter series (0 when absent) — for tests and report glue.
    pub fn counter_value(&self, name: &'static str, labels: &[(&'static str, &str)]) -> u64 {
        self.counters
            .get(&SeriesKey::new(name, labels))
            .copied()
            .unwrap_or(0)
    }

    /// Reads a gauge series, if set.
    pub fn gauge_value(&self, name: &'static str, labels: &[(&'static str, &str)]) -> Option<f64> {
        self.gauges.get(&SeriesKey::new(name, labels)).copied()
    }

    /// Reads a histogram series, if any observation was recorded.
    pub fn histogram(
        &self,
        name: &'static str,
        labels: &[(&'static str, &str)],
    ) -> Option<&Histogram> {
        self.histograms.get(&SeriesKey::new(name, labels))
    }

    fn kind_of(&self, name: &str, fallback: MetricKind) -> MetricKind {
        self.descs.get(name).map(|d| d.kind).unwrap_or(fallback)
    }

    fn render_header(&self, out: &mut String, name: &str, fallback: MetricKind) {
        if let Some(d) = self.descs.get(name) {
            if d.unit.is_empty() {
                let _ = writeln!(out, "# HELP {name} {}", d.help);
            } else {
                let _ = writeln!(out, "# HELP {name} {} (unit: {})", d.help, d.unit);
            }
        }
        let _ = writeln!(
            out,
            "# TYPE {name} {}",
            self.kind_of(name, fallback).prometheus_type()
        );
    }

    /// Renders the Prometheus text exposition format. Deterministic:
    /// series are emitted in `BTreeMap` order, floats via Rust's
    /// shortest-roundtrip formatting.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_name = "";
        for (k, v) in &self.counters {
            if k.name != last_name {
                self.render_header(&mut out, k.name, MetricKind::Counter);
                last_name = k.name;
            }
            let _ = writeln!(out, "{}{} {v}", k.name, render_labels(&k.labels, None));
        }
        last_name = "";
        for (k, v) in &self.gauges {
            if k.name != last_name {
                self.render_header(&mut out, k.name, MetricKind::Gauge);
                last_name = k.name;
            }
            let _ = writeln!(out, "{}{} {v}", k.name, render_labels(&k.labels, None));
        }
        last_name = "";
        for (k, h) in &self.histograms {
            if k.name != last_name {
                self.render_header(&mut out, k.name, MetricKind::Histogram);
                last_name = k.name;
            }
            let mut cumulative = 0u64;
            for (i, c) in h.counts.iter().enumerate() {
                cumulative += c;
                let le = if i < h.bounds.len() {
                    format!("{}", h.bounds[i])
                } else {
                    "+Inf".to_string()
                };
                let _ = writeln!(
                    out,
                    "{}_bucket{} {cumulative}",
                    k.name,
                    render_labels(&k.labels, Some(&le))
                );
            }
            let _ = writeln!(
                out,
                "{}_sum{} {}",
                k.name,
                render_labels(&k.labels, None),
                h.sum
            );
            let _ = writeln!(
                out,
                "{}_count{} {}",
                k.name,
                render_labels(&k.labels, None),
                h.count
            );
        }
        out
    }
}

fn render_labels(labels: &[(&'static str, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    format!("{{{}}}", parts.join(","))
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_label_set() {
        let mut m = MetricsRegistry::new();
        m.inc("k_total", &[("class", "ntt")], 2);
        m.inc("k_total", &[("class", "ntt")], 3);
        m.inc("k_total", &[("class", "ew")], 1);
        assert_eq!(m.counter_value("k_total", &[("class", "ntt")]), 5);
        assert_eq!(m.counter_value("k_total", &[("class", "ew")]), 1);
        assert_eq!(m.counter_value("k_total", &[("class", "missing")]), 0);
    }

    #[test]
    fn gauges_set_add_max() {
        let mut m = MetricsRegistry::new();
        m.set_gauge("depth", &[], 3.0);
        m.set_gauge("depth", &[], 1.0);
        assert_eq!(m.gauge_value("depth", &[]), Some(1.0));
        m.add_gauge("ns", &[], 2.5);
        m.add_gauge("ns", &[], 2.5);
        assert_eq!(m.gauge_value("ns", &[]), Some(5.0));
        m.max_gauge("hwm", &[], 4.0);
        m.max_gauge("hwm", &[], 2.0);
        assert_eq!(m.gauge_value("hwm", &[]), Some(4.0));
    }

    #[test]
    fn histogram_buckets_are_cumulative_in_render() {
        let mut m = MetricsRegistry::new();
        m.describe_histogram("lat_ns", "latency", "ns", &[10.0, 100.0]);
        for v in [5.0, 50.0, 500.0, 7.0] {
            m.observe("lat_ns", &[], v);
        }
        let h = m.histogram("lat_ns", &[]).unwrap();
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 562.0);
        let text = m.render_prometheus();
        assert!(text.contains("lat_ns_bucket{le=\"10\"} 2"));
        assert!(text.contains("lat_ns_bucket{le=\"100\"} 3"));
        assert!(text.contains("lat_ns_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("lat_ns_count 4"));
    }

    #[test]
    fn rendering_is_sorted_and_reproducible() {
        let build = |order_flip: bool| {
            let mut m = MetricsRegistry::new();
            let (a, b) = if order_flip { ("b", "a") } else { ("a", "b") };
            m.inc("x_total", &[("class", a)], 1);
            m.inc("x_total", &[("class", b)], 1);
            m.render_prometheus()
        };
        assert_eq!(build(false), build(true), "insertion order must not leak");
    }

    #[test]
    fn hostile_label_values_are_escaped_per_exposition_format() {
        // Label *values* are runtime data (tenant names, file paths, user
        // strings) and may be hostile; the exposition must escape `\`,
        // `"`, and newlines so one bad value cannot forge extra series or
        // break line framing.
        let mut m = MetricsRegistry::new();
        let hostile = "a\\b\"c\nd} evil_total{x=\"y\"} 999";
        m.inc("requests_total", &[("tenant", hostile)], 1);
        m.set_gauge("depth", &[("path", "C:\\temp\\\"q\"\n")], 2.0);
        let text = m.render_prometheus();
        assert!(text
            .contains("requests_total{tenant=\"a\\\\b\\\"c\\nd} evil_total{x=\\\"y\\\"} 999\"} 1"));
        assert!(text.contains("depth{path=\"C:\\\\temp\\\\\\\"q\\\"\\n\"} 2"));
        // No raw newline survives inside a sample line: every rendered
        // line is exactly one sample or one comment.
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.ends_with(" 1") || line.ends_with(" 2"),
                "line framing broken by hostile value: {line:?}"
            );
        }
        // And the hostile payload never starts a line (series forgery).
        assert!(!text.lines().any(|l| l.starts_with("evil_total")));
    }

    #[test]
    #[should_panic(expected = "invalid Prometheus metric name")]
    fn hostile_metric_name_panics() {
        let mut m = MetricsRegistry::new();
        m.inc("bad name{", &[], 1);
    }

    #[test]
    #[should_panic(expected = "invalid Prometheus metric name")]
    fn metric_name_must_not_start_with_digit() {
        let mut m = MetricsRegistry::new();
        m.describe_counter("9lives_total", "nope", "");
    }

    #[test]
    #[should_panic(expected = "invalid Prometheus label name")]
    fn hostile_label_name_panics() {
        let mut m = MetricsRegistry::new();
        m.set_gauge("ok_metric", &[("bad-label", "v")], 1.0);
    }

    #[test]
    fn valid_names_pass_validation() {
        let mut m = MetricsRegistry::new();
        m.inc("anaheim:requests_total", &[("shard_0", "x")], 1);
        m.describe_gauge("_private9", "leading underscore ok", "");
        assert_eq!(
            m.counter_value("anaheim:requests_total", &[("shard_0", "x")]),
            1
        );
    }

    #[test]
    fn help_lines_and_label_escaping() {
        let mut m = MetricsRegistry::new();
        m.describe_counter("n_total", "Things \"counted\"", "things");
        m.inc("n_total", &[("who", "a\"b")], 1);
        let text = m.render_prometheus();
        assert!(text.contains("# HELP n_total Things \"counted\" (unit: things)"));
        assert!(text.contains("who=\"a\\\"b\""));
    }
}
