//! The Anaheim processing-in-memory (PIM) model (§VI of the paper).
//!
//! Four cooperating pieces:
//!
//! - [`isa`] — the PIM instruction set of Table II (basic, constant, and
//!   compound instructions) plus each instruction's *execution profile*:
//!   how many data-buffer slots it needs (which fixes the chunk granularity
//!   `G = ⌊B/slots⌋`) and which PolyGroups it touches per iteration.
//! - [`mmac`] — a functional model of the modular multiply-accumulate
//!   (MMAC) lanes, built on Montgomery reduction over 28-bit primes
//!   satisfying `q ≡ 1 (mod 2N)` exactly as §VI-A prescribes. Eight lanes
//!   match the 256-bit DRAM global I/O.
//! - [`layout`] — the column-partitioning data layout: die groups, row
//!   groups × column groups, and the `PolyGroup` allocator (§VI-B, Fig. 7),
//!   plus the naive contiguous layout used by the paper's w/o-CP ablation.
//! - [`exec`] — the execution engine generalizing Alg. 1: per-iteration
//!   ACT/RD/WR/PRE schedules fed to the all-bank lockstep DRAM engine,
//!   yielding kernel latency and energy for both microarchitecture variants
//!   (near-bank and custom-HBM, [`device`]).

pub mod bankexec;
pub mod device;
pub mod error;
pub mod exec;
pub mod fault;
pub mod isa;
pub mod layout;
pub mod mmac;

pub use bankexec::{
    alloc_paccum_groups, for_each_bank_parallel, paccum_alg1, paccum_alg1_verified, SimulatedBank,
    ELEMS_PER_CHUNK,
};
pub use device::{PimDeviceConfig, PimVariant};
pub use error::{IntegrityReport, LayoutError, PimError};
pub use exec::{PimExecutor, PimKernelResult, PimKernelSpec};
pub use fault::{BankDomain, FaultInjector, FaultPlan, FaultStats};
pub use isa::{InstrProfile, PimInstruction};
pub use layout::{LayoutPolicy, PolyGroup, PolyGroupAllocator};
pub use mmac::{MontgomeryCtx, PimUnit};
