//! The PIM kernel execution engine: Alg. 1 generalized to every Table II
//! instruction, both layouts, and both microarchitecture variants.
//!
//! For a kernel of `limbs` limbs over degree-`N` polynomials:
//!
//! - each die group holds `⌈limbs/die_groups⌉` limbs and processes them
//!   sequentially; die groups run in parallel (§VI-B);
//! - within a die group, all banks operate in lockstep, each holding
//!   `C = N/(banks_per_group · 8)` 256-bit chunks per limb;
//! - one iteration processes `G = ⌊B/slots⌋` chunks per polynomial through
//!   the instruction's phases, paying the layout-dependent ACT/PRE cost
//!   per phase (1 with column partitioning, one per polynomial without).
//!
//! Near-bank timing comes from the cycle-level all-bank lockstep DRAM
//! engine; custom-HBM units serve several banks each, so their row switches
//! overlap with streaming from sibling banks and only the streaming time
//! (at 4× external bandwidth) remains exposed (§VII-B).

use dram::energy::{AccessDestination, EnergyAccount};
use dram::engine::{BankCommand, LockstepEngine};

use crate::device::{PimDeviceConfig, PimVariant};
use crate::error::{IntegrityReport, PimError};
use crate::fault::{BankDomain, FaultInjector};
use crate::isa::PimInstruction;
use crate::layout::LayoutPolicy;

/// A PIM kernel: one instruction applied across `limbs × n` elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PimKernelSpec {
    /// The instruction.
    pub instr: PimInstruction,
    /// Number of RNS limbs processed.
    pub limbs: usize,
    /// Ring degree.
    pub n: usize,
}

/// Timing and energy of a kernel (or a fused sequence).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PimKernelResult {
    /// Kernel latency in nanoseconds.
    pub latency_ns: f64,
    /// DRAM-side energy events (destination already classified).
    pub dram_energy: EnergyAccount,
    /// Modular ops executed by the MMAC lanes.
    pub mmac_ops: u64,
    /// Total ACT/PRE pairs across all banks and limbs.
    pub acts_total: u64,
    /// Total bytes streamed between banks and PIM units.
    pub bytes_internal: u64,
    /// Sequential limb batches (`⌈limbs/die_groups⌉`): each batch runs one
    /// limb on every die group in parallel, so the kernel's latency divides
    /// evenly across them. Trace exporters use this to draw the
    /// segment → kernel → limb-batch hierarchy.
    pub limb_batches: u64,
}

impl PimKernelResult {
    /// Total energy in joules for a device (DRAM events + MMAC compute).
    pub fn energy_joules(&self, dev: &PimDeviceConfig) -> f64 {
        self.dram_energy.total_joules(&dev.dram.energy)
            + self.mmac_ops as f64 * dev.mmac_energy_pj * 1e-12
    }

    /// Accumulates another kernel's result (sequential execution).
    pub fn accumulate(&mut self, other: &PimKernelResult) {
        self.latency_ns += other.latency_ns;
        self.dram_energy.merge(&other.dram_energy);
        self.mmac_ops += other.mmac_ops;
        self.acts_total += other.acts_total;
        self.bytes_internal += other.bytes_internal;
        self.limb_batches += other.limb_batches;
    }
}

/// Executes PIM kernels for a device configuration and layout policy.
#[derive(Debug, Clone)]
pub struct PimExecutor<'a> {
    dev: &'a PimDeviceConfig,
    layout: LayoutPolicy,
}

impl<'a> PimExecutor<'a> {
    /// Binds a device and layout.
    pub fn new(dev: &'a PimDeviceConfig, layout: LayoutPolicy) -> Self {
        Self { dev, layout }
    }

    /// The device in use.
    pub fn device(&self) -> &PimDeviceConfig {
        self.dev
    }

    /// Banks cooperating within one die group.
    pub fn banks_per_group(&self) -> usize {
        let g = &self.dev.dram.geometry;
        g.dies_per_group() * g.banks_per_die
    }

    /// 256-bit chunks per bank per limb (`C`); the paper's running example
    /// (`N = 2^16` over an A100 stack) gives 16.
    pub fn chunks_per_bank_per_limb(&self, n: usize) -> usize {
        // 8 elements of 32 bits per 256-bit chunk.
        (n.div_ceil(self.banks_per_group())).div_ceil(8).max(1)
    }

    /// Whether the instruction can run with the device's buffer size.
    pub fn supported(&self, instr: PimInstruction) -> bool {
        instr.profile().supported(self.dev.buffer_entries)
    }

    /// GPU-side DRAM traffic (bytes) the same operation would generate if
    /// executed on the GPU with no cache reuse — the Fig. 9 baseline.
    pub fn gpu_bytes_equivalent(&self, spec: &PimKernelSpec) -> u64 {
        let p = spec.instr.profile();
        ((p.total_reads() + p.total_writes()) * spec.limbs * spec.n * 4) as u64
    }

    /// Executes one kernel.
    ///
    /// Returns [`PimError::Unsupported`] if the instruction cannot run at
    /// the configured buffer size (`G = 0`), mirroring the hardware
    /// restriction of §VII-C.
    pub fn execute(&self, spec: &PimKernelSpec) -> Result<PimKernelResult, PimError> {
        let (sched, acts_per_bank) = self.build_limb_schedule(spec)?;
        let per_limb_ns = self.time_limb(spec, &sched, acts_per_bank)?;
        Ok(self.account(spec, acts_per_bank, per_limb_ns))
    }

    /// Builds the per-bank lockstep schedule for ONE limb, plus the ACT/PRE
    /// pairs it carries.
    fn build_limb_schedule(
        &self,
        spec: &PimKernelSpec,
    ) -> Result<(Vec<BankCommand>, u64), PimError> {
        let profile = spec.instr.profile();
        let b = self.dev.buffer_entries;
        let g = profile.chunk_granularity(b);
        if g < 1 {
            return Err(PimError::Unsupported {
                mnemonic: spec.instr.mnemonic(),
                buffer_entries: b,
            });
        }
        let c = self.chunks_per_bank_per_limb(spec.n);
        let iters = c.div_ceil(g);

        let mut sched: Vec<BankCommand> = Vec::new();
        let mut acts_per_bank = 0u64;
        let mut done = 0usize;
        for _ in 0..iters {
            let g_now = g.min(c - done) as u32;
            done += g_now as usize;
            for (pi, phase) in profile.phases.iter().enumerate() {
                match self.layout {
                    LayoutPolicy::ColumnPartitioned => {
                        sched.push(BankCommand::Act { row: pi as u32 });
                        acts_per_bank += 1;
                        if phase.polys_read > 0 {
                            sched.push(BankCommand::Read {
                                chunks: phase.polys_read as u32 * g_now,
                            });
                        }
                        if phase.polys_written > 0 {
                            sched.push(BankCommand::Write {
                                chunks: phase.polys_written as u32 * g_now,
                            });
                        }
                        sched.push(BankCommand::Pre);
                    }
                    LayoutPolicy::Contiguous => {
                        // One row (hence ACT/PRE) per polynomial (§VI-C).
                        for r in 0..phase.polys_read {
                            sched.push(BankCommand::Act {
                                row: (pi * 64 + r) as u32,
                            });
                            acts_per_bank += 1;
                            sched.push(BankCommand::Read { chunks: g_now });
                            sched.push(BankCommand::Pre);
                        }
                        for w in 0..phase.polys_written {
                            sched.push(BankCommand::Act {
                                row: (pi * 64 + 32 + w) as u32,
                            });
                            acts_per_bank += 1;
                            sched.push(BankCommand::Write { chunks: g_now });
                            sched.push(BankCommand::Pre);
                        }
                    }
                }
            }
        }
        Ok((sched, acts_per_bank))
    }

    /// Times the per-limb schedule on the device's microarchitecture.
    fn time_limb(
        &self,
        spec: &PimKernelSpec,
        sched: &[BankCommand],
        acts_per_bank: u64,
    ) -> Result<f64, PimError> {
        let profile = spec.instr.profile();
        let c = self.chunks_per_bank_per_limb(spec.n);
        let chunks_per_bank_limb =
            c as u64 * (profile.total_reads() + profile.total_writes()) as u64;
        Ok(match self.dev.variant {
            PimVariant::NearBank => {
                let engine = LockstepEngine::new(&self.dev.dram, self.dev.ns_per_chunk());
                engine.try_execute(sched)?.latency_ns
            }
            PimVariant::CustomHbm { banks_per_unit } => {
                // The unit streams F banks' chunks back-to-back; row
                // switches of one bank hide behind the streaming of the
                // other F−1, leaving switch-time/F plus one fill exposed.
                let f = banks_per_unit as f64;
                let stream = chunks_per_bank_limb as f64 * f * self.dev.ns_per_chunk();
                let switch_total = acts_per_bank as f64 * self.dev.dram.timing.row_switch();
                stream.max(switch_total / f) + self.dev.dram.timing.row_switch()
            }
        })
    }

    /// Scales per-limb timing to the full kernel and accounts energy and
    /// traffic.
    fn account(
        &self,
        spec: &PimKernelSpec,
        acts_per_bank: u64,
        per_limb_ns: f64,
    ) -> PimKernelResult {
        let profile = spec.instr.profile();
        let c = self.chunks_per_bank_per_limb(spec.n);
        let die_groups = self.dev.dram.geometry.die_groups;
        let limbs_per_group = spec.limbs.div_ceil(die_groups);
        let chunks_per_bank_limb =
            c as u64 * (profile.total_reads() + profile.total_writes()) as u64;
        let limb_events = spec.limbs as u64 * self.banks_per_group() as u64;
        let mut energy = EnergyAccount::new();
        energy.add_acts(acts_per_bank * limb_events);
        let bytes =
            chunks_per_bank_limb * limb_events * (self.dev.dram.geometry.chunk_bits as u64 / 8);
        let dest = match self.dev.variant {
            PimVariant::NearBank => AccessDestination::NearBank,
            PimVariant::CustomHbm { .. } => AccessDestination::LogicDie,
        };
        energy.add_access(bytes, dest);

        PimKernelResult {
            latency_ns: per_limb_ns * limbs_per_group as f64,
            dram_energy: energy,
            mmac_ops: (spec.n * spec.limbs) as u64 * spec.instr.mmac_ops_per_element() as u64,
            acts_total: acts_per_bank * limb_events,
            bytes_internal: bytes,
            limb_batches: limbs_per_group as u64,
        }
    }

    /// Executes one kernel under fault injection.
    ///
    /// The injector perturbs the lockstep schedule (drops/corruptions),
    /// samples bank-cell bit flips, and pins any stuck MMAC lane. When a
    /// fault fires, the kernel's integrity check fails and the call returns
    /// [`PimError::IntegrityViolation`]; the carried
    /// [`IntegrityReport::wasted`] holds the cost of the failed attempt so
    /// schedulers can charge the retry honestly.
    ///
    /// Fault semantics:
    ///
    /// - **Dropped/corrupted commands**: the perturbed schedule is timed on
    ///   the lockstep engine; if it violates the DRAM protocol (a dropped
    ///   ACT), the bank aborts and the wasted cost falls back to the clean
    ///   schedule's latency (a conservative bound on the aborted attempt).
    /// - **Bit flips**: caught by the per-PolyGroup residue checksums after
    ///   the kernel (see `bankexec::paccum_alg1_verified` for the
    ///   functional-layer counterpart).
    /// - **Stuck MMAC lane**: only matters for instructions that use the
    ///   lanes; it is a *hard* fault ([`IntegrityReport::is_permanent`]),
    ///   so schedulers should stop retrying on PIM.
    pub fn execute_with_faults(
        &self,
        spec: &PimKernelSpec,
        injector: &mut FaultInjector,
    ) -> Result<PimKernelResult, PimError> {
        self.execute_with_faults_scoped(spec, injector, None)
    }

    /// [`execute_with_faults`](Self::execute_with_faults) scoped to a bank
    /// health domain: transient faults (bit flips, command perturbations)
    /// are sampled from the stream as usual and charged to whatever domain
    /// ran the kernel, but a stuck MMAC lane — a *located* hardware fault —
    /// only fires when the kernel's domain owns the lane. Bank-scoped
    /// schedulers use this so one sick die group does not poison kernels
    /// running on its healthy siblings. `domain = None` reproduces the
    /// unscoped behaviour (the lane hits every kernel).
    pub fn execute_with_faults_scoped(
        &self,
        spec: &PimKernelSpec,
        injector: &mut FaultInjector,
        domain: Option<BankDomain>,
    ) -> Result<PimKernelResult, PimError> {
        let (clean, acts_per_bank) = self.build_limb_schedule(spec)?;
        let clean_ns = self.time_limb(spec, &clean, acts_per_bank)?;

        let mut perturbed = clean.clone();
        let cmd_faults = injector.perturb_commands(&mut perturbed);
        let bit_flip = injector.sample_kernel_bit_flip();
        let stuck = injector
            .stuck_lane()
            .filter(|_| spec.instr.mmac_ops_per_element() > 0)
            .filter(|&lane| domain.is_none_or(|d| d.owns_lane(lane)));

        let attempt_ns = if cmd_faults.any() {
            match self.time_limb(spec, &perturbed, acts_per_bank) {
                Ok(ns) => ns,
                // Protocol violation: the stream aborts mid-kernel; charge
                // the clean latency as an upper bound on the wasted time.
                Err(_) => clean_ns,
            }
        } else {
            clean_ns
        };
        let result = self.account(spec, acts_per_bank, attempt_ns);

        if cmd_faults.any() || bit_flip || stuck.is_some() {
            Err(PimError::IntegrityViolation(Box::new(IntegrityReport {
                kernel: spec.instr.mnemonic(),
                bit_flips: bit_flip as u32,
                commands_dropped: cmd_faults.dropped,
                commands_corrupted: cmd_faults.corrupted,
                stuck_lane: stuck,
                wasted: result,
            })))
        } else {
            Ok(result)
        }
    }

    /// Executes a sequence of kernels back to back (one PIM kernel launch
    /// in the Anaheim framework can carry many instructions).
    pub fn execute_sequence(&self, specs: &[PimKernelSpec]) -> Result<PimKernelResult, PimError> {
        let mut total = PimKernelResult::default();
        for s in specs {
            total.accumulate(&self.execute(s)?);
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nb_exec(dev: &PimDeviceConfig) -> PimExecutor<'_> {
        PimExecutor::new(dev, LayoutPolicy::ColumnPartitioned)
    }

    #[test]
    fn paper_running_example_chunk_count() {
        // N = 2^16 over an A100 stack (512 banks): 16 chunks per bank/limb.
        let dev = PimDeviceConfig::a100_near_bank();
        let e = nb_exec(&dev);
        assert_eq!(e.banks_per_group(), 512);
        assert_eq!(e.chunks_per_bank_per_limb(1 << 16), 16);
        // RTX 4090 groups 4 dies × 32 banks = 128 banks: 64 chunks.
        let dev = PimDeviceConfig::rtx4090_near_bank();
        let e = nb_exec(&dev);
        assert_eq!(e.chunks_per_bank_per_limb(1 << 16), 64);
    }

    #[test]
    fn add_kernel_beats_gpu_bandwidth() {
        // An element-wise Add on PIM must beat moving the same bytes over
        // the external bus (the whole premise of the paper).
        let dev = PimDeviceConfig::a100_near_bank();
        let e = nb_exec(&dev);
        let spec = PimKernelSpec {
            instr: PimInstruction::Add,
            limbs: 54,
            n: 1 << 16,
        };
        let r = e.execute(&spec).unwrap();
        let gpu_ns = e.gpu_bytes_equivalent(&spec) as f64 / (dev.dram.external_bw_gbps * 1e9) * 1e9;
        assert!(
            r.latency_ns < gpu_ns,
            "PIM {} ns must beat GPU {} ns",
            r.latency_ns,
            gpu_ns
        );
        // But not by more than the internal bandwidth increase.
        assert!(r.latency_ns * dev.bw_increase > gpu_ns * 0.8);
    }

    #[test]
    fn column_partitioning_outperforms_contiguous() {
        // Fig. 10 (w/o CP): the naive layout roughly doubles element-wise
        // time (2.24×/2.11× in the paper).
        let dev = PimDeviceConfig::a100_near_bank();
        let cp = PimExecutor::new(&dev, LayoutPolicy::ColumnPartitioned);
        let na = PimExecutor::new(&dev, LayoutPolicy::Contiguous);
        let mut ratios = Vec::new();
        for instr in [
            PimInstruction::Add,
            PimInstruction::PMult,
            PimInstruction::PAccum(4),
            PimInstruction::CAccum(4),
        ] {
            let spec = PimKernelSpec {
                instr,
                limbs: 54,
                n: 1 << 16,
            };
            let r_cp = cp.execute(&spec).unwrap();
            let r_na = na.execute(&spec).unwrap();
            ratios.push(r_na.latency_ns / r_cp.latency_ns);
            // Single-poly-per-phase instructions (Add) see no CP benefit;
            // everything else must.
            assert!(r_na.acts_total >= r_cp.acts_total, "{instr}");
        }
        let geomean = (ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64).exp();
        assert!(
            (1.5..4.0).contains(&geomean),
            "w/o-CP slowdown should be around 2×, got {geomean:.2}"
        );
    }

    #[test]
    fn bigger_buffer_amortizes_act_pre() {
        // Fig. 9: performance improves with B then saturates.
        let base = PimDeviceConfig::a100_near_bank();
        let spec = PimKernelSpec {
            instr: PimInstruction::PAccum(4),
            limbs: 54,
            n: 1 << 16,
        };
        let mut prev = f64::INFINITY;
        for b in [8usize, 16, 32, 64] {
            let dev = base.clone().with_buffer_entries(b);
            let e = nb_exec(&dev);
            let r = e.execute(&spec).unwrap();
            assert!(
                r.latency_ns <= prev * 1.001,
                "B={b} should not be slower than smaller buffer"
            );
            prev = r.latency_ns;
        }
    }

    #[test]
    fn custom_hbm_suffers_less_from_small_buffers() {
        // Fig. 9: saturation is faster for custom-HBM.
        let spec = PimKernelSpec {
            instr: PimInstruction::Add,
            limbs: 54,
            n: 1 << 16,
        };
        let ratio = |mk: fn() -> PimDeviceConfig| {
            let small = mk().with_buffer_entries(4);
            let large = mk().with_buffer_entries(64);
            let t_small = PimExecutor::new(&small, LayoutPolicy::ColumnPartitioned)
                .execute(&spec)
                .unwrap()
                .latency_ns;
            let t_large = PimExecutor::new(&large, LayoutPolicy::ColumnPartitioned)
                .execute(&spec)
                .unwrap()
                .latency_ns;
            t_small / t_large
        };
        let nb_gain = ratio(PimDeviceConfig::a100_near_bank);
        let ch_gain = ratio(PimDeviceConfig::a100_custom_hbm);
        assert!(
            nb_gain > ch_gain,
            "near-bank should benefit more from large B: {nb_gain:.2} vs {ch_gain:.2}"
        );
    }

    #[test]
    fn energy_scales_with_traffic() {
        let dev = PimDeviceConfig::a100_near_bank();
        let e = nb_exec(&dev);
        let small = e
            .execute(&PimKernelSpec {
                instr: PimInstruction::Add,
                limbs: 10,
                n: 1 << 16,
            })
            .unwrap();
        let large = e
            .execute(&PimKernelSpec {
                instr: PimInstruction::Add,
                limbs: 40,
                n: 1 << 16,
            })
            .unwrap();
        let js = small.energy_joules(&dev);
        let jl = large.energy_joules(&dev);
        assert!((jl / js - 4.0).abs() < 0.1, "energy ∝ limbs: {}", jl / js);
        assert_eq!(large.bytes_internal, 4 * small.bytes_internal);
    }

    #[test]
    fn sequence_accumulates() {
        let dev = PimDeviceConfig::a100_near_bank();
        let e = nb_exec(&dev);
        let s1 = PimKernelSpec {
            instr: PimInstruction::Add,
            limbs: 8,
            n: 1 << 16,
        };
        let s2 = PimKernelSpec {
            instr: PimInstruction::Mult,
            limbs: 8,
            n: 1 << 16,
        };
        let seq = e.execute_sequence(&[s1, s2]).unwrap();
        let sum = e.execute(&s1).unwrap().latency_ns + e.execute(&s2).unwrap().latency_ns;
        assert!((seq.latency_ns - sum).abs() < 1e-9);
    }

    #[test]
    fn stuck_lane_only_fires_in_its_own_domain() {
        use crate::fault::{FaultInjector, FaultPlan};
        let dev = PimDeviceConfig::a100_near_bank();
        let e = nb_exec(&dev);
        let spec = PimKernelSpec {
            instr: PimInstruction::Add,
            limbs: 8,
            n: 1 << 16,
        };
        let plan = FaultPlan::none().with_seed(2).with_stuck_lane(5);
        let domains = 4u32;
        let sick = BankDomain::of_lane(5, domains);

        // The owning domain sees the hard fault…
        let mut inj = FaultInjector::new(plan);
        let err = e
            .execute_with_faults_scoped(&spec, &mut inj, Some(sick))
            .unwrap_err();
        match err {
            PimError::IntegrityViolation(r) => {
                assert!(r.is_permanent());
                assert_eq!(r.cause(), "stuck-lane");
            }
            other => panic!("expected IntegrityViolation, got {other}"),
        }

        // …while every other domain executes cleanly.
        for idx in (0..domains).filter(|&i| i != sick.index) {
            let mut inj = FaultInjector::new(plan);
            let healthy = BankDomain::new(idx, domains);
            e.execute_with_faults_scoped(&spec, &mut inj, Some(healthy))
                .unwrap_or_else(|err| panic!("domain {idx} must be healthy: {err}"));
        }

        // And the unscoped path still hits everything.
        let mut inj = FaultInjector::new(plan);
        assert!(e.execute_with_faults_scoped(&spec, &mut inj, None).is_err());
    }

    #[test]
    fn unsupported_at_small_buffer_is_typed_error() {
        let dev = PimDeviceConfig::a100_near_bank().with_buffer_entries(4);
        let e = nb_exec(&dev);
        let err = e
            .execute(&PimKernelSpec {
                instr: PimInstruction::PAccum(4),
                limbs: 1,
                n: 1 << 16,
            })
            .unwrap_err();
        assert_eq!(
            err,
            PimError::Unsupported {
                mnemonic: "PAccum<4>".into(),
                buffer_entries: 4
            }
        );
        assert_eq!(err.to_string(), "PAccum<4> unsupported with B = 4");
    }
}
