//! Functional execution of Alg. 1 over *simulated bank contents*: the end-
//! to-end check that the column-partitioning addressing (row groups ×
//! column groups), the chunked buffer management (`G = ⌊B/6⌋`), and the
//! Montgomery MMAC datapath together compute exactly the fused KeyMult
//! inner product.
//!
//! The timing model in [`crate::exec`] prices this execution; this module
//! proves the *data* ends up right.

use crate::error::{IntegrityReport, LayoutError, PimError};
use crate::fault::FaultInjector;
use crate::layout::{PolyGroup, PolyGroupAllocator};
use crate::mmac::MontgomeryCtx;

/// Elements per 256-bit chunk (8 × 32-bit words).
pub const ELEMS_PER_CHUNK: usize = 8;

/// One bank's cell array: `rows × chunks_per_row` chunks of 8 words.
#[derive(Debug, Clone)]
pub struct SimulatedBank {
    chunks_per_row: usize,
    rows: Vec<Vec<[u32; ELEMS_PER_CHUNK]>>,
}

impl SimulatedBank {
    /// An all-zero bank.
    pub fn new(rows: usize, chunks_per_row: usize) -> Self {
        Self {
            chunks_per_row,
            rows: vec![vec![[0; ELEMS_PER_CHUNK]; chunks_per_row]; rows],
        }
    }

    /// Rows in the bank.
    pub fn rows(&self) -> usize {
        self.rows.len()
    }

    /// Chunks per row.
    pub fn chunks_per_row(&self) -> usize {
        self.chunks_per_row
    }

    /// Writes polynomial data into its PolyGroup location, with bounds-
    /// checked addressing: size mismatches and out-of-bank groups surface
    /// as a typed [`LayoutError`] instead of a panic.
    pub fn store_poly(
        &mut self,
        g: &PolyGroup,
        poly: usize,
        data: &[u32],
    ) -> Result<(), LayoutError> {
        let want = g.chunks_per_poly * ELEMS_PER_CHUNK;
        if data.len() != want {
            return Err(LayoutError::DataSizeMismatch {
                got: data.len(),
                want,
            });
        }
        for (chunk_idx, chunk) in data.chunks(ELEMS_PER_CHUNK).enumerate() {
            let row = g.try_row_of(poly, chunk_idx)?;
            let col = g.try_col_of(poly, chunk_idx)?;
            if col >= self.chunks_per_row {
                return Err(LayoutError::ColumnOutOfRange {
                    col,
                    chunks_per_row: self.chunks_per_row,
                });
            }
            if row >= self.rows.len() {
                return Err(LayoutError::RowOutOfRange {
                    row,
                    rows: self.rows.len(),
                });
            }
            self.rows[row][col].copy_from_slice(chunk);
        }
        Ok(())
    }

    /// Inverts one bit of one stored element — the fault-injection hook
    /// behind [`crate::fault::FaultInjector::flip_group_bit`].
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are outside the bank.
    pub fn flip_bit(&mut self, row: usize, col: usize, elem: usize, bit: u8) {
        assert!(bit < 32 && elem < ELEMS_PER_CHUNK, "bad flip coordinates");
        self.rows[row][col][elem] ^= 1 << bit;
    }

    /// FNV-1a residue checksum over every chunk of a PolyGroup's
    /// allocation — the per-group integrity signature verified after each
    /// PIM kernel. Any single bit flip in the group changes it.
    pub fn checksum_group(&self, g: &PolyGroup) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for poly in 0..g.polys {
            for chunk in 0..g.chunks_per_poly {
                for &w in &self.rows[g.row_of(poly, chunk)][g.col_of(poly, chunk)] {
                    h ^= w as u64;
                    h = h.wrapping_mul(0x1000_0000_01b3);
                }
            }
        }
        h
    }

    /// Reads one chunk.
    pub fn load_chunk(&self, g: &PolyGroup, poly: usize, chunk: usize) -> [u32; ELEMS_PER_CHUNK] {
        self.rows[g.row_of(poly, chunk)][g.col_of(poly, chunk)]
    }

    /// Writes one chunk.
    pub fn store_chunk(
        &mut self,
        g: &PolyGroup,
        poly: usize,
        chunk: usize,
        data: [u32; ELEMS_PER_CHUNK],
    ) {
        let row = g.row_of(poly, chunk);
        let col = g.col_of(poly, chunk);
        self.rows[row][col] = data;
    }

    /// Reads a full polynomial back out.
    pub fn load_poly(&self, g: &PolyGroup, poly: usize) -> Vec<u32> {
        (0..g.chunks_per_poly)
            .flat_map(|c| self.load_chunk(g, poly, c))
            .collect()
    }
}

/// Executes `PAccum⟨K⟩` per Alg. 1 on simulated bank contents:
/// `x = Σ a_k·p_k`, `y = Σ b_k·p_k`.
///
/// `pg_p` holds `p_0..p_{K-1}`; `pg_ab` holds the interleaved pairs
/// `(a_0, b_0), …` as polynomials `2k` (a) and `2k+1` (b); `pg_out`
/// receives `x` (poly 0) and `y` (poly 1). The data buffer holds `B`
/// chunk-entries, giving chunk granularity `G = ⌊B/(K+2)⌋` (Alg. 1 line 1).
///
/// Returns [`PimError::Unsupported`] if the buffer is too small (`G = 0`).
///
/// # Panics
///
/// Panics if group shapes disagree (an allocation bug, not a data fault).
pub fn paccum_alg1(
    bank: &mut SimulatedBank,
    mont: &MontgomeryCtx,
    k: usize,
    buffer_entries: usize,
    pg_p: &PolyGroup,
    pg_ab: &PolyGroup,
    pg_out: &PolyGroup,
) -> Result<(), PimError> {
    paccum_alg1_with_faults(bank, mont, k, buffer_entries, pg_p, pg_ab, pg_out, None)
}

/// [`paccum_alg1`] with an optional stuck MMAC lane: the stuck lane drives
/// zero into every accumulator update, modeling a hard datapath fault.
#[allow(clippy::too_many_arguments)]
pub fn paccum_alg1_with_faults(
    bank: &mut SimulatedBank,
    mont: &MontgomeryCtx,
    k: usize,
    buffer_entries: usize,
    pg_p: &PolyGroup,
    pg_ab: &PolyGroup,
    pg_out: &PolyGroup,
    stuck_lane: Option<u8>,
) -> Result<(), PimError> {
    let g = buffer_entries / (k + 2);
    if g < 1 {
        return Err(PimError::Unsupported {
            mnemonic: "PAccum".into(),
            buffer_entries,
        });
    }
    let c = pg_p.chunks_per_poly;
    assert_eq!(pg_ab.chunks_per_poly, c, "group shapes must match");
    assert_eq!(pg_out.chunks_per_poly, c, "group shapes must match");

    // The data buffer: (k + 2) logical slots of G chunks each
    // (p_0..p_{k-1}, x, y), exactly as Alg. 1 lays it out.
    let mut buf = vec![[0u32; ELEMS_PER_CHUNK]; buffer_entries.max((k + 2) * g)];

    let mut done = 0usize;
    while done < c {
        let g_now = g.min(c - done);
        // (1) ACT the PolyGroup0 row(s); load G chunks of each p_k.
        for kk in 0..k {
            for j in 0..g_now {
                buf[kk * g + j] = bank.load_chunk(pg_p, kk, done + j);
            }
        }
        // Clear the accumulator slots.
        for j in 0..g_now {
            buf[k * g + j] = [0; ELEMS_PER_CHUNK];
            buf[(k + 1) * g + j] = [0; ELEMS_PER_CHUNK];
        }
        // (2) ACT PolyGroup1; stream a_k, b_k and MMAC immediately.
        for kk in 0..k {
            for j in 0..g_now {
                let a = bank.load_chunk(pg_ab, 2 * kk, done + j);
                let b = bank.load_chunk(pg_ab, 2 * kk + 1, done + j);
                let p = buf[kk * g + j];
                for lane in 0..ELEMS_PER_CHUNK {
                    if stuck_lane == Some(lane as u8) {
                        buf[k * g + j][lane] = 0;
                        buf[(k + 1) * g + j][lane] = 0;
                        continue;
                    }
                    buf[k * g + j][lane] =
                        mont.add(buf[k * g + j][lane], mont.mul(a[lane], p[lane]));
                    buf[(k + 1) * g + j][lane] =
                        mont.add(buf[(k + 1) * g + j][lane], mont.mul(b[lane], p[lane]));
                }
            }
        }
        // (3) ACT PolyGroup2; write back x, y.
        for j in 0..g_now {
            bank.store_chunk(pg_out, 0, done + j, buf[k * g + j]);
            bank.store_chunk(pg_out, 1, done + j, buf[(k + 1) * g + j]);
        }
        done += g_now;
    }
    Ok(())
}

/// [`paccum_alg1`] wrapped in the post-kernel integrity check, optionally
/// under fault injection — the functional core of the detect-and-degrade
/// loop:
///
/// 1. Residue checksums of both *input* groups are taken up front, and a
///    trusted scalar reference of the outputs is computed.
/// 2. The banked kernel runs (with the injector's stuck lane, if any);
///    afterwards the injector may flip bank cell bits in any group.
/// 3. Verification: input checksums must be unchanged, and the stored
///    outputs must match the reference. Any deviation returns
///    [`PimError::IntegrityViolation`] describing what was caught.
#[allow(clippy::too_many_arguments)]
pub fn paccum_alg1_verified(
    bank: &mut SimulatedBank,
    mont: &MontgomeryCtx,
    k: usize,
    buffer_entries: usize,
    pg_p: &PolyGroup,
    pg_ab: &PolyGroup,
    pg_out: &PolyGroup,
    injector: Option<&mut FaultInjector>,
) -> Result<(), PimError> {
    let sum_p = bank.checksum_group(pg_p);
    let sum_ab = bank.checksum_group(pg_ab);

    // Trusted scalar reference x = Σ a_k·p_k, y = Σ b_k·p_k, taken from
    // the pristine inputs.
    let c = pg_p.chunks_per_poly;
    let n = c * ELEMS_PER_CHUNK;
    let mut want_x = vec![0u32; n];
    let mut want_y = vec![0u32; n];
    for kk in 0..k {
        let p = bank.load_poly(pg_p, kk);
        let a = bank.load_poly(pg_ab, 2 * kk);
        let b = bank.load_poly(pg_ab, 2 * kk + 1);
        for j in 0..n {
            want_x[j] = mont.add(want_x[j], mont.mul(a[j], p[j]));
            want_y[j] = mont.add(want_y[j], mont.mul(b[j], p[j]));
        }
    }

    let stuck = injector.as_ref().and_then(|i| i.stuck_lane());
    paccum_alg1_with_faults(bank, mont, k, buffer_entries, pg_p, pg_ab, pg_out, stuck)?;

    let mut bit_flips = 0u32;
    if let Some(inj) = injector {
        for g in [pg_p, pg_ab, pg_out] {
            if inj.maybe_corrupt_bank(bank, g).is_some() {
                bit_flips += 1;
            }
        }
    }

    let inputs_intact = bank.checksum_group(pg_p) == sum_p && bank.checksum_group(pg_ab) == sum_ab;
    let outputs_correct =
        bank.load_poly(pg_out, 0) == want_x && bank.load_poly(pg_out, 1) == want_y;
    if inputs_intact && outputs_correct {
        Ok(())
    } else {
        Err(PimError::IntegrityViolation(Box::new(IntegrityReport {
            kernel: "PAccum".into(),
            bit_flips,
            commands_dropped: 0,
            commands_corrupted: 0,
            stuck_lane: stuck,
            wasted: Default::default(),
        })))
    }
}

/// Executes `CAccum⟨K⟩` with the optimized buffer discipline (§VI-C):
/// only the two accumulators stay resident (`G = ⌊B/2⌋`) while the
/// `a_i, b_i` inputs stream through the MMAC lanes against the broadcast
/// constants `C_0..C_K` — which is why CAccum keeps working even at
/// `B = 4` and posts the highest Fig. 9 speedups.
///
/// `pg_in` holds the interleaved `(a_1, b_1), …` as polynomials `2k`/`2k+1`;
/// `pg_out` receives `x` (poly 0) and `y` (poly 1).
///
/// Returns [`PimError::Unsupported`] if the buffer cannot hold two chunk
/// groups.
///
/// # Panics
///
/// Panics if shapes or constant counts disagree (allocation bugs).
pub fn caccum_optimized(
    bank: &mut SimulatedBank,
    mont: &MontgomeryCtx,
    k: usize,
    buffer_entries: usize,
    constants: &[u32],
    pg_in: &PolyGroup,
    pg_out: &PolyGroup,
) -> Result<(), PimError> {
    assert_eq!(constants.len(), k + 1, "CAccum<{k}> takes C_0..C_{k}");
    let g = buffer_entries / 2;
    if g < 1 {
        return Err(PimError::Unsupported {
            mnemonic: "CAccum".into(),
            buffer_entries,
        });
    }
    let c = pg_in.chunks_per_poly;
    assert_eq!(pg_out.chunks_per_poly, c, "group shapes must match");
    let mut buf = vec![[0u32; ELEMS_PER_CHUNK]; 2 * g];
    let mut done = 0usize;
    while done < c {
        let g_now = g.min(c - done);
        // Initialize accumulators with the broadcast C_0.
        for j in 0..g_now {
            buf[j] = [constants[0]; ELEMS_PER_CHUNK];
            buf[g + j] = [constants[0]; ELEMS_PER_CHUNK];
        }
        // Stream inputs, MACing against broadcast constants.
        for kk in 0..k {
            let ck = constants[kk + 1];
            for j in 0..g_now {
                let a = bank.load_chunk(pg_in, 2 * kk, done + j);
                let b = bank.load_chunk(pg_in, 2 * kk + 1, done + j);
                for lane in 0..ELEMS_PER_CHUNK {
                    buf[j][lane] = mont.add(buf[j][lane], mont.mul(ck, a[lane]));
                    buf[g + j][lane] = mont.add(buf[g + j][lane], mont.mul(ck, b[lane]));
                }
            }
        }
        for j in 0..g_now {
            bank.store_chunk(pg_out, 0, done + j, buf[j]);
            bank.store_chunk(pg_out, 1, done + j, buf[g + j]);
        }
        done += g_now;
    }
    Ok(())
}

/// Convenience: allocates the three PolyGroups of Alg. 1 for a `PAccum⟨K⟩`
/// over `c` chunks per polynomial.
pub fn alloc_paccum_groups(
    alloc: &mut PolyGroupAllocator,
    k: usize,
    c: usize,
) -> (PolyGroup, PolyGroup, PolyGroup) {
    let pg_p = alloc.alloc(k, c);
    let pg_ab = alloc.alloc(2 * k, c);
    let pg_out = alloc.alloc(2, c);
    (pg_p, pg_ab, pg_out)
}

/// Runs a kernel over every bank concurrently, fusing the banks into a few
/// chunked `parpool` jobs — the host-simulation analogue of the all-bank
/// command broadcast that gives the Anaheim PIM its throughput (§IV):
/// banks share no state, so their kernels are embarrassingly parallel, and
/// chunking pays pool overhead once per worker instead of once per bank.
/// The `ckks_math::tune` cost model decides the fan-out (bank capacity as
/// the per-item work proxy), so hosts that grant no real parallelism run
/// the banks serially instead of paying pool overhead for nothing.
///
/// Each bank's result is returned in bank order. A kernel error in one bank
/// does not stop the others (matching the per-bank fault containment of the
/// verified kernels); a kernel that *panics* propagates after all banks
/// join.
pub fn for_each_bank_parallel<F>(
    banks: &mut [SimulatedBank],
    kernel: F,
) -> Vec<Result<(), PimError>>
where
    F: Fn(usize, &mut SimulatedBank) -> Result<(), PimError> + Sync,
{
    let elems_per_bank = banks
        .first()
        .map_or(0, |b| b.rows() * b.chunks_per_row() * ELEMS_PER_CHUNK);
    let mut work: Vec<(&mut SimulatedBank, Result<(), PimError>)> =
        banks.iter_mut().map(|b| (b, Ok(()))).collect();
    let decision = ckks_math::tune::decide(
        ckks_math::tune::OpClass::Elementwise,
        work.len(),
        elems_per_bank,
    );
    if decision.parallel() {
        parpool::par_for_each_mut_chunked(&mut work, decision.jobs, |i, slot| {
            slot.1 = kernel(i, slot.0);
        });
    } else {
        for (i, slot) in work.iter_mut().enumerate() {
            slot.1 = kernel(i, slot.0);
        }
    }
    work.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::PimInstruction;
    use crate::layout::LayoutPolicy;
    use crate::mmac::PimUnit;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    const Q: u32 = 268369921;

    fn random_poly(c: usize, rng: &mut StdRng) -> Vec<u32> {
        (0..c * ELEMS_PER_CHUNK)
            .map(|_| rng.gen_range(0..Q))
            .collect()
    }

    #[test]
    fn alg1_matches_flat_paccum() {
        // The flagship datapath check: Alg. 1 over the column-partitioned
        // bank must equal PAccum on flat vectors, for the paper's exact
        // running example (C = 16 chunks, B = 16 ⇒ G = 2).
        let k = 4;
        let c = 16;
        let b = 16;
        let mut alloc = PolyGroupAllocator::new(32, 64, LayoutPolicy::ColumnPartitioned);
        let (pg_p, pg_ab, pg_out) = alloc_paccum_groups(&mut alloc, k, c);
        let mut bank = SimulatedBank::new(64, 32);

        let mut rng = StdRng::seed_from_u64(101);
        let ps: Vec<Vec<u32>> = (0..k).map(|_| random_poly(c, &mut rng)).collect();
        let aas: Vec<Vec<u32>> = (0..k).map(|_| random_poly(c, &mut rng)).collect();
        let bs: Vec<Vec<u32>> = (0..k).map(|_| random_poly(c, &mut rng)).collect();
        for i in 0..k {
            bank.store_poly(&pg_p, i, &ps[i]).unwrap();
            bank.store_poly(&pg_ab, 2 * i, &aas[i]).unwrap();
            bank.store_poly(&pg_ab, 2 * i + 1, &bs[i]).unwrap();
        }

        let mont = MontgomeryCtx::new(Q);
        paccum_alg1(&mut bank, &mont, k, b, &pg_p, &pg_ab, &pg_out).unwrap();
        let x = bank.load_poly(&pg_out, 0);
        let y = bank.load_poly(&pg_out, 1);

        // Reference: the functional PIM unit on flat vectors.
        let unit = PimUnit::new(Q, 32);
        let mut refs: Vec<&[u32]> = Vec::new();
        refs.extend(aas.iter().map(|v| v.as_slice()));
        refs.extend(bs.iter().map(|v| v.as_slice()));
        refs.extend(ps.iter().map(|v| v.as_slice()));
        let want = unit.execute(PimInstruction::PAccum(k), &refs, &[]);
        assert_eq!(x, want[0], "x = Σ a_k·p_k");
        assert_eq!(y, want[1], "y = Σ b_k·p_k");
    }

    #[test]
    fn alg1_works_across_buffer_sizes() {
        // Any B with G ≥ 1 must give identical results (G only changes the
        // chunking, not the math).
        let k = 4;
        let c = 16;
        let mut rng = StdRng::seed_from_u64(102);
        let ps: Vec<Vec<u32>> = (0..k).map(|_| random_poly(c, &mut rng)).collect();
        let aas: Vec<Vec<u32>> = (0..k).map(|_| random_poly(c, &mut rng)).collect();
        let bs: Vec<Vec<u32>> = (0..k).map(|_| random_poly(c, &mut rng)).collect();
        let mont = MontgomeryCtx::new(Q);
        let mut outputs = Vec::new();
        for b in [6usize, 12, 16, 32, 64] {
            let mut alloc = PolyGroupAllocator::new(32, 64, LayoutPolicy::ColumnPartitioned);
            let (pg_p, pg_ab, pg_out) = alloc_paccum_groups(&mut alloc, k, c);
            let mut bank = SimulatedBank::new(64, 32);
            for i in 0..k {
                bank.store_poly(&pg_p, i, &ps[i]).unwrap();
                bank.store_poly(&pg_ab, 2 * i, &aas[i]).unwrap();
                bank.store_poly(&pg_ab, 2 * i + 1, &bs[i]).unwrap();
            }
            paccum_alg1(&mut bank, &mont, k, b, &pg_p, &pg_ab, &pg_out).unwrap();
            outputs.push((bank.load_poly(&pg_out, 0), bank.load_poly(&pg_out, 1)));
        }
        for w in outputs.windows(2) {
            assert_eq!(w[0], w[1], "results must not depend on B");
        }
    }

    #[test]
    fn store_load_roundtrip_respects_layout() {
        let mut alloc = PolyGroupAllocator::new(32, 16, LayoutPolicy::ColumnPartitioned);
        let g = alloc.alloc(4, 16); // cg = 8, 2 rows
        let mut bank = SimulatedBank::new(16, 32);
        let mut rng = StdRng::seed_from_u64(103);
        let polys: Vec<Vec<u32>> = (0..4).map(|_| random_poly(16, &mut rng)).collect();
        for (i, p) in polys.iter().enumerate() {
            bank.store_poly(&g, i, p).unwrap();
        }
        // No clobbering between co-located polynomials.
        for (i, p) in polys.iter().enumerate() {
            assert_eq!(&bank.load_poly(&g, i), p, "poly {i}");
        }
    }

    #[test]
    fn caccum_matches_flat_instruction() {
        let k = 4;
        let c = 16;
        let mut alloc = PolyGroupAllocator::new(32, 64, LayoutPolicy::ColumnPartitioned);
        let pg_in = alloc.alloc(2 * k, c);
        let pg_out = alloc.alloc(2, c);
        let mut bank = SimulatedBank::new(64, 32);
        let mut rng = StdRng::seed_from_u64(104);
        let aas: Vec<Vec<u32>> = (0..k).map(|_| random_poly(c, &mut rng)).collect();
        let bs: Vec<Vec<u32>> = (0..k).map(|_| random_poly(c, &mut rng)).collect();
        for i in 0..k {
            bank.store_poly(&pg_in, 2 * i, &aas[i]).unwrap();
            bank.store_poly(&pg_in, 2 * i + 1, &bs[i]).unwrap();
        }
        let consts: Vec<u32> = (0..=k as u32).map(|i| (i * 7919 + 13) % Q).collect();
        let mont = MontgomeryCtx::new(Q);
        // CAccum survives even B = 4 (§VII-C), unlike PAccum.
        caccum_optimized(&mut bank, &mont, k, 4, &consts, &pg_in, &pg_out).unwrap();
        let x = bank.load_poly(&pg_out, 0);
        let y = bank.load_poly(&pg_out, 1);

        let unit = PimUnit::new(Q, 8);
        let mut refs: Vec<&[u32]> = Vec::new();
        refs.extend(aas.iter().map(|v| v.as_slice()));
        refs.extend(bs.iter().map(|v| v.as_slice()));
        let want = unit.execute(PimInstruction::CAccum(k), &refs, &consts);
        assert_eq!(x, want[0]);
        assert_eq!(y, want[1]);
    }

    #[test]
    fn small_buffer_rejected_with_typed_error() {
        let mut alloc = PolyGroupAllocator::new(32, 64, LayoutPolicy::ColumnPartitioned);
        let (pg_p, pg_ab, pg_out) = alloc_paccum_groups(&mut alloc, 4, 16);
        let mut bank = SimulatedBank::new(64, 32);
        let mont = MontgomeryCtx::new(Q);
        let err = paccum_alg1(&mut bank, &mont, 4, 4, &pg_p, &pg_ab, &pg_out).unwrap_err();
        assert_eq!(
            err,
            PimError::Unsupported {
                mnemonic: "PAccum".into(),
                buffer_entries: 4
            }
        );
    }

    #[test]
    fn store_poly_rejects_bad_shapes_with_typed_errors() {
        let mut alloc = PolyGroupAllocator::new(32, 64, LayoutPolicy::ColumnPartitioned);
        let g = alloc.alloc(2, 16);
        let mut bank = SimulatedBank::new(64, 32);
        let short = vec![0u32; 8];
        assert_eq!(
            bank.store_poly(&g, 0, &short),
            Err(LayoutError::DataSizeMismatch {
                got: 8,
                want: 16 * ELEMS_PER_CHUNK
            })
        );
        let full = vec![0u32; 16 * ELEMS_PER_CHUNK];
        assert_eq!(
            bank.store_poly(&g, 2, &full),
            Err(LayoutError::PolyOutOfRange { poly: 2, polys: 2 })
        );
        // A group minted for a bigger bank must not index out of this one.
        let mut big = PolyGroupAllocator::new(64, 128, LayoutPolicy::ColumnPartitioned);
        let g_wide = big.alloc(2, 32);
        let wide = vec![0u32; 32 * ELEMS_PER_CHUNK];
        assert!(matches!(
            bank.store_poly(&g_wide, 1, &wide),
            Err(LayoutError::ColumnOutOfRange { .. })
        ));
    }

    fn loaded_paccum_setup(
        seed: u64,
    ) -> (
        SimulatedBank,
        MontgomeryCtx,
        PolyGroup,
        PolyGroup,
        PolyGroup,
    ) {
        let k = 4;
        let c = 16;
        let mut alloc = PolyGroupAllocator::new(32, 64, LayoutPolicy::ColumnPartitioned);
        let (pg_p, pg_ab, pg_out) = alloc_paccum_groups(&mut alloc, k, c);
        let mut bank = SimulatedBank::new(64, 32);
        let mut rng = StdRng::seed_from_u64(seed);
        for i in 0..k {
            bank.store_poly(&pg_p, i, &random_poly(c, &mut rng))
                .unwrap();
            bank.store_poly(&pg_ab, 2 * i, &random_poly(c, &mut rng))
                .unwrap();
            bank.store_poly(&pg_ab, 2 * i + 1, &random_poly(c, &mut rng))
                .unwrap();
        }
        (bank, MontgomeryCtx::new(Q), pg_p, pg_ab, pg_out)
    }

    #[test]
    fn verified_paccum_passes_clean() {
        let (mut bank, mont, pg_p, pg_ab, pg_out) = loaded_paccum_setup(201);
        paccum_alg1_verified(&mut bank, &mont, 4, 16, &pg_p, &pg_ab, &pg_out, None)
            .expect("clean run must verify");
        // And under a benign injector too.
        let mut inj = FaultInjector::new(crate::fault::FaultPlan::none());
        paccum_alg1_verified(
            &mut bank,
            &mont,
            4,
            16,
            &pg_p,
            &pg_ab,
            &pg_out,
            Some(&mut inj),
        )
        .expect("benign injector must verify");
    }

    #[test]
    fn verified_paccum_catches_bank_bit_flip() {
        let (mut bank, mont, pg_p, pg_ab, pg_out) = loaded_paccum_setup(202);
        let plan = crate::fault::FaultPlan::none()
            .with_seed(9)
            .with_bank_flips(1.0);
        let mut inj = FaultInjector::new(plan);
        let err = paccum_alg1_verified(
            &mut bank,
            &mont,
            4,
            16,
            &pg_p,
            &pg_ab,
            &pg_out,
            Some(&mut inj),
        )
        .unwrap_err();
        match err {
            PimError::IntegrityViolation(r) => {
                assert!(r.bit_flips > 0, "checksum must report the flips");
                assert!(!r.is_permanent());
            }
            other => panic!("expected integrity violation, got {other}"),
        }
    }

    /// Builds `num` banks, each loaded with an independent seeded PAccum
    /// instance, and returns them together with the shared groups/context.
    fn paccum_bank_fleet(
        num: usize,
        base_seed: u64,
    ) -> (
        Vec<SimulatedBank>,
        MontgomeryCtx,
        PolyGroup,
        PolyGroup,
        PolyGroup,
    ) {
        let k = 4;
        let c = 16;
        let mut alloc = PolyGroupAllocator::new(32, 64, LayoutPolicy::ColumnPartitioned);
        let (pg_p, pg_ab, pg_out) = alloc_paccum_groups(&mut alloc, k, c);
        let banks = (0..num)
            .map(|bi| {
                let mut bank = SimulatedBank::new(64, 32);
                let mut rng = StdRng::seed_from_u64(base_seed + bi as u64);
                for i in 0..k {
                    bank.store_poly(&pg_p, i, &random_poly(c, &mut rng))
                        .unwrap();
                    bank.store_poly(&pg_ab, 2 * i, &random_poly(c, &mut rng))
                        .unwrap();
                    bank.store_poly(&pg_ab, 2 * i + 1, &random_poly(c, &mut rng))
                        .unwrap();
                }
                bank
            })
            .collect();
        (banks, MontgomeryCtx::new(Q), pg_p, pg_ab, pg_out)
    }

    #[test]
    fn parallel_banks_match_serial() {
        // The all-bank broadcast must be a pure throughput feature: the same
        // kernel run bank-by-bank and run via `for_each_bank_parallel` (at
        // several pool widths) must leave bit-identical bank contents.
        let num = 8;
        let (mut serial, mont, pg_p, pg_ab, pg_out) = paccum_bank_fleet(num, 500);
        for bank in serial.iter_mut() {
            paccum_alg1(bank, &mont, 4, 16, &pg_p, &pg_ab, &pg_out).unwrap();
        }
        for threads in [1usize, 2, 8] {
            parpool::set_threads(threads);
            let (mut par, mont, pg_p, pg_ab, pg_out) = paccum_bank_fleet(num, 500);
            let results = for_each_bank_parallel(&mut par, |_, bank| {
                paccum_alg1(bank, &mont, 4, 16, &pg_p, &pg_ab, &pg_out)
            });
            assert!(results.iter().all(|r| r.is_ok()));
            for (bi, (s, p)) in serial.iter().zip(par.iter()).enumerate() {
                for out in 0..2 {
                    assert_eq!(
                        s.load_poly(&pg_out, out),
                        p.load_poly(&pg_out, out),
                        "bank {bi} output {out} @ {threads} threads"
                    );
                }
            }
        }
        parpool::set_threads(0);
    }

    #[test]
    fn parallel_bank_errors_are_isolated() {
        // A kernel failing in one bank must not disturb the others: results
        // come back in bank order with exactly the failing banks marked.
        let num = 4;
        let (mut banks, mont, pg_p, pg_ab, pg_out) = paccum_bank_fleet(num, 600);
        let results = for_each_bank_parallel(&mut banks, |i, bank| {
            // B = 2 gives G = 0 on odd banks: a per-bank Unsupported error.
            let b = if i % 2 == 1 { 2 } else { 16 };
            paccum_alg1(bank, &mont, 4, b, &pg_p, &pg_ab, &pg_out)
        });
        assert_eq!(results.len(), num);
        for (i, r) in results.iter().enumerate() {
            if i % 2 == 1 {
                assert!(
                    matches!(r, Err(PimError::Unsupported { .. })),
                    "bank {i} should fail"
                );
            } else {
                assert!(r.is_ok(), "bank {i} should succeed");
            }
        }
    }

    #[test]
    fn verified_paccum_catches_stuck_lane() {
        let (mut bank, mont, pg_p, pg_ab, pg_out) = loaded_paccum_setup(203);
        let plan = crate::fault::FaultPlan::none().with_stuck_lane(5);
        let mut inj = FaultInjector::new(plan);
        let err = paccum_alg1_verified(
            &mut bank,
            &mont,
            4,
            16,
            &pg_p,
            &pg_ab,
            &pg_out,
            Some(&mut inj),
        )
        .unwrap_err();
        match err {
            PimError::IntegrityViolation(r) => {
                assert_eq!(r.stuck_lane, Some(5));
                assert!(r.is_permanent(), "stuck lanes are hard faults");
            }
            other => panic!("expected integrity violation, got {other}"),
        }
    }
}
