//! Functional model of the MMAC (modular multiply-accumulate) units.
//!
//! §VI-A: the PIM unit contains eight general-purpose MMAC lanes fed by the
//! 256-bit DRAM global I/O. Primes are small (`q < 2^28`, stored as 32-bit
//! words and truncated on entry), and because every eligible prime satisfies
//! `q ≡ 1 (mod 2N)` — hence is odd — an efficient **Montgomery** reduction
//! circuit is possible. This module implements that arithmetic faithfully
//! (R = 2^32) and a [`PimUnit`] that executes every Table II instruction on
//! real data, so the PIM datapath can be validated against the host CKKS
//! arithmetic.

use crate::isa::PimInstruction;

/// Montgomery arithmetic context for a prime `q < 2^28` with `R = 2^32`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MontgomeryCtx {
    q: u32,
    /// `-q^{-1} mod 2^32`.
    neg_q_inv: u32,
    /// `R² mod q`, for conversion into Montgomery form.
    r2: u32,
}

impl MontgomeryCtx {
    /// Builds the context.
    ///
    /// # Panics
    ///
    /// Panics if `q` is even, < 3, or ≥ 2^28.
    pub fn new(q: u32) -> Self {
        assert!(q % 2 == 1, "Montgomery reduction requires an odd modulus");
        assert!(
            (3..1 << 28).contains(&q),
            "q must be a 28-bit-or-less prime"
        );
        // Newton iteration for q^{-1} mod 2^32.
        let mut inv: u32 = 1;
        for _ in 0..5 {
            inv = inv.wrapping_mul(2u32.wrapping_sub(q.wrapping_mul(inv)));
        }
        debug_assert_eq!(q.wrapping_mul(inv), 1);
        let r2 = ((1u128 << 64) % q as u128) as u32;
        Self {
            q,
            neg_q_inv: inv.wrapping_neg(),
            r2,
        }
    }

    /// The modulus.
    pub fn modulus(&self) -> u32 {
        self.q
    }

    /// Montgomery reduction: returns `t·R^{-1} mod q` for `t < q·R`.
    #[inline]
    pub fn redc(&self, t: u64) -> u32 {
        let m = (t as u32).wrapping_mul(self.neg_q_inv);
        let t2 = ((t as u128 + m as u128 * self.q as u128) >> 32) as u64;
        let r = if t2 >= self.q as u64 {
            t2 - self.q as u64
        } else {
            t2
        };
        r as u32
    }

    /// Converts into Montgomery form (`a·R mod q`).
    #[inline]
    pub fn to_mont(&self, a: u32) -> u32 {
        debug_assert!(a < self.q);
        self.redc(a as u64 * self.r2 as u64)
    }

    /// Converts out of Montgomery form.
    #[inline]
    pub fn from_mont(&self, a: u32) -> u32 {
        self.redc(a as u64)
    }

    /// Plain modular multiplication routed through the Montgomery datapath
    /// (to-mont → mont-mul → from-mont), exactly what a lane does per cycle.
    #[inline]
    pub fn mul(&self, a: u32, b: u32) -> u32 {
        debug_assert!(a < self.q && b < self.q);
        let am = self.to_mont(a);
        // am·b = a·R·b; redc gives a·b mod q.
        self.redc(am as u64 * b as u64)
    }

    /// Modular addition.
    #[inline]
    pub fn add(&self, a: u32, b: u32) -> u32 {
        debug_assert!(a < self.q && b < self.q);
        let s = a + b; // < 2^29, no overflow
        if s >= self.q {
            s - self.q
        } else {
            s
        }
    }

    /// Modular subtraction.
    #[inline]
    pub fn sub(&self, a: u32, b: u32) -> u32 {
        debug_assert!(a < self.q && b < self.q);
        if a >= b {
            a - b
        } else {
            a + self.q - b
        }
    }

    /// Modular negation.
    #[inline]
    pub fn neg(&self, a: u32) -> u32 {
        if a == 0 {
            0
        } else {
            self.q - a
        }
    }

    /// Fused multiply-add `a·b + c mod q`.
    #[inline]
    pub fn mac(&self, a: u32, b: u32, c: u32) -> u32 {
        self.add(self.mul(a, b), c)
    }
}

/// A functional PIM unit: executes Table II instructions on element vectors.
///
/// The vectors stand for the stream of chunks a unit processes; lane
/// parallelism (8 × 28-bit per 256-bit chunk) is implicit in the data
/// width and is accounted for by the timing model in [`crate::exec`], not
/// here.
#[derive(Debug, Clone)]
pub struct PimUnit {
    mont: MontgomeryCtx,
    buffer_entries: usize,
}

impl PimUnit {
    /// A unit attached to banks storing residues of prime `q`, with a
    /// `B`-entry data buffer.
    pub fn new(q: u32, buffer_entries: usize) -> Self {
        Self {
            mont: MontgomeryCtx::new(q),
            buffer_entries,
        }
    }

    /// The arithmetic context.
    pub fn mont(&self) -> &MontgomeryCtx {
        &self.mont
    }

    /// Executes an instruction over full input vectors, returning the
    /// output vectors in Table II order.
    ///
    /// `inputs` follow the source order of Table II; `constants` carry the
    /// embedded `C` (or `C_0..C_K` for `CAccum`).
    ///
    /// # Panics
    ///
    /// Panics if the instruction is unsupported for the configured buffer
    /// size, the operand counts are wrong, lengths differ, or any value is
    /// out of range.
    pub fn execute(
        &self,
        instr: PimInstruction,
        inputs: &[&[u32]],
        constants: &[u32],
    ) -> Vec<Vec<u32>> {
        assert!(
            instr.profile().supported(self.buffer_entries),
            "{instr} unsupported with B = {}",
            self.buffer_entries
        );
        let n = inputs.first().map_or(0, |v| v.len());
        assert!(inputs.iter().all(|v| v.len() == n), "ragged inputs");
        let q = self.mont.q;
        for v in inputs {
            assert!(v.iter().all(|&x| x < q), "input residue out of range");
        }
        for &c in constants {
            assert!(c < q, "constant out of range");
        }
        let m = &self.mont;
        use PimInstruction::*;
        let map1 = |f: &dyn Fn(u32) -> u32| vec![inputs[0].iter().map(|&a| f(a)).collect()];
        let zip2 = |f: &dyn Fn(u32, u32) -> u32| {
            vec![inputs[0]
                .iter()
                .zip(inputs[1])
                .map(|(&a, &b)| f(a, b))
                .collect()]
        };
        match instr {
            Move => map1(&|a| a),
            Neg => map1(&|a| m.neg(a)),
            Add => zip2(&|a, b| m.add(a, b)),
            Sub => zip2(&|a, b| m.sub(a, b)),
            Mult => zip2(&|a, b| m.mul(a, b)),
            Mac => {
                assert_eq!(inputs.len(), 3, "Mac takes a, b, c");
                vec![(0..n)
                    .map(|i| m.mac(inputs[0][i], inputs[1][i], inputs[2][i]))
                    .collect()]
            }
            PMult => {
                assert_eq!(inputs.len(), 3, "PMult takes a, b, p");
                let p = inputs[2];
                vec![
                    (0..n).map(|i| m.mul(inputs[0][i], p[i])).collect(),
                    (0..n).map(|i| m.mul(inputs[1][i], p[i])).collect(),
                ]
            }
            PMac => {
                assert_eq!(inputs.len(), 5, "PMac takes a, b, p, c, d");
                let p = inputs[2];
                vec![
                    (0..n)
                        .map(|i| m.add(m.mul(inputs[0][i], p[i]), inputs[3][i]))
                        .collect(),
                    (0..n)
                        .map(|i| m.add(m.mul(inputs[1][i], p[i]), inputs[4][i]))
                        .collect(),
                ]
            }
            CAdd => map1(&|a| m.add(a, constants[0])),
            CSub => map1(&|a| m.sub(a, constants[0])),
            CMult => map1(&|a| m.mul(constants[0], a)),
            CMac => {
                assert_eq!(inputs.len(), 2, "CMac takes a, b");
                zip2(&|a, b| m.add(m.mul(constants[0], a), b))
            }
            Tensor => {
                assert_eq!(inputs.len(), 4, "Tensor takes a, b, c, d");
                let (a, b, c, d) = (inputs[0], inputs[1], inputs[2], inputs[3]);
                vec![
                    (0..n).map(|i| m.mul(a[i], c[i])).collect(),
                    (0..n)
                        .map(|i| m.add(m.mul(a[i], d[i]), m.mul(b[i], c[i])))
                        .collect(),
                    (0..n).map(|i| m.mul(b[i], d[i])).collect(),
                ]
            }
            TensorSq => {
                assert_eq!(inputs.len(), 2, "TensorSq takes a, b");
                let (a, b) = (inputs[0], inputs[1]);
                vec![
                    (0..n).map(|i| m.mul(a[i], a[i])).collect(),
                    (0..n)
                        .map(|i| {
                            let ab = m.mul(a[i], b[i]);
                            m.add(ab, ab)
                        })
                        .collect(),
                    (0..n).map(|i| m.mul(b[i], b[i])).collect(),
                ]
            }
            ModDownEp => zip2(&|a, b| m.mul(constants[0], m.sub(a, b))),
            PAccum(k) => {
                assert_eq!(inputs.len(), 3 * k, "PAccum<{k}> takes a_i, b_i, p_i");
                let (a, rest) = inputs.split_at(k);
                let (b, p) = rest.split_at(k);
                let mut x = vec![0u32; n];
                let mut y = vec![0u32; n];
                for i in 0..k {
                    for j in 0..n {
                        x[j] = m.add(x[j], m.mul(a[i][j], p[i][j]));
                        y[j] = m.add(y[j], m.mul(b[i][j], p[i][j]));
                    }
                }
                vec![x, y]
            }
            CAccum(k) => {
                assert_eq!(inputs.len(), 2 * k, "CAccum<{k}> takes a_i, b_i");
                assert_eq!(constants.len(), k + 1, "CAccum<{k}> takes C_0..C_k");
                let (a, b) = inputs.split_at(k);
                let mut x = vec![constants[0]; n];
                let mut y = vec![constants[0]; n];
                for i in 0..k {
                    let c = constants[i + 1];
                    for j in 0..n {
                        x[j] = m.add(x[j], m.mul(c, a[i][j]));
                        y[j] = m.add(y[j], m.mul(c, b[i][j]));
                    }
                }
                vec![x, y]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ckks_math::modulus::Modulus;

    /// A 28-bit NTT-friendly prime (1 mod 2^17).
    const Q: u32 = 268369921;

    #[test]
    fn montgomery_matches_reference() {
        let m = MontgomeryCtx::new(Q);
        let r = Modulus::new(Q as u64);
        for (a, b) in [(0u32, 5), (Q - 1, Q - 1), (12345, 67890), (1 << 27, 3)] {
            let a = a % Q;
            let b = b % Q;
            assert_eq!(m.mul(a, b) as u64, r.mul(a as u64, b as u64));
            assert_eq!(m.add(a, b) as u64, r.add(a as u64, b as u64));
            assert_eq!(m.sub(a, b) as u64, r.sub(a as u64, b as u64));
        }
    }

    #[test]
    fn mont_form_roundtrip() {
        let m = MontgomeryCtx::new(Q);
        for a in [0u32, 1, Q - 1, 424242] {
            assert_eq!(m.from_mont(m.to_mont(a)), a);
        }
    }

    #[test]
    fn basic_instructions_semantics() {
        let u = PimUnit::new(Q, 16);
        let a = vec![1u32, 2, Q - 1, 100];
        let b = vec![5u32, 7, 1, 50];
        let r = Modulus::new(Q as u64);
        let add = u.execute(PimInstruction::Add, &[&a, &b], &[]);
        let mult = u.execute(PimInstruction::Mult, &[&a, &b], &[]);
        let neg = u.execute(PimInstruction::Neg, &[&a], &[]);
        for i in 0..4 {
            assert_eq!(add[0][i] as u64, r.add(a[i] as u64, b[i] as u64));
            assert_eq!(mult[0][i] as u64, r.mul(a[i] as u64, b[i] as u64));
            assert_eq!(neg[0][i] as u64, r.neg(a[i] as u64));
        }
    }

    #[test]
    fn tensor_matches_ciphertext_tensor() {
        // Tensor computes (b1,a1)×(b2,a2) tensor products (HMULT step).
        let u = PimUnit::new(Q, 16);
        let a = vec![3u32, 1000];
        let b = vec![7u32, 2000];
        let c = vec![11u32, 3000];
        let d = vec![13u32, 4000];
        let out = u.execute(PimInstruction::Tensor, &[&a, &b, &c, &d], &[]);
        let r = Modulus::new(Q as u64);
        for i in 0..2 {
            assert_eq!(out[0][i] as u64, r.mul(a[i] as u64, c[i] as u64));
            assert_eq!(
                out[1][i] as u64,
                r.add(
                    r.mul(a[i] as u64, d[i] as u64),
                    r.mul(b[i] as u64, c[i] as u64)
                )
            );
            assert_eq!(out[2][i] as u64, r.mul(b[i] as u64, d[i] as u64));
        }
    }

    #[test]
    fn tensorsq_is_tensor_with_equal_inputs() {
        let u = PimUnit::new(Q, 16);
        let a = vec![3u32, 99999];
        let b = vec![7u32, 123456];
        let sq = u.execute(PimInstruction::TensorSq, &[&a, &b], &[]);
        let full = u.execute(PimInstruction::Tensor, &[&a, &b, &a, &b], &[]);
        assert_eq!(sq[0], full[0]);
        assert_eq!(sq[1], full[1]);
        assert_eq!(sq[2], full[2]);
    }

    #[test]
    fn paccum_matches_unfused_sequence() {
        // PAccum<K> must equal K sequential PMac applications (the fusion
        // is a performance optimization, not a semantic change).
        let u = PimUnit::new(Q, 32);
        let k = 4;
        let n = 8;
        let mk =
            |s: u32| -> Vec<u32> { (0..n as u32).map(|i| (s * 7919 + i * 104729) % Q).collect() };
        let a: Vec<Vec<u32>> = (0..k).map(|i| mk(i as u32)).collect();
        let b: Vec<Vec<u32>> = (0..k).map(|i| mk(i as u32 + 10)).collect();
        let p: Vec<Vec<u32>> = (0..k).map(|i| mk(i as u32 + 20)).collect();
        let mut refs: Vec<&[u32]> = Vec::new();
        refs.extend(a.iter().map(|v| v.as_slice()));
        refs.extend(b.iter().map(|v| v.as_slice()));
        refs.extend(p.iter().map(|v| v.as_slice()));
        let fused = u.execute(PimInstruction::PAccum(k), &refs, &[]);

        let mut x = vec![0u32; n];
        let mut y = vec![0u32; n];
        for i in 0..k {
            let out = u.execute(PimInstruction::PMac, &[&a[i], &b[i], &p[i], &x, &y], &[]);
            x = out[0].clone();
            y = out[1].clone();
        }
        assert_eq!(fused[0], x);
        assert_eq!(fused[1], y);
    }

    #[test]
    fn caccum_semantics() {
        let u = PimUnit::new(Q, 8);
        let a = [vec![2u32, 3], vec![5u32, 7]];
        let b = [vec![1u32, 1], vec![1u32, 1]];
        let consts = [100u32, 10, 20];
        let out = u.execute(
            PimInstruction::CAccum(2),
            &[&a[0], &a[1], &b[0], &b[1]],
            &consts,
        );
        // x = 100 + 10·a0 + 20·a1
        assert_eq!(out[0], vec![100 + 20 + 100, 100 + 30 + 140]);
        assert_eq!(out[1], vec![100 + 10 + 20, 100 + 10 + 20]);
    }

    #[test]
    fn mod_down_epilogue() {
        let u = PimUnit::new(Q, 8);
        let a = vec![10u32];
        let b = vec![3u32];
        let out = u.execute(PimInstruction::ModDownEp, &[&a, &b], &[5]);
        assert_eq!(out[0], vec![35]);
    }

    #[test]
    #[should_panic(expected = "unsupported with B = 4")]
    fn oversized_compound_rejected() {
        let u = PimUnit::new(Q, 4);
        let a = vec![0u32];
        let refs: Vec<&[u32]> = vec![&a; 12];
        u.execute(PimInstruction::PAccum(4), &refs, &[]);
    }

    #[test]
    #[should_panic(expected = "odd modulus")]
    fn even_modulus_rejected() {
        MontgomeryCtx::new(1 << 20);
    }
}
