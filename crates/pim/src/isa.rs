//! The Anaheim PIM instruction set architecture (Table II).
//!
//! Each instruction also carries an *execution profile* describing how the
//! generalized Alg. 1 runs it:
//!
//! - `buffer_slots` — how many polynomial streams must be resident in the
//!   data buffer per chunk-granularity unit. The chunk granularity is
//!   `G = ⌊B / buffer_slots⌋`; an instruction is unsupported when `G = 0`
//!   (the paper notes Tensor and PAccum⟨4⟩ are unsupported at small `B`,
//!   §VII-C).
//! - `phases` — the PolyGroups touched per iteration with their per-`G`
//!   chunk read/write multiplicities. With the column-partitioning layout
//!   each phase costs one ACT/PRE; the naive layout pays one per
//!   polynomial (§VI-C).

/// A PIM instruction (Table II). `K` compounds are parameterized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PimInstruction {
    /// `x = ±a`.
    Move,
    /// `x = −a`.
    Neg,
    /// `x = a + b`.
    Add,
    /// `x = a − b`.
    Sub,
    /// `x = a·b`.
    Mult,
    /// `x = a·b + c`.
    Mac,
    /// `x = a·p, y = b·p` (both ciphertext halves by one plaintext).
    PMult,
    /// `x = a·p + c, y = b·p + d`.
    PMac,
    /// `x = a + C` (constant embedded in the instruction).
    CAdd,
    /// `x = a − C`.
    CSub,
    /// `x = C·a`.
    CMult,
    /// `x = C·a + b`.
    CMac,
    /// `x = a·c, y = a·d + b·c, z = b·d` (HMULT tensor step).
    Tensor,
    /// `x = a², y = 2ab, z = b²`.
    TensorSq,
    /// `x = C·(a − b)` (ModDown epilogue).
    ModDownEp,
    /// `x = Σ a_i·p_i, y = Σ b_i·p_i` over `K` pairs (fused KeyMult).
    PAccum(usize),
    /// `x = C_0 + Σ C_i·a_i, y = C_0 + Σ C_i·b_i` (fused BConv-style
    /// accumulation with constants).
    CAccum(usize),
}

/// One PolyGroup phase of an iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Phase {
    /// Distinct polynomials read in this phase.
    pub polys_read: usize,
    /// Distinct polynomials written in this phase.
    pub polys_written: usize,
}

/// The execution profile of an instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstrProfile {
    /// Buffer slots resident per chunk-granularity unit.
    pub buffer_slots: usize,
    /// PolyGroup phases per iteration.
    pub phases: Vec<Phase>,
}

impl InstrProfile {
    /// Chunk granularity for a data buffer with `b` entries
    /// (`G = ⌊B/slots⌋`, Alg. 1 line 1).
    pub fn chunk_granularity(&self, b: usize) -> usize {
        b / self.buffer_slots
    }

    /// Whether the instruction is supported with `b` buffer entries.
    pub fn supported(&self, b: usize) -> bool {
        self.chunk_granularity(b) >= 1
    }

    /// Total polynomials read per iteration.
    pub fn total_reads(&self) -> usize {
        self.phases.iter().map(|p| p.polys_read).sum()
    }

    /// Total polynomials written per iteration.
    pub fn total_writes(&self) -> usize {
        self.phases.iter().map(|p| p.polys_written).sum()
    }
}

const fn ph(r: usize, w: usize) -> Phase {
    Phase {
        polys_read: r,
        polys_written: w,
    }
}

impl PimInstruction {
    /// The instruction's execution profile (buffer residency + phases).
    pub fn profile(&self) -> InstrProfile {
        use PimInstruction::*;
        // Generic instructions buffer every operand and the outputs (the
        // MMAC array has no bypass network), so their chunk granularity is
        // small and ACT/PRE amortizes poorly. The *compound* instructions
        // use the optimized PolyGroup executions of §VI-C (Alg. 1):
        // PAccum keeps only the p_i's and the two accumulators resident
        // (K+2 slots) and CAccum streams its inputs against two resident
        // accumulators — which is exactly why they achieve the highest
        // speedups in Fig. 9 (§VII-C).
        let (buffer_slots, phases) = match *self {
            Move | Neg => (2, vec![ph(1, 0), ph(0, 1)]),
            Add | Sub | Mult => (3, vec![ph(1, 0), ph(1, 0), ph(0, 1)]),
            Mac => (4, vec![ph(1, 0), ph(2, 0), ph(0, 1)]),
            PMult => (5, vec![ph(1, 0), ph(2, 0), ph(0, 2)]),
            PMac => (7, vec![ph(1, 0), ph(2, 0), ph(2, 2)]),
            CAdd | CSub | CMult => (2, vec![ph(1, 0), ph(0, 1)]),
            CMac => (3, vec![ph(1, 0), ph(1, 0), ph(0, 1)]),
            Tensor => (7, vec![ph(2, 0), ph(2, 0), ph(0, 3)]),
            TensorSq => (5, vec![ph(2, 0), ph(0, 3)]),
            ModDownEp => (3, vec![ph(1, 0), ph(1, 0), ph(0, 1)]),
            PAccum(k) => (k + 2, vec![ph(k, 0), ph(2 * k, 0), ph(0, 2)]),
            CAccum(k) => (2, vec![ph(2 * k, 0), ph(0, 2)]),
        };
        InstrProfile {
            buffer_slots,
            phases,
        }
    }

    /// Modular MMAC operations per output element-lane step (used for
    /// compute-energy accounting; every streamed input passes through the
    /// MMAC array, §VI-A).
    pub fn mmac_ops_per_element(&self) -> usize {
        use PimInstruction::*;
        match *self {
            Move | Neg | CAdd | CSub => 1,
            Add | Sub | Mult | CMult => 1,
            Mac | CMac | ModDownEp => 2,
            PMult => 2,
            PMac => 4,
            Tensor => 4,
            TensorSq => 3,
            PAccum(k) => 2 * k,
            CAccum(k) => 2 * k,
        }
    }

    /// A short mnemonic, e.g. `PAccum<4>`.
    pub fn mnemonic(&self) -> String {
        use PimInstruction::*;
        match *self {
            PAccum(k) => format!("PAccum<{k}>"),
            CAccum(k) => format!("CAccum<{k}>"),
            other => format!("{other:?}"),
        }
    }

    /// All instructions in Table II order, with the paper's default `K = 4`
    /// for the accumulating compounds.
    pub fn table2(k: usize) -> Vec<PimInstruction> {
        use PimInstruction::*;
        vec![
            Move,
            Neg,
            Add,
            Sub,
            Mult,
            Mac,
            PMult,
            PMac,
            CAdd,
            CSub,
            CMult,
            CMac,
            Tensor,
            TensorSq,
            ModDownEp,
            PAccum(k),
            CAccum(k),
        ]
    }
}

impl std::fmt::Display for PimInstruction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paccum4_matches_alg1() {
        // Alg. 1: G = ⌊B/6⌋; phases read 4G (p's), 8G (a,b pairs), write 2G.
        let p = PimInstruction::PAccum(4).profile();
        assert_eq!(p.buffer_slots, 6);
        assert_eq!(p.chunk_granularity(16), 2);
        assert_eq!(p.phases.len(), 3);
        assert_eq!(p.phases[0].polys_read, 4);
        assert_eq!(p.phases[1].polys_read, 8);
        assert_eq!(p.phases[2].polys_written, 2);
        assert_eq!(p.total_reads(), 12);
        assert_eq!(p.total_writes(), 2);
    }

    #[test]
    fn small_buffer_unsupported_compounds() {
        // §VII-C: Tensor and PAccum⟨4⟩ unsupported at B = 4.
        assert!(!PimInstruction::Tensor.profile().supported(4));
        assert!(!PimInstruction::PAccum(4).profile().supported(4));
        // ...while simple and CAccum instructions still work.
        assert!(PimInstruction::Add.profile().supported(4));
        assert!(PimInstruction::CAccum(4).profile().supported(4));
        // PMac also exceeds a 4-entry buffer (7 resident streams).
        assert!(!PimInstruction::PMac.profile().supported(4));
        // Everything is supported at the default B = 16.
        for i in PimInstruction::table2(4) {
            assert!(i.profile().supported(16), "{i} must run at B=16");
        }
    }

    #[test]
    fn granularity_grows_with_buffer() {
        for i in PimInstruction::table2(4) {
            let p = i.profile();
            assert!(p.chunk_granularity(64) >= p.chunk_granularity(16), "{i}");
        }
    }

    #[test]
    fn mnemonics() {
        assert_eq!(PimInstruction::PAccum(4).mnemonic(), "PAccum<4>");
        assert_eq!(PimInstruction::Add.mnemonic(), "Add");
        assert_eq!(format!("{}", PimInstruction::CAccum(8)), "CAccum<8>");
    }

    #[test]
    fn table2_has_all_17_instructions() {
        assert_eq!(PimInstruction::table2(4).len(), 17);
    }
}
