//! Seedable, deterministic fault injection for the PIM model.
//!
//! Real in-memory compute must contend with faulty lanes, dropped commands,
//! and cell corruption that a clean simulator never exercises. This module
//! provides the knobs: a [`FaultPlan`] describes *what* can go wrong and how
//! often, and a [`FaultInjector`] samples concrete fault events from it with
//! a self-contained SplitMix64 stream — the same seed and plan always yield
//! the same faults, so figure runs and regression tests stay reproducible.
//!
//! Three fault classes (mirroring the reliability literature on deployed
//! PIM systems):
//!
//! - **Bank cell bit flips** — a random bit of a random stored chunk is
//!   inverted ([`FaultInjector::maybe_corrupt_bank`]), caught afterwards by the
//!   per-PolyGroup residue checksums.
//! - **Stuck MMAC lanes** — one of the eight 28-bit lanes behind the
//!   256-bit global I/O always drives its stuck value (a *hard* fault;
//!   retrying on PIM cannot help).
//! - **Command drops/corruption** — entries of the per-bank lockstep
//!   schedule are deleted or perturbed ([`FaultInjector::perturb_commands`]).
//!
//! The plan also carries the *GPU-side* fault domain so a chaos storm can
//! exercise both executors of a hybrid schedule:
//!
//! - **Stream stalls** — a GPU kernel's stream hiccups and the kernel takes
//!   `gpu_stall_ns` longer ([`FaultInjector::sample_gpu_stall`]); purely a
//!   latency event, the result stays correct.
//! - **Transfer bit flips** — a result transfer off the GPU is silently
//!   corrupted ([`FaultInjector::sample_gpu_transfer_flip`]). Unlike PIM
//!   faults there is no per-kernel residue checksum on this path, so the
//!   corruption is only caught by the *end-to-end* integrity verdict the
//!   scheduler attaches to its report.

use crate::bankexec::{SimulatedBank, ELEMS_PER_CHUNK};
use crate::layout::PolyGroup;
use dram::engine::BankCommand;

/// Per-run fault configuration. `FaultPlan::none()` (also `Default`)
/// disables every fault class.
///
/// ```
/// use pim::fault::FaultPlan;
///
/// let plan = FaultPlan::none()
///     .with_seed(23)
///     .with_bank_flips(0.01)
///     .with_stuck_lane(3);
/// assert!(!plan.is_benign());
///
/// // Derived streams re-seed deterministically: the same (seed, salt)
/// // always yields the same stream, independent of execution order.
/// assert_eq!(plan.derive_stream(5).seed, plan.derive_stream(5).seed);
/// assert_ne!(plan.derive_stream(5).seed, plan.derive_stream(6).seed);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed of the deterministic fault stream.
    pub seed: u64,
    /// Probability (per kernel) that a stored bank cell suffers a bit flip.
    pub bank_flip_prob: f64,
    /// A permanently stuck MMAC lane (0..8), if any.
    pub stuck_lane: Option<u8>,
    /// Probability (per bank command) that the command is dropped.
    pub cmd_drop_prob: f64,
    /// Probability (per bank command) that the command is corrupted
    /// (wrong row on ACT, wrong chunk count on RD/WR).
    pub cmd_corrupt_prob: f64,
    /// Probability (per GPU kernel) that the kernel's stream stalls and the
    /// kernel takes [`gpu_stall_ns`](Self::gpu_stall_ns) longer.
    pub gpu_stall_prob: f64,
    /// Extra latency charged when a GPU stream stall fires.
    pub gpu_stall_ns: f64,
    /// Probability (per GPU kernel) that the kernel's result transfer is
    /// silently corrupted — caught only by the end-to-end integrity
    /// verdict, never by a per-kernel check.
    pub gpu_flip_prob: f64,
}

impl FaultPlan {
    /// Derives an independent fault stream for a sub-unit of work (one
    /// serving request, one shard): the same plan with a new seed mixed
    /// deterministically from the base seed and `salt`. Outcomes of derived
    /// streams never depend on the order the units execute in, which is
    /// what keeps a multi-request chaos soak bit-reproducible.
    pub fn derive_stream(mut self, salt: u64) -> Self {
        let mut z = self
            .seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(salt.wrapping_mul(0xD1B5_4A32_D192_ED03));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        self.seed = z ^ (z >> 31);
        self
    }

    /// A benign plan: no faults.
    pub fn none() -> Self {
        Self {
            seed: 0,
            bank_flip_prob: 0.0,
            stuck_lane: None,
            cmd_drop_prob: 0.0,
            cmd_corrupt_prob: 0.0,
            gpu_stall_prob: 0.0,
            gpu_stall_ns: 0.0,
            gpu_flip_prob: 0.0,
        }
    }

    /// Sets the fault-stream seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the per-kernel bank bit-flip probability.
    pub fn with_bank_flips(mut self, prob: f64) -> Self {
        self.bank_flip_prob = prob;
        self
    }

    /// Sticks one MMAC lane.
    pub fn with_stuck_lane(mut self, lane: u8) -> Self {
        assert!((lane as usize) < ELEMS_PER_CHUNK, "lanes are 0..8");
        self.stuck_lane = Some(lane);
        self
    }

    /// Sets the per-command drop probability.
    pub fn with_cmd_drops(mut self, prob: f64) -> Self {
        self.cmd_drop_prob = prob;
        self
    }

    /// Sets the per-command corruption probability.
    pub fn with_cmd_corruption(mut self, prob: f64) -> Self {
        self.cmd_corrupt_prob = prob;
        self
    }

    /// Enables GPU stream stalls: with probability `prob` per GPU kernel,
    /// the kernel takes `stall_ns` longer.
    pub fn with_gpu_stalls(mut self, prob: f64, stall_ns: f64) -> Self {
        assert!(stall_ns >= 0.0, "stall latency must be non-negative");
        self.gpu_stall_prob = prob;
        self.gpu_stall_ns = stall_ns;
        self
    }

    /// Sets the per-GPU-kernel transfer bit-flip probability.
    pub fn with_gpu_transfer_flips(mut self, prob: f64) -> Self {
        self.gpu_flip_prob = prob;
        self
    }

    /// Whether the plan can produce any fault at all.
    pub fn is_benign(&self) -> bool {
        self.bank_flip_prob <= 0.0
            && self.stuck_lane.is_none()
            && self.cmd_drop_prob <= 0.0
            && self.cmd_corrupt_prob <= 0.0
            && self.gpu_stall_prob <= 0.0
            && self.gpu_flip_prob <= 0.0
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

/// The health domain a PIM kernel is attributed to, for per-bank fault
/// accounting. The device's die groups are the natural domain granularity:
/// all banks of a die group operate in lockstep, so a fault observed by a
/// kernel is charged to the die group that ran it. Hardware faults with a
/// physical location (a stuck MMAC lane) map onto a domain via
/// [`BankDomain::of_lane`], so a bank-scoped scheduler can route around the
/// sick group while its siblings keep serving.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BankDomain {
    /// Domain index in `0..count`.
    pub index: u32,
    /// Total health domains (die groups) on the device.
    pub count: u32,
}

impl BankDomain {
    /// A domain handle; `index` must be below `count`.
    pub fn new(index: u32, count: u32) -> Self {
        assert!(index < count, "domain {index} out of range (count {count})");
        Self { index, count }
    }

    /// The domain that owns a physical MMAC lane.
    pub fn of_lane(lane: u8, count: u32) -> Self {
        assert!(count > 0, "at least one domain");
        Self {
            index: lane as u32 % count,
            count,
        }
    }

    /// Whether a stuck lane lives inside this domain.
    pub fn owns_lane(&self, lane: u8) -> bool {
        lane as u32 % self.count == self.index
    }
}

/// One injected bank cell bit flip, for logging/assertion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitFlip {
    /// Bank row of the flipped cell.
    pub row: usize,
    /// Chunk column within the row.
    pub col: usize,
    /// Element (lane) within the chunk.
    pub elem: usize,
    /// Bit index within the 32-bit element.
    pub bit: u8,
}

/// What `perturb_commands` did to a schedule.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommandFaults {
    /// Commands deleted.
    pub dropped: u32,
    /// Commands altered in place.
    pub corrupted: u32,
}

impl CommandFaults {
    /// Whether any command fault fired.
    pub fn any(&self) -> bool {
        self.dropped > 0 || self.corrupted > 0
    }
}

/// Running totals across a fault injector's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Bank cell bit flips injected.
    pub bit_flips: u64,
    /// Bank commands dropped.
    pub commands_dropped: u64,
    /// Bank commands corrupted.
    pub commands_corrupted: u64,
    /// GPU stream stalls injected.
    pub gpu_stalls: u64,
    /// GPU transfer bit flips injected.
    pub gpu_transfer_flips: u64,
}

/// Samples concrete fault events from a [`FaultPlan`].
///
/// Internally a SplitMix64 stream — deliberately *not* the workspace `rand`
/// crate, so the fault sequence is pinned by this module alone and the
/// non-dev dependency graph of `pim` stays unchanged.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    state: u64,
    stats: FaultStats,
}

impl FaultInjector {
    /// An injector for a plan.
    pub fn new(plan: FaultPlan) -> Self {
        Self {
            plan,
            // Offset so seed 0 still produces a lively stream.
            state: plan.seed ^ 0x9E37_79B9_7F4A_7C15,
            stats: FaultStats::default(),
        }
    }

    /// The plan in force.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Totals injected so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// The stuck lane, if the plan configures one.
    pub fn stuck_lane(&self) -> Option<u8> {
        self.plan.stuck_lane
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        let zone = u64::MAX - u64::MAX % span;
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % span;
            }
        }
    }

    fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }

    /// Unconditionally flips one random bit inside the group's allocation,
    /// returning its coordinates. Used by tests and by
    /// [`maybe_corrupt_bank`](Self::maybe_corrupt_bank).
    pub fn flip_group_bit(&mut self, bank: &mut SimulatedBank, g: &PolyGroup) -> BitFlip {
        let poly = self.below(g.polys as u64) as usize;
        let chunk = self.below(g.chunks_per_poly as u64) as usize;
        let elem = self.below(ELEMS_PER_CHUNK as u64) as usize;
        let bit = self.below(32) as u8;
        let row = g.row_of(poly, chunk);
        let col = g.col_of(poly, chunk);
        bank.flip_bit(row, col, elem, bit);
        self.stats.bit_flips += 1;
        BitFlip {
            row,
            col,
            elem,
            bit,
        }
    }

    /// With probability `bank_flip_prob`, flips one random bit inside the
    /// group's allocation.
    pub fn maybe_corrupt_bank(
        &mut self,
        bank: &mut SimulatedBank,
        g: &PolyGroup,
    ) -> Option<BitFlip> {
        let p = self.plan.bank_flip_prob;
        if self.chance(p) {
            Some(self.flip_group_bit(bank, g))
        } else {
            None
        }
    }

    /// Abstract form of [`maybe_corrupt_bank`](Self::maybe_corrupt_bank) for
    /// the timing model, where no functional [`SimulatedBank`] backs the
    /// kernel's data: with probability `bank_flip_prob`, reports that a
    /// stored-cell bit flip hit the kernel's operands (and counts it in
    /// [`FaultStats::bit_flips`]).
    pub fn sample_kernel_bit_flip(&mut self) -> bool {
        let p = self.plan.bank_flip_prob;
        if self.chance(p) {
            self.stats.bit_flips += 1;
            true
        } else {
            false
        }
    }

    /// With probability `gpu_stall_prob`, reports a GPU stream stall and
    /// returns the extra latency to charge (and counts it in
    /// [`FaultStats::gpu_stalls`]). Probability-zero plans draw nothing
    /// from the stream, so enabling the GPU domain later cannot perturb
    /// PIM-only fault sequences.
    pub fn sample_gpu_stall(&mut self) -> Option<f64> {
        if self.chance(self.plan.gpu_stall_prob) {
            self.stats.gpu_stalls += 1;
            Some(self.plan.gpu_stall_ns)
        } else {
            None
        }
    }

    /// With probability `gpu_flip_prob`, reports that the kernel's result
    /// transfer was silently corrupted (and counts it in
    /// [`FaultStats::gpu_transfer_flips`]). The caller is responsible for
    /// failing the end-to-end integrity verdict — there is no per-kernel
    /// detection on the GPU path.
    pub fn sample_gpu_transfer_flip(&mut self) -> bool {
        if self.chance(self.plan.gpu_flip_prob) {
            self.stats.gpu_transfer_flips += 1;
            true
        } else {
            false
        }
    }

    /// Drops/corrupts entries of a lockstep bank-command schedule in place.
    pub fn perturb_commands(&mut self, cmds: &mut Vec<BankCommand>) -> CommandFaults {
        let mut faults = CommandFaults::default();
        if self.plan.cmd_drop_prob <= 0.0 && self.plan.cmd_corrupt_prob <= 0.0 {
            return faults;
        }
        let mut i = 0;
        while i < cmds.len() {
            if self.chance(self.plan.cmd_drop_prob) {
                cmds.remove(i);
                faults.dropped += 1;
                continue;
            }
            if self.chance(self.plan.cmd_corrupt_prob) {
                cmds[i] = match cmds[i] {
                    BankCommand::Act { row } => BankCommand::Act { row: row ^ 1 },
                    BankCommand::Read { chunks } => BankCommand::Read {
                        chunks: chunks.saturating_add(1),
                    },
                    BankCommand::Write { chunks } => BankCommand::Write {
                        chunks: chunks.saturating_add(1),
                    },
                    BankCommand::Pre => BankCommand::Pre,
                };
                faults.corrupted += 1;
            }
            i += 1;
        }
        self.stats.commands_dropped += faults.dropped as u64;
        self.stats.commands_corrupted += faults.corrupted as u64;
        faults
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{LayoutPolicy, PolyGroupAllocator};

    fn small_group() -> (SimulatedBank, PolyGroup) {
        let mut alloc = PolyGroupAllocator::new(32, 64, LayoutPolicy::ColumnPartitioned);
        let g = alloc.alloc(2, 16);
        (SimulatedBank::new(64, 32), g)
    }

    #[test]
    fn same_seed_same_faults() {
        let plan = FaultPlan::none()
            .with_seed(42)
            .with_bank_flips(0.7)
            .with_cmd_drops(0.2)
            .with_cmd_corruption(0.2);
        let run = || {
            let mut inj = FaultInjector::new(plan);
            let (mut bank, g) = small_group();
            let flips: Vec<Option<BitFlip>> = (0..16)
                .map(|_| inj.maybe_corrupt_bank(&mut bank, &g))
                .collect();
            let mut cmds = vec![
                BankCommand::Act { row: 0 },
                BankCommand::Read { chunks: 4 },
                BankCommand::Write { chunks: 2 },
                BankCommand::Pre,
            ];
            let f = inj.perturb_commands(&mut cmds);
            (flips, cmds, f, inj.stats())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn benign_plan_never_fires() {
        let mut inj = FaultInjector::new(FaultPlan::none());
        assert!(inj.plan().is_benign());
        let (mut bank, g) = small_group();
        for _ in 0..100 {
            assert_eq!(inj.maybe_corrupt_bank(&mut bank, &g), None);
        }
        let mut cmds = vec![BankCommand::Act { row: 0 }, BankCommand::Pre];
        assert!(!inj.perturb_commands(&mut cmds).any());
        assert_eq!(cmds.len(), 2);
        assert_eq!(inj.stats(), FaultStats::default());
    }

    #[test]
    fn bit_flip_changes_exactly_one_checksum() {
        let (mut bank, g) = small_group();
        let before = bank.checksum_group(&g);
        let mut inj = FaultInjector::new(FaultPlan::none().with_seed(7));
        let flip = inj.flip_group_bit(&mut bank, &g);
        assert!(flip.bit < 32 && flip.elem < ELEMS_PER_CHUNK);
        assert_ne!(bank.checksum_group(&g), before, "checksum must catch it");
        // Flipping the same bit back restores the checksum.
        bank.flip_bit(flip.row, flip.col, flip.elem, flip.bit);
        assert_eq!(bank.checksum_group(&g), before);
    }

    #[test]
    fn command_drops_shrink_schedule() {
        let plan = FaultPlan::none().with_seed(3).with_cmd_drops(1.0);
        let mut inj = FaultInjector::new(plan);
        let mut cmds = vec![BankCommand::Act { row: 1 }; 10];
        let f = inj.perturb_commands(&mut cmds);
        assert_eq!(f.dropped, 10);
        assert!(cmds.is_empty());
    }

    #[test]
    fn derived_streams_are_deterministic_and_distinct() {
        let base = FaultPlan::none().with_seed(9).with_bank_flips(0.5);
        let a = base.derive_stream(1);
        let b = base.derive_stream(2);
        assert_eq!(a, base.derive_stream(1), "same salt, same stream");
        assert_ne!(a.seed, b.seed, "different salts diverge");
        assert_ne!(a.seed, base.seed, "salt 1 must not be the identity");
        assert_eq!(a.bank_flip_prob, base.bank_flip_prob, "plan knobs survive");
        // Even salt 0 reseeds: the derived stream is never the parent's.
        assert_ne!(base.derive_stream(0).seed, base.seed);
    }

    #[test]
    fn bank_domain_lane_ownership() {
        let d = BankDomain::of_lane(5, 4);
        assert_eq!(d.index, 1);
        assert!(d.owns_lane(5));
        assert!(d.owns_lane(1));
        assert!(!d.owns_lane(2));
        assert!(!BankDomain::new(0, 4).owns_lane(5));
    }

    #[test]
    fn stuck_lane_is_validated() {
        let plan = FaultPlan::none().with_stuck_lane(7);
        assert_eq!(FaultInjector::new(plan).stuck_lane(), Some(7));
        assert!(!plan.is_benign());
    }

    #[test]
    fn gpu_faults_make_a_plan_non_benign() {
        assert!(!FaultPlan::none().with_gpu_stalls(0.1, 500.0).is_benign());
        assert!(!FaultPlan::none().with_gpu_transfer_flips(0.1).is_benign());
        // Zero-probability GPU knobs stay benign.
        assert!(FaultPlan::none().with_gpu_stalls(0.0, 500.0).is_benign());
        assert!(FaultPlan::none().with_gpu_transfer_flips(0.0).is_benign());
    }

    #[test]
    fn gpu_fault_sampling_is_deterministic() {
        let plan = FaultPlan::none()
            .with_seed(77)
            .with_gpu_stalls(0.4, 1500.0)
            .with_gpu_transfer_flips(0.3);
        let run = || {
            let mut inj = FaultInjector::new(plan);
            let events: Vec<(Option<f64>, bool)> = (0..64)
                .map(|_| (inj.sample_gpu_stall(), inj.sample_gpu_transfer_flip()))
                .collect();
            (events, inj.stats())
        };
        let (events, stats) = run();
        assert_eq!(run(), (events.clone(), stats), "same seed, same GPU faults");
        assert!(stats.gpu_stalls > 0 && stats.gpu_transfer_flips > 0);
        assert!(events
            .iter()
            .all(|(s, _)| s.is_none() || *s == Some(1500.0)));
    }

    #[test]
    fn zero_probability_gpu_knobs_consume_no_stream() {
        // A PIM-only plan must sample identically whether or not the GPU
        // sites also poll the injector: chance(0) short-circuits.
        let plan = FaultPlan::none().with_seed(13).with_bank_flips(0.5);
        let mut plain = FaultInjector::new(plan);
        let mut polled = FaultInjector::new(plan);
        let a: Vec<bool> = (0..32).map(|_| plain.sample_kernel_bit_flip()).collect();
        let b: Vec<bool> = (0..32)
            .map(|_| {
                assert_eq!(polled.sample_gpu_stall(), None);
                assert!(!polled.sample_gpu_transfer_flip());
                polled.sample_kernel_bit_flip()
            })
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn derive_stream_round_trips_gpu_knobs() {
        let base = FaultPlan::none()
            .with_seed(21)
            .with_bank_flips(0.05)
            .with_gpu_stalls(0.2, 2500.0)
            .with_gpu_transfer_flips(0.1);
        let d = base.derive_stream(9);
        assert_eq!(d, base.derive_stream(9), "same salt, same derived plan");
        assert_ne!(d.seed, base.seed);
        // Every knob except the seed survives derivation.
        assert_eq!(
            FaultPlan {
                seed: base.seed,
                ..d
            },
            base,
            "derive_stream must only reseed"
        );
    }
}
