//! Typed errors for the PIM layer.
//!
//! The reliability refactor (see `DESIGN.md`, "Reliability & fault model")
//! turns the panic-prone crate-boundary APIs into `Result`s so injected
//! faults propagate as values: layout/addressing violations surface as
//! [`LayoutError`], kernel-level problems (unsupported instructions,
//! integrity-check failures) as [`PimError`].

use crate::exec::PimKernelResult;
use dram::engine::ProtocolError;
use std::fmt;

/// Addressing or allocation violations in the bank data layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayoutError {
    /// Polynomial index outside the group.
    PolyOutOfRange {
        /// Requested polynomial index.
        poly: usize,
        /// Polynomials in the group.
        polys: usize,
    },
    /// Chunk index outside the polynomial.
    ChunkOutOfRange {
        /// Requested chunk index.
        chunk: usize,
        /// Chunks per polynomial.
        chunks_per_poly: usize,
    },
    /// Computed column falls outside the bank row.
    ColumnOutOfRange {
        /// Computed column.
        col: usize,
        /// Chunks per bank row.
        chunks_per_row: usize,
    },
    /// Computed row falls outside the bank.
    RowOutOfRange {
        /// Computed row.
        row: usize,
        /// Rows in the bank.
        rows: usize,
    },
    /// Data length does not match the group's allocation.
    DataSizeMismatch {
        /// Elements provided.
        got: usize,
        /// Elements the allocation holds.
        want: usize,
    },
    /// Allocation would not fit in the remaining bank rows.
    RowsExhausted {
        /// Rows the allocation needs.
        need: usize,
        /// Rows still free.
        free: usize,
    },
    /// A column-partitioned group cannot hold more polynomials than a row
    /// has chunks.
    TooManyPolys {
        /// Polynomials requested.
        polys: usize,
        /// Chunks per bank row.
        chunks_per_row: usize,
    },
    /// Zero-sized allocation request.
    EmptyAllocation,
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayoutError::PolyOutOfRange { poly, polys } => {
                write!(f, "poly index {poly} out of range (group holds {polys})")
            }
            LayoutError::ChunkOutOfRange {
                chunk,
                chunks_per_poly,
            } => write!(
                f,
                "chunk index {chunk} out of range (poly has {chunks_per_poly} chunks)"
            ),
            LayoutError::ColumnOutOfRange {
                col,
                chunks_per_row,
            } => write!(
                f,
                "column {col} out of row bounds (row has {chunks_per_row} chunks)"
            ),
            LayoutError::RowOutOfRange { row, rows } => {
                write!(f, "row {row} out of bank bounds (bank has {rows} rows)")
            }
            LayoutError::DataSizeMismatch { got, want } => {
                write!(f, "data has {got} elements but the allocation holds {want}")
            }
            LayoutError::RowsExhausted { need, free } => {
                write!(f, "bank rows exhausted: need {need}, have {free}")
            }
            LayoutError::TooManyPolys {
                polys,
                chunks_per_row,
            } => write!(
                f,
                "more polynomials ({polys}) than row chunks ({chunks_per_row})"
            ),
            LayoutError::EmptyAllocation => write!(f, "empty allocation"),
        }
    }
}

impl std::error::Error for LayoutError {}

/// What the post-kernel integrity check observed.
///
/// Carried inside [`PimError::IntegrityViolation`]; the `wasted` field holds
/// the timing/energy of the failed attempt so schedulers can charge the
/// retry cost honestly.
#[derive(Debug, Clone, PartialEq)]
pub struct IntegrityReport {
    /// Mnemonic of the kernel that failed verification.
    pub kernel: String,
    /// Bank cell bit flips detected via PolyGroup checksums.
    pub bit_flips: u32,
    /// Bank commands dropped from the lockstep schedule.
    pub commands_dropped: u32,
    /// Bank commands corrupted in the lockstep schedule.
    pub commands_corrupted: u32,
    /// A stuck MMAC lane, if one is configured (a *hard* fault: retrying
    /// on PIM cannot succeed).
    pub stuck_lane: Option<u8>,
    /// Cost of the failed attempt (still paid by the schedule).
    pub wasted: PimKernelResult,
}

impl IntegrityReport {
    /// Whether retrying on PIM is futile (hard fault).
    pub fn is_permanent(&self) -> bool {
        self.stuck_lane.is_some()
    }

    /// A stable label for the dominant fault cause, used as the `cause`
    /// field of breaker-transition logs (hard faults dominate transients).
    pub fn cause(&self) -> &'static str {
        if self.stuck_lane.is_some() {
            "stuck-lane"
        } else if self.bit_flips > 0 {
            "bit-flip"
        } else if self.commands_dropped > 0 {
            "cmd-drop"
        } else if self.commands_corrupted > 0 {
            "cmd-corrupt"
        } else {
            "unknown"
        }
    }
}

/// Kernel-level PIM failures.
#[derive(Debug, Clone, PartialEq)]
pub enum PimError {
    /// The instruction cannot run with the configured data-buffer size
    /// (`G = 0`, the §VII-C hardware restriction).
    Unsupported {
        /// Instruction mnemonic.
        mnemonic: String,
        /// Configured buffer entries `B`.
        buffer_entries: usize,
    },
    /// A layout/addressing violation.
    Layout(LayoutError),
    /// The lockstep schedule violated the DRAM command protocol.
    Protocol(ProtocolError),
    /// The post-kernel integrity check failed.
    IntegrityViolation(Box<IntegrityReport>),
}

impl fmt::Display for PimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PimError::Unsupported {
                mnemonic,
                buffer_entries,
            } => write!(f, "{mnemonic} unsupported with B = {buffer_entries}"),
            PimError::Layout(e) => write!(f, "layout error: {e}"),
            PimError::Protocol(e) => write!(f, "DRAM protocol violation: {e}"),
            PimError::IntegrityViolation(r) => {
                write!(
                    f,
                    "integrity violation in {}: {} bit flip(s), {} dropped / {} corrupted command(s)",
                    r.kernel, r.bit_flips, r.commands_dropped, r.commands_corrupted
                )?;
                if let Some(lane) = r.stuck_lane {
                    write!(f, ", MMAC lane {lane} stuck")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for PimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PimError::Layout(e) => Some(e),
            PimError::Protocol(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LayoutError> for PimError {
    fn from(e: LayoutError) -> Self {
        PimError::Layout(e)
    }
}

impl From<ProtocolError> for PimError {
    fn from(e: ProtocolError) -> Self {
        PimError::Protocol(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = LayoutError::RowsExhausted { need: 8, free: 2 };
        assert_eq!(e.to_string(), "bank rows exhausted: need 8, have 2");
        let p = PimError::Unsupported {
            mnemonic: "PAccum<4>".into(),
            buffer_entries: 4,
        };
        assert_eq!(p.to_string(), "PAccum<4> unsupported with B = 4");
        let pe = PimError::from(ProtocolError::ReadWithoutOpenRow);
        assert_eq!(
            pe.to_string(),
            "DRAM protocol violation: RD requires an open row"
        );
        let v = PimError::IntegrityViolation(Box::new(IntegrityReport {
            kernel: "Add".into(),
            bit_flips: 1,
            commands_dropped: 0,
            commands_corrupted: 0,
            stuck_lane: Some(3),
            wasted: PimKernelResult::default(),
        }));
        assert!(v.to_string().contains("lane 3 stuck"));
        assert!(matches!(v, PimError::IntegrityViolation(_)));
    }

    #[test]
    fn layout_error_converts() {
        let e: PimError = LayoutError::EmptyAllocation.into();
        assert!(matches!(e, PimError::Layout(LayoutError::EmptyAllocation)));
    }
}
