//! The column-partitioning data layout and PolyGroups (§VI-B, Fig. 7).
//!
//! All banks of a die-group cooperatively store a polynomial: with `N`
//! coefficients of 32 bits spread over the group's banks, each bank holds
//! `C` 256-bit chunks per limb. The *column-partitioning* (CP) layout slices
//! each DRAM row into column groups (CGs) and stacks a limb's chunks across
//! the rows of a row group (RG), so that polynomials accessed together live
//! in the *same rows* — one ACT serves a whole phase of an Alg. 1 iteration.
//! The naive *contiguous* layout gives each polynomial its own rows, paying
//! one ACT per polynomial per iteration (the w/o-CP ablation of Fig. 10).

use crate::error::LayoutError;

/// Which data placement the execution engine assumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayoutPolicy {
    /// Column partitioning: co-accessed polynomials share rows (Fig. 7).
    ColumnPartitioned,
    /// Contiguous allocation: each polynomial fills rows on its own.
    Contiguous,
}

/// A reservation of bank rows for a set of co-accessed polynomials.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolyGroup {
    /// Identifier (allocation order).
    pub id: usize,
    /// First bank row of the reservation.
    pub first_row: usize,
    /// Number of rows reserved (the row-group height).
    pub rows: usize,
    /// Number of polynomials sharing the group.
    pub polys: usize,
    /// Chunks of one polynomial per row (the column-group width).
    pub cg_chunks: usize,
    /// Chunks per polynomial per bank (`C`).
    pub chunks_per_poly: usize,
}

impl PolyGroup {
    fn check_indices(&self, poly: usize, chunk: usize) -> Result<(), LayoutError> {
        if poly >= self.polys {
            return Err(LayoutError::PolyOutOfRange {
                poly,
                polys: self.polys,
            });
        }
        if chunk >= self.chunks_per_poly {
            return Err(LayoutError::ChunkOutOfRange {
                chunk,
                chunks_per_poly: self.chunks_per_poly,
            });
        }
        Ok(())
    }

    /// Bounds-checked variant of [`row_of`](Self::row_of).
    pub fn try_row_of(&self, poly: usize, chunk: usize) -> Result<usize, LayoutError> {
        self.check_indices(poly, chunk)?;
        Ok(self.first_row + chunk / self.cg_chunks)
    }

    /// Bounds-checked variant of [`col_of`](Self::col_of).
    pub fn try_col_of(&self, poly: usize, chunk: usize) -> Result<usize, LayoutError> {
        self.check_indices(poly, chunk)?;
        Ok(poly * self.cg_chunks + chunk % self.cg_chunks)
    }

    /// The row holding chunk `idx` of polynomial `poly` in this group.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range; use
    /// [`try_row_of`](Self::try_row_of) for a typed error.
    pub fn row_of(&self, poly: usize, chunk: usize) -> usize {
        assert!(poly < self.polys, "poly index out of range");
        assert!(chunk < self.chunks_per_poly, "chunk index out of range");
        self.first_row + chunk / self.cg_chunks
    }

    /// The column (chunk slot within the row) holding chunk `chunk` of
    /// polynomial `poly`: each polynomial owns the column-group slice
    /// `[poly·cg, (poly+1)·cg)` of every row-group row (Fig. 7).
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range; use
    /// [`try_col_of`](Self::try_col_of) for a typed error.
    pub fn col_of(&self, poly: usize, chunk: usize) -> usize {
        assert!(poly < self.polys, "poly index out of range");
        assert!(chunk < self.chunks_per_poly, "chunk index out of range");
        poly * self.cg_chunks + chunk % self.cg_chunks
    }
}

/// Allocates PolyGroups within one bank's row space. FHE workloads are
/// static (§V-C), so allocation is performed once, up front.
#[derive(Debug)]
pub struct PolyGroupAllocator {
    chunks_per_row: usize,
    total_rows: usize,
    next_row: usize,
    next_id: usize,
    policy: LayoutPolicy,
}

impl PolyGroupAllocator {
    /// Creates an allocator over a bank with `total_rows` rows of
    /// `chunks_per_row` chunks.
    ///
    /// # Panics
    ///
    /// Panics on zero sizes.
    pub fn new(chunks_per_row: usize, total_rows: usize, policy: LayoutPolicy) -> Self {
        assert!(
            chunks_per_row >= 1 && total_rows >= 1,
            "degenerate bank shape"
        );
        Self {
            chunks_per_row,
            total_rows,
            next_row: 0,
            next_id: 0,
            policy,
        }
    }

    /// The active layout policy.
    pub fn policy(&self) -> LayoutPolicy {
        self.policy
    }

    /// Rows already reserved.
    pub fn rows_used(&self) -> usize {
        self.next_row
    }

    /// Rows remaining.
    pub fn rows_free(&self) -> usize {
        self.total_rows - self.next_row
    }

    /// Reserves space for `polys` polynomials of `chunks_per_poly` chunks
    /// each (per bank).
    ///
    /// Under [`LayoutPolicy::ColumnPartitioned`], the row is split into
    /// `polys` column groups (power-of-two padded); under
    /// [`LayoutPolicy::Contiguous`], each polynomial packs rows densely on
    /// its own.
    ///
    /// # Panics
    ///
    /// Panics if the group does not fit in the remaining rows, or if a CP
    /// allocation asks for more polynomials than a row has chunks; use
    /// [`try_alloc`](Self::try_alloc) for a typed error.
    pub fn alloc(&mut self, polys: usize, chunks_per_poly: usize) -> PolyGroup {
        match self.try_alloc(polys, chunks_per_poly) {
            Ok(g) => g,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible variant of [`alloc`](Self::alloc).
    pub fn try_alloc(
        &mut self,
        polys: usize,
        chunks_per_poly: usize,
    ) -> Result<PolyGroup, LayoutError> {
        if polys < 1 || chunks_per_poly < 1 {
            return Err(LayoutError::EmptyAllocation);
        }
        let (rows, cg_chunks) = match self.policy {
            LayoutPolicy::ColumnPartitioned => {
                if polys > self.chunks_per_row {
                    return Err(LayoutError::TooManyPolys {
                        polys,
                        chunks_per_row: self.chunks_per_row,
                    });
                }
                // Column groups are power-of-two sized (4/8/16 per row in
                // the paper's example) so addressing stays trivial.
                let cg = (self.chunks_per_row / polys.next_power_of_two()).max(1);
                let rows = chunks_per_poly.div_ceil(cg);
                (rows, cg)
            }
            LayoutPolicy::Contiguous => {
                let rows_per_poly = chunks_per_poly.div_ceil(self.chunks_per_row);
                (rows_per_poly * polys, self.chunks_per_row)
            }
        };
        if self.next_row + rows > self.total_rows {
            return Err(LayoutError::RowsExhausted {
                need: rows,
                free: self.rows_free(),
            });
        }
        let g = PolyGroup {
            id: self.next_id,
            first_row: self.next_row,
            rows,
            polys,
            cg_chunks,
            chunks_per_poly,
        };
        self.next_row += rows;
        self.next_id += 1;
        Ok(g)
    }

    /// ACT/PRE pairs needed for one iteration phase touching `polys_touched`
    /// polynomials of a group: a single activation under CP (co-located
    /// rows), one per polynomial under the contiguous layout (§VI-C).
    pub fn acts_per_phase(&self, polys_touched: usize) -> usize {
        match self.policy {
            LayoutPolicy::ColumnPartitioned => 1,
            LayoutPolicy::Contiguous => polys_touched,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_fig7() {
        // 16 chunks (128 elements) per bank per limb, 32-chunk rows:
        // 2 polynomials per group → CG of 16 chunks, RG of 1 row.
        let mut a = PolyGroupAllocator::new(32, 256, LayoutPolicy::ColumnPartitioned);
        let g = a.alloc(2, 16);
        assert_eq!(g.cg_chunks, 16);
        assert_eq!(g.rows, 1);
        // 4 polynomials → CG of 8 chunks, RG of 2 rows.
        let g4 = a.alloc(4, 16);
        assert_eq!(g4.cg_chunks, 8);
        assert_eq!(g4.rows, 2);
        // 8 polynomials → CG of 4, RG of 4.
        let g8 = a.alloc(8, 16);
        assert_eq!(g8.cg_chunks, 4);
        assert_eq!(g8.rows, 4);
    }

    #[test]
    fn allocations_do_not_overlap() {
        let mut a = PolyGroupAllocator::new(32, 64, LayoutPolicy::ColumnPartitioned);
        let g1 = a.alloc(2, 16);
        let g2 = a.alloc(4, 16);
        let g3 = a.alloc(2, 32);
        assert_eq!(g1.first_row + g1.rows, g2.first_row);
        assert_eq!(g2.first_row + g2.rows, g3.first_row);
        assert_eq!(a.rows_used(), g1.rows + g2.rows + g3.rows);
        assert!(g1.id < g2.id && g2.id < g3.id);
    }

    #[test]
    fn contiguous_uses_more_rows_per_group() {
        let mut cp = PolyGroupAllocator::new(32, 256, LayoutPolicy::ColumnPartitioned);
        let mut na = PolyGroupAllocator::new(32, 256, LayoutPolicy::Contiguous);
        let gc = cp.alloc(4, 16);
        let gn = na.alloc(4, 16);
        // CP packs 4×16 chunks into 2 rows; contiguous burns a row per poly.
        assert_eq!(gc.rows, 2);
        assert_eq!(gn.rows, 4);
    }

    #[test]
    fn act_counting_per_policy() {
        let cp = PolyGroupAllocator::new(32, 8, LayoutPolicy::ColumnPartitioned);
        let na = PolyGroupAllocator::new(32, 8, LayoutPolicy::Contiguous);
        assert_eq!(cp.acts_per_phase(8), 1);
        assert_eq!(na.acts_per_phase(8), 8);
    }

    #[test]
    fn row_of_addresses_within_group() {
        let mut a = PolyGroupAllocator::new(32, 64, LayoutPolicy::ColumnPartitioned);
        let g = a.alloc(4, 16); // cg = 8, rows = 2
        assert_eq!(g.row_of(0, 0), g.first_row);
        assert_eq!(g.row_of(3, 7), g.first_row);
        assert_eq!(g.row_of(1, 8), g.first_row + 1);
        assert_eq!(g.row_of(2, 15), g.first_row + 1);
    }

    #[test]
    #[should_panic(expected = "bank rows exhausted")]
    fn capacity_enforced() {
        let mut a = PolyGroupAllocator::new(32, 2, LayoutPolicy::Contiguous);
        let _ = a.alloc(4, 32);
    }

    #[test]
    fn try_alloc_returns_typed_errors() {
        let mut a = PolyGroupAllocator::new(32, 2, LayoutPolicy::Contiguous);
        assert_eq!(
            a.try_alloc(4, 32),
            Err(LayoutError::RowsExhausted { need: 4, free: 2 })
        );
        assert_eq!(a.try_alloc(0, 16), Err(LayoutError::EmptyAllocation));
        let mut cp = PolyGroupAllocator::new(8, 64, LayoutPolicy::ColumnPartitioned);
        assert_eq!(
            cp.try_alloc(16, 4),
            Err(LayoutError::TooManyPolys {
                polys: 16,
                chunks_per_row: 8
            })
        );
        // Failed attempts must not consume rows or ids.
        assert_eq!(a.rows_used(), 0);
        let g = a.try_alloc(1, 32).expect("fits");
        assert_eq!(g.id, 0);
    }

    #[test]
    fn try_addressing_matches_panicking_addressing() {
        let mut a = PolyGroupAllocator::new(32, 64, LayoutPolicy::ColumnPartitioned);
        let g = a.alloc(4, 16);
        for poly in 0..4 {
            for chunk in 0..16 {
                assert_eq!(g.try_row_of(poly, chunk), Ok(g.row_of(poly, chunk)));
                assert_eq!(g.try_col_of(poly, chunk), Ok(g.col_of(poly, chunk)));
            }
        }
        assert_eq!(
            g.try_row_of(4, 0),
            Err(LayoutError::PolyOutOfRange { poly: 4, polys: 4 })
        );
        assert_eq!(
            g.try_col_of(0, 16),
            Err(LayoutError::ChunkOutOfRange {
                chunk: 16,
                chunks_per_poly: 16
            })
        );
    }
}
