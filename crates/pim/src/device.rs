//! The evaluated PIM device configurations (Table III).
//!
//! Two microarchitecture variants (§VI-A, §VI-D):
//!
//! - **Near-bank** — one PIM unit beside every DRAM bank (HBM-PIM /
//!   GDDR6-AiM style). Internal bandwidth scales with the bank count
//!   (16× on the A100's HBM2E, 8× on the 4090's GDDR6X), but all-bank
//!   lockstep operation exposes ACT/PRE latency.
//! - **Custom-HBM** — PIM units on the HBM logic die, each serving several
//!   banks through widened TSVs (4× bandwidth), built in a logic process
//!   node. Row switches of one bank overlap with streaming from the others,
//!   so the ACT/PRE exposure largely disappears (§VII-B/C).

use dram::config::DramConfig;

/// Where the PIM units sit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PimVariant {
    /// One unit per bank, on the DRAM die.
    NearBank,
    /// Units on the HBM logic die, each serving `banks_per_unit` banks.
    CustomHbm {
        /// Banks multiplexed onto one logic-die unit.
        banks_per_unit: usize,
    },
}

/// A complete PIM device configuration (one row of Table III).
#[derive(Debug, Clone)]
pub struct PimDeviceConfig {
    /// Human-readable name.
    pub name: &'static str,
    /// Microarchitecture variant.
    pub variant: PimVariant,
    /// The memory system hosting the units.
    pub dram: DramConfig,
    /// PIM unit clock in MHz (Table III).
    pub clock_mhz: f64,
    /// Data-buffer entries `B` (Table III: 16 / 16 / 32).
    pub buffer_entries: usize,
    /// MMAC lanes per unit (8, matching the 256-bit global I/O).
    pub mmac_lanes: usize,
    /// Energy per modular MMAC op in pJ (ASAP7 synthesis, voltage/process
    /// scaling and the 10× DRAM-process compensation of §VII-A for
    /// near-bank; logic-process for custom-HBM).
    pub mmac_energy_pj: f64,
    /// Area overhead per DRAM die (near-bank) or logic die (custom), mm².
    pub area_mm2: f64,
    /// Area overhead as a fraction of the die (Table III: ≤ ~10 %).
    pub area_overhead_pct: f64,
    /// Theoretical effective bandwidth increase (Table III "BW incr.").
    pub bw_increase: f64,
}

impl PimDeviceConfig {
    /// Anaheim on A100 80GB with near-bank PIM (Table III column 1).
    pub fn a100_near_bank() -> Self {
        Self {
            name: "A100 near-bank PIM",
            variant: PimVariant::NearBank,
            dram: DramConfig::a100_hbm2e(),
            clock_mhz: 378.0,
            buffer_entries: 16,
            mmac_lanes: 8,
            mmac_energy_pj: 0.9,
            area_mm2: 10.7,
            area_overhead_pct: 9.69,
            bw_increase: 16.0,
        }
    }

    /// Anaheim on A100 80GB with custom-HBM PIM (Table III column 2).
    pub fn a100_custom_hbm() -> Self {
        Self {
            name: "A100 custom-HBM PIM",
            variant: PimVariant::CustomHbm { banks_per_unit: 8 },
            dram: DramConfig::a100_hbm2e(),
            clock_mhz: 756.0,
            buffer_entries: 16,
            mmac_lanes: 8,
            mmac_energy_pj: 0.45, // logic-process units are cheaper
            area_mm2: 10.9,
            area_overhead_pct: 9.94,
            bw_increase: 4.0,
        }
    }

    /// Anaheim on RTX 4090 with near-bank PIM (Table III column 3).
    pub fn rtx4090_near_bank() -> Self {
        Self {
            name: "RTX 4090 near-bank PIM",
            variant: PimVariant::NearBank,
            dram: DramConfig::rtx4090_gddr6x(),
            clock_mhz: 656.0,
            buffer_entries: 32,
            mmac_lanes: 8,
            mmac_energy_pj: 0.9,
            area_mm2: 7.26,
            area_overhead_pct: 7.58,
            bw_increase: 8.0,
        }
    }

    /// All three evaluated configurations.
    pub fn all() -> Vec<PimDeviceConfig> {
        vec![
            Self::a100_near_bank(),
            Self::a100_custom_hbm(),
            Self::rtx4090_near_bank(),
        ]
    }

    /// Returns a copy with a different buffer size (the Fig. 9 sweep).
    pub fn with_buffer_entries(mut self, b: usize) -> Self {
        self.buffer_entries = b;
        self
    }

    /// Nanoseconds per 256-bit chunk consumed by one unit (one lane-step).
    pub fn ns_per_chunk(&self) -> f64 {
        1e3 / self.clock_mhz
    }

    /// Number of PIM units in the whole system.
    pub fn total_units(&self) -> usize {
        match self.variant {
            PimVariant::NearBank => self.dram.geometry.total_banks(),
            PimVariant::CustomHbm { banks_per_unit } => {
                self.dram.geometry.total_banks() / banks_per_unit
            }
        }
    }

    /// Banks served per unit.
    pub fn banks_per_unit(&self) -> usize {
        match self.variant {
            PimVariant::NearBank => 1,
            PimVariant::CustomHbm { banks_per_unit } => banks_per_unit,
        }
    }

    /// Peak modular-op throughput in TOPS (Table III's per-die/per-stack
    /// figures aggregated over the system).
    pub fn peak_tops(&self) -> f64 {
        self.total_units() as f64 * self.mmac_lanes as f64 * self.clock_mhz * 1e6 / 1e12
    }

    /// Peak internal bandwidth available to PIM, bytes/s.
    pub fn internal_bandwidth(&self) -> f64 {
        self.total_units() as f64 * self.dram.geometry.chunk_bits as f64
            / 8.0
            / (self.ns_per_chunk() * 1e-9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_tops_reproduced() {
        // 0.194 TOPS per die × 40 dies ≈ 7.76 TOPS.
        let a = PimDeviceConfig::a100_near_bank();
        assert!((a.peak_tops() - 40.0 * 0.194).abs() / (40.0 * 0.194) < 0.01);
        // 0.388 TOPS per stack × 5 stacks ≈ 1.94 TOPS.
        let c = PimDeviceConfig::a100_custom_hbm();
        assert!((c.peak_tops() - 5.0 * 0.388).abs() / (5.0 * 0.388) < 0.01);
        // 0.168 TOPS per die × 12 dies ≈ 2.02 TOPS.
        let g = PimDeviceConfig::rtx4090_near_bank();
        assert!((g.peak_tops() - 12.0 * 0.168).abs() / (12.0 * 0.168) < 0.01);
    }

    #[test]
    fn bandwidth_increase_consistent_with_internal_bw() {
        // The "BW incr." column should match units × chunk rate vs external
        // bandwidth, within modeling slack.
        for dev in PimDeviceConfig::all() {
            let ratio = dev.internal_bandwidth() / (dev.dram.external_bw_gbps * 1e9);
            assert!(
                (ratio / dev.bw_increase - 1.0).abs() < 0.25,
                "{}: internal/external = {ratio:.1}, Table III says {}",
                dev.name,
                dev.bw_increase
            );
        }
    }

    #[test]
    fn unit_counts() {
        assert_eq!(PimDeviceConfig::a100_near_bank().total_units(), 2560);
        assert_eq!(PimDeviceConfig::a100_custom_hbm().total_units(), 320);
        assert_eq!(PimDeviceConfig::rtx4090_near_bank().total_units(), 384);
        assert_eq!(PimDeviceConfig::a100_custom_hbm().banks_per_unit(), 8);
    }

    #[test]
    fn area_overheads_within_10_percent() {
        for dev in PimDeviceConfig::all() {
            assert!(dev.area_overhead_pct <= 10.0, "{}", dev.name);
        }
    }

    #[test]
    fn buffer_override() {
        let d = PimDeviceConfig::a100_near_bank().with_buffer_entries(64);
        assert_eq!(d.buffer_entries, 64);
    }
}
