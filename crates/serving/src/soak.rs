//! The deterministic chaos-soak harness.
//!
//! A soak run replays a seeded trace of mixed CKKS workloads through the
//! serving engine under a seeded fault schedule — background bit-flip
//! pressure, periodic fault storms, and a stuck-lane window that
//! permanently sickens one bank domain — then checks the serving
//! invariants:
//!
//! 1. every request gets exactly one response;
//! 2. no response claims on-time completion past its deadline;
//! 3. counters are conserved (completed + missed + shed = submitted);
//! 4. the stuck-lane window trips a breaker permanently, and the run still
//!    completes work through GPU fallback.
//!
//! Two harnesses share one trace generator:
//!
//! - [`run_soak`] — the single-engine soak: materializes the trace, serves
//!   it, returns every response for offline comparison
//!   ([`check_invariants`]).
//! - [`run_soak_stream`] — the sharded, bounded-memory soak: the trace is
//!   *generated lazily* ([`TraceGen`]), served through a
//!   [`ShardedEngine`], and every response is checked by a streaming
//!   accumulator the moment it is produced, then dropped. Memory stays
//!   constant in the request count (a bitmap plus counters), which is what
//!   lets the million-request gate in `scripts/check.sh` run at all. A
//!   shard-storm window sickens one shard's tenants so the run provably
//!   exercises failover: the shard drains, its tenants re-route, and a
//!   probe re-admits it.
//!
//! Everything is a pure function of [`SoakConfig`]: the trace, the fault
//! streams, and the virtual-time engine are all seeded, so two runs with
//! the same config produce bit-identical responses, health snapshots, and
//! breaker transition logs — at any `ANAHEIM_THREADS` value. The
//! determinism regression tests and `scripts/soak.sh` both lean on this.

use std::fmt;
use std::sync::Arc;

use anaheim_core::build::{Builder, LinTransStyle};
use anaheim_core::framework::Anaheim;
use anaheim_core::health::{BreakerTransition, HealthSnapshot};
use anaheim_core::ir::OpSequence;
use anaheim_core::params::ParamSet;
use anaheim_core::RunError;
use pim::fault::FaultPlan;

use crate::engine::{OrderingConfig, ServingConfig, ServingEngine};
use crate::request::{Outcome, Priority, Rejected, Request, Response};
use crate::router::ShardRouter;
use crate::shard::{ShardConfig, ShardSnapshot, ShardedEngine, StreamObs};

/// Configuration of one soak run. Fully determines the outcome.
#[derive(Debug, Clone)]
pub struct SoakConfig {
    /// Requests in the trace.
    pub requests: usize,
    /// Master seed: trace shape, fault streams, retry jitter.
    pub seed: u64,
    /// Virtual execution lanes (per shard, in streaming mode).
    pub workers: usize,
    /// Admission queue capacity (per shard, in streaming mode).
    pub queue_capacity: usize,
    /// Background transient-fault probability per PIM kernel.
    pub flip_probability: f64,
    /// Every `storm_every`-th request runs under a fault storm (high flip
    /// probability), driving transient breaker trips. 0 disables storms.
    pub storm_every: usize,
    /// Request index range `[start, end)` whose fault plans include a
    /// stuck MMAC lane — a hard fault that permanently opens the owning
    /// bank domain's breaker. `None` disables.
    pub stuck_window: Option<(usize, usize)>,
    /// The stuck lane (its domain is `lane % die_groups`).
    pub stuck_lane: u8,
    /// Arrival pressure: mean inter-arrival as a fraction of
    /// `reference_cost / total lanes`. Below 1.0 the system is overloaded
    /// and sheds; above it mostly keeps up.
    pub arrival_factor: f64,
    /// Replica shards for the streaming soak ([`run_soak_stream`]); the
    /// single-engine [`run_soak`] ignores it.
    pub shards: u32,
    /// Request index range `[start, end)` during which requests from
    /// tenants homed on shard 0 run under a near-certain fault storm —
    /// the deterministic way to drain one shard and force failover.
    /// `None` disables. Streaming soak only.
    pub shard_storm: Option<(usize, usize)>,
    /// Background GPU stream-stall probability per GPU kernel launch
    /// (latency-only faults on the GPU executor). 0 disables.
    pub gpu_stall_prob: f64,
    /// Latency one sampled GPU stall injects (virtual ns).
    pub gpu_stall_ns: f64,
    /// GPU transfer bit-flip probability per GPU kernel: silent result
    /// corruption that only the end-to-end integrity verdict catches.
    /// 0 disables.
    pub gpu_flip_prob: f64,
    /// Enable hedged re-execution in the streaming fleet soak
    /// ([`ShardConfig::hedging`]).
    pub hedge: bool,
    /// Propagate deadline budgets into the scheduler: over-budget requests
    /// are cancelled mid-flight instead of running to a post-hoc miss
    /// ([`ServingConfig::cancel_over_budget`]).
    pub cancel: bool,
    /// Tenant population the trace draws from. The default 64 reproduces
    /// every pre-existing trace bit-exactly; a small population makes
    /// consecutive same-tenant dispatches — and therefore batching wins —
    /// likely.
    pub tenants: u32,
    /// Enable same-tenant batch serving in the streaming fleet soak
    /// ([`ServingConfig::batching`]). Streaming soak only; the
    /// single-engine [`run_soak`] ignores it.
    pub batching: bool,
    /// Enable batch-aware dispatch ordering on top of batching
    /// ([`ServingConfig::ordering`], A100-default tuning): same-tenant
    /// requests may be pulled forward past strangers under the slack
    /// budget, and joins credit their saved evk fetch back to the lane as
    /// virtual time. Streaming soak only.
    pub ordering: bool,
}

impl SoakConfig {
    /// The default chaos soak: 240 requests, mild overload, storms every
    /// 13th request, and a stuck-lane window in the middle third.
    pub fn chaos(seed: u64) -> Self {
        Self {
            requests: 240,
            seed,
            workers: 3,
            queue_capacity: 12,
            flip_probability: 0.02,
            storm_every: 13,
            stuck_window: Some((80, 100)),
            stuck_lane: 7,
            arrival_factor: 0.9,
            shards: 1,
            shard_storm: None,
            gpu_stall_prob: 0.0,
            gpu_stall_ns: 0.0,
            gpu_flip_prob: 0.0,
            hedge: false,
            cancel: false,
            tenants: 64,
            batching: false,
            ordering: false,
        }
    }

    /// A fault-free control run (same trace shape, no injection).
    pub fn clean(seed: u64) -> Self {
        Self {
            flip_probability: 0.0,
            storm_every: 0,
            stuck_window: None,
            ..Self::chaos(seed)
        }
    }

    /// The default fleet chaos soak for streaming mode: 4 replica shards,
    /// background flips, a shard-storm window that drains shard 0 (its
    /// tenants fail over, a probe later re-admits it), and a stuck-lane
    /// window that leaves a permanent dead bank on whichever shard serves
    /// it. Scale `requests` up (the million-request gate does) — every
    /// other knob is per-request, so the windows stay early and the bulk
    /// of the run measures steady-state throughput.
    pub fn fleet_chaos(seed: u64) -> Self {
        Self {
            requests: 4000,
            workers: 2,
            queue_capacity: 8,
            flip_probability: 0.01,
            storm_every: 0,
            stuck_window: Some((600, 620)),
            shards: 4,
            shard_storm: Some((150, 260)),
            ..Self::chaos(seed)
        }
    }

    /// The batched-fleet soak: a small tenant population on a two-shard
    /// fault-free fleet with same-tenant batch serving on, so runs of
    /// consecutive same-tenant dispatches amortize their evaluation-key
    /// fetches ([`ServingConfig::batching`]). The `batch` gate in
    /// `scripts/check.sh` replays it at two thread counts and
    /// byte-compares the snapshot text — including the per-shard
    /// `evk: … saved-bytes=…` lines.
    pub fn batched_fleet(seed: u64) -> Self {
        Self {
            requests: 2000,
            workers: 2,
            queue_capacity: 8,
            flip_probability: 0.0,
            storm_every: 0,
            stuck_window: None,
            // Slightly overloaded on purpose: lanes stay backlogged, so
            // the busiest lane's final finish is work-bound and the
            // ordered-fleet twin's lane credit is visible in virtual_rps.
            arrival_factor: 0.95,
            shards: 2,
            shard_storm: None,
            tenants: 4,
            batching: true,
            ..Self::chaos(seed)
        }
    }

    /// The ordered-fleet soak: [`batched_fleet`] with batch-aware dispatch
    /// ordering on ([`ServingConfig::ordering`]) — the engine *forms*
    /// same-tenant runs under the slack budget instead of merely observing
    /// them, and every join's saved evk fetch is credited back to the lane
    /// as virtual time. Same trace, same seed: the `ordered` gate in
    /// `scripts/check.sh` byte-compares its snapshot across thread counts
    /// and requires its `virtual_rps` to beat the plain overlay's.
    ///
    /// [`batched_fleet`]: SoakConfig::batched_fleet
    pub fn ordered_fleet(seed: u64) -> Self {
        Self {
            ordering: true,
            ..Self::batched_fleet(seed)
        }
    }

    /// The batch+hedge storm: the hedge-chaos fault domain with
    /// same-tenant batch serving on a small tenant pool — the two features
    /// are composable by design (hedge re-executions bypass dispatch and
    /// are never batch-accounted), and this scenario pins that fleet
    /// conservation holds when both fire in one run.
    pub fn batch_hedge_chaos(seed: u64) -> Self {
        Self {
            // Small enough for same-tenant runs, large enough that every
            // shard (including storm-drained shard 0) homes a tenant.
            tenants: 8,
            batching: true,
            ..Self::hedge_chaos(seed)
        }
    }

    /// The hedge-chaos storm: [`fleet_chaos`] plus the GPU fault domain
    /// (stream stalls and transfer bit flips), deadline-budget
    /// cancellation, and hedged re-execution — the scenario the
    /// `hedge-chaos` gate in `scripts/check.sh` replays at two thread
    /// counts and byte-compares. Every request still yields exactly one
    /// outcome; at least one hedge must win and at least one request must
    /// be cancelled over budget for the invariants to pass.
    ///
    /// [`fleet_chaos`]: SoakConfig::fleet_chaos
    pub fn hedge_chaos(seed: u64) -> Self {
        Self {
            gpu_stall_prob: 0.05,
            gpu_stall_ns: 1.0e5,
            gpu_flip_prob: 8.0e-4,
            hedge: true,
            cancel: true,
            ..Self::fleet_chaos(seed)
        }
    }
}

/// The shard-layer configuration a soak config implies.
pub fn shard_config_for(cfg: &SoakConfig) -> ShardConfig {
    ShardConfig {
        router_seed: cfg.seed ^ 0x5AAD_F1EE,
        hedging: cfg.hedge,
        ..ShardConfig::new(cfg.shards)
    }
}

/// Everything a soak run produces, in comparable form.
#[derive(Debug, Clone, PartialEq)]
pub struct SoakOutcome {
    /// One response per request, sorted by id.
    pub responses: Vec<Response>,
    /// Final health snapshot.
    pub snapshot: HealthSnapshot,
    /// The full breaker transition log.
    pub transitions: Vec<BreakerTransition>,
}

/// Headline numbers of a soak run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SoakSummary {
    /// Requests served on time.
    pub completed: u64,
    /// Requests that executed but missed their deadline.
    pub deadline_misses: u64,
    /// Requests cancelled mid-flight when their deadline budget ran out.
    pub cancelled: u64,
    /// Requests whose end-to-end integrity verdict failed (GPU transfer
    /// corruption the per-kernel residue checks could not see).
    pub integrity_failures: u64,
    /// Requests shed: queue full.
    pub shed_queue_full: u64,
    /// Requests shed: deadline infeasible.
    pub shed_infeasible: u64,
    /// PIM integrity faults absorbed.
    pub faults: u64,
    /// Kernels routed around open breakers.
    pub breaker_skips: u64,
    /// Breaker transitions recorded.
    pub transitions: u64,
    /// Bank domains left permanently open.
    pub dead_banks: u64,
}

impl fmt::Display for SoakSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} completed, {} deadline misses, {} cancelled, {} integrity failures, \
             {} shed (queue-full {}, infeasible {}), \
             {} faults absorbed, {} breaker skips, {} transitions, {} dead bank(s)",
            self.completed,
            self.deadline_misses,
            self.cancelled,
            self.integrity_failures,
            self.shed_queue_full + self.shed_infeasible,
            self.shed_queue_full,
            self.shed_infeasible,
            self.faults,
            self.breaker_skips,
            self.transitions,
            self.dead_banks
        )
    }
}

/// Deterministic 64-bit generator for trace shaping (SplitMix64).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in [0, 1).
    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Lazy seeded trace generator: the same mixed workloads, priority
/// classes, tenants, and derived fault streams as [`build_trace`], but
/// produced one request at a time so a million-request soak holds six
/// workload templates (shared `Arc`s), not a million sequences.
pub struct TraceGen {
    cfg: SoakConfig,
    kinds: Vec<(Arc<OpSequence>, &'static str)>,
    base_fault: FaultPlan,
    mean_gap: f64,
    t_ref: f64,
    /// Present when the config shards: the shard-storm window targets
    /// tenants homed on shard 0 under this router.
    router: Option<ShardRouter>,
    rng: Rng,
    arrival: f64,
    i: usize,
}

impl TraceGen {
    /// Builds the workload templates and reference cost for `cfg`.
    pub fn new(cfg: &SoakConfig) -> Self {
        let params = ParamSet::paper_default();
        let mut b = Builder::new(params);
        let l = 24;
        // The workload mix, built once and shared by every request.
        let kinds: Vec<(Arc<OpSequence>, &'static str)> = vec![
            (
                Arc::new(b.lintrans(54, 8, LinTransStyle::Hoisting, true)),
                "lintrans-wide",
            ),
            (
                Arc::new(b.lintrans(l, 4, LinTransStyle::Hoisting, true)),
                "lintrans",
            ),
            (
                Arc::new(b.lintrans(l, 6, LinTransStyle::MinKS, false)),
                "lintrans-minks",
            ),
            (Arc::new(b.hmult(l)), "hmult"),
            (Arc::new(b.hrot(l)), "hrot"),
            (Arc::new(b.hadd(l)), "hadd"),
        ];
        // Reference cost: the clean wide lintrans on the serving platform,
        // used to scale arrivals and deadlines. Deterministic (analytic
        // model).
        let rt = Anaheim::new(ServingConfig::a100_default(cfg.seed).platform);
        let t_ref = rt
            .run((*kinds[0].0).clone())
            .expect("reference workload runs clean")
            .total_ns;

        let mut base_fault = FaultPlan::none()
            .with_seed(cfg.seed ^ 0xFA17_FA17)
            .with_bank_flips(cfg.flip_probability);
        if cfg.gpu_stall_prob > 0.0 {
            base_fault = base_fault.with_gpu_stalls(cfg.gpu_stall_prob, cfg.gpu_stall_ns);
        }
        if cfg.gpu_flip_prob > 0.0 {
            base_fault = base_fault.with_gpu_transfer_flips(cfg.gpu_flip_prob);
        }
        let lanes = cfg.workers.max(1) * cfg.shards.max(1) as usize;
        let mean_gap = cfg.arrival_factor * t_ref / lanes as f64;
        let router = (cfg.shards > 1)
            .then(|| ShardRouter::new(shard_config_for(cfg).router_seed, cfg.shards));
        Self {
            cfg: cfg.clone(),
            kinds,
            base_fault,
            mean_gap,
            t_ref,
            router,
            rng: Rng(cfg.seed),
            arrival: 0.0,
            i: 0,
        }
    }

    /// The reference cost arrivals and deadlines are scaled by (ns).
    pub fn reference_cost_ns(&self) -> f64 {
        self.t_ref
    }
}

impl Iterator for TraceGen {
    type Item = Request;

    fn next(&mut self) -> Option<Request> {
        let cfg = &self.cfg;
        let i = self.i;
        if i >= cfg.requests {
            return None;
        }
        self.i += 1;
        let h = self.rng.next();
        let (seq, label) = &self.kinds[(h % self.kinds.len() as u64) as usize];
        let priority = match h >> 32 & 3 {
            0 => Priority::Interactive,
            1 => Priority::Batch,
            _ => Priority::Standard,
        };
        let tenant = ((h >> 40) % u64::from(cfg.tenants.max(1))) as u32;
        self.arrival += self.mean_gap * (0.25 + 1.5 * self.rng.unit());
        // Slack scales with the reference cost; interactive is tight
        // enough that queueing or fault recovery can break it.
        let slack = match priority {
            Priority::Interactive => self.t_ref * (1.2 + 1.0 * self.rng.unit()),
            Priority::Standard => self.t_ref * (3.0 + 3.0 * self.rng.unit()),
            Priority::Batch => self.t_ref * (8.0 + 8.0 * self.rng.unit()),
        };
        let mut fault = None;
        if cfg.flip_probability > 0.0
            || cfg.stuck_window.is_some()
            || cfg.storm_every > 0
            || cfg.shard_storm.is_some()
            || cfg.gpu_stall_prob > 0.0
            || cfg.gpu_flip_prob > 0.0
        {
            let mut plan = self.base_fault.derive_stream(i as u64);
            if cfg.storm_every > 0 && i % cfg.storm_every == cfg.storm_every - 1 {
                plan = plan.with_bank_flips(0.9);
            }
            if let Some((s, e)) = cfg.shard_storm {
                let on_shard0 = self
                    .router
                    .as_ref()
                    .is_none_or(|r| r.home_shard(tenant) == 0);
                if (s..e).contains(&i) && on_shard0 {
                    plan = plan.with_bank_flips(0.98);
                }
            }
            if let Some((s, e)) = cfg.stuck_window {
                if (s..e).contains(&i) {
                    plan = plan.with_stuck_lane(cfg.stuck_lane);
                }
            }
            fault = Some(plan);
        }
        Some(Request {
            id: i as u64,
            tenant,
            priority,
            arrival_ns: self.arrival,
            deadline_ns: self.arrival + slack,
            seq: Arc::clone(seq),
            fault,
            label,
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.cfg.requests - self.i;
        (left, Some(left))
    }
}

/// Builds the seeded request trace: mixed workloads, three priority
/// classes, 64 tenants, and per-request derived fault streams.
pub fn build_trace(cfg: &SoakConfig) -> Vec<Request> {
    TraceGen::new(cfg).collect()
}

/// Runs a full soak: build the trace, serve it, snapshot health.
pub fn run_soak(cfg: &SoakConfig) -> Result<SoakOutcome, RunError> {
    let trace = build_trace(cfg);
    let mut engine = ServingEngine::new(ServingConfig {
        workers: cfg.workers,
        queue_capacity: cfg.queue_capacity,
        cancel_over_budget: cfg.cancel,
        ..ServingConfig::a100_default(cfg.seed)
    });
    let responses = engine.run_trace(&trace)?;
    Ok(SoakOutcome {
        responses,
        snapshot: engine.snapshot(),
        transitions: engine.registry().transitions().to_vec(),
    })
}

/// Checks the soak invariants, returning the summary on success and the
/// first violation otherwise.
pub fn check_invariants(cfg: &SoakConfig, out: &SoakOutcome) -> Result<SoakSummary, String> {
    if out.responses.len() != cfg.requests {
        return Err(format!(
            "expected {} responses, got {}",
            cfg.requests,
            out.responses.len()
        ));
    }
    let mut summary = SoakSummary::default();
    for (i, r) in out.responses.iter().enumerate() {
        if r.id != i as u64 {
            return Err(format!("response {i} has id {} (duplicate or gap)", r.id));
        }
        match &r.outcome {
            Outcome::Completed {
                start_ns,
                finish_ns,
                deadline_ns,
                deadline_slack_ns,
                faults,
                ..
            } => {
                if finish_ns > deadline_ns {
                    return Err(format!(
                        "request {} reported Completed past its deadline \
                         (finish {finish_ns} > deadline {deadline_ns})",
                        r.id
                    ));
                }
                if finish_ns < start_ns {
                    return Err(format!("request {} finishes before it starts", r.id));
                }
                if *deadline_slack_ns != deadline_ns - finish_ns {
                    return Err(format!(
                        "request {} slack {} disagrees with deadline {} - finish {}",
                        r.id, deadline_slack_ns, deadline_ns, finish_ns
                    ));
                }
                summary.completed += 1;
                summary.faults += *faults as u64;
            }
            Outcome::DeadlineMiss {
                finish_ns,
                deadline_ns,
                ..
            } => {
                if finish_ns <= deadline_ns {
                    return Err(format!(
                        "request {} reported DeadlineMiss inside its deadline",
                        r.id
                    ));
                }
                summary.deadline_misses += 1;
            }
            Outcome::Rejected(reason) => match reason {
                Rejected::QueueFull => summary.shed_queue_full += 1,
                Rejected::DeadlineInfeasible => summary.shed_infeasible += 1,
                Rejected::AllShardsUnhealthy => {
                    return Err(format!(
                        "request {} rejected AllShardsUnhealthy in a single-engine soak",
                        r.id
                    ))
                }
            },
            Outcome::Cancelled {
                consumed_ns,
                segments_done,
                ..
            } => {
                if !cfg.cancel {
                    return Err(format!(
                        "request {} cancelled without budget propagation enabled",
                        r.id
                    ));
                }
                if *consumed_ns < 0.0 {
                    return Err(format!("request {} consumed negative time", r.id));
                }
                let _ = segments_done;
                summary.cancelled += 1;
            }
            Outcome::IntegrityFailure {
                start_ns,
                finish_ns,
            } => {
                if finish_ns < start_ns {
                    return Err(format!("request {} finishes before it starts", r.id));
                }
                summary.integrity_failures += 1;
            }
            Outcome::Rerouted { .. } => {
                return Err(format!("request {} rerouted in a single-engine soak", r.id))
            }
            Outcome::Hedged { .. } => {
                return Err(format!("request {} hedged in a single-engine soak", r.id))
            }
            Outcome::Batched { .. } => {
                return Err(format!("request {} batched in a single-engine soak", r.id))
            }
        }
    }
    let c = &out.snapshot.counters;
    if c.submitted != cfg.requests as u64 {
        return Err(format!(
            "submitted counter {} != trace length {}",
            c.submitted, cfg.requests
        ));
    }
    if c.completed
        + c.deadline_misses
        + c.cancelled_over_budget
        + c.integrity_failures
        + c.shed_queue_full
        + c.shed_infeasible
        != c.submitted
    {
        return Err(format!("counters not conserved: {c:?}"));
    }
    if (
        c.completed,
        c.deadline_misses,
        c.cancelled_over_budget,
        c.integrity_failures,
        c.shed_queue_full,
        c.shed_infeasible,
    ) != (
        summary.completed,
        summary.deadline_misses,
        summary.cancelled,
        summary.integrity_failures,
        summary.shed_queue_full,
        summary.shed_infeasible,
    ) {
        return Err(format!(
            "counters disagree with responses: {c:?} vs {summary:?}"
        ));
    }
    if c.max_queue_depth > cfg.queue_capacity as u64 {
        return Err(format!(
            "queue depth {} exceeded capacity {}",
            c.max_queue_depth, cfg.queue_capacity
        ));
    }
    if summary.completed == 0 {
        return Err("no request completed".into());
    }
    summary.breaker_skips = c.breaker_skips;
    summary.transitions = out.transitions.len() as u64;
    summary.dead_banks = out.snapshot.banks.iter().filter(|b| b.permanent).count() as u64;
    if cfg.stuck_window.is_some() {
        if summary.dead_banks == 0 {
            return Err("stuck-lane window never tripped a permanent breaker".into());
        }
        if summary.breaker_skips == 0 {
            return Err("open breaker never routed a kernel around PIM".into());
        }
        if out.snapshot.open_banks() == out.snapshot.banks.len() {
            return Err("every bank open: degradation was not bank-scoped".into());
        }
    }
    Ok(summary)
}

/// Headline numbers of a streaming fleet soak.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StreamSummary {
    /// Requests generated and submitted to the fleet.
    pub requests: u64,
    /// Served on time (including after a re-route).
    pub completed: u64,
    /// Executed late.
    pub deadline_misses: u64,
    /// Final outcome cancelled over budget (both executions, if hedged).
    pub cancelled: u64,
    /// Final outcome failed the end-to-end integrity verdict.
    pub integrity_failures: u64,
    /// Hedges executed on a sibling shard.
    pub hedges_launched: u64,
    /// Hedges that beat the primary.
    pub hedges_won: u64,
    /// Hedges the primary still beat.
    pub hedges_wasted: u64,
    /// Hedge triggers suppressed (token bucket, or no accepting sibling).
    pub hedges_suppressed: u64,
    /// Shed at a shard: queue full.
    pub shed_queue_full: u64,
    /// Shed at a shard: deadline infeasible.
    pub shed_infeasible: u64,
    /// Routed away from a non-accepting home shard.
    pub rerouted: u64,
    /// Rejected fleet-wide: no shard accepting.
    pub all_shards_unhealthy: u64,
    /// PIM integrity faults absorbed (all shards).
    pub faults: u64,
    /// Kernels routed around open breakers (all shards).
    pub breaker_skips: u64,
    /// Shard drains (all shards).
    pub drains: u64,
    /// Shard re-admissions via probe (all shards).
    pub readmits: u64,
    /// Bank domains left permanently open (all shards).
    pub dead_banks: u64,
    /// Evk bytes amortized by same-tenant batching (all shards).
    pub evk_hit_bytes: u64,
    /// Evk bytes fetched cold at batch heads (all shards).
    pub evk_miss_bytes: u64,
    /// Evk bytes reported saved by [`Outcome::Batched`] responses — equal
    /// to `evk_hit_bytes` when hedging is off (hedge re-executions bypass
    /// the dispatch lane, so their primaries' wrappers can be absorbed).
    pub evk_saved_bytes: u64,
    /// Same-tenant batches closed (all shards; zero with batching off).
    pub batches: u64,
    /// Same-tenant requests pulled forward past strangers by batch-aware
    /// ordering (all shards; zero with ordering off).
    pub reorders: u64,
    /// Reorder candidates denied by a bypassed request's slack budget or
    /// the K-bypass bound (all shards).
    pub reorder_denied_slack: u64,
    /// Virtual ns the evk lane credit took off dispatch lanes (all
    /// shards; 0.0 with ordering off).
    pub evk_saved_ns: f64,
    /// Finish time of the busiest lane in the fleet (virtual ns).
    pub last_finish_ns: f64,
}

impl StreamSummary {
    /// Virtual-time throughput: *completed* requests per virtual second —
    /// the definition EXPERIMENTS.md documents. Counting submissions would
    /// let a run that sheds half its load claim the same throughput as one
    /// that serves it.
    pub fn virtual_rps(&self) -> f64 {
        if self.last_finish_ns > 0.0 {
            self.completed as f64 / (self.last_finish_ns * 1e-9)
        } else {
            0.0
        }
    }
}

impl fmt::Display for StreamSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} requests: {} completed, {} deadline misses, {} cancelled, \
             {} integrity failures, {} shed \
             (queue-full {}, infeasible {}), {} rerouted, {} all-shards-unhealthy, \
             hedges {} launched / {} won / {} wasted / {} suppressed, \
             {} faults absorbed, {} breaker skips, {} drains, {} readmits, \
             {} dead bank(s), {:.0} req/virtual-s",
            self.requests,
            self.completed,
            self.deadline_misses,
            self.cancelled,
            self.integrity_failures,
            self.shed_queue_full + self.shed_infeasible,
            self.shed_queue_full,
            self.shed_infeasible,
            self.rerouted,
            self.all_shards_unhealthy,
            self.hedges_launched,
            self.hedges_won,
            self.hedges_wasted,
            self.hedges_suppressed,
            self.faults,
            self.breaker_skips,
            self.drains,
            self.readmits,
            self.dead_banks,
            self.virtual_rps()
        )?;
        if self.batches > 0 {
            write!(
                f,
                ", evk {} hit / {} miss / {} saved bytes over {} batches",
                self.evk_hit_bytes, self.evk_miss_bytes, self.evk_saved_bytes, self.batches
            )?;
        }
        if self.reorders > 0 || self.reorder_denied_slack > 0 {
            write!(
                f,
                ", {} reorders ({} denied), {:.0} ns credited",
                self.reorders, self.reorder_denied_slack, self.evk_saved_ns
            )?;
        }
        Ok(())
    }
}

/// What a streaming soak leaves behind: the summary, the per-shard
/// snapshots, and their deterministic text rendering (the artifact the
/// thread-count gate byte-compares). Responses themselves were checked on
/// the fly and dropped.
#[derive(Debug, Clone)]
pub struct StreamOutcome {
    /// Headline numbers.
    pub summary: StreamSummary,
    /// Per-shard snapshots, in shard order.
    pub snapshots: Vec<ShardSnapshot>,
    /// [`ShardedEngine::render_snapshots`] output.
    pub snapshot_text: String,
}

/// Streaming invariant accumulator: every response is validated the
/// moment it is produced, then dropped. State is a presence bitmap
/// (`requests / 8` bytes — 125 KiB at a million) plus counters, so the
/// check itself cannot blow the memory budget it guards.
struct StreamInvariants {
    capacity: usize,
    seen: Vec<u64>,
    summary: StreamSummary,
    /// Responses wrapped in [`Outcome::Hedged`] — cross-checked against
    /// the fleet's `hedges_launched` counter at the end of the run.
    hedged_seen: u64,
    error: Option<String>,
}

impl StreamInvariants {
    fn new(requests: usize) -> Self {
        Self {
            capacity: requests,
            seen: vec![0u64; requests.div_ceil(64)],
            summary: StreamSummary::default(),
            hedged_seen: 0,
            error: None,
        }
    }

    fn observe(&mut self, r: &Response) {
        if self.error.is_none() {
            if let Err(e) = self.check(r) {
                self.error = Some(e);
            }
        }
    }

    fn check(&mut self, r: &Response) -> Result<(), String> {
        let id = r.id as usize;
        if id >= self.capacity {
            return Err(format!("response id {id} out of range"));
        }
        let (w, b) = (id / 64, id % 64);
        if self.seen[w] >> b & 1 == 1 {
            return Err(format!("duplicate response for request {id}"));
        }
        self.seen[w] |= 1 << b;
        self.summary.requests += 1;
        let mut outcome = &r.outcome;
        if let Outcome::Rerouted {
            from_shard,
            to_shard,
            outcome: inner,
        } = outcome
        {
            if from_shard == to_shard {
                return Err(format!("request {id} rerouted to its own home shard"));
            }
            if matches!(**inner, Outcome::Rerouted { .. }) {
                return Err(format!("request {id} rerouted more than once"));
            }
            self.summary.rerouted += 1;
            outcome = inner;
        }
        if let Outcome::Hedged {
            loser_consumed_ns,
            outcome: inner,
            ..
        } = outcome
        {
            if *loser_consumed_ns < 0.0 {
                return Err(format!("request {id}: hedge loser consumed negative time"));
            }
            // A hedged primary may carry a Batched wrapper from its
            // dispatch; everything else below Hedged must be terminal.
            if matches!(
                **inner,
                Outcome::Hedged { .. } | Outcome::Rerouted { .. } | Outcome::Rejected(_)
            ) {
                return Err(format!(
                    "request {id}: Hedged must wrap a terminal execution outcome"
                ));
            }
            self.hedged_seen += 1;
            outcome = inner;
        }
        if let Outcome::Batched {
            evk_bytes_saved,
            outcome: inner,
            ..
        } = outcome
        {
            if *evk_bytes_saved == 0 {
                return Err(format!("request {id}: Batched with nothing saved"));
            }
            if matches!(
                **inner,
                Outcome::Batched { .. }
                    | Outcome::Hedged { .. }
                    | Outcome::Rerouted { .. }
                    | Outcome::Rejected(_)
            ) {
                return Err(format!(
                    "request {id}: Batched must wrap a terminal execution outcome"
                ));
            }
            self.summary.evk_saved_bytes += evk_bytes_saved;
            outcome = inner;
        }
        match outcome {
            Outcome::Completed {
                start_ns,
                finish_ns,
                deadline_ns,
                faults,
                breaker_skips,
                ..
            } => {
                if finish_ns > deadline_ns {
                    return Err(format!(
                        "request {id} reported Completed past its deadline \
                         (finish {finish_ns} > deadline {deadline_ns})"
                    ));
                }
                if finish_ns < start_ns {
                    return Err(format!("request {id} finishes before it starts"));
                }
                self.summary.completed += 1;
                self.summary.faults += u64::from(*faults);
                self.summary.breaker_skips += u64::from(*breaker_skips);
                if *finish_ns > self.summary.last_finish_ns {
                    self.summary.last_finish_ns = *finish_ns;
                }
            }
            Outcome::DeadlineMiss {
                finish_ns,
                deadline_ns,
                ..
            } => {
                if finish_ns <= deadline_ns {
                    return Err(format!(
                        "request {id} reported DeadlineMiss inside its deadline"
                    ));
                }
                self.summary.deadline_misses += 1;
                if *finish_ns > self.summary.last_finish_ns {
                    self.summary.last_finish_ns = *finish_ns;
                }
            }
            Outcome::Cancelled {
                start_ns,
                consumed_ns,
                ..
            } => {
                if *consumed_ns < 0.0 {
                    return Err(format!("request {id} consumed negative time"));
                }
                self.summary.cancelled += 1;
                let end = start_ns + consumed_ns;
                if end > self.summary.last_finish_ns {
                    self.summary.last_finish_ns = end;
                }
            }
            Outcome::IntegrityFailure {
                start_ns,
                finish_ns,
            } => {
                if finish_ns < start_ns {
                    return Err(format!("request {id} finishes before it starts"));
                }
                self.summary.integrity_failures += 1;
                if *finish_ns > self.summary.last_finish_ns {
                    self.summary.last_finish_ns = *finish_ns;
                }
            }
            Outcome::Rejected(Rejected::QueueFull) => self.summary.shed_queue_full += 1,
            Outcome::Rejected(Rejected::DeadlineInfeasible) => self.summary.shed_infeasible += 1,
            Outcome::Rejected(Rejected::AllShardsUnhealthy) => {
                if self.summary.rerouted > 0 && matches!(r.outcome, Outcome::Rerouted { .. }) {
                    return Err(format!(
                        "request {id}: AllShardsUnhealthy cannot be wrapped in Rerouted"
                    ));
                }
                self.summary.all_shards_unhealthy += 1;
            }
            Outcome::Rerouted { .. } | Outcome::Hedged { .. } | Outcome::Batched { .. } => {
                unreachable!("unwrapped above")
            }
        }
        Ok(())
    }

    /// End-of-run checks against the engine's own accounting.
    fn finish(mut self, cfg: &SoakConfig, engine: &ShardedEngine) -> Result<StreamOutcome, String> {
        if let Some(e) = self.error {
            return Err(e);
        }
        if self.summary.requests != cfg.requests as u64 {
            return Err(format!(
                "expected {} responses, got {}",
                cfg.requests, self.summary.requests
            ));
        }
        let fleet = engine.fleet();
        if fleet.submitted != cfg.requests as u64 {
            return Err(format!(
                "fleet submitted {} != trace length {}",
                fleet.submitted, cfg.requests
            ));
        }
        if self.summary.rerouted != fleet.rerouted {
            return Err(format!(
                "rerouted responses {} disagree with fleet counter {}",
                self.summary.rerouted, fleet.rerouted
            ));
        }
        if self.summary.all_shards_unhealthy != fleet.rejected_all_unhealthy {
            return Err(format!(
                "all-shards-unhealthy responses {} disagree with fleet counter {}",
                self.summary.all_shards_unhealthy, fleet.rejected_all_unhealthy
            ));
        }
        self.summary.hedges_launched = fleet.hedges_launched;
        self.summary.hedges_won = fleet.hedges_won;
        self.summary.hedges_wasted = fleet.hedges_wasted;
        self.summary.hedges_suppressed = fleet.hedges_suppressed;
        if self.hedged_seen != fleet.hedges_launched {
            return Err(format!(
                "hedged responses {} disagree with fleet counter {}",
                self.hedged_seen, fleet.hedges_launched
            ));
        }
        if fleet.hedges_won + fleet.hedges_wasted != fleet.hedges_launched {
            return Err(format!(
                "hedge scoring leaked: {} won + {} wasted != {} launched",
                fleet.hedges_won, fleet.hedges_wasted, fleet.hedges_launched
            ));
        }
        let snapshots = engine.snapshots();
        let mut shard_submitted = 0u64;
        let mut cancelled_execs = 0u64;
        let mut integrity_execs = 0u64;
        for s in &snapshots {
            let c = &s.health.counters;
            shard_submitted += c.submitted;
            cancelled_execs += c.cancelled_over_budget;
            integrity_execs += c.integrity_failures;
            if c.completed
                + c.deadline_misses
                + c.cancelled_over_budget
                + c.integrity_failures
                + c.shed_queue_full
                + c.shed_infeasible
                != c.submitted
            {
                return Err(format!("shard {} counters not conserved: {c:?}", s.shard));
            }
            if c.max_queue_depth > cfg.queue_capacity as u64 {
                return Err(format!(
                    "shard {} queue depth {} exceeded capacity {}",
                    s.shard, c.max_queue_depth, cfg.queue_capacity
                ));
            }
            self.summary.drains += s.counters.drains;
            self.summary.readmits += s.counters.readmits;
            self.summary.dead_banks += s.health.banks.iter().filter(|b| b.permanent).count() as u64;
            self.summary.evk_hit_bytes += s.evk.hit_bytes;
            self.summary.evk_miss_bytes += s.evk.miss_bytes;
            self.summary.batches += s.evk.batches;
            self.summary.reorders += s.evk.reorders;
            self.summary.reorder_denied_slack += s.evk.reorder_denied_slack;
            self.summary.evk_saved_ns += s.evk_saved_ns;
        }
        // Hedges execute on a sibling's registry without a fleet
        // submission, so executions = submissions + hedges.
        if shard_submitted + fleet.rejected_all_unhealthy != fleet.submitted + fleet.hedges_launched
        {
            return Err(format!(
                "requests leaked: {} on shards + {} rejected != {} submitted + {} hedges",
                shard_submitted,
                fleet.rejected_all_unhealthy,
                fleet.submitted,
                fleet.hedges_launched
            ));
        }
        if self.summary.completed == 0 {
            return Err("no request completed".into());
        }
        if cfg.hedge {
            if fleet.hedges_launched == 0 {
                return Err("hedging enabled but no hedge launched".into());
            }
            if fleet.hedges_won == 0 {
                return Err("hedging enabled but no hedge won".into());
            }
        }
        if cfg.cancel
            && (cfg.gpu_stall_prob > 0.0 || cfg.flip_probability > 0.0)
            && cancelled_execs == 0
        {
            return Err("budget propagation enabled under faults but nothing was cancelled".into());
        }
        if cfg.gpu_flip_prob > 0.0 && integrity_execs == 0 {
            return Err("GPU transfer flips configured but no integrity verdict failed".into());
        }
        if cfg.shard_storm.is_some() {
            if self.summary.drains == 0 {
                return Err("shard-storm window never drained a shard".into());
            }
            if self.summary.readmits == 0 {
                return Err("no drained shard was re-admitted by a probe".into());
            }
            if self.summary.rerouted == 0 {
                return Err("no request failed over to a replica".into());
            }
        }
        if cfg.stuck_window.is_some() && self.summary.dead_banks == 0 {
            return Err("stuck-lane window never tripped a permanent breaker".into());
        }
        if cfg.batching {
            if self.summary.evk_saved_bytes == 0 {
                return Err("batching enabled but no evk fetch was amortized".into());
            }
            // Hedge re-executions bypass the dispatch lane, so response
            // and shard accounting can legitimately diverge under hedging;
            // everywhere else they must agree byte-for-byte.
            if !cfg.hedge && self.summary.evk_saved_bytes != self.summary.evk_hit_bytes {
                return Err(format!(
                    "Batched responses saved {} bytes but shards recorded {} hit bytes",
                    self.summary.evk_saved_bytes, self.summary.evk_hit_bytes
                ));
            }
        } else if self.summary.evk_saved_bytes + self.summary.evk_hit_bytes + self.summary.batches
            != 0
        {
            return Err("batching disabled but batch accounting is nonzero".into());
        }
        if cfg.ordering {
            if self.summary.reorders == 0 {
                return Err("ordering enabled but no request was pulled forward".into());
            }
            if self.summary.evk_saved_ns <= 0.0 {
                return Err("ordering enabled but no lane credit was granted".into());
            }
        } else if self.summary.reorders + self.summary.reorder_denied_slack != 0
            || self.summary.evk_saved_ns != 0.0
        {
            return Err("ordering disabled but reorder accounting is nonzero".into());
        }
        let snapshot_text = engine.render_snapshots();
        Ok(StreamOutcome {
            summary: self.summary,
            snapshots,
            snapshot_text,
        })
    }
}

/// Runs the sharded, bounded-memory streaming soak: the trace is generated
/// lazily, served through a [`ShardedEngine`] built from
/// [`shard_config_for`], and every response is invariant-checked as it is
/// produced, then dropped. With `obs`, completed spans stream through the
/// bounded sink and the fleet state is exported to the metrics registry.
///
/// Returns the first invariant violation (or engine error) as `Err`.
pub fn run_soak_stream(
    cfg: &SoakConfig,
    obs: Option<&mut StreamObs<'_>>,
) -> Result<StreamOutcome, String> {
    let gen = TraceGen::new(cfg);
    let mut engine = ShardedEngine::new(
        ServingConfig {
            workers: cfg.workers,
            queue_capacity: cfg.queue_capacity,
            cancel_over_budget: cfg.cancel,
            batching: cfg.batching,
            ordering: cfg.ordering.then(OrderingConfig::a100_default),
            ..ServingConfig::a100_default(cfg.seed)
        },
        shard_config_for(cfg),
    );
    let mut inv = StreamInvariants::new(cfg.requests);
    engine
        .run_stream(gen, |r| inv.observe(r), obs)
        .map_err(|e| format!("engine error: {e}"))?;
    inv.finish(cfg, &engine)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(seed: u64) -> SoakConfig {
        SoakConfig {
            requests: 40,
            stuck_window: Some((10, 16)),
            ..SoakConfig::chaos(seed)
        }
    }

    fn fleet_tiny(seed: u64) -> SoakConfig {
        SoakConfig {
            requests: 360,
            shards: 2,
            workers: 2,
            queue_capacity: 8,
            flip_probability: 0.005,
            storm_every: 0,
            stuck_window: None,
            arrival_factor: 1.2,
            shard_storm: Some((40, 90)),
            ..SoakConfig::chaos(seed)
        }
    }

    #[test]
    fn trace_is_deterministic_and_mixed() {
        let cfg = tiny(3);
        let a = build_trace(&cfg);
        let b = build_trace(&cfg);
        assert_eq!(a.len(), 40);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(
                (x.id, x.arrival_ns, x.deadline_ns),
                (y.id, y.arrival_ns, y.deadline_ns)
            );
            assert_eq!(x.fault, y.fault);
        }
        let labels: std::collections::HashSet<_> = a.iter().map(|r| r.label).collect();
        assert!(labels.len() >= 3, "mixed workloads: {labels:?}");
        let priorities: std::collections::HashSet<_> = a.iter().map(|r| r.priority).collect();
        assert_eq!(priorities.len(), 3, "all three priority classes");
        // Arrivals are strictly increasing, deadlines after arrivals.
        for w in a.windows(2) {
            assert!(w[1].arrival_ns > w[0].arrival_ns);
        }
        assert!(a.iter().all(|r| r.deadline_ns > r.arrival_ns));
        // Derived fault streams are distinct per request.
        assert_ne!(a[0].fault, a[1].fault);
        // Templates are shared, not cloned per request.
        let mut x = a.iter();
        let first = x.next().unwrap();
        assert!(a
            .iter()
            .any(|r| r.id != first.id && Arc::ptr_eq(&r.seq, &first.seq)));
    }

    #[test]
    fn lazy_generator_matches_materialized_trace() {
        let cfg = fleet_tiny(5);
        let lazy: Vec<Request> = TraceGen::new(&cfg).collect();
        let eager = build_trace(&cfg);
        assert_eq!(lazy.len(), eager.len());
        for (x, y) in lazy.iter().zip(&eager) {
            assert_eq!(
                (x.id, x.tenant, x.arrival_ns),
                (y.id, y.tenant, y.arrival_ns)
            );
            assert_eq!(x.fault, y.fault);
        }
        // The shard storm hits only shard-0 tenants, only in the window.
        let router = ShardRouter::new(shard_config_for(&cfg).router_seed, cfg.shards);
        let (s, e) = cfg.shard_storm.unwrap();
        assert!(lazy
            .iter()
            .filter(|r| (s..e).contains(&(r.id as usize)))
            .any(|r| router.home_shard(r.tenant) == 0));
        for r in &lazy {
            let stormed = r.fault.as_ref().is_some_and(|f| !f.is_benign())
                && router.home_shard(r.tenant) == 0
                && (s..e).contains(&(r.id as usize));
            if !(s..e).contains(&(r.id as usize)) || router.home_shard(r.tenant) != 0 {
                assert!(!stormed);
            }
        }
    }

    #[test]
    fn clean_soak_passes_invariants() {
        let cfg = SoakConfig {
            requests: 30,
            ..SoakConfig::clean(11)
        };
        let out = run_soak(&cfg).unwrap();
        let s = check_invariants(&cfg, &out).unwrap();
        assert_eq!(s.faults, 0);
        assert_eq!(s.transitions, 0);
        assert_eq!(s.dead_banks, 0);
        assert!(s.completed > 0);
    }

    #[test]
    fn chaos_soak_trips_breaker_and_passes_invariants() {
        let cfg = tiny(17);
        let out = run_soak(&cfg).unwrap();
        let s = check_invariants(&cfg, &out).unwrap();
        assert!(s.faults > 0, "chaos must inject faults");
        assert_eq!(s.dead_banks, 1, "one domain permanently open");
        assert!(s.transitions >= 1);
    }

    #[test]
    fn fleet_stream_soak_fails_over_and_passes_invariants() {
        let cfg = fleet_tiny(21);
        let out = run_soak_stream(&cfg, None).unwrap();
        let s = out.summary;
        assert_eq!(s.requests, 360);
        assert!(s.drains >= 1, "storm must drain shard 0: {s:?}");
        assert!(s.readmits >= 1, "probe must re-admit: {s:?}");
        assert!(s.rerouted >= 1, "tenants must fail over: {s:?}");
        assert!(s.completed > 0);
        assert_eq!(
            (s.hedges_launched, s.cancelled, s.integrity_failures),
            (0, 0, 0),
            "nothing hedges or cancels with the knobs off"
        );
        assert!(out.snapshot_text.starts_with("fleet: submitted=360"));
        // The run replays bit-identically, snapshot text included.
        let again = run_soak_stream(&cfg, None).unwrap();
        assert_eq!(out.snapshot_text, again.snapshot_text);
        assert_eq!(out.summary, again.summary);
    }

    /// A scaled-down hedge-chaos storm for unit testing; the full preset
    /// runs in the `hedge-chaos` gate of `scripts/check.sh`.
    fn hedge_tiny(seed: u64) -> SoakConfig {
        SoakConfig {
            requests: 900,
            ..SoakConfig::hedge_chaos(seed)
        }
    }

    #[test]
    fn gpu_fault_soak_cancels_and_fails_integrity_single_engine() {
        let cfg = SoakConfig {
            requests: 120,
            gpu_stall_prob: 0.08,
            gpu_stall_ns: 2.0e5,
            gpu_flip_prob: 2.0e-3,
            cancel: true,
            ..SoakConfig::chaos(23)
        };
        let out = run_soak(&cfg).unwrap();
        let s = check_invariants(&cfg, &out).unwrap();
        assert!(
            s.cancelled >= 1,
            "GPU stalls under budget propagation must cancel something: {s}"
        );
        assert!(
            s.integrity_failures >= 1,
            "transfer flips must fail an end-to-end verdict: {s}"
        );
        assert!(s.completed > 0, "the storm must not kill everything: {s}");
        // Counter conservation with the new classes is checked inside
        // check_invariants; determinism:
        let again = run_soak(&cfg).unwrap();
        assert_eq!(out.responses, again.responses);
    }

    #[test]
    fn batched_fleet_stream_soak_amortizes_evk_fetches() {
        let cfg = SoakConfig {
            requests: 400,
            ..SoakConfig::batched_fleet(31)
        };
        let out = run_soak_stream(&cfg, None).unwrap();
        let s = out.summary;
        assert_eq!(s.requests, 400);
        // finish() already enforces saved > 0 and saved == shard hit bytes
        // (no hedging in this preset); pin the headline shape too.
        assert!(s.evk_saved_bytes > 0, "{s}");
        assert_eq!(s.evk_saved_bytes, s.evk_hit_bytes, "{s}");
        assert!(s.evk_miss_bytes > 0, "every batch head pays a full fetch");
        assert!(s.batches > 0, "{s}");
        assert!(s.completed > 0, "{s}");
        assert!(s.to_string().contains("evk"), "summary reports evk: {s}");
        assert!(out.snapshot_text.contains("evk: hit-bytes="));
        let again = run_soak_stream(&cfg, None).unwrap();
        assert_eq!(out.snapshot_text, again.snapshot_text);
        assert_eq!(out.summary, again.summary);
    }

    #[test]
    fn ordered_fleet_stream_soak_converts_bytes_saved_into_rps() {
        let batched = SoakConfig {
            requests: 400,
            ..SoakConfig::batched_fleet(31)
        };
        let ordered = SoakConfig {
            requests: 400,
            ..SoakConfig::ordered_fleet(31)
        };
        let base = run_soak_stream(&batched, None).unwrap();
        let out = run_soak_stream(&ordered, None).unwrap();
        let s = out.summary;
        // finish() already enforces reorders >= 1 and credit > 0; pin the
        // headline claim: run formation converts saved bytes into a
        // strictly higher virtual throughput at no deadline cost.
        assert!(s.reorders > 0, "{s}");
        assert!(s.evk_saved_ns > 0.0, "{s}");
        assert!(
            s.evk_saved_bytes >= base.summary.evk_saved_bytes,
            "ordering must not amortize fewer bytes than the overlay: {} < {}",
            s.evk_saved_bytes,
            base.summary.evk_saved_bytes
        );
        assert!(
            s.virtual_rps() > base.summary.virtual_rps(),
            "ordered {} req/vs must beat batched {} req/vs",
            s.virtual_rps(),
            base.summary.virtual_rps()
        );
        assert!(
            s.deadline_misses <= base.summary.deadline_misses,
            "ordering may not mint deadline misses: {} > {}",
            s.deadline_misses,
            base.summary.deadline_misses
        );
        assert!(out.snapshot_text.contains("ordering: reorders="));
        let again = run_soak_stream(&ordered, None).unwrap();
        assert_eq!(out.snapshot_text, again.snapshot_text);
        assert_eq!(out.summary, again.summary);
    }

    #[test]
    fn batch_hedge_stream_soak_composes_and_conserves() {
        let cfg = SoakConfig {
            requests: 900,
            ..SoakConfig::batch_hedge_chaos(29)
        };
        let out = run_soak_stream(&cfg, None).unwrap();
        let s = out.summary;
        // finish() enforces fleet conservation, >=1 hedge launch/win, and
        // saved bytes > 0 under batching; pin the composed shape here.
        assert!(s.evk_saved_bytes > 0, "{s}");
        assert!(s.batches > 0, "{s}");
        assert!(s.hedges_launched >= 1, "{s}");
        assert!(s.hedges_won >= 1, "{s}");
        assert_eq!(s.hedges_won + s.hedges_wasted, s.hedges_launched, "{s}");
        // Hedge re-executions bypass the dispatch lane, so response-side
        // saved bytes may lag the shard-side hit bytes — never exceed them.
        assert!(s.evk_saved_bytes <= s.evk_hit_bytes, "{s}");
        let again = run_soak_stream(&cfg, None).unwrap();
        assert_eq!(out.snapshot_text, again.snapshot_text);
        assert_eq!(out.summary, again.summary);
    }

    #[test]
    fn unbatched_fleet_stream_soak_has_zero_batch_accounting() {
        // Same trace shape, batching off: the summary must show no batch
        // accounting at all (finish() errors otherwise) and the snapshot
        // text must not grow an evk line.
        let cfg = SoakConfig {
            requests: 400,
            batching: false,
            ..SoakConfig::batched_fleet(31)
        };
        let out = run_soak_stream(&cfg, None).unwrap();
        let s = out.summary;
        assert_eq!(
            (
                s.evk_saved_bytes,
                s.evk_hit_bytes,
                s.evk_miss_bytes,
                s.batches
            ),
            (0, 0, 0, 0),
            "{s}"
        );
        assert!(!out.snapshot_text.contains("evk:"));
    }

    #[test]
    fn hedge_chaos_stream_soak_hedges_wins_and_cancels() {
        let cfg = hedge_tiny(29);
        let out = run_soak_stream(&cfg, None).unwrap();
        let s = out.summary;
        assert_eq!(s.requests, 900);
        // finish() already enforces >=1 launch, >=1 win, >=1 cancelled
        // execution, >=1 integrity failure; pin the headline shape too.
        assert!(s.hedges_launched >= 1, "{s}");
        assert!(s.hedges_won >= 1, "{s}");
        assert_eq!(s.hedges_won + s.hedges_wasted, s.hedges_launched, "{s}");
        assert!(s.completed > 0, "{s}");
        assert!(out.snapshot_text.contains("hedges-launched="));
        let again = run_soak_stream(&cfg, None).unwrap();
        assert_eq!(out.snapshot_text, again.snapshot_text);
        assert_eq!(out.summary, again.summary);
    }
}
