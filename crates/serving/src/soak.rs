//! The deterministic chaos-soak harness.
//!
//! A soak run replays a seeded trace of mixed CKKS workloads through the
//! serving engine under a seeded fault schedule — background bit-flip
//! pressure, periodic fault storms, and a stuck-lane window that
//! permanently sickens one bank domain — then checks the serving
//! invariants:
//!
//! 1. every request gets exactly one response;
//! 2. no response claims on-time completion past its deadline;
//! 3. counters are conserved (completed + missed + shed = submitted);
//! 4. the stuck-lane window trips a breaker permanently, and the run still
//!    completes work through GPU fallback.
//!
//! Everything is a pure function of [`SoakConfig`]: the trace, the fault
//! streams, and the virtual-time engine are all seeded, so two runs with
//! the same config produce bit-identical responses, health snapshots, and
//! breaker transition logs — at any `ANAHEIM_THREADS` value. The
//! determinism regression tests and `scripts/soak.sh` both lean on this.

use std::fmt;

use anaheim_core::build::{Builder, LinTransStyle};
use anaheim_core::framework::Anaheim;
use anaheim_core::health::{BreakerTransition, HealthSnapshot};
use anaheim_core::ir::OpSequence;
use anaheim_core::params::ParamSet;
use anaheim_core::RunError;
use pim::fault::FaultPlan;

use crate::engine::{ServingConfig, ServingEngine};
use crate::request::{Outcome, Priority, Request, Response};

/// Configuration of one soak run. Fully determines the outcome.
#[derive(Debug, Clone)]
pub struct SoakConfig {
    /// Requests in the trace.
    pub requests: usize,
    /// Master seed: trace shape, fault streams, retry jitter.
    pub seed: u64,
    /// Virtual execution lanes.
    pub workers: usize,
    /// Admission queue capacity.
    pub queue_capacity: usize,
    /// Background transient-fault probability per PIM kernel.
    pub flip_probability: f64,
    /// Every `storm_every`-th request runs under a fault storm (high flip
    /// probability), driving transient breaker trips. 0 disables storms.
    pub storm_every: usize,
    /// Request index range `[start, end)` whose fault plans include a
    /// stuck MMAC lane — a hard fault that permanently opens the owning
    /// bank domain's breaker. `None` disables.
    pub stuck_window: Option<(usize, usize)>,
    /// The stuck lane (its domain is `lane % die_groups`).
    pub stuck_lane: u8,
    /// Arrival pressure: mean inter-arrival as a fraction of
    /// `reference_cost / workers`. Below 1.0 the system is overloaded and
    /// sheds; above it mostly keeps up.
    pub arrival_factor: f64,
}

impl SoakConfig {
    /// The default chaos soak: 240 requests, mild overload, storms every
    /// 13th request, and a stuck-lane window in the middle third.
    pub fn chaos(seed: u64) -> Self {
        Self {
            requests: 240,
            seed,
            workers: 3,
            queue_capacity: 12,
            flip_probability: 0.02,
            storm_every: 13,
            stuck_window: Some((80, 100)),
            stuck_lane: 7,
            arrival_factor: 0.9,
        }
    }

    /// A fault-free control run (same trace shape, no injection).
    pub fn clean(seed: u64) -> Self {
        Self {
            flip_probability: 0.0,
            storm_every: 0,
            stuck_window: None,
            ..Self::chaos(seed)
        }
    }
}

/// Everything a soak run produces, in comparable form.
#[derive(Debug, Clone, PartialEq)]
pub struct SoakOutcome {
    /// One response per request, sorted by id.
    pub responses: Vec<Response>,
    /// Final health snapshot.
    pub snapshot: HealthSnapshot,
    /// The full breaker transition log.
    pub transitions: Vec<BreakerTransition>,
}

/// Headline numbers of a soak run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SoakSummary {
    /// Requests served on time.
    pub completed: u64,
    /// Requests that executed but missed their deadline.
    pub deadline_misses: u64,
    /// Requests shed: queue full.
    pub shed_queue_full: u64,
    /// Requests shed: deadline infeasible.
    pub shed_infeasible: u64,
    /// PIM integrity faults absorbed.
    pub faults: u64,
    /// Kernels routed around open breakers.
    pub breaker_skips: u64,
    /// Breaker transitions recorded.
    pub transitions: u64,
    /// Bank domains left permanently open.
    pub dead_banks: u64,
}

impl fmt::Display for SoakSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} completed, {} deadline misses, {} shed (queue-full {}, infeasible {}), \
             {} faults absorbed, {} breaker skips, {} transitions, {} dead bank(s)",
            self.completed,
            self.deadline_misses,
            self.shed_queue_full + self.shed_infeasible,
            self.shed_queue_full,
            self.shed_infeasible,
            self.faults,
            self.breaker_skips,
            self.transitions,
            self.dead_banks
        )
    }
}

/// Deterministic 64-bit generator for trace shaping (SplitMix64).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in [0, 1).
    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Builds the seeded request trace: mixed workloads, three priority
/// classes, four tenants, and per-request derived fault streams.
pub fn build_trace(cfg: &SoakConfig) -> Vec<Request> {
    let params = ParamSet::paper_default();
    let mut b = Builder::new(params);
    let l = 24;
    // The workload mix, built once and cloned per request.
    let kinds: Vec<(OpSequence, &'static str)> = vec![
        (
            b.lintrans(54, 8, LinTransStyle::Hoisting, true),
            "lintrans-wide",
        ),
        (b.lintrans(l, 4, LinTransStyle::Hoisting, true), "lintrans"),
        (
            b.lintrans(l, 6, LinTransStyle::MinKS, false),
            "lintrans-minks",
        ),
        (b.hmult(l), "hmult"),
        (b.hrot(l), "hrot"),
        (b.hadd(l), "hadd"),
    ];
    // Reference cost: the clean wide lintrans on the serving platform,
    // used to scale arrivals and deadlines. Deterministic (analytic model).
    let rt = Anaheim::new(ServingConfig::a100_default(cfg.seed).platform);
    let t_ref = rt
        .run(kinds[0].0.clone())
        .expect("reference workload runs clean")
        .total_ns;

    let base_fault = FaultPlan::none()
        .with_seed(cfg.seed ^ 0xFA17_FA17)
        .with_bank_flips(cfg.flip_probability);
    let mean_gap = cfg.arrival_factor * t_ref / cfg.workers.max(1) as f64;

    let mut rng = Rng(cfg.seed);
    let mut arrival = 0.0f64;
    let mut trace = Vec::with_capacity(cfg.requests);
    for i in 0..cfg.requests {
        let h = rng.next();
        let (seq, label) = &kinds[(h % kinds.len() as u64) as usize];
        let priority = match h >> 32 & 3 {
            0 => Priority::Interactive,
            1 => Priority::Batch,
            _ => Priority::Standard,
        };
        arrival += mean_gap * (0.25 + 1.5 * rng.unit());
        // Slack scales with the reference cost; interactive is tight
        // enough that queueing or fault recovery can break it.
        let slack = match priority {
            Priority::Interactive => t_ref * (1.2 + 1.0 * rng.unit()),
            Priority::Standard => t_ref * (3.0 + 3.0 * rng.unit()),
            Priority::Batch => t_ref * (8.0 + 8.0 * rng.unit()),
        };
        let mut fault = None;
        if cfg.flip_probability > 0.0 || cfg.stuck_window.is_some() || cfg.storm_every > 0 {
            let mut plan = base_fault.derive_stream(i as u64);
            if cfg.storm_every > 0 && i % cfg.storm_every == cfg.storm_every - 1 {
                plan = plan.with_bank_flips(0.9);
            }
            if let Some((s, e)) = cfg.stuck_window {
                if (s..e).contains(&i) {
                    plan = plan.with_stuck_lane(cfg.stuck_lane);
                }
            }
            fault = Some(plan);
        }
        trace.push(Request {
            id: i as u64,
            tenant: ((h >> 40) % 4) as u32,
            priority,
            arrival_ns: arrival,
            deadline_ns: arrival + slack,
            seq: seq.clone(),
            fault,
            label,
        });
    }
    trace
}

/// Runs a full soak: build the trace, serve it, snapshot health.
pub fn run_soak(cfg: &SoakConfig) -> Result<SoakOutcome, RunError> {
    let trace = build_trace(cfg);
    let mut engine = ServingEngine::new(ServingConfig {
        workers: cfg.workers,
        queue_capacity: cfg.queue_capacity,
        ..ServingConfig::a100_default(cfg.seed)
    });
    let responses = engine.run_trace(&trace)?;
    Ok(SoakOutcome {
        responses,
        snapshot: engine.snapshot(),
        transitions: engine.registry().transitions().to_vec(),
    })
}

/// Checks the soak invariants, returning the summary on success and the
/// first violation otherwise.
pub fn check_invariants(cfg: &SoakConfig, out: &SoakOutcome) -> Result<SoakSummary, String> {
    if out.responses.len() != cfg.requests {
        return Err(format!(
            "expected {} responses, got {}",
            cfg.requests,
            out.responses.len()
        ));
    }
    let mut summary = SoakSummary::default();
    for (i, r) in out.responses.iter().enumerate() {
        if r.id != i as u64 {
            return Err(format!("response {i} has id {} (duplicate or gap)", r.id));
        }
        match &r.outcome {
            Outcome::Completed {
                start_ns,
                finish_ns,
                deadline_ns,
                faults,
                ..
            } => {
                if finish_ns > deadline_ns {
                    return Err(format!(
                        "request {} reported Completed past its deadline \
                         (finish {finish_ns} > deadline {deadline_ns})",
                        r.id
                    ));
                }
                if finish_ns < start_ns {
                    return Err(format!("request {} finishes before it starts", r.id));
                }
                summary.completed += 1;
                summary.faults += *faults as u64;
            }
            Outcome::DeadlineMiss {
                finish_ns,
                deadline_ns,
                ..
            } => {
                if finish_ns <= deadline_ns {
                    return Err(format!(
                        "request {} reported DeadlineMiss inside its deadline",
                        r.id
                    ));
                }
                summary.deadline_misses += 1;
            }
            Outcome::Rejected(reason) => match reason {
                crate::request::Rejected::QueueFull => summary.shed_queue_full += 1,
                crate::request::Rejected::DeadlineInfeasible => summary.shed_infeasible += 1,
            },
        }
    }
    let c = &out.snapshot.counters;
    if c.submitted != cfg.requests as u64 {
        return Err(format!(
            "submitted counter {} != trace length {}",
            c.submitted, cfg.requests
        ));
    }
    if c.completed + c.deadline_misses + c.shed_queue_full + c.shed_infeasible != c.submitted {
        return Err(format!("counters not conserved: {c:?}"));
    }
    if (
        c.completed,
        c.deadline_misses,
        c.shed_queue_full,
        c.shed_infeasible,
    ) != (
        summary.completed,
        summary.deadline_misses,
        summary.shed_queue_full,
        summary.shed_infeasible,
    ) {
        return Err(format!(
            "counters disagree with responses: {c:?} vs {summary:?}"
        ));
    }
    if c.max_queue_depth > cfg.queue_capacity as u64 {
        return Err(format!(
            "queue depth {} exceeded capacity {}",
            c.max_queue_depth, cfg.queue_capacity
        ));
    }
    if summary.completed == 0 {
        return Err("no request completed".into());
    }
    summary.breaker_skips = c.breaker_skips;
    summary.transitions = out.transitions.len() as u64;
    summary.dead_banks = out.snapshot.banks.iter().filter(|b| b.permanent).count() as u64;
    if cfg.stuck_window.is_some() {
        if summary.dead_banks == 0 {
            return Err("stuck-lane window never tripped a permanent breaker".into());
        }
        if summary.breaker_skips == 0 {
            return Err("open breaker never routed a kernel around PIM".into());
        }
        if out.snapshot.open_banks() == out.snapshot.banks.len() {
            return Err("every bank open: degradation was not bank-scoped".into());
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(seed: u64) -> SoakConfig {
        SoakConfig {
            requests: 40,
            stuck_window: Some((10, 16)),
            ..SoakConfig::chaos(seed)
        }
    }

    #[test]
    fn trace_is_deterministic_and_mixed() {
        let cfg = tiny(3);
        let a = build_trace(&cfg);
        let b = build_trace(&cfg);
        assert_eq!(a.len(), 40);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(
                (x.id, x.arrival_ns, x.deadline_ns),
                (y.id, y.arrival_ns, y.deadline_ns)
            );
            assert_eq!(x.fault, y.fault);
        }
        let labels: std::collections::HashSet<_> = a.iter().map(|r| r.label).collect();
        assert!(labels.len() >= 3, "mixed workloads: {labels:?}");
        let priorities: std::collections::HashSet<_> = a.iter().map(|r| r.priority).collect();
        assert_eq!(priorities.len(), 3, "all three priority classes");
        // Arrivals are strictly increasing, deadlines after arrivals.
        for w in a.windows(2) {
            assert!(w[1].arrival_ns > w[0].arrival_ns);
        }
        assert!(a.iter().all(|r| r.deadline_ns > r.arrival_ns));
        // Derived fault streams are distinct per request.
        assert_ne!(a[0].fault, a[1].fault);
    }

    #[test]
    fn clean_soak_passes_invariants() {
        let cfg = SoakConfig {
            requests: 30,
            ..SoakConfig::clean(11)
        };
        let out = run_soak(&cfg).unwrap();
        let s = check_invariants(&cfg, &out).unwrap();
        assert_eq!(s.faults, 0);
        assert_eq!(s.transitions, 0);
        assert_eq!(s.dead_banks, 0);
        assert!(s.completed > 0);
    }

    #[test]
    fn chaos_soak_trips_breaker_and_passes_invariants() {
        let cfg = tiny(17);
        let out = run_soak(&cfg).unwrap();
        let s = check_invariants(&cfg, &out).unwrap();
        assert!(s.faults > 0, "chaos must inject faults");
        assert_eq!(s.dead_banks, 1, "one domain permanently open");
        assert!(s.transitions >= 1);
    }
}
