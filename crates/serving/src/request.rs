//! Request, priority, and response types of the serving layer.

use std::fmt;

use anaheim_core::ir::OpSequence;
use pim::fault::FaultPlan;

/// Priority classes, in ascending urgency. Higher-priority requests pop
/// first from the admission queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Throughput work: analytics batches, offline scoring.
    Batch,
    /// The default class.
    Standard,
    /// Latency-sensitive: tight deadlines, served first.
    Interactive,
}

impl Priority {
    /// Human-readable label.
    pub fn label(&self) -> &'static str {
        match self {
            Priority::Batch => "batch",
            Priority::Standard => "standard",
            Priority::Interactive => "interactive",
        }
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Typed admission-control rejections. Shed load is *not* an error: a
/// rejected request gets a definitive answer immediately instead of
/// occupying queue space it cannot use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rejected {
    /// The admission queue is at capacity.
    QueueFull,
    /// Even an immediate dispatch projection cannot meet the deadline, so
    /// executing would only waste capacity on a guaranteed miss.
    DeadlineInfeasible,
}

impl fmt::Display for Rejected {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rejected::QueueFull => write!(f, "queue full"),
            Rejected::DeadlineInfeasible => write!(f, "deadline infeasible"),
        }
    }
}

/// One inference/bootstrapping request submitted to the serving layer.
///
/// All times are virtual nanoseconds on the shared simulation clock.
#[derive(Debug, Clone)]
pub struct Request {
    /// Unique id (also the tie-breaker for deterministic ordering).
    pub id: u64,
    /// Submitting tenant.
    pub tenant: u32,
    /// Priority class.
    pub priority: Priority,
    /// Submission time.
    pub arrival_ns: f64,
    /// Absolute deadline.
    pub deadline_ns: f64,
    /// The FHE op sequence to execute (unfused; the engine prepares it).
    pub seq: OpSequence,
    /// Per-request fault environment (`None` = fault-free). Derived
    /// per-request streams keep outcomes independent of execution order.
    pub fault: Option<FaultPlan>,
    /// Workload label for reports.
    pub label: &'static str,
}

/// What happened to a request.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// Finished before its deadline.
    Completed {
        /// Dispatch time.
        start_ns: f64,
        /// Completion time.
        finish_ns: f64,
        /// The deadline it met.
        deadline_ns: f64,
        /// PIM integrity faults absorbed while serving it.
        faults: u32,
        /// Kernels that fell back to the GPU after exhausting PIM attempts.
        pim_fallbacks: u32,
        /// Kernels routed straight to the GPU by an open breaker.
        breaker_skips: u32,
    },
    /// Executed, but finished after its deadline (e.g. fault-recovery time
    /// ate the slack). Never reported as success.
    DeadlineMiss {
        /// Dispatch time.
        start_ns: f64,
        /// Completion time (past the deadline).
        finish_ns: f64,
        /// The deadline it missed.
        deadline_ns: f64,
    },
    /// Shed at admission with a typed reason.
    Rejected(Rejected),
}

impl Outcome {
    /// True only for on-time completion.
    pub fn is_completed(&self) -> bool {
        matches!(self, Outcome::Completed { .. })
    }

    /// True when the request was shed at admission.
    pub fn is_rejected(&self) -> bool {
        matches!(self, Outcome::Rejected(_))
    }
}

/// The serving layer's answer for one request.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Request id.
    pub id: u64,
    /// Submitting tenant.
    pub tenant: u32,
    /// Priority class.
    pub priority: Priority,
    /// Workload label.
    pub label: &'static str,
    /// What happened.
    pub outcome: Outcome,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_orders_by_urgency() {
        assert!(Priority::Interactive > Priority::Standard);
        assert!(Priority::Standard > Priority::Batch);
    }

    #[test]
    fn rejection_reasons_display() {
        assert_eq!(Rejected::QueueFull.to_string(), "queue full");
        assert_eq!(
            Rejected::DeadlineInfeasible.to_string(),
            "deadline infeasible"
        );
    }

    #[test]
    fn outcome_predicates() {
        let c = Outcome::Completed {
            start_ns: 0.0,
            finish_ns: 1.0,
            deadline_ns: 2.0,
            faults: 0,
            pim_fallbacks: 0,
            breaker_skips: 0,
        };
        assert!(c.is_completed() && !c.is_rejected());
        let r = Outcome::Rejected(Rejected::QueueFull);
        assert!(!r.is_completed() && r.is_rejected());
        let m = Outcome::DeadlineMiss {
            start_ns: 0.0,
            finish_ns: 3.0,
            deadline_ns: 2.0,
        };
        assert!(!m.is_completed());
    }
}
