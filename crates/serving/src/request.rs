//! Request, priority, and response types of the serving layer.

use std::fmt;
use std::sync::Arc;

use anaheim_core::ir::OpSequence;
use pim::fault::FaultPlan;

/// Priority classes, in ascending urgency. Higher-priority requests pop
/// first from the admission queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Throughput work: analytics batches, offline scoring.
    Batch,
    /// The default class.
    Standard,
    /// Latency-sensitive: tight deadlines, served first.
    Interactive,
}

impl Priority {
    /// Human-readable label.
    pub fn label(&self) -> &'static str {
        match self {
            Priority::Batch => "batch",
            Priority::Standard => "standard",
            Priority::Interactive => "interactive",
        }
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Typed admission-control rejections. Shed load is *not* an error: a
/// rejected request gets a definitive answer immediately instead of
/// occupying queue space it cannot use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rejected {
    /// The admission queue is at capacity.
    QueueFull,
    /// Even an immediate dispatch projection cannot meet the deadline, so
    /// executing would only waste capacity on a guaranteed miss.
    DeadlineInfeasible,
    /// Sharded serving only: no replica shard is accepting work (every
    /// shard is draining, cooling, or has a probe already in flight).
    AllShardsUnhealthy,
}

impl fmt::Display for Rejected {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rejected::QueueFull => write!(f, "queue full"),
            Rejected::DeadlineInfeasible => write!(f, "deadline infeasible"),
            Rejected::AllShardsUnhealthy => write!(f, "all shards unhealthy"),
        }
    }
}

/// One inference/bootstrapping request submitted to the serving layer.
///
/// All times are virtual nanoseconds on the shared simulation clock.
#[derive(Debug, Clone)]
pub struct Request {
    /// Unique id (also the tie-breaker for deterministic ordering).
    pub id: u64,
    /// Submitting tenant.
    pub tenant: u32,
    /// Priority class.
    pub priority: Priority,
    /// Submission time.
    pub arrival_ns: f64,
    /// Absolute deadline.
    pub deadline_ns: f64,
    /// The FHE op sequence to execute (unfused; the engine prepares it).
    /// Shared: trace generators reuse a handful of workload templates
    /// across millions of requests, and the engine dedups preparation by
    /// pointer identity, so cloning a request never copies the sequence.
    pub seq: Arc<OpSequence>,
    /// Per-request fault environment (`None` = fault-free). Derived
    /// per-request streams keep outcomes independent of execution order.
    pub fault: Option<FaultPlan>,
    /// Workload label for reports.
    pub label: &'static str,
}

/// What happened to a request.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// Finished before its deadline.
    Completed {
        /// Dispatch time.
        start_ns: f64,
        /// Completion time.
        finish_ns: f64,
        /// The deadline it met.
        deadline_ns: f64,
        /// How much deadline headroom was left (`deadline_ns - finish_ns`,
        /// always >= 0 here), so success-path tightness is assertable
        /// without recomputing it from the other fields.
        deadline_slack_ns: f64,
        /// PIM integrity faults absorbed while serving it.
        faults: u32,
        /// Kernels that fell back to the GPU after exhausting PIM attempts.
        pim_fallbacks: u32,
        /// Kernels routed straight to the GPU by an open breaker.
        breaker_skips: u32,
    },
    /// Executed, but finished after its deadline (e.g. fault-recovery time
    /// ate the slack). Never reported as success.
    DeadlineMiss {
        /// Dispatch time.
        start_ns: f64,
        /// Completion time (past the deadline).
        finish_ns: f64,
        /// The deadline it missed.
        deadline_ns: f64,
    },
    /// Cancelled mid-flight at a segment boundary: its deadline budget ran
    /// out, so the scheduler stopped instead of burning the remaining cost
    /// to produce a guaranteed miss.
    Cancelled {
        /// Dispatch time.
        start_ns: f64,
        /// Virtual time consumed before the cancellation point.
        consumed_ns: f64,
        /// Timeline segments that had already executed.
        segments_done: u32,
    },
    /// Executed to completion, but the end-to-end integrity verdict failed:
    /// a GPU transfer bit flip corrupted a result that no per-kernel residue
    /// check could catch. Never reported as success — this is the typed
    /// alternative to a silent wrong answer.
    IntegrityFailure {
        /// Dispatch time.
        start_ns: f64,
        /// Completion time of the corrupted run.
        finish_ns: f64,
    },
    /// Shed at admission with a typed reason.
    Rejected(Rejected),
    /// Sharded serving only: the primary execution looked risky (projected
    /// late, cancelled, or integrity-failed), so a deterministic hedge ran
    /// on the rendezvous-next sibling shard. Wraps the winning execution's
    /// outcome; exactly one [`Outcome::Hedged`] is emitted per hedged
    /// request.
    Hedged {
        /// The shard whose execution won.
        winner: u32,
        /// Virtual time the losing execution consumed (wasted work).
        loser_consumed_ns: f64,
        /// The winning execution's outcome.
        outcome: Box<Outcome>,
    },
    /// Sharded serving only: the request's home shard was not accepting
    /// (draining or cooling), so the router sent it to a healthy replica.
    /// Wraps what then happened there — exactly one level deep, since a
    /// request is routed once.
    Rerouted {
        /// The home shard that was not accepting.
        from_shard: u32,
        /// The replica that took the request.
        to_shard: u32,
        /// What happened on the replica.
        outcome: Box<Outcome>,
    },
    /// Same-tenant batch serving only
    /// ([`ServingConfig::batching`](crate::ServingConfig::batching)): this
    /// dispatch joined the running same-tenant batch on its shard, so its
    /// evaluation-key working set was already resident — the fetch the
    /// batch head paid for is amortized, not repeated. Wraps what then
    /// happened to the execution.
    Batched {
        /// Evaluation-key bytes this request did not re-fetch
        /// (its sequence's
        /// [`evk_read_bytes`](anaheim_core::ir::OpSequence::evk_read_bytes)).
        evk_bytes_saved: u64,
        /// True when batch-aware ordering
        /// ([`ServingConfig::ordering`](crate::ServingConfig::ordering))
        /// pulled this request forward past strangers to join the batch;
        /// false when the run formed on its own in arrival order.
        reordered: bool,
        /// The execution's outcome.
        outcome: Box<Outcome>,
    },
}

impl Outcome {
    /// True only for on-time completion (looking through rerouting).
    pub fn is_completed(&self) -> bool {
        matches!(self.final_outcome(), Outcome::Completed { .. })
    }

    /// True when the request was shed at admission (looking through
    /// rerouting: a request rerouted into a full replica queue still got
    /// shed).
    pub fn is_rejected(&self) -> bool {
        matches!(self.final_outcome(), Outcome::Rejected(_))
    }

    /// The terminal outcome, unwrapping [`Outcome::Rerouted`],
    /// [`Outcome::Hedged`], and [`Outcome::Batched`].
    pub fn final_outcome(&self) -> &Outcome {
        match self {
            Outcome::Rerouted { outcome, .. }
            | Outcome::Hedged { outcome, .. }
            | Outcome::Batched { outcome, .. } => outcome.final_outcome(),
            other => other,
        }
    }
}

/// The serving layer's answer for one request.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Request id.
    pub id: u64,
    /// Submitting tenant.
    pub tenant: u32,
    /// Priority class.
    pub priority: Priority,
    /// Workload label.
    pub label: &'static str,
    /// What happened.
    pub outcome: Outcome,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_orders_by_urgency() {
        assert!(Priority::Interactive > Priority::Standard);
        assert!(Priority::Standard > Priority::Batch);
    }

    #[test]
    fn rejection_reasons_display() {
        assert_eq!(Rejected::QueueFull.to_string(), "queue full");
        assert_eq!(
            Rejected::DeadlineInfeasible.to_string(),
            "deadline infeasible"
        );
        assert_eq!(
            Rejected::AllShardsUnhealthy.to_string(),
            "all shards unhealthy"
        );
    }

    #[test]
    fn rerouted_predicates_look_through_the_wrapper() {
        let done = Outcome::Completed {
            start_ns: 0.0,
            finish_ns: 1.0,
            deadline_ns: 2.0,
            deadline_slack_ns: 1.0,
            faults: 0,
            pim_fallbacks: 0,
            breaker_skips: 0,
        };
        let rerouted = Outcome::Rerouted {
            from_shard: 0,
            to_shard: 2,
            outcome: Box::new(done.clone()),
        };
        assert!(rerouted.is_completed());
        assert!(!rerouted.is_rejected());
        assert_eq!(rerouted.final_outcome(), &done);
        let shed = Outcome::Rerouted {
            from_shard: 1,
            to_shard: 0,
            outcome: Box::new(Outcome::Rejected(Rejected::QueueFull)),
        };
        assert!(shed.is_rejected() && !shed.is_completed());
    }

    #[test]
    fn outcome_predicates() {
        let c = Outcome::Completed {
            start_ns: 0.0,
            finish_ns: 1.0,
            deadline_ns: 2.0,
            deadline_slack_ns: 1.0,
            faults: 0,
            pim_fallbacks: 0,
            breaker_skips: 0,
        };
        assert!(c.is_completed() && !c.is_rejected());
        let r = Outcome::Rejected(Rejected::QueueFull);
        assert!(!r.is_completed() && r.is_rejected());
        let m = Outcome::DeadlineMiss {
            start_ns: 0.0,
            finish_ns: 3.0,
            deadline_ns: 2.0,
        };
        assert!(!m.is_completed());
        let cancelled = Outcome::Cancelled {
            start_ns: 0.0,
            consumed_ns: 1.5,
            segments_done: 3,
        };
        assert!(!cancelled.is_completed() && !cancelled.is_rejected());
        let bad = Outcome::IntegrityFailure {
            start_ns: 0.0,
            finish_ns: 1.0,
        };
        assert!(!bad.is_completed(), "a corrupted result is never a success");
    }

    #[test]
    fn batched_predicates_look_through_the_wrapper() {
        let done = Outcome::Completed {
            start_ns: 0.0,
            finish_ns: 1.0,
            deadline_ns: 2.0,
            deadline_slack_ns: 1.0,
            faults: 0,
            pim_fallbacks: 0,
            breaker_skips: 0,
        };
        let batched = Outcome::Batched {
            evk_bytes_saved: 4096,
            reordered: false,
            outcome: Box::new(done.clone()),
        };
        assert!(batched.is_completed());
        assert_eq!(batched.final_outcome(), &done);
        // A batch member that still missed its deadline unwraps to the miss.
        let missed = Outcome::Batched {
            evk_bytes_saved: 4096,
            reordered: true,
            outcome: Box::new(Outcome::DeadlineMiss {
                start_ns: 0.0,
                finish_ns: 9.0,
                deadline_ns: 5.0,
            }),
        };
        assert!(!missed.is_completed());
    }

    #[test]
    fn hedged_predicates_look_through_the_wrapper() {
        let done = Outcome::Completed {
            start_ns: 2.0,
            finish_ns: 3.0,
            deadline_ns: 5.0,
            deadline_slack_ns: 2.0,
            faults: 0,
            pim_fallbacks: 0,
            breaker_skips: 0,
        };
        let hedged = Outcome::Hedged {
            winner: 1,
            loser_consumed_ns: 4.0,
            outcome: Box::new(done.clone()),
        };
        assert!(hedged.is_completed());
        assert_eq!(hedged.final_outcome(), &done);
        // A hedge that still lost to the clock unwraps to the miss.
        let missed = Outcome::Hedged {
            winner: 0,
            loser_consumed_ns: 1.0,
            outcome: Box::new(Outcome::DeadlineMiss {
                start_ns: 0.0,
                finish_ns: 9.0,
                deadline_ns: 5.0,
            }),
        };
        assert!(!missed.is_completed());
    }
}
