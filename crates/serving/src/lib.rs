//! `serving` — the deadline-aware serving layer on top of the Anaheim
//! runtime (see `DESIGN.md`, "Serving & degradation").
//!
//! The paper's framework executes one FHE program at a time; this crate
//! adds the layer a deployment needs around it:
//!
//! - [`request`] — multi-tenant requests with priorities and deadlines,
//!   typed admission rejections, and honest outcomes (late execution is a
//!   [`request::Outcome::DeadlineMiss`], never a success).
//! - [`queue`] — a bounded, `Mutex`-guarded admission queue (std threads
//!   only, no async runtime) with deterministic pop order.
//! - [`engine`] — parallel request preparation (vendored `parpool`),
//!   serial virtual-time dispatch through the breaker-gated scheduler
//!   ([`anaheim_core::schedule::Scheduler::run_with_health`]), and a
//!   persistent [`anaheim_core::health::HealthRegistry`].
//! - [`router`] — seeded rendezvous hashing from tenants to replica
//!   shards: stable homes, minimal movement on failover.
//! - [`shard`] — replica shards with deterministic failover: each shard
//!   owns its own engine, breaker set, and lanes; sick shards drain, cool
//!   down, and re-admit through a probe while the router re-routes their
//!   tenants ([`request::Outcome::Rerouted`]) — and only a fully sick
//!   fleet rejects ([`request::Rejected::AllShardsUnhealthy`]).
//! - [`soak`] — the deterministic chaos-soak harness: seeded mixed-workload
//!   traces under seeded fault schedules, with machine-checked invariants
//!   and bit-identical results across `ANAHEIM_THREADS`. Streaming mode
//!   pushes a million requests through the sharded fleet in bounded
//!   memory.

pub mod engine;
pub mod queue;
pub mod request;
pub mod router;
pub mod shard;
pub mod soak;

pub use engine::{BatchStats, OrderingConfig, ServingConfig, ServingEngine};
pub use queue::{AdmissionQueue, QueueKey, Queued};
pub use request::{Outcome, Priority, Rejected, Request, Response};
pub use router::ShardRouter;
pub use shard::{
    FleetCounters, ShardConfig, ShardCounters, ShardSnapshot, ShardState, ShardTransition,
    ShardedEngine, StreamObs,
};
pub use soak::{
    build_trace, check_invariants, run_soak, run_soak_stream, shard_config_for, SoakConfig,
    SoakOutcome, SoakSummary, StreamOutcome, StreamSummary, TraceGen,
};
