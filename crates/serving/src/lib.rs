//! `serving` — the deadline-aware serving layer on top of the Anaheim
//! runtime (see `DESIGN.md`, "Serving & degradation").
//!
//! The paper's framework executes one FHE program at a time; this crate
//! adds the layer a deployment needs around it:
//!
//! - [`request`] — multi-tenant requests with priorities and deadlines,
//!   typed admission rejections, and honest outcomes (late execution is a
//!   [`request::Outcome::DeadlineMiss`], never a success).
//! - [`queue`] — a bounded, `Mutex`-guarded admission queue (std threads
//!   only, no async runtime) with deterministic pop order.
//! - [`engine`] — parallel request preparation (vendored `parpool`),
//!   serial virtual-time dispatch through the breaker-gated scheduler
//!   ([`anaheim_core::schedule::Scheduler::run_with_health`]), and a
//!   persistent [`anaheim_core::health::HealthRegistry`].
//! - [`soak`] — the deterministic chaos-soak harness: seeded mixed-workload
//!   traces under seeded fault schedules, with machine-checked invariants
//!   and bit-identical results across `ANAHEIM_THREADS`.

pub mod engine;
pub mod queue;
pub mod request;
pub mod soak;

pub use engine::{ServingConfig, ServingEngine};
pub use queue::{AdmissionQueue, QueueKey, Queued};
pub use request::{Outcome, Priority, Rejected, Request, Response};
pub use soak::{build_trace, check_invariants, run_soak, SoakConfig, SoakOutcome, SoakSummary};
