//! Replica shards with deterministic failover.
//!
//! One [`ServingEngine`] models a single PIM fleet with one shared health
//! registry: a fault storm that opens enough breakers degrades *every*
//! tenant. A [`ShardedEngine`] partitions the fleet into N replica shards
//! — each owning its own engine (whole PIM stack),
//! [`HealthRegistry`](anaheim_core::health::HealthRegistry)
//! breaker set, admission queue, and virtual-time lane cursor — behind a
//! seeded rendezvous [`ShardRouter`]. Blast radius becomes per-shard: when
//! a shard's breakers trip past [`ShardConfig::unhealthy_open_fraction`],
//! it stops accepting, drains its in-flight work, cools down, and is
//! re-admitted through a HalfOpen-style probe, while the router sends its
//! tenants to the next-ranked healthy replica with typed
//! [`Outcome::Rerouted`] accounting. Only when *no* shard accepts does a
//! request fail, with [`Rejected::AllShardsUnhealthy`].
//!
//! With [`ShardConfig::hedging`] enabled, the fleet also re-executes
//! suspicious primaries: a dispatch whose projected deadline margin is
//! thin, a run cancelled over budget, or one whose end-to-end integrity
//! verdict fails is raced/re-run on the tenant's rendezvous-next sibling
//! shard (per-tenant token bucket guarding against hedge storms), and the
//! better execution is reported as [`Outcome::Hedged`] — exactly one
//! outcome per request, with the loser's virtual time accounted as waste.
//!
//! The shard state machine mirrors the per-bank breaker one level up:
//!
//! ```text
//! Up --breaker-threshold--> Draining --drained--> Cooling
//!  ^                                                 | cooldown elapsed
//!  +--probe-ok-- Probation <-------------------------+
//!        (probe-fail: back to Cooling, cooldown doubled up to a cap)
//! ```
//!
//! Everything stays on the serial virtual-time path: shards advance in id
//! order to each arrival, routing reads only (seed, tenant, accepting
//! set), and telemetry records from the dispatch lane — so responses,
//! per-shard [`HealthSnapshot`]s, and the rendered snapshot text are
//! byte-identical for every `ANAHEIM_THREADS` value. Preparation (the
//! only parallel stage) is deduplicated by template identity, which is
//! what lets [`ShardedEngine::run_stream`] push a million requests
//! through in bounded memory when paired with a
//! [`StreamingTraceSink`].

use std::fmt;
use std::fmt::Write as _;
use std::path::PathBuf;

use anaheim_core::health::{BreakerState, HealthSnapshot};
use anaheim_core::telemetry::{names, shard_track, Telemetry};
use anaheim_core::RunError;
use obs::StreamingTraceSink;

use crate::engine::{prepare_batch, BatchStats, Prepared, ServingConfig, ServingEngine};
use crate::queue::AdmissionQueue;
use crate::request::{Outcome, Rejected, Request, Response};
use crate::router::ShardRouter;

/// Tuning of the shard layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardConfig {
    /// Number of replica shards (at least one).
    pub shards: u32,
    /// Seed of the rendezvous router.
    pub router_seed: u64,
    /// A shard whose registry's [`open_fraction`] reaches this value stops
    /// accepting and drains (and a probe returning at or above it fails).
    ///
    /// [`open_fraction`]: anaheim_core::health::HealthRegistry::open_fraction
    pub unhealthy_open_fraction: f64,
    /// Cooldown between finishing a drain and the re-admission probe
    /// (virtual ns). Doubles after each failed probe.
    pub drain_cooldown_ns: f64,
    /// Cooldown growth factor after a failed probe.
    pub cooldown_multiplier: f64,
    /// Upper bound on the shard cooldown (ns).
    pub max_cooldown_ns: f64,
    /// Hedged re-execution: when a primary looks risky at dispatch
    /// (projected deadline margin below [`hedge_slack_fraction`] of its
    /// estimate) or fails mid-flight (cancelled over budget, or its
    /// end-to-end integrity verdict fails), re-run it deterministically on
    /// the rendezvous-next sibling shard and keep the better outcome.
    /// Off by default: a fleet without hedging is bit-identical to one
    /// built before the knob existed.
    ///
    /// [`hedge_slack_fraction`]: ShardConfig::hedge_slack_fraction
    pub hedging: bool,
    /// A primary whose projected margin `deadline - (start + estimate)` is
    /// below this fraction of its estimate is hedged at dispatch.
    pub hedge_slack_fraction: f64,
    /// Per-tenant token-bucket burst: how many hedges a tenant may launch
    /// back-to-back before the refill rate gates it (hedge-storm guard).
    pub hedge_burst: f64,
    /// Per-tenant token refill rate, in hedges per virtual second.
    pub hedge_refill_per_s: f64,
}

impl ShardConfig {
    /// `shards` replicas with the default failover tuning: drain at half
    /// the breakers open, 8 ms drain cooldown doubling to a 128 ms cap.
    /// Hedging is off.
    pub fn new(shards: u32) -> Self {
        Self {
            shards: shards.max(1),
            router_seed: 0x5AAD_0001,
            unhealthy_open_fraction: 0.5,
            drain_cooldown_ns: 8.0e6,
            cooldown_multiplier: 2.0,
            max_cooldown_ns: 1.28e8,
            hedging: false,
            hedge_slack_fraction: 0.25,
            hedge_burst: 4.0,
            hedge_refill_per_s: 200.0,
        }
    }
}

/// Salt folded into a hedged request's fault-stream derivation, so the
/// hedge replays under its own independent (but still per-request
/// deterministic) fault environment instead of re-hitting the primary's
/// exact fault sequence.
const HEDGE_SALT: u64 = 0x4ED6_E5A1_0F0C_9B3D;

/// Shard lifecycle states (the breaker cycle, one level up).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardState {
    /// Healthy and accepting.
    Up,
    /// Past the breaker threshold: not accepting, finishing queued work.
    Draining,
    /// Drained and waiting out its cooldown.
    Cooling,
    /// Accepting exactly one probe request to test re-admission.
    Probation,
}

impl ShardState {
    /// Numeric code for the `anaheim_shard_state` gauge.
    pub fn code(&self) -> u8 {
        match self {
            ShardState::Up => 0,
            ShardState::Draining => 1,
            ShardState::Cooling => 2,
            ShardState::Probation => 3,
        }
    }
}

impl fmt::Display for ShardState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ShardState::Up => "up",
            ShardState::Draining => "draining",
            ShardState::Cooling => "cooling",
            ShardState::Probation => "probation",
        })
    }
}

/// Monotone per-shard lifecycle counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardCounters {
    /// Requests this shard served for another shard's tenants.
    pub rerouted_in: u64,
    /// Up → Draining transitions.
    pub drains: u64,
    /// Successful probes (Probation → Up).
    pub readmits: u64,
    /// Failed probes (Probation → Cooling).
    pub probe_failures: u64,
}

/// One shard state change, for the per-shard transition log.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardTransition {
    /// The shard.
    pub shard: u32,
    /// State before.
    pub from: ShardState,
    /// State after.
    pub to: ShardState,
    /// Virtual time of the transition (ns).
    pub at_ns: f64,
    /// `"breaker-threshold"`, `"drained"`, `"cooldown"`, `"probe-ok"`, or
    /// `"probe-fail"`.
    pub cause: &'static str,
}

/// Comparable view of one shard — what the thread-count determinism gate
/// diffs, via [`ShardedEngine::render_snapshots`].
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSnapshot {
    /// The shard.
    pub shard: u32,
    /// Current lifecycle state.
    pub state: ShardState,
    /// Lifecycle counters.
    pub counters: ShardCounters,
    /// The shard's own health registry snapshot.
    pub health: HealthSnapshot,
    /// The full shard transition log.
    pub transitions: Vec<ShardTransition>,
    /// Finish time of the shard's busiest lane (ns).
    pub last_finish_ns: f64,
    /// Same-tenant batch evk accounting (all zeros with
    /// [`ServingConfig::batching`] off).
    pub evk: BatchStats,
    /// Virtual ns the evk lane credit took off this shard's lanes (0.0
    /// with [`ServingConfig::ordering`] off).
    pub evk_saved_ns: f64,
}

/// Fleet-level routing counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetCounters {
    /// Requests submitted to the fleet.
    pub submitted: u64,
    /// Requests routed away from a non-accepting home shard.
    pub rerouted: u64,
    /// Requests rejected because no shard was accepting.
    pub rejected_all_unhealthy: u64,
    /// Hedges actually executed on a sibling shard. Each adds one to the
    /// sibling's `submitted` health counter, so per-shard conservation
    /// reads `executions = fleet submissions + hedges_launched`.
    pub hedges_launched: u64,
    /// Hedges whose execution beat the primary (better outcome, or the
    /// same outcome class finishing strictly earlier).
    pub hedges_won: u64,
    /// Hedges the primary still beat — the hedge's virtual time was
    /// wasted work, accounted in [`Outcome::Hedged::loser_consumed_ns`].
    pub hedges_wasted: u64,
    /// Hedge triggers suppressed by the per-tenant token bucket or for
    /// lack of an accepting sibling; the primary outcome stands.
    pub hedges_suppressed: u64,
}

/// A primary execution held back for hedge resolution: the fleet decides
/// whether to re-run it on the rendezvous-next sibling, then emits exactly
/// one response for the request.
#[derive(Debug)]
struct HedgeCandidate {
    /// Clone of the prepared request (Arc-backed, so cheap) for the hedge
    /// execution.
    prepared: Prepared,
    rerouted_from: Option<u32>,
    primary_shard: u32,
    /// The primary's unwrapped response.
    primary_resp: Response,
    primary_start_ns: f64,
    primary_finish_ns: f64,
    /// When the hedge may start: the primary's dispatch time for a risky
    /// projection (the hedge races it), its finish time for a mid-flight
    /// failure (nothing suspected it earlier).
    trigger_ns: f64,
}

/// Severity rank for hedge-winner selection — lower is better; ties break
/// to the primary (and, within a rank, to the strictly earlier finish).
fn outcome_rank(o: &Outcome) -> u8 {
    match o.final_outcome() {
        Outcome::Completed { .. } => 0,
        Outcome::DeadlineMiss { .. } => 1,
        Outcome::Cancelled { .. } => 2,
        Outcome::IntegrityFailure { .. } => 3,
        // `final_outcome` never returns a wrapper, and executions are
        // never sheds; rank them last for exhaustiveness.
        Outcome::Rejected(_)
        | Outcome::Rerouted { .. }
        | Outcome::Hedged { .. }
        | Outcome::Batched { .. } => 4,
    }
}

/// Wraps a winning execution's response in [`Outcome::Hedged`].
fn hedged(winner: u32, loser_consumed_ns: f64, resp: Response) -> Response {
    let Response {
        id,
        tenant,
        priority,
        label,
        outcome,
    } = resp;
    Response {
        id,
        tenant,
        priority,
        label,
        outcome: Outcome::Hedged {
            winner,
            loser_consumed_ns,
            outcome: Box::new(outcome),
        },
    }
}

/// Streaming observability for [`ShardedEngine::run_stream`]: completed
/// spans drain into a bounded sink after every request, and the Prometheus
/// text can be re-written to a file on a fixed cadence — both keep memory
/// constant over arbitrarily long runs.
#[derive(Debug)]
pub struct StreamObs<'a> {
    tel: &'a mut Telemetry,
    sink: &'a mut StreamingTraceSink,
    prom_path: Option<PathBuf>,
    prom_every: u64,
    prom_io_error: Option<std::io::Error>,
    ticks: u64,
}

impl<'a> StreamObs<'a> {
    /// Streams `tel`'s completed spans into `sink` after every request.
    pub fn new(tel: &'a mut Telemetry, sink: &'a mut StreamingTraceSink) -> Self {
        Self {
            tel,
            sink,
            prom_path: None,
            prom_every: 0,
            prom_io_error: None,
            ticks: 0,
        }
    }

    /// Additionally rewrites the Prometheus exposition to `path` every
    /// `every` requests (0 disables). IO errors are latched, not fatal —
    /// the virtual-time run never depends on filesystem state.
    pub fn with_prometheus(mut self, path: PathBuf, every: u64) -> Self {
        self.prom_path = Some(path);
        self.prom_every = every;
        self
    }

    /// The first error hit writing the Prometheus file, if any.
    pub fn prom_io_error(&self) -> Option<&std::io::Error> {
        self.prom_io_error.as_ref()
    }

    fn after_request(&mut self) {
        self.sink.drain_from(&mut self.tel.trace);
        self.ticks += 1;
        if self.prom_every > 0 && self.ticks.is_multiple_of(self.prom_every) {
            if let (Some(path), None) = (&self.prom_path, &self.prom_io_error) {
                if let Err(e) = std::fs::write(path, self.tel.prometheus()) {
                    self.prom_io_error = Some(e);
                }
            }
        }
    }
}

/// One replica shard: an engine (runtime + registry), its queue, its
/// lanes, and its lifecycle state.
#[derive(Debug)]
struct Shard {
    id: u32,
    engine: ServingEngine,
    queue: AdmissionQueue<Prepared>,
    lanes: Vec<f64>,
    state: ShardState,
    /// When a Cooling shard may enter Probation (ns).
    readmit_at_ns: f64,
    /// Cooldown the next drain/failed probe will use.
    next_cooldown_ns: f64,
    /// A probe request is queued or running; Probation admits no more.
    probe_inflight: bool,
    counters: ShardCounters,
    transitions: Vec<ShardTransition>,
}

impl Shard {
    fn new(id: u32, cfg: ServingConfig, shard_cfg: &ShardConfig) -> Self {
        let engine = ServingEngine::new(cfg);
        let lanes = vec![0.0; engine.workers()];
        let queue = AdmissionQueue::new(engine.queue_capacity());
        Self {
            id,
            engine,
            queue,
            lanes,
            state: ShardState::Up,
            readmit_at_ns: 0.0,
            next_cooldown_ns: shard_cfg.drain_cooldown_ns,
            probe_inflight: false,
            counters: ShardCounters::default(),
            transitions: Vec::new(),
        }
    }

    /// Records a state change: the log entry plus a zero-width marker span
    /// on this shard's track.
    fn transition(
        &mut self,
        to: ShardState,
        at_ns: f64,
        cause: &'static str,
        tel: Option<&mut Telemetry>,
    ) {
        let from = self.state;
        self.state = to;
        self.transitions.push(ShardTransition {
            shard: self.id,
            from,
            to,
            at_ns,
            cause,
        });
        if let Some(t) = tel {
            t.set_base_ns(0.0);
            t.trace.leaf(
                format!("shard{} {from}\u{2192}{to}", self.id),
                "shard",
                shard_track(self.id),
                at_ns,
                at_ns,
                vec![("cause", cause.into())],
            );
        }
    }

    /// Advances the lifecycle clock to `now` (Cooling → Probation when the
    /// cooldown has elapsed) and reports whether the shard accepts a new
    /// request at `now`.
    fn poll_accepting(&mut self, now: f64, tel: Option<&mut Telemetry>) -> bool {
        if self.state == ShardState::Cooling && now >= self.readmit_at_ns {
            let at = self.readmit_at_ns;
            self.probe_inflight = false;
            self.transition(ShardState::Probation, at, "cooldown", tel);
        }
        match self.state {
            ShardState::Up => true,
            ShardState::Probation => !self.probe_inflight,
            ShardState::Draining | ShardState::Cooling => false,
        }
    }

    /// Wraps an outcome in [`Outcome::Rerouted`] when the request was sent
    /// here from another home shard.
    fn wrap(rerouted_from: Option<u32>, to_shard: u32, mut resp: Response) -> Response {
        if let Some(from_shard) = rerouted_from {
            resp.outcome = Outcome::Rerouted {
                from_shard,
                to_shard,
                outcome: Box::new(resp.outcome),
            };
        }
        resp
    }

    /// Admission (serial, virtual time): the same queue-full / infeasible
    /// discipline as the unsharded engine, against this shard's queue and
    /// lanes. A request admitted while on Probation is the shard's probe.
    fn admit(
        &mut self,
        p: Prepared,
        now: f64,
        mut tel: Option<&mut Telemetry>,
        out: &mut Vec<Response>,
    ) {
        self.engine.registry_mut().counters.submitted += 1;
        let track = shard_track(self.id);
        if self.queue.len() >= self.engine.queue_capacity() {
            self.engine.registry_mut().counters.shed_queue_full += 1;
            ServingEngine::shed_marker(tel.as_deref_mut(), &p, "queue-full", track);
            out.push(Self::wrap(
                p.rerouted_from,
                self.id,
                ServingEngine::rejection(&p, Rejected::QueueFull),
            ));
            return;
        }
        let projected = ServingEngine::projected_start_ns(&self.lanes, &self.queue, &p, now);
        if projected + p.estimate_ns > p.deadline_ns {
            self.engine.registry_mut().counters.shed_infeasible += 1;
            ServingEngine::shed_marker(tel, &p, "deadline-infeasible", track);
            out.push(Self::wrap(
                p.rerouted_from,
                self.id,
                ServingEngine::rejection(&p, Rejected::DeadlineInfeasible),
            ));
            return;
        }
        let probe = self.state == ShardState::Probation;
        // The projected deadline headroom is the slack budget batch-aware
        // ordering may later spend delaying this request.
        let mut p = p;
        p.slack_ns = (p.deadline_ns - projected - p.estimate_ns).max(0.0);
        let depth = self.queue.submit(p).expect("capacity checked above");
        self.engine.registry_mut().note_queue_depth(depth);
        if probe {
            self.probe_inflight = true;
        }
    }

    /// Dispatches queued work while something can start at or before
    /// `until_ns`, evaluating the lifecycle after every execution: Up
    /// drains past the breaker threshold; a probe's result decides
    /// re-admission; a Draining shard whose queue empties starts cooling.
    ///
    /// With `hedges` present (fleet-level hedging enabled), executions that
    /// look risky at dispatch or fail mid-flight are held back as
    /// [`HedgeCandidate`]s instead of being pushed to `out`; the fleet
    /// resolves them — exactly one response per request either way.
    fn advance_to(
        &mut self,
        until_ns: f64,
        cfg: &ShardConfig,
        mut tel: Option<&mut Telemetry>,
        out: &mut Vec<Response>,
        mut hedges: Option<&mut Vec<HedgeCandidate>>,
    ) -> Result<(), RunError> {
        while let Some((lane, start, p, reordered)) =
            self.engine
                .select_dispatch(&self.queue, &self.lanes, until_ns)
        {
            let rerouted_from = p.rerouted_from;
            let was_probe = self.probe_inflight && self.state == ShardState::Probation;
            // Risk is projected at dispatch, before execution: a primary
            // with little deadline margin races its hedge from the start.
            let hedge_probe = hedges.as_ref().map(|_| {
                let margin = p.deadline_ns - (start + p.estimate_ns);
                (margin < cfg.hedge_slack_fraction * p.estimate_ns, p.clone())
            });
            // A batch is a maximal run of consecutive same-tenant
            // dispatches on THIS shard's serial lane — it never crosses a
            // shard, because each shard owns its own tracker.
            let saved = self.engine.note_batch_dispatch(
                p.tenant,
                p.seq.evk_read_bytes(),
                tel.as_deref_mut(),
            );
            let credit_ns = self.engine.lane_credit_ns(saved);
            let (mut resp, finish) = self.engine.execute(
                p,
                start,
                credit_ns,
                tel.as_deref_mut(),
                shard_track(self.id),
            )?;
            self.lanes[lane] = finish;
            if saved > 0 {
                resp.outcome = Outcome::Batched {
                    evk_bytes_saved: saved,
                    reordered,
                    outcome: Box::new(resp.outcome),
                };
            }
            match hedge_probe {
                Some((risky, prepared)) => {
                    let failed = matches!(
                        resp.outcome,
                        Outcome::Cancelled { .. } | Outcome::IntegrityFailure { .. }
                    );
                    if risky || failed {
                        hedges
                            .as_deref_mut()
                            .expect("hedge_probe implies hedges")
                            .push(HedgeCandidate {
                                prepared,
                                rerouted_from,
                                primary_shard: self.id,
                                primary_resp: resp,
                                primary_start_ns: start,
                                primary_finish_ns: finish,
                                trigger_ns: if risky { start } else { finish },
                            });
                    } else {
                        out.push(Self::wrap(rerouted_from, self.id, resp));
                    }
                }
                None => out.push(Self::wrap(rerouted_from, self.id, resp)),
            }
            let frac = self.engine.registry().open_fraction();
            match self.state {
                ShardState::Up if frac >= cfg.unhealthy_open_fraction => {
                    self.counters.drains += 1;
                    self.transition(
                        ShardState::Draining,
                        finish,
                        "breaker-threshold",
                        tel.as_deref_mut(),
                    );
                }
                ShardState::Probation if was_probe => {
                    self.probe_inflight = false;
                    if frac < cfg.unhealthy_open_fraction {
                        self.counters.readmits += 1;
                        self.next_cooldown_ns = cfg.drain_cooldown_ns;
                        self.transition(ShardState::Up, finish, "probe-ok", tel.as_deref_mut());
                    } else {
                        self.counters.probe_failures += 1;
                        self.readmit_at_ns = finish + self.next_cooldown_ns;
                        self.next_cooldown_ns = (self.next_cooldown_ns * cfg.cooldown_multiplier)
                            .min(cfg.max_cooldown_ns);
                        self.transition(
                            ShardState::Cooling,
                            finish,
                            "probe-fail",
                            tel.as_deref_mut(),
                        );
                    }
                }
                _ => {}
            }
        }
        if self.state == ShardState::Draining && self.queue.is_empty() {
            // In-flight work executes synchronously at dispatch, so an
            // empty queue means the drain is complete; the drain ends when
            // the busiest lane goes idle.
            let drained_at = self.lanes.iter().copied().fold(0.0, f64::max);
            self.readmit_at_ns = drained_at + self.next_cooldown_ns;
            self.transition(ShardState::Cooling, drained_at, "drained", tel);
        }
        Ok(())
    }

    fn snapshot(&self) -> ShardSnapshot {
        ShardSnapshot {
            shard: self.id,
            state: self.state,
            counters: self.counters,
            health: self.engine.snapshot(),
            transitions: self.transitions.clone(),
            last_finish_ns: self.lanes.iter().copied().fold(0.0, f64::max),
            evk: self.engine.evk_stats(),
            evk_saved_ns: self.engine.evk_saved_ns(),
        }
    }
}

/// N replica shards behind a rendezvous router, with drain/probe failover
/// and (opt-in) hedged re-execution.
#[derive(Debug)]
pub struct ShardedEngine {
    shards: Vec<Shard>,
    router: ShardRouter,
    cfg: ShardConfig,
    /// Same-tenant batching is on ([`ServingConfig::batching`]): the
    /// snapshot text carries the per-shard evk lines.
    batching: bool,
    /// Batch-aware ordering is on ([`ServingConfig::ordering`]): the evk
    /// snapshot lines additionally carry the reorder/credit ledger.
    ordering: bool,
    fleet: FleetCounters,
    /// Per-tenant hedge token buckets: `(tokens, last_refill_ns)` in
    /// virtual time. A `BTreeMap` so iteration/debug order is stable.
    hedge_tokens: std::collections::BTreeMap<u32, (f64, f64)>,
}

/// Reborrows the telemetry inside an optional [`StreamObs`].
fn tel_of<'x>(obs: &'x mut Option<&mut StreamObs<'_>>) -> Option<&'x mut Telemetry> {
    obs.as_mut().map(|o| &mut *o.tel)
}

impl ShardedEngine {
    /// `shard_cfg.shards` replicas, each built from its own copy of
    /// `serving` (same platform, its own registry and lanes).
    pub fn new(serving: ServingConfig, shard_cfg: ShardConfig) -> Self {
        let batching = serving.batching;
        let ordering = serving.ordering.is_some();
        let shards = (0..shard_cfg.shards.max(1))
            .map(|id| Shard::new(id, serving.clone(), &shard_cfg))
            .collect();
        Self {
            shards,
            router: ShardRouter::new(shard_cfg.router_seed, shard_cfg.shards.max(1)),
            cfg: shard_cfg,
            batching,
            ordering,
            fleet: FleetCounters::default(),
            hedge_tokens: std::collections::BTreeMap::new(),
        }
    }

    /// The tenant router.
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// Fleet-level routing counters.
    pub fn fleet(&self) -> FleetCounters {
        self.fleet
    }

    /// The shard configuration in force.
    pub fn config(&self) -> &ShardConfig {
        &self.cfg
    }

    /// Serves a stream of requests in bounded memory, invoking
    /// `on_response` for every response as it is produced (execution
    /// order — deterministic, but not sorted by id; a million-request run
    /// cannot buffer and sort). Requests must arrive in nondecreasing
    /// `(arrival_ns, id)` order, which every seeded trace generator
    /// guarantees.
    ///
    /// Preparation runs chunk-by-chunk, deduplicated by template identity;
    /// with `obs`, completed spans drain into the bounded sink after every
    /// request and the final fleet state is exported to the metrics
    /// registry.
    pub fn run_stream<I, F>(
        &mut self,
        requests: I,
        mut on_response: F,
        mut obs: Option<&mut StreamObs<'_>>,
    ) -> Result<(), RunError>
    where
        I: IntoIterator<Item = Request>,
        F: FnMut(&Response),
    {
        const CHUNK: usize = 1024;
        let mut it = requests.into_iter();
        let mut buf: Vec<Request> = Vec::with_capacity(CHUNK);
        let mut last_key = (f64::NEG_INFINITY, 0u64);
        let mut out: Vec<Response> = Vec::new();
        let mut hedges: Vec<HedgeCandidate> = Vec::new();
        loop {
            buf.clear();
            while buf.len() < CHUNK {
                match it.next() {
                    Some(r) => buf.push(r),
                    None => break,
                }
            }
            if buf.is_empty() {
                break;
            }
            let prepared = prepare_batch(self.shards[0].engine.runtime(), &buf)?;
            for p in prepared {
                assert!(
                    (p.arrival_ns, p.id) >= last_key,
                    "run_stream requires nondecreasing (arrival, id) order \
                     (request {} at {} after {:?})",
                    p.id,
                    p.arrival_ns,
                    last_key
                );
                last_key = (p.arrival_ns, p.id);
                self.step(p, &mut out, &mut hedges, obs.as_deref_mut())?;
                for r in out.drain(..) {
                    on_response(&r);
                }
                if let Some(o) = obs.as_deref_mut() {
                    o.after_request();
                }
            }
        }
        let hedging = self.cfg.hedging;
        for shard in &mut self.shards {
            let h = if hedging { Some(&mut hedges) } else { None };
            shard.advance_to(f64::INFINITY, &self.cfg, tel_of(&mut obs), &mut out, h)?;
            // End of stream: the shard's open same-tenant batch closes so
            // its size lands in the histogram and the stats.
            shard.engine.flush_batch(tel_of(&mut obs));
        }
        self.resolve_hedges(&mut hedges, &mut out, &mut obs)?;
        for r in out.drain(..) {
            on_response(&r);
        }
        if let Some(o) = obs {
            self.export_fleet(o.tel);
            o.after_request();
        }
        Ok(())
    }

    /// One serial step: advance every shard to the arrival, poll who is
    /// accepting, route, admit (or reject fleet-wide), and resolve any
    /// hedge candidates the advance produced.
    fn step(
        &mut self,
        mut p: Prepared,
        out: &mut Vec<Response>,
        hedges: &mut Vec<HedgeCandidate>,
        mut obs: Option<&mut StreamObs<'_>>,
    ) -> Result<(), RunError> {
        self.fleet.submitted += 1;
        let now = p.arrival_ns;
        let hedging = self.cfg.hedging;
        for shard in &mut self.shards {
            let h = if hedging { Some(&mut *hedges) } else { None };
            shard.advance_to(now, &self.cfg, tel_of(&mut obs), out, h)?;
        }
        self.resolve_hedges(hedges, out, &mut obs)?;
        let mut accepting = Vec::with_capacity(self.shards.len());
        for shard in &mut self.shards {
            accepting.push(shard.poll_accepting(now, tel_of(&mut obs)));
        }
        let home = self.router.home_shard(p.tenant);
        match self.router.route(p.tenant, &accepting) {
            None => {
                self.fleet.rejected_all_unhealthy += 1;
                ServingEngine::shed_marker(tel_of(&mut obs), &p, "all-shards-unhealthy", "serving");
                out.push(ServingEngine::rejection(&p, Rejected::AllShardsUnhealthy));
            }
            Some(sid) => {
                if sid != home {
                    self.fleet.rerouted += 1;
                    self.shards[sid as usize].counters.rerouted_in += 1;
                    p.rerouted_from = Some(home);
                }
                self.shards[sid as usize].admit(p, now, tel_of(&mut obs), out);
            }
        }
        Ok(())
    }

    /// Takes one hedge token from `tenant`'s bucket at virtual time `now`,
    /// refilling first. Deterministic: depends only on (config, tenant,
    /// the sequence of trigger times).
    fn take_hedge_token(&mut self, tenant: u32, now: f64) -> bool {
        let entry = self
            .hedge_tokens
            .entry(tenant)
            .or_insert((self.cfg.hedge_burst, now));
        let refilled = (entry.0 + (now - entry.1).max(0.0) * self.cfg.hedge_refill_per_s * 1e-9)
            .min(self.cfg.hedge_burst);
        *entry = (refilled, now);
        if refilled >= 1.0 {
            entry.0 = refilled - 1.0;
            true
        } else {
            false
        }
    }

    /// Resolves held-back hedge candidates, in collection order (shard
    /// order, then execution order — deterministic). Each either launches
    /// a hedge on the rendezvous-next accepting sibling (token permitting)
    /// and emits the better execution wrapped in [`Outcome::Hedged`], or
    /// is suppressed and emits the primary outcome unchanged. Exactly one
    /// response per candidate either way.
    fn resolve_hedges(
        &mut self,
        cands: &mut Vec<HedgeCandidate>,
        out: &mut Vec<Response>,
        obs: &mut Option<&mut StreamObs<'_>>,
    ) -> Result<(), RunError> {
        let cfg = self.cfg;
        for c in cands.drain(..) {
            let now = c.trigger_ns;
            // Hedge only onto fully-Up siblings: Probation is reserved for
            // the shard's own probe, Draining/Cooling take no new work.
            let accepting: Vec<bool> = self
                .shards
                .iter()
                .map(|s| s.state == ShardState::Up)
                .collect();
            let sibling = self
                .router
                .next_shard(c.prepared.tenant, c.primary_shard, &accepting);
            let sib = match sibling {
                Some(s) if self.take_hedge_token(c.prepared.tenant, now) => s,
                _ => {
                    self.fleet.hedges_suppressed += 1;
                    out.push(Shard::wrap(
                        c.rerouted_from,
                        c.primary_shard,
                        c.primary_resp,
                    ));
                    continue;
                }
            };
            self.fleet.hedges_launched += 1;
            let mut hp = c.prepared;
            hp.fault = hp.fault.map(|f| f.derive_stream(hp.id ^ HEDGE_SALT));
            let (hresp, hstart, hfinish) = {
                let shard = &mut self.shards[sib as usize];
                // The hedge is an extra execution, not an extra fleet
                // submission: count it into the sibling's registry so the
                // per-shard outcome/submission conservation keeps holding.
                shard.engine.registry_mut().counters.submitted += 1;
                let mut lane = 0;
                for l in 1..shard.lanes.len() {
                    if shard.lanes[l] < shard.lanes[lane] {
                        lane = l;
                    }
                }
                let start = shard.lanes[lane].max(now);
                // Hedges bypass dispatch and are never batch-accounted,
                // so they carry no evk lane credit.
                let (hresp, hfinish) =
                    shard
                        .engine
                        .execute(hp, start, 0.0, tel_of(obs), shard_track(sib))?;
                shard.lanes[lane] = hfinish;
                // A hedge that trips the sibling past the breaker
                // threshold drains it, same as a queued dispatch would.
                let frac = shard.engine.registry().open_fraction();
                if shard.state == ShardState::Up && frac >= cfg.unhealthy_open_fraction {
                    shard.counters.drains += 1;
                    shard.transition(
                        ShardState::Draining,
                        hfinish,
                        "breaker-threshold",
                        tel_of(obs),
                    );
                }
                (hresp, start, hfinish)
            };
            let hedge_wins = {
                let pr = outcome_rank(&c.primary_resp.outcome);
                let hr = outcome_rank(&hresp.outcome);
                hr < pr || (hr == pr && hfinish < c.primary_finish_ns)
            };
            let resp = if hedge_wins {
                self.fleet.hedges_won += 1;
                hedged(sib, c.primary_finish_ns - c.primary_start_ns, hresp)
            } else {
                self.fleet.hedges_wasted += 1;
                hedged(c.primary_shard, hfinish - hstart, c.primary_resp)
            };
            out.push(Shard::wrap(c.rerouted_from, c.primary_shard, resp));
        }
        Ok(())
    }

    /// Comparable snapshots of every shard, in shard order.
    pub fn snapshots(&self) -> Vec<ShardSnapshot> {
        self.shards.iter().map(Shard::snapshot).collect()
    }

    /// Renders the fleet state as deterministic text — the artifact the
    /// thread-count determinism gate byte-compares. Covers the fleet
    /// counters and, per shard: state, lifecycle counters, health
    /// counters, bank statuses, and the full shard transition log.
    pub fn render_snapshots(&self) -> String {
        let mut s = String::new();
        let f = &self.fleet;
        let _ = writeln!(
            s,
            "fleet: submitted={} rerouted={} all-shards-unhealthy={} \
             hedges-launched={} hedges-won={} hedges-wasted={} hedges-suppressed={}",
            f.submitted,
            f.rerouted,
            f.rejected_all_unhealthy,
            f.hedges_launched,
            f.hedges_won,
            f.hedges_wasted,
            f.hedges_suppressed
        );
        for snap in self.snapshots() {
            let c = snap.counters;
            let _ = writeln!(
                s,
                "shard {}: state={} rerouted-in={} drains={} readmits={} \
                 probe-failures={} last-finish-ns={}",
                snap.shard,
                snap.state,
                c.rerouted_in,
                c.drains,
                c.readmits,
                c.probe_failures,
                snap.last_finish_ns
            );
            let h = &snap.health.counters;
            let _ = writeln!(
                s,
                "  health: submitted={} completed={} deadline-misses={} \
                 cancelled={} integrity-failures={} \
                 shed-queue-full={} shed-infeasible={} faults={} retries={} \
                 fallbacks={} breaker-skips={} probes={} probe-failures={} \
                 max-queue-depth={}",
                h.submitted,
                h.completed,
                h.deadline_misses,
                h.cancelled_over_budget,
                h.integrity_failures,
                h.shed_queue_full,
                h.shed_infeasible,
                h.faults_detected,
                h.pim_retries,
                h.gpu_fallbacks,
                h.breaker_skips,
                h.probes,
                h.probe_failures,
                h.max_queue_depth
            );
            let _ = write!(s, "  banks:");
            for b in &snap.health.banks {
                let _ = write!(
                    s,
                    " {}={}{}(trips {})",
                    b.bank,
                    b.state,
                    if b.permanent { "!" } else { "" },
                    b.trips
                );
            }
            let _ = writeln!(s);
            // Gated on the batching knob so a non-batching fleet's text is
            // byte-identical to one rendered before the evk line existed.
            if self.batching {
                let e = snap.evk;
                let _ = writeln!(
                    s,
                    "  evk: hit-bytes={} miss-bytes={} saved-bytes={} \
                     batches={} max-batch={}",
                    e.hit_bytes,
                    e.miss_bytes,
                    e.saved_bytes(),
                    e.batches,
                    e.max_batch
                );
            }
            // Gated on the ordering knob the same way: a plain batching
            // fleet's text is byte-identical to the pre-ordering render.
            if self.ordering {
                let e = snap.evk;
                let _ = writeln!(
                    s,
                    "  ordering: reorders={} denied-slack={} saved-ns={:.0}",
                    e.reorders, e.reorder_denied_slack, snap.evk_saved_ns
                );
            }
            let _ = writeln!(s, "  breaker-transitions: {}", snap.health.transitions);
            for (i, t) in snap.transitions.iter().enumerate() {
                let _ = writeln!(
                    s,
                    "  [{i}] {}\u{2192}{} at {} cause={}",
                    t.from, t.to, t.at_ns, t.cause
                );
            }
        }
        s
    }

    /// Exports the fleet state into the metrics registry, idempotently:
    /// per-shard state/lifecycle counters, per-(shard, bank) breaker
    /// state, per-shard serving events, and the fleet routing counters.
    pub fn export_fleet(&self, tel: &mut Telemetry) {
        for shard in &self.shards {
            let sid = shard.id.to_string();
            tel.metrics.set_gauge(
                names::SHARD_STATE,
                &[("shard", &sid)],
                f64::from(shard.state.code()),
            );
            let c = shard.counters;
            for (event, v) in [
                ("rerouted-in", c.rerouted_in),
                ("drains", c.drains),
                ("readmits", c.readmits),
                ("probe-failures", c.probe_failures),
            ] {
                tel.metrics.set_counter(
                    names::SHARD_EVENTS,
                    &[("shard", &sid), ("event", event)],
                    v,
                );
            }
            let snap = shard.engine.snapshot();
            for b in &snap.banks {
                let bank = b.bank.to_string();
                let state = match b.state {
                    BreakerState::Closed => 0.0,
                    BreakerState::HalfOpen => 1.0,
                    BreakerState::Open => 2.0,
                };
                tel.metrics.set_gauge(
                    names::BANK_STATE,
                    &[("bank", &bank), ("shard", &sid)],
                    state,
                );
                tel.metrics.set_counter(
                    names::BANK_TRIPS,
                    &[("bank", &bank), ("shard", &sid)],
                    u64::from(b.trips),
                );
            }
            let h = &snap.counters;
            for (event, v) in [
                ("submitted", h.submitted),
                ("completed", h.completed),
                ("deadline-miss", h.deadline_misses),
                ("shed-queue-full", h.shed_queue_full),
                ("shed-infeasible", h.shed_infeasible),
            ] {
                tel.metrics.set_counter(
                    names::SERVING_EVENTS,
                    &[("event", event), ("shard", &sid)],
                    v,
                );
            }
            // Guarded like the registry-level exports: a clean fleet's
            // exposition stays exactly as it was before these existed.
            for (event, v) in [
                ("cancelled-over-budget", h.cancelled_over_budget),
                ("integrity-failure", h.integrity_failures),
            ] {
                if v > 0 {
                    tel.metrics.set_counter(
                        names::SERVING_EVENTS,
                        &[("event", event), ("shard", &sid)],
                        v,
                    );
                }
            }
            // Batch evk bytes, per shard; zero-guarded inside.
            shard.engine.export_evk(tel, Some(shard.id));
        }
        for (event, v) in [
            ("rerouted", self.fleet.rerouted),
            ("all-shards-unhealthy", self.fleet.rejected_all_unhealthy),
        ] {
            tel.metrics
                .set_counter(names::SERVING_EVENTS, &[("event", event)], v);
        }
        if self.cfg.hedging {
            for (result, v) in [
                ("launched", self.fleet.hedges_launched),
                ("won", self.fleet.hedges_won),
                ("wasted", self.fleet.hedges_wasted),
                ("suppressed", self.fleet.hedges_suppressed),
            ] {
                tel.metrics
                    .set_counter(names::HEDGES, &[("result", result)], v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use anaheim_core::build::{Builder, LinTransStyle};
    use anaheim_core::ir::OpSequence;
    use anaheim_core::params::ParamSet;
    use pim::fault::FaultPlan;

    use crate::request::Priority;

    fn small_tpl() -> Arc<OpSequence> {
        let mut b = Builder::new(ParamSet::paper_default());
        Arc::new(b.hadd(24))
    }

    fn wide_tpl() -> Arc<OpSequence> {
        let mut b = Builder::new(ParamSet::paper_default());
        Arc::new(b.lintrans(24, 4, LinTransStyle::Hoisting, true))
    }

    fn req(id: u64, tenant: u32, arrival: f64, seq: &Arc<OpSequence>) -> Request {
        Request {
            id,
            tenant,
            priority: Priority::Standard,
            arrival_ns: arrival,
            deadline_ns: 1e15,
            seq: Arc::clone(seq),
            fault: None,
            label: "shard-test",
        }
    }

    fn fleet(shards: u32, shard_cfg: ShardConfig) -> ShardedEngine {
        ShardedEngine::new(
            ServingConfig {
                workers: 2,
                queue_capacity: 4,
                ..ServingConfig::a100_default(7)
            },
            ShardConfig {
                shards,
                ..shard_cfg
            },
        )
    }

    fn collect(engine: &mut ShardedEngine, reqs: Vec<Request>) -> Vec<Response> {
        let mut got = Vec::new();
        engine
            .run_stream(reqs, |r| got.push(r.clone()), None)
            .unwrap();
        got
    }

    /// A tenant whose home is `shard` under the engine's router.
    fn tenant_on(engine: &ShardedEngine, shard: u32) -> u32 {
        (0..1024)
            .find(|&t| engine.router().home_shard(t) == shard)
            .expect("rendezvous covers every shard within 1024 tenants")
    }

    #[test]
    fn clean_fleet_serves_everyone_at_home() {
        let mut e = fleet(2, ShardConfig::new(2));
        let tpl = small_tpl();
        let reqs: Vec<Request> = (0..8)
            .map(|i| req(i, i as u32, i as f64 * 1e6, &tpl))
            .collect();
        let got = collect(&mut e, reqs);
        assert_eq!(got.len(), 8);
        assert!(got.iter().all(|r| r.outcome.is_completed()));
        assert!(got
            .iter()
            .all(|r| !matches!(r.outcome, Outcome::Rerouted { .. })));
        let f = e.fleet();
        assert_eq!(
            (f.submitted, f.rerouted, f.rejected_all_unhealthy),
            (8, 0, 0)
        );
        // Conservation: per-shard submissions sum to the fleet total.
        let per_shard: u64 = e
            .snapshots()
            .iter()
            .map(|s| s.health.counters.submitted)
            .sum();
        assert_eq!(per_shard, 8);
        assert!(e.snapshots().iter().all(|s| s.state == ShardState::Up));
    }

    #[test]
    fn stuck_shard_drains_and_reroutes_its_tenants() {
        let cfg = ShardConfig {
            // One permanently-open domain out of 8 crosses the threshold,
            // and the cooldown is long enough that no probe happens.
            unhealthy_open_fraction: 0.1,
            drain_cooldown_ns: 1e15,
            ..ShardConfig::new(2)
        };
        let mut e = fleet(2, cfg);
        let t0 = tenant_on(&e, 0);
        let t1 = tenant_on(&e, 1);
        let tpl = small_tpl();
        // The stuck lane is a hard MMAC fault, so the faulted request must
        // be one with PIM-offloaded kernels (lintrans, not hadd).
        let mut r0 = req(0, t0, 0.0, &wide_tpl());
        r0.fault = Some(FaultPlan::none().with_seed(5).with_stuck_lane(3));
        let reqs = vec![r0, req(1, t0, 1e9, &tpl), req(2, t1, 2e9, &tpl)];
        let got = collect(&mut e, reqs);
        assert_eq!(got.len(), 3);
        // The stuck request itself completes (GPU fallback absorbs it).
        assert!(got.iter().all(|r| r.outcome.is_completed()));
        let rerouted = got
            .iter()
            .find(|r| matches!(r.outcome, Outcome::Rerouted { .. }))
            .expect("home shard 0 was draining, its tenant must fail over");
        assert_eq!(rerouted.id, 1);
        match &rerouted.outcome {
            Outcome::Rerouted {
                from_shard,
                to_shard,
                outcome,
            } => {
                assert_eq!((*from_shard, *to_shard), (0, 1));
                assert!(matches!(**outcome, Outcome::Completed { .. }));
            }
            o => panic!("unexpected outcome {o:?}"),
        }
        let snaps = e.snapshots();
        assert_eq!(snaps[0].state, ShardState::Cooling, "drained, now cooling");
        assert_eq!(snaps[0].counters.drains, 1);
        assert_eq!(snaps[1].counters.rerouted_in, 1);
        assert_eq!(e.fleet().rerouted, 1);
        let causes: Vec<&str> = snaps[0].transitions.iter().map(|t| t.cause).collect();
        assert_eq!(causes, vec!["breaker-threshold", "drained"]);
        // Tenant 1's request never left home.
        assert!(got
            .iter()
            .filter(|r| r.id == 2)
            .all(|r| !matches!(r.outcome, Outcome::Rerouted { .. })));
    }

    #[test]
    fn single_shard_fleet_rejects_when_unhealthy() {
        let cfg = ShardConfig {
            unhealthy_open_fraction: 0.1,
            drain_cooldown_ns: 1e15,
            ..ShardConfig::new(1)
        };
        let mut e = fleet(1, cfg);
        let tpl = small_tpl();
        let mut r0 = req(0, 3, 0.0, &wide_tpl());
        r0.fault = Some(FaultPlan::none().with_seed(5).with_stuck_lane(3));
        let reqs = vec![r0, req(1, 3, 1e9, &tpl), req(2, 4, 2e9, &tpl)];
        let got = collect(&mut e, reqs);
        let rejected = got
            .iter()
            .filter(|r| r.outcome == Outcome::Rejected(Rejected::AllShardsUnhealthy))
            .count();
        assert_eq!(rejected, 2, "everything after the drain is rejected");
        assert_eq!(e.fleet().rejected_all_unhealthy, 2);
        // Conservation holds with fleet-level rejections included.
        let per_shard: u64 = e
            .snapshots()
            .iter()
            .map(|s| s.health.counters.submitted)
            .sum();
        assert_eq!(
            per_shard + e.fleet().rejected_all_unhealthy,
            e.fleet().submitted
        );
    }

    #[test]
    fn transient_storm_drains_then_probe_readmits() {
        let cfg = ShardConfig {
            unhealthy_open_fraction: 0.1,
            drain_cooldown_ns: 2e5,
            ..ShardConfig::new(1)
        };
        let mut e = fleet(1, cfg);
        let storm_tpl = wide_tpl();
        let tpl = small_tpl();
        // A storm request whose every PIM kernel fails transiently: enough
        // consecutive failures per domain to trip breakers past the
        // threshold, but nothing permanent.
        let mut storm = req(0, 9, 0.0, &storm_tpl);
        storm.fault = Some(FaultPlan::none().with_seed(11).with_bank_flips(1.0));
        // The probe (id 1) must itself touch every die group to close the
        // transiently-opened breakers, so it is a wide lintrans too.
        let reqs = vec![storm, req(1, 9, 1e9, &storm_tpl), req(2, 9, 2e9, &tpl)];
        let got = collect(&mut e, reqs);
        assert_eq!(got.len(), 3);
        let snap = &e.snapshots()[0];
        assert_eq!(snap.counters.drains, 1, "storm must drain the shard");
        assert_eq!(snap.counters.readmits, 1, "clean probe must readmit it");
        assert_eq!(snap.state, ShardState::Up);
        let causes: Vec<&str> = snap.transitions.iter().map(|t| t.cause).collect();
        assert_eq!(
            causes,
            vec!["breaker-threshold", "drained", "cooldown", "probe-ok"]
        );
        // The probe request (id 1) completed on its home shard, unwrapped.
        assert!(got.iter().all(|r| r.outcome.is_completed()));
        assert_eq!(e.fleet().rejected_all_unhealthy, 0);
    }

    /// A hedging fleet and a deterministic trace whose requests carry GPU
    /// transfer flips: at `flip_prob = 1.0` every primary fails its
    /// end-to-end integrity verdict, which is the deterministic
    /// (estimate-independent) hedge trigger; at small probabilities the
    /// primary and its hedge draw independent streams and can diverge.
    fn hedge_fleet(seed: u64, burst: f64, flip_prob: f64) -> (ShardedEngine, Vec<Request>) {
        let cfg = ShardConfig {
            hedging: true,
            hedge_burst: burst,
            hedge_refill_per_s: 1e6,
            ..ShardConfig::new(2)
        };
        let e = fleet(2, cfg);
        let tpl = wide_tpl();
        let reqs: Vec<Request> = (0..6)
            .map(|i| {
                let mut r = req(i, i as u32, i as f64 * 1e7, &tpl);
                r.fault = Some(
                    FaultPlan::none()
                        .with_seed(seed)
                        .with_gpu_transfer_flips(flip_prob),
                );
                r
            })
            .collect();
        (e, reqs)
    }

    #[test]
    fn hedged_requests_get_exactly_one_outcome_and_replay_identically() {
        let run = |seed| {
            let (mut e, reqs) = hedge_fleet(seed, 4.0, 1.0);
            let got = collect(&mut e, reqs);
            let executions: u64 = e
                .snapshots()
                .iter()
                .map(|s| s.health.counters.submitted)
                .sum();
            (e.fleet(), got, e.render_snapshots(), executions)
        };
        let (f, got, snap, executions) = run(3);
        assert_eq!(got.len(), 6, "exactly one response per request");
        let mut ids: Vec<u64> = got.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..6).collect::<Vec<_>>());
        assert!(f.hedges_launched > 0, "tight deadlines must trigger hedges");
        assert_eq!(
            f.hedges_won + f.hedges_wasted,
            f.hedges_launched,
            "every launched hedge is scored exactly once"
        );
        assert_eq!(
            executions,
            f.submitted + f.hedges_launched,
            "each hedge is one extra execution on the sibling's registry"
        );
        let (f2, got2, snap2, _) = run(3);
        assert_eq!(f, f2);
        assert_eq!(got, got2, "hedging replays byte-identically");
        assert_eq!(snap, snap2);
        assert!(snap.contains("hedges-launched="));
    }

    #[test]
    fn a_hedge_can_beat_a_fault_slowed_primary() {
        // The primary and its hedge draw independent fault streams
        // (HEDGE_SALT), so at a small flip probability some seed corrupts
        // the primary while its hedge stays clean — a rank-0 Completed
        // beating a rank-3 IntegrityFailure. Search a few seeds and pin
        // the first winner's shape.
        for seed in 0..64 {
            let (mut e, reqs) = hedge_fleet(seed, 4.0, 0.02);
            let got = collect(&mut e, reqs);
            if e.fleet().hedges_won == 0 {
                continue;
            }
            let h = got
                .iter()
                .find_map(|r| match &r.outcome {
                    Outcome::Hedged {
                        winner,
                        loser_consumed_ns,
                        outcome,
                    } => Some((*winner, *loser_consumed_ns, outcome.clone())),
                    Outcome::Rerouted { outcome, .. } => match outcome.as_ref() {
                        Outcome::Hedged {
                            winner,
                            loser_consumed_ns,
                            outcome,
                        } => Some((*winner, *loser_consumed_ns, outcome.clone())),
                        _ => None,
                    },
                    _ => None,
                })
                .expect("hedges_won > 0 implies a Hedged response");
            let (_winner, loser_consumed, _inner) = h;
            assert!(
                loser_consumed > 0.0,
                "the losing execution consumed real virtual time"
            );
            return;
        }
        panic!("no seed in 0..64 produced a hedge win");
    }

    #[test]
    fn hedges_are_suppressed_without_tokens_or_siblings() {
        // Zero burst: triggers fire but the bucket never grants a token.
        let (mut e, reqs) = hedge_fleet(3, 0.0, 1.0);
        let got = collect(&mut e, reqs);
        let f = e.fleet();
        assert_eq!(f.hedges_launched, 0);
        assert!(f.hedges_suppressed > 0, "failing primaries were throttled");
        assert!(
            got.iter().all(|r| matches!(
                r.outcome.final_outcome(),
                Outcome::IntegrityFailure { .. }
            ) && !matches!(r.outcome, Outcome::Hedged { .. })),
            "suppressed hedges emit the primary outcome unchanged"
        );
        // Single-shard fleet: a trigger has nowhere to go.
        let cfg = ShardConfig {
            hedging: true,
            ..ShardConfig::new(1)
        };
        let mut e1 = fleet(1, cfg);
        let tpl = wide_tpl();
        let mut r = req(0, 5, 0.0, &tpl);
        r.fault = Some(FaultPlan::none().with_seed(1).with_gpu_transfer_flips(1.0));
        let got1 = collect(&mut e1, vec![r]);
        assert_eq!(got1.len(), 1);
        assert_eq!(e1.fleet().hedges_launched, 0);
        assert_eq!(e1.fleet().hedges_suppressed, 1);
    }

    #[test]
    fn hedging_disabled_emits_no_hedge_accounting() {
        let mut e = fleet(2, ShardConfig::new(2));
        let tpl = wide_tpl();
        let mut r = req(0, 1, 0.0, &tpl);
        // Would trigger the failure path if hedging were on.
        r.fault = Some(FaultPlan::none().with_seed(1).with_gpu_transfer_flips(1.0));
        let got = collect(&mut e, vec![r]);
        assert_eq!(got.len(), 1);
        assert!(matches!(got[0].outcome, Outcome::IntegrityFailure { .. }));
        let f = e.fleet();
        assert_eq!(
            (
                f.hedges_launched,
                f.hedges_won,
                f.hedges_wasted,
                f.hedges_suppressed
            ),
            (0, 0, 0, 0)
        );
    }

    #[test]
    fn batched_fleet_amortizes_per_shard_and_renders_evk_lines() {
        let mk = |batching| {
            ShardedEngine::new(
                ServingConfig {
                    workers: 2,
                    queue_capacity: 8,
                    batching,
                    ..ServingConfig::a100_default(7)
                },
                ShardConfig::new(2),
            )
        };
        let mut e = mk(true);
        // Two tenants, one homed on each shard, each submitting a run of
        // back-to-back requests: every shard sees one maximal batch.
        let t0 = tenant_on(&e, 0);
        let t1 = tenant_on(&e, 1);
        let tpl = wide_tpl();
        let mut reqs = Vec::new();
        for i in 0..4u64 {
            reqs.push(req(i, t0, i as f64 * 1e3, &tpl));
        }
        for i in 4..8u64 {
            reqs.push(req(i, t1, 1e4 + i as f64 * 1e3, &tpl));
        }
        let got = collect(&mut e, reqs.clone());
        assert_eq!(got.len(), 8);
        assert!(got.iter().all(|r| r.outcome.is_completed()));
        let saved: u64 = got
            .iter()
            .map(|r| match r.outcome {
                Outcome::Batched {
                    evk_bytes_saved, ..
                } => evk_bytes_saved,
                _ => 0,
            })
            .sum();
        assert!(saved > 0, "same-tenant runs must amortize evk fetches");
        let snaps = e.snapshots();
        let hit: u64 = snaps.iter().map(|s| s.evk.hit_bytes).sum();
        let miss: u64 = snaps.iter().map(|s| s.evk.miss_bytes).sum();
        assert_eq!(saved, hit, "response accounting matches shard stats");
        // Conservation: each of the 8 dispatches charged exactly once, and
        // a batch never crosses a shard (each shard has its own heads).
        assert_eq!(hit + miss, 8 * miss / 2);
        assert!(snaps.iter().all(|s| s.evk.miss_bytes > 0));
        let text = e.render_snapshots();
        assert!(
            text.contains("evk: hit-bytes="),
            "batching fleet renders the evk line: {text}"
        );
        // The same trace with batching off: no wrapper, no evk line, and
        // the snapshot text has no trace of the feature.
        let mut off = mk(false);
        let got_off = collect(&mut off, reqs);
        assert!(got_off
            .iter()
            .all(|r| !matches!(r.outcome, Outcome::Batched { .. })));
        assert!(!off.render_snapshots().contains("evk:"));
    }

    #[test]
    fn streaming_run_matches_itself_and_exports_fleet_metrics() {
        let run = || {
            let mut e = fleet(2, ShardConfig::new(2));
            let tpl = small_tpl();
            let mut tel = Telemetry::new(7);
            let mut sink = StreamingTraceSink::new(32);
            let mut obs = StreamObs::new(&mut tel, &mut sink);
            let mut got = Vec::new();
            let reqs: Vec<Request> = (0..6)
                .map(|i| req(i, i as u32, i as f64 * 1e6, &tpl))
                .collect();
            e.run_stream(reqs, |r| got.push(r.clone()), Some(&mut obs))
                .unwrap();
            (e.render_snapshots(), tel.prometheus(), got, sink.accepted())
        };
        let (snap_a, prom_a, got_a, spans_a) = run();
        let (snap_b, prom_b, got_b, spans_b) = run();
        assert_eq!(snap_a, snap_b, "snapshot text replays byte-identically");
        assert_eq!(prom_a, prom_b);
        assert_eq!(got_a, got_b);
        assert_eq!(spans_a, spans_b);
        assert!(spans_a > 0, "spans streamed through the sink");
        assert!(prom_a.contains("anaheim_shard_state{shard=\"0\"} 0"));
        assert!(prom_a.contains("anaheim_shard_events_total"));
        assert!(snap_a.starts_with("fleet: submitted=6"));
    }
}
