//! Deterministic tenant → shard routing.
//!
//! The fleet partitions its PIM stacks into replica shards; the router
//! decides which shard serves which tenant. Rendezvous (highest-random-
//! weight) hashing gives the two properties the shard layer needs:
//!
//! - **Stability**: a tenant's home shard depends only on (seed, tenant,
//!   shard count) — never on request order, thread count, or which shards
//!   happen to be sick — so routing decisions replay bit-identically.
//! - **Minimal disruption on failover**: when a shard stops accepting, each
//!   of its tenants independently falls to its *next-ranked* shard instead
//!   of the whole key space reshuffling, and returns home the moment the
//!   shard is readmitted.
//!
//! Scores are SplitMix64 hashes of (seed, tenant, shard); ties (which a
//! 64-bit hash makes vanishingly rare, but determinism must not depend on
//! "rare") break to the lower shard id.

/// Seeded rendezvous-hash router over a fixed shard count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRouter {
    seed: u64,
    shards: u32,
}

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl ShardRouter {
    /// A router over `shards` shards (at least one), scored from `seed`.
    pub fn new(seed: u64, shards: u32) -> Self {
        Self {
            seed,
            shards: shards.max(1),
        }
    }

    /// Number of shards routed over.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// The rendezvous weight of `shard` for `tenant` — pure arithmetic on
    /// (seed, tenant, shard).
    fn score(&self, tenant: u32, shard: u32) -> u64 {
        splitmix64(
            self.seed
                ^ (u64::from(tenant).wrapping_mul(0x9E37_79B9_7F4A_7C15))
                ^ (u64::from(shard).wrapping_mul(0xC2B2_AE3D_27D4_EB4F)),
        )
    }

    /// The tenant's home shard: the highest-scoring shard with every shard
    /// eligible.
    pub fn home_shard(&self, tenant: u32) -> u32 {
        let mut best = 0u32;
        let mut best_score = self.score(tenant, 0);
        for shard in 1..self.shards {
            let s = self.score(tenant, shard);
            if s > best_score {
                best = shard;
                best_score = s;
            }
        }
        best
    }

    /// The highest-ranked shard for `tenant` among those currently
    /// accepting (`accepting[shard]`), or `None` when no shard is. Ties
    /// break to the lower shard id.
    pub fn route(&self, tenant: u32, accepting: &[bool]) -> Option<u32> {
        let mut best: Option<(u32, u64)> = None;
        for shard in 0..self.shards.min(accepting.len() as u32) {
            if !accepting[shard as usize] {
                continue;
            }
            let s = self.score(tenant, shard);
            if best.is_none_or(|(_, bs)| s > bs) {
                best = Some((shard, s));
            }
        }
        best.map(|(shard, _)| shard)
    }

    /// The hedge sibling: the highest-ranked accepting shard for `tenant`
    /// *excluding* `exclude` (the shard already executing the primary), or
    /// `None` when no other shard accepts. Pure rendezvous arithmetic, so
    /// the sibling is as stable as the home shard: it depends only on
    /// (seed, tenant, accepting set), never on request order.
    pub fn next_shard(&self, tenant: u32, exclude: u32, accepting: &[bool]) -> Option<u32> {
        let mut best: Option<(u32, u64)> = None;
        for shard in 0..self.shards.min(accepting.len() as u32) {
            if shard == exclude || !accepting[shard as usize] {
                continue;
            }
            let s = self.score(tenant, shard);
            if best.is_none_or(|(_, bs)| s > bs) {
                best = Some((shard, s));
            }
        }
        best.map(|(shard, _)| shard)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn home_shard_is_stable_and_seed_dependent() {
        let r = ShardRouter::new(7, 4);
        let homes: Vec<u32> = (0..32).map(|t| r.home_shard(t)).collect();
        assert_eq!(homes, (0..32).map(|t| r.home_shard(t)).collect::<Vec<_>>());
        let r2 = ShardRouter::new(8, 4);
        assert_ne!(
            homes,
            (0..32).map(|t| r2.home_shard(t)).collect::<Vec<_>>(),
            "a different seed shuffles the placement"
        );
    }

    #[test]
    fn every_shard_gets_tenants() {
        let r = ShardRouter::new(42, 4);
        let mut seen = [false; 4];
        for t in 0..256 {
            seen[r.home_shard(t) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "rendezvous spreads the key space");
    }

    #[test]
    fn route_with_all_accepting_is_the_home_shard() {
        let r = ShardRouter::new(3, 5);
        for t in 0..64 {
            assert_eq!(r.route(t, &[true; 5]), Some(r.home_shard(t)));
        }
    }

    #[test]
    fn failover_moves_only_the_sick_shards_tenants() {
        let r = ShardRouter::new(11, 4);
        let mut accepting = [true; 4];
        accepting[2] = false;
        for t in 0..128 {
            let home = r.home_shard(t);
            let routed = r.route(t, &accepting).unwrap();
            if home != 2 {
                assert_eq!(routed, home, "healthy tenants stay put");
            } else {
                assert_ne!(routed, 2, "tenant of the sick shard fails over");
            }
        }
    }

    #[test]
    fn no_accepting_shard_routes_nowhere() {
        let r = ShardRouter::new(0, 3);
        assert_eq!(r.route(9, &[false, false, false]), None);
        // Exactly one accepting shard takes everything.
        for t in 0..16 {
            assert_eq!(r.route(t, &[false, true, false]), Some(1));
        }
    }

    #[test]
    fn shard_count_floors_at_one() {
        let r = ShardRouter::new(5, 0);
        assert_eq!(r.shards(), 1);
        assert_eq!(r.home_shard(123), 0);
    }

    #[test]
    fn next_shard_excludes_the_primary_and_tracks_rank() {
        let r = ShardRouter::new(17, 4);
        for t in 0..128 {
            let home = r.home_shard(t);
            let sib = r.next_shard(t, home, &[true; 4]).unwrap();
            assert_ne!(sib, home, "a hedge never lands on its own primary");
            // The sibling is exactly where the tenant would fail over to.
            let mut without_home = [true; 4];
            without_home[home as usize] = false;
            assert_eq!(r.route(t, &without_home), Some(sib));
        }
        // With only the primary accepting there is nowhere to hedge.
        let t = 9;
        let home = r.home_shard(t);
        let mut only_home = [false; 4];
        only_home[home as usize] = true;
        assert_eq!(r.next_shard(t, home, &only_home), None);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Flipping one shard's accepting bit reroutes only that shard's
        /// tenants: everyone else's route is untouched, and the displaced
        /// tenants land on their stable next-ranked shard.
        #[test]
        fn flipping_one_accepting_bit_moves_only_that_shards_tenants(
            seed in any::<u64>(),
            shards in 2u32..8,
            flipped in 0u32..8,
            tenants in prop::collection::vec(any::<u32>(), 1..64),
        ) {
            let flipped = flipped % shards;
            let r = ShardRouter::new(seed, shards);
            let all = vec![true; shards as usize];
            let mut one_down = all.clone();
            one_down[flipped as usize] = false;
            for &t in &tenants {
                let before = r.route(t, &all).unwrap();
                let after = r.route(t, &one_down).unwrap();
                if before != flipped {
                    prop_assert_eq!(after, before, "unaffected tenant moved");
                } else {
                    prop_assert!(after != flipped, "displaced tenant stayed");
                    prop_assert_eq!(
                        Some(after),
                        r.next_shard(t, flipped, &all),
                        "failover target is the rendezvous-next sibling"
                    );
                }
                // Restoring the bit sends everyone straight home.
                prop_assert_eq!(r.route(t, &all).unwrap(), before);
            }
        }
    }
}
