//! Chaos-soak CLI: replay a seeded fault schedule over a mixed-workload
//! trace, check the serving invariants, and (optionally) verify that the
//! run is bit-identical across thread counts.
//!
//! ```text
//! soak [--requests N] [--seed S] [--threads-check] [--quick]
//!      [--stream] [--hedge] [--batch] [--ordered] [--shards N]
//!      [--snapshot-out FILE] [--trace-out FILE] [--metrics-out FILE]
//!      [--rss-budget-kb N] [--help]
//! ```
//!
//! `--stream` switches to the sharded, bounded-memory streaming soak
//! ([`run_soak_stream`]): the trace is generated lazily, responses are
//! invariant-checked and dropped as they are produced, completed spans
//! stream through a bounded sink (incrementally written to `--trace-out`
//! when given), and the Prometheus exposition is rewritten to
//! `--metrics-out` periodically. `--snapshot-out` writes the deterministic
//! per-shard snapshot text — the artifact `scripts/check.sh` byte-compares
//! across `ANAHEIM_THREADS`. `--rss-budget-kb` reads the process's peak
//! RSS (`VmHWM` in `/proc/self/status`) after the run and fails if the
//! budget was exceeded — the memory-boundedness gate.
//!
//! `--hedge` (requires `--stream`) swaps the base scenario to
//! [`SoakConfig::hedge_chaos`]: a GPU fault domain (stream stalls +
//! transfer bit-flips) on top of the fleet storm, with deadline-budget
//! cancellation and hedged re-execution enabled. The streaming invariants
//! then additionally require at least one hedge launch, one hedge win,
//! and one over-budget cancellation.
//!
//! `--batch` (requires `--stream`) swaps the base scenario to
//! [`SoakConfig::batched_fleet`]: a small tenant pool over a fault-free
//! two-shard fleet with same-tenant batch serving enabled, so the
//! streaming invariants additionally require that at least one
//! evaluation-key fetch was amortized and that the saved bytes reconcile
//! with the per-shard hit bytes. `--batch --hedge` composes the two into
//! [`SoakConfig::batch_hedge_chaos`] — the hedge-chaos fault domain with
//! batch serving on, pinning that fleet conservation survives both
//! features firing in one run.
//!
//! `--ordered` (requires `--stream`, implies `--batch`'s scenario) swaps
//! to [`SoakConfig::ordered_fleet`]: batch-aware dispatch ordering forms
//! same-tenant runs under the slack budget and credits each saved
//! evaluation-key fetch back to the lane as virtual time. The invariants
//! then additionally require at least one reorder and a nonzero lane
//! credit.
//!
//! `--help` / `-h` print usage on stdout and exit 0. Unknown or malformed
//! flags print usage on stderr and exit 2. Any invariant violation,
//! determinism mismatch, or busted RSS budget exits 1. Success exits 0.

use std::io::Write as _;
use std::path::PathBuf;

use anaheim_core::Telemetry;
use obs::StreamingTraceSink;
use serving::soak::{check_invariants, run_soak, run_soak_stream, SoakConfig};
use serving::StreamObs;

/// Parsed command line. Defaults resolve against the chosen mode's
/// config ([`SoakConfig::chaos`] or [`SoakConfig::fleet_chaos`]).
#[derive(Debug, Clone, PartialEq, Eq)]
struct Opts {
    requests: Option<usize>,
    seed: u64,
    threads_check: bool,
    stream: bool,
    hedge: bool,
    batch: bool,
    ordered: bool,
    shards: Option<u32>,
    snapshot_out: Option<PathBuf>,
    trace_out: Option<PathBuf>,
    metrics_out: Option<PathBuf>,
    rss_budget_kb: Option<u64>,
}

impl Default for Opts {
    fn default() -> Self {
        Self {
            requests: None,
            seed: 2024,
            threads_check: false,
            stream: false,
            hedge: false,
            batch: false,
            ordered: false,
            shards: None,
            snapshot_out: None,
            trace_out: None,
            metrics_out: None,
            rss_budget_kb: None,
        }
    }
}

/// Strict flag parsing: every flag is known, every value well-formed, or
/// the whole invocation is rejected (the caller prints usage and exits 2).
fn parse_args(args: &[String]) -> Result<Opts, String> {
    fn value<'a, T: std::str::FromStr>(
        flag: &str,
        it: &mut impl Iterator<Item = &'a String>,
    ) -> Result<T, String> {
        let raw = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
        raw.parse()
            .map_err(|_| format!("{flag}: malformed value {raw:?}"))
    }
    let mut o = Opts::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--requests" => o.requests = Some(value("--requests", &mut it)?),
            "--seed" => o.seed = value("--seed", &mut it)?,
            "--threads-check" => o.threads_check = true,
            // Same seeded soak, sized to finish fast in scripts/check.sh.
            "--quick" => o.requests = Some(200),
            "--stream" => o.stream = true,
            "--hedge" => o.hedge = true,
            "--batch" => o.batch = true,
            "--ordered" => o.ordered = true,
            "--shards" => o.shards = Some(value("--shards", &mut it)?),
            "--snapshot-out" => {
                o.snapshot_out = Some(PathBuf::from(value::<String>("--snapshot-out", &mut it)?))
            }
            "--trace-out" => {
                o.trace_out = Some(PathBuf::from(value::<String>("--trace-out", &mut it)?))
            }
            "--metrics-out" => {
                o.metrics_out = Some(PathBuf::from(value::<String>("--metrics-out", &mut it)?))
            }
            "--rss-budget-kb" => o.rss_budget_kb = Some(value("--rss-budget-kb", &mut it)?),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if o.ordered && o.hedge {
        // The ordered-fleet scenario is fault-free by construction; its
        // invariants (>=1 reorder, nonzero lane credit) are not calibrated
        // for the hedge storm, so refuse instead of silently dropping one.
        return Err("--ordered conflicts with --hedge".into());
    }
    if !o.stream {
        for (set, flag) in [
            (o.hedge, "--hedge"),
            (o.batch, "--batch"),
            (o.ordered, "--ordered"),
            (o.shards.is_some(), "--shards"),
            (o.snapshot_out.is_some(), "--snapshot-out"),
            (o.trace_out.is_some(), "--trace-out"),
            (o.metrics_out.is_some(), "--metrics-out"),
        ] {
            if set {
                return Err(format!("{flag} requires --stream"));
            }
        }
    }
    Ok(o)
}

/// Peak resident set of this process so far, from `VmHWM` in
/// `/proc/self/status` (kB). `None` off Linux.
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.trim_start_matches("VmHWM:")
        .trim()
        .trim_end_matches("kB")
        .trim()
        .parse()
        .ok()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if wants_help(&args) {
        println!("{}", usage_text());
        return;
    }
    let opts = parse_args(&args).unwrap_or_else(|e| usage(&e));
    if opts.stream {
        run_stream_mode(&opts);
    } else {
        run_batch_mode(&opts);
    }
    check_rss(&opts);
    println!("soak: all invariants hold");
}

/// The original single-engine soak: every response retained and checked
/// offline; optional in-process thread-count determinism check.
fn run_batch_mode(opts: &Opts) {
    let cfg = SoakConfig {
        requests: opts.requests.unwrap_or(240),
        ..SoakConfig::chaos(opts.seed)
    };
    println!(
        "soak: {} requests, seed {}, {} lanes, queue {} deep, flips p={}, storms every {}, \
         stuck lane {} in {:?}",
        cfg.requests,
        cfg.seed,
        cfg.workers,
        cfg.queue_capacity,
        cfg.flip_probability,
        cfg.storm_every,
        cfg.stuck_lane,
        cfg.stuck_window,
    );

    let out = run_soak(&cfg).unwrap_or_else(|e| fail(&format!("soak run failed: {e}")));
    let summary =
        check_invariants(&cfg, &out).unwrap_or_else(|e| fail(&format!("invariant violated: {e}")));
    println!("soak: {summary}");
    for b in &out.snapshot.banks {
        println!(
            "  bank {}: {} ({} trip(s){})",
            b.bank,
            b.state,
            b.trips,
            if b.permanent { ", permanent" } else { "" }
        );
    }

    if opts.threads_check {
        let mut mismatch = false;
        for threads in [1usize, 8] {
            parpool::set_threads(threads);
            let again = run_soak(&cfg).unwrap_or_else(|e| {
                fail(&format!("soak rerun at {threads} thread(s) failed: {e}"))
            });
            let ok = again == out;
            println!(
                "soak: ANAHEIM_THREADS={threads}: {}",
                if ok { "bit-identical" } else { "MISMATCH" }
            );
            mismatch |= !ok;
        }
        if mismatch {
            fail("soak outcome depends on thread count");
        }
    }
}

/// The sharded streaming soak: bounded memory at any request count.
fn run_stream_mode(opts: &Opts) {
    let mut cfg = if opts.ordered {
        SoakConfig::ordered_fleet(opts.seed)
    } else if opts.batch && opts.hedge {
        SoakConfig::batch_hedge_chaos(opts.seed)
    } else if opts.hedge {
        SoakConfig::hedge_chaos(opts.seed)
    } else if opts.batch {
        SoakConfig::batched_fleet(opts.seed)
    } else {
        SoakConfig::fleet_chaos(opts.seed)
    };
    if let Some(r) = opts.requests {
        cfg.requests = r;
    }
    if let Some(s) = opts.shards {
        cfg.shards = s;
    }
    println!(
        "soak: streaming {} requests over {} shard(s), seed {}, {} lanes/shard, \
         queue {} deep, flips p={}, shard storm {:?}, stuck lane {} in {:?}",
        cfg.requests,
        cfg.shards,
        cfg.seed,
        cfg.workers,
        cfg.queue_capacity,
        cfg.flip_probability,
        cfg.shard_storm,
        cfg.stuck_lane,
        cfg.stuck_window,
    );
    if opts.hedge {
        println!(
            "soak: hedge-chaos: gpu stalls p={} ({} virtual ns), transfer flips p={}, \
             budget cancellation on, hedging on",
            cfg.gpu_stall_prob, cfg.gpu_stall_ns, cfg.gpu_flip_prob,
        );
    }
    if cfg.batching {
        println!(
            "soak: batched-fleet: {} tenants, same-tenant batch serving on \
             (evaluation-key fetches amortized within a batch)",
            cfg.tenants,
        );
    }
    if cfg.ordering {
        println!(
            "soak: ordered-fleet: batch-aware dispatch ordering on \
             (slack-bounded same-tenant run formation with lane credit)",
        );
    }
    // Provenance: everything a reader needs to reproduce this run
    // bit-for-bit (the fault streams derive from the seed; the thread
    // count must NOT change the artifacts — that is the gate).
    println!(
        "soak: provenance: fault-seed={} shards={} workers-per-shard={} \
         ANAHEIM_THREADS={} hedge={} cancel={} batching={} ordering={}",
        cfg.seed,
        cfg.shards,
        cfg.workers,
        std::env::var("ANAHEIM_THREADS").unwrap_or_else(|_| "auto".into()),
        cfg.hedge,
        cfg.cancel,
        cfg.batching,
        cfg.ordering,
    );

    let mut tel = Telemetry::new(cfg.seed);
    let mut sink = match &opts.trace_out {
        Some(path) => {
            let file = std::fs::File::create(path)
                .unwrap_or_else(|e| fail(&format!("cannot create {}: {e}", path.display())));
            StreamingTraceSink::with_writer(4096, Box::new(std::io::BufWriter::new(file)))
        }
        None => StreamingTraceSink::new(4096),
    };
    let mut stream_obs = StreamObs::new(&mut tel, &mut sink);
    if let Some(m) = &opts.metrics_out {
        stream_obs = stream_obs.with_prometheus(m.clone(), 65_536);
    }

    let out = run_soak_stream(&cfg, Some(&mut stream_obs))
        .unwrap_or_else(|e| fail(&format!("invariant violated: {e}")));
    if let Some(e) = stream_obs.prom_io_error() {
        fail(&format!("metrics write failed: {e}"));
    }
    drop(stream_obs);
    println!("soak: {}", out.summary);
    for s in &out.snapshots {
        let c = s.counters;
        println!(
            "  shard {}: state={} rerouted-in={} drains={} readmits={} probe-failures={} \
             completed={} dead-banks={}",
            s.shard,
            s.state,
            c.rerouted_in,
            c.drains,
            c.readmits,
            c.probe_failures,
            s.health.counters.completed,
            s.health.banks.iter().filter(|b| b.permanent).count(),
        );
    }
    println!(
        "soak: trace spans accepted={} evicted={} written={}",
        sink.accepted(),
        sink.evicted(),
        sink.written()
    );
    sink.finish()
        .unwrap_or_else(|e| fail(&format!("trace write failed: {e}")));

    if let Some(path) = &opts.snapshot_out {
        let mut f = std::fs::File::create(path)
            .unwrap_or_else(|e| fail(&format!("cannot create {}: {e}", path.display())));
        f.write_all(out.snapshot_text.as_bytes())
            .and_then(|()| f.flush())
            .unwrap_or_else(|e| fail(&format!("snapshot write failed: {e}")));
        println!("soak: snapshot text -> {}", path.display());
    }
    if let Some(path) = &opts.metrics_out {
        std::fs::write(path, tel.prometheus())
            .unwrap_or_else(|e| fail(&format!("metrics write failed: {e}")));
        println!("soak: metrics -> {}", path.display());
    }

    if opts.threads_check {
        let mut mismatch = false;
        for threads in [1usize, 8] {
            parpool::set_threads(threads);
            let again = run_soak_stream(&cfg, None).unwrap_or_else(|e| {
                fail(&format!("soak rerun at {threads} thread(s) failed: {e}"))
            });
            let ok = again.snapshot_text == out.snapshot_text && again.summary == out.summary;
            println!(
                "soak: ANAHEIM_THREADS={threads}: {}",
                if ok { "bit-identical" } else { "MISMATCH" }
            );
            mismatch |= !ok;
        }
        if mismatch {
            fail("streaming soak outcome depends on thread count");
        }
    }
}

/// Reports peak RSS and enforces `--rss-budget-kb` (the memory-boundedness
/// gate of the million-request soak).
fn check_rss(opts: &Opts) {
    let Some(peak) = peak_rss_kb() else {
        if opts.rss_budget_kb.is_some() {
            fail("--rss-budget-kb: cannot read VmHWM from /proc/self/status");
        }
        return;
    };
    println!("soak: peak RSS {peak} kB (VmHWM)");
    if let Some(budget) = opts.rss_budget_kb {
        if peak > budget {
            fail(&format!("peak RSS {peak} kB exceeds budget {budget} kB"));
        }
        println!("soak: within RSS budget {budget} kB");
    }
}

/// True when the invocation is a help request (`--help` or `-h` anywhere
/// on the line). Checked before strict parsing so `soak --help` succeeds
/// even next to otherwise-invalid flags.
fn wants_help(args: &[String]) -> bool {
    args.iter().any(|a| a == "--help" || a == "-h")
}

/// The usage block, shared by `--help` (stdout, exit 0) and parse errors
/// (stderr, exit 2).
fn usage_text() -> &'static str {
    "usage: soak [--requests N] [--seed S] [--threads-check] [--quick]\n\
     \x20           [--stream] [--hedge] [--batch] [--ordered] [--shards N]\n\
     \x20           [--snapshot-out FILE] [--trace-out FILE] [--metrics-out FILE]\n\
     \x20           [--rss-budget-kb N] [--help]"
}

fn usage(msg: &str) -> ! {
    eprintln!("soak: {msg}");
    eprintln!("{}", usage_text());
    std::process::exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("soak: FAIL: {msg}");
    std::process::exit(1);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_the_full_stream_invocation() {
        let o = parse_args(&args(&[
            "--stream",
            "--hedge",
            "--requests",
            "1000000",
            "--seed",
            "7",
            "--shards",
            "8",
            "--snapshot-out",
            "snap.txt",
            "--trace-out",
            "trace.json",
            "--metrics-out",
            "metrics.prom",
            "--rss-budget-kb",
            "524288",
            "--threads-check",
        ]))
        .unwrap();
        assert!(o.stream && o.threads_check && o.hedge);
        assert_eq!(o.requests, Some(1_000_000));
        assert_eq!(o.seed, 7);
        assert_eq!(o.shards, Some(8));
        assert_eq!(
            o.snapshot_out.as_deref(),
            Some(std::path::Path::new("snap.txt"))
        );
        assert_eq!(o.rss_budget_kb, Some(524_288));
    }

    #[test]
    fn rejects_unknown_and_malformed_flags() {
        assert!(parse_args(&args(&["--frobnicate"]))
            .unwrap_err()
            .contains("unknown flag"));
        assert!(parse_args(&args(&["--requests"]))
            .unwrap_err()
            .contains("needs a value"));
        assert!(parse_args(&args(&["--requests", "many"]))
            .unwrap_err()
            .contains("malformed"));
        assert!(parse_args(&args(&["--seed", "-3"]))
            .unwrap_err()
            .contains("malformed"));
        assert!(parse_args(&args(&["--rss-budget-kb", "1.5"]))
            .unwrap_err()
            .contains("malformed"));
    }

    #[test]
    fn stream_only_flags_require_stream() {
        for (flag, value) in [
            ("--shards", "2"),
            ("--snapshot-out", "snap.txt"),
            ("--trace-out", "trace.json"),
            ("--metrics-out", "metrics.prom"),
        ] {
            let e = parse_args(&args(&[flag, value])).unwrap_err();
            assert!(e.contains("requires --stream"), "{flag}: {e}");
        }
        assert!(parse_args(&args(&["--stream", "--shards", "2"])).is_ok());
        // --hedge is a stream-mode scenario switch, not a batch knob.
        let e = parse_args(&args(&["--hedge"])).unwrap_err();
        assert!(e.contains("requires --stream"), "{e}");
        assert!(parse_args(&args(&["--stream", "--hedge"])).is_ok());
        // So are --batch and --ordered.
        let e = parse_args(&args(&["--batch"])).unwrap_err();
        assert!(e.contains("requires --stream"), "{e}");
        assert!(parse_args(&args(&["--stream", "--batch"])).is_ok());
        let e = parse_args(&args(&["--ordered"])).unwrap_err();
        assert!(e.contains("requires --stream"), "{e}");
        assert!(parse_args(&args(&["--stream", "--ordered"])).is_ok());
        // --batch composes with --hedge (batch_hedge_chaos); --ordered is
        // a fault-free scenario and refuses the hedge storm.
        assert!(parse_args(&args(&["--stream", "--batch", "--hedge"])).is_ok());
        let e = parse_args(&args(&["--stream", "--ordered", "--hedge"])).unwrap_err();
        assert!(e.contains("conflicts"), "{e}");
    }

    #[test]
    fn help_is_detected_anywhere_on_the_line() {
        assert!(wants_help(&args(&["--help"])));
        assert!(wants_help(&args(&["-h"])));
        assert!(wants_help(&args(&["--stream", "--help", "--nonsense"])));
        assert!(!wants_help(&args(&["--stream"])));
        assert!(!wants_help(&[]));
        // The usage text names every flag the parser accepts.
        for flag in [
            "--requests",
            "--seed",
            "--threads-check",
            "--quick",
            "--stream",
            "--hedge",
            "--batch",
            "--ordered",
            "--shards",
            "--snapshot-out",
            "--trace-out",
            "--metrics-out",
            "--rss-budget-kb",
            "--help",
        ] {
            assert!(usage_text().contains(flag), "usage missing {flag}");
        }
    }

    #[test]
    fn defaults_are_batch_mode() {
        let o = parse_args(&[]).unwrap();
        assert_eq!(o, Opts::default());
        assert!(!o.stream);
        assert_eq!(o.seed, 2024);
        assert_eq!(o.requests, None);
    }
}
