//! Chaos-soak CLI: replay a seeded fault schedule over a mixed-workload
//! trace, check the serving invariants, and (optionally) verify that the
//! run is bit-identical across thread counts.
//!
//! ```text
//! soak [--requests N] [--seed S] [--threads-check] [--quick]
//! ```
//!
//! Exits non-zero on any invariant violation or determinism mismatch.

use serving::soak::{check_invariants, run_soak, SoakConfig};

fn main() {
    let mut requests = 240usize;
    let mut seed = 2024u64;
    let mut threads_check = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--requests" => {
                requests = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--requests needs a number"));
            }
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs a number"));
            }
            "--threads-check" => threads_check = true,
            // Same seeded soak, sized to finish fast in scripts/check.sh.
            "--quick" => requests = 200,
            other => usage(&format!("unknown flag {other}")),
        }
    }

    let cfg = SoakConfig {
        requests,
        ..SoakConfig::chaos(seed)
    };
    println!(
        "soak: {} requests, seed {}, {} lanes, queue {} deep, flips p={}, storms every {}, \
         stuck lane {} in {:?}",
        cfg.requests,
        cfg.seed,
        cfg.workers,
        cfg.queue_capacity,
        cfg.flip_probability,
        cfg.storm_every,
        cfg.stuck_lane,
        cfg.stuck_window,
    );

    let out = run_soak(&cfg).unwrap_or_else(|e| fail(&format!("soak run failed: {e}")));
    let summary =
        check_invariants(&cfg, &out).unwrap_or_else(|e| fail(&format!("invariant violated: {e}")));
    println!("soak: {summary}");
    for b in &out.snapshot.banks {
        println!(
            "  bank {}: {} ({} trip(s){})",
            b.bank,
            b.state,
            b.trips,
            if b.permanent { ", permanent" } else { "" }
        );
    }

    if threads_check {
        let mut mismatch = false;
        for threads in [1usize, 8] {
            parpool::set_threads(threads);
            let again = run_soak(&cfg).unwrap_or_else(|e| {
                fail(&format!("soak rerun at {threads} thread(s) failed: {e}"))
            });
            let ok = again == out;
            println!(
                "soak: ANAHEIM_THREADS={threads}: {}",
                if ok { "bit-identical" } else { "MISMATCH" }
            );
            mismatch |= !ok;
        }
        if mismatch {
            fail("soak outcome depends on thread count");
        }
    }
    println!("soak: all invariants hold");
}

fn usage(msg: &str) -> ! {
    eprintln!("soak: {msg}");
    eprintln!("usage: soak [--requests N] [--seed S] [--threads-check] [--quick]");
    std::process::exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("soak: FAIL: {msg}");
    std::process::exit(1);
}
