//! The bounded, priority-ordered admission queue.
//!
//! Thread-safe (a `Mutex` around plain data — no async runtime, per the
//! workspace's vendored-deps-only rule): multiple std-thread producers may
//! `submit` concurrently while a consumer pops. The serving engine itself
//! drains the queue serially in virtual time, which is what keeps soak
//! runs bit-identical across `ANAHEIM_THREADS`; the locking exists so the
//! same queue can front real producer threads (see the tests).
//!
//! Pop order is total and deterministic: priority (descending), then
//! arrival time, then id. That order is defined exactly once — by the
//! derived `Ord` on [`PopKey`] — and the queue stores items in a
//! `BTreeMap` keyed by it, so `pop`, `peek`, and `keys_in_pop_order` all
//! read the same head in O(log n) instead of re-deriving the order with
//! per-call scans (the old O(n) scan per pop made a full soak drain
//! O(n²), and `peek` carried its own reduction that could drift from
//! `pop`'s).

use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard, PoisonError};

use crate::request::{Priority, Rejected};

/// Items the queue can order: anything exposing the scheduling key.
pub trait Queued {
    /// Unique id (final tie-breaker).
    fn id(&self) -> u64;
    /// Priority class.
    fn priority(&self) -> Priority;
    /// Arrival time (virtual ns).
    fn arrival_ns(&self) -> f64;
    /// Estimated service time (virtual ns), used for admission projection.
    fn estimate_ns(&self) -> f64;
}

/// Monotone `f64 → u64` key encoding: for all non-NaN-free pairs,
/// `a.total_cmp(&b) == f64_order_bits(a).cmp(&f64_order_bits(b))`.
fn f64_order_bits(x: f64) -> u64 {
    let b = x.to_bits();
    if b >> 63 == 1 {
        !b
    } else {
        b | (1 << 63)
    }
}

/// The pop-order key: the single definition of "who goes next", shared by
/// [`AdmissionQueue::pop`], [`AdmissionQueue::peek`],
/// [`AdmissionQueue::keys_in_pop_order`], and the serving engine's
/// start-time projection. The derived `Ord` *is* the queue discipline —
/// priority descending, then arrival ascending (`total_cmp`), then id —
/// so the two sides can never disagree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct PopKey {
    prio: std::cmp::Reverse<Priority>,
    arrival_bits: u64,
    id: u64,
}

impl PopKey {
    /// The pop-order key of `item`.
    pub fn of<T: Queued>(item: &T) -> Self {
        Self {
            prio: std::cmp::Reverse(item.priority()),
            arrival_bits: f64_order_bits(item.arrival_ns()),
            id: item.id(),
        }
    }
}

/// A bounded multi-producer admission queue with deterministic pop order.
#[derive(Debug)]
pub struct AdmissionQueue<T> {
    // Ids are unique per trace, so `PopKey` (which ends in the id) never
    // collides and the map holds every submitted item.
    items: Mutex<BTreeMap<PopKey, T>>,
    capacity: usize,
}

impl<T: Queued> AdmissionQueue<T> {
    /// An empty queue holding at most `capacity` requests.
    pub fn new(capacity: usize) -> Self {
        Self {
            items: Mutex::new(BTreeMap::new()),
            capacity,
        }
    }

    /// The protected data is plain values and every critical section
    /// leaves it consistent, so a producer that panicked while holding the
    /// lock must not cascade into the engine: recover the guard instead of
    /// unwrapping the poison.
    fn lock(&self) -> MutexGuard<'_, BTreeMap<PopKey, T>> {
        self.items.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Capacity the queue was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Queued requests right now.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Admits a request, or sheds it with [`Rejected::QueueFull`] when at
    /// capacity. Returns the queue depth after insertion.
    pub fn submit(&self, item: T) -> Result<usize, Rejected> {
        let mut items = self.lock();
        if items.len() >= self.capacity {
            return Err(Rejected::QueueFull);
        }
        items.insert(PopKey::of(&item), item);
        Ok(items.len())
    }

    /// Removes and returns the next request in pop order.
    pub fn pop(&self) -> Option<T> {
        self.lock().pop_first().map(|(_, item)| item)
    }

    /// Applies `f` to the head (next to pop) without removing it.
    pub fn peek<R>(&self, f: impl FnOnce(&T) -> R) -> Option<R> {
        self.lock().first_key_value().map(|(_, item)| f(item))
    }

    /// The scheduling keys of all queued items, in pop order — the input
    /// to the admission-control start-time projection.
    pub fn keys_in_pop_order(&self) -> Vec<QueueKey> {
        self.lock()
            .values()
            .map(|it| QueueKey {
                id: it.id(),
                priority: it.priority(),
                arrival_ns: it.arrival_ns(),
                estimate_ns: it.estimate_ns(),
            })
            .collect()
    }

    /// Applies `f` to each of the first `window` items in pop order (head
    /// first) and returns the [`PopKey`] of the first item for which `f`
    /// returns true — the windowed candidate scan batch-aware ordering
    /// uses to find a same-tenant request within K bypasses of the head.
    /// Read-only: the queue is not mutated.
    pub fn find_in_window(
        &self,
        window: usize,
        mut f: impl FnMut(usize, &T) -> bool,
    ) -> Option<PopKey> {
        self.lock()
            .iter()
            .take(window)
            .enumerate()
            .find(|(pos, (_, item))| f(*pos, item))
            .map(|(_, (key, _))| *key)
    }

    /// Applies `f` to every queued item in pop order (head first).
    /// Read-only: the queue is not mutated. Batch-aware ordering uses this
    /// to charge every queued request's slack budget before committing a
    /// reorder — a pulled-forward job can perturb lane packing for items
    /// far beyond the bypass window, so all of them must absorb it.
    pub fn for_each(&self, mut f: impl FnMut(&T)) {
        for item in self.lock().values() {
            f(item);
        }
    }

    /// Removes and returns the item stored under `key`, if present — the
    /// commit half of a reorder: the candidate found by
    /// [`find_in_window`](Self::find_in_window) is taken out of order,
    /// everything else keeps its [`PopKey`] position.
    pub fn take(&self, key: PopKey) -> Option<T> {
        self.lock().remove(&key)
    }
}

/// The scheduling key of one queued request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueueKey {
    /// Request id.
    pub id: u64,
    /// Priority class.
    pub priority: Priority,
    /// Arrival time (virtual ns).
    pub arrival_ns: f64,
    /// Estimated service time (virtual ns).
    pub estimate_ns: f64,
}

impl Queued for QueueKey {
    fn id(&self) -> u64 {
        self.id
    }
    fn priority(&self) -> Priority {
        self.priority
    }
    fn arrival_ns(&self) -> f64 {
        self.arrival_ns
    }
    fn estimate_ns(&self) -> f64 {
        self.estimate_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::sync::Arc;

    fn key(id: u64, priority: Priority, arrival: f64) -> QueueKey {
        QueueKey {
            id,
            priority,
            arrival_ns: arrival,
            estimate_ns: 100.0,
        }
    }

    /// Reference oracle for the pop order, kept separate from [`PopKey`]
    /// on purpose: `true` if `a` pops before `b`.
    fn pops_before(a: &QueueKey, b: &QueueKey) -> bool {
        match a.priority.cmp(&b.priority) {
            std::cmp::Ordering::Greater => true,
            std::cmp::Ordering::Less => false,
            std::cmp::Ordering::Equal => match a.arrival_ns.total_cmp(&b.arrival_ns) {
                std::cmp::Ordering::Less => true,
                std::cmp::Ordering::Greater => false,
                std::cmp::Ordering::Equal => a.id < b.id,
            },
        }
    }

    #[test]
    fn pop_order_is_priority_then_arrival_then_id() {
        let q = AdmissionQueue::new(8);
        q.submit(key(3, Priority::Batch, 0.0)).unwrap();
        q.submit(key(1, Priority::Interactive, 50.0)).unwrap();
        q.submit(key(2, Priority::Interactive, 10.0)).unwrap();
        q.submit(key(5, Priority::Standard, 5.0)).unwrap();
        q.submit(key(4, Priority::Standard, 5.0)).unwrap();
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|k| k.id).collect();
        assert_eq!(order, vec![2, 1, 4, 5, 3]);
    }

    #[test]
    fn capacity_sheds_queue_full() {
        let q = AdmissionQueue::new(2);
        assert_eq!(q.submit(key(1, Priority::Standard, 0.0)), Ok(1));
        assert_eq!(q.submit(key(2, Priority::Standard, 1.0)), Ok(2));
        assert_eq!(
            q.submit(key(3, Priority::Interactive, 2.0)),
            Err(Rejected::QueueFull),
        );
        q.pop().unwrap();
        assert_eq!(q.submit(key(3, Priority::Interactive, 2.0)), Ok(2));
    }

    #[test]
    fn peek_matches_pop() {
        let q: AdmissionQueue<QueueKey> = AdmissionQueue::new(4);
        assert!(q.peek(|k| k.id).is_none());
        q.submit(key(7, Priority::Batch, 3.0)).unwrap();
        q.submit(key(8, Priority::Interactive, 9.0)).unwrap();
        assert_eq!(q.peek(|k| k.id), Some(8));
        assert_eq!(q.pop().unwrap().id, 8);
        assert_eq!(q.peek(|k| k.id), Some(7));
    }

    #[test]
    fn keys_in_pop_order_match_pops() {
        let q = AdmissionQueue::new(8);
        for (id, p, a) in [
            (1, Priority::Batch, 4.0),
            (2, Priority::Interactive, 9.0),
            (3, Priority::Standard, 1.0),
        ] {
            q.submit(key(id, p, a)).unwrap();
        }
        let keys: Vec<u64> = q.keys_in_pop_order().iter().map(|k| k.id).collect();
        let pops: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|k| k.id).collect();
        assert_eq!(keys, pops);
    }

    #[test]
    fn find_in_window_scans_pop_order_and_take_removes_by_key() {
        let q = AdmissionQueue::new(8);
        q.submit(key(3, Priority::Batch, 0.0)).unwrap();
        q.submit(key(1, Priority::Interactive, 50.0)).unwrap();
        q.submit(key(2, Priority::Interactive, 10.0)).unwrap();
        q.submit(key(5, Priority::Standard, 5.0)).unwrap();
        // Pop order is [2, 1, 5, 3]; a window of 3 must see exactly the
        // first three, head first.
        let mut seen = Vec::new();
        let hit = q.find_in_window(3, |pos, k| {
            seen.push((pos, k.id));
            k.id == 5
        });
        assert_eq!(seen, vec![(0, 2), (1, 1), (2, 5)]);
        let hit = hit.expect("id 5 is within the window");
        // A window that ends before the match finds nothing.
        assert_eq!(q.find_in_window(2, |_, k| k.id == 5), None);
        // Taking by key removes exactly that item; the rest keep order.
        assert_eq!(q.take(hit).unwrap().id, 5);
        assert_eq!(q.take(hit), None, "double-take must miss");
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|k| k.id).collect();
        assert_eq!(order, vec![2, 1, 3]);
    }

    #[test]
    fn negative_and_special_arrivals_order_like_total_cmp() {
        // The f64→u64 key encoding must agree with total_cmp across sign
        // and magnitude boundaries.
        let values = [
            f64::NEG_INFINITY,
            -1e300,
            -2.0,
            -0.0,
            0.0,
            f64::MIN_POSITIVE,
            2.0,
            1e300,
            f64::INFINITY,
        ];
        for a in values {
            for b in values {
                assert_eq!(
                    f64_order_bits(a).cmp(&f64_order_bits(b)),
                    a.total_cmp(&b),
                    "encoding diverged at {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn poisoned_lock_recovers_instead_of_cascading() {
        // A producer that panics while holding the lock (here: inside the
        // peek closure) poisons the mutex; the queue must keep serving.
        let q = Arc::new(AdmissionQueue::new(4));
        q.submit(key(1, Priority::Standard, 0.0)).unwrap();
        let q2 = Arc::clone(&q);
        let died = std::thread::spawn(move || {
            q2.peek(|_| -> () { panic!("producer died mid-inspection") })
        })
        .join();
        assert!(died.is_err(), "the producer thread must have panicked");
        assert_eq!(q.len(), 1, "len must not panic on a poisoned lock");
        assert_eq!(q.submit(key(2, Priority::Interactive, 1.0)), Ok(2));
        assert_eq!(q.pop().unwrap().id, 2);
        assert_eq!(q.pop().unwrap().id, 1);
    }

    #[test]
    fn concurrent_producers_never_overfill() {
        // Multi-tenant submission from std threads: the bound holds under
        // contention and every submit gets a definitive answer.
        let q = Arc::new(AdmissionQueue::new(16));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                let mut admitted = 0usize;
                let mut shed = 0usize;
                for i in 0..8u64 {
                    match q.submit(key(t * 100 + i, Priority::Standard, i as f64)) {
                        Ok(depth) => {
                            assert!(depth <= 16);
                            admitted += 1;
                        }
                        Err(Rejected::QueueFull) => shed += 1,
                        Err(other) => panic!("unexpected rejection {other:?}"),
                    }
                }
                (admitted, shed)
            }));
        }
        let (mut admitted, mut shed) = (0, 0);
        for h in handles {
            let (a, s) = h.join().unwrap();
            admitted += a;
            shed += s;
        }
        assert_eq!(admitted + shed, 32);
        assert_eq!(admitted, 16, "exactly capacity admitted");
        assert_eq!(q.len(), 16);
        assert_eq!(shed, 16);
    }

    fn arb_keys() -> impl Strategy<Value = Vec<QueueKey>> {
        // Coarse arrival buckets force ties so the id tie-break is
        // exercised, not just reachable; ids are positions, so unique.
        prop::collection::vec((0u8..3, 0u32..8, 1u32..2000), 1..24).prop_map(|raw| {
            raw.into_iter()
                .enumerate()
                .map(|(i, (p, arrival, estimate))| QueueKey {
                    id: i as u64,
                    priority: match p {
                        0 => Priority::Batch,
                        1 => Priority::Standard,
                        _ => Priority::Interactive,
                    },
                    arrival_ns: f64::from(arrival) * 100.0,
                    estimate_ns: f64::from(estimate),
                })
                .collect()
        })
    }

    proptest! {
        #[test]
        fn prop_pop_sequence_matches_keys_and_oracle(keys in arb_keys()) {
            let q = AdmissionQueue::new(keys.len());
            for k in &keys {
                q.submit(*k).unwrap();
            }
            let listed = q.keys_in_pop_order();
            // Oracle: selection sort by the reference comparator.
            let mut oracle = keys.clone();
            oracle.sort_by(|a, b| {
                if pops_before(a, b) {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Greater
                }
            });
            let mut popped = Vec::new();
            loop {
                let head = q.peek(|k| k.id);
                match q.pop() {
                    Some(k) => {
                        prop_assert_eq!(head, Some(k.id), "peek must agree with pop");
                        popped.push(k);
                    }
                    None => {
                        prop_assert_eq!(head, None);
                        break;
                    }
                }
            }
            let ids = |v: &[QueueKey]| v.iter().map(|k| k.id).collect::<Vec<_>>();
            prop_assert_eq!(ids(&popped), ids(&listed));
            prop_assert_eq!(ids(&popped), ids(&oracle));
        }
    }
}
