//! The bounded, priority-ordered admission queue.
//!
//! Thread-safe (a `Mutex` around plain data — no async runtime, per the
//! workspace's vendored-deps-only rule): multiple std-thread producers may
//! `submit` concurrently while a consumer pops. The serving engine itself
//! drains the queue serially in virtual time, which is what keeps soak
//! runs bit-identical across `ANAHEIM_THREADS`; the locking exists so the
//! same queue can front real producer threads (see the tests).
//!
//! Pop order is total and deterministic: priority (descending), then
//! arrival time, then id.

use std::sync::Mutex;

use crate::request::{Priority, Rejected};

/// Items the queue can order: anything exposing the scheduling key.
pub trait Queued {
    /// Unique id (final tie-breaker).
    fn id(&self) -> u64;
    /// Priority class.
    fn priority(&self) -> Priority;
    /// Arrival time (virtual ns).
    fn arrival_ns(&self) -> f64;
    /// Estimated service time (virtual ns), used for admission projection.
    fn estimate_ns(&self) -> f64;
}

/// `true` if `a` pops before `b`.
fn pops_before<T: Queued>(a: &T, b: &T) -> bool {
    match a.priority().cmp(&b.priority()) {
        std::cmp::Ordering::Greater => true,
        std::cmp::Ordering::Less => false,
        std::cmp::Ordering::Equal => match a.arrival_ns().total_cmp(&b.arrival_ns()) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => a.id() < b.id(),
        },
    }
}

/// A bounded multi-producer admission queue with deterministic pop order.
#[derive(Debug)]
pub struct AdmissionQueue<T> {
    items: Mutex<Vec<T>>,
    capacity: usize,
}

impl<T: Queued> AdmissionQueue<T> {
    /// An empty queue holding at most `capacity` requests.
    pub fn new(capacity: usize) -> Self {
        Self {
            items: Mutex::new(Vec::with_capacity(capacity)),
            capacity,
        }
    }

    /// Capacity the queue was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Queued requests right now.
    pub fn len(&self) -> usize {
        self.items.lock().expect("queue poisoned").len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Admits a request, or sheds it with [`Rejected::QueueFull`] when at
    /// capacity. Returns the queue depth after insertion.
    pub fn submit(&self, item: T) -> Result<usize, Rejected> {
        let mut items = self.items.lock().expect("queue poisoned");
        if items.len() >= self.capacity {
            return Err(Rejected::QueueFull);
        }
        items.push(item);
        Ok(items.len())
    }

    /// Removes and returns the next request in pop order.
    pub fn pop(&self) -> Option<T> {
        let mut items = self.items.lock().expect("queue poisoned");
        let mut best = 0usize;
        if items.is_empty() {
            return None;
        }
        for i in 1..items.len() {
            if pops_before(&items[i], &items[best]) {
                best = i;
            }
        }
        Some(items.swap_remove(best))
    }

    /// Applies `f` to the head (next to pop) without removing it.
    pub fn peek<R>(&self, f: impl FnOnce(&T) -> R) -> Option<R> {
        let items = self.items.lock().expect("queue poisoned");
        let mut best: Option<&T> = None;
        for it in items.iter() {
            best = match best {
                Some(b) if pops_before(b, it) => Some(b),
                _ => Some(it),
            };
        }
        best.map(f)
    }

    /// The scheduling keys of all queued items, in pop order — the input
    /// to the admission-control start-time projection.
    pub fn keys_in_pop_order(&self) -> Vec<QueueKey> {
        let items = self.items.lock().expect("queue poisoned");
        let mut keys: Vec<QueueKey> = items
            .iter()
            .map(|it| QueueKey {
                id: it.id(),
                priority: it.priority(),
                arrival_ns: it.arrival_ns(),
                estimate_ns: it.estimate_ns(),
            })
            .collect();
        keys.sort_by(|a, b| {
            b.priority
                .cmp(&a.priority)
                .then(a.arrival_ns.total_cmp(&b.arrival_ns))
                .then(a.id.cmp(&b.id))
        });
        keys
    }
}

/// The scheduling key of one queued request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueueKey {
    /// Request id.
    pub id: u64,
    /// Priority class.
    pub priority: Priority,
    /// Arrival time (virtual ns).
    pub arrival_ns: f64,
    /// Estimated service time (virtual ns).
    pub estimate_ns: f64,
}

impl Queued for QueueKey {
    fn id(&self) -> u64 {
        self.id
    }
    fn priority(&self) -> Priority {
        self.priority
    }
    fn arrival_ns(&self) -> f64 {
        self.arrival_ns
    }
    fn estimate_ns(&self) -> f64 {
        self.estimate_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn key(id: u64, priority: Priority, arrival: f64) -> QueueKey {
        QueueKey {
            id,
            priority,
            arrival_ns: arrival,
            estimate_ns: 100.0,
        }
    }

    #[test]
    fn pop_order_is_priority_then_arrival_then_id() {
        let q = AdmissionQueue::new(8);
        q.submit(key(3, Priority::Batch, 0.0)).unwrap();
        q.submit(key(1, Priority::Interactive, 50.0)).unwrap();
        q.submit(key(2, Priority::Interactive, 10.0)).unwrap();
        q.submit(key(5, Priority::Standard, 5.0)).unwrap();
        q.submit(key(4, Priority::Standard, 5.0)).unwrap();
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|k| k.id).collect();
        assert_eq!(order, vec![2, 1, 4, 5, 3]);
    }

    #[test]
    fn capacity_sheds_queue_full() {
        let q = AdmissionQueue::new(2);
        assert_eq!(q.submit(key(1, Priority::Standard, 0.0)), Ok(1));
        assert_eq!(q.submit(key(2, Priority::Standard, 1.0)), Ok(2));
        assert_eq!(
            q.submit(key(3, Priority::Interactive, 2.0)),
            Err(Rejected::QueueFull),
        );
        q.pop().unwrap();
        assert_eq!(q.submit(key(3, Priority::Interactive, 2.0)), Ok(2));
    }

    #[test]
    fn peek_matches_pop() {
        let q: AdmissionQueue<QueueKey> = AdmissionQueue::new(4);
        assert!(q.peek(|k| k.id).is_none());
        q.submit(key(7, Priority::Batch, 3.0)).unwrap();
        q.submit(key(8, Priority::Interactive, 9.0)).unwrap();
        assert_eq!(q.peek(|k| k.id), Some(8));
        assert_eq!(q.pop().unwrap().id, 8);
        assert_eq!(q.peek(|k| k.id), Some(7));
    }

    #[test]
    fn keys_in_pop_order_match_pops() {
        let q = AdmissionQueue::new(8);
        for (id, p, a) in [
            (1, Priority::Batch, 4.0),
            (2, Priority::Interactive, 9.0),
            (3, Priority::Standard, 1.0),
        ] {
            q.submit(key(id, p, a)).unwrap();
        }
        let keys: Vec<u64> = q.keys_in_pop_order().iter().map(|k| k.id).collect();
        let pops: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|k| k.id).collect();
        assert_eq!(keys, pops);
    }

    #[test]
    fn concurrent_producers_never_overfill() {
        // Multi-tenant submission from std threads: the bound holds under
        // contention and every submit gets a definitive answer.
        let q = Arc::new(AdmissionQueue::new(16));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                let mut admitted = 0usize;
                let mut shed = 0usize;
                for i in 0..8u64 {
                    match q.submit(key(t * 100 + i, Priority::Standard, i as f64)) {
                        Ok(depth) => {
                            assert!(depth <= 16);
                            admitted += 1;
                        }
                        Err(Rejected::QueueFull) => shed += 1,
                        Err(other) => panic!("unexpected rejection {other:?}"),
                    }
                }
                (admitted, shed)
            }));
        }
        let (mut admitted, mut shed) = (0, 0);
        for h in handles {
            let (a, s) = h.join().unwrap();
            admitted += a;
            shed += s;
        }
        assert_eq!(admitted + shed, 32);
        assert_eq!(admitted, 16, "exactly capacity admitted");
        assert_eq!(q.len(), 16);
        assert_eq!(shed, 16);
    }
}
