//! The deadline-aware serving engine.
//!
//! One engine owns an [`Anaheim`] runtime, a persistent [`HealthRegistry`],
//! and a virtual-lane model of the accelerator. A trace of requests runs in
//! three steps:
//!
//! 1. **Prepare** (parallel): each request's op sequence is fused/offloaded
//!    and costed fault-free to get `estimate_ns`. This is pure per-request
//!    work, fanned out over the vendored `parpool` — results are written to
//!    disjoint slots, so the outcome is bit-identical for every
//!    `ANAHEIM_THREADS` value.
//! 2. **Admit** (serial, virtual time): arrivals are processed in time
//!    order. A full queue sheds with [`Rejected::QueueFull`]; a request
//!    whose projected start plus estimate overruns its deadline sheds with
//!    [`Rejected::DeadlineInfeasible`].
//! 3. **Dispatch** (serial, virtual time): lanes pick up queued requests in
//!    pop order; each executes through the breaker-gated scheduler
//!    ([`Scheduler::run_with_health`]) under its own derived fault stream.
//!    Requests that finish late are reported as [`Outcome::DeadlineMiss`] —
//!    never as success.
//!
//! The dispatcher being serial in *virtual* time is a determinism decision,
//! not a throughput one: breaker state is global, so any parallel execution
//! of requests would make transition order depend on thread scheduling.
//! All the parallelism lives in step 1, where it is provably
//! order-independent.

use std::sync::Arc;

use anaheim_core::framework::{Anaheim, AnaheimConfig};
use anaheim_core::health::{BreakerConfig, HealthRegistry, HealthSnapshot, RetryPolicy};
use anaheim_core::ir::OpSequence;
use anaheim_core::schedule::Scheduler;
use anaheim_core::telemetry::{names, Telemetry};
use anaheim_core::RunError;
use pim::fault::FaultPlan;

use crate::queue::{AdmissionQueue, PopKey, QueueKey, Queued};
use crate::request::{Outcome, Priority, Rejected, Request, Response};

/// The lane with the earliest free time (ties to the lowest index).
pub(crate) fn earliest_lane(lanes: &[f64]) -> usize {
    let mut best = 0usize;
    for i in 1..lanes.len() {
        if lanes[i] < lanes[best] {
            best = i;
        }
    }
    best
}

/// One dispatcher step: the lane and start time of the queue's head, if it
/// can start at or before `until_ns`. Shared by
/// [`ServingEngine::dispatch_until`] and the property tests, so the test
/// drains exactly the dispatcher's schedule.
pub(crate) fn next_dispatch<T: Queued>(
    queue: &AdmissionQueue<T>,
    lanes: &[f64],
    until_ns: f64,
) -> Option<(usize, f64)> {
    let arrival = queue.peek(|p| p.arrival_ns())?;
    let lane = earliest_lane(lanes);
    let start = lanes[lane].max(arrival);
    (start <= until_ns).then_some((lane, start))
}

/// When would a request with key `cand` start if the queued `keys` plus
/// the candidate drained onto `lanes` in pop order from `now`? The sort
/// uses [`PopKey`] — the same total order the queue itself maintains — so
/// the projection cannot disagree with the dispatcher about who goes
/// first.
pub(crate) fn projected_start_from_keys(
    lanes: &[f64],
    mut keys: Vec<QueueKey>,
    cand: QueueKey,
    now: f64,
) -> f64 {
    let cand_id = cand.id;
    keys.push(cand);
    keys.sort_by_key(PopKey::of);
    let mut lanes = lanes.to_vec();
    for k in keys {
        let lane = earliest_lane(&lanes);
        let start = lanes[lane].max(now);
        if k.id == cand_id {
            return start;
        }
        lanes[lane] = start + k.estimate_ns;
    }
    unreachable!("candidate is always in the projection")
}

/// Serving-layer configuration.
#[derive(Debug, Clone)]
pub struct ServingConfig {
    /// The platform every request runs on. Its fault plan is ignored —
    /// requests carry their own ([`Request::fault`]).
    pub platform: AnaheimConfig,
    /// Breaker tuning for the per-bank health domains.
    pub breaker: BreakerConfig,
    /// Virtual execution lanes (concurrent requests in flight).
    pub workers: usize,
    /// Admission queue capacity.
    pub queue_capacity: usize,
    /// Propagate each request's deadline into the scheduler as an execution
    /// budget: a request that exhausts it is cancelled at the next segment
    /// boundary ([`Outcome::Cancelled`]) instead of running to a post-hoc
    /// miss. Off by default — the no-budget path is bit-identical to the
    /// pre-budget engine.
    pub cancel_over_budget: bool,
    /// Same-tenant batch serving: a maximal run of consecutive dispatches
    /// from one tenant (on one engine/shard — a batch never crosses a
    /// shard) shares one evaluation-key fetch. The batch head pays the
    /// full evk traffic ([`OpSequence::evk_read_bytes`]); every member
    /// that joins is reported as [`Outcome::Batched`] with the bytes it
    /// did not re-fetch. Dispatch *order* is untouched — batching is an
    /// accounting overlay on the schedule the queue already produces. Off
    /// by default: a non-batching engine is bit-identical to one built
    /// before the knob existed.
    ///
    /// [`OpSequence::evk_read_bytes`]: anaheim_core::ir::OpSequence::evk_read_bytes
    /// [`Outcome::Batched`]: crate::request::Outcome::Batched
    pub batching: bool,
    /// Batch-aware dispatch ordering: at dispatch time the engine may pull
    /// a same-tenant request forward past at most
    /// [`OrderingConfig::max_bypass`] strangers to extend the open batch,
    /// but only when every bypassed request retains non-negative projected
    /// deadline slack (each is charged the candidate's estimate against
    /// the slack budget granted at admission). The evaluation-key bytes a
    /// join amortizes are credited back to the dispatch lane as virtual
    /// time at [`OrderingConfig::evk_bytes_per_ns`], which is what turns
    /// `evk_bytes_saved` into throughput. Requires [`batching`]; `None`
    /// (the default) leaves dispatch order bit-identical to the plain
    /// batching overlay.
    ///
    /// [`batching`]: ServingConfig::batching
    pub ordering: Option<OrderingConfig>,
}

/// Tuning for batch-aware dispatch ordering
/// ([`ServingConfig::ordering`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrderingConfig {
    /// Strangers a candidate may be pulled past in one swap, and the
    /// most times any single queued request may be bypassed — the
    /// K-bypass starvation bound.
    pub max_bypass: u32,
    /// Evaluation-key fetch bandwidth used to price saved bytes into
    /// virtual nanoseconds credited to the dispatch lane (bytes per
    /// virtual ns; GB/s reads as bytes/ns).
    pub evk_bytes_per_ns: f64,
}

impl OrderingConfig {
    /// K = 4 bypasses, evk fetches priced at the A100's 1802 GB/s DRAM
    /// bandwidth (`GpuConfig::a100`), matching the `sched_evk_*` rows'
    /// streaming-time model.
    pub fn a100_default() -> Self {
        Self {
            max_bypass: 4,
            evk_bytes_per_ns: 1802.0,
        }
    }
}

impl ServingConfig {
    /// A100 near-bank platform with the serving retry policy, 4 lanes, and
    /// a 16-deep admission queue.
    pub fn a100_default(seed: u64) -> Self {
        Self {
            platform: AnaheimConfig::a100_near_bank()
                .with_retry_policy(RetryPolicy::serving_default(seed)),
            breaker: BreakerConfig::default(),
            workers: 4,
            queue_capacity: 16,
            cancel_over_budget: false,
            batching: false,
            ordering: None,
        }
    }
}

/// Evaluation-key byte accounting of same-tenant batch serving
/// ([`ServingConfig::batching`]), conserved by construction: every
/// dispatched request's [`evk_read_bytes`] lands in exactly one of
/// `hit_bytes` (joined a batch) or `miss_bytes` (opened one), so
/// `hit_bytes + miss_bytes` equals the uncached evk traffic of the same
/// schedule with batching off — the invariant `scripts/check.sh` gates on.
///
/// [`evk_read_bytes`]: anaheim_core::ir::OpSequence::evk_read_bytes
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Evk bytes amortized by batch members (equal to the bytes saved).
    pub hit_bytes: u64,
    /// Evk bytes fetched cold by batch heads.
    pub miss_bytes: u64,
    /// Closed batches (a lone dispatch is a batch of one).
    pub batches: u64,
    /// Widest batch observed.
    pub max_batch: u64,
    /// Same-tenant requests pulled forward past strangers by batch-aware
    /// ordering ([`ServingConfig::ordering`]); 0 with ordering off.
    pub reorders: u64,
    /// Reorder candidates denied because a bypassed request's slack
    /// budget or the K-bypass bound would have been exceeded.
    pub reorder_denied_slack: u64,
}

impl BatchStats {
    /// Bytes batching kept off the memory bus — the hit bytes, by
    /// construction.
    pub fn saved_bytes(&self) -> u64 {
        self.hit_bytes
    }

    /// The evk traffic the same dispatch schedule implies with batching
    /// off (the conservation baseline).
    pub fn uncached_bytes(&self) -> u64 {
        self.hit_bytes + self.miss_bytes
    }
}

/// Tracks the running same-tenant batch on one engine's dispatch lane.
/// All mutation happens on the serial virtual-time path, so the stats and
/// the batch-size histogram replay bit-identically at any thread count.
#[derive(Debug, Default)]
struct BatchState {
    /// Tenant of the open run, if one is open.
    last_tenant: Option<u32>,
    /// Dispatches in the open run.
    run_len: u64,
    stats: BatchStats,
}

impl BatchState {
    /// Notes one dispatch: a request from `tenant` whose sequence reads
    /// `evk_bytes` of evaluation keys. Returns the bytes amortized — 0 at
    /// a batch head (the head fetches cold), `evk_bytes` for a member
    /// joining the open run.
    fn note(&mut self, tenant: u32, evk_bytes: u64, tel: Option<&mut Telemetry>) -> u64 {
        if self.last_tenant == Some(tenant) {
            self.run_len += 1;
            self.stats.hit_bytes += evk_bytes;
            evk_bytes
        } else {
            self.close(tel);
            self.last_tenant = Some(tenant);
            self.run_len = 1;
            self.stats.miss_bytes += evk_bytes;
            0
        }
    }

    /// Closes the open run (if any), scoring it into the stats and the
    /// batch-size histogram.
    fn close(&mut self, tel: Option<&mut Telemetry>) {
        if self.run_len > 0 {
            self.stats.batches += 1;
            self.stats.max_batch = self.stats.max_batch.max(self.run_len);
            if let Some(t) = tel {
                t.metrics
                    .observe(names::BATCH_SIZE, &[], self.run_len as f64);
            }
            self.run_len = 0;
            self.last_tenant = None;
        }
    }
}

/// A prepared request: fused/offloaded sequence plus its fault-free cost.
/// One entry of a dry-run slack charge: the queued request's id, its
/// slack budget after absorbing the candidate's estimate, and whether
/// the charge also counts against its `max_bypass` allowance (true only
/// for requests ahead of the candidate in pop order).
type SlackCharge = (u64, f64, bool);

/// Crate-visible so the shard layer can admit/dispatch prepared work
/// through its own queues.
#[derive(Debug, Clone)]
pub(crate) struct Prepared {
    pub(crate) id: u64,
    pub(crate) tenant: u32,
    pub(crate) priority: Priority,
    pub(crate) arrival_ns: f64,
    pub(crate) deadline_ns: f64,
    pub(crate) estimate_ns: f64,
    pub(crate) fault: Option<FaultPlan>,
    pub(crate) label: &'static str,
    /// Slack budget granted at admission: the projected deadline headroom
    /// `(deadline − projected_start − estimate).max(0)`. Batch-aware
    /// ordering may delay this request by at most this much, total, across
    /// every bypass it suffers. 0 until admission grants it.
    pub(crate) slack_ns: f64,
    /// Prepared sequence, shared: requests built from the same template
    /// Arc prepare once and share the result.
    pub(crate) seq: Arc<OpSequence>,
    /// Set by the shard router when the home shard was not accepting: the
    /// home shard id, so the executing shard wraps the outcome in
    /// [`Outcome::Rerouted`].
    pub(crate) rerouted_from: Option<u32>,
}

/// Prepares a batch of requests, deduplicating by sequence identity: the
/// distinct `Arc<OpSequence>` pointers are collected serially (in
/// first-occurrence order, so the list is deterministic), fused/offloaded
/// and costed in parallel over the vendored `parpool` (pure per-template
/// work written to disjoint slots — bit-identical for every
/// `ANAHEIM_THREADS`), and the shared results fanned back out. A
/// million-request soak over six workload templates prepares six
/// sequences, not a million.
pub(crate) fn prepare_batch(rt: &Anaheim, reqs: &[Request]) -> Result<Vec<Prepared>, RunError> {
    let mut uniques: Vec<&Arc<OpSequence>> = Vec::new();
    let mut slot_of: Vec<usize> = Vec::with_capacity(reqs.len());
    for req in reqs {
        let ptr = Arc::as_ptr(&req.seq);
        let slot = match uniques.iter().position(|u| Arc::as_ptr(u) == ptr) {
            Some(i) => i,
            None => {
                uniques.push(&req.seq);
                uniques.len() - 1
            }
        };
        slot_of.push(slot);
    }
    let prepared_uniques: Vec<Result<(Arc<OpSequence>, f64), RunError>> =
        parpool::par_map(&uniques, |_, u| {
            let mut seq = (***u).clone();
            rt.prepare(&mut seq);
            let estimate_ns = rt.run_prepared(&seq)?.total_ns;
            Ok((Arc::new(seq), estimate_ns))
        });
    let prepared_uniques: Vec<(Arc<OpSequence>, f64)> =
        prepared_uniques.into_iter().collect::<Result<_, _>>()?;
    Ok(reqs
        .iter()
        .zip(&slot_of)
        .map(|(req, &slot)| {
            let (seq, estimate_ns) = &prepared_uniques[slot];
            Prepared {
                id: req.id,
                tenant: req.tenant,
                priority: req.priority,
                arrival_ns: req.arrival_ns,
                deadline_ns: req.deadline_ns,
                estimate_ns: *estimate_ns,
                fault: req.fault,
                label: req.label,
                slack_ns: 0.0,
                seq: Arc::clone(seq),
                rerouted_from: None,
            }
        })
        .collect())
}

impl Queued for Prepared {
    fn id(&self) -> u64 {
        self.id
    }
    fn priority(&self) -> Priority {
        self.priority
    }
    fn arrival_ns(&self) -> f64 {
        self.arrival_ns
    }
    fn estimate_ns(&self) -> f64 {
        self.estimate_ns
    }
}

/// The serving engine. Health state persists across traces: a bank that
/// went sick in one trace is still routed around in the next.
#[derive(Debug)]
pub struct ServingEngine {
    rt: Anaheim,
    registry: HealthRegistry,
    workers: usize,
    queue_capacity: usize,
    cancel_over_budget: bool,
    batching: bool,
    batch: BatchState,
    ordering: Option<OrderingConfig>,
    /// Per-request bypass ledger for batch-aware ordering, keyed by id:
    /// how often the queued request has been bypassed and how much of its
    /// admission-granted slack budget remains. Entries appear at first
    /// bypass and are dropped at dispatch; all mutation is on the serial
    /// dispatch path, so the ledger replays bit-identically.
    bypass_ledger: std::collections::BTreeMap<u64, (u32, f64)>,
    /// Virtual ns credited back to dispatch lanes by evk amortization.
    evk_saved_ns: f64,
}

impl ServingEngine {
    /// Builds the runtime and a health registry sized for its PIM device.
    pub fn new(cfg: ServingConfig) -> Self {
        let ServingConfig {
            mut platform,
            breaker,
            workers,
            queue_capacity,
            cancel_over_budget,
            batching,
            ordering,
        } = cfg;
        // Requests carry their own fault environments.
        platform.fault = None;
        let registry = match &platform.pim {
            Some(dev) => HealthRegistry::for_device(dev, breaker),
            None => HealthRegistry::new(1, breaker),
        };
        Self {
            rt: Anaheim::new(platform),
            registry,
            workers: workers.max(1),
            queue_capacity: queue_capacity.max(1),
            cancel_over_budget,
            batching,
            batch: BatchState::default(),
            ordering,
            bypass_ledger: std::collections::BTreeMap::new(),
            evk_saved_ns: 0.0,
        }
    }

    /// Evaluation-key byte accounting of same-tenant batching (all zeros
    /// with [`ServingConfig::batching`] off).
    pub fn evk_stats(&self) -> BatchStats {
        self.batch.stats
    }

    /// Notes one dispatch into the batch tracker (no-op returning 0 with
    /// batching off). Called from the serial dispatch loops — here and in
    /// the shard layer — immediately before execution, so the tracker
    /// sees exactly the dispatch order.
    pub(crate) fn note_batch_dispatch(
        &mut self,
        tenant: u32,
        evk_bytes: u64,
        tel: Option<&mut Telemetry>,
    ) -> u64 {
        if self.batching {
            self.batch.note(tenant, evk_bytes, tel)
        } else {
            0
        }
    }

    /// Closes the open batch at end of stream (no-op with batching off).
    pub(crate) fn flush_batch(&mut self, tel: Option<&mut Telemetry>) {
        if self.batching {
            self.batch.close(tel);
        }
    }

    /// Virtual ns the evk-fetch credit took off the dispatch lanes (0.0
    /// with [`ServingConfig::ordering`] off).
    pub fn evk_saved_ns(&self) -> f64 {
        self.evk_saved_ns
    }

    /// One dispatcher step with batch-aware ordering: the lane, start
    /// time, item, and whether the item was pulled forward out of pop
    /// order. With ordering off (or batching off) this is exactly
    /// [`next_dispatch`] + [`AdmissionQueue::pop`] — bit-identical to the
    /// plain overlay.
    ///
    /// With ordering on, when the head would break the open same-tenant
    /// run, the first `max_bypass + 1` queued items are scanned in pop
    /// order for a same-tenant candidate with nonzero evk traffic. The
    /// swap commits only if the candidate can also start by `until_ns`,
    /// every bypassed request (ahead of the candidate in pop order) has
    /// been bypassed fewer than `max_bypass` times, and *every* queued
    /// request retains enough of its admission-granted slack budget to
    /// absorb the candidate's estimate; otherwise the denial is counted
    /// and the head dispatches as usual. The whole queue is charged — not
    /// just the bypass window — because pulling a job forward perturbs
    /// lane packing for items far behind it too; list scheduling bounds
    /// any one item's extra delay by the moved job's length, so charging
    /// the full estimate to everyone is a conservative over-approximation
    /// of the imposed delay.
    pub(crate) fn select_dispatch(
        &mut self,
        queue: &AdmissionQueue<Prepared>,
        lanes: &[f64],
        until_ns: f64,
    ) -> Option<(usize, f64, Prepared, bool)> {
        let (lane, start) = next_dispatch(queue, lanes, until_ns)?;
        if let Some((key, cand_start, charged)) = self.reorder_candidate(queue, lanes, until_ns) {
            let p = queue.take(key).expect("window scan saw the candidate");
            for (id, remaining, counts_as_bypass) in &charged {
                let entry = self.bypass_ledger.entry(*id).or_insert((0, 0.0));
                if *counts_as_bypass {
                    entry.0 += 1;
                }
                entry.1 = *remaining;
            }
            self.batch.stats.reorders += 1;
            self.bypass_ledger.remove(&p.id);
            return Some((lane, cand_start, p, true));
        }
        let p = queue.pop().expect("peek saw an item");
        self.bypass_ledger.remove(&p.id);
        Some((lane, start, p, false))
    }

    /// The committed reorder, if any: the candidate's [`PopKey`], its
    /// start time, and the post-charge ledger state
    /// `(id, remaining, counts_as_bypass)` of every other queued request
    /// — `counts_as_bypass` is true for requests the candidate jumps over
    /// (ahead of it in pop order), false for requests behind it, which
    /// only pay the lane-packing charge. Denials are counted here; `None`
    /// means "dispatch the head".
    fn reorder_candidate(
        &mut self,
        queue: &AdmissionQueue<Prepared>,
        lanes: &[f64],
        until_ns: f64,
    ) -> Option<(PopKey, f64, Vec<SlackCharge>)> {
        let cfg = (self.batching).then_some(self.ordering).flatten()?;
        // Only extend an open run: a swap that *opens* a run saves no
        // fetch over letting the head open one instead.
        let run_tenant = self.batch.last_tenant?;
        if queue.peek(|p| p.tenant)? == run_tenant {
            return None;
        }
        let mut cand: Option<(u64, f64, f64)> = None;
        let key = queue.find_in_window(cfg.max_bypass as usize + 1, |_, p| {
            if p.tenant == run_tenant && p.seq.evk_read_bytes() > 0 {
                cand = Some((p.id, p.arrival_ns, p.estimate_ns));
                true
            } else {
                false
            }
        })?;
        let (cand_id, cand_arrival, cand_estimate) = cand.expect("find matched");
        let lane = earliest_lane(lanes);
        let cand_start = lanes[lane].max(cand_arrival);
        if cand_start > until_ns {
            return None;
        }
        // Dry-run the charge over the whole queue in pop order: items
        // ahead of the candidate are bypassed (K-bound applies), items
        // behind it only absorb the lane-packing perturbation.
        let mut charged: Vec<SlackCharge> = Vec::new();
        let mut before_candidate = true;
        let mut denied = false;
        queue.for_each(|p| {
            if denied {
                return;
            }
            if p.id == cand_id {
                before_candidate = false;
                return;
            }
            let (count, remaining) = self
                .bypass_ledger
                .get(&p.id)
                .copied()
                .unwrap_or((0, p.slack_ns));
            if (before_candidate && count >= cfg.max_bypass) || remaining < cand_estimate {
                denied = true;
                return;
            }
            charged.push((p.id, remaining - cand_estimate, before_candidate));
        });
        if denied {
            self.batch.stats.reorder_denied_slack += 1;
            return None;
        }
        Some((key, cand_start, charged))
    }

    /// Exports the batch byte counters idempotently, guarded so a
    /// non-batching run's exposition is byte-identical to one rendered
    /// before the counters existed.
    pub(crate) fn export_evk(&self, tel: &mut Telemetry, shard: Option<u32>) {
        let s = self.batch.stats;
        let sid = shard.map(|id| id.to_string());
        let mut labels: Vec<(&str, &str)> = Vec::new();
        if let Some(id) = &sid {
            labels.push(("shard", id));
        }
        if s.hit_bytes > 0 {
            tel.metrics
                .set_counter(names::EVK_CACHE_HIT_BYTES, &labels, s.hit_bytes);
        }
        if s.miss_bytes > 0 {
            tel.metrics
                .set_counter(names::EVK_CACHE_MISS_BYTES, &labels, s.miss_bytes);
        }
        if s.reorders > 0 {
            tel.metrics
                .set_counter(names::REORDERS, &labels, s.reorders);
        }
        if s.reorder_denied_slack > 0 {
            tel.metrics
                .set_counter(names::REORDER_DENIED_SLACK, &labels, s.reorder_denied_slack);
        }
        if self.evk_saved_ns > 0.0 {
            tel.metrics
                .set_gauge(names::EVK_SAVED_NS, &labels, self.evk_saved_ns);
        }
    }

    /// The persistent health registry.
    pub fn registry(&self) -> &HealthRegistry {
        &self.registry
    }

    /// A comparable snapshot of the health state.
    pub fn snapshot(&self) -> HealthSnapshot {
        self.registry.snapshot()
    }

    /// Serves a trace of requests, returning one response per request
    /// (sorted by id). Fails only on configuration-level errors the
    /// degradation machinery cannot absorb.
    ///
    /// ```
    /// use anaheim_core::build::{Builder, LinTransStyle};
    /// use anaheim_core::params::ParamSet;
    /// use serving::{Priority, Request, ServingConfig, ServingEngine};
    ///
    /// let mut b = Builder::new(ParamSet::paper_default());
    /// let req = Request {
    ///     id: 0,
    ///     tenant: 0,
    ///     priority: Priority::Standard,
    ///     arrival_ns: 0.0,
    ///     deadline_ns: 1e12,
    ///     seq: std::sync::Arc::new(b.lintrans(24, 4, LinTransStyle::Hoisting, true)),
    ///     fault: None,
    ///     label: "lintrans",
    /// };
    /// let mut engine = ServingEngine::new(ServingConfig::a100_default(7));
    /// let responses = engine.run_trace(&[req]).expect("serves");
    /// assert!(responses[0].outcome.is_completed());
    /// ```
    pub fn run_trace(&mut self, trace: &[Request]) -> Result<Vec<Response>, RunError> {
        self.run_trace_inner(trace, None)
    }

    /// [`run_trace`](Self::run_trace) with telemetry: each dispatched
    /// request becomes a `serving`-track span (children: its kernels),
    /// latency/slack land in histograms, and the final health snapshot is
    /// exported idempotently. Recording happens only on the serial
    /// dispatch lane, so the exports are bit-identical across
    /// `ANAHEIM_THREADS`.
    pub fn run_trace_traced(
        &mut self,
        trace: &[Request],
        tel: &mut Telemetry,
    ) -> Result<Vec<Response>, RunError> {
        self.run_trace_inner(trace, Some(tel))
    }

    fn run_trace_inner(
        &mut self,
        trace: &[Request],
        mut tel: Option<&mut Telemetry>,
    ) -> Result<Vec<Response>, RunError> {
        // Step 1: pure per-request preparation, in parallel (deduplicated
        // by template identity). Nothing is recorded here — telemetry is
        // confined to the serial lane below.
        let mut prepared = prepare_batch(&self.rt, trace)?;
        prepared.sort_by(|a, b| a.arrival_ns.total_cmp(&b.arrival_ns).then(a.id.cmp(&b.id)));

        // Steps 2–3: serial admission + dispatch in virtual time.
        let queue: AdmissionQueue<Prepared> = AdmissionQueue::new(self.queue_capacity);
        let mut lanes = vec![0.0f64; self.workers];
        let mut responses = Vec::with_capacity(trace.len());
        for mut p in prepared {
            let now = p.arrival_ns;
            self.dispatch_until(&queue, &mut lanes, now, &mut responses, tel.as_deref_mut())?;
            self.registry.counters.submitted += 1;
            if queue.len() >= self.queue_capacity {
                self.registry.counters.shed_queue_full += 1;
                Self::shed_marker(tel.as_deref_mut(), &p, "queue-full", "serving");
                responses.push(Self::rejection(&p, Rejected::QueueFull));
                continue;
            }
            let projected = Self::projected_start_ns(&lanes, &queue, &p, now);
            if projected + p.estimate_ns > p.deadline_ns {
                self.registry.counters.shed_infeasible += 1;
                Self::shed_marker(tel.as_deref_mut(), &p, "deadline-infeasible", "serving");
                responses.push(Self::rejection(&p, Rejected::DeadlineInfeasible));
                continue;
            }
            // The projected deadline headroom is the slack budget batch-
            // aware ordering may later spend delaying this request.
            p.slack_ns = (p.deadline_ns - projected - p.estimate_ns).max(0.0);
            let depth = queue.submit(p).expect("capacity checked above");
            self.registry.note_queue_depth(depth);
        }
        self.dispatch_until(
            &queue,
            &mut lanes,
            f64::INFINITY,
            &mut responses,
            tel.as_deref_mut(),
        )?;
        self.flush_batch(tel.as_deref_mut());
        if let Some(t) = tel {
            self.export_evk(t, None);
            t.export_health(&self.registry.snapshot());
        }
        responses.sort_by_key(|r| r.id);
        Ok(responses)
    }

    /// Records a zero-width shed marker at the request's arrival time on
    /// `track` (`"serving"` unsharded, `"shard-N"` per shard).
    pub(crate) fn shed_marker(
        tel: Option<&mut Telemetry>,
        p: &Prepared,
        reason: &'static str,
        track: &'static str,
    ) {
        if let Some(t) = tel {
            t.set_base_ns(0.0);
            t.trace.leaf(
                format!("req{} shed", p.id),
                "shed",
                track,
                p.arrival_ns,
                p.arrival_ns,
                vec![("reason", reason.into())],
            );
        }
    }

    /// When would `cand` start if admitted now? Simulates the lanes working
    /// through the queue in pop order with the candidate inserted at its
    /// priority position.
    pub(crate) fn projected_start_ns(
        lanes: &[f64],
        queue: &AdmissionQueue<Prepared>,
        cand: &Prepared,
        now: f64,
    ) -> f64 {
        projected_start_from_keys(
            lanes,
            queue.keys_in_pop_order(),
            QueueKey {
                id: cand.id,
                priority: cand.priority,
                arrival_ns: cand.arrival_ns,
                estimate_ns: cand.estimate_ns,
            },
            now,
        )
    }

    /// Dispatches queued requests onto lanes while one can start at or
    /// before `until_ns`.
    fn dispatch_until(
        &mut self,
        queue: &AdmissionQueue<Prepared>,
        lanes: &mut [f64],
        until_ns: f64,
        responses: &mut Vec<Response>,
        mut tel: Option<&mut Telemetry>,
    ) -> Result<(), RunError> {
        loop {
            let Some((lane, start, p, reordered)) = self.select_dispatch(queue, lanes, until_ns)
            else {
                return Ok(());
            };
            let saved =
                self.note_batch_dispatch(p.tenant, p.seq.evk_read_bytes(), tel.as_deref_mut());
            let credit_ns = self.lane_credit_ns(saved);
            let (mut response, finish) =
                self.execute(p, start, credit_ns, tel.as_deref_mut(), "serving")?;
            lanes[lane] = finish;
            if saved > 0 {
                response.outcome = Outcome::Batched {
                    evk_bytes_saved: saved,
                    reordered,
                    outcome: Box::new(response.outcome),
                };
            }
            responses.push(response);
        }
    }

    /// The virtual-time lane credit for a dispatch that amortized `saved`
    /// evk bytes: the fetch time those bytes would have cost at the
    /// ordering config's bandwidth. 0.0 with ordering off — the plain
    /// batching overlay observes savings but never converts them to time.
    pub(crate) fn lane_credit_ns(&self, saved: u64) -> f64 {
        match self.ordering {
            Some(cfg) if self.batching && saved > 0 => saved as f64 / cfg.evk_bytes_per_ns,
            _ => 0.0,
        }
    }

    /// Runs one request through the breaker-gated scheduler at virtual
    /// time `start`, recording its segment span on `track`. `credit_ns`
    /// is the evk-fetch time the dispatch amortized away (0.0 except for
    /// batch joiners under [`ServingConfig::ordering`]); it shortens the
    /// request's virtual occupancy, never below zero.
    pub(crate) fn execute(
        &mut self,
        p: Prepared,
        start: f64,
        credit_ns: f64,
        mut tel: Option<&mut Telemetry>,
        track: &'static str,
    ) -> Result<(Response, f64), RunError> {
        let rt = &self.rt;
        let registry = &mut self.registry;
        registry.set_base_ns(start);
        let span = tel.as_deref_mut().map(|t| {
            // Trace and registry share the same base so kernel spans and
            // breaker markers land inside this request's window.
            t.set_base_ns(start);
            t.open_segment(format!("req{} {}", p.id, p.label), track, 0.0)
        });
        let cfg = rt.config();
        // The run starts at local virtual time 0, so the remaining deadline
        // headroom is the budget the scheduler may spend.
        let budget_ns = self
            .cancel_over_budget
            .then_some((p.deadline_ns - start).max(0.0));
        let report = match &cfg.pim {
            Some(dev) if cfg.mode == anaheim_core::framework::ExecMode::GpuWithPim => {
                let mut s = Scheduler::with_pim(rt.model(), dev, cfg.layout)
                    .with_retry_policy(cfg.retry)
                    .with_mode(cfg.schedule);
                if let Some(plan) = p.fault {
                    s = s.with_fault_plan(plan);
                }
                if let Some(b) = budget_ns {
                    s = s.with_deadline_budget(b);
                }
                match tel.as_deref_mut() {
                    Some(t) => s.run_with_health_traced(&p.seq, registry, t)?,
                    None => s.run_with_health(&p.seq, registry)?,
                }
            }
            _ => {
                let mut s = Scheduler::gpu_only(rt.model());
                if let Some(plan) = p.fault {
                    s = s.with_fault_plan(plan);
                }
                if let Some(b) = budget_ns {
                    s = s.with_deadline_budget(b);
                }
                match tel.as_deref_mut() {
                    Some(t) => s.run_traced(&p.seq, t)?,
                    None => s.run(&p.seq)?,
                }
            }
        };
        // The amortized evk fetch shortens the virtual occupancy; the
        // realized credit is capped at the run's own duration. With
        // `credit_ns == 0.0` (ordering off, or not a joiner) this is
        // bit-identical to the uncredited path.
        let credit = credit_ns.max(0.0).min(report.total_ns);
        self.evk_saved_ns += credit;
        let total_ns = report.total_ns - credit;
        let finish = start + total_ns;
        let outcome = if report.cancelled {
            registry.counters.cancelled_over_budget += 1;
            Outcome::Cancelled {
                start_ns: start,
                consumed_ns: report.total_ns,
                segments_done: report.segments.len() as u32,
            }
        } else if report.integrity_failed {
            registry.counters.integrity_failures += 1;
            Outcome::IntegrityFailure {
                start_ns: start,
                finish_ns: finish,
            }
        } else if finish <= p.deadline_ns {
            registry.counters.completed += 1;
            Outcome::Completed {
                start_ns: start,
                finish_ns: finish,
                deadline_ns: p.deadline_ns,
                // Clamped: slack is headroom, never negative (an overrun
                // is a DeadlineMiss, counted separately).
                deadline_slack_ns: (p.deadline_ns - finish).max(0.0),
                faults: report.faults_detected,
                pim_fallbacks: report.pim_fallbacks,
                breaker_skips: report.breaker_skips,
            }
        } else {
            registry.counters.deadline_misses += 1;
            Outcome::DeadlineMiss {
                start_ns: start,
                finish_ns: finish,
                deadline_ns: p.deadline_ns,
            }
        };
        if let (Some(t), Some(id)) = (tel, span) {
            let completed = matches!(outcome, Outcome::Completed { .. });
            t.trace.annotate(id, "deadline_ns", p.deadline_ns);
            t.trace.annotate(
                id,
                "outcome",
                match outcome {
                    Outcome::Completed { .. } => "completed",
                    Outcome::Cancelled { .. } => "cancelled",
                    Outcome::IntegrityFailure { .. } => "integrity-failure",
                    _ => "deadline-miss",
                },
            );
            t.close_segment(id, total_ns);
            t.metrics.observe(names::REQUEST_LATENCY_NS, &[], total_ns);
            if completed {
                // Clamped like the outcome field: a completion's slack is
                // non-negative by construction, but the histogram must
                // never see a negative value even if the branch
                // conditions drift.
                t.metrics.observe(
                    names::DEADLINE_SLACK_NS,
                    &[],
                    (p.deadline_ns - finish).max(0.0),
                );
            } else if matches!(outcome, Outcome::DeadlineMiss { .. }) {
                // A late completion has zero slack, not negative slack:
                // record the overrun in its own counter so the slack
                // quantiles ordering decisions rely on stay non-negative.
                t.metrics.observe(names::DEADLINE_SLACK_NS, &[], 0.0);
                t.metrics.inc(names::DEADLINE_OVERRUNS, &[], 1);
            }
        }
        Ok((
            Response {
                id: p.id,
                tenant: p.tenant,
                priority: p.priority,
                label: p.label,
                outcome,
            },
            finish,
        ))
    }

    pub(crate) fn rejection(p: &Prepared, reason: Rejected) -> Response {
        Response {
            id: p.id,
            tenant: p.tenant,
            priority: p.priority,
            label: p.label,
            outcome: Outcome::Rejected(reason),
        }
    }

    /// The underlying runtime (shard layer: shared preparation).
    pub(crate) fn runtime(&self) -> &Anaheim {
        &self.rt
    }

    /// Mutable access to the registry (shard layer: fleet accounting).
    pub(crate) fn registry_mut(&mut self) -> &mut HealthRegistry {
        &mut self.registry
    }

    /// Virtual execution lanes.
    pub(crate) fn workers(&self) -> usize {
        self.workers
    }

    /// Admission queue capacity.
    pub(crate) fn queue_capacity(&self) -> usize {
        self.queue_capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anaheim_core::build::{Builder, LinTransStyle};
    use anaheim_core::params::ParamSet;
    use proptest::prelude::*;

    fn small_seq() -> Arc<OpSequence> {
        let mut b = Builder::new(ParamSet::paper_default());
        Arc::new(b.lintrans(24, 4, LinTransStyle::Hoisting, true))
    }

    fn req(id: u64, arrival: f64, deadline: f64, priority: Priority) -> Request {
        Request {
            id,
            tenant: (id % 3) as u32,
            priority,
            arrival_ns: arrival,
            deadline_ns: deadline,
            seq: small_seq(),
            fault: None,
            label: "lintrans",
        }
    }

    fn engine() -> ServingEngine {
        ServingEngine::new(ServingConfig {
            workers: 2,
            queue_capacity: 2,
            ..ServingConfig::a100_default(7)
        })
    }

    #[test]
    fn prepare_batch_dedups_shared_templates() {
        let e = engine();
        let tpl = small_seq();
        let reqs: Vec<Request> = (0..4)
            .map(|i| Request {
                id: i,
                tenant: 0,
                priority: Priority::Standard,
                arrival_ns: 0.0,
                deadline_ns: 1e12,
                seq: Arc::clone(&tpl),
                fault: None,
                label: "lintrans",
            })
            .collect();
        let prepped = prepare_batch(e.runtime(), &reqs).unwrap();
        assert_eq!(prepped.len(), 4);
        assert!(
            prepped
                .windows(2)
                .all(|w| Arc::ptr_eq(&w[0].seq, &w[1].seq)),
            "one shared template prepares once"
        );
        // The deduped estimate is bit-identical to preparing a private
        // clone of the same sequence.
        let mut lone = reqs[0].clone();
        lone.seq = Arc::new((*tpl).clone());
        let distinct = prepare_batch(e.runtime(), &[lone]).unwrap();
        assert_eq!(
            prepped[0].estimate_ns.to_bits(),
            distinct[0].estimate_ns.to_bits()
        );
        assert!(!Arc::ptr_eq(&prepped[0].seq, &distinct[0].seq));
    }

    #[test]
    fn fault_free_requests_complete_in_order() {
        let mut e = engine();
        let trace: Vec<Request> = (0..4)
            .map(|i| req(i, i as f64 * 1e3, 1e12, Priority::Standard))
            .collect();
        let rs = e.run_trace(&trace).unwrap();
        assert_eq!(rs.len(), 4);
        assert!(rs.iter().all(|r| r.outcome.is_completed()));
        assert_eq!(e.registry().counters.completed, 4);
        assert_eq!(e.registry().counters.submitted, 4);
    }

    #[test]
    fn infeasible_deadline_is_shed_not_executed() {
        let mut e = engine();
        // Deadline in the past relative to any possible completion.
        let rs = e
            .run_trace(&[req(1, 0.0, 1.0, Priority::Interactive)])
            .unwrap();
        assert_eq!(
            rs[0].outcome,
            Outcome::Rejected(Rejected::DeadlineInfeasible)
        );
        assert_eq!(e.registry().counters.shed_infeasible, 1);
        assert_eq!(e.registry().counters.completed, 0);
    }

    #[test]
    fn queue_overflow_sheds_queue_full() {
        let mut e = engine();
        // 2 lanes busy + 2 queued = saturation; the rest shed. All arrive
        // at t=0 so nothing drains in between.
        let trace: Vec<Request> = (0..7)
            .map(|i| req(i, 0.0, 1e12, Priority::Standard))
            .collect();
        let rs = e.run_trace(&trace).unwrap();
        let shed = rs
            .iter()
            .filter(|r| r.outcome == Outcome::Rejected(Rejected::QueueFull))
            .count();
        assert!(shed >= 1, "over-capacity arrivals must shed");
        assert_eq!(e.registry().counters.shed_queue_full as usize, shed);
        assert_eq!(e.registry().counters.max_queue_depth, 2);
        let served = rs.iter().filter(|r| r.outcome.is_completed()).count();
        assert_eq!(served + shed, 7);
    }

    #[test]
    fn traced_run_records_request_segments_and_health() {
        let mut e = engine();
        let trace: Vec<Request> = (0..2)
            .map(|i| req(i, i as f64 * 1e3, 1e12, Priority::Standard))
            .collect();
        let mut tel = Telemetry::new(7);
        let rs = e.run_trace_traced(&trace, &mut tel).unwrap();
        assert!(rs.iter().all(|r| r.outcome.is_completed()));
        let segments: Vec<_> = tel
            .trace
            .spans()
            .iter()
            .filter(|s| s.track == "serving" && s.cat == "segment")
            .collect();
        assert_eq!(segments.len(), 2, "one segment span per dispatched request");
        assert!(segments.iter().any(|s| s.name == "req0 lintrans"));
        // Kernel spans nest under the request segments.
        assert!(tel.trace.spans().iter().any(|s| s.cat == "element-wise"));
        // Latency observed per request; health exported once at the end.
        let lat = tel
            .metrics
            .histogram(names::REQUEST_LATENCY_NS, &[])
            .unwrap();
        assert_eq!(lat.count(), 2);
        assert_eq!(
            tel.metrics
                .counter_value(names::SERVING_EVENTS, &[("event", "submitted")]),
            2
        );
        // The same trace, replayed through a fresh engine, renders
        // byte-identically (the serial-lane determinism contract).
        let mut e2 = engine();
        let mut tel2 = Telemetry::new(7);
        e2.run_trace_traced(&trace, &mut tel2).unwrap();
        assert_eq!(tel.chrome_trace(), tel2.chrome_trace());
        assert_eq!(tel.prometheus(), tel2.prometheus());
    }

    #[test]
    fn pipelined_platform_serves_and_replays_identically() {
        use anaheim_core::schedule::ScheduleMode;
        let mk = || {
            ServingEngine::new(ServingConfig {
                workers: 2,
                queue_capacity: 4,
                platform: AnaheimConfig::a100_near_bank()
                    .with_retry_policy(RetryPolicy::serving_default(7))
                    .with_schedule_mode(ScheduleMode::Pipelined),
                breaker: BreakerConfig::default(),
                cancel_over_budget: false,
                batching: false,
                ordering: None,
            })
        };
        let trace: Vec<Request> = (0..3)
            .map(|i| req(i, i as f64 * 1e3, 1e12, Priority::Standard))
            .collect();
        let mut tel = Telemetry::new(9);
        let rs = mk().run_trace_traced(&trace, &mut tel).unwrap();
        assert!(rs.iter().all(|r| r.outcome.is_completed()));
        // Pipelined runs put segments on their own stream tracks.
        assert!(tel
            .trace
            .spans()
            .iter()
            .any(|s| s.track == "gpu-stream" || s.track == "pim-stream"));
        let mut tel2 = Telemetry::new(9);
        mk().run_trace_traced(&trace, &mut tel2).unwrap();
        assert_eq!(tel.chrome_trace(), tel2.chrome_trace());
        assert_eq!(tel.prometheus(), tel2.prometheus());
    }

    /// Generates a static-queue scenario: every item has arrived and every
    /// lane's free time is at or past the last arrival, so the projection
    /// (which clocks from `now`) and the dispatcher (which clocks from
    /// each head's arrival) see the same floor.
    fn arb_scenario() -> impl Strategy<Value = (Vec<QueueKey>, Vec<f64>)> {
        (
            prop::collection::vec((0u8..3, 0u32..8, 1u32..2000), 1..20),
            prop::collection::vec(0u32..500, 1..5),
        )
            .prop_map(|(raw, lane_offsets)| {
                let keys: Vec<QueueKey> = raw
                    .into_iter()
                    .enumerate()
                    .map(|(i, (p, arrival, estimate))| QueueKey {
                        id: i as u64,
                        priority: match p {
                            0 => Priority::Batch,
                            1 => Priority::Standard,
                            _ => Priority::Interactive,
                        },
                        arrival_ns: f64::from(arrival) * 100.0,
                        estimate_ns: f64::from(estimate),
                    })
                    .collect();
                let t = keys.iter().map(|k| k.arrival_ns).fold(0.0, f64::max);
                let lanes = lane_offsets.into_iter().map(|o| t + f64::from(o)).collect();
                (keys, lanes)
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn prop_projection_and_pop_order_match_dispatch(scenario in arb_scenario()) {
            let (keys, lanes0) = scenario;
            let now = keys.iter().map(|k| k.arrival_ns).fold(0.0, f64::max);
            let q = AdmissionQueue::new(keys.len());
            for k in &keys {
                q.submit(*k).unwrap();
            }
            let listed: Vec<u64> = q.keys_in_pop_order().iter().map(|k| k.id).collect();
            // Drain exactly the dispatcher's schedule (shared helper).
            let mut lanes = lanes0.clone();
            let mut starts = std::collections::HashMap::new();
            let mut actual: Vec<u64> = Vec::new();
            while let Some((lane, start)) = next_dispatch(&q, &lanes, f64::INFINITY) {
                let k = q.pop().expect("next_dispatch saw a head");
                starts.insert(k.id, start);
                actual.push(k.id);
                lanes[lane] = start + k.estimate_ns;
            }
            prop_assert_eq!(&actual, &listed, "keys_in_pop_order must be the dispatch order");
            // Admission projection must predict each item's actual start
            // bit-exactly, given the others queued ahead of it.
            for cand in &keys {
                let others: Vec<QueueKey> =
                    keys.iter().filter(|k| k.id != cand.id).copied().collect();
                let projected = projected_start_from_keys(&lanes0, others, *cand, now);
                prop_assert_eq!(
                    projected.to_bits(),
                    starts[&cand.id].to_bits(),
                    "projection diverged for id {} ({} vs {})",
                    cand.id,
                    projected,
                    starts[&cand.id]
                );
            }
        }
    }

    #[test]
    fn batching_amortizes_same_tenant_runs_and_conserves_bytes() {
        // One lane so dispatch order is the queue order; tenants arrive as
        // the runs A A A B B A — four batches, widest 3.
        let mk = |batching| {
            ServingEngine::new(ServingConfig {
                workers: 1,
                queue_capacity: 8,
                batching,
                ..ServingConfig::a100_default(7)
            })
        };
        let tenants = [0u32, 0, 0, 1, 1, 0];
        let trace: Vec<Request> = tenants
            .iter()
            .enumerate()
            .map(|(i, &t)| {
                let mut r = req(i as u64, i as f64, 1e12, Priority::Standard);
                r.tenant = t;
                r
            })
            .collect();
        let mut e = mk(true);
        let rs = e.run_trace(&trace).unwrap();
        assert!(rs.iter().all(|r| r.outcome.is_completed()));
        let per_req = trace[0].seq.evk_read_bytes();
        assert!(per_req > 0, "lintrans reads evaluation keys");
        // Prepared sequences are fused, so the batch tracker sees the
        // prepared evk bytes; read them back from the stats instead of
        // assuming the unfused count.
        let s = e.evk_stats();
        assert_eq!(s.batches, 3, "A-run, B-run, final A (closed by flush)");
        assert_eq!(s.max_batch, 3);
        assert_eq!(
            s.uncached_bytes(),
            s.hit_bytes + s.miss_bytes,
            "conservation by definition"
        );
        // 3 members joined batches (ids 1, 2, 4), 3 were heads.
        let saved: u64 = rs
            .iter()
            .map(|r| match r.outcome {
                Outcome::Batched {
                    evk_bytes_saved, ..
                } => evk_bytes_saved,
                _ => 0,
            })
            .sum();
        assert_eq!(
            saved, s.hit_bytes,
            "response-level and engine accounting agree"
        );
        assert_eq!(
            rs.iter()
                .filter(|r| matches!(r.outcome, Outcome::Batched { .. }))
                .count(),
            3
        );
        assert_eq!(s.hit_bytes, s.miss_bytes, "3 hits, 3 misses, equal sizes");
        // The same trace with batching off: identical final outcomes (the
        // schedule is untouched), no wrappers, zero stats.
        let mut off = mk(false);
        let rs_off = off.run_trace(&trace).unwrap();
        assert_eq!(off.evk_stats(), BatchStats::default());
        for (a, b) in rs.iter().zip(&rs_off) {
            assert_eq!(a.outcome.final_outcome(), b.outcome.final_outcome());
            assert!(!matches!(b.outcome, Outcome::Batched { .. }));
        }
        // The uncached baseline is the sum of all six dispatched evk reads.
        assert_eq!(s.uncached_bytes(), 2 * s.miss_bytes);
    }

    #[test]
    fn deadline_overrun_counts_separately_and_slack_stays_non_negative() {
        let mut e = engine();
        let mut tel = Telemetry::new(7);
        // Bypass admission (which would shed the infeasible deadline) and
        // execute directly: the miss must record 0.0 slack — never a
        // negative value — plus one overrun tick in its own counter.
        let late = prepare_batch(e.runtime(), &[req(0, 0.0, 1.0, Priority::Standard)]).unwrap();
        let (resp, _) = e
            .execute(
                late.into_iter().next().unwrap(),
                0.0,
                0.0,
                Some(&mut tel),
                "serving",
            )
            .unwrap();
        assert!(matches!(resp.outcome, Outcome::DeadlineMiss { .. }));
        let slack = tel
            .metrics
            .histogram(names::DEADLINE_SLACK_NS, &[])
            .unwrap();
        assert_eq!(slack.count(), 1);
        assert_eq!(
            slack.sum().to_bits(),
            0.0f64.to_bits(),
            "a miss is zero slack, not negative"
        );
        assert_eq!(tel.metrics.counter_value(names::DEADLINE_OVERRUNS, &[]), 1);
        // An on-time completion reports non-negative slack and leaves the
        // overrun counter alone.
        let ok = prepare_batch(e.runtime(), &[req(1, 0.0, 1e12, Priority::Standard)]).unwrap();
        let (resp, _) = e
            .execute(
                ok.into_iter().next().unwrap(),
                0.0,
                0.0,
                Some(&mut tel),
                "serving",
            )
            .unwrap();
        match resp.outcome {
            Outcome::Completed {
                deadline_slack_ns, ..
            } => assert!(deadline_slack_ns >= 0.0),
            ref o => panic!("expected completion, got {o:?}"),
        }
        let slack = tel
            .metrics
            .histogram(names::DEADLINE_SLACK_NS, &[])
            .unwrap();
        assert_eq!(slack.count(), 2);
        assert!(slack.sum() > 0.0);
        assert_eq!(tel.metrics.counter_value(names::DEADLINE_OVERRUNS, &[]), 1);
    }

    #[test]
    fn ordering_pulls_same_tenant_work_forward_within_slack() {
        let mk = |ordering| {
            ServingEngine::new(ServingConfig {
                workers: 1,
                queue_capacity: 8,
                batching: true,
                ordering,
                ..ServingConfig::a100_default(7)
            })
        };
        // One lane; tenants arrive A A B A. While the A-run is open, the
        // stranger B heads the queue with the third A right behind it:
        // ordering pulls that A forward (B has ample slack), so the run
        // closes at width 3 and the pulled request is marked reordered.
        let tenants = [0u32, 0, 1, 0];
        let trace: Vec<Request> = tenants
            .iter()
            .enumerate()
            .map(|(i, &t)| {
                let mut r = req(i as u64, i as f64, 1e12, Priority::Standard);
                r.tenant = t;
                r
            })
            .collect();
        let mut e = mk(Some(OrderingConfig::a100_default()));
        let rs = e.run_trace(&trace).unwrap();
        assert!(rs.iter().all(|r| r.outcome.final_outcome().is_completed()));
        let s = e.evk_stats();
        assert_eq!(s.reorders, 1, "{s:?}");
        assert_eq!(s.max_batch, 3, "the pulled request extends the A-run");
        assert!(
            matches!(
                rs.iter().find(|r| r.id == 3).unwrap().outcome,
                Outcome::Batched {
                    reordered: true,
                    ..
                }
            ),
            "the pulled-forward joiner is marked reordered"
        );
        assert!(
            matches!(
                rs.iter().find(|r| r.id == 1).unwrap().outcome,
                Outcome::Batched {
                    reordered: false,
                    ..
                }
            ),
            "an in-order joiner is not"
        );
        assert!(
            e.evk_saved_ns() > 0.0,
            "the amortized fetch is credited back to the lane"
        );
        // The bypassed stranger still completes within its deadline.
        assert!(rs
            .iter()
            .find(|r| r.id == 2)
            .unwrap()
            .outcome
            .is_completed());
        // Same trace with ordering off: no reorders, no credit, and the
        // run stays split by the stranger.
        let mut off = mk(None);
        let rs_off = off.run_trace(&trace).unwrap();
        assert_eq!(off.evk_stats().reorders, 0);
        assert_eq!(off.evk_saved_ns(), 0.0);
        assert!(!rs_off.iter().any(|r| matches!(
            r.outcome,
            Outcome::Batched {
                reordered: true,
                ..
            }
        )));
    }

    /// A fabricated prepared request for dispatch-order tests: no
    /// execution happens, so the sequence is shared and the cost fields
    /// are whatever the scenario says.
    fn fabricated(k: &QueueKey, tenant: u32, slack_ns: f64, seq: &Arc<OpSequence>) -> Prepared {
        Prepared {
            id: k.id,
            tenant,
            priority: k.priority,
            arrival_ns: k.arrival_ns,
            deadline_ns: f64::INFINITY,
            estimate_ns: k.estimate_ns,
            fault: None,
            label: "fabricated",
            slack_ns,
            seq: Arc::clone(seq),
            rerouted_from: None,
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Satellite: with ordering off, [`ServingEngine::select_dispatch`]
        /// is exactly pop order — `keys_in_pop_order` predicts the drain
        /// item for item, nothing is flagged reordered, and the reorder
        /// counters stay zero. (Batching stays ON: the overlay alone must
        /// never touch dispatch order.)
        #[test]
        fn prop_ordering_off_is_exact_pop_order(scenario in arb_scenario()) {
            let (keys, lanes0) = scenario;
            let seq = small_seq();
            let mut e = ServingEngine::new(ServingConfig {
                workers: lanes0.len(),
                queue_capacity: keys.len(),
                batching: true,
                ordering: None,
                ..ServingConfig::a100_default(7)
            });
            let q: AdmissionQueue<Prepared> = AdmissionQueue::new(keys.len());
            for k in &keys {
                q.submit(fabricated(k, (k.id % 3) as u32, 0.0, &seq)).unwrap();
            }
            let listed: Vec<u64> = q.keys_in_pop_order().iter().map(|k| k.id).collect();
            let mut lanes = lanes0.clone();
            let mut actual: Vec<u64> = Vec::new();
            while let Some((lane, start, p, reordered)) =
                e.select_dispatch(&q, &lanes, f64::INFINITY)
            {
                prop_assert!(!reordered, "ordering off must never reorder");
                e.note_batch_dispatch(p.tenant, p.seq.evk_read_bytes(), None);
                lanes[lane] = start + p.estimate_ns;
                actual.push(p.id);
            }
            prop_assert_eq!(&actual, &listed, "ordering off must drain in pop order");
            prop_assert_eq!(e.evk_stats().reorders, 0);
            prop_assert_eq!(e.evk_stats().reorder_denied_slack, 0);
            prop_assert_eq!(e.evk_saved_ns().to_bits(), 0.0f64.to_bits());
        }

        /// The starvation proof: with ordering on, under random
        /// arrival/priority/tenant/slack mixes, (a) no request is ever
        /// bypassed more than `max_bypass` times, and (b) every request's
        /// realized start stays within its pop-order projected start plus
        /// its granted slack budget — the reorder engine can never spend
        /// delay it was not granted.
        #[test]
        fn prop_bypass_bounded_by_k_and_slack_budget(
            scenario in arb_scenario(),
            slacks in prop::collection::vec(0u32..4000, 20),
        ) {
            let (keys, lanes0) = scenario;
            let now = keys.iter().map(|k| k.arrival_ns).fold(0.0, f64::max);
            let seq = small_seq();
            let max_bypass = 2u32;
            let mut e = ServingEngine::new(ServingConfig {
                workers: lanes0.len(),
                queue_capacity: keys.len(),
                batching: true,
                ordering: Some(OrderingConfig { max_bypass, evk_bytes_per_ns: 1802.0 }),
                ..ServingConfig::a100_default(7)
            });
            let granted: std::collections::HashMap<u64, f64> = keys
                .iter()
                .map(|k| (k.id, f64::from(slacks[k.id as usize % slacks.len()])))
                .collect();
            let q: AdmissionQueue<Prepared> = AdmissionQueue::new(keys.len());
            for k in &keys {
                q.submit(fabricated(k, (k.id % 3) as u32, granted[&k.id], &seq))
                    .unwrap();
            }
            // Pop-order baseline: the start each request was promised at
            // admission (same projection the engine grants slack against).
            let projected: std::collections::HashMap<u64, f64> = keys
                .iter()
                .map(|cand| {
                    let others: Vec<QueueKey> =
                        keys.iter().filter(|k| k.id != cand.id).copied().collect();
                    (cand.id, projected_start_from_keys(&lanes0, others, *cand, now))
                })
                .collect();
            let mut lanes = lanes0.clone();
            let mut bypasses: std::collections::HashMap<u64, u32> = Default::default();
            let mut realized: std::collections::HashMap<u64, f64> = Default::default();
            loop {
                let before: Vec<u64> = q.keys_in_pop_order().iter().map(|k| k.id).collect();
                let Some((lane, start, p, reordered)) =
                    e.select_dispatch(&q, &lanes, f64::INFINITY)
                else {
                    break;
                };
                if reordered {
                    for id in before.iter().take_while(|id| **id != p.id) {
                        *bypasses.entry(*id).or_insert(0) += 1;
                    }
                }
                e.note_batch_dispatch(p.tenant, p.seq.evk_read_bytes(), None);
                realized.insert(p.id, start);
                lanes[lane] = start + p.estimate_ns;
            }
            prop_assert_eq!(realized.len(), keys.len(), "every request dispatches: no starvation");
            for (id, count) in &bypasses {
                prop_assert!(
                    *count <= max_bypass,
                    "request {} bypassed {} times (bound {})",
                    id, count, max_bypass
                );
            }
            for k in &keys {
                let r = realized[&k.id];
                let bound = projected[&k.id] + granted[&k.id];
                prop_assert!(
                    r <= bound + 1e-6,
                    "request {} started at {} past its projected {} + slack {}",
                    k.id, r, projected[&k.id], granted[&k.id]
                );
            }
        }
    }

    #[test]
    fn interactive_jumps_the_queue() {
        let mut e = ServingEngine::new(ServingConfig {
            workers: 1,
            queue_capacity: 8,
            ..ServingConfig::a100_default(7)
        });
        // One lane: b1 runs; then batch b2..b4 and interactive i all queue.
        let mut trace = vec![
            req(0, 0.0, 1e12, Priority::Batch),
            req(1, 1.0, 1e12, Priority::Batch),
            req(2, 2.0, 1e12, Priority::Batch),
            req(3, 3.0, 1e12, Priority::Interactive),
        ];
        trace[3].label = "interactive";
        let rs = e.run_trace(&trace).unwrap();
        let finish = |id: u64| match rs.iter().find(|r| r.id == id).unwrap().outcome {
            Outcome::Completed { finish_ns, .. } => finish_ns,
            ref o => panic!("{id} should complete, got {o:?}"),
        };
        assert!(
            finish(3) < finish(1) && finish(3) < finish(2),
            "interactive must overtake queued batch work"
        );
    }
}
