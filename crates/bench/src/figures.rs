//! Figure and table generators.

use std::collections::BTreeMap;

use anaheim_core::build::{Builder, LinTransStyle};
use anaheim_core::framework::{Anaheim, AnaheimConfig};
use anaheim_core::ir::{ObjKind, OpSequence};
use anaheim_core::params::ParamSet;
use anaheim_core::report::ExecutionReport;
use gpu::config::{GpuConfig, LibraryProfile};
use gpu::kernel::{KernelClass, KernelDesc};
use gpu::model::GpuModel;
use pim::device::PimDeviceConfig;
use pim::exec::{PimExecutor, PimKernelSpec};
use pim::isa::PimInstruction;
use pim::layout::LayoutPolicy;
use workloads::{run_workload, Workload};

/// Distinct evk / plaintext bytes of a sequence (each object counted once).
fn distinct_stream_bytes(seq: &OpSequence) -> (u64, u64) {
    let mut seen = std::collections::HashSet::new();
    let (mut evk, mut pt) = (0u64, 0u64);
    for op in &seq.ops {
        for r in &op.reads {
            if seen.insert(r.id) {
                match r.kind {
                    ObjKind::Evk => evk += r.bytes,
                    ObjKind::Plaintext => pt += r.bytes,
                    _ => {}
                }
            }
        }
    }
    (evk, pt)
}

// ---------------------------------------------------------------- Fig. 1

/// One row of the Fig. 1 table: CoeffToSlot cost under an algorithm choice.
#[derive(Debug, Clone)]
pub struct Fig1Row {
    /// Algorithm name.
    pub algorithm: &'static str,
    /// Distinct evk gigabytes.
    pub evk_gb: f64,
    /// Distinct plaintext gigabytes.
    pub plaintext_gb: f64,
    /// Total (I)NTT limb transforms.
    pub ntt_limbs: u64,
    /// Key switches (ModDown bundles).
    pub keyswitches: u64,
}

/// The Fig. 1 table: CoeffToSlot (4 hoisted stages, K per stage) under
/// Base / Hoisting / MinKS.
pub fn fig1_table() -> Vec<Fig1Row> {
    let params = ParamSet::paper_default();
    let k = 31; // fftIter=4 stage density
    let stages = params.fft_iter_c2s;
    let mut rows = Vec::new();
    enum Algo {
        BsgsBase,
        BsgsHoist,
        MinKs,
    }
    for (name, algo) in [
        ("Base", Algo::BsgsBase),
        ("Hoisting", Algo::BsgsHoist),
        ("MinKS", Algo::MinKs),
    ] {
        let mut b = Builder::new(params.clone());
        let mut seq = OpSequence::new(params.clone());
        let mut level = params.l_max;
        let n1 = (k as f64).sqrt().ceil() as usize;
        for _ in 0..stages {
            let lt = match algo {
                Algo::BsgsBase => b.lintrans_bsgs_opt(level, k, n1, false),
                Algo::BsgsHoist => b.lintrans_bsgs_opt(level, k, n1, true),
                Algo::MinKs => b.lintrans(level, k, LinTransStyle::MinKS, false),
            };
            seq.keyswitches += lt.keyswitches;
            seq.ops.extend(lt.ops);
            level -= params.limbs_per_level();
        }
        let (evk, pt) = distinct_stream_bytes(&seq);
        let s = seq.summary();
        rows.push(Fig1Row {
            algorithm: name,
            evk_gb: evk as f64 / 1e9,
            plaintext_gb: pt as f64 / 1e9,
            ntt_limbs: s.total_ntt_limbs(),
            keyswitches: seq.keyswitches,
        });
    }
    rows
}

// --------------------------------------------------------------- Fig. 2a

/// One bar of Fig. 2a: a basic CKKS function under one library.
#[derive(Debug, Clone)]
pub struct Fig2aRow {
    /// Function name.
    pub function: &'static str,
    /// Library name.
    pub library: &'static str,
    /// Execution time in µs on the A100 model.
    pub time_us: f64,
    /// Breakdown (class → µs).
    pub breakdown_us: BTreeMap<&'static str, f64>,
}

/// Fig. 2a: HADD/PMULT/HMULT/HROT × {Phantom, 100x, Cheddar} on A100.
pub fn fig2a() -> Vec<Fig2aRow> {
    let params = ParamSet::paper_default();
    let mut rows = Vec::new();
    for (lib_name, lib) in [
        ("Phantom", LibraryProfile::phantom()),
        ("100x", LibraryProfile::hundredx()),
        ("Cheddar", LibraryProfile::cheddar()),
    ] {
        let cfg = AnaheimConfig {
            name: "A100",
            gpu: GpuConfig::a100_80gb(),
            library: lib,
            ..AnaheimConfig::a100_baseline()
        };
        let rt = Anaheim::new(cfg);
        let fns: Vec<(&'static str, OpSequence)> = {
            let mut b = Builder::new(params.clone());
            vec![
                ("HADD", b.hadd(params.l_max)),
                ("PMULT", b.pmult(params.l_max)),
                ("HMULT", b.hmult(params.l_max)),
                ("HROT", b.hrot(params.l_max)),
            ]
        };
        for (name, seq) in fns {
            let r = rt.run(seq).expect("preset config runs");
            rows.push(Fig2aRow {
                function: name,
                library: lib_name,
                time_us: r.total_ns / 1e3,
                breakdown_us: r.breakdown_ns.iter().map(|(k, v)| (*k, v / 1e3)).collect(),
            });
        }
    }
    rows
}

// --------------------------------------------------------------- Fig. 2b

/// One bar of Fig. 2b: bootstrapping efficiency at a decomposition number.
#[derive(Debug, Clone)]
pub struct Fig2bRow {
    /// GPU name.
    pub gpu: &'static str,
    /// Decomposition number `D`.
    pub d: usize,
    /// `T_boot,eff` in ms (None = OoM).
    pub t_boot_eff_ms: Option<f64>,
    /// Element-wise share of bootstrapping time.
    pub elementwise_share: f64,
}

/// Estimated working set of a full bootstrap at decomposition `D` (the evk
/// pool grows with `D`, driving the 4090 OoM cases of Fig. 2b).
fn boot_footprint_bytes(d: usize) -> u64 {
    const GIB: u64 = 1 << 30;
    8 * GIB + (22 * d as u64 * GIB) / 10
}

/// Fig. 2b: `T_boot,eff` vs `D` on both GPUs.
pub fn fig2b() -> Vec<Fig2bRow> {
    let mut rows = Vec::new();
    for (gpu_name, cfg) in [
        ("A100 80GB", AnaheimConfig::a100_baseline()),
        ("RTX 4090", AnaheimConfig::rtx4090_baseline()),
    ] {
        for d in [2usize, 3, 4, 6, 8] {
            let params = ParamSet::with_decomposition(d);
            let l_eff = params.l_eff;
            if boot_footprint_bytes(d) > cfg.gpu.dram_capacity_bytes as u64 {
                rows.push(Fig2bRow {
                    gpu: gpu_name,
                    d,
                    t_boot_eff_ms: None,
                    elementwise_share: 0.0,
                });
                continue;
            }
            let mut b = Builder::new(params);
            let seq = b.bootstrap();
            let rt = Anaheim::new(cfg.clone());
            let r = rt.run(seq).expect("preset config runs");
            rows.push(Fig2bRow {
                gpu: gpu_name,
                d,
                t_boot_eff_ms: Some(r.total_ms() / l_eff as f64),
                elementwise_share: r.fraction("element-wise"),
            });
        }
    }
    rows
}

// --------------------------------------------------------------- Fig. 2c

/// One bar of Fig. 2c: bootstrapping with an algorithm choice.
#[derive(Debug, Clone)]
pub struct Fig2cRow {
    /// Algorithm (Base / Hoist / MinKS).
    pub algorithm: &'static str,
    /// `T_boot,eff` in ms on A100.
    pub t_boot_eff_ms: f64,
    /// Element-wise share.
    pub elementwise_share: f64,
}

/// Builds a bootstrap whose linear-transform stages use the given style
/// (the hoisted default builds BSGS; Base/MinKS substitute the §III-B
/// alternatives at matching diagonal counts).
fn bootstrap_with_style(style: Option<LinTransStyle>) -> OpSequence {
    let params = ParamSet::paper_default();
    match style {
        None => {
            let mut b = Builder::new(params);
            b.bootstrap()
        }
        Some(style) => {
            // Replace the 7 transform stages with the requested style; the
            // EvalMod core is shared.
            let mut b = Builder::new(params.clone());
            let mut seq = OpSequence::new(params.clone());
            let mut level = params.l_max;
            let k = 31;
            for _ in 0..(params.fft_iter_c2s + params.fft_iter_s2c) {
                let lt = b.lintrans(level, k, style, false);
                seq.keyswitches += lt.keyswitches;
                seq.ops.extend(lt.ops);
                level -= params.limbs_per_level();
            }
            // EvalMod from the default bootstrap, approximated by building
            // the full default and keeping its non-lintrans share — here we
            // simply append the default EvalMod-equivalent mult chain.
            let mut b2 = Builder::new(params.clone());
            for s in 0..26usize {
                let lvl = params.l_max - 8 - 2 * (s / 4);
                let h = b2.hmult(lvl);
                seq.keyswitches += h.keyswitches;
                seq.ops.extend(h.ops);
            }
            seq
        }
    }
}

/// Fig. 2c: Base vs Hoist vs MinKS bootstrapping on A100 (D = 4).
pub fn fig2c() -> Vec<Fig2cRow> {
    let rt = Anaheim::new(AnaheimConfig::a100_baseline());
    let l_eff = ParamSet::paper_default().l_eff as f64;
    [
        ("Base", Some(LinTransStyle::Base)),
        ("Hoist", None),
        ("MinKS", Some(LinTransStyle::MinKS)),
    ]
    .into_iter()
    .map(|(name, style)| {
        let r = rt
            .run(bootstrap_with_style(style))
            .expect("preset config runs");
        Fig2cRow {
            algorithm: name,
            t_boot_eff_ms: r.total_ms() / l_eff,
            elementwise_share: r.fraction("element-wise"),
        }
    })
    .collect()
}

// ---------------------------------------------------------------- Fig. 3

/// One bar of Fig. 3: fftIter sensitivity.
#[derive(Debug, Clone)]
pub struct Fig3Row {
    /// (CoeffToSlot, SlotToCoeff) fftIter pair.
    pub fft_iter: (usize, usize),
    /// `T_boot,eff` in ms on A100 (None = OoM).
    pub t_boot_eff_ms: Option<f64>,
    /// Element-wise share.
    pub elementwise_share: f64,
}

/// Fig. 3: `T_boot,eff` vs fftIter on A100.
pub fn fig3() -> Vec<Fig3Row> {
    let rt = Anaheim::new(AnaheimConfig::a100_baseline());
    [(3, 3), (4, 3), (4, 4), (5, 5), (6, 6)]
        .into_iter()
        .map(|(c2s, s2c)| {
            let params = ParamSet::paper_default().with_fft_iter(c2s, s2c);
            let l_eff = params.l_eff as f64;
            let mut b = Builder::new(params);
            let seq = b.bootstrap();
            let r = rt.run(seq).expect("preset config runs");
            Fig3Row {
                fft_iter: (c2s, s2c),
                t_boot_eff_ms: Some(r.total_ms() / l_eff),
                elementwise_share: r.fraction("element-wise"),
            }
        })
        .collect()
}

// ---------------------------------------------------------------- Fig. 4

/// Fig. 4a: Gantt charts of the running-example linear transform
/// (K = 8, D = 4) under the three platforms.
pub fn fig4a() -> Vec<(String, ExecutionReport)> {
    let params = ParamSet::paper_default();
    let mk = || {
        let mut b = Builder::new(params.clone());
        b.lintrans(params.l_max, 8, LinTransStyle::Hoisting, true)
    };
    [
        AnaheimConfig::a100_baseline(),
        AnaheimConfig::a100_4x_bandwidth(),
        AnaheimConfig::a100_near_bank(),
    ]
    .into_iter()
    .map(|cfg| {
        let name = cfg.name.to_string();
        (
            name,
            Anaheim::new(cfg).run(mk()).expect("preset config runs"),
        )
    })
    .collect()
}

/// Fig. 4b rows: bootstrapping DRAM access and energy.
#[derive(Debug, Clone)]
pub struct Fig4bRow {
    /// Configuration.
    pub config: &'static str,
    /// GPU-side DRAM gigabytes.
    pub gpu_dram_gb: f64,
    /// PIM-side gigabytes.
    pub pim_dram_gb: f64,
    /// DRAM access energy (J).
    pub dram_energy_j: f64,
}

/// Fig. 4b: bootstrapping DRAM access/energy — baseline, PIM, and the
/// ideal unlimited-cache case (which uses MinKS to dedupe evks).
pub fn fig4b() -> Vec<Fig4bRow> {
    let mut b = Builder::new(ParamSet::paper_default());
    let seq = b.bootstrap();

    let base = Anaheim::new(AnaheimConfig::a100_baseline())
        .run(seq.clone())
        .expect("preset config runs");
    let pimr = Anaheim::new(AnaheimConfig::a100_near_bank())
        .run(seq.clone())
        .expect("preset config runs");

    // Ideal: unlimited cache, compulsory misses only; MinKS would reuse a
    // single rotation key, cutting the distinct evk pool ~4× (§V-D).
    let (evk, pt) = distinct_stream_bytes(&seq);
    let ideal_bytes = evk / 4 + pt;
    let hbm = dram::config::DramEnergyParams::hbm2e();
    let per_byte = |dest_pj: f64| (hbm.array_pj_per_bit + dest_pj) * 8.0 * 1e-12;

    vec![
        Fig4bRow {
            config: "w/o PIM (baseline)",
            gpu_dram_gb: base.gpu_dram_bytes as f64 / 1e9,
            pim_dram_gb: 0.0,
            dram_energy_j: base.gpu_dram_bytes as f64 * per_byte(hbm.offchip_pj_per_bit),
        },
        Fig4bRow {
            config: "with PIM",
            gpu_dram_gb: pimr.gpu_dram_bytes as f64 / 1e9,
            pim_dram_gb: pimr.pim_dram_bytes as f64 / 1e9,
            dram_energy_j: pimr.gpu_dram_bytes as f64 * per_byte(hbm.offchip_pj_per_bit)
                + pimr.pim_dram_bytes as f64 * per_byte(hbm.nearbank_move_pj_per_bit),
        },
        Fig4bRow {
            config: "ideal (unlimited cache, MinKS)",
            gpu_dram_gb: ideal_bytes as f64 / 1e9,
            pim_dram_gb: 0.0,
            dram_energy_j: ideal_bytes as f64 * per_byte(hbm.offchip_pj_per_bit),
        },
    ]
}

// ---------------------------------------------------------------- Fig. 8

/// One group of Fig. 8 bars: a workload on one Anaheim configuration.
#[derive(Debug, Clone)]
pub struct Fig8Row {
    /// Workload name.
    pub workload: &'static str,
    /// Anaheim configuration name.
    pub config: &'static str,
    /// Speedup over the matching GPU-only baseline (None = OoM).
    pub speedup: Option<f64>,
    /// Energy-efficiency improvement.
    pub energy_gain: Option<f64>,
    /// EDP improvement.
    pub edp_gain: Option<f64>,
    /// Absolute Anaheim time in ms.
    pub time_ms: Option<f64>,
}

/// Fig. 8: all six workloads × the three Anaheim configurations.
pub fn fig8() -> Vec<Fig8Row> {
    let pairs = [
        (
            AnaheimConfig::a100_baseline(),
            AnaheimConfig::a100_near_bank(),
        ),
        (
            AnaheimConfig::a100_baseline(),
            AnaheimConfig::a100_custom_hbm(),
        ),
        (
            AnaheimConfig::rtx4090_baseline(),
            AnaheimConfig::rtx4090_near_bank(),
        ),
    ];
    let mut rows = Vec::new();
    for (base_cfg, pim_cfg) in pairs {
        let base = Anaheim::new(base_cfg);
        let pimrt = Anaheim::new(pim_cfg);
        for w in Workload::all() {
            let b = run_workload(&base, &w).expect("preset config runs").outcome;
            let p = run_workload(&pimrt, &w)
                .expect("preset config runs")
                .outcome;
            let row = match (b, p) {
                (Some(b), Some(p)) => Fig8Row {
                    workload: w.name,
                    config: pimrt.config().name,
                    speedup: Some(b.time_ms / p.time_ms),
                    energy_gain: Some(b.energy_j / p.energy_j),
                    edp_gain: Some(b.edp() / p.edp()),
                    time_ms: Some(p.time_ms),
                },
                _ => Fig8Row {
                    workload: w.name,
                    config: pimrt.config().name,
                    speedup: None,
                    energy_gain: None,
                    edp_gain: None,
                    time_ms: None,
                },
            };
            rows.push(row);
        }
    }
    rows
}

// ---------------------------------------------------------------- Fig. 9

/// One point of Fig. 9: a PIM instruction at a buffer size.
#[derive(Debug, Clone)]
pub struct Fig9Row {
    /// Device name.
    pub device: &'static str,
    /// Instruction mnemonic.
    pub instruction: String,
    /// Buffer entries `B`.
    pub buffer: usize,
    /// Speedup over the GPU executing the same op (None = unsupported).
    pub speedup: Option<f64>,
    /// Energy-efficiency improvement over the GPU.
    pub energy_gain: Option<f64>,
}

/// Fig. 9: per-instruction microbenchmark across buffer sizes.
pub fn fig9() -> Vec<Fig9Row> {
    let n = 1usize << 16;
    let limbs = 54usize;
    let mut rows = Vec::new();
    for base_dev in PimDeviceConfig::all() {
        let gpu_cfg = if base_dev.dram.external_bw_gbps > 1200.0 {
            GpuConfig::a100_80gb()
        } else {
            GpuConfig::rtx4090()
        };
        let gm = GpuModel::new(gpu_cfg, LibraryProfile::cheddar());
        for instr in PimInstruction::table2(4) {
            for b in [4usize, 8, 16, 32, 64] {
                let dev = base_dev.clone().with_buffer_entries(b);
                let exec = PimExecutor::new(&dev, LayoutPolicy::ColumnPartitioned);
                let spec = PimKernelSpec { instr, limbs, n };
                let r = match exec.execute(&spec) {
                    Ok(r) => r,
                    // Unsupported at this buffer size: an empty bar.
                    Err(_) => {
                        rows.push(Fig9Row {
                            device: dev.name,
                            instruction: instr.mnemonic(),
                            buffer: b,
                            speedup: None,
                            energy_gain: None,
                        });
                        continue;
                    }
                };
                let bytes = exec.gpu_bytes_equivalent(&spec);
                let gk = KernelDesc::new(
                    KernelClass::ElementWise,
                    (n * limbs) as u64 * instr.mmac_ops_per_element() as u64 * 6,
                    bytes / 2,
                    bytes - bytes / 2,
                );
                let gc = gm.cost(&gk);
                rows.push(Fig9Row {
                    device: dev.name,
                    instruction: instr.mnemonic(),
                    buffer: b,
                    speedup: Some(gc.time_ns / r.latency_ns),
                    energy_gain: Some(gc.energy_j / r.energy_joules(&dev)),
                });
            }
        }
    }
    rows
}

// --------------------------------------------------------------- Fig. 10

/// One bar of Fig. 10: a workload under an incremental configuration.
#[derive(Debug, Clone)]
pub struct Fig10Row {
    /// Workload name.
    pub workload: &'static str,
    /// Configuration label.
    pub config: &'static str,
    /// Execution time in ms (per the workload's unit).
    pub time_ms: Option<f64>,
    /// Element-wise time in ms.
    pub elementwise_ms: Option<f64>,
}

/// Fig. 10: fusion sensitivity on A100 near-bank, plus the w/o-CP layout
/// ablation.
pub fn fig10() -> Vec<Fig10Row> {
    use anaheim_core::passes::FusionConfig;
    let mut rows = Vec::new();
    let configs: Vec<(&'static str, AnaheimConfig)> = vec![
        ("Base (GPU)", {
            let mut c = AnaheimConfig::a100_baseline();
            c.fusion = FusionConfig::none();
            c
        }),
        ("+BasicFuse (GPU)", {
            let mut c = AnaheimConfig::a100_baseline();
            c.fusion = FusionConfig::basic_only();
            c
        }),
        ("+ExtraFuse (GPU)", AnaheimConfig::a100_baseline()),
        ("PIM-Base", {
            let mut c = AnaheimConfig::a100_near_bank();
            c.fusion = FusionConfig::none();
            c
        }),
        ("PIM +BasicFuse", {
            let mut c = AnaheimConfig::a100_near_bank();
            c.fusion = FusionConfig::basic_only();
            c
        }),
        ("PIM +AutFuse", AnaheimConfig::a100_near_bank()),
        ("PIM w/o CP", {
            let mut c = AnaheimConfig::a100_near_bank();
            c.layout = LayoutPolicy::Contiguous;
            c
        }),
    ];
    for w in Workload::all() {
        for (label, cfg) in &configs {
            let rt = Anaheim::new(cfg.clone());
            let r = run_workload(&rt, &w).expect("preset config runs");
            match r.outcome {
                Some(nums) => rows.push(Fig10Row {
                    workload: w.name,
                    config: label,
                    time_ms: Some(nums.time_ms),
                    elementwise_ms: Some(
                        nums.breakdown_ms
                            .get("element-wise")
                            .copied()
                            .unwrap_or(0.0),
                    ),
                }),
                None => rows.push(Fig10Row {
                    workload: w.name,
                    config: label,
                    time_ms: None,
                    elementwise_ms: None,
                }),
            }
        }
    }
    rows
}

// --------------------------------------------------------------- Table V

/// One row of Table V.
#[derive(Debug, Clone)]
pub struct Table5Row {
    /// System name.
    pub system: &'static str,
    /// Whether the numbers come from this reproduction or the literature.
    pub measured: bool,
    /// Boot / HELR / ResNet20 / Sort times in ms (None = not reported or
    /// OoM).
    pub boot_ms: Option<f64>,
    /// HELR per-iteration ms.
    pub helr_ms: Option<f64>,
    /// ResNet20 ms.
    pub resnet20_ms: Option<f64>,
    /// Sort ms.
    pub sort_ms: Option<f64>,
}

/// Table V: Anaheim (measured by the model) against the literature
/// constants the paper tabulates.
pub fn table5() -> Vec<Table5Row> {
    let lit = |system, boot, helr, r20, sort| Table5Row {
        system,
        measured: false,
        boot_ms: boot,
        helr_ms: helr,
        resnet20_ms: r20,
        sort_ms: sort,
    };
    let mut rows = vec![
        lit("100x (V100)", Some(328.0), Some(775.0), None, None),
        lit(
            "TensorFHE (A100)",
            Some(250.0),
            Some(1007.0),
            Some(4940.0),
            None,
        ),
        lit("GME (MI100)", Some(33.6), Some(54.5), Some(980.0), None),
        lit("FAB (FPGA)", Some(477.0), Some(103.0), None, None),
        lit(
            "Poseidon (FPGA)",
            Some(128.0),
            Some(72.9),
            Some(2660.0),
            None,
        ),
        lit(
            "CraterLake (ASIC)",
            Some(6.33),
            Some(3.81),
            Some(320.0),
            None,
        ),
        lit(
            "BTS (ASIC)",
            Some(28.6),
            Some(28.4),
            Some(1910.0),
            Some(15600.0),
        ),
        lit(
            "ARK (ASIC)",
            Some(3.52),
            Some(7.42),
            Some(130.0),
            Some(1990.0),
        ),
        lit(
            "SHARP (ASIC)",
            Some(3.12),
            Some(2.53),
            Some(100.0),
            Some(1380.0),
        ),
    ];
    for cfg in [
        AnaheimConfig::a100_near_bank(),
        AnaheimConfig::a100_custom_hbm(),
        AnaheimConfig::rtx4090_near_bank(),
    ] {
        let rt = Anaheim::new(cfg);
        let get = |w: Workload| {
            run_workload(&rt, &w)
                .expect("preset config runs")
                .outcome
                .map(|n| n.time_ms)
        };
        rows.push(Table5Row {
            system: rt.config().name,
            measured: true,
            boot_ms: get(Workload::boot()),
            helr_ms: get(Workload::helr()),
            resnet20_ms: get(Workload::resnet20()),
            sort_ms: get(Workload::sort()),
        });
    }
    rows
}

/// Table III: the evaluated configurations (inputs, printed for
/// completeness).
pub fn table3() -> Vec<(String, PimDeviceConfig)> {
    PimDeviceConfig::all()
        .into_iter()
        .map(|d| {
            (
                format!(
                    "{}: {:.3} TOPS, B={}, {}x BW, {:.2} mm2 ({:.2}%)",
                    d.name,
                    d.peak_tops(),
                    d.buffer_entries,
                    d.bw_increase,
                    d.area_mm2,
                    d.area_overhead_pct
                ),
                d,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_hoisting_cuts_ntt_and_minks_cuts_evks() {
        let rows = fig1_table();
        let base = &rows[0];
        let hoist = &rows[1];
        let minks = &rows[2];
        // Hoisting: substantial (I)NTT reduction. The paper reports 2.47×
        // for its exact CoeffToSlot configuration; our BSGS baseline
        // already shares the giant-step structure, so the measured delta
        // (the baby-ModUp sharing) is smaller but must stay clearly > 1.
        let ntt_ratio = base.ntt_limbs as f64 / hoist.ntt_limbs as f64;
        assert!(
            (1.25..4.0).contains(&ntt_ratio),
            "hoisting NTT reduction (paper: 2.47×), got {ntt_ratio:.2}"
        );
        // MinKS: ~K× fewer distinct evk bytes than hoisting.
        assert!(
            minks.evk_gb < hoist.evk_gb / 4.0,
            "MinKS must use ≥4× fewer evk bytes (Fig. 1): {} vs {}",
            minks.evk_gb,
            hoist.evk_gb
        );
        // Hoisting plaintexts are larger (PQ lift).
        assert!(hoist.plaintext_gb >= minks.plaintext_gb);
    }

    #[test]
    fn fig2a_cheddar_fastest() {
        let rows = fig2a();
        let t = |f: &str, l: &str| {
            rows.iter()
                .find(|r| r.function == f && r.library == l)
                .expect("row")
                .time_us
        };
        for f in ["HMULT", "HROT"] {
            assert!(t(f, "Cheddar") < t(f, "100x"), "{f}");
            assert!(t(f, "Cheddar") < t(f, "Phantom"), "{f}");
            let ratio = t(f, "100x") / t(f, "Cheddar");
            assert!(
                (1.2..2.2).contains(&ratio),
                "{f}: Cheddar ≈1.5-1.8× faster, got {ratio:.2}"
            );
        }
    }

    #[test]
    fn fig2b_shares_and_oom() {
        let rows = fig2b();
        for r in &rows {
            if r.t_boot_eff_ms.is_some() {
                if r.gpu == "A100 80GB" {
                    assert!(
                        (0.30..0.60).contains(&r.elementwise_share),
                        "A100 D={} share {:.2}",
                        r.d,
                        r.elementwise_share
                    );
                } else {
                    assert!(
                        r.elementwise_share > 0.55,
                        "4090 D={} share {:.2}",
                        r.d,
                        r.elementwise_share
                    );
                }
            }
        }
        // The 4090 runs out of memory at the largest D.
        assert!(rows
            .iter()
            .any(|r| r.gpu == "RTX 4090" && r.t_boot_eff_ms.is_none()));
        // The A100 never does.
        assert!(rows
            .iter()
            .filter(|r| r.gpu == "A100 80GB")
            .all(|r| r.t_boot_eff_ms.is_some()));
    }

    #[test]
    fn fig3_default_mix_wins() {
        let rows = fig3();
        let best = rows
            .iter()
            .min_by(|a, b| {
                a.t_boot_eff_ms
                    .unwrap_or(f64::MAX)
                    .total_cmp(&b.t_boot_eff_ms.unwrap_or(f64::MAX))
            })
            .expect("rows");
        // The (4,3) default mix (or its neighbour) should win; fftIter=6
        // must lose on L_eff despite smaller transforms (the Fig. 3
        // trade-off).
        assert!(
            best.fft_iter.0 <= 4,
            "default mix should win, got {:?}",
            best.fft_iter
        );
        let six = rows.iter().find(|r| r.fft_iter == (6, 6)).expect("66");
        assert!(six.t_boot_eff_ms.unwrap() > best.t_boot_eff_ms.unwrap());
    }

    #[test]
    fn fig9_ranges() {
        let rows = fig9();
        // Default buffers: B=16 (A100s) and B=32 (4090).
        let defaults: Vec<&Fig9Row> = rows
            .iter()
            .filter(|r| {
                (r.device.contains("A100") && r.buffer == 16)
                    || (r.device.contains("4090") && r.buffer == 32)
            })
            .collect();
        let speedups: Vec<f64> = defaults.iter().filter_map(|r| r.speedup).collect();
        let min = speedups.iter().cloned().fold(f64::MAX, f64::min);
        let max = speedups.iter().cloned().fold(0.0, f64::max);
        // Paper: 1.65–10.33× speedups at default configs.
        assert!(min > 1.2, "weakest instruction speedup too low: {min:.2}");
        assert!(max < 20.0, "strongest speedup implausible: {max:.2}");
        assert!(
            max > 4.0,
            "compound instructions must show big wins: {max:.2}"
        );
        // PAccum/CAccum are among the best (paper: 7.26×/10.33×).
        let paccum = defaults
            .iter()
            .filter(|r| {
                r.instruction.starts_with("PAccum")
                    && r.device.contains("near-bank")
                    && r.device.contains("A100")
            })
            .filter_map(|r| r.speedup)
            .next()
            .expect("paccum row");
        let add = defaults
            .iter()
            .filter(|r| {
                r.instruction == "Add"
                    && r.device.contains("near-bank")
                    && r.device.contains("A100")
            })
            .filter_map(|r| r.speedup)
            .next()
            .expect("add row");
        assert!(
            paccum > 1.5 * add,
            "PAccum must beat Add: {paccum:.2} vs {add:.2}"
        );
        // Unsupported at B=4: PAccum<4> and Tensor.
        assert!(rows
            .iter()
            .any(|r| r.buffer == 4 && r.instruction == "PAccum<4>" && r.speedup.is_none()));
    }
}
