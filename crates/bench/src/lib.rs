//! The benchmark harness: regenerates every table and figure of the
//! paper's evaluation (§IV, §VII, §VIII) from the reproduction's models.
//!
//! Each `figN` module returns structured rows so the `figures` binary can
//! print them and the integration tests can assert the paper's *shape*
//! targets (who wins, by roughly what factor, where crossovers fall — see
//! DESIGN.md §4).

pub mod figures;

pub use figures::*;
