//! Regenerates every table and figure of the Anaheim evaluation.
//!
//! Usage: `figures [fig1|fig2a|fig2b|fig2c|fig3|fig4a|fig4b|fig8|fig9|fig10|table3|table5|all]`

use anaheim_bench::figures::*;

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    let all = arg == "all";
    if all || arg == "table3" {
        print_table3();
    }
    if all || arg == "fig1" {
        print_fig1();
    }
    if all || arg == "fig2a" {
        print_fig2a();
    }
    if all || arg == "fig2b" {
        print_fig2b();
    }
    if all || arg == "fig2c" {
        print_fig2c();
    }
    if all || arg == "fig3" {
        print_fig3();
    }
    if all || arg == "fig4a" {
        print_fig4a();
    }
    if all || arg == "fig4b" {
        print_fig4b();
    }
    if all || arg == "fig8" {
        print_fig8();
    }
    if all || arg == "fig9" {
        print_fig9();
    }
    if all || arg == "fig10" {
        print_fig10();
    }
    if all || arg == "table5" {
        print_table5();
    }
}

fn hr(title: &str) {
    println!(
        "\n=== {title} {}",
        "=".repeat(66usize.saturating_sub(title.len()))
    );
}

fn print_table3() {
    hr("Table III: Anaheim configurations");
    for (line, _) in table3() {
        println!("  {line}");
    }
}

fn print_fig1() {
    hr("Fig. 1 (table): CoeffToSlot under Base / Hoisting / MinKS");
    println!(
        "  {:10} {:>10} {:>14} {:>12} {:>12}",
        "algorithm", "evks (GB)", "plaintexts(GB)", "#(I)NTT", "keyswitches"
    );
    for r in fig1_table() {
        println!(
            "  {:10} {:>10.2} {:>14.2} {:>12} {:>12}",
            r.algorithm, r.evk_gb, r.plaintext_gb, r.ntt_limbs, r.keyswitches
        );
    }
    println!("  paper shape: hoisting cuts #(I)NTT ~2.47x; MinKS needs ~4x fewer evks");
}

fn print_fig2a() {
    hr("Fig. 2a: basic CKKS functions x libraries (A100 model)");
    println!(
        "  {:8} {:>10} {:>12} {:>12}",
        "function", "Phantom", "100x", "Cheddar"
    );
    let rows = fig2a();
    for f in ["HADD", "PMULT", "HMULT", "HROT"] {
        let t = |lib: &str| {
            rows.iter()
                .find(|r| r.function == f && r.library == lib)
                .map(|r| r.time_us)
                .unwrap_or(f64::NAN)
        };
        println!(
            "  {:8} {:>9.1}us {:>11.1}us {:>11.1}us",
            f,
            t("Phantom"),
            t("100x"),
            t("Cheddar")
        );
    }
}

fn print_fig2b() {
    hr("Fig. 2b: T_boot,eff vs decomposition number D");
    println!(
        "  {:12} {:>3} {:>14} {:>16}",
        "GPU", "D", "T_boot,eff", "elementwise"
    );
    for r in fig2b() {
        match r.t_boot_eff_ms {
            Some(t) => println!(
                "  {:12} {:>3} {:>11.2} ms {:>15.0}%",
                r.gpu,
                r.d,
                t,
                100.0 * r.elementwise_share
            ),
            None => println!("  {:12} {:>3} {:>14} {:>16}", r.gpu, r.d, "OoM", "-"),
        }
    }
    println!("  paper shape: EW 45-48% (A100), 68-69% (4090); OoM at large D on 4090");
}

fn print_fig2c() {
    hr("Fig. 2c: T_boot,eff under Base / Hoist / MinKS (A100, D=4)");
    for r in fig2c() {
        println!(
            "  {:8} {:>8.2} ms  (element-wise {:>4.0}%)",
            r.algorithm,
            r.t_boot_eff_ms,
            100.0 * r.elementwise_share
        );
    }
    println!("  paper shape: Hoist clearly fastest; MinKS ~ Base on GPUs");
}

fn print_fig3() {
    hr("Fig. 3: T_boot,eff vs fftIter (A100)");
    for r in fig3() {
        match r.t_boot_eff_ms {
            Some(t) => println!(
                "  fftIter {:?}: {:>8.2} ms  (element-wise {:>4.0}%)",
                r.fft_iter,
                t,
                100.0 * r.elementwise_share
            ),
            None => println!("  fftIter {:?}: OoM", r.fft_iter),
        }
    }
    println!("  paper shape: the default 4/3 mix wins; fftIter=6 loses via L_eff");
}

fn print_fig4a() {
    hr("Fig. 4a: linear transform (K=8) Gantt charts");
    for (name, report) in fig4a() {
        println!("\n  [{name}] {}", report.summary_line());
        print!("{}", report.render_gantt(100));
    }
}

fn print_fig4b() {
    hr("Fig. 4b: bootstrapping DRAM access & energy");
    println!(
        "  {:32} {:>10} {:>10} {:>12}",
        "config", "GPU (GB)", "PIM (GB)", "energy (J)"
    );
    for r in fig4b() {
        println!(
            "  {:32} {:>10.2} {:>10.2} {:>12.3}",
            r.config, r.gpu_dram_gb, r.pim_dram_gb, r.dram_energy_j
        );
    }
    println!("  paper shape: PIM slashes GPU-side DRAM ~6x; DRAM energy ~2.9x");
}

fn print_fig8() {
    hr("Fig. 8: workload speedup / energy / EDP gains");
    println!(
        "  {:16} {:26} {:>8} {:>8} {:>8} {:>10}",
        "workload", "config", "speedup", "energy", "EDP", "time"
    );
    for r in fig8() {
        match (r.speedup, r.energy_gain, r.edp_gain, r.time_ms) {
            (Some(s), Some(e), Some(d), Some(t)) => println!(
                "  {:16} {:26} {:>7.2}x {:>7.2}x {:>7.2}x {:>8.1}ms",
                r.workload, r.config, s, e, d, t
            ),
            _ => println!(
                "  {:16} {:26} {:>8} {:>8} {:>8} {:>10}",
                r.workload, r.config, "OoM", "-", "-", "-"
            ),
        }
    }
    println!("  paper shape: speedups 1.06-1.74x, EDP gains 1.62-3.14x, R20/R18 OoM on 4090");
}

fn print_fig9() {
    hr("Fig. 9: PIM instruction microbenchmark vs buffer size B");
    let rows = fig9();
    let devices: Vec<&str> = {
        let mut v: Vec<&str> = rows.iter().map(|r| r.device).collect();
        v.dedup();
        v
    };
    for dev in devices {
        println!("\n  [{dev}] speedup over GPU (columns: B = 4, 8, 16, 32, 64)");
        let mut seen = std::collections::BTreeSet::new();
        for r in rows.iter().filter(|r| r.device == dev) {
            if !seen.insert(r.instruction.clone()) {
                continue;
            }
            let line: Vec<String> = [4usize, 8, 16, 32, 64]
                .iter()
                .map(|b| {
                    rows.iter()
                        .find(|x| {
                            x.device == dev && x.instruction == r.instruction && x.buffer == *b
                        })
                        .and_then(|x| x.speedup)
                        .map(|s| format!("{s:5.2}x"))
                        .unwrap_or_else(|| "   n/s".into())
                })
                .collect();
            println!("    {:12} {}", r.instruction, line.join(" "));
        }
    }
    println!("\n  paper shape: 1.65-10.3x at default B; PAccum/CAccum highest; saturates with B");
}

fn print_fig10() {
    hr("Fig. 10: fusion & layout sensitivity (times in ms)");
    let rows = fig10();
    let configs: Vec<&str> = {
        let mut v: Vec<&str> = Vec::new();
        for r in &rows {
            if !v.contains(&r.config) {
                v.push(r.config);
            }
        }
        v
    };
    print!("  {:16}", "workload");
    for c in &configs {
        print!(" {c:>16}");
    }
    println!();
    let mut seen = std::collections::BTreeSet::new();
    for r in &rows {
        if !seen.insert(r.workload) {
            continue;
        }
        print!("  {:16}", r.workload);
        for c in &configs {
            let t = rows
                .iter()
                .find(|x| x.workload == r.workload && x.config == *c)
                .and_then(|x| x.time_ms);
            match t {
                Some(t) => print!(" {t:>14.1}ms"),
                None => print!(" {:>16}", "OoM"),
            }
        }
        println!();
    }
    println!("  paper shape: fusions help both sides; w/o CP roughly doubles PIM EW time");
}

fn print_table5() {
    hr("Table V: absolute workload times (ms; * = this reproduction)");
    println!(
        "  {:28} {:>10} {:>10} {:>10} {:>10}",
        "system", "Boot", "HELR", "ResNet20", "Sort"
    );
    let p = |v: Option<f64>| match v {
        Some(t) => format!("{t:.1}"),
        None => "-".into(),
    };
    for r in table5() {
        println!(
            "  {:28} {:>10} {:>10} {:>10} {:>10}",
            format!("{}{}", r.system, if r.measured { " *" } else { "" }),
            p(r.boot_ms),
            p(r.helr_ms),
            p(r.resnet20_ms),
            p(r.sort_ms)
        );
    }
}
