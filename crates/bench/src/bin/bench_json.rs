//! Machine-readable microbenchmarks for the limb-parallel hot path.
//!
//! Emits `BENCH_ckks.json` and `BENCH_pim.json` (arrays of
//! `{op, n, limbs, threads, ns_per_op, ...}` records) into the current
//! directory, sweeping the `parpool` worker count so the speedup of the
//! limb/digit/bank parallel axes is visible from one run, plus
//! `BENCH_serving.json` — serving-layer soak counters (completions,
//! deadline misses, sheds, breaker activity) for a clean and a chaos
//! scenario at a fixed seed. CKKS records carry the measured op-count
//! breakdown (`ntt_limbs`, `bconv_limb_products`, …, from
//! `ckks::opcount`); the PIM record carries the analytic per-iteration
//! `mmac_ops` and `bytes_internal` of the PAccum fleet.
//!
//! Usage: `bench_json [--quick] [--trace-out FILE] [--metrics-out FILE]`
//!
//! `--quick` shrinks the parameter set and thread sweep so `scripts/check.sh`
//! can smoke-test the harness in seconds; the default configuration is what
//! `scripts/bench.sh` runs for real measurements.
//!
//! `--trace-out FILE` additionally runs the Bootstrap workload on the A100
//! near-bank platform with telemetry and writes the Chrome `trace_event`
//! JSON (load it at `ui.perfetto.dev` or `chrome://tracing`).
//! `--metrics-out FILE` writes the same run's metrics in the Prometheus
//! text format. Both are virtual-time artifacts: byte-identical for every
//! `ANAHEIM_THREADS` value.

use anaheim_core::framework::{Anaheim, AnaheimConfig};
use anaheim_core::telemetry::Telemetry;
use ckks::keys::KeyGenerator;
use ckks::keyswitch::KeySwitcher;
use ckks::opcount;
use ckks::prelude::*;
use ckks_math::poly::Format;
use ckks_math::sampling;
use pim::{
    alloc_paccum_groups, for_each_bank_parallel, paccum_alg1, LayoutPolicy, MontgomeryCtx,
    PolyGroup, PolyGroupAllocator, SimulatedBank, ELEMS_PER_CHUNK,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;
use workloads::{run_workload_traced, Workload};

struct Record {
    op: &'static str,
    n: usize,
    limbs: usize,
    threads: usize,
    ns_per_op: f64,
    /// Extra integer fields appended to the JSON record (op-count or
    /// traffic breakdowns).
    extras: Vec<(&'static str, u64)>,
}

/// Times `f` with one warmup call, then iterates until both `min_iters`
/// and a minimum wall-clock budget are met.
fn time_ns(min_iters: usize, min_millis: u128, mut f: impl FnMut()) -> f64 {
    f();
    let start = Instant::now();
    let mut iters = 0usize;
    while iters < min_iters || start.elapsed().as_millis() < min_millis {
        f();
        iters += 1;
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

fn write_json(path: &str, records: &[Record]) {
    let mut s = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        s.push_str(&format!(
            "  {{\"op\": \"{}\", \"n\": {}, \"limbs\": {}, \"threads\": {}, \"ns_per_op\": {:.1}",
            r.op, r.n, r.limbs, r.threads, r.ns_per_op,
        ));
        for (k, v) in &r.extras {
            s.push_str(&format!(", \"{k}\": {v}"));
        }
        s.push_str(&format!(
            "}}{}\n",
            if i + 1 == records.len() { "" } else { "," }
        ));
    }
    s.push_str("]\n");
    std::fs::write(path, s).unwrap_or_else(|e| panic!("writing {path}: {e}"));
}

/// Per-op speedup of the widest sweep point over the single-thread baseline.
fn print_summary(title: &str, records: &[Record]) {
    println!("\n{title} (speedup vs 1 thread)");
    let ops: Vec<&'static str> = {
        let mut seen = Vec::new();
        for r in records {
            if !seen.contains(&r.op) {
                seen.push(r.op);
            }
        }
        seen
    };
    for op in ops {
        let base = records
            .iter()
            .find(|r| r.op == op && r.threads == 1)
            .map(|r| r.ns_per_op);
        let best = records
            .iter()
            .filter(|r| r.op == op)
            .max_by_key(|r| r.threads);
        if let (Some(base), Some(best)) = (base, best) {
            println!(
                "  {:24} {:>12.0} ns -> {:>12.0} ns @ {} threads  ({:.2}x)",
                op,
                base,
                best.ns_per_op,
                best.threads,
                base / best.ns_per_op
            );
        }
    }
}

fn bench_ckks(quick: bool, sweep: &[usize], records: &mut Vec<Record>) {
    let params = if quick {
        CkksParams::test_small()
    } else {
        CkksParams::builder()
            .log_n(12)
            .levels(8)
            .alpha(2)
            .scale_bits(40)
            .build()
    };
    let ctx = CkksContext::new(params);
    let n = ctx.params().n();
    let level = ctx.max_level();
    let mut rng = StdRng::seed_from_u64(7);
    let mut kg = KeyGenerator::new(&ctx, &mut rng);
    let sk = kg.gen_secret();
    let relin = kg.gen_relin(&sk);
    let ks = KeySwitcher::new(&ctx);
    let eval = Evaluator::new(&ctx);

    let enc = Encoder::new(&ctx);
    let msg: Vec<Complex> = (0..ctx.slots())
        .map(|i| Complex::new(i as f64 * 1e-3, 0.0))
        .collect();
    let pt = enc.encode(&msg, level);
    let pk = kg.gen_public(&sk);
    let ct = pk.encrypt(&pt, &mut rng);

    let coeff = sampling::uniform(&mut rng, ctx.basis_q(level), Format::Coeff);
    let mut evalp = coeff.duplicate();
    evalp.to_eval();
    let a = sampling::uniform(&mut rng, ctx.basis_q(level), Format::Eval);

    // Measured op-count breakdown (`ckks::opcount`): one instrumented run
    // per op, outside the timed loops — the counts are exact and
    // thread-count independent, so each op's numbers are attached to every
    // sweep point of that op.
    let counts: Vec<(&'static str, opcount::OpCounts)> = {
        let mut measured = Vec::new();
        let mut measure = |op: &'static str, f: &mut dyn FnMut()| {
            opcount::reset();
            f();
            measured.push((op, opcount::snapshot()));
        };
        measure("ntt_forward_batch", &mut || {
            let mut p = coeff.duplicate();
            p.to_eval();
        });
        measure("ntt_inverse_batch", &mut || {
            let mut p = evalp.duplicate();
            p.to_coeff();
        });
        measure("hadd", &mut || {
            let _ = eval.add(&ct, &ct);
        });
        measure("keyswitch", &mut || {
            let _ = ks.switch(&a, &relin, level);
        });
        measure("mul_relin", &mut || {
            let _ = eval.mul_relin(&ct, &ct, &relin);
        });
        measure("rescale", &mut || {
            let _ = eval.rescale(&ct);
        });
        measure("automorphism", &mut || {
            let _ = evalp.automorphism(5);
        });
        opcount::reset();
        measured
    };

    let (min_iters, min_ms) = if quick { (3, 10) } else { (10, 200) };
    for &threads in sweep {
        parpool::set_threads(threads);
        let mut push = |op: &'static str, ns: f64| {
            let c = counts
                .iter()
                .find(|(o, _)| *o == op)
                .map(|(_, c)| *c)
                .unwrap_or_default();
            records.push(Record {
                op,
                n,
                limbs: level,
                threads,
                ns_per_op: ns,
                extras: vec![
                    ("ntt_limbs", c.ntt_limbs),
                    ("intt_limbs", c.intt_limbs),
                    ("bconv_limb_products", c.bconv_limb_products),
                    ("ew_limb_ops", c.ew_limb_ops),
                    ("automorphism_limbs", c.automorphism_limbs),
                    ("keyswitches", c.keyswitches),
                ],
            })
        };
        push(
            "ntt_forward_batch",
            time_ns(min_iters, min_ms, || {
                let mut p = coeff.duplicate();
                p.to_eval();
            }),
        );
        push(
            "ntt_inverse_batch",
            time_ns(min_iters, min_ms, || {
                let mut p = evalp.duplicate();
                p.to_coeff();
            }),
        );
        push(
            "hadd",
            time_ns(min_iters, min_ms, || {
                let _ = eval.add(&ct, &ct);
            }),
        );
        push(
            "keyswitch",
            time_ns(min_iters, min_ms, || {
                let _ = ks.switch(&a, &relin, level);
            }),
        );
        push(
            "mul_relin",
            time_ns(min_iters, min_ms, || {
                let _ = eval.mul_relin(&ct, &ct, &relin);
            }),
        );
        push(
            "rescale",
            time_ns(min_iters, min_ms, || {
                let _ = eval.rescale(&ct);
            }),
        );
        push(
            "automorphism",
            time_ns(min_iters, min_ms, || {
                let _ = evalp.automorphism(5);
            }),
        );
    }
    parpool::set_threads(0);
}

fn pim_fleet(
    num_banks: usize,
    k: usize,
    c: usize,
) -> (
    Vec<SimulatedBank>,
    MontgomeryCtx,
    PolyGroup,
    PolyGroup,
    PolyGroup,
) {
    const Q: u32 = 268369921;
    let mut alloc = PolyGroupAllocator::new(64, 2 * c, LayoutPolicy::ColumnPartitioned);
    let (pg_p, pg_ab, pg_out) = alloc_paccum_groups(&mut alloc, k, c);
    let mut rng = StdRng::seed_from_u64(11);
    let banks = (0..num_banks)
        .map(|_| {
            let mut bank = SimulatedBank::new(2 * c, 64);
            let mut poly = || -> Vec<u32> {
                (0..c * ELEMS_PER_CHUNK)
                    .map(|_| rng.gen_range(0..Q))
                    .collect()
            };
            for i in 0..k {
                bank.store_poly(&pg_p, i, &poly()).unwrap();
                bank.store_poly(&pg_ab, 2 * i, &poly()).unwrap();
                bank.store_poly(&pg_ab, 2 * i + 1, &poly()).unwrap();
            }
            bank
        })
        .collect();
    (banks, MontgomeryCtx::new(Q), pg_p, pg_ab, pg_out)
}

fn bench_pim(quick: bool, sweep: &[usize], records: &mut Vec<Record>) {
    let num_banks = 8;
    let k = 4;
    let c = if quick { 16 } else { 128 };
    let (mut banks, mont, pg_p, pg_ab, pg_out) = pim_fleet(num_banks, k, c);
    let (min_iters, min_ms) = if quick { (3, 10) } else { (10, 200) };
    for &threads in sweep {
        parpool::set_threads(threads);
        let ns = time_ns(min_iters, min_ms, || {
            let results = for_each_bank_parallel(&mut banks, |_, bank| {
                paccum_alg1(bank, &mont, k, 16, &pg_p, &pg_ab, &pg_out)
            });
            assert!(results.iter().all(|r| r.is_ok()));
        });
        // Analytic per-iteration traffic of the PAccum fleet (Alg. 1):
        // each bank runs k MAC passes over c chunks, producing two
        // accumulators per lane (2 MACs), and moves p (k), a+b (2k) and the
        // two outputs through the bank-internal datapath at 4 B/element.
        let elems = (c * ELEMS_PER_CHUNK) as u64;
        let fleet = num_banks as u64;
        records.push(Record {
            op: "paccum_8banks",
            n: c * ELEMS_PER_CHUNK,
            limbs: num_banks,
            threads,
            ns_per_op: ns,
            extras: vec![
                ("mmac_ops", fleet * 2 * k as u64 * elems),
                ("bytes_internal", fleet * (3 * k as u64 + 2) * elems * 4),
            ],
        });
    }
    parpool::set_threads(0);
}

/// Runs the Bootstrap workload on the A100 near-bank platform with
/// telemetry and writes the requested artifacts: a Chrome `trace_event`
/// JSON (`--trace-out`) and/or the Prometheus metrics text
/// (`--metrics-out`). Fixed seed; purely virtual-time, so the outputs are
/// byte-identical across `ANAHEIM_THREADS`.
fn emit_telemetry(trace_out: Option<&str>, metrics_out: Option<&str>) {
    let rt = Anaheim::new(AnaheimConfig::a100_near_bank());
    let w = Workload::boot();
    let mut tel = Telemetry::new(42);
    let report = run_workload_traced(&rt, &w, &mut tel)
        .unwrap_or_else(|e| panic!("traced Bootstrap run failed: {e}"));
    let nums = report.outcome.expect("Bootstrap fits the A100");
    println!(
        "\nTraced Bootstrap on {}: {:.2} ms, {} spans",
        report.platform,
        nums.time_ms,
        tel.trace.len()
    );
    if let Some(path) = trace_out {
        std::fs::write(path, tel.chrome_trace()).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!(
            "  wrote {path} (Chrome trace_event JSON, {} spans)",
            tel.trace.len()
        );
    }
    if let Some(path) = metrics_out {
        std::fs::write(path, tel.prometheus()).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("  wrote {path} (Prometheus text format)");
    }
}

/// Runs the serving-layer soak in a clean and a chaos scenario plus the
/// sharded streaming fleet soak, and emits the headline counters. The
/// clean/chaos rows are virtual-time results — deterministic for a given
/// seed, so regressions show up as diffs, not noise. The stream-chaos row
/// additionally carries wall-clock throughput (`wall_ms`, `wall_rps`),
/// which is machine-dependent and informational only; every other field
/// in it is deterministic.
fn bench_serving(quick: bool) {
    use serving::soak::{check_invariants, run_soak, run_soak_stream, SoakConfig};
    let requests = if quick { 48 } else { 240 };
    let scenarios = [
        ("clean", SoakConfig::clean(2024)),
        ("chaos", SoakConfig::chaos(2024)),
    ];
    let mut s = String::from("[\n");
    println!("\nServing soak ({requests} requests, seed 2024)");
    for (name, base) in scenarios.iter() {
        let cfg = SoakConfig {
            requests,
            // The chaos stuck-lane window is sized for the full trace;
            // rescale it so the quick run still exercises the breaker.
            stuck_window: base.stuck_window.map(|(a, b)| {
                let scale = requests as f64 / base.requests as f64;
                (
                    (a as f64 * scale) as usize,
                    ((b as f64 * scale) as usize).max((a as f64 * scale) as usize + 4),
                )
            }),
            ..base.clone()
        };
        let out = run_soak(&cfg).unwrap_or_else(|e| panic!("{name} soak failed: {e}"));
        let sum = check_invariants(&cfg, &out)
            .unwrap_or_else(|e| panic!("{name} soak invariant violated: {e}"));
        println!("  {name:5} {sum}");
        s.push_str(&format!(
            "  {{\"scenario\": \"{}\", \"requests\": {}, \"completed\": {}, \
             \"deadline_misses\": {}, \"shed_queue_full\": {}, \"shed_infeasible\": {}, \
             \"faults\": {}, \"breaker_skips\": {}, \"transitions\": {}, \"dead_banks\": {}}},\n",
            name,
            requests,
            sum.completed,
            sum.deadline_misses,
            sum.shed_queue_full,
            sum.shed_infeasible,
            sum.faults,
            sum.breaker_skips,
            sum.transitions,
            sum.dead_banks,
        ));
        if *name == "chaos" {
            for b in &out.snapshot.banks {
                println!(
                    "        bank {}: {} ({} trip(s){})",
                    b.bank,
                    b.state,
                    b.trips,
                    if b.permanent { ", permanent" } else { "" }
                );
            }
        }
    }

    // The sharded streaming fleet soak: failover counters plus throughput.
    let stream_cfg = SoakConfig {
        requests: if quick { 2_000 } else { 20_000 },
        ..SoakConfig::fleet_chaos(2024)
    };
    let wall = Instant::now();
    let out = run_soak_stream(&stream_cfg, None)
        .unwrap_or_else(|e| panic!("stream-chaos soak invariant violated: {e}"));
    let wall_ms = wall.elapsed().as_secs_f64() * 1e3;
    let sum = out.summary;
    println!(
        "  stream-chaos ({} shards) {sum}\n        wall {:.0} ms ({:.0} req/s)",
        stream_cfg.shards,
        wall_ms,
        sum.requests as f64 / (wall_ms * 1e-3)
    );
    s.push_str(&format!(
        "  {{\"scenario\": \"stream-chaos\", \"requests\": {}, \"shards\": {}, \
         \"completed\": {}, \"deadline_misses\": {}, \"shed_queue_full\": {}, \
         \"shed_infeasible\": {}, \"rerouted\": {}, \"all_shards_unhealthy\": {}, \
         \"faults\": {}, \"breaker_skips\": {}, \"drains\": {}, \"readmits\": {}, \
         \"dead_banks\": {}, \"virtual_rps\": {:.1}, \"wall_ms\": {:.1}, \"wall_rps\": {:.1}}}\n",
        sum.requests,
        stream_cfg.shards,
        sum.completed,
        sum.deadline_misses,
        sum.shed_queue_full,
        sum.shed_infeasible,
        sum.rerouted,
        sum.all_shards_unhealthy,
        sum.faults,
        sum.breaker_skips,
        sum.drains,
        sum.readmits,
        sum.dead_banks,
        sum.virtual_rps(),
        wall_ms,
        sum.requests as f64 / (wall_ms * 1e-3),
    ));
    s.push_str("]\n");
    std::fs::write("BENCH_serving.json", s)
        .unwrap_or_else(|e| panic!("writing BENCH_serving.json: {e}"));
}

/// Evaluates the analytic scheduler on the fused+offloaded Bootstrap
/// sequence in Serial vs Pipelined mode (A100 near-bank) and appends one
/// row per mode to both record sets. These rows are pure model output —
/// virtual time, thread-count independent — so `scripts/check.sh` can gate
/// the §V-C overlap bound (speedup in (1.0, 1.35]) and work conservation
/// straight from the JSON.
fn bench_schedule(ckks_records: &mut Vec<Record>, pim_records: &mut Vec<Record>) {
    use anaheim_core::build::Builder;
    use anaheim_core::params::ParamSet;
    use anaheim_core::schedule::ScheduleMode;

    let params = ParamSet::paper_default();
    let n = 1usize << params.log_n;
    let limbs = params.l_max;
    println!("\nSchedule model (Bootstrap on A100 near-bank)");
    for (op, mode) in [
        ("sched_boot_serial", ScheduleMode::Serial),
        ("sched_boot_pipelined", ScheduleMode::Pipelined),
    ] {
        let rt = Anaheim::new(AnaheimConfig::a100_near_bank().with_schedule_mode(mode));
        let seq = Builder::new(params.clone()).bootstrap();
        let report = rt
            .run(seq)
            .unwrap_or_else(|e| panic!("schedule-model Bootstrap run failed: {e}"));
        println!(
            "  {op:22} {:>10.3} ms  (overlap {:.3} ms, {} segments, {} transitions)",
            report.total_ns / 1e6,
            report.stream_overlap_ns / 1e6,
            report.segments.len(),
            report.transitions
        );
        let shared = |bytes_key: &'static str, bytes: u64| Record {
            op,
            n,
            limbs,
            threads: 1,
            ns_per_op: report.total_ns,
            extras: vec![
                (bytes_key, bytes),
                ("transitions", u64::from(report.transitions)),
                ("segments", report.segments.len() as u64),
                ("overlap_ns", report.stream_overlap_ns.round() as u64),
            ],
        };
        ckks_records.push(shared("gpu_dram_bytes", report.gpu_dram_bytes));
        pim_records.push(shared("pim_dram_bytes", report.pim_dram_bytes));
    }
}

/// Measures how much parallel CPU the machine actually grants: the
/// throughput ratio of two spin threads vs one. Containers often report
/// more hardware threads than their cgroup/host contention delivers, and
/// every speedup in the emitted JSON is bounded by this number.
fn effective_parallelism() -> f64 {
    fn spin(iters: u64) -> u64 {
        let mut x = 1u64;
        for i in 0..iters {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        x
    }
    let iters = 50_000_000;
    let t0 = Instant::now();
    std::hint::black_box(spin(iters));
    let one = t0.elapsed();
    let t0 = Instant::now();
    let handles: Vec<_> = (0..2)
        .map(|_| std::thread::spawn(move || std::hint::black_box(spin(iters))))
        .collect();
    for h in handles {
        h.join().expect("spin thread");
    }
    let two = t0.elapsed();
    2.0 * one.as_secs_f64() / two.as_secs_f64()
}

const USAGE: &str = "usage: bench_json [--quick] [--trace-out FILE] [--metrics-out FILE]";

/// Reports a command-line problem on stderr and exits nonzero. Argument
/// mistakes are operator errors, not harness bugs — no panic, no backtrace.
fn usage_error(msg: &str) -> ! {
    eprintln!("bench_json: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn main() {
    let mut quick = false;
    let mut trace_out: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--trace-out" => {
                trace_out = Some(
                    args.next()
                        .unwrap_or_else(|| usage_error("--trace-out needs a file path")),
                )
            }
            "--metrics-out" => {
                metrics_out = Some(
                    args.next()
                        .unwrap_or_else(|| usage_error("--metrics-out needs a file path")),
                )
            }
            other => usage_error(&format!("unknown argument {other:?}")),
        }
    }
    let sweep: &[usize] = if quick { &[1, 4] } else { &[1, 2, 4, 8] };
    println!(
        "bench_json: mode={}, thread sweep {:?}, {} hardware threads, \
         effective parallelism {:.2}x (2-thread spin calibration)",
        if quick { "quick" } else { "full" },
        sweep,
        std::thread::available_parallelism().map_or(1, |p| p.get()),
        effective_parallelism()
    );

    let mut ckks_records = Vec::new();
    bench_ckks(quick, sweep, &mut ckks_records);
    print_summary("CKKS", &ckks_records);

    let mut pim_records = Vec::new();
    bench_pim(quick, sweep, &mut pim_records);
    print_summary("PIM", &pim_records);

    bench_schedule(&mut ckks_records, &mut pim_records);
    write_json("BENCH_ckks.json", &ckks_records);
    write_json("BENCH_pim.json", &pim_records);

    bench_serving(quick);

    if trace_out.is_some() || metrics_out.is_some() {
        emit_telemetry(trace_out.as_deref(), metrics_out.as_deref());
    }

    println!(
        "\nwrote BENCH_ckks.json ({} records), BENCH_pim.json ({} records), \
         BENCH_serving.json (3 scenarios)",
        ckks_records.len(),
        pim_records.len()
    );
}
