//! Machine-readable microbenchmarks for the limb-parallel hot path.
//!
//! Emits `BENCH_ckks.json` and `BENCH_pim.json` (arrays of
//! `{op, n, limbs, threads, ns_per_op, ns_per_op_p50, samples, ...}`
//! records) into the current directory, sweeping both the `parpool`
//! worker count and — in full mode — the paper's Table IV ring sizes
//! (N ∈ {2¹³, 2¹⁴, 2¹⁵, 2¹⁶} at matching limb depths, plus the small
//! rings the regression gate watches), so the speedup story is measured
//! where Anaheim actually lives. Also writes `BENCH_serving.json` —
//! serving-layer soak counters (completions, deadline misses, sheds,
//! breaker activity, hedge/cancellation accounting, evaluation-key batch
//! amortization, batch-aware reordering) for clean, chaos, stream-chaos,
//! batched-fleet, ordered-fleet, and
//! hedge-chaos scenarios at a fixed seed, each row carrying its
//! provenance (fault seed, lane/shard config, thread setting).
//! CKKS records carry the measured op-count breakdown (`ntt_limbs`,
//! `bconv_limb_products`, …, from `ckks::opcount`); the PIM record
//! carries the analytic per-iteration `mmac_ops` and `bytes_internal` of
//! the PAccum fleet.
//!
//! Every timed row is a median over several samples with a warmup pass
//! (`ns_per_op_p50`; the historical `ns_per_op` mean is kept so existing
//! readers of the JSON keep working), which keeps the tuner calibration
//! and the check.sh regression gates from being noise-driven.
//!
//! Usage: `bench_json [--quick] [--trace-out FILE] [--metrics-out FILE]
//! [--tune-out FILE]`
//!
//! `--quick` shrinks the parameter set and thread sweep so `scripts/check.sh`
//! can smoke-test the harness in seconds; the default configuration is what
//! `scripts/bench.sh` runs for real measurements.
//!
//! `--trace-out FILE` additionally runs the Bootstrap workload on the A100
//! near-bank platform with telemetry and writes the Chrome `trace_event`
//! JSON (load it at `ui.perfetto.dev` or `chrome://tracing`).
//! `--metrics-out FILE` writes the same run's metrics in the Prometheus
//! text format. Both are virtual-time artifacts: byte-identical for every
//! `ANAHEIM_THREADS` value.
//!
//! `--tune-out FILE` runs the parallelism calibration pass and writes a
//! `ckks_math::tune` profile (`key = value` text): measured per-op-class
//! serial costs, pool dispatch overheads, and the host's effective
//! parallelism. Point `ANAHEIM_PAR_PROFILE` at the file to drive the
//! serial-vs-parallel tuner with measured numbers instead of the seeded
//! defaults.

use anaheim_core::framework::{Anaheim, AnaheimConfig};
use anaheim_core::telemetry::Telemetry;
use ckks::keys::KeyGenerator;
use ckks::keyswitch::KeySwitcher;
use ckks::opcount;
use ckks::prelude::*;
use ckks_math::poly::Format;
use ckks_math::sampling;
use pim::{
    alloc_paccum_groups, for_each_bank_parallel, paccum_alg1, LayoutPolicy, MontgomeryCtx,
    PolyGroup, PolyGroupAllocator, SimulatedBank, ELEMS_PER_CHUNK,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;
use workloads::{run_workload_traced, Workload};

struct Record {
    op: &'static str,
    n: usize,
    limbs: usize,
    threads: usize,
    /// Mean ns per iteration over all samples (the historical field).
    ns_per_op: f64,
    /// Median of the per-sample means — robust against a noisy sample.
    ns_per_op_p50: f64,
    /// Number of timing samples behind the two figures (1 for analytic
    /// model rows, which have no measurement noise).
    samples: usize,
    /// Extra integer fields appended to the JSON record (op-count or
    /// traffic breakdowns).
    extras: Vec<(&'static str, u64)>,
}

/// Mean and median of repeated timing samples.
#[derive(Debug, Clone, Copy)]
struct Timing {
    mean: f64,
    p50: f64,
    samples: usize,
}

/// Per-(op, ring) timing budget: how many samples to take and the floor
/// each sample must meet (iterations and wall-clock) before its mean
/// counts.
#[derive(Debug, Clone, Copy)]
struct Budget {
    samples: usize,
    min_iters: usize,
    min_millis: u128,
}

impl Timing {
    fn from_means(means: Vec<f64>) -> Timing {
        let mean = means.iter().sum::<f64>() / means.len() as f64;
        let mut sorted = means.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let mid = sorted.len() / 2;
        let p50 = if sorted.len() % 2 == 1 {
            sorted[mid]
        } else {
            (sorted[mid - 1] + sorted[mid]) / 2.0
        };
        Timing {
            mean,
            p50,
            samples: means.len(),
        }
    }
}

/// One timing sample: iterate `f` until both `min_iters` and `min_millis`
/// are met, return the per-iteration mean.
fn one_sample(budget: Budget, f: &mut impl FnMut()) -> f64 {
    let start = Instant::now();
    let mut iters = 0usize;
    while iters < budget.min_iters.max(1) || start.elapsed().as_millis() < budget.min_millis {
        f();
        iters += 1;
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// Times `f` with one warmup call, then takes `budget.samples` independent
/// samples; each sample iterates until both `min_iters` and `min_millis`
/// are met and records its own mean. Returns the mean-of-samples and the
/// median sample, so one descheduling blip cannot drag a row.
fn time_ns(budget: Budget, mut f: impl FnMut()) -> Timing {
    f();
    let mut means = Vec::with_capacity(budget.samples);
    for _ in 0..budget.samples.max(1) {
        means.push(one_sample(budget, &mut f));
    }
    Timing::from_means(means)
}

/// Times `f` across a whole thread sweep with the sweep points
/// *interleaved per sample round*: round r takes one sample at every
/// thread count before round r+1 starts. On a busy host, slow drift
/// (frequency scaling, noisy neighbours) then lands on every thread count
/// equally instead of biasing whichever block ran last — which is what the
/// `scripts/check.sh` small-ring gate compares. Returns one `Timing` per
/// sweep entry, in order.
fn time_sweep(budget: Budget, sweep: &[usize], mut f: impl FnMut()) -> Vec<Timing> {
    let mut means: Vec<Vec<f64>> = vec![Vec::with_capacity(budget.samples); sweep.len()];
    for &threads in sweep {
        parpool::set_threads(threads);
        f(); // warmup at each width (pool spawn, cache touch)
    }
    for _ in 0..budget.samples.max(1) {
        for (i, &threads) in sweep.iter().enumerate() {
            parpool::set_threads(threads);
            means[i].push(one_sample(budget, &mut f));
        }
    }
    means.into_iter().map(Timing::from_means).collect()
}

fn write_json(path: &str, records: &[Record]) {
    let mut s = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        s.push_str(&format!(
            "  {{\"op\": \"{}\", \"n\": {}, \"limbs\": {}, \"threads\": {}, \
             \"ns_per_op\": {:.1}, \"ns_per_op_p50\": {:.1}, \"samples\": {}",
            r.op, r.n, r.limbs, r.threads, r.ns_per_op, r.ns_per_op_p50, r.samples,
        ));
        for (k, v) in &r.extras {
            s.push_str(&format!(", \"{k}\": {v}"));
        }
        s.push_str(&format!(
            "}}{}\n",
            if i + 1 == records.len() { "" } else { "," }
        ));
    }
    s.push_str("]\n");
    std::fs::write(path, s).unwrap_or_else(|e| panic!("writing {path}: {e}"));
}

/// Per-(op, ring) speedup of the widest sweep point over the
/// single-thread baseline, using the median figures.
fn print_summary(title: &str, records: &[Record]) {
    println!("\n{title} (speedup vs 1 thread, p50)");
    let groups: Vec<(&'static str, usize)> = {
        let mut seen = Vec::new();
        for r in records {
            if !seen.contains(&(r.op, r.n)) {
                seen.push((r.op, r.n));
            }
        }
        seen
    };
    for (op, n) in groups {
        let base = records
            .iter()
            .find(|r| r.op == op && r.n == n && r.threads == 1)
            .map(|r| r.ns_per_op_p50);
        let best = records
            .iter()
            .filter(|r| r.op == op && r.n == n)
            .max_by_key(|r| r.threads);
        if let (Some(base), Some(best)) = (base, best) {
            println!(
                "  {:24} n={:<6} {:>12.0} ns -> {:>12.0} ns @ {} threads  ({:.2}x)",
                op,
                n,
                base,
                best.ns_per_op_p50,
                best.threads,
                base / best.ns_per_op_p50
            );
        }
    }
}

fn bench_ckks(params: CkksParams, budget: Budget, sweep: &[usize], records: &mut Vec<Record>) {
    let ctx = CkksContext::new(params);
    let n = ctx.params().n();
    let level = ctx.max_level();
    let mut rng = StdRng::seed_from_u64(7);
    let mut kg = KeyGenerator::new(&ctx, &mut rng);
    let sk = kg.gen_secret();
    let relin = kg.gen_relin(&sk);
    let ks = KeySwitcher::new(&ctx);
    let eval = Evaluator::new(&ctx);

    let enc = Encoder::new(&ctx);
    let msg: Vec<Complex> = (0..ctx.slots())
        .map(|i| Complex::new(i as f64 * 1e-3, 0.0))
        .collect();
    let pt = enc.encode(&msg, level);
    let pk = kg.gen_public(&sk);
    let ct = pk.encrypt(&pt, &mut rng);

    let coeff = sampling::uniform(&mut rng, ctx.basis_q(level), Format::Coeff);
    let mut evalp = coeff.duplicate();
    evalp.to_eval();
    let a = sampling::uniform(&mut rng, ctx.basis_q(level), Format::Eval);

    // Measured op-count breakdown (`ckks::opcount`): one instrumented run
    // per op, outside the timed loops — the counts are exact and
    // thread-count independent, so each op's numbers are attached to every
    // sweep point of that op.
    let counts: Vec<(&'static str, opcount::OpCounts)> = {
        let mut measured = Vec::new();
        let mut measure = |op: &'static str, f: &mut dyn FnMut()| {
            opcount::reset();
            f();
            measured.push((op, opcount::snapshot()));
        };
        measure("ntt_forward_batch", &mut || {
            let mut p = coeff.duplicate();
            p.to_eval();
        });
        measure("ntt_inverse_batch", &mut || {
            let mut p = evalp.duplicate();
            p.to_coeff();
        });
        measure("hadd", &mut || {
            let _ = eval.add(&ct, &ct);
        });
        measure("keyswitch", &mut || {
            let _ = ks.switch(&a, &relin, level);
        });
        measure("mul_relin", &mut || {
            let _ = eval.mul_relin(&ct, &ct, &relin);
        });
        measure("rescale", &mut || {
            let _ = eval.rescale(&ct);
        });
        measure("automorphism", &mut || {
            let _ = evalp.automorphism(5);
        });
        opcount::reset();
        measured
    };

    // Thread counts are interleaved per sample round (`time_sweep`) so host
    // drift cannot masquerade as a per-thread-count regression.
    let mut push = |op: &'static str, timings: Vec<Timing>| {
        let c = counts
            .iter()
            .find(|(o, _)| *o == op)
            .map(|(_, c)| *c)
            .unwrap_or_default();
        for (&threads, t) in sweep.iter().zip(&timings) {
            records.push(Record {
                op,
                n,
                limbs: level,
                threads,
                ns_per_op: t.mean,
                ns_per_op_p50: t.p50,
                samples: t.samples,
                extras: vec![
                    ("ntt_limbs", c.ntt_limbs),
                    ("intt_limbs", c.intt_limbs),
                    ("bconv_limb_products", c.bconv_limb_products),
                    ("ew_limb_ops", c.ew_limb_ops),
                    ("automorphism_limbs", c.automorphism_limbs),
                    ("keyswitches", c.keyswitches),
                ],
            })
        }
    };
    push(
        "ntt_forward_batch",
        time_sweep(budget, sweep, || {
            let mut p = coeff.duplicate();
            p.to_eval();
        }),
    );
    push(
        "ntt_inverse_batch",
        time_sweep(budget, sweep, || {
            let mut p = evalp.duplicate();
            p.to_coeff();
        }),
    );
    push(
        "hadd",
        time_sweep(budget, sweep, || {
            let _ = eval.add(&ct, &ct);
        }),
    );
    push(
        "keyswitch",
        time_sweep(budget, sweep, || {
            let _ = ks.switch(&a, &relin, level);
        }),
    );
    push(
        "mul_relin",
        time_sweep(budget, sweep, || {
            let _ = eval.mul_relin(&ct, &ct, &relin);
        }),
    );
    push(
        "rescale",
        time_sweep(budget, sweep, || {
            let _ = eval.rescale(&ct);
        }),
    );
    push(
        "automorphism",
        time_sweep(budget, sweep, || {
            let _ = evalp.automorphism(5);
        }),
    );
    parpool::set_threads(0);
}

fn pim_fleet(
    num_banks: usize,
    k: usize,
    c: usize,
) -> (
    Vec<SimulatedBank>,
    MontgomeryCtx,
    PolyGroup,
    PolyGroup,
    PolyGroup,
) {
    const Q: u32 = 268369921;
    let mut alloc = PolyGroupAllocator::new(64, 2 * c, LayoutPolicy::ColumnPartitioned);
    let (pg_p, pg_ab, pg_out) = alloc_paccum_groups(&mut alloc, k, c);
    let mut rng = StdRng::seed_from_u64(11);
    let banks = (0..num_banks)
        .map(|_| {
            let mut bank = SimulatedBank::new(2 * c, 64);
            let mut poly = || -> Vec<u32> {
                (0..c * ELEMS_PER_CHUNK)
                    .map(|_| rng.gen_range(0..Q))
                    .collect()
            };
            for i in 0..k {
                bank.store_poly(&pg_p, i, &poly()).unwrap();
                bank.store_poly(&pg_ab, 2 * i, &poly()).unwrap();
                bank.store_poly(&pg_ab, 2 * i + 1, &poly()).unwrap();
            }
            bank
        })
        .collect();
    (banks, MontgomeryCtx::new(Q), pg_p, pg_ab, pg_out)
}

fn bench_pim(quick: bool, sweep: &[usize], records: &mut Vec<Record>) {
    let num_banks = 8;
    let k = 4;
    let c = if quick { 16 } else { 128 };
    let (mut banks, mont, pg_p, pg_ab, pg_out) = pim_fleet(num_banks, k, c);
    let budget = if quick {
        Budget {
            samples: 3,
            min_iters: 2,
            min_millis: 4,
        }
    } else {
        Budget {
            samples: 5,
            min_iters: 3,
            min_millis: 40,
        }
    };
    for &threads in sweep {
        parpool::set_threads(threads);
        let t = time_ns(budget, || {
            let results = for_each_bank_parallel(&mut banks, |_, bank| {
                paccum_alg1(bank, &mont, k, 16, &pg_p, &pg_ab, &pg_out)
            });
            assert!(results.iter().all(|r| r.is_ok()));
        });
        // Analytic per-iteration traffic of the PAccum fleet (Alg. 1):
        // each bank runs k MAC passes over c chunks, producing two
        // accumulators per lane (2 MACs), and moves p (k), a+b (2k) and the
        // two outputs through the bank-internal datapath at 4 B/element.
        let elems = (c * ELEMS_PER_CHUNK) as u64;
        let fleet = num_banks as u64;
        records.push(Record {
            op: "paccum_8banks",
            n: c * ELEMS_PER_CHUNK,
            limbs: num_banks,
            threads,
            ns_per_op: t.mean,
            ns_per_op_p50: t.p50,
            samples: t.samples,
            extras: vec![
                ("mmac_ops", fleet * 2 * k as u64 * elems),
                ("bytes_internal", fleet * (3 * k as u64 + 2) * elems * 4),
            ],
        });
    }
    parpool::set_threads(0);
}

/// Runs the Bootstrap workload on the A100 near-bank platform with
/// telemetry and writes the requested artifacts: a Chrome `trace_event`
/// JSON (`--trace-out`) and/or the Prometheus metrics text
/// (`--metrics-out`). Fixed seed; purely virtual-time, so the outputs are
/// byte-identical across `ANAHEIM_THREADS`.
fn emit_telemetry(trace_out: Option<&str>, metrics_out: Option<&str>) {
    let rt = Anaheim::new(AnaheimConfig::a100_near_bank());
    let w = Workload::boot();
    let mut tel = Telemetry::new(42);
    let report = run_workload_traced(&rt, &w, &mut tel)
        .unwrap_or_else(|e| panic!("traced Bootstrap run failed: {e}"));
    let nums = report.outcome.expect("Bootstrap fits the A100");
    println!(
        "\nTraced Bootstrap on {}: {:.2} ms, {} spans",
        report.platform,
        nums.time_ms,
        tel.trace.len()
    );
    if let Some(path) = trace_out {
        std::fs::write(path, tel.chrome_trace()).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!(
            "  wrote {path} (Chrome trace_event JSON, {} spans)",
            tel.trace.len()
        );
    }
    if let Some(path) = metrics_out {
        std::fs::write(path, tel.prometheus()).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("  wrote {path} (Prometheus text format)");
    }
}

/// Runs the serving-layer soak in a clean and a chaos scenario plus the
/// sharded streaming fleet soak, the batched-fleet and ordered-fleet
/// soaks (evk batch amortization, with and without batch-aware dispatch
/// ordering), and the hedge-chaos soak (GPU fault domain + budget
/// cancellation + hedged re-execution), and emits the
/// headline counters. The clean/chaos rows are virtual-time results —
/// deterministic for a given seed, so regressions show up as diffs, not
/// noise. The stream rows additionally carry wall-clock throughput
/// (`wall_ms`, `wall_rps`), which is machine-dependent and informational
/// only; every other field is deterministic. Every row records its
/// provenance — the fault seed plus the lane/shard/thread configuration
/// that produced it — so a diff in the counters can be replayed exactly.
fn bench_serving(quick: bool) {
    use serving::soak::{check_invariants, run_soak, run_soak_stream, SoakConfig};
    let threads_env = std::env::var("ANAHEIM_THREADS").unwrap_or_else(|_| "auto".into());
    let requests = if quick { 48 } else { 240 };
    let scenarios = [
        ("clean", SoakConfig::clean(2024)),
        ("chaos", SoakConfig::chaos(2024)),
    ];
    let mut s = String::from("[\n");
    println!("\nServing soak ({requests} requests, seed 2024)");
    for (name, base) in scenarios.iter() {
        let cfg = SoakConfig {
            requests,
            // The chaos stuck-lane window is sized for the full trace;
            // rescale it so the quick run still exercises the breaker.
            stuck_window: base.stuck_window.map(|(a, b)| {
                let scale = requests as f64 / base.requests as f64;
                (
                    (a as f64 * scale) as usize,
                    ((b as f64 * scale) as usize).max((a as f64 * scale) as usize + 4),
                )
            }),
            ..base.clone()
        };
        let out = run_soak(&cfg).unwrap_or_else(|e| panic!("{name} soak failed: {e}"));
        let sum = check_invariants(&cfg, &out)
            .unwrap_or_else(|e| panic!("{name} soak invariant violated: {e}"));
        println!("  {name:5} {sum}");
        s.push_str(&format!(
            "  {{\"scenario\": \"{}\", \"fault_seed\": {}, \"workers\": {}, \
             \"anaheim_threads\": \"{}\", \"requests\": {}, \"completed\": {}, \
             \"deadline_misses\": {}, \"shed_queue_full\": {}, \"shed_infeasible\": {}, \
             \"faults\": {}, \"breaker_skips\": {}, \"transitions\": {}, \"dead_banks\": {}}},\n",
            name,
            cfg.seed,
            cfg.workers,
            threads_env,
            requests,
            sum.completed,
            sum.deadline_misses,
            sum.shed_queue_full,
            sum.shed_infeasible,
            sum.faults,
            sum.breaker_skips,
            sum.transitions,
            sum.dead_banks,
        ));
        if *name == "chaos" {
            for b in &out.snapshot.banks {
                println!(
                    "        bank {}: {} ({} trip(s){})",
                    b.bank,
                    b.state,
                    b.trips,
                    if b.permanent { ", permanent" } else { "" }
                );
            }
        }
    }

    // The sharded streaming fleet soak: failover counters plus throughput.
    let stream_cfg = SoakConfig {
        requests: if quick { 2_000 } else { 20_000 },
        ..SoakConfig::fleet_chaos(2024)
    };
    let wall = Instant::now();
    let out = run_soak_stream(&stream_cfg, None)
        .unwrap_or_else(|e| panic!("stream-chaos soak invariant violated: {e}"));
    let wall_ms = wall.elapsed().as_secs_f64() * 1e3;
    let sum = out.summary;
    println!(
        "  stream-chaos ({} shards) {sum}\n        wall {:.0} ms ({:.0} req/s)",
        stream_cfg.shards,
        wall_ms,
        sum.requests as f64 / (wall_ms * 1e-3)
    );
    s.push_str(&format!(
        "  {{\"scenario\": \"stream-chaos\", \"fault_seed\": {}, \"workers\": {}, \
         \"anaheim_threads\": \"{}\", \"requests\": {}, \"shards\": {}, \
         \"completed\": {}, \"deadline_misses\": {}, \"shed_queue_full\": {}, \
         \"shed_infeasible\": {}, \"rerouted\": {}, \"all_shards_unhealthy\": {}, \
         \"faults\": {}, \"breaker_skips\": {}, \"drains\": {}, \"readmits\": {}, \
         \"dead_banks\": {}, \"virtual_rps\": {:.1}, \"wall_ms\": {:.1}, \"wall_rps\": {:.1}}},\n",
        stream_cfg.seed,
        stream_cfg.workers,
        threads_env,
        sum.requests,
        stream_cfg.shards,
        sum.completed,
        sum.deadline_misses,
        sum.shed_queue_full,
        sum.shed_infeasible,
        sum.rerouted,
        sum.all_shards_unhealthy,
        sum.faults,
        sum.breaker_skips,
        sum.drains,
        sum.readmits,
        sum.dead_banks,
        sum.virtual_rps(),
        wall_ms,
        sum.requests as f64 / (wall_ms * 1e-3),
    ));

    // The batched-fleet soak: a small tenant pool over a fault-free
    // two-shard fleet with same-tenant batch serving on. The invariant
    // checker already requires ≥1 amortized fetch and that saved bytes
    // reconcile with shard hit bytes; the row carries the evk hit/miss
    // split so `scripts/check.sh` can gate conservation
    // (hit + miss == uncached) and a nonzero saving from the JSON.
    let batch_cfg = SoakConfig {
        requests: if quick { 2_000 } else { 20_000 },
        ..SoakConfig::batched_fleet(2024)
    };
    let wall = Instant::now();
    let out = run_soak_stream(&batch_cfg, None)
        .unwrap_or_else(|e| panic!("batched-fleet soak invariant violated: {e}"));
    let wall_ms = wall.elapsed().as_secs_f64() * 1e3;
    let sum = out.summary;
    println!(
        "  batched-fleet ({} shards, {} tenants) {sum}\n        wall {:.0} ms ({:.0} req/s)",
        batch_cfg.shards,
        batch_cfg.tenants,
        wall_ms,
        sum.requests as f64 / (wall_ms * 1e-3)
    );
    s.push_str(&format!(
        "  {{\"scenario\": \"batched-fleet\", \"fault_seed\": {}, \"workers\": {}, \
         \"anaheim_threads\": \"{}\", \"requests\": {}, \"shards\": {}, \"tenants\": {}, \
         \"completed\": {}, \"deadline_misses\": {}, \"shed_queue_full\": {}, \
         \"shed_infeasible\": {}, \"rerouted\": {}, \"all_shards_unhealthy\": {}, \
         \"faults\": {}, \"breaker_skips\": {}, \"drains\": {}, \"readmits\": {}, \
         \"dead_banks\": {}, \"evk_hit_bytes\": {}, \"evk_miss_bytes\": {}, \
         \"evk_bytes_saved\": {}, \"batches\": {}, \"virtual_rps\": {:.1}, \
         \"wall_ms\": {:.1}, \"wall_rps\": {:.1}}},\n",
        batch_cfg.seed,
        batch_cfg.workers,
        threads_env,
        sum.requests,
        batch_cfg.shards,
        batch_cfg.tenants,
        sum.completed,
        sum.deadline_misses,
        sum.shed_queue_full,
        sum.shed_infeasible,
        sum.rerouted,
        sum.all_shards_unhealthy,
        sum.faults,
        sum.breaker_skips,
        sum.drains,
        sum.readmits,
        sum.dead_banks,
        sum.evk_hit_bytes,
        sum.evk_miss_bytes,
        sum.evk_saved_bytes,
        sum.batches,
        sum.virtual_rps(),
        wall_ms,
        sum.requests as f64 / (wall_ms * 1e-3),
    ));

    // The ordered-fleet soak: the batched-fleet trace with batch-aware
    // dispatch ordering on — the engine pulls same-tenant work forward
    // under the slack budget and credits each amortized evk fetch back to
    // the lane as virtual time. The invariant checker already requires ≥1
    // reorder and a nonzero lane credit; `scripts/check.sh` additionally
    // gates `evk_bytes_saved` ≥ the batched-fleet row's and `virtual_rps`
    // ≥ the batched-fleet row's from this JSON.
    let ordered_cfg = SoakConfig {
        requests: if quick { 2_000 } else { 20_000 },
        ..SoakConfig::ordered_fleet(2024)
    };
    let wall = Instant::now();
    let out = run_soak_stream(&ordered_cfg, None)
        .unwrap_or_else(|e| panic!("ordered-fleet soak invariant violated: {e}"));
    let wall_ms = wall.elapsed().as_secs_f64() * 1e3;
    let sum = out.summary;
    println!(
        "  ordered-fleet ({} shards, {} tenants) {sum}\n        wall {:.0} ms ({:.0} req/s)",
        ordered_cfg.shards,
        ordered_cfg.tenants,
        wall_ms,
        sum.requests as f64 / (wall_ms * 1e-3)
    );
    s.push_str(&format!(
        "  {{\"scenario\": \"ordered-fleet\", \"fault_seed\": {}, \"workers\": {}, \
         \"anaheim_threads\": \"{}\", \"requests\": {}, \"shards\": {}, \"tenants\": {}, \
         \"completed\": {}, \"deadline_misses\": {}, \"shed_queue_full\": {}, \
         \"shed_infeasible\": {}, \"rerouted\": {}, \"all_shards_unhealthy\": {}, \
         \"faults\": {}, \"breaker_skips\": {}, \"drains\": {}, \"readmits\": {}, \
         \"dead_banks\": {}, \"evk_hit_bytes\": {}, \"evk_miss_bytes\": {}, \
         \"evk_bytes_saved\": {}, \"batches\": {}, \"reorders\": {}, \
         \"reorder_denied_slack\": {}, \"evk_saved_ns\": {:.0}, \"virtual_rps\": {:.1}, \
         \"wall_ms\": {:.1}, \"wall_rps\": {:.1}}},\n",
        ordered_cfg.seed,
        ordered_cfg.workers,
        threads_env,
        sum.requests,
        ordered_cfg.shards,
        ordered_cfg.tenants,
        sum.completed,
        sum.deadline_misses,
        sum.shed_queue_full,
        sum.shed_infeasible,
        sum.rerouted,
        sum.all_shards_unhealthy,
        sum.faults,
        sum.breaker_skips,
        sum.drains,
        sum.readmits,
        sum.dead_banks,
        sum.evk_hit_bytes,
        sum.evk_miss_bytes,
        sum.evk_saved_bytes,
        sum.batches,
        sum.reorders,
        sum.reorder_denied_slack,
        sum.evk_saved_ns,
        sum.virtual_rps(),
        wall_ms,
        sum.requests as f64 / (wall_ms * 1e-3),
    ));

    // The hedge-chaos soak: the GPU fault domain (stream stalls + transfer
    // bit-flips) on top of the fleet storm, with deadline-budget
    // cancellation and hedged re-execution on. The invariant checker
    // inside `run_soak_stream` already requires ≥1 hedge launch, ≥1 hedge
    // win, and ≥1 cancellation for this config — a row that prints at all
    // is a row whose hedging actually fired.
    let hedge_cfg = SoakConfig {
        requests: if quick { 2_000 } else { 20_000 },
        ..SoakConfig::hedge_chaos(2024)
    };
    let wall = Instant::now();
    let out = run_soak_stream(&hedge_cfg, None)
        .unwrap_or_else(|e| panic!("hedge-chaos soak invariant violated: {e}"));
    let wall_ms = wall.elapsed().as_secs_f64() * 1e3;
    let sum = out.summary;
    println!(
        "  hedge-chaos ({} shards) {sum}\n        wall {:.0} ms ({:.0} req/s)",
        hedge_cfg.shards,
        wall_ms,
        sum.requests as f64 / (wall_ms * 1e-3)
    );
    s.push_str(&format!(
        "  {{\"scenario\": \"hedge-chaos\", \"fault_seed\": {}, \"workers\": {}, \
         \"anaheim_threads\": \"{}\", \"requests\": {}, \"shards\": {}, \
         \"completed\": {}, \"deadline_misses\": {}, \"cancelled\": {}, \
         \"integrity_failures\": {}, \"shed_queue_full\": {}, \"shed_infeasible\": {}, \
         \"rerouted\": {}, \"all_shards_unhealthy\": {}, \"hedges_launched\": {}, \
         \"hedges_won\": {}, \"hedges_wasted\": {}, \"hedges_suppressed\": {}, \
         \"faults\": {}, \"breaker_skips\": {}, \"drains\": {}, \"readmits\": {}, \
         \"dead_banks\": {}, \"virtual_rps\": {:.1}, \"wall_ms\": {:.1}, \"wall_rps\": {:.1}}}\n",
        hedge_cfg.seed,
        hedge_cfg.workers,
        threads_env,
        sum.requests,
        hedge_cfg.shards,
        sum.completed,
        sum.deadline_misses,
        sum.cancelled,
        sum.integrity_failures,
        sum.shed_queue_full,
        sum.shed_infeasible,
        sum.rerouted,
        sum.all_shards_unhealthy,
        sum.hedges_launched,
        sum.hedges_won,
        sum.hedges_wasted,
        sum.hedges_suppressed,
        sum.faults,
        sum.breaker_skips,
        sum.drains,
        sum.readmits,
        sum.dead_banks,
        sum.virtual_rps(),
        wall_ms,
        sum.requests as f64 / (wall_ms * 1e-3),
    ));
    s.push_str("]\n");
    std::fs::write("BENCH_serving.json", s)
        .unwrap_or_else(|e| panic!("writing BENCH_serving.json: {e}"));
}

/// Evaluates the analytic scheduler on the fused+offloaded Bootstrap
/// sequence in Serial vs Pipelined mode (A100 near-bank) and appends one
/// row per mode to both record sets. These rows are pure model output —
/// virtual time, thread-count independent — so `scripts/check.sh` can gate
/// the §V-C overlap bound (speedup in (1.0, 1.35]) and work conservation
/// straight from the JSON.
fn bench_schedule(ckks_records: &mut Vec<Record>, pim_records: &mut Vec<Record>) {
    use anaheim_core::build::Builder;
    use anaheim_core::params::ParamSet;
    use anaheim_core::schedule::ScheduleMode;

    let params = ParamSet::paper_default();
    let n = 1usize << params.log_n;
    let limbs = params.l_max;
    println!("\nSchedule model (Bootstrap on A100 near-bank)");
    for (op, mode) in [
        ("sched_boot_serial", ScheduleMode::Serial),
        ("sched_boot_pipelined", ScheduleMode::Pipelined),
    ] {
        let rt = Anaheim::new(AnaheimConfig::a100_near_bank().with_schedule_mode(mode));
        let seq = Builder::new(params.clone()).bootstrap();
        let report = rt
            .run(seq)
            .unwrap_or_else(|e| panic!("schedule-model Bootstrap run failed: {e}"));
        println!(
            "  {op:22} {:>10.3} ms  (overlap {:.3} ms, {} segments, {} transitions)",
            report.total_ns / 1e6,
            report.stream_overlap_ns / 1e6,
            report.segments.len(),
            report.transitions
        );
        let shared = |bytes_key: &'static str, bytes: u64| Record {
            op,
            n,
            limbs,
            threads: 1,
            ns_per_op: report.total_ns,
            ns_per_op_p50: report.total_ns,
            samples: 1,
            extras: vec![
                (bytes_key, bytes),
                ("transitions", u64::from(report.transitions)),
                ("segments", report.segments.len() as u64),
                ("overlap_ns", report.stream_overlap_ns.round() as u64),
            ],
        };
        ckks_records.push(shared("gpu_dram_bytes", report.gpu_dram_bytes));
        pim_records.push(shared("pim_dram_bytes", report.pim_dram_bytes));
    }
}

/// Evaluation-key DRAM-traffic model (the `docs/KEYS.md` trajectory):
/// replays every `Evk` read of a built sequence through the A100's
/// object-granularity L2 ([`gpu::L2Cache`], 40 MB) and reports the
/// hit/miss byte split next to the uncached total
/// ([`anaheim_core::ir::OpSequence::evk_read_bytes`]). Pure model rows — samples = 1,
/// virtual time = DRAM bytes at A100 bandwidth — named with the `sched_`
/// prefix so the small-ring perf gate skips them; `scripts/check.sh`
/// asserts `evk_hit_bytes + evk_miss_bytes == evk_uncached_bytes` on
/// every row carrying the fields.
fn bench_evk_traffic(records: &mut Vec<Record>) {
    use anaheim_core::build::{Builder, LinTransStyle};
    use anaheim_core::ir::{ObjKind, OpSequence};
    use anaheim_core::params::ParamSet;
    use gpu::{GpuConfig, L2Cache};

    let gpu_cfg = GpuConfig::a100_80gb();
    // GB/s reads as bytes/ns, so the division below lands in ns directly.
    let bw_bytes_per_ns = gpu_cfg.dram_bw_gbps;
    println!(
        "\nEvaluation-key traffic model (A100 L2 {} MB)",
        gpu_cfg.l2_bytes >> 20
    );

    let mut replay = |op: &'static str, headline: &'static str, seq: &OpSequence| {
        let params = &seq.params;
        let mut l2 = L2Cache::new(gpu_cfg.l2_bytes);
        for o in &seq.ops {
            for r in o.reads.iter().filter(|r| r.kind == ObjKind::Evk) {
                l2.read(r.id, r.bytes as usize);
            }
        }
        let uncached = seq.evk_read_bytes();
        let (hit, miss) = (l2.hit_bytes(), l2.miss_bytes());
        assert_eq!(hit + miss, uncached, "every evk read is a hit or a miss");
        println!(
            "  {op:24} evk {:>8.1} MB uncached -> {:>8.1} MB DRAM ({:.1} MB amortized), \
             key {:.1} MB",
            uncached as f64 / 1e6,
            miss as f64 / 1e6,
            hit as f64 / 1e6,
            params.evk_bytes() as f64 / 1e6,
        );
        records.push(Record {
            op,
            n: params.n(),
            limbs: params.l_max,
            threads: 1,
            ns_per_op: miss as f64 / bw_bytes_per_ns,
            ns_per_op_p50: miss as f64 / bw_bytes_per_ns,
            samples: 1,
            extras: vec![
                (headline, miss),
                ("evk_uncached_bytes", uncached),
                ("evk_hit_bytes", hit),
                ("evk_miss_bytes", miss),
                ("evk_bytes", params.evk_bytes() as u64),
            ],
        });
    };

    // Fig. 2b decomposition sweep: Bootstrap switches keys with a fresh
    // evk every time (relin, conjugation, per-step rotations), so nothing
    // revisits inside 40 MB and the evk traffic is all DRAM — the paper's
    // reason to move keyswitching near memory in the first place.
    for d in [2usize, 3, 4, 6, 8] {
        let op = match d {
            2 => "sched_evk_boot_d2",
            3 => "sched_evk_boot_d3",
            4 => "sched_evk_boot_d4",
            6 => "sched_evk_boot_d6",
            8 => "sched_evk_boot_d8",
            _ => unreachable!(),
        };
        let seq = Builder::new(ParamSet::with_decomposition(d)).bootstrap();
        replay(op, "bytes_per_bootstrap", &seq);
    }

    // MinKS reuses one rotation key for every step (§III-B): at a shallow
    // level the shared per-digit objects fit in L2, so every revisit is a
    // hit — the single-program analogue of the serving layer's
    // same-tenant batch amortization.
    let seq = Builder::new(ParamSet::paper_default()).lintrans(14, 8, LinTransStyle::MinKS, false);
    replay("sched_evk_lintrans_minks", "evk_dram_bytes", &seq);
}

/// Measures how much parallel CPU the machine actually grants: the
/// throughput ratio of two spin threads vs one. Containers often report
/// more hardware threads than their cgroup/host contention delivers, and
/// every speedup in the emitted JSON is bounded by this number.
fn effective_parallelism() -> f64 {
    fn spin(iters: u64) -> u64 {
        let mut x = 1u64;
        for i in 0..iters {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        x
    }
    let iters = 50_000_000;
    let t0 = Instant::now();
    std::hint::black_box(spin(iters));
    let one = t0.elapsed();
    let t0 = Instant::now();
    let handles: Vec<_> = (0..2)
        .map(|_| std::thread::spawn(move || std::hint::black_box(spin(iters))))
        .collect();
    for h in handles {
        h.join().expect("spin thread");
    }
    let two = t0.elapsed();
    2.0 * one.as_secs_f64() / two.as_secs_f64()
}

/// Calibrates a `ckks_math::tune` profile against this host: measures the
/// serial per-element cost of each op class on a representative shape
/// (forced-serial so the tuner cannot interfere with its own
/// measurement), the pool's dispatch/per-job overhead, and the effective
/// parallelism, then restores the environment profile. The returned
/// profile is what `--tune-out` writes and `ANAHEIM_PAR_PROFILE` loads.
fn calibrate_tune_profile(quick: bool, par_eff: f64) -> ckks_math::tune::Profile {
    use ckks_math::modulus::Modulus;
    use ckks_math::ntt::NttContext;
    use ckks_math::poly::Poly;
    use ckks_math::prime::generate_ntt_primes;
    use ckks_math::rns::BasisConverter;
    use ckks_math::tune::{self, Profile};
    use std::sync::Arc;

    let (log_n, limbs) = if quick { (10usize, 4usize) } else { (12, 8) };
    let n = 1usize << log_n;
    let basis: Vec<Arc<NttContext>> = generate_ntt_primes(45, 2 * limbs, 2 * n as u64)
        .into_iter()
        .map(|q| Arc::new(NttContext::new(n, Modulus::new(q))))
        .collect();
    let (from, to) = basis.split_at(limbs);
    let coeffs: Vec<i64> = (0..n as i64).map(|i| (i * 37 + 5) % 1001 - 500).collect();
    let x = Poly::from_coeff_i64(from, &coeffs);
    let y = Poly::from_coeff_i64(from, &coeffs);
    let conv = BasisConverter::new(from, to);
    let budget = Budget {
        samples: if quick { 3 } else { 5 },
        min_iters: 3,
        min_millis: if quick { 2 } else { 15 },
    };

    // Serial-profile measurements: per-class ns per model work unit.
    tune::set_profile(Profile::serial());
    let total = (limbs * n) as f64;
    let ew = {
        let mut acc = x.duplicate();
        time_ns(budget, || acc.add_assign(&y)).p50 / total
    };
    let ntt = {
        let mut p = x.duplicate();
        time_ns(budget, || {
            p.to_eval();
            p.to_coeff();
        })
        .p50 / (2.0 * total * log_n as f64)
    };
    let bconv = {
        let refs: Vec<&[u64]> = (0..limbs).map(|i| x.limb(i).data()).collect();
        // Model form: `to` items of `limbs·n` elements each.
        time_ns(budget, || {
            let _ = conv.convert_approx(&refs);
        })
        .p50 / (to.len() as f64 * total)
    };
    let auto = time_ns(budget, || {
        let _ = x.automorphism(5);
    })
    .p50 / total;

    // Pool overhead: time an empty chunked fan-out at two job counts and
    // solve `cost(j) = dispatch + j·job` from the pair.
    parpool::set_threads(8);
    let overhead = |jobs: usize| {
        time_ns(
            Budget {
                samples: 5,
                min_iters: 50,
                min_millis: 1,
            },
            || {
                parpool::run_chunked(jobs, jobs, &|i| {
                    std::hint::black_box(i);
                })
            },
        )
        .p50
    };
    let (t2, t8) = (overhead(2), overhead(8));
    let job_ns = ((t8 - t2) / 6.0).max(0.0);
    let dispatch_ns = (t2 - 2.0 * job_ns).max(0.0);
    parpool::set_threads(0);
    tune::reset_profile();

    let mut p = Profile::default_seeded();
    p.par_eff = par_eff.max(1.0);
    p.dispatch_ns = dispatch_ns;
    p.job_ns = job_ns;
    p.per_elem_ns = [ew, ntt, bconv, auto];
    p
}

const USAGE: &str =
    "usage: bench_json [--quick] [--trace-out FILE] [--metrics-out FILE] [--tune-out FILE]";

/// Reports a command-line problem on stderr and exits nonzero. Argument
/// mistakes are operator errors, not harness bugs — no panic, no backtrace.
fn usage_error(msg: &str) -> ! {
    eprintln!("bench_json: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn main() {
    let mut quick = false;
    let mut trace_out: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut tune_out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--trace-out" => {
                trace_out = Some(
                    args.next()
                        .unwrap_or_else(|| usage_error("--trace-out needs a file path")),
                )
            }
            "--metrics-out" => {
                metrics_out = Some(
                    args.next()
                        .unwrap_or_else(|| usage_error("--metrics-out needs a file path")),
                )
            }
            "--tune-out" => {
                tune_out = Some(
                    args.next()
                        .unwrap_or_else(|| usage_error("--tune-out needs a file path")),
                )
            }
            other => usage_error(&format!("unknown argument {other:?}")),
        }
    }
    let sweep: &[usize] = if quick { &[1, 4] } else { &[1, 2, 4, 8] };
    let par_eff = effective_parallelism();
    println!(
        "bench_json: mode={}, thread sweep {:?}, {} hardware threads, \
         effective parallelism {:.2}x (2-thread spin calibration)",
        if quick { "quick" } else { "full" },
        sweep,
        std::thread::available_parallelism().map_or(1, |p| p.get()),
        par_eff
    );

    if let Some(path) = &tune_out {
        let profile = calibrate_tune_profile(quick, par_eff);
        std::fs::write(path, profile.to_profile_string())
            .unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!(
            "  wrote {path} (tune profile: par_eff {:.2}, dispatch {:.0} ns, job {:.0} ns, \
             per-elem ns [ew {:.2}, ntt {:.2}, bconv {:.2}, auto {:.2}])",
            profile.par_eff,
            profile.dispatch_ns,
            profile.job_ns,
            profile.per_elem_ns[0],
            profile.per_elem_ns[1],
            profile.per_elem_ns[2],
            profile.per_elem_ns[3],
        );
    }

    // Ring sweep: quick mode keeps the historical smoke shape; full mode
    // covers the small rings the no-regression gate watches (2¹⁰, 2¹²)
    // plus the paper's Table IV sizes (2¹³–2¹⁶) at growing limb depths.
    // Timing budgets shrink as N grows — at 2¹⁶ a single keyswitch is
    // tens of milliseconds, so a handful of single-iteration samples is
    // both affordable and (with the median) stable.
    let configs: Vec<(CkksParams, Budget)> = if quick {
        vec![(
            CkksParams::test_small(),
            Budget {
                samples: 3,
                min_iters: 2,
                min_millis: 4,
            },
        )]
    } else {
        let ring = |log_n: u32, levels: usize, alpha: usize| {
            CkksParams::builder()
                .log_n(log_n)
                .levels(levels)
                .alpha(alpha)
                .scale_bits(40)
                .build()
        };
        vec![
            // The small rings feed the check.sh no-regression gate, so they
            // get the deepest sample budget: a 9-sample median is what keeps
            // a noisy-neighbour blip from tripping a 5% threshold.
            (
                ring(10, 4, 2),
                Budget {
                    samples: 9,
                    min_iters: 3,
                    min_millis: 30,
                },
            ),
            (
                ring(12, 8, 2),
                Budget {
                    samples: 9,
                    min_iters: 3,
                    min_millis: 30,
                },
            ),
            (
                ring(13, 8, 2),
                Budget {
                    samples: 5,
                    min_iters: 2,
                    min_millis: 30,
                },
            ),
            (
                ring(14, 12, 3),
                Budget {
                    samples: 5,
                    min_iters: 1,
                    min_millis: 30,
                },
            ),
            (
                ring(15, 16, 4),
                Budget {
                    samples: 3,
                    min_iters: 1,
                    min_millis: 0,
                },
            ),
            (
                ring(16, 24, 4),
                Budget {
                    samples: 3,
                    min_iters: 1,
                    min_millis: 0,
                },
            ),
        ]
    };

    let mut ckks_records = Vec::new();
    for (params, budget) in configs {
        println!(
            "  ckks ring: n=2^{} levels={} alpha={}",
            params.log_n, params.levels, params.alpha
        );
        bench_ckks(params, budget, sweep, &mut ckks_records);
    }
    print_summary("CKKS", &ckks_records);

    let mut pim_records = Vec::new();
    bench_pim(quick, sweep, &mut pim_records);
    print_summary("PIM", &pim_records);

    bench_schedule(&mut ckks_records, &mut pim_records);
    bench_evk_traffic(&mut ckks_records);
    write_json("BENCH_ckks.json", &ckks_records);
    write_json("BENCH_pim.json", &pim_records);

    bench_serving(quick);

    if trace_out.is_some() || metrics_out.is_some() {
        emit_telemetry(trace_out.as_deref(), metrics_out.as_deref());
    }

    println!(
        "\nwrote BENCH_ckks.json ({} records), BENCH_pim.json ({} records), \
         BENCH_serving.json (6 scenarios)",
        ckks_records.len(),
        pim_records.len()
    );
}
