//! Criterion bench: the negacyclic NTT (the compute-intensive op prior
//! work fixates on, §I), across ring degrees.

use ckks_math::modulus::Modulus;
use ckks_math::ntt::NttContext;
use ckks_math::prime::generate_ntt_primes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_ntt(c: &mut Criterion) {
    let mut g = c.benchmark_group("ntt");
    for log_n in [10u32, 12, 13] {
        let n = 1usize << log_n;
        let q = generate_ntt_primes(55, 1, 2 * n as u64)[0];
        let ctx = NttContext::new(n, Modulus::new(q));
        let data: Vec<u64> = (0..n as u64).map(|i| (i * 2654435761) % q).collect();
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("forward", n), &n, |b, _| {
            b.iter(|| {
                let mut a = data.clone();
                ctx.forward(&mut a);
                a
            })
        });
        g.bench_with_input(BenchmarkId::new("inverse", n), &n, |b, _| {
            let mut f = data.clone();
            ctx.forward(&mut f);
            b.iter(|| {
                let mut a = f.clone();
                ctx.inverse(&mut a);
                a
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_ntt);
criterion_main!(benches);
