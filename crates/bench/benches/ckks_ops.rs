//! Criterion bench: the basic CKKS functions (the functional analogue of
//! Fig. 2a) on the small test ring.

use ckks::prelude::*;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_ops(c: &mut Criterion) {
    let ctx = CkksContext::new(CkksParams::test_small());
    let mut rng = StdRng::seed_from_u64(1);
    let keys = KeyGenerator::new(&ctx, &mut rng).generate(&[1]);
    let enc = Encoder::new(&ctx);
    let ev = Evaluator::new(&ctx);
    let msg: Vec<Complex> = (0..ctx.slots())
        .map(|i| Complex::new(i as f64 * 1e-3, 0.0))
        .collect();
    let pt = enc.encode(&msg, ctx.max_level());
    let ct = keys.public.encrypt(&pt, &mut rng);

    let mut g = c.benchmark_group("ckks_functions");
    g.bench_function("hadd", |b| b.iter(|| ev.add(&ct, &ct)));
    g.bench_function("pmult", |b| b.iter(|| ev.mul_plain(&ct, &pt)));
    g.bench_function("hmult", |b| b.iter(|| ev.mul_relin(&ct, &ct, &keys.relin)));
    g.bench_function("hrot", |b| b.iter(|| ev.rotate(&ct, 1, &keys)));
    g.bench_function("rescale", |b| {
        let t = ev.mul_plain(&ct, &pt);
        b.iter(|| ev.rescale(&t))
    });
    g.finish();
}

criterion_group!(benches, bench_ops);
criterion_main!(benches);
