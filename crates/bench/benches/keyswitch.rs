//! Criterion bench: the three key-switching phases (ModUp / KeyMult /
//! ModDown, §II-B) in isolation — the structure Anaheim's PIM offload is
//! built around.

use ckks::keys::KeyGenerator;
use ckks::keyswitch::KeySwitcher;
use ckks::prelude::*;
use ckks_math::poly::Format;
use ckks_math::sampling;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_keyswitch(c: &mut Criterion) {
    let ctx = CkksContext::new(CkksParams::test_small());
    let mut rng = StdRng::seed_from_u64(2);
    let mut kg = KeyGenerator::new(&ctx, &mut rng);
    let sk = kg.gen_secret();
    let relin = kg.gen_relin(&sk);
    let level = ctx.max_level();
    let a = sampling::uniform(&mut rng, ctx.basis_q(level), Format::Eval);
    let ks = KeySwitcher::new(&ctx);

    let mut g = c.benchmark_group("keyswitch");
    g.bench_function("decompose_mod_up", |b| {
        b.iter(|| ks.decompose_mod_up(&a, level))
    });
    let hoisted = ks.decompose_mod_up(&a, level);
    g.bench_function("key_mult", |b| b.iter(|| ks.key_mult(&hoisted, &relin)));
    let (kb, ka) = ks.key_mult(&hoisted, &relin);
    g.bench_function("mod_down_pair", |b| {
        b.iter(|| ks.mod_down_pair(&kb, &ka, level))
    });
    g.bench_function("full_switch", |b| b.iter(|| ks.switch(&a, &relin, level)));
    g.finish();
}

criterion_group!(benches, bench_keyswitch);
criterion_main!(benches);
