//! Criterion bench: the simulators themselves — the PIM timing engine
//! (per Fig. 9 data point) and a full Anaheim bootstrap model run (per
//! Fig. 8 bar) — documenting the cost of regenerating the evaluation.

use anaheim_core::build::Builder;
use anaheim_core::framework::{Anaheim, AnaheimConfig};
use anaheim_core::params::ParamSet;
use criterion::{criterion_group, criterion_main, Criterion};
use pim::device::PimDeviceConfig;
use pim::exec::{PimExecutor, PimKernelSpec};
use pim::isa::PimInstruction;
use pim::layout::LayoutPolicy;

fn bench_model(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    let dev = PimDeviceConfig::a100_near_bank();
    let exec = PimExecutor::new(&dev, LayoutPolicy::ColumnPartitioned);
    let spec = PimKernelSpec {
        instr: PimInstruction::PAccum(4),
        limbs: 54,
        n: 1 << 16,
    };
    g.bench_function("pim_kernel_simulation", |b| {
        b.iter(|| exec.execute(&spec).unwrap())
    });

    g.sample_size(10);
    g.bench_function("bootstrap_model_run", |b| {
        b.iter(|| {
            let mut bd = Builder::new(ParamSet::paper_default());
            let seq = bd.bootstrap();
            Anaheim::new(AnaheimConfig::a100_near_bank())
                .run(seq)
                .unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_model);
criterion_main!(benches);
