//! Criterion bench: the functional PIM MMAC datapath (Table II) — modular
//! throughput of the Montgomery lanes per instruction.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pim::isa::PimInstruction;
use pim::mmac::PimUnit;

const Q: u32 = 268369921;

fn bench_unit(c: &mut Criterion) {
    let unit = PimUnit::new(Q, 32);
    let n = 4096usize;
    let mk = |seed: u32| -> Vec<u32> {
        (0..n as u32)
            .map(|i| (seed.wrapping_mul(2654435761).wrapping_add(i * 97)) % Q)
            .collect()
    };
    let a = mk(1);
    let b = mk(2);
    let p = mk(3);
    let cd = mk(4);
    let mut g = c.benchmark_group("pim_unit");
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("add", |bch| {
        bch.iter(|| unit.execute(PimInstruction::Add, &[&a, &b], &[]))
    });
    g.bench_function("mult", |bch| {
        bch.iter(|| unit.execute(PimInstruction::Mult, &[&a, &b], &[]))
    });
    g.bench_function("pmac", |bch| {
        bch.iter(|| unit.execute(PimInstruction::PMac, &[&a, &b, &p, &cd, &cd], &[]))
    });
    g.bench_function("tensor", |bch| {
        bch.iter(|| unit.execute(PimInstruction::Tensor, &[&a, &b, &p, &cd], &[]))
    });
    let refs: Vec<&[u32]> = vec![&a, &b, &p, &cd, &a, &b, &p, &cd, &a, &b, &p, &cd];
    g.bench_function("paccum4", |bch| {
        bch.iter(|| unit.execute(PimInstruction::PAccum(4), &refs, &[]))
    });
    g.finish();
}

criterion_group!(benches, bench_unit);
criterion_main!(benches);
