//! Execution reports: timings, energy, breakdowns, and Gantt rendering.

use std::collections::BTreeMap;

use crate::health::BreakerTransition;
use crate::ir::Executor;

/// One bar of the execution timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct GanttSegment {
    /// Start time (ns).
    pub start_ns: f64,
    /// End time (ns).
    pub end_ns: f64,
    /// GPU or PIM.
    pub executor: Executor,
    /// Breakdown category label.
    pub class: &'static str,
    /// Human-readable op label.
    pub label: &'static str,
    /// Degraded-mode work: a wasted PIM attempt that failed its integrity
    /// check, or the GPU re-execution that replaced it.
    pub degraded: bool,
}

impl GanttSegment {
    /// Segment duration.
    pub fn duration_ns(&self) -> f64 {
        self.end_ns - self.start_ns
    }
}

/// The result of scheduling an op sequence.
#[derive(Debug, Clone, Default)]
pub struct ExecutionReport {
    /// End-to-end latency in nanoseconds.
    pub total_ns: f64,
    /// Total energy in joules.
    pub energy_j: f64,
    /// GPU-side DRAM traffic in bytes (the Fig. 4b metric).
    pub gpu_dram_bytes: u64,
    /// PIM-side internal traffic in bytes.
    pub pim_dram_bytes: u64,
    /// Time per breakdown category (ns), e.g. "(I)NTT", "element-wise".
    pub breakdown_ns: BTreeMap<&'static str, f64>,
    /// The timeline.
    pub segments: Vec<GanttSegment>,
    /// GPU↔PIM transitions taken.
    pub transitions: u32,
    /// PIM integrity-check failures observed (each failed attempt counts).
    pub faults_detected: u32,
    /// PIM retries taken after transient integrity failures.
    pub pim_retries: u32,
    /// Degraded-mode segments: wasted PIM attempts plus GPU re-executions.
    pub degraded_segments: u32,
    /// Kernels that exhausted their PIM attempts and re-executed on the GPU.
    pub pim_fallbacks: u32,
    /// Kernels routed straight to the GPU because their bank's circuit
    /// breaker was open (no PIM attempt was made).
    pub breaker_skips: u32,
    /// Idle time charged to the timeline by retry backoff (ns).
    pub backoff_ns: f64,
    /// Breaker state changes that occurred during this run (also appended
    /// to the attached [`crate::health::HealthRegistry`]'s log).
    pub breaker_transitions: Vec<BreakerTransition>,
    /// Virtual time the pipelined schedule overlapped across the two
    /// streams: the serial-equivalent length (kernel time + handoffs +
    /// backoff) minus the pipelined makespan. Always 0 in serial mode.
    pub stream_overlap_ns: f64,
    /// True when the run was cancelled at a segment boundary because the
    /// scheduler's deadline budget ran out; `total_ns` is then the virtual
    /// time consumed and `segments` holds only the work actually done.
    pub cancelled: bool,
    /// GPU stream stalls injected by the fault plan (latency-only events).
    pub gpu_stalls: u32,
    /// GPU transfer bit flips injected by the fault plan. Each one also
    /// fails the end-to-end integrity verdict.
    pub gpu_faults: u32,
    /// End-to-end integrity verdict: true when a corrupted result survived
    /// to the output. PIM faults are caught by per-kernel residue checksums
    /// and retried or re-executed, so they never set this; GPU transfer
    /// flips have no per-kernel check and always do.
    pub integrity_failed: bool,
}

impl ExecutionReport {
    /// Latency in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.total_ns / 1e6
    }

    /// Energy-delay product in J·s (the paper's headline metric).
    pub fn edp(&self) -> f64 {
        self.energy_j * self.total_ns * 1e-9
    }

    /// Fraction of total time spent in a breakdown category.
    pub fn fraction(&self, class: &str) -> f64 {
        self.breakdown_ns
            .iter()
            .find(|(k, _)| **k == class)
            .map(|(_, v)| v / self.total_ns)
            .unwrap_or(0.0)
    }

    /// Adds a segment and updates totals/breakdown.
    pub fn push_segment(&mut self, seg: GanttSegment) {
        *self.breakdown_ns.entry(seg.class).or_insert(0.0) += seg.duration_ns();
        self.total_ns = self.total_ns.max(seg.end_ns);
        if seg.degraded {
            self.degraded_segments += 1;
        }
        self.segments.push(seg);
    }

    /// Renders an ASCII Gantt chart (Fig. 4a-style) of `width` columns.
    pub fn render_gantt(&self, width: usize) -> String {
        if self.segments.is_empty() || self.total_ns <= 0.0 {
            return String::from("(empty timeline)\n");
        }
        let scale = width as f64 / self.total_ns;
        let mut rows: BTreeMap<&'static str, Vec<char>> = BTreeMap::new();
        rows.insert("GPU", vec![' '; width]);
        rows.insert("PIM", vec![' '; width]);
        for seg in &self.segments {
            let row = match seg.executor {
                Executor::Gpu => "GPU",
                Executor::Pim => "PIM",
            };
            let glyph = match seg.class {
                "(I)NTT" => 'N',
                "BConv" => 'B',
                "element-wise" => 'e',
                "automorphism" => 'a',
                "write-back" => 'w',
                _ => '#',
            };
            let s = (seg.start_ns * scale) as usize;
            let e = ((seg.end_ns * scale) as usize).min(width);
            let cells = rows.get_mut(row).expect("row exists");
            for cell in cells.iter_mut().take(e.max(s + 1).min(width)).skip(s) {
                *cell = glyph;
            }
        }
        let mut out = String::new();
        out.push_str(&format!(
            "timeline 0..{:.1} us  (N=NTT B=BConv e=elementwise a=aut w=writeback)\n",
            self.total_ns / 1e3
        ));
        for (name, cells) in rows.iter().rev() {
            out.push_str(&format!("{name} |{}|\n", cells.iter().collect::<String>()));
        }
        out
    }

    /// Time spent on each executor (GPU, PIM), from the timeline.
    pub fn executor_time_ns(&self, ex: Executor) -> f64 {
        self.segments
            .iter()
            .filter(|s| s.executor == ex)
            .map(|s| s.duration_ns())
            .sum()
    }

    /// Lower bound on the runtime if PIM kernels overlapped perfectly with
    /// GPU kernels (the pipelining the paper deliberately does *not* build,
    /// §V-C): `max(gpu_time, pim_time)`. The paper's argument is that once
    /// element-wise ops move to PIM their share is small, so this bound is
    /// close to the sequential time — quantified by
    /// [`Self::pipelining_headroom`].
    pub fn pipelining_bound_ns(&self) -> f64 {
        let gpu = self.executor_time_ns(Executor::Gpu);
        let pim = self.executor_time_ns(Executor::Pim);
        gpu.max(pim)
    }

    /// The maximum speedup perfect GPU/PIM pipelining could add
    /// (`total / bound`); §V-C expects this to be small.
    pub fn pipelining_headroom(&self) -> f64 {
        let b = self.pipelining_bound_ns();
        if b <= 0.0 {
            1.0
        } else {
            self.total_ns / b
        }
    }

    /// A one-line textual summary.
    pub fn summary_line(&self) -> String {
        let mut line = format!(
            "{:.3} ms, {:.3} J, EDP {:.3e}, GPU DRAM {:.2} GB, PIM {:.2} GB, {} transitions",
            self.total_ms(),
            self.energy_j,
            self.edp(),
            self.gpu_dram_bytes as f64 / 1e9,
            self.pim_dram_bytes as f64 / 1e9,
            self.transitions
        );
        if self.faults_detected > 0 {
            line.push_str(&format!(
                ", {} fault(s) detected ({} retries, {} degraded segments)",
                self.faults_detected, self.pim_retries, self.degraded_segments
            ));
        }
        if !self.breaker_transitions.is_empty() || self.breaker_skips > 0 {
            line.push_str(&format!(
                ", {} breaker transition(s) ({} kernels routed around)",
                self.breaker_transitions.len(),
                self.breaker_skips
            ));
        }
        if self.gpu_stalls > 0 || self.gpu_faults > 0 {
            line.push_str(&format!(
                ", {} GPU stall(s), {} GPU transfer flip(s)",
                self.gpu_stalls, self.gpu_faults
            ));
        }
        if self.integrity_failed {
            line.push_str(", e2e integrity FAILED");
        }
        if self.cancelled {
            line.push_str(&format!(
                ", CANCELLED over budget after {} segment(s)",
                self.segments.len()
            ));
        }
        line
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(s: f64, e: f64, ex: Executor, class: &'static str) -> GanttSegment {
        GanttSegment {
            start_ns: s,
            end_ns: e,
            executor: ex,
            class,
            label: "t",
            degraded: false,
        }
    }

    #[test]
    fn degraded_segments_counted() {
        let mut r = ExecutionReport::default();
        r.push_segment(seg(0.0, 100.0, Executor::Pim, "element-wise"));
        let mut bad = seg(100.0, 150.0, Executor::Gpu, "element-wise");
        bad.degraded = true;
        r.push_segment(bad);
        assert_eq!(r.degraded_segments, 1);
        r.faults_detected = 1;
        assert!(r.summary_line().contains("1 fault(s) detected"));
    }

    #[test]
    fn totals_and_breakdown() {
        let mut r = ExecutionReport::default();
        r.push_segment(seg(0.0, 100.0, Executor::Gpu, "(I)NTT"));
        r.push_segment(seg(100.0, 300.0, Executor::Pim, "element-wise"));
        r.energy_j = 2.0;
        assert_eq!(r.total_ns, 300.0);
        assert!((r.fraction("element-wise") - 2.0 / 3.0).abs() < 1e-12);
        assert!((r.edp() - 2.0 * 300.0e-9).abs() < 1e-18);
    }

    #[test]
    fn gantt_renders_rows() {
        let mut r = ExecutionReport::default();
        r.push_segment(seg(0.0, 50.0, Executor::Gpu, "(I)NTT"));
        r.push_segment(seg(50.0, 100.0, Executor::Pim, "element-wise"));
        let g = r.render_gantt(40);
        assert!(g.contains("GPU |"));
        assert!(g.contains("PIM |"));
        assert!(g.contains('N'));
        assert!(g.contains('e'));
    }

    #[test]
    fn pipelining_bound() {
        let mut r = ExecutionReport::default();
        r.push_segment(seg(0.0, 300.0, Executor::Gpu, "(I)NTT"));
        r.push_segment(seg(300.0, 400.0, Executor::Pim, "element-wise"));
        assert_eq!(r.pipelining_bound_ns(), 300.0);
        assert!((r.pipelining_headroom() - 400.0 / 300.0).abs() < 1e-12);
    }

    #[test]
    fn empty_timeline() {
        let r = ExecutionReport::default();
        assert_eq!(r.render_gantt(10), "(empty timeline)\n");
        assert_eq!(r.fraction("anything"), 0.0);
    }
}
