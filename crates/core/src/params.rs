//! Paper-scale CKKS parameter descriptors (Table IV).
//!
//! These are *model* parameters: `N = 2^16` with up to 68 word-sized limbs
//! never needs numeric NTT tables here — the `ckks` crate instantiates
//! small rings for functional validation, while this descriptor drives the
//! performance model. Words are 32-bit (Cheddar-style) with double-prime
//! scaling \[1\], \[45\]: one multiplicative *level* consumes **two** limbs.

/// A CKKS parameter descriptor for the cost model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamSet {
    /// log2 ring degree (Table IV: 16).
    pub log_n: u32,
    /// Maximum number of `Q` limbs (54 at the default `D = 4`).
    pub l_max: usize,
    /// Number of `P` limbs (α, 14 at `D = 4`).
    pub alpha: usize,
    /// Decomposition number `D = ⌈L/α⌉` \[34\].
    pub d: usize,
    /// Word size in bytes (4: 28-bit primes stored as 32-bit words, §VI-A).
    pub word_bytes: usize,
    /// Limbs remaining after bootstrapping (54 → 24 in §VII-A).
    pub l_boot_out: usize,
    /// Number of multiplications available between bootstraps
    /// (`L_eff`, Table I; with double-prime scaling each consumes 2 limbs).
    pub l_eff: usize,
    /// CoeffToSlot FFT decomposition depth (fftIter, MAD \[2\]).
    pub fft_iter_c2s: usize,
    /// SlotToCoeff FFT decomposition depth.
    pub fft_iter_s2c: usize,
}

impl ParamSet {
    /// The paper's default: `D = 4`, `L = 54`, `α = 14`, fftIter mix of
    /// three and four (§IV-C), `L_eff = 11`.
    pub fn paper_default() -> Self {
        Self::with_decomposition(4)
    }

    /// The Fig. 2b sweep: for each `D`, `L` and `α` are rebalanced keeping
    /// the total limb budget (`L + α ≈ 68` words ⇒ `log PQ < 1623` at
    /// ~24-bit average primes) and `L_eff` follows from the remaining
    /// post-bootstrap chain.
    ///
    /// # Panics
    ///
    /// Panics for `D` outside `{2, 3, 4, 6, 8}`.
    pub fn with_decomposition(d: usize) -> Self {
        // (L, alpha, L_eff) per D, limb budget L + α = 68.
        let (l_max, alpha, l_eff) = match d {
            2 => (45, 23, 6),
            3 => (51, 17, 9),
            4 => (54, 14, 11),
            6 => (58, 10, 13),
            8 => (60, 8, 14),
            _ => panic!("unsupported decomposition number {d}"),
        };
        Self {
            log_n: 16,
            l_max,
            alpha,
            d,
            word_bytes: 4,
            l_boot_out: l_max.saturating_sub(30),
            l_eff,
            fft_iter_c2s: 4,
            fft_iter_s2c: 3,
        }
    }

    /// A custom descriptor mirroring a (typically small, functional)
    /// `ckks` context, used by the cross-validation tests that compare the
    /// IR builders' op counts with the functional library's measured
    /// counters.
    pub fn custom(log_n: u32, l_max: usize, alpha: usize) -> Self {
        assert!(l_max >= 1 && alpha >= 1, "degenerate parameters");
        Self {
            log_n,
            l_max,
            alpha,
            d: l_max.div_ceil(alpha),
            word_bytes: 8, // the functional library uses 64-bit limbs
            l_boot_out: l_max.saturating_sub(2).max(1),
            l_eff: 1,
            fft_iter_c2s: 1,
            fft_iter_s2c: 1,
        }
    }

    /// Overrides both fftIter values (the Fig. 3 sweep).
    pub fn with_fft_iter(mut self, c2s: usize, s2c: usize) -> Self {
        assert!(c2s >= 1 && s2c >= 1, "fftIter must be positive");
        // Each extra FFT stage costs one multiplicative level on each side;
        // L_eff shrinks accordingly (the Fig. 3 trade-off).
        let base = 4 + 3;
        let extra = (c2s + s2c) as isize - base as isize;
        self.l_eff = (self.l_eff as isize - extra).max(1) as usize;
        self.l_boot_out = (self.l_boot_out as isize - 2 * extra).max(4) as usize;
        self.fft_iter_c2s = c2s;
        self.fft_iter_s2c = s2c;
        self
    }

    /// Ring degree.
    pub fn n(&self) -> usize {
        1 << self.log_n
    }

    /// Message slots.
    pub fn slots(&self) -> usize {
        self.n() / 2
    }

    /// Bytes of one limb (`N` words).
    pub fn limb_bytes(&self) -> usize {
        self.n() * self.word_bytes
    }

    /// Bytes of one polynomial at `limbs` limbs.
    pub fn poly_bytes(&self, limbs: usize) -> usize {
        limbs * self.limb_bytes()
    }

    /// Bytes of a full ciphertext at `limbs` limbs (two polynomials).
    pub fn ct_bytes(&self, limbs: usize) -> usize {
        2 * self.poly_bytes(limbs)
    }

    /// Bytes of one evaluation key: `2·D` polynomials over `L_max + α`
    /// limbs (Table I). At the defaults this is the paper's 136 MB evk.
    pub fn evk_bytes(&self) -> usize {
        2 * self.d * self.poly_bytes(self.l_max + self.alpha)
    }

    /// Digit size (α limbs except a possibly short last digit) at a level.
    pub fn digits_at(&self, limbs: usize) -> usize {
        limbs.div_ceil(self.alpha)
    }

    /// The limb budget consumed by one multiplicative level
    /// (2 with double-prime scaling).
    pub fn limbs_per_level(&self) -> usize {
        2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sizes_match_section_3a() {
        let p = ParamSet::paper_default();
        // §III-A: "a polynomial can be as large as 17MB and an evk 136MB".
        let poly_mb = p.poly_bytes(p.l_max + p.alpha) as f64 / (1 << 20) as f64;
        assert!(
            (16.0..18.5).contains(&poly_mb),
            "PQ polynomial ≈ 17 MB, got {poly_mb}"
        );
        let evk_mb = p.evk_bytes() as f64 / (1 << 20) as f64;
        assert!(
            (130.0..140.0).contains(&evk_mb),
            "evk ≈ 136 MB, got {evk_mb}"
        );
        // §III-C: a ciphertext ≈ 27 MB.
        let ct_mb = p.ct_bytes(p.l_max) as f64 / (1 << 20) as f64;
        assert!(
            (26.0..28.5).contains(&ct_mb),
            "ciphertext ≈ 27 MB, got {ct_mb}"
        );
    }

    #[test]
    fn d_sweep_preserves_limb_budget() {
        for d in [2usize, 3, 4, 6, 8] {
            let p = ParamSet::with_decomposition(d);
            assert_eq!(p.l_max + p.alpha, 68, "D={d}");
            assert_eq!(p.d, d);
            assert_eq!(p.digits_at(p.l_max), d);
        }
    }

    #[test]
    fn l_eff_grows_with_d() {
        let mut prev = 0;
        for d in [2usize, 3, 4, 6, 8] {
            let p = ParamSet::with_decomposition(d);
            assert!(p.l_eff > prev, "L_eff must grow with D");
            prev = p.l_eff;
        }
    }

    #[test]
    fn boot_levels_consistent() {
        // L: 2 → 54 → 24 (§VII-A); L_eff = (24 − 2)/2 = 11.
        let p = ParamSet::paper_default();
        assert_eq!(p.l_boot_out, 24);
        assert_eq!((p.l_boot_out - 2) / p.limbs_per_level(), p.l_eff);
    }

    #[test]
    fn fft_iter_tradeoff() {
        let base = ParamSet::paper_default();
        let more = base.clone().with_fft_iter(6, 6);
        assert!(
            more.l_eff < base.l_eff,
            "higher fftIter lowers L_eff (Fig. 3)"
        );
        let less = base.clone().with_fft_iter(3, 3);
        assert!(less.l_eff > base.l_eff);
    }

    #[test]
    #[should_panic(expected = "unsupported decomposition")]
    fn invalid_d_rejected() {
        ParamSet::with_decomposition(5);
    }
}
