//! Deterministic observability glue: the [`Telemetry`] sink the scheduler,
//! serving layer, and workload runner record into.
//!
//! A `Telemetry` bundles an `obs` [`TraceRecorder`] (hierarchical spans in
//! the scheduler's virtual-time domain: segment → kernel → limb batch) with
//! a [`MetricsRegistry`] (the counters/gauges/histograms catalogued in
//! `docs/METRICS.md`). Every recording site is reached only from serial,
//! virtual-time-ordered code — the scheduler loop and the serving dispatch
//! lane — so two runs of the same workload produce byte-identical exports
//! regardless of `ANAHEIM_THREADS`. Span ids come from the recorder's
//! seeded SplitMix64 stream, never a wall clock or thread id.
//!
//! Tracing is strictly opt-in: the scheduler takes `Option<&mut Telemetry>`
//! internally, and the untraced entry points pass `None`, so the disabled
//! path costs one branch per recording site and allocates nothing.

use obs::{MetricsRegistry, SpanId, TraceRecorder};
use pim::exec::PimKernelResult;

use crate::health::{BreakerTransition, HealthSnapshot};
use crate::report::ExecutionReport;

/// Metric names recorded by the scheduler and exporters, kept as constants
/// so the code, the tests, and `docs/METRICS.md` cannot drift apart.
pub mod names {
    /// Kernels executed, by `executor` (gpu/pim) and `class`.
    pub const KERNELS_TOTAL: &str = "anaheim_kernels_total";
    /// Per-kernel virtual duration histogram, by `executor` and `class`.
    pub const KERNEL_NS: &str = "anaheim_kernel_ns";
    /// Bytes moved over the GPU's HBM interface (post-L2 DRAM traffic).
    pub const HBM_BYTES: &str = "anaheim_hbm_bytes_total";
    /// Bytes streamed bank ↔ PIM unit, never crossing the external bus.
    pub const PIM_INTERNAL_BYTES: &str = "anaheim_pim_internal_bytes_total";
    /// Modular ops executed by the PIM MMAC lanes.
    pub const PIM_MMAC_OPS: &str = "anaheim_pim_mmac_ops_total";
    /// ACT/PRE pairs issued by PIM kernels.
    pub const PIM_ACTS: &str = "anaheim_pim_acts_total";
    /// GPU↔PIM stream handoffs.
    pub const TRANSITIONS: &str = "anaheim_transitions_total";
    /// Integrity-check failures observed on the PIM path.
    pub const FAULTS: &str = "anaheim_faults_detected_total";
    /// PIM retries taken after transient failures.
    pub const RETRIES: &str = "anaheim_pim_retries_total";
    /// Kernels re-executed on the GPU after exhausting PIM attempts.
    pub const FALLBACKS: &str = "anaheim_pim_fallbacks_total";
    /// Kernels routed straight to the GPU by an open breaker.
    pub const BREAKER_SKIPS: &str = "anaheim_breaker_skips_total";
    /// Breaker state changes, by destination state (`to`).
    pub const BREAKER_TRANSITIONS: &str = "anaheim_breaker_transitions_total";
    /// Retry backoff charged to the timeline (gauge, ns).
    pub const BACKOFF_NS: &str = "anaheim_backoff_ns";
    /// Virtual time at the end of the last run (gauge, ns).
    pub const VIRTUAL_TIME_NS: &str = "anaheim_virtual_time_ns";
    /// Energy accumulated across runs (gauge, J).
    pub const ENERGY_J: &str = "anaheim_energy_joules";
    /// Per-bank breaker state (0 closed, 1 half-open, 2 open), by `bank`.
    pub const BANK_STATE: &str = "anaheim_bank_state";
    /// Per-bank breaker trips, by `bank`.
    pub const BANK_TRIPS: &str = "anaheim_bank_trips_total";
    /// High-water mark of the serving admission queue.
    pub const QUEUE_DEPTH_MAX: &str = "anaheim_queue_depth_max";
    /// Serving lifecycle events, by `event` (submitted/completed/…).
    pub const SERVING_EVENTS: &str = "anaheim_serving_events_total";
    /// Slack (deadline − finish) of completed requests (histogram, ns).
    pub const DEADLINE_SLACK_NS: &str = "anaheim_deadline_slack_ns";
    /// End-to-end latency of completed requests (histogram, ns).
    pub const REQUEST_LATENCY_NS: &str = "anaheim_request_latency_ns";
    /// FN-level CKKS op counts in limbs, by `op` (exported by
    /// `ckks::opcount::OpCounts::export`).
    pub const FN_OP_LIMBS: &str = "anaheim_fn_op_limbs";
    /// Per-shard state (0 up, 1 draining, 2 cooling, 3 probation), by
    /// `shard`.
    pub const SHARD_STATE: &str = "anaheim_shard_state";
    /// Shard lifecycle events, by `shard` and `event`
    /// (rerouted-in/drains/readmits/probe-failures).
    pub const SHARD_EVENTS: &str = "anaheim_shard_events_total";
    /// Pipelined-mode stream segments scheduled, by `stream` (gpu/pim).
    pub const STREAM_SEGMENTS: &str = "anaheim_stream_segments_total";
    /// Virtual time the pipelined schedule overlapped across the two
    /// streams in the last run (gauge, ns).
    pub const STREAM_OVERLAP_NS: &str = "anaheim_stream_overlap_ns";
    /// Hedged re-executions, by `result` (launched/won/wasted/suppressed).
    pub const HEDGES: &str = "anaheim_hedges_total";
    /// Requests cancelled mid-flight when their deadline budget ran out.
    pub const CANCELLED_OVER_BUDGET: &str = "anaheim_cancelled_over_budget_total";
    /// Requests whose end-to-end integrity verdict failed.
    pub const E2E_INTEGRITY_FAILURES: &str = "anaheim_e2e_integrity_failures_total";
    /// Evaluation-key bytes served from the evk working set (batch-amortized
    /// fetches the tenant's earlier request already paid for).
    pub const EVK_CACHE_HIT_BYTES: &str = "anaheim_evk_cache_hit_bytes_total";
    /// Evaluation-key bytes fetched from DRAM (cold fetches at batch heads).
    pub const EVK_CACHE_MISS_BYTES: &str = "anaheim_evk_cache_miss_bytes_total";
    /// Requests per closed same-tenant dispatch batch (histogram).
    pub const BATCH_SIZE: &str = "anaheim_batch_size";
    /// Same-tenant requests pulled forward past strangers at dispatch
    /// (slack-bounded batch-aware ordering).
    pub const REORDERS: &str = "anaheim_reorders_total";
    /// Reorder candidates denied because a bypassed request's slack
    /// budget (or the K-bypass bound) would have been exceeded.
    pub const REORDER_DENIED_SLACK: &str = "anaheim_reorder_denied_slack_total";
    /// Completed requests that missed their deadline (overran into
    /// negative slack; the slack histogram records them as 0).
    pub const DEADLINE_OVERRUNS: &str = "anaheim_deadline_overruns_total";
    /// Virtual nanoseconds credited back to dispatch lanes by evk-fetch
    /// amortization in the last run (gauge; bytes saved priced at DRAM
    /// bandwidth).
    pub const EVK_SAVED_NS: &str = "anaheim_evk_saved_ns";
}

/// Deadline-slack / latency bucket bounds: 1 µs … 10 s in decades.
const SLACK_BOUNDS: &[f64] = &[1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10];

/// Batch-size bucket bounds: powers of two up to the widest batch a
/// same-tenant run plausibly reaches before the stream interleaves. The
/// 64 bound exists so runs longer than 32 — exactly what batch-aware
/// ordering produces — land in a labeled bucket instead of vanishing
/// into the implicit `+Inf` overflow slot.
const BATCH_BOUNDS: &[f64] = &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0];

/// Display-track names for replica shards (`"shard-0"` …). Span tracks are
/// `&'static str`, so the table is static; fleets wider than the table wrap
/// modulo its length (tracks are a display concern, not an identity).
const SHARD_TRACKS: [&str; 16] = [
    "shard-0", "shard-1", "shard-2", "shard-3", "shard-4", "shard-5", "shard-6", "shard-7",
    "shard-8", "shard-9", "shard-10", "shard-11", "shard-12", "shard-13", "shard-14", "shard-15",
];

/// The display track for replica shard `shard` (`"shard-3"` for shard 3;
/// shards past 15 wrap onto the 16-entry static table).
pub fn shard_track(shard: u32) -> &'static str {
    SHARD_TRACKS[shard as usize % SHARD_TRACKS.len()]
}

/// The recording sink: one trace recorder plus one metrics registry.
///
/// Layers record through the typed hooks below (the scheduler) or directly
/// into the public fields (serving, workloads, benches) using the names in
/// [`names`].
#[derive(Debug, Clone)]
pub struct Telemetry {
    /// The virtual-time span recorder.
    pub trace: TraceRecorder,
    /// The typed metrics registry.
    pub metrics: MetricsRegistry,
}

impl Telemetry {
    /// A telemetry sink whose span ids are seeded with `seed`, with the
    /// full Anaheim metric catalogue described up front.
    pub fn new(seed: u64) -> Self {
        let mut metrics = MetricsRegistry::new();
        metrics.describe_counter(
            names::KERNELS_TOTAL,
            "Kernels executed, by executor and class",
            "kernels",
        );
        metrics.describe_histogram(
            names::KERNEL_NS,
            "Per-kernel virtual duration",
            "ns",
            obs::metrics::DEFAULT_NS_BOUNDS,
        );
        metrics.describe_counter(
            names::HBM_BYTES,
            "Bytes moved over the GPU HBM interface (post-L2)",
            "bytes",
        );
        metrics.describe_counter(
            names::PIM_INTERNAL_BYTES,
            "Bytes streamed bank-to-PIM-unit, internal to the stack",
            "bytes",
        );
        metrics.describe_counter(
            names::PIM_MMAC_OPS,
            "Modular ops executed by PIM MMAC lanes",
            "ops",
        );
        metrics.describe_counter(
            names::PIM_ACTS,
            "ACT/PRE pairs issued by PIM kernels",
            "acts",
        );
        metrics.describe_counter(names::TRANSITIONS, "GPU-PIM stream handoffs", "handoffs");
        metrics.describe_counter(
            names::FAULTS,
            "Integrity-check failures on the PIM path",
            "faults",
        );
        metrics.describe_counter(
            names::RETRIES,
            "PIM retries after transient failures",
            "retries",
        );
        metrics.describe_counter(
            names::FALLBACKS,
            "Kernels re-executed on the GPU after exhausting PIM attempts",
            "kernels",
        );
        metrics.describe_counter(
            names::BREAKER_SKIPS,
            "Kernels routed straight to the GPU by an open breaker",
            "kernels",
        );
        metrics.describe_counter(
            names::BREAKER_TRANSITIONS,
            "Breaker state changes, by destination state",
            "transitions",
        );
        metrics.describe_gauge(
            names::BACKOFF_NS,
            "Retry backoff charged to the timeline",
            "ns",
        );
        metrics.describe_gauge(
            names::VIRTUAL_TIME_NS,
            "Virtual time at the end of the last run",
            "ns",
        );
        metrics.describe_gauge(names::ENERGY_J, "Energy accumulated across runs", "J");
        metrics.describe_gauge(
            names::BANK_STATE,
            "Breaker state per bank domain (0 closed, 1 half-open, 2 open)",
            "state",
        );
        metrics.describe_counter(names::BANK_TRIPS, "Breaker trips per bank domain", "trips");
        metrics.describe_gauge(
            names::QUEUE_DEPTH_MAX,
            "High-water mark of the serving admission queue",
            "requests",
        );
        metrics.describe_counter(
            names::SERVING_EVENTS,
            "Serving lifecycle events, by event",
            "requests",
        );
        metrics.describe_histogram(
            names::DEADLINE_SLACK_NS,
            "Slack (deadline minus finish) of completed requests",
            "ns",
            SLACK_BOUNDS,
        );
        metrics.describe_histogram(
            names::REQUEST_LATENCY_NS,
            "End-to-end latency of completed requests",
            "ns",
            SLACK_BOUNDS,
        );
        metrics.describe_gauge(
            names::FN_OP_LIMBS,
            "FN-level CKKS op counts in limbs, by op",
            "limbs",
        );
        metrics.describe_gauge(
            names::SHARD_STATE,
            "Replica shard state (0 up, 1 draining, 2 cooling, 3 probation)",
            "state",
        );
        metrics.describe_counter(
            names::SHARD_EVENTS,
            "Shard lifecycle events, by shard and event",
            "events",
        );
        metrics.describe_counter(
            names::STREAM_SEGMENTS,
            "Pipelined-mode stream segments scheduled, by stream",
            "segments",
        );
        metrics.describe_gauge(
            names::STREAM_OVERLAP_NS,
            "Virtual time overlapped across the GPU/PIM streams in the last run",
            "ns",
        );
        metrics.describe_counter(names::HEDGES, "Hedged re-executions, by result", "requests");
        metrics.describe_counter(
            names::CANCELLED_OVER_BUDGET,
            "Requests cancelled mid-flight when their deadline budget ran out",
            "requests",
        );
        metrics.describe_counter(
            names::E2E_INTEGRITY_FAILURES,
            "Requests whose end-to-end integrity verdict failed",
            "requests",
        );
        metrics.describe_counter(
            names::EVK_CACHE_HIT_BYTES,
            "Evaluation-key bytes amortized by same-tenant batching",
            "bytes",
        );
        metrics.describe_counter(
            names::EVK_CACHE_MISS_BYTES,
            "Evaluation-key bytes fetched cold at batch heads",
            "bytes",
        );
        metrics.describe_histogram(
            names::BATCH_SIZE,
            "Requests per closed same-tenant dispatch batch",
            "requests",
            BATCH_BOUNDS,
        );
        metrics.describe_counter(
            names::REORDERS,
            "Same-tenant requests pulled forward past strangers at dispatch",
            "requests",
        );
        metrics.describe_counter(
            names::REORDER_DENIED_SLACK,
            "Reorder candidates denied by a bypassed request's slack budget",
            "requests",
        );
        metrics.describe_counter(
            names::DEADLINE_OVERRUNS,
            "Completed requests that missed their deadline",
            "requests",
        );
        metrics.describe_gauge(
            names::EVK_SAVED_NS,
            "Virtual ns credited to dispatch lanes by evk-fetch amortization",
            "ns",
        );
        Self {
            trace: TraceRecorder::new(seed),
            metrics,
        }
    }

    /// Sets the virtual-time base for subsequent spans (mirrors
    /// `HealthRegistry::set_base_ns`; the serving layer sets both to each
    /// request's start time so the exported timeline is globally ordered).
    pub fn set_base_ns(&mut self, base_ns: f64) {
        self.trace.set_base_ns(base_ns);
    }

    /// Renders the trace as Chrome `trace_event` JSON (Perfetto-loadable).
    pub fn chrome_trace(&self) -> String {
        obs::export::chrome_trace_json(&self.trace)
    }

    /// Renders the metrics in the Prometheus text exposition format.
    pub fn prometheus(&self) -> String {
        self.metrics.render_prometheus()
    }

    /// Opens a segment-level span (workload segments, serving requests).
    pub fn open_segment(
        &mut self,
        name: impl Into<String>,
        track: &'static str,
        start_ns: f64,
    ) -> SpanId {
        self.trace.open(name, "segment", track, start_ns)
    }

    /// Closes a segment span opened with [`Self::open_segment`].
    pub fn close_segment(&mut self, id: SpanId, end_ns: f64) {
        self.trace.close(id, end_ns);
    }

    /// Records a GPU kernel: one leaf span on the `GPU` track plus kernel
    /// counters and the duration histogram.
    #[allow(clippy::too_many_arguments)]
    pub fn gpu_kernel(
        &mut self,
        label: &'static str,
        class: &'static str,
        start_ns: f64,
        end_ns: f64,
        dram_bytes: u64,
        bandwidth_bound: bool,
        degraded: bool,
    ) {
        self.trace.leaf(
            label,
            class,
            "GPU",
            start_ns,
            end_ns,
            vec![
                ("bytes", dram_bytes.into()),
                ("bandwidth_bound", bandwidth_bound.into()),
                ("degraded", degraded.into()),
            ],
        );
        self.metrics.inc(
            names::KERNELS_TOTAL,
            &[("executor", "gpu"), ("class", class)],
            1,
        );
        self.metrics.observe(
            names::KERNEL_NS,
            &[("executor", "gpu"), ("class", class)],
            end_ns - start_ns,
        );
        self.metrics.inc(names::HBM_BYTES, &[], dram_bytes);
    }

    /// Records a PIM kernel: a kernel span on the `PIM` track with one
    /// child span per sequential limb batch (the kernel's latency divides
    /// evenly across `r.limb_batches` die-group-parallel rounds), plus the
    /// PIM traffic/compute counters.
    pub fn pim_kernel(
        &mut self,
        label: &'static str,
        start_ns: f64,
        end_ns: f64,
        r: &PimKernelResult,
        degraded: bool,
    ) {
        let id = self.trace.open(label, "element-wise", "PIM", start_ns);
        let batches = r.limb_batches.max(1);
        let dt = (end_ns - start_ns) / batches as f64;
        for b in 0..batches {
            self.trace.leaf(
                format!("limb-batch {b}"),
                "limb-batch",
                "PIM",
                start_ns + b as f64 * dt,
                start_ns + (b + 1) as f64 * dt,
                vec![("batch", b.into())],
            );
        }
        self.trace.annotate(id, "bytes_internal", r.bytes_internal);
        self.trace.annotate(id, "mmac_ops", r.mmac_ops);
        self.trace.annotate(id, "degraded", degraded);
        self.trace.close(id, end_ns);
        self.metrics.inc(
            names::KERNELS_TOTAL,
            &[("executor", "pim"), ("class", "element-wise")],
            1,
        );
        self.metrics.observe(
            names::KERNEL_NS,
            &[("executor", "pim"), ("class", "element-wise")],
            end_ns - start_ns,
        );
        self.metrics
            .inc(names::PIM_INTERNAL_BYTES, &[], r.bytes_internal);
        self.metrics.inc(names::PIM_MMAC_OPS, &[], r.mmac_ops);
        self.metrics.inc(names::PIM_ACTS, &[], r.acts_total);
    }

    /// Records one GPU↔PIM stream handoff.
    pub fn transition(&mut self, start_ns: f64, end_ns: f64) {
        self.trace
            .leaf("handoff", "transition", "stream", start_ns, end_ns, vec![]);
        self.metrics.inc(names::TRANSITIONS, &[], 1);
    }

    /// Records retry backoff charged to the timeline.
    pub fn backoff(&mut self, start_ns: f64, end_ns: f64) {
        self.trace
            .leaf("backoff", "backoff", "PIM", start_ns, end_ns, vec![]);
        self.metrics
            .add_gauge(names::BACKOFF_NS, &[], end_ns - start_ns);
    }

    /// Records an integrity-check failure.
    pub fn fault(&mut self) {
        self.metrics.inc(names::FAULTS, &[], 1);
    }

    /// Records a PIM retry.
    pub fn retry(&mut self) {
        self.metrics.inc(names::RETRIES, &[], 1);
    }

    /// Records a GPU fallback after exhausted PIM attempts.
    pub fn fallback(&mut self) {
        self.metrics.inc(names::FALLBACKS, &[], 1);
    }

    /// Records a kernel skipped past PIM by an open breaker.
    pub fn breaker_skip(&mut self) {
        self.metrics.inc(names::BREAKER_SKIPS, &[], 1);
    }

    /// Records a breaker state change: a zero-width marker span on the
    /// `health` track at local scheduler time `local_now_ns`, plus the
    /// destination-state counter.
    pub fn breaker_transition(&mut self, t: &BreakerTransition, local_now_ns: f64) {
        let to = t.to.to_string();
        self.trace.leaf(
            format!("bank{} {}\u{2192}{}", t.bank, t.from, t.to),
            "breaker",
            "health",
            local_now_ns,
            local_now_ns,
            vec![("cause", t.cause.into())],
        );
        self.metrics
            .inc(names::BREAKER_TRANSITIONS, &[("to", &to)], 1);
    }

    /// Records one pipelined-mode stream segment: a span on the stream's
    /// own telemetry track (`gpu-stream`/`pim-stream`) annotated with how
    /// far it slid left relative to a serial handoff schedule, plus the
    /// per-stream segment counter.
    #[allow(clippy::too_many_arguments)]
    pub fn stream_segment(
        &mut self,
        stream: &'static str,
        index: u32,
        start_ns: f64,
        end_ns: f64,
        ops: u32,
        slide_ns: f64,
    ) {
        let track: &'static str = match stream {
            "gpu" => "gpu-stream",
            _ => "pim-stream",
        };
        self.trace.leaf(
            format!("segment {index}"),
            "stream-segment",
            track,
            start_ns,
            end_ns,
            vec![
                ("ops", u64::from(ops).into()),
                ("slide_ns", slide_ns.into()),
            ],
        );
        self.metrics
            .inc(names::STREAM_SEGMENTS, &[("stream", stream)], 1);
    }

    /// Records the stream-overlap gauge after a pipelined run. Called only
    /// from the pipelined scheduler path so serial-mode exports stay
    /// byte-identical to previous releases (describing a metric renders
    /// nothing until a series exists).
    pub fn stream_overlap(&mut self, overlap_ns: f64) {
        self.metrics
            .set_gauge(names::STREAM_OVERLAP_NS, &[], overlap_ns);
    }

    /// Records run-level aggregates after a scheduler run completes.
    pub fn run_complete(&mut self, report: &ExecutionReport) {
        self.metrics.set_gauge(
            names::VIRTUAL_TIME_NS,
            &[],
            self.trace.base_ns() + report.total_ns,
        );
        self.metrics
            .add_gauge(names::ENERGY_J, &[], report.energy_j);
    }

    /// Exports a [`HealthSnapshot`] idempotently (absolute sets, no
    /// increments), so re-exporting after every request converges on the
    /// final state instead of double counting.
    pub fn export_health(&mut self, snap: &HealthSnapshot) {
        for b in &snap.banks {
            let bank = b.bank.to_string();
            let state = match b.state {
                crate::health::BreakerState::Closed => 0.0,
                crate::health::BreakerState::HalfOpen => 1.0,
                crate::health::BreakerState::Open => 2.0,
            };
            self.metrics
                .set_gauge(names::BANK_STATE, &[("bank", &bank)], state);
            self.metrics
                .set_counter(names::BANK_TRIPS, &[("bank", &bank)], b.trips as u64);
        }
        let c = &snap.counters;
        for (event, v) in [
            ("submitted", c.submitted),
            ("completed", c.completed),
            ("deadline-miss", c.deadline_misses),
            ("shed-queue-full", c.shed_queue_full),
            ("shed-infeasible", c.shed_infeasible),
            ("probes", c.probes),
            ("probe-failures", c.probe_failures),
        ] {
            self.metrics
                .set_counter(names::SERVING_EVENTS, &[("event", event)], v);
        }
        self.metrics
            .set_gauge(names::QUEUE_DEPTH_MAX, &[], c.max_queue_depth as f64);
        // Guarded: only materialize the hardening counters once they fire,
        // so exports from budget-free, fault-free runs stay byte-identical
        // to previous releases.
        if c.cancelled_over_budget > 0 {
            self.metrics
                .set_counter(names::CANCELLED_OVER_BUDGET, &[], c.cancelled_over_budget);
        }
        if c.integrity_failures > 0 {
            self.metrics
                .set_counter(names::E2E_INTEGRITY_FAILURES, &[], c.integrity_failures);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_is_described_up_front() {
        let t = Telemetry::new(1);
        let text = t.metrics.render_prometheus();
        // Descriptions alone render nothing until a series exists.
        assert!(text.is_empty());
        let mut t = Telemetry::new(1);
        t.metrics.inc(names::TRANSITIONS, &[], 1);
        let text = t.metrics.render_prometheus();
        assert!(text.contains("# HELP anaheim_transitions_total"));
        assert!(text.contains("# TYPE anaheim_transitions_total counter"));
    }

    #[test]
    fn pim_kernel_emits_limb_batch_children() {
        let mut t = Telemetry::new(3);
        let r = PimKernelResult {
            latency_ns: 400.0,
            limb_batches: 4,
            bytes_internal: 1024,
            mmac_ops: 99,
            ..Default::default()
        };
        t.pim_kernel("PAccum", 100.0, 500.0, &r, false);
        // 1 kernel span + 4 limb-batch children.
        assert_eq!(t.trace.len(), 5);
        let kernel = &t.trace.spans()[0];
        assert_eq!(kernel.cat, "element-wise");
        for (i, s) in t.trace.spans()[1..].iter().enumerate() {
            assert_eq!(s.parent, Some(kernel.id));
            assert_eq!(s.cat, "limb-batch");
            assert!((s.start_ns - (100.0 + i as f64 * 100.0)).abs() < 1e-9);
        }
        assert_eq!(
            t.metrics.counter_value(
                names::KERNELS_TOTAL,
                &[("executor", "pim"), ("class", "element-wise")]
            ),
            1
        );
        assert_eq!(
            t.metrics.counter_value(names::PIM_INTERNAL_BYTES, &[]),
            1024
        );
    }

    #[test]
    fn shard_tracks_are_stable_and_wrap() {
        assert_eq!(shard_track(0), "shard-0");
        assert_eq!(shard_track(15), "shard-15");
        assert_eq!(shard_track(16), "shard-0");
        assert_eq!(shard_track(35), "shard-3");
    }

    #[test]
    fn batch_size_overflow_bucket_is_labeled() {
        // A 40-long same-tenant run (longer than the old 32 top bound)
        // must land in an explicit labeled bucket, not silently in the
        // implicit `+Inf` overflow slot.
        let mut t = Telemetry::new(7);
        t.metrics.observe(names::BATCH_SIZE, &[], 40.0);
        let text = t.metrics.render_prometheus();
        assert!(
            text.contains("anaheim_batch_size_bucket{le=\"64\"} 1"),
            "40-long run must be visible under the labeled 64 bound:\n{text}"
        );
        assert!(
            text.contains("anaheim_batch_size_bucket{le=\"32\"} 0"),
            "a 40-long run is not a <=32 run:\n{text}"
        );
    }

    #[test]
    fn health_export_is_idempotent() {
        use crate::health::{BreakerConfig, HealthRegistry};
        let mut reg = HealthRegistry::new(2, BreakerConfig::default());
        reg.counters.completed = 5;
        reg.on_failure(1, true, 3.0, "stuck-lane");
        let mut t = Telemetry::new(0);
        t.export_health(&reg.snapshot());
        let once = t.prometheus();
        t.export_health(&reg.snapshot());
        assert_eq!(once, t.prometheus(), "re-export must not double count");
        assert!(once.contains("anaheim_bank_state{bank=\"1\"} 2"));
        assert!(once.contains("anaheim_serving_events_total{event=\"completed\"} 5"));
    }
}
